// Property tests for the morsel-driven parallel operators: for every query
// shape and worker count the engine must return exactly the rows, in exactly
// the order, that serial execution (Workers: 1) returns. Morsel boundaries
// are a pure function of the input size — never the worker count — so even
// floating-point aggregation is bit-identical across worker counts.
package sqlsheet_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sqlsheet"
	"sqlsheet/internal/types"
)

// parallelPropDB builds two random tables large enough to cross a small
// morsel threshold: a fact t1 and a dimension t2 with overlapping keys.
func parallelPropDB(t *testing.T, rng *rand.Rand) *sqlsheet.DB {
	t.Helper()
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE t1 (a INT, b FLOAT, c TEXT)`)
	db.MustExec(`CREATE TABLE t2 (k INT, d TEXT, w FLOAT)`)
	n1 := 200 + rng.Intn(200)
	rows := make([][]any, 0, n1)
	for i := 0; i < n1; i++ {
		var b any
		if rng.Intn(10) == 0 {
			b = nil // exercise NULL handling in filters and aggregates
		} else {
			b = rng.NormFloat64() * 100
		}
		rows = append(rows, []any{rng.Intn(64), b, fmt.Sprintf("c%02d", rng.Intn(24))})
	}
	if err := db.Insert("t1", rows...); err != nil {
		t.Fatal(err)
	}
	rows = rows[:0]
	for i := 0; i < 48; i++ { // some t1.a values have no match, some dims dangle
		rows = append(rows, []any{rng.Intn(80), fmt.Sprintf("d%02d", i), rng.Float64() * 10})
	}
	if err := db.Insert("t2", rows...); err != nil {
		t.Fatal(err)
	}
	return db
}

// exactRows renders a result preserving row order and exact float bits.
func exactRows(res *sqlsheet.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = types.Key(r...)
	}
	return out
}

func TestParallelOperatorsEqualSerial(t *testing.T) {
	queries := []string{
		// Filter + projection with arithmetic and NULL-producing division.
		`SELECT a, b * 2.5 + 1, c FROM t1 WHERE a % 7 < 4`,
		`SELECT c, b / (a + 31) FROM t1 WHERE b > -50`,
		// Hash joins: inner, left, right, with residual predicates.
		`SELECT t1.a, t2.d, t1.b + t2.w FROM t1 JOIN t2 ON t1.a = t2.k`,
		`SELECT t1.c, t2.d FROM t1 LEFT JOIN t2 ON t1.a = t2.k AND t1.b > t2.w`,
		`SELECT t2.k, t1.b FROM t1 RIGHT JOIN t2 ON t1.a = t2.k WHERE t2.w > 1`,
		// Group-by: mergeable aggregates (parallel) and MIN/MAX (serial
		// fallback), float accumulation included.
		`SELECT c, SUM(b), COUNT(*), AVG(b) FROM t1 GROUP BY c`,
		`SELECT a % 5, MIN(b), MAX(c), SUM(a) FROM t1 GROUP BY a % 5`,
		// Global aggregation and join feeding group-by.
		`SELECT COUNT(b), SUM(b), SLOPE(b, a) FROM t1`,
		`SELECT t2.d, SUM(t1.b), COUNT(*) FROM t1 JOIN t2 ON t1.a = t2.k GROUP BY t2.d`,
	}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := parallelPropDB(t, rng)
		for qi, q := range queries {
			// MorselSize 16 puts a few hundred rows well past the 2×-morsel
			// threshold, so the morsel path is exercised at both settings.
			db.Configure(sqlsheet.Config{Workers: 1, MorselSize: 16})
			serial, err := db.Query(q)
			if err != nil {
				t.Fatalf("seed %d query %d serial: %v\n%s", seed, qi, err, q)
			}
			db.Configure(sqlsheet.Config{Workers: 8, MorselSize: 16})
			parallel, err := db.Query(q)
			if err != nil {
				t.Fatalf("seed %d query %d parallel: %v\n%s", seed, qi, err, q)
			}
			ks, kp := exactRows(serial), exactRows(parallel)
			if len(ks) != len(kp) {
				t.Fatalf("seed %d query %d: %d rows serial, %d parallel\n%s",
					seed, qi, len(ks), len(kp), q)
			}
			for i := range ks {
				if ks[i] != kp[i] {
					t.Fatalf("seed %d query %d row %d differs\nserial:   %v\nparallel: %v\n%s",
						seed, qi, i, serial.Rows[i], parallel.Rows[i], q)
				}
			}
		}
	}
}

// TestQueryOpStats checks that the parallel operators report their
// per-operator statistics through the public API and EXPLAIN ANALYZE text.
func TestQueryOpStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := parallelPropDB(t, rng)
	db.Configure(sqlsheet.Config{Workers: 2, MorselSize: 16})
	q := `SELECT t2.d, SUM(t1.b) FROM t1 JOIN t2 ON t1.a = t2.k GROUP BY t2.d`
	_, ops, err := db.QueryOpStats(q)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, op := range ops.Ops {
		seen[op.Op] = true
		if op.Rows <= 0 || op.Morsels <= 0 || op.Workers < 1 {
			t.Errorf("implausible stat: %+v", op)
		}
	}
	for _, want := range []string{"join-probe", "group-by"} {
		if !seen[want] {
			t.Errorf("no %q stat in %v", want, ops.Ops)
		}
	}
	text, err := db.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "execution:") || !strings.Contains(text, "group-by") {
		t.Errorf("ExplainAnalyze output missing stats:\n%s", text)
	}
}

// TestWorkersWithSpreadsheetParallel combines the operator worker pool with
// spreadsheet partition parallelism. Both draw PEs from one shared core
// budget, so the combination must neither deadlock nor change results; the
// timeout guard turns a budget deadlock into a test failure instead of a
// suite hang.
func TestWorkersWithSpreadsheetParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := parallelPropDB(t, rng)
	q := `SELECT a, c, s, r FROM
		(SELECT a, c, SUM(b) s, 0 r FROM t1 GROUP BY a, c) v
		SPREADSHEET PBY(c) DBY(a) MEA(s, r) UPDATE
		( r[*] = s[cv(a)] / sum(s)[*] )`

	// Baseline keeps Parallel=4 (bucket partitioning, and so row order, is a
	// function of the requested PE count) but serial operators; the combined
	// run adds the worker pool on top.
	db.Configure(sqlsheet.Config{Workers: 1, Parallel: 4, MorselSize: 16})
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	db.Configure(sqlsheet.Config{Workers: 1, Parallel: 1, MorselSize: 16})
	serial, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(want, serial) {
		t.Fatal("Parallel=4 and Parallel=1 disagree as multisets")
	}

	db.Configure(sqlsheet.Config{Workers: 4, Parallel: 4, MorselSize: 16})
	done := make(chan *sqlsheet.Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := db.Query(q)
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()
	var got *sqlsheet.Result
	select {
	case got = <-done:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(30 * time.Second):
		t.Fatal("Workers=4 + Parallel=4 query did not finish: core-budget deadlock?")
	}
	kw, kg := exactRows(want), exactRows(got)
	if len(kw) != len(kg) {
		t.Fatalf("%d rows serial, %d combined-parallel", len(kw), len(kg))
	}
	for i := range kw {
		if kw[i] != kg[i] {
			t.Fatalf("row %d differs\nserial:   %v\ncombined: %v", i, want.Rows[i], got.Rows[i])
		}
	}
}
