package sqlsheet_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sqlsheet"
)

// walFactDB builds the warehouse with the WAL attached from the start, so
// every mutation below is logged.
func walFactDB(t *testing.T, dir string, mode sqlsheet.SyncMode) *sqlsheet.DB {
	t.Helper()
	db := sqlsheet.Open()
	if err := db.EnableWAL(dir, mode); err != nil {
		t.Fatal(err)
	}
	return db
}

// recoverDB opens a fresh database over the same log directory.
func recoverDB(t *testing.T, dir string) *sqlsheet.DB {
	t.Helper()
	db := sqlsheet.Open()
	if err := db.EnableWAL(dir, sqlsheet.SyncGroup); err != nil {
		t.Fatal(err)
	}
	return db
}

// populate drives every logged mutation path: SQL DDL/DML (statement
// records), programmatic CreateTable/Insert (create + rows records),
// LoadCSV (rows records), views and a materialized view.
func populate(t *testing.T, db *sqlsheet.DB) {
	t.Helper()
	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
	for ti := 1995; ti <= 2002; ti++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO f VALUES ('west','dvd',%d,%d), ('east','vcr',%d,%d)`,
			ti, ti-1990, ti, 2*(ti-1990)))
	}
	db.MustExec(`UPDATE f SET s = s * 10 WHERE t = 2000`)
	db.MustExec(`DELETE FROM f WHERE t = 1996`)
	db.MustExec(`CREATE VIEW vw AS SELECT r, SUM(s) AS total FROM f GROUP BY r`)
	db.MustExec(`CREATE MATERIALIZED VIEW mv AS SELECT p, MAX(s) AS peak FROM f GROUP BY p`)

	if err := db.CreateTable("dims", sqlsheet.ColString("k"), sqlsheet.ColInt("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("dims", []any{"alpha", int64(1)}, []any{"beta", int64(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadCSV("dims", strings.NewReader("k,v\ngamma,3\ndelta,4\n"), true); err != nil {
		t.Fatal(err)
	}
}

// stateQueries covers every object populate creates, including a
// spreadsheet clause so recovered state feeds the full engine.
var stateQueries = []string{
	`SELECT r, p, t, s FROM f ORDER BY r, p, t`,
	`SELECT r, total FROM vw ORDER BY r`,
	`SELECT p, peak FROM mv ORDER BY p`,
	`SELECT k, v FROM dims ORDER BY k`,
	`SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( s[*, 2002] = s[cv(p), 2001] * 2 )`,
}

func assertSameState(t *testing.T, want, got *sqlsheet.DB) {
	t.Helper()
	for _, q := range stateQueries {
		w, err := want.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		g, err := got.Query(q)
		if err != nil {
			t.Fatalf("recovered %s: %v", q, err)
		}
		if !sameResults(w, g) {
			t.Fatalf("recovered state differs for %s:\noriginal:  %v\nrecovered: %v", q, w.Rows, g.Rows)
		}
	}
}

func TestWALRecoverRoundTrip(t *testing.T) {
	for _, mode := range []sqlsheet.SyncMode{sqlsheet.SyncGroup, sqlsheet.SyncAlways, sqlsheet.SyncNone} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			dir := t.TempDir()
			db := walFactDB(t, dir, mode)
			populate(t, db)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2 := recoverDB(t, dir)
			c, ok := db2.WALCounters()
			if !ok || c.Replayed == 0 {
				t.Fatalf("no records replayed (counters %+v ok=%v)", c, ok)
			}
			assertSameState(t, db, db2)
		})
	}
}

// TestWALCheckpointRecover compacts the log into a snapshot segment and
// verifies recovery from the compacted form alone.
func TestWALCheckpointRecover(t *testing.T) {
	dir := t.TempDir()
	db := walFactDB(t, dir, sqlsheet.SyncGroup)
	populate(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c, _ := db.WALCounters()
	if c.Checkpoints != 1 || c.Segments != 1 {
		t.Fatalf("after checkpoint: %+v, want 1 checkpoint and 1 segment", c)
	}
	// Post-checkpoint mutations append to the compacted log.
	db.MustExec(`INSERT INTO f VALUES ('north','tv',2002,42)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := recoverDB(t, dir)
	assertSameState(t, db, db2)
}

// TestWALCheckpointCrashWindow simulates a kill between a checkpoint
// becoming durable and the removal of the history it compacted: recovery
// must rebuild from the checkpoint alone — replaying the leftover history
// and the checkpoint together would re-insert every row.
func TestWALCheckpointCrashWindow(t *testing.T) {
	dir := t.TempDir()
	db := walFactDB(t, dir, sqlsheet.SyncGroup)
	populate(t, db)
	preCP, err := os.ReadFile(filepath.Join(dir, "wal-00000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`INSERT INTO f VALUES ('north','tv',2002,42)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the pre-checkpoint segment, as if the crash interrupted
	// its removal.
	if err := os.WriteFile(filepath.Join(dir, "wal-00000001.log"), preCP, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := recoverDB(t, dir)
	assertSameState(t, db, db2)
	res, err := db2.Query(`SELECT COUNT(*) FROM f`)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(res.Rows[0][0]); got != "15" {
		t.Fatalf("recovered f has %s rows, want 15 (duplicated checkpoint replay?)", got)
	}
}

// TestWALReplayedFailureIsDeterministic: a failing statement is logged
// before it applies, so recovery re-fails it the same way and converges on
// the same state.
func TestWALReplayedFailureIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	db := walFactDB(t, dir, sqlsheet.SyncGroup)
	db.MustExec(`CREATE TABLE t (a INT)`)
	db.MustExec(`INSERT INTO t VALUES (1)`)
	// Batch where the second statement fails: the first stays applied
	// (statement-level atomicity), and both are in the log.
	if _, err := db.Exec(`INSERT INTO t VALUES (2); INSERT INTO missing VALUES (3)`); err == nil {
		t.Fatal("expected error from INSERT into missing table")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := recoverDB(t, dir)
	w := db.MustExec(`SELECT a FROM t ORDER BY a`)
	g, err := db2.Query(`SELECT a FROM t ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(w, g) {
		t.Fatalf("recovered %v, want %v", g.Rows, w.Rows)
	}
}

// TestWALRecoverAPB: an APB install is logged as its scale parameters and
// regenerated deterministically at recovery.
func TestWALRecoverAPB(t *testing.T) {
	dir := t.TempDir()
	db := walFactDB(t, dir, sqlsheet.SyncGroup)
	scale := sqlsheet.APBScale{ProductFanout: []int{2, 2}, Channels: 2, Customers: 4, Years: 2, Density: 1}
	if _, err := db.InstallAPB(scale); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := recoverDB(t, dir)
	for _, tbl := range db.Tables() {
		if db.TableRows(tbl) != db2.TableRows(tbl) {
			t.Fatalf("table %s: %d rows recovered, want %d", tbl, db2.TableRows(tbl), db.TableRows(tbl))
		}
	}
}
