// Property tests for the vectorized cold path: every query must return
// byte-identical rows (exact float bits, exact order) with vectorized
// execution on and off, at every worker count. The ablation knob
// (Config.DisableVectorizedExec) switches between columnar selection kernels
// and the row-at-a-time compiled closures, so any divergence is a semantics
// bug in a kernel, the columnar image, or key encoding — never acceptable
// drift.
package sqlsheet_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sqlsheet"
	"sqlsheet/internal/colstore"
)

// vectorConfigs is the ablation grid: the first entry is the baseline
// (interpreted, serial); every other entry must match it exactly.
func vectorConfigs() []struct {
	name string
	cfg  sqlsheet.Config
} {
	return []struct {
		name string
		cfg  sqlsheet.Config
	}{
		{"interp-serial", sqlsheet.Config{Workers: 1, MorselSize: 16, DisableVectorizedExec: true, DisablePlanCache: true}},
		{"interp-parallel", sqlsheet.Config{Workers: 8, MorselSize: 16, DisableVectorizedExec: true, DisablePlanCache: true}},
		{"vec-serial", sqlsheet.Config{Workers: 1, MorselSize: 16, DisablePlanCache: true}},
		{"vec-parallel", sqlsheet.Config{Workers: 8, MorselSize: 16, DisablePlanCache: true}},
		// Scan/operator kernels on, batch rule application off: isolates the
		// rule-engine ablation from the generic vectorized executor.
		{"rules-off-serial", sqlsheet.Config{Workers: 1, MorselSize: 16, DisableVectorizedRules: true, DisablePlanCache: true}},
		{"rules-off-parallel", sqlsheet.Config{Workers: 8, MorselSize: 16, DisableVectorizedRules: true, DisablePlanCache: true}},
		// Cutoff forced to 1: every partition takes the batch paths, however
		// small, so the grid's tiny fixtures still exercise the kernels.
		{"vec-low-cutoff", sqlsheet.Config{Workers: 1, MorselSize: 16, VecMinRows: 1, DisablePlanCache: true}},
	}
}

// checkVectorGrid runs every query under the ablation grid and fails on the
// first byte-level divergence from the interpreted serial baseline.
func checkVectorGrid(t *testing.T, db *sqlsheet.DB, queries []string) {
	t.Helper()
	grid := vectorConfigs()
	for qi, q := range queries {
		var base []string
		for _, g := range grid {
			db.Configure(g.cfg)
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("query %d under %s: %v\n%s", qi, g.name, err, q)
			}
			rows := exactRows(res)
			if base == nil {
				base = rows
				continue
			}
			if len(rows) != len(base) {
				t.Fatalf("query %d under %s: %d rows, baseline %d\n%s",
					qi, g.name, len(rows), len(base), q)
			}
			for i := range rows {
				if rows[i] != base[i] {
					t.Fatalf("query %d under %s: row %d differs\nbaseline: %v\ngot:      %v\n%s",
						qi, g.name, i, base[i], rows[i], q)
				}
			}
		}
	}
}

// TestVectorizedEqualsInterpreter sweeps filter shapes the kernel compiler
// supports (and a few it must fall back on) over randomized typed tables
// with NULLs, cross-kind comparisons, and joins/group-bys whose keys ride
// the columnar key encoder.
func TestVectorizedEqualsInterpreter(t *testing.T) {
	queries := []string{
		// Column/constant comparisons over every typed representation.
		`SELECT a, b, c FROM t1 WHERE a > 30`,
		`SELECT a FROM t1 WHERE b <= 12.5`,
		`SELECT c FROM t1 WHERE c = 'c03'`,
		`SELECT a, c FROM t1 WHERE c <> 'c05'`,
		`SELECT a FROM t1 WHERE ok`,
		`SELECT a FROM t1 WHERE NOT ok`,
		// Cross-kind: int column vs float constant (widened), kind mismatch.
		`SELECT a FROM t1 WHERE a = 7.0`,
		`SELECT a FROM t1 WHERE a > 6.5`,
		`SELECT a FROM t1 WHERE a = 'not-a-number'`,
		`SELECT a FROM t1 WHERE NOT (a < 'x')`,
		// Column/column comparisons, including int-vs-float.
		`SELECT a, b FROM t1 WHERE a < b`,
		`SELECT a FROM t1 WHERE a = a2`,
		// BETWEEN, IN, NOT IN with a NULL member, LIKE, IS NULL.
		`SELECT a FROM t1 WHERE a BETWEEN 10 AND 40`,
		`SELECT a FROM t1 WHERE b NOT BETWEEN -5.5 AND 20`,
		`SELECT c FROM t1 WHERE c IN ('c01', 'c02', 'c19')`,
		`SELECT a FROM t1 WHERE a IN (1, 2, 3.0, 60)`,
		`SELECT a FROM t1 WHERE a NOT IN (5, NULL, 9)`,
		`SELECT c FROM t1 WHERE c LIKE 'c0%'`,
		`SELECT c FROM t1 WHERE c NOT LIKE '%1'`,
		`SELECT a FROM t1 WHERE b IS NULL`,
		`SELECT a, b FROM t1 WHERE b IS NOT NULL AND b > 0`,
		// Boolean combinations with NULL-aware NOT pushdown.
		`SELECT a FROM t1 WHERE a > 10 AND (c = 'c01' OR b < 0)`,
		`SELECT a FROM t1 WHERE NOT (a > 10 AND b > 0)`,
		`SELECT a FROM t1 WHERE NOT (c = 'c02' OR b IS NULL)`,
		// Expressions the compiler must decline (arithmetic in the
		// predicate): falls back to closures, results still identical.
		`SELECT a FROM t1 WHERE a % 7 < 4`,
		`SELECT a FROM t1 WHERE b * 2 > a + 1`,
		// Joins and group-bys: keys are plain columns, so build/probe and
		// grouping use the columnar key encoder.
		`SELECT t1.a, t2.d, t1.b FROM t1 JOIN t2 ON t1.a = t2.k`,
		`SELECT t1.c, t2.d FROM t1 LEFT JOIN t2 ON t1.a = t2.k`,
		`SELECT c, SUM(b), COUNT(*) FROM t1 GROUP BY c`,
		`SELECT a, c, SUM(b) FROM t1 WHERE a > 5 GROUP BY a, c`,
		// Filter above a join (no columnar provenance: closure path).
		`SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.k WHERE t2.w > 2`,
		// Compute projections: arithmetic and concat kernels over typed,
		// nullable vectors (int/float widening, NULL propagation).
		`SELECT a * 2 + b, b - a / 2.0, a * a FROM t1 WHERE a > 5`,
		`SELECT c || '-' || c, a FROM t1`,
		`SELECT a + b, a - a2, b * b FROM t1 WHERE ok`,
		// Modulo has no kernel: projection falls back to closures.
		`SELECT a % 5, b FROM t1 WHERE a > 10`,
		// Batch aggregation over computed arguments, and MIN/MAX over
		// string and bool vectors (dict and bitmap representations).
		`SELECT c, SUM(b * 2 + a), AVG(b - 1.5), COUNT(b), MIN(b), MAX(b + 0.5) FROM t1 GROUP BY c`,
		`SELECT c, MIN(c), MAX(c), COUNT(*) FROM t1 GROUP BY c`,
		`SELECT ok, SUM(a), MIN(ok), MAX(ok) FROM t1 GROUP BY ok`,
		// Post-join aggregation and projection: columnar provenance must
		// survive the hash join for the kernels to stay engaged.
		`SELECT t2.d, SUM(t1.b), COUNT(*) FROM t1 JOIN t2 ON t1.a = t2.k GROUP BY t2.d`,
		`SELECT t2.d, SUM(t1.a + t2.w), AVG(t1.b) FROM t1 JOIN t2 ON t1.a = t2.k GROUP BY t2.d`,
		`SELECT t1.a + t2.w, t1.c || '/' || t2.d FROM t1 JOIN t2 ON t1.a = t2.k`,
	}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := sqlsheet.Open()
		db.MustExec(`CREATE TABLE t1 (a INT, a2 INT, b FLOAT, c TEXT, ok BOOL)`)
		db.MustExec(`CREATE TABLE t2 (k INT, d TEXT, w FLOAT)`)
		n := 300 + rng.Intn(100)
		rows := make([][]any, 0, n)
		for i := 0; i < n; i++ {
			var b any
			if rng.Intn(8) == 0 {
				b = nil
			} else {
				b = rng.NormFloat64() * 30
			}
			var c any
			if rng.Intn(16) == 0 {
				c = nil
			} else {
				c = fmt.Sprintf("c%02d", rng.Intn(24))
			}
			rows = append(rows, []any{rng.Intn(64), rng.Intn(64), b, c, rng.Intn(2) == 0})
		}
		if err := db.Insert("t1", rows...); err != nil {
			t.Fatal(err)
		}
		rows = rows[:0]
		for i := 0; i < 40; i++ {
			rows = append(rows, []any{rng.Intn(80), fmt.Sprintf("d%02d", i), rng.Float64() * 10})
		}
		if err := db.Insert("t2", rows...); err != nil {
			t.Fatal(err)
		}
		checkVectorGrid(t, db, queries)
	}
}

// TestVectorizedAllNullAndEmpty covers the degenerate images: a column that
// is entirely NULL (KindNull representation, no vector storage), an empty
// table (zero chunks), and filters that select nothing.
func TestVectorizedAllNullAndEmpty(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE nt (a INT, z FLOAT, c TEXT)`)
	rows := make([][]any, 100)
	for i := range rows {
		rows[i] = []any{i, nil, fmt.Sprintf("s%d", i%5)} // z is all-null
	}
	if err := db.Insert("nt", rows...); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE empty (a INT, b TEXT)`)
	checkVectorGrid(t, db, []string{
		`SELECT a, z FROM nt WHERE z IS NULL`,
		`SELECT a FROM nt WHERE z IS NOT NULL`,
		`SELECT a FROM nt WHERE z > 0`,
		`SELECT a FROM nt WHERE z = 1 OR a < 10`,
		`SELECT a FROM nt WHERE NOT (z < 5)`,
		`SELECT c, COUNT(z), COUNT(*) FROM nt GROUP BY c`,
		`SELECT a FROM empty WHERE a > 0`,
		`SELECT a, b FROM empty`,
		`SELECT b, SUM(a) FROM empty GROUP BY b`,
		`SELECT a FROM nt WHERE a > 1000`, // non-empty scan, empty selection
		// Compute kernels over the all-null vector: arithmetic and every
		// aggregate must produce NULLs / zero counts identically.
		`SELECT a + z, z * 2.0, c || '-' FROM nt`,
		`SELECT c, SUM(z), AVG(z), MIN(z), MAX(z), COUNT(z) FROM nt GROUP BY c`,
		`SELECT b, SUM(a + 1) FROM empty GROUP BY b`,
	})
}

// TestVectorizedChunkStraddlingPartitions drives the spreadsheet clause over
// partitions whose rows interleave across every morsel boundary, so the
// columnar partition-key build must agree with the row path while assembling
// partitions from positions scattered over many chunks.
func TestVectorizedChunkStraddlingPartitions(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
	// Round-robin inserts: each (r,p) partition's rows are maximally spread
	// out, so with MorselSize 16 every partition straddles every chunk.
	regions := []string{"west", "east", "north"}
	prods := []string{"tv", "vcr", "dvd"}
	rows := make([][]any, 0, len(regions)*len(prods)*12)
	for yr := 1990; yr < 2002; yr++ {
		for _, r := range regions {
			for _, p := range prods {
				rows = append(rows, []any{r, p, yr, float64(yr-1990)*1.5 + float64(len(r))})
			}
		}
	}
	if err := db.Insert("f", rows...); err != nil {
		t.Fatal(err)
	}
	checkVectorGrid(t, db, []string{
		`SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		 ( UPDATE s['tv',2001] = s['tv',1999] + s['tv',2000],
		   UPSERT s['all',2001] = s['tv',2001] + s['vcr',2001] + s['dvd',2001] )
		 ORDER BY r, p, t`,
		`SELECT r, p, t, s FROM f WHERE t >= 1995
		 SPREADSHEET PBY(r, p) DBY (t) MEA (s)
		 ( UPDATE s[2001] = s[2000] * 2 )
		 ORDER BY r, p, t`,
	})
}

// TestVectorizedDictOverflow pushes a string column past DictMaxEntries so
// its image abandons dictionary encoding for plain strings, then checks
// string predicates stay byte-identical on the plain-string kernel path.
func TestVectorizedDictOverflow(t *testing.T) {
	if testing.Short() {
		t.Skip("large table")
	}
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE big (id INT, u TEXT)`)
	n := colstore.DictMaxEntries + 500
	batch := make([][]any, 0, 4096)
	for i := 0; i < n; i++ {
		var u any
		if i%101 == 0 {
			u = nil
		} else {
			u = fmt.Sprintf("u%06d", i)
		}
		batch = append(batch, []any{i, u})
		if len(batch) == cap(batch) || i == n-1 {
			if err := db.Insert("big", batch...); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	checkVectorGrid(t, db, []string{
		fmt.Sprintf(`SELECT id FROM big WHERE u = 'u%06d'`, colstore.DictMaxEntries+7),
		`SELECT id FROM big WHERE u LIKE 'u00001%'`,
		`SELECT id FROM big WHERE u IS NULL`,
		`SELECT id FROM big WHERE u > 'u065535' AND id < 66000`,
		// Concat and MIN/MAX over the plain (overflowed) string vector.
		`SELECT u || '!', id FROM big WHERE id < 300`,
		`SELECT MIN(u), MAX(u), COUNT(u), COUNT(*) FROM big`,
	})
}

// TestVectorizedNumericEdges pins the numeric normalization corners shared
// by kernels and the interpreter: NaN, infinities, and the integral-float
// boundary around MaxInt64.
func TestVectorizedNumericEdges(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE num (i INT, f FLOAT)`)
	rows := [][]any{
		{int64(math.MaxInt64), math.NaN()},
		{int64(math.MinInt64), math.Inf(1)},
		{int64(0), math.Inf(-1)},
		{int64(7), 7.0},
		{int64(-3), -2.5},
		{nil, 0.0},
		{int64(42), nil},
	}
	if err := db.Insert("num", rows...); err != nil {
		t.Fatal(err)
	}
	checkVectorGrid(t, db, []string{
		`SELECT i FROM num WHERE f > 0`,
		`SELECT i FROM num WHERE f < 0`,
		`SELECT i FROM num WHERE f = f`,
		`SELECT i, f FROM num WHERE i = f`,
		`SELECT i FROM num WHERE i > f`,
		`SELECT f FROM num WHERE f IN (7, 9223372036854775807)`,
		`SELECT i FROM num WHERE i BETWEEN -10 AND 10`,
		`SELECT i FROM num WHERE NOT (f >= 0)`,
		// Compute kernels on the edges: int64 wraparound (i + i at
		// MaxInt64), NaN/Inf arithmetic, int->float widening.
		`SELECT i + i, f * 2.0, i - 1 FROM num`,
		`SELECT i + f, f - f, f / 2.0 FROM num`,
		`SELECT SUM(i), SUM(f), AVG(f), MIN(f), MAX(f), MIN(i), MAX(i), COUNT(f) FROM num`,
	})
}

// TestVectorizedSpreadsheetBatchScan drives the core engine's batch partition
// scan (vecScanFeed): aggregate formulas whose qualifiers force a scan
// (ranges, stars) over partitions larger than vecScanMinRows, including a
// predicate qualifier that must fall back to the row matcher, and degenerate
// measures (all-NULL, NaN/Inf) where bit-exact accumulation order matters.
func TestVectorizedSpreadsheetBatchScan(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
	// 4 products x 26 years = 104 rows per PBY(r) partition, past the
	// vecScanMinRows=64 gate on both partitions.
	rows := make([][]any, 0, 2*4*26)
	for _, r := range []string{"east", "west"} {
		for pi, p := range []string{"tv", "vcr", "dvd", "amp"} {
			for yr := 1980; yr < 2006; yr++ {
				rows = append(rows, []any{r, p, yr, float64((yr-1980)*(pi+1)) * 0.25})
			}
		}
	}
	if err := db.Insert("f", rows...); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE g (r TEXT, t INT, s FLOAT)`)
	rows = rows[:0]
	for i := 0; i < 80; i++ {
		rows = append(rows, []any{"nul", i, nil}) // all-NULL measure partition
		var s float64
		switch i % 5 {
		case 0:
			s = math.NaN()
		case 1:
			s = math.Inf(1)
		case 2:
			s = math.Inf(-1)
		default:
			s = float64(i) * 0.5
		}
		rows = append(rows, []any{"nan", i, s})
	}
	if err := db.Insert("g", rows...); err != nil {
		t.Fatal(err)
	}
	checkVectorGrid(t, db, []string{
		// Point+range, star-star, and per-aggregate coverage (sum, count,
		// avg, min, max, slope) on the batch scan path. Ranges are wider
		// than maxRangeProbe so they stay in scan mode instead of unfolding
		// into point probes; the narrow range on the last formula checks the
		// probe and scan paths coexist in one statement.
		`SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		 ( UPSERT s['agg', 3000] = sum(s)['tv', 1700 <= t <= 1999],
		   UPSERT s['agg', 3001] = count(s)[*, *],
		   UPSERT s['agg', 3002] = avg(s)['dvd', *],
		   UPSERT s['agg', 3003] = max(s)[*, 1000 < t < 2000],
		   UPSERT s['agg', 3004] = min(s)['vcr', *],
		   UPSERT s['agg', 3005] = slope(s, t)['tv', *],
		   UPSERT s['agg', 3006] = sum(s)['amp', 1990 <= t <= 1999] )
		 ORDER BY r, p, t`,
		// Predicate qualifier: no declarative descriptor, so the batch scan
		// declines and the row matcher runs — results must not move.
		`SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		 ( UPSERT s['pq', 3100] = sum(s)[p <> 'pq', t < 3000] )
		 ORDER BY r, p, t`,
		// Existential targets: s[*, ...] builds one instance per target row
		// with a cv(p) point qualifier; each goes through scanFeed.
		`SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		 ( s[*, 3200] = avg(s)[cv(p), 1990 <= t <= 2001] )
		 ORDER BY r, p, t`,
		// Degenerate measures: all-NULL partition and NaN/Inf accumulation.
		`SELECT r, t, s FROM g
		 SPREADSHEET PBY(r) DBY (t) MEA (s)
		 ( UPSERT s[9000] = sum(s)[-1000 <= t <= 100],
		   UPSERT s[9001] = avg(s)[-1000 <= t < 100],
		   UPSERT s[9002] = min(s)[0 <= t <= 1000],
		   UPSERT s[9003] = max(s)[-500 <= t < 50],
		   UPSERT s[9004] = count(s)[0 <= t <= 500] )
		 ORDER BY r, t`,
	})
}

// TestExplainVectorizedAnnotation checks EXPLAIN advertises kernel
// compilation and that the ablation knob turns the annotation off.
func TestExplainVectorizedAnnotation(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE e (a INT, c TEXT)`)
	db.MustExec(`INSERT INTO e VALUES (1, 'x'), (2, 'y')`)

	db.Configure(sqlsheet.Config{DisablePlanCache: true})
	out, err := db.Explain(`SELECT a FROM e WHERE a > 1 AND c LIKE 'x%'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vectorized=yes") {
		t.Errorf("supported predicate lacks vectorized=yes:\n%s", out)
	}
	// Arithmetic predicates have no kernel: annotation must say no.
	out, err = db.Explain(`SELECT a FROM e WHERE a % 2 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vectorized=no") {
		t.Errorf("unsupported predicate lacks vectorized=no:\n%s", out)
	}
	db.Configure(sqlsheet.Config{DisablePlanCache: true, DisableVectorizedExec: true})
	out, err = db.Explain(`SELECT a FROM e WHERE a > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "vectorized=yes") {
		t.Errorf("ablated plan still advertises vectorized=yes:\n%s", out)
	}
}

// TestVectorizedRules drives the batch rule engine (formula kernels, bulk
// frame probes, columnar writeback) against the per-cell interpreter across
// the whole ablation grid: left-side FOR loops, UPSERT inserts, existential
// formulas with predicate qualifiers, aggregate reads, an all-NULL measure,
// and an ITERATE model that must stay on the row path.
func TestVectorizedRules(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE fr (r TEXT, p TEXT, t INT, s FLOAT, u FLOAT, z FLOAT)`)
	rows := make([][]any, 0, 2*4*30)
	for _, r := range []string{"east", "west"} {
		for pi, p := range []string{"tv", "vcr", "dvd", "amp"} {
			for yr := 1980; yr < 2010; yr++ {
				rows = append(rows, []any{r, p, yr, float64(yr-1979)*1.5 + float64(pi)*7.25, 0.0, nil})
			}
		}
	}
	if err := db.Insert("fr", rows...); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE it (t INT, s FLOAT)`)
	rows = rows[:0]
	for i := 0; i < 80; i++ {
		rows = append(rows, []any{i, float64(1000 + i)})
	}
	if err := db.Insert("it", rows...); err != nil {
		t.Fatal(err)
	}
	const head = `SELECT r, p, t, s, u, z FROM fr SPREADSHEET PBY(r) DBY (p, t) MEA (s, u, z) `
	const tail = ` ORDER BY r, p, t`
	checkVectorGrid(t, db, []string{
		// Existential formulas: stars, ranges, predicate qualifiers.
		head + `( UPDATE u[*, *] = s[cv(p), cv(t)] * 0.5 + s[cv(p), cv(t) - 1] )` + tail,
		head + `( UPDATE u['dvd', 1990 <= t <= 2005] = s[cv(p), cv(t)] + 100,
		          UPDATE u[p IN ('tv','vcr'), t > 1990] = s[cv(p), cv(t)] / 2 - 1 )` + tail,
		// Left-side FOR loops: UPDATE over the whole grid, UPSERT inserting
		// new cells that read existing ones through the bulk probe.
		head + `( UPDATE u[FOR p IN ('tv','vcr','dvd','amp'), FOR t FROM 1980 TO 2009] = s[cv(p), cv(t)] * 1.01 + 1 )` + tail,
		head + `( UPSERT u[FOR p IN ('tv','vcr'), FOR t FROM 2010 TO 2030] = s[cv(p), cv(t) - 30] * 2 )` + tail,
		// Aggregate reads: a batchable broadcast (min forces the multi-scan
		// engine) and a per-target aggregate that must fall back.
		head + `( UPDATE u['tv', t > 2000] = s[cv(p), cv(t)] - min(s)['tv', 1980 <= t <= 1999] )` + tail,
		head + `( UPDATE u[*, *] = avg(s)[cv(p), 1990 <= t <= 1999] )` + tail,
		// Reads from the all-NULL measure flow NULL through the kernels.
		head + `( UPDATE u[*, *] = z[cv(p), cv(t)] )` + tail,
		// ITERATE models never batch; the grid still must agree.
		`SELECT t, s FROM it SPREADSHEET DBY (t) MEA (s) ITERATE (4)
		 ( s[0] = s[0] / 2 + s[1] * 0.001 ) ORDER BY t`,
	})
}

// TestVectorizedRulesDictOverflow runs an existential string-measure formula
// over a partition large enough that the frame image's dictionary overflows
// into plain strings, exercising the bulk probe and columnar writeback on
// the overflowed representation.
func TestVectorizedRulesDictOverflow(t *testing.T) {
	if testing.Short() {
		t.Skip("large table")
	}
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE bigr (grp INT, id INT, u TEXT, v TEXT)`)
	n := colstore.DictMaxEntries + 500
	batch := make([][]any, 0, 4096)
	for i := 0; i < n; i++ {
		var u any
		if i%101 == 0 {
			u = nil
		} else {
			u = fmt.Sprintf("u%06d", i)
		}
		batch = append(batch, []any{0, i, u, "x"})
		if len(batch) == cap(batch) || i == n-1 {
			if err := db.Insert("bigr", batch...); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	checkVectorGrid(t, db, []string{
		`SELECT grp, id, u, v FROM bigr
		 SPREADSHEET PBY(grp) DBY (id) MEA (u, v)
		 ( UPDATE v[*] = u[cv(id)] || '!' )
		 ORDER BY id`,
	})
}

// TestExplainVectorizedRules checks EXPLAIN's per-rule vectorized= notes:
// batchable formulas advertise yes, fallbacks name their reason, and the
// ablation knob rewrites yes to no(disabled) without masking real reasons.
func TestExplainVectorizedRules(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE fe (r TEXT, p TEXT, t INT, s FLOAT, u FLOAT)`)
	db.MustExec(`INSERT INTO fe VALUES ('w','tv',2000,1,0), ('w','tv',2001,2,0)`)
	const q = `SELECT r, p, t, s, u FROM fe SPREADSHEET PBY(r) DBY (p, t) MEA (s, u)
		( UPDATE u[*, *] = s[cv(p), cv(t)] * 0.5,
		  UPDATE u[*, t > 2000] = avg(s)[cv(p), 1990 <= t <= 1999],
		  UPDATE s['tv', 2001] = s['tv', 2000] * 2 )`

	db.Configure(sqlsheet.Config{DisablePlanCache: true})
	out, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"vectorized=yes", "vectorized=no(cv-qualifier)", "vectorized=no(self-read)"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN lacks %s:\n%s", want, out)
		}
	}
	it, err := db.Explain(`SELECT t, s FROM fe SPREADSHEET DBY (t) MEA (s) ITERATE (2) ( s[2000] = s[2000] / 2 )`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(it, "vectorized=no(iterate)") {
		t.Errorf("ITERATE rule lacks vectorized=no(iterate):\n%s", it)
	}

	db.Configure(sqlsheet.Config{DisablePlanCache: true, DisableVectorizedRules: true})
	out, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vectorized=no(disabled)") {
		t.Errorf("ablated rule plan lacks vectorized=no(disabled):\n%s", out)
	}
	for _, want := range []string{"vectorized=no(cv-qualifier)", "vectorized=no(self-read)"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablated EXPLAIN masks real fallback %s:\n%s", want, out)
		}
	}
}
