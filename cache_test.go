// Serving-path cache integration tests: byte-identical results across cache
// tiers (including immediately after DML invalidation), EXPLAIN annotations,
// QueryOpStats counters, and concurrent access with eviction churn.
package sqlsheet_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sqlsheet"
)

// cacheTestDB builds the shared dataset: a cell-addressable fact table, a
// small dimension, and a view over both.
func cacheTestDB(t testing.TB, cfg sqlsheet.Config) *sqlsheet.DB {
	t.Helper()
	db := sqlsheet.Open()
	db.Configure(cfg)
	db.MustExec(`CREATE TABLE sales (r TEXT, p TEXT, t INT, s FLOAT)`)
	var rows [][]any
	for ri, r := range []string{"west", "east"} {
		for _, p := range []string{"dvd", "vcr", "tv"} {
			for yr := 1998; yr <= 2002; yr++ {
				rows = append(rows, []any{r, p, yr, float64((ri*13+len(p)*7+yr)%23) + 1})
			}
		}
	}
	if err := db.Insert("sales", rows...); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE names (p TEXT, label TEXT)`)
	if err := db.Insert("names",
		[]any{"dvd", "digital"}, []any{"vcr", "tape"}, []any{"tv", "set"}); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE VIEW totals AS SELECT r, SUM(s) total FROM sales GROUP BY r`)
	return db
}

// cacheQueries is the property-test query set: plain scans, join + group by,
// a subquery, a view read, and a spreadsheet with upsert rules over
// aggregates (the artifacts the cache stores at every tier).
var cacheQueries = []string{
	`SELECT r, p, t, s FROM sales WHERE s > 5 ORDER BY r, p, t`,
	`SELECT n.label, SUM(f.s) tot FROM sales f JOIN names n ON f.p = n.p
		GROUP BY n.label ORDER BY n.label`,
	`SELECT r, p, s FROM sales WHERE s > (SELECT AVG(s) FROM sales)
		ORDER BY r, p, s`,
	`SELECT r, total FROM totals ORDER BY r`,
	`SELECT r, p, t, s FROM sales
		SPREADSHEET PBY(r) DBY(p, t) MEA(s)
		( s['net', 2003] = sum(s)['dvd', 1998 <= t <= 2002]
		                 + avg(s)['vcr', 1998 <= t <= 2002],
		  s['dvd', 2003] = s['dvd', 2002] * 1.1 )
		ORDER BY r, p, t`,
}

func render(t testing.TB, db *sqlsheet.DB, q string) string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res.String()
}

// TestCacheByteIdenticalResults is the correctness property: with the cache
// fully on, with only plan/structure reuse, and with the cache off, every
// query renders byte-identically — on first execution, on a repeat (served
// from progressively warmer tiers), and immediately after each of INSERT,
// UPDATE and DELETE invalidated the cached artifacts.
func TestCacheByteIdenticalResults(t *testing.T) {
	tiers := []struct {
		name string
		cfg  sqlsheet.Config
	}{
		{"full-cache", sqlsheet.Config{}},
		{"plan-only", sqlsheet.Config{DisableResultCache: true}},
		{"no-cache", sqlsheet.Config{DisablePlanCache: true}},
	}
	dbs := make([]*sqlsheet.DB, len(tiers))
	for i, tier := range tiers {
		dbs[i] = cacheTestDB(t, tier.cfg)
	}
	check := func(stage string) {
		t.Helper()
		for _, q := range cacheQueries {
			want := ""
			for i, tier := range tiers {
				for run := 0; run < 2; run++ {
					got := render(t, dbs[i], q)
					if want == "" {
						want = got
						continue
					}
					if got != want {
						t.Errorf("%s: tier %s run %d diverged on %q:\ngot:\n%s\nwant:\n%s",
							stage, tier.name, run, q, got, want)
					}
				}
			}
		}
	}
	check("initial")

	dml := []string{
		`INSERT INTO sales VALUES ('west', 'dvd', 2003, 42.5)`,
		`UPDATE sales SET s = s + 1 WHERE p = 'vcr' AND t = 2000`,
		`DELETE FROM sales WHERE r = 'east' AND t = 1998`,
		`INSERT INTO names VALUES ('amp', 'audio')`,
	}
	for _, stmt := range dml {
		for _, db := range dbs {
			db.MustExec(stmt)
		}
		// Immediately after the DML: the warm tiers must notice the version
		// bump and not serve the pre-DML plan artifacts or result.
		check(stmt)
	}
}

// TestCacheExplainAnnotations checks the EXPLAIN-visible cache state.
func TestCacheExplainAnnotations(t *testing.T) {
	db := cacheTestDB(t, sqlsheet.Config{})
	q := cacheQueries[4] // the spreadsheet query: has an access structure

	p1, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p1, "cache: plan miss") {
		t.Errorf("first Explain should report a plan miss:\n%s", p1)
	}
	p2, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p2, "cache: plan hit") {
		t.Errorf("second Explain should report a plan hit:\n%s", p2)
	}

	// ExplainAnalyze always executes; the second run reuses the structure
	// built (and cached pristine) by the first and says so, with the table
	// versions the reuse was validated against.
	if _, err := db.ExplainAnalyze(q); err != nil {
		t.Fatal(err)
	}
	a2, err := db.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a2, "cache: plan hit") {
		t.Errorf("second ExplainAnalyze should report a plan hit:\n%s", a2)
	}
	if !strings.Contains(a2, "cache: structure reused (table versions ") ||
		!strings.Contains(a2, "sales=") {
		t.Errorf("second ExplainAnalyze should report structure reuse with table versions:\n%s", a2)
	}

	// DML bumps the version: the next run must rebuild (miss), and its
	// annotation must reflect that nothing was reused.
	db.MustExec(`INSERT INTO sales VALUES ('west', 'dvd', 2004, 1.0)`)
	a3, err := db.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a3, "cache: plan miss") || strings.Contains(a3, "structure reused") {
		t.Errorf("post-DML ExplainAnalyze should report a miss and no reuse:\n%s", a3)
	}

	// With the cache disabled there must be no cache annotations at all.
	off := cacheTestDB(t, sqlsheet.Config{DisablePlanCache: true})
	p, err := off.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	a, err := off.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p, "cache:") || strings.Contains(a, "cache:") {
		t.Error("DisablePlanCache output must carry no cache annotations")
	}
}

// TestCacheOpStatsCounters checks the QueryOpStats surface: per-call flags
// and cumulative counters across miss → structure reuse → result hit →
// invalidation.
func TestCacheOpStatsCounters(t *testing.T) {
	db := cacheTestDB(t, sqlsheet.Config{})
	q := cacheQueries[4]

	_, st1, err := db.QueryOpStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cache.PlanHit || st1.Cache.ResultHit {
		t.Errorf("first run must be a miss: %+v", st1.Cache)
	}
	if st1.Cache.Misses == 0 {
		t.Errorf("cumulative misses should count the first run: %+v", st1.Cache)
	}

	_, st2, err := db.QueryOpStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cache.PlanHit || !st2.Cache.ResultHit {
		t.Errorf("second run should be a result hit: %+v", st2.Cache)
	}
	// A result hit answers before the plan lookup, so only the result
	// counter advances.
	if st2.Cache.ResultHits == 0 {
		t.Errorf("cumulative result-hit counter should have advanced: %+v", st2.Cache)
	}

	db.MustExec(`DELETE FROM sales WHERE t = 1998`)
	_, st3, err := db.QueryOpStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cache.PlanHit || st3.Cache.ResultHit {
		t.Errorf("post-DML run must miss: %+v", st3.Cache)
	}
	if st3.Cache.Invalidations == 0 {
		t.Errorf("invalidation should be counted: %+v", st3.Cache)
	}

	// Structure reuse shows up when the result tier is off.
	po := cacheTestDB(t, sqlsheet.Config{DisableResultCache: true})
	if _, _, err := po.QueryOpStats(q); err != nil {
		t.Fatal(err)
	}
	_, st5, err := po.QueryOpStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if !st5.Cache.PlanHit || st5.Cache.ResultHit {
		t.Errorf("plan-only tier: want plan hit without result hit: %+v", st5.Cache)
	}
	if st5.Cache.StructuresReused == 0 || st5.Cache.StructReuses == 0 {
		t.Errorf("plan-only tier should reuse the access structure: %+v", st5.Cache)
	}
}

// TestCacheFingerprintSharing checks the end-to-end text path: reformatted
// and re-cased texts of the same statement share one cache entry, across
// Query and Exec alike.
func TestCacheFingerprintSharing(t *testing.T) {
	db := cacheTestDB(t, sqlsheet.Config{})
	if _, err := db.Query(`SELECT r, p, t, s FROM sales WHERE s > 5 ORDER BY r, p, t`); err != nil {
		t.Fatal(err)
	}
	variants := []string{
		"select r,p,t,s from sales where s>5 order by r,p,t",
		"SELECT r, p, t, s\nFROM sales\nWHERE s > 5\nORDER BY r, p, t;",
	}
	for _, v := range variants {
		_, st, err := db.QueryOpStats(v)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Cache.ResultHit {
			t.Errorf("variant %q should share the cached entry: %+v", v, st.Cache)
		}
	}
	// Exec routes SELECTs through the same serving path.
	if _, err := db.Exec(variants[0]); err != nil {
		t.Fatal(err)
	}
	_, st, err := db.QueryOpStats(variants[1])
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cache.ResultHit {
		t.Errorf("Exec should have kept the entry warm: %+v", st.Cache)
	}
}

// TestCacheDisabledKnobs checks the ablation knobs really gate each tier.
func TestCacheDisabledKnobs(t *testing.T) {
	q := cacheQueries[0]

	off := cacheTestDB(t, sqlsheet.Config{DisablePlanCache: true})
	for i := 0; i < 2; i++ {
		_, st, err := off.QueryOpStats(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cache.PlanHit || st.Cache.ResultHit || st.Cache.Hits != 0 {
			t.Errorf("DisablePlanCache run %d: cache activity %+v", i, st.Cache)
		}
	}

	po := cacheTestDB(t, sqlsheet.Config{DisableResultCache: true})
	for i := 0; i < 3; i++ {
		_, st, err := po.QueryOpStats(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cache.ResultHit || st.Cache.ResultHits != 0 {
			t.Errorf("DisableResultCache run %d: result served from cache %+v", i, st.Cache)
		}
	}
}

// TestCacheConcurrent hammers one cache from many goroutines: readers repeat
// a mix of identical and distinct fingerprints over read-only tables while a
// writer runs DML and queries against its own, disjoint table (the engine's
// concurrency contract: DML must not race queries on the same tables). A
// small budget forces eviction churn throughout. Run under -race via
// `make race`.
func TestCacheConcurrent(t *testing.T) {
	db := cacheTestDB(t, sqlsheet.Config{PlanCacheBudget: 96 << 10})
	db.MustExec(`CREATE TABLE wlog (k INT, v FLOAT)`)

	// Distinct-fingerprint family plus the shared query set, with expected
	// renders precomputed sequentially.
	queries := append([]string(nil), cacheQueries...)
	for thr := 1; thr <= 4; thr++ {
		queries = append(queries, fmt.Sprintf(
			`SELECT r, p, t, s FROM sales WHERE s > %d ORDER BY r, p, t`, thr))
	}
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		want[q] = render(t, db, q)
	}

	const readers, iters = 8, 40
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(g+i)%len(queries)]
				res, err := db.Query(q)
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", g, err)
					return
				}
				if got := res.String(); got != want[q] {
					errc <- fmt.Errorf("reader %d: stale/corrupt result for %q", g, q)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		bound := 0 // keys below bound have been deleted
		for i := 0; i < iters; i++ {
			if _, err := db.Exec(fmt.Sprintf(`INSERT INTO wlog VALUES (%d, %d.5)`, i, i)); err != nil {
				errc <- fmt.Errorf("writer insert: %v", err)
				return
			}
			res, err := db.Query(`SELECT COUNT(*), SUM(v) FROM wlog`)
			if err != nil {
				errc <- fmt.Errorf("writer query: %v", err)
				return
			}
			if n, want := res.Rows[0][0].Int(), int64(i+1-bound); n != want {
				errc <- fmt.Errorf("writer saw stale count %d after insert %d, want %d", n, i+1, want)
				return
			}
			if i%8 == 7 {
				if _, err := db.Exec(fmt.Sprintf(`DELETE FROM wlog WHERE k < %d`, i-6)); err != nil {
					errc <- fmt.Errorf("writer delete: %v", err)
					return
				}
				bound = i - 6
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
