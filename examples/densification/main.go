// Densification demonstrates the paper's §3 gap-filling operation: make
// every year of the time dimension present for every (region, product)
// pair, so time-series operations (moving averages, prior-period
// comparisons) see a dense axis. The spreadsheet UPSERT over "FOR t IN
// (SELECT ...)" replaces the cartesian-product + outer-join ANSI
// formulation — both are run and compared here.
package main

import (
	"fmt"
	"log"

	"sqlsheet"
)

func main() {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
	db.MustExec(`CREATE TABLE time_dt (t INT)`)
	db.MustExec(`INSERT INTO time_dt VALUES (1998),(1999),(2000),(2001),(2002)`)
	// Sparse sales: most (r, p, t) combinations are missing.
	db.MustExec(`INSERT INTO f VALUES
		('west','dvd',1998,10), ('west','dvd',2001,13),
		('west','vcr',2000,20),
		('east','dvd',1999,40), ('east','dvd',2002,46)`)

	sheet, err := db.Query(`
		SELECT r, p, t, s
		FROM f
		SPREADSHEET PBY(r, p) DBY (t) MEA (s, 0 as x)
		( UPSERT x[FOR t IN (SELECT t FROM time_dt)] = 0 )
		ORDER BY r, p, t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("densified with the spreadsheet clause:")
	fmt.Print(sheet)

	ansi, err := db.Query(`
		SELECT v.r, v.p, v.t, f.s
		FROM f RIGHT OUTER JOIN
		     ( (SELECT DISTINCT r, p FROM f)
		        CROSS JOIN
		        (SELECT t FROM time_dt)
		      ) v
		   ON (f.r = v.r AND f.p = v.p AND f.t = v.t)
		ORDER BY v.r, v.p, v.t`)
	if err != nil {
		log.Fatal(err)
	}
	same := len(sheet.Rows) == len(ansi.Rows)
	for i := 0; same && i < len(sheet.Rows); i++ {
		for j := 0; j < 4; j++ {
			if sheet.Rows[i][j].String() != ansi.Rows[i][j].String() {
				same = false
			}
		}
	}
	fmt.Printf("ANSI outer-join formulation matches: %v (%d rows)\n", same, len(ansi.Rows))

	// Densification composes: fill gaps, then a prior-year delta over the
	// now-dense axis in the same clause.
	res, err := db.Query(`
		SELECT r, p, t, s, delta
		FROM f
		SPREADSHEET PBY(r, p) DBY (t) MEA (s, 0 as delta) IGNORE NAV
		(
		  UPSERT delta[FOR t IN (SELECT t FROM time_dt)] = 0,
		  UPDATE delta[t > 1998] = s[cv(t)] - s[cv(t)-1]
		)
		ORDER BY r, p, t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("densify + year-over-year delta in one clause:")
	fmt.Print(res)
}
