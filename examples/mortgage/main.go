// Mortgage builds a loan amortization schedule — the classic "simultaneous
// equations over a relation" workload the paper positions the spreadsheet
// clause for. An ordered existential formula rolls the balance forward
// month by month, and an ITERATE ... UNTIL model searches for the payment
// that clears the loan (a recursive what-if the paper's §2 cycles section
// enables).
package main

import (
	"fmt"
	"log"

	"sqlsheet"
)

func main() {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE loan (customer TEXT, period INT, balance FLOAT, payment FLOAT)`)
	// Two customers, 12 monthly periods each; period 0 holds the principal.
	for _, c := range []struct {
		name      string
		principal float64
		payment   float64
	}{{"ann", 10000, 900}, {"bob", 25000, 2200}} {
		db.MustExec(fmt.Sprintf(`INSERT INTO loan VALUES ('%s', 0, %g, 0)`, c.name, c.principal))
		for p := 1; p <= 12; p++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO loan VALUES ('%s', %d, 0, %g)`, c.name, p, c.payment))
		}
	}

	// Roll the balance forward at 1% monthly interest: an ordered
	// existential rule — each period reads the PREVIOUS period's freshly
	// computed balance, which is exactly what ORDER BY period ASC
	// guarantees.
	res, err := db.Query(`
		SELECT customer, period, balance, payment
		FROM loan
		SPREADSHEET PBY(customer) DBY (period) MEA (balance, payment)
		(
		  UPDATE balance[period > 0] ORDER BY period ASC =
		      balance[cv(period)-1] * 1.01 - payment[cv(period)]
		)
		ORDER BY customer, period`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("amortization schedule (1% monthly):")
	fmt.Print(res)

	// What-if with a recursive model: repeatedly shave the final balance
	// into the payment until the loan clears within a dollar — ITERATE
	// with an UNTIL convergence condition and previous().
	// The period-0 payment cell (unused by the schedule) holds the next
	// uniform payment so the per-period update reads a stable value.
	res, err = db.Query(`
		SELECT customer, period, balance, payment
		FROM loan
		SPREADSHEET PBY(customer) DBY (period) MEA (balance, payment)
		ITERATE (50) UNTIL (abs(balance[12]) <= 1)
		(
		  UPDATE payment[0] = payment[1] + balance[12] / 12,
		  UPDATE payment[period > 0] = payment[0],
		  UPDATE balance[period > 0] ORDER BY period ASC =
		      balance[cv(period)-1] * 1.01 - payment[cv(period)]
		)
		ORDER BY customer, period`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsolved payments (final balance ≈ 0):")
	for _, row := range res.Rows {
		if row[1].Int() == 12 {
			fmt.Printf("  %-5s payment=%.2f final balance=%.2f\n",
				row[0], row[3].Float(), row[2].Float())
		}
	}
}
