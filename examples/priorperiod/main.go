// Priorperiod runs the paper's query S1 (§4): the ratio of each month's
// sales to the corresponding month a year ago and a quarter ago, resolved
// through a read-only reference spreadsheet over the time dimension table
// (the paper's Table 1 mapping). The reference sheet plays the role of a
// join — but through the same hash access structure the formulas use.
package main

import (
	"fmt"
	"log"

	"sqlsheet"
)

func main() {
	db := sqlsheet.Open()
	// The bundled APB generator installs time_dt with the Table 1 mapping.
	if _, err := db.InstallAPB(sqlsheet.APBScale{Years: 2, Customers: 1, Channels: 1}); err != nil {
		log.Fatal(err)
	}
	db.MustExec(`CREATE TABLE f (p TEXT, m TEXT, s FLOAT)`)
	db.MustExec(`INSERT INTO f VALUES
		('dvd','1998-01',20), ('dvd','1998-10',40), ('dvd','1998-12',45),
		('dvd','1999-01',60), ('dvd','1999-03',90), ('dvd','1998-03',30),
		('vcr','1998-01',10), ('vcr','1999-01',15)`)

	q := `
		SELECT p, m, s, r_yago, r_qago FROM
		 (SELECT p, m, s, r_yago, r_qago FROM f GROUP BY p, m
		  SPREADSHEET
		    REFERENCE prior ON (SELECT m, m_yago, m_qago FROM time_dt)
		      DBY(m) MEA(m_yago, m_qago)
		    PBY(p) DBY (m) MEA (sum(s) s, r_yago, r_qago)
		  RULES UPDATE
		  (
		  F1: r_yago[*] = s[cv(m)] / s[m_yago[cv(m)]],
		  F2: r_qago[*] = s[cv(m)] / s[m_qago[cv(m)]]
		  )
		 ) v
		WHERE p = 'dvd' AND m IN ('1999-01', '1999-03')
		ORDER BY m`
	res, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("S1: ratios to the year-ago and quarter-ago months:")
	fmt.Print(res)

	// m is only *functionally* independent (the right side reads other
	// months through the reference sheet), so the plain bounding-rectangle
	// analysis cannot push "m IN (...)". The optimizer uses one of the
	// paper's three reference transforms instead — inspect the plan:
	plan, err := db.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan with extended pushing (the default strategy):")
	fmt.Print(plan)

	cfg := db.Options()
	cfg.Push = sqlsheet.PushRefSubquery
	db.Configure(cfg)
	plan, err = db.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan with ref-subquery pushing:")
	fmt.Print(plan)
}
