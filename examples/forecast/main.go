// Forecast reproduces the paper's §3 motivating example: an analyst
// predicts 2002 sales per region — tv scaled by its regression slope, vcr
// as the sum of two years, dvd as a three-year average — and introduces a
// brand-new 'video' dimension member with UPSERT. One spreadsheet clause
// replaces an aggregate subquery, a double and a triple self-join, and a
// UNION.
package main

import (
	"fmt"
	"log"

	"sqlsheet"
)

func main() {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
	for _, r := range []string{"west", "east"} {
		for ti := 1992; ti <= 2002; ti++ {
			grow := 1.0
			if r == "east" {
				grow = 2.5
			}
			base := float64(ti-1990) * grow
			db.MustExec(fmt.Sprintf(`INSERT INTO f VALUES
				('%[1]s','tv', %[2]d, %[3]g),
				('%[1]s','vcr',%[2]d, %[4]g),
				('%[1]s','dvd',%[2]d, %[5]g)`,
				r, ti, base*3, base*2, base))
		}
	}

	res, err := db.Query(`
		SELECT r, p, t, s
		FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		(
		F1: UPDATE s['tv',2002] =
		        slope(s,t)['tv',1992<=t<=2001]*s['tv',2001] + s['tv',2001],
		F2: UPDATE s['vcr', 2002] = s['vcr', 2000] + s['vcr', 2001],
		F3: UPDATE s['dvd',2002] =
		        (s['dvd',1999]+s['dvd',2000]+s['dvd',2001])/3,
		F4: UPSERT s['video', 2002] = s['tv',2002] + s['vcr',2002]
		)
		ORDER BY r, p, t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2002 predictions (note the upserted 'video' rows):")
	for _, row := range res.Rows {
		if row[2].Int() == 2002 {
			fmt.Printf("  %-5s %-6s %v\n", row[0], row[1], row[3])
		}
	}

	// The same spreadsheet evaluates per partition, so parallel execution
	// is just a session option.
	cfg := db.Options()
	cfg.Parallel = 2
	db.Configure(cfg)
	res2, err := db.Query(`
		SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( UPSERT s['video', 2002] = s['tv',2001] + s['vcr',2001] )`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel run produced %d rows\n", len(res2.Rows))
}
