// Quickstart: create a small sales table and run the first spreadsheet
// query from the paper — per-region forecasts with symbolic cell
// references (§2).
package main

import (
	"fmt"
	"log"

	"sqlsheet"
)

func main() {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
	db.MustExec(`INSERT INTO f VALUES
		('west','dvd',2000,10), ('west','dvd',2001,13),
		('west','vcr',2000,20), ('west','vcr',2001,18),
		('west','tv', 1999,30), ('west','tv', 2000,31), ('west','tv', 2001,34),
		('east','dvd',2000,40), ('east','dvd',2001,44),
		('east','vcr',2000,25), ('east','vcr',2001,23),
		('east','tv', 1999,50), ('east','tv', 2000,52), ('east','tv', 2001,55)`)

	// Within each region: dvd 2002 grows 60% over 2001, vcr 2002 is the sum
	// of the two prior years, tv 2002 is its recent average. Cells that do
	// not exist are created (UPSERT is the default).
	res, err := db.Query(`
		SELECT r, p, t, s
		FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		(
		  s[p='dvd', t=2002] = s[p='dvd', t=2001] * 1.6,
		  s[p='vcr', t=2002] = s[p='vcr', t=2000] + s[p='vcr', t=2001],
		  s['tv', 2002]      = avg(s)['tv', 1999 <= t <= 2001]
		)
		ORDER BY r, p, t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	// The analysis is inspectable: EXPLAIN shows formula levels and any
	// optimizer decisions.
	plan, err := db.Explain(`
		SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( s['dvd',2002] = s['dvd',2000] + s['dvd',2001],
		  s['dvd',2001] = 1000 )`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEXPLAIN (note the dependency-ordered levels):")
	fmt.Print(plan)
}
