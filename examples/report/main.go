// Report composes the two OLAP mechanisms the paper discusses: a
// spreadsheet clause computes next-year forecasts per region, and ANSI
// window functions ([18]) rank the forecasts and add share-of-region
// percentages over the spreadsheet's output — the "result is a relation"
// property of §7 in action.
package main

import (
	"fmt"
	"log"

	"sqlsheet"
)

func main() {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
	products := []string{"dvd", "vcr", "tv", "camera", "hifi"}
	for i, p := range products {
		for _, r := range []string{"west", "east"} {
			for ti := 1999; ti <= 2001; ti++ {
				base := float64((i+2)*(ti-1995)) * 7
				if r == "east" {
					base *= 1.3
				}
				db.MustExec(fmt.Sprintf(`INSERT INTO f VALUES ('%s','%s',%d,%g)`, r, p, ti, base))
			}
		}
	}

	// Inner block: spreadsheet forecast for 2002 (trend-scaled).
	// Outer block: window functions ranking the forecast within each
	// region and computing each product's share of the regional total.
	res, err := db.Query(`
		SELECT r, p, s,
		       rank() OVER (PARTITION BY r ORDER BY s DESC) rnk,
		       round(100 * s / sum(s) OVER (PARTITION BY r), 1) pct
		FROM (
		    SELECT r, p, t, s FROM f
		    SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		    ( UPSERT s[FOR p IN (SELECT DISTINCT p FROM f), 2002] =
		          s[cv(p), 2001] * (1 + slope(s,t)[cv(p), 1999<=t<=2001] / s[cv(p), 2001]) )
		) v
		WHERE t = 2002
		ORDER BY r, rnk`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2002 forecast ranking per region (spreadsheet + windows):")
	fmt.Print(res)

	// The same report as a materialized view that refreshes incrementally
	// as new sales arrive.
	db.MustExec(`CREATE MATERIALIZED VIEW forecast_mv AS
		SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( UPSERT s[FOR p IN (SELECT DISTINCT p FROM f), 2002] = s[cv(p), 2001] * 1.1 )`)
	db.MustExec(`INSERT INTO f VALUES ('west', 'radio', 2001, 999)`)
	out := db.MustExec(`REFRESH forecast_mv`)
	fmt.Printf("\nmaterialized forecast refreshed: mode=%s rows=%s\n",
		out.Rows[0][0], out.Rows[0][1])
}
