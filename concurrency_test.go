package sqlsheet_test

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentQueries runs many spreadsheet queries against one DB from
// parallel goroutines (each with internal PE parallelism); run under
// -race this guards the executor's shared-state discipline.
func TestConcurrentQueries(t *testing.T) {
	db := newFactDB(t)
	cfg := db.Options()
	cfg.Parallel = 2
	db.Configure(cfg)
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( s[*, 2003] = s[cv(p), 2002] * 1.5,
		  UPSERT s['video', 2003] = s['tv', 2003] + s['vcr', 2003] )`
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := db.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != len(want.Rows) {
					errs <- fmt.Errorf("row count %d != %d", len(res.Rows), len(want.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSpillPlusParallel combines the memory-budgeted store with parallel
// PEs — the paper's big-data configuration.
func TestSpillPlusParallel(t *testing.T) {
	db := newFactDB(t)
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( s[*, 2002] = avg(s)[cv(p), 1995 <= t <= 2001] )`
	plain, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cfg := db.Options()
	cfg.Parallel = 4
	cfg.Buckets = 6
	cfg.MemoryBudget = 1500
	cfg.SpillDir = t.TempDir()
	db.Configure(cfg)
	res, stats, err := db.QueryStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlockEvictions == 0 {
		t.Error("expected spill activity")
	}
	if !sameResults(plain, res) {
		t.Fatal("spill+parallel changed results")
	}
}
