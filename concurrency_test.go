package sqlsheet_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlsheet"
)

// TestConcurrentQueries runs many spreadsheet queries against one DB from
// parallel goroutines (each with internal PE parallelism); run under
// -race this guards the executor's shared-state discipline.
func TestConcurrentQueries(t *testing.T) {
	db := newFactDB(t)
	cfg := db.Options()
	cfg.Parallel = 2
	db.Configure(cfg)
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( s[*, 2003] = s[cv(p), 2002] * 1.5,
		  UPSERT s['video', 2003] = s['tv', 2003] + s['vcr', 2003] )`
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := db.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != len(want.Rows) {
					errs <- fmt.Errorf("row count %d != %d", len(res.Rows), len(want.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSpillPlusParallel combines the memory-budgeted store with parallel
// PEs — the paper's big-data configuration.
func TestSpillPlusParallel(t *testing.T) {
	db := newFactDB(t)
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( s[*, 2002] = avg(s)[cv(p), 1995 <= t <= 2001] )`
	plain, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cfg := db.Options()
	cfg.Parallel = 4
	cfg.Buckets = 6
	cfg.MemoryBudget = 1500
	cfg.SpillDir = t.TempDir()
	db.Configure(cfg)
	res, stats, err := db.QueryStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlockEvictions == 0 {
		t.Error("expected spill activity")
	}
	if !sameResults(plain, res) {
		t.Fatal("spill+parallel changed results")
	}
}

// TestConcurrentDMLVersionRace pins the catalog-version data race fixed by
// making Table.Version atomic: writers bump table versions (INSERT, UPDATE,
// DELETE) while reader goroutines drive plan/result-cache probes that read
// the same counters to validate cached dependencies. Run under -race this
// fails if either side regresses to plain int access; without -race it still
// checks that cached reads never serve a stale post-DML result.
func TestConcurrentDMLVersionRace(t *testing.T) {
	db := newFactDB(t)
	q := `SELECT r, SUM(s) AS total FROM f GROUP BY r ORDER BY r`
	const writers, readers, iters = 2, 6, 40

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var dml string
				if i%2 == 0 {
					dml = fmt.Sprintf(`INSERT INTO f VALUES ('w%d', 'dvd', %d, 1.0, 0.5)`, w, 3000+i)
				} else {
					dml = fmt.Sprintf(`DELETE FROM f WHERE r = 'w%d'`, w)
				}
				if _, err := db.Exec(dml); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := db.Query(q)
				if err != nil {
					errs <- err
					return
				}
				// The base regions are never touched by the writers, so a
				// correctly-invalidated cache always reports them.
				if len(res.Rows) < 2 {
					errs <- fmt.Errorf("lost base rows: %d groups", len(res.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQueryContextCancel checks the engine-level cancellation points: a
// context cancelled mid-flight stops a long ITERATE loop promptly and
// surfaces context.Canceled, and a pre-cancelled context never starts.
func TestQueryContextCancel(t *testing.T) {
	db := newFactDB(t)
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r, p) DBY (t) MEA (s) UPDATE ITERATE (50000000)
		( s[2000] = s[2000] * 1.0000001 )`

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := db.QueryContext(ctx, q)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not take effect")
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Errorf("cancellation latency %v too high", e)
	}

	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := db.QueryContext(pre, `SELECT r FROM f`); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v", err)
	}
}

// TestMVCCZeroSum32Sessions is the snapshot-isolation property test: 32
// sessions (8 writers, 24 readers) hammer one DB. Every write is a
// single-statement zero-sum mutation — balanced INSERT pairs, sign flips,
// whole-pair DELETEs — so the account invariant SUM(v) = 0 holds after
// every statement. A reader that ever sees a nonzero sum has observed a
// torn write (half of a statement) or a future version mid-install; under
// MVCC it must only ever see statement-boundary snapshots. Run under -race
// this also guards the publish/pin memory discipline.
func TestMVCCZeroSum32Sessions(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE acct (k INT, v INT)`)
	db.MustExec(`INSERT INTO acct VALUES (0, 1000), (0, -1000)`)

	const writers, readers, writes = 8, 24, 40
	var wg, wgWriters sync.WaitGroup
	errs := make(chan error, writers+readers)
	var writersDone atomic.Bool

	for w := 0; w < writers; w++ {
		wg.Add(1)
		wgWriters.Add(1)
		go func(w int) {
			defer wg.Done()
			defer wgWriters.Done()
			for i := 0; i < writes; i++ {
				k := w*writes + i + 1
				var err error
				switch i % 3 {
				case 0:
					_, err = db.Exec(fmt.Sprintf(`INSERT INTO acct VALUES (%d, %d), (%d, %d)`, k, k, k, -k))
				case 1:
					_, err = db.Exec(fmt.Sprintf(`UPDATE acct SET v = -v WHERE k = %d`, w*writes+i))
				case 2:
					_, err = db.Exec(fmt.Sprintf(`DELETE FROM acct WHERE k = %d`, w*writes+i-1))
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	readTotals := func(id int) {
		defer wg.Done()
		for i := 0; ; i++ {
			// Vary the text so some reads miss the result cache and walk
			// the snapshot scan path.
			q := `SELECT SUM(v) FROM acct`
			if i%2 == 1 {
				q = fmt.Sprintf(`SELECT SUM(v), %d FROM acct`, id)
			}
			res, err := db.Query(q)
			if err != nil {
				errs <- err
				return
			}
			if s := res.Rows[0][0]; !s.IsNull() && s.Int() != 0 {
				errs <- fmt.Errorf("reader %d saw torn state: SUM(v) = %v", id, s)
				return
			}
			if writersDone.Load() {
				return
			}
		}
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go readTotals(r)
	}

	// Flip the flag once all writers are finished; readers exit after one
	// more full pass.
	go func() {
		wgWriters.Wait()
		writersDone.Store(true)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	res := db.MustExec(`SELECT SUM(v) FROM acct`)
	if s := res.Rows[0][0]; s.Int() != 0 {
		t.Fatalf("final SUM(v) = %v, want 0", s)
	}
}

// TestReadersNeverBlockOnWriters proves the headline MVCC property: a
// SELECT that starts while a writer holds the exclusive statement lock
// completes before the writer releases it. Under the old RWMutex regime
// this is impossible — a reader arriving during the writer's critical
// section cannot return until the writer does — so any reader observed to
// finish inside the window certifies the lock-free snapshot path.
func TestReadersNeverBlockOnWriters(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE big (k INT, v INT)`)
	var b strings.Builder
	b.WriteString(`INSERT INTO big VALUES (0, 0)`)
	for i := 1; i < 20000; i++ {
		fmt.Fprintf(&b, `, (%d, %d)`, i, i)
	}
	db.MustExec(b.String())
	db.MustExec(`CREATE TABLE tiny (x INT)`)
	db.MustExec(`INSERT INTO tiny VALUES (1), (2), (3)`)

	// One Exec batch = one exclusive critical section spanning all its
	// statements. Eight full-table UPDATEs keep it held for a while.
	var batch strings.Builder
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&batch, `UPDATE big SET v = v + %d;`, i+1)
	}

	var inCritical atomic.Bool
	writerDone := make(chan error, 1)
	go func() {
		inCritical.Store(true)
		_, err := db.Exec(batch.String())
		inCritical.Store(false)
		writerDone <- err
	}()

	// Spin readers; count completions that both started and finished while
	// the writer batch was in flight.
	completedInWindow := 0
	for !inCritical.Load() {
		// wait for the writer to enter
	}
	for inCritical.Load() {
		res, err := db.Query(`SELECT COUNT(*) FROM tiny`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 3 {
			t.Fatalf("bad read: %v", res.Rows[0][0])
		}
		if inCritical.Load() {
			completedInWindow++
		}
	}
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	if completedInWindow == 0 {
		t.Fatal("no reader completed while the writer held the statement lock — reads are blocking on writers")
	}
}

// TestSnapshotGridByteIdentical replays one DML+query script under the
// full ablation grid — Workers 1/4 × snapshot isolation on/off × fast
// local path on/off — and requires byte-identical SELECT results in every
// cell. The MVCC read path, the lock-based fallback, and the shared-rows
// fast path are pure execution strategies; none may change an answer.
func TestSnapshotGridByteIdentical(t *testing.T) {
	script := []string{
		`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`,
	}
	for _, r := range []string{"west", "east"} {
		for pi, p := range []string{"dvd", "vcr", "tv"} {
			for ti := 1998; ti <= 2002; ti++ {
				script = append(script, fmt.Sprintf(`INSERT INTO f VALUES ('%s','%s',%d,%d)`, r, p, ti, (ti-1990)*(pi+1)))
			}
		}
	}
	script = append(script,
		`UPDATE f SET s = s * 2 WHERE p = 'tv'`,
		`DELETE FROM f WHERE t = 1999`,
	)
	queries := []string{
		`SELECT r, p, t, s FROM f ORDER BY r, p, t`,
		`SELECT r, p, t, s FROM f
			SPREADSHEET PBY(r) DBY (p, t) MEA (s)
			( s[*, 2002] = s[cv(p), 2001] * 1.5,
			  UPSERT s['video', 2002] = s['tv', 2002] + s['vcr', 2002] )`,
		`SELECT p, SUM(s) FROM f GROUP BY p ORDER BY p`,
	}

	var want [][]string
	for _, workers := range []int{1, 4} {
		for _, noSnap := range []bool{false, true} {
			for _, noFast := range []bool{false, true} {
				name := fmt.Sprintf("workers=%d snap=%v fast=%v", workers, !noSnap, !noFast)
				db := sqlsheet.Open()
				cfg := db.Options()
				cfg.Workers = workers
				cfg.DisableSnapshotIsolation = noSnap
				cfg.DisableFastLocalPath = noFast
				db.Configure(cfg)
				for _, stmt := range script {
					db.MustExec(stmt)
				}
				for qi, q := range queries {
					res, err := db.Query(q)
					if err != nil {
						t.Fatalf("%s: %s: %v", name, q, err)
					}
					got := rowsKey(res)
					if want == nil || len(want) <= qi {
						want = append(want, got)
						continue
					}
					if len(got) != len(want[qi]) {
						t.Fatalf("%s: query %d returned %d rows, want %d", name, qi, len(got), len(want[qi]))
					}
					for i := range got {
						if got[i] != want[qi][i] {
							t.Fatalf("%s: query %d row %d = %q, want %q", name, qi, i, got[i], want[qi][i])
						}
					}
				}
			}
		}
	}
}
