package sqlsheet_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentQueries runs many spreadsheet queries against one DB from
// parallel goroutines (each with internal PE parallelism); run under
// -race this guards the executor's shared-state discipline.
func TestConcurrentQueries(t *testing.T) {
	db := newFactDB(t)
	cfg := db.Options()
	cfg.Parallel = 2
	db.Configure(cfg)
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( s[*, 2003] = s[cv(p), 2002] * 1.5,
		  UPSERT s['video', 2003] = s['tv', 2003] + s['vcr', 2003] )`
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := db.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != len(want.Rows) {
					errs <- fmt.Errorf("row count %d != %d", len(res.Rows), len(want.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSpillPlusParallel combines the memory-budgeted store with parallel
// PEs — the paper's big-data configuration.
func TestSpillPlusParallel(t *testing.T) {
	db := newFactDB(t)
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( s[*, 2002] = avg(s)[cv(p), 1995 <= t <= 2001] )`
	plain, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cfg := db.Options()
	cfg.Parallel = 4
	cfg.Buckets = 6
	cfg.MemoryBudget = 1500
	cfg.SpillDir = t.TempDir()
	db.Configure(cfg)
	res, stats, err := db.QueryStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlockEvictions == 0 {
		t.Error("expected spill activity")
	}
	if !sameResults(plain, res) {
		t.Fatal("spill+parallel changed results")
	}
}

// TestConcurrentDMLVersionRace pins the catalog-version data race fixed by
// making Table.Version atomic: writers bump table versions (INSERT, UPDATE,
// DELETE) while reader goroutines drive plan/result-cache probes that read
// the same counters to validate cached dependencies. Run under -race this
// fails if either side regresses to plain int access; without -race it still
// checks that cached reads never serve a stale post-DML result.
func TestConcurrentDMLVersionRace(t *testing.T) {
	db := newFactDB(t)
	q := `SELECT r, SUM(s) AS total FROM f GROUP BY r ORDER BY r`
	const writers, readers, iters = 2, 6, 40

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var dml string
				if i%2 == 0 {
					dml = fmt.Sprintf(`INSERT INTO f VALUES ('w%d', 'dvd', %d, 1.0, 0.5)`, w, 3000+i)
				} else {
					dml = fmt.Sprintf(`DELETE FROM f WHERE r = 'w%d'`, w)
				}
				if _, err := db.Exec(dml); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := db.Query(q)
				if err != nil {
					errs <- err
					return
				}
				// The base regions are never touched by the writers, so a
				// correctly-invalidated cache always reports them.
				if len(res.Rows) < 2 {
					errs <- fmt.Errorf("lost base rows: %d groups", len(res.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQueryContextCancel checks the engine-level cancellation points: a
// context cancelled mid-flight stops a long ITERATE loop promptly and
// surfaces context.Canceled, and a pre-cancelled context never starts.
func TestQueryContextCancel(t *testing.T) {
	db := newFactDB(t)
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r, p) DBY (t) MEA (s) UPDATE ITERATE (50000000)
		( s[2000] = s[2000] * 1.0000001 )`

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := db.QueryContext(ctx, q)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not take effect")
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Errorf("cancellation latency %v too high", e)
	}

	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := db.QueryContext(pre, `SELECT r FROM f`); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v", err)
	}
}
