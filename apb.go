package sqlsheet

import (
	"sqlsheet/internal/apb"
	"sqlsheet/internal/wal"
)

// APBScale sizes the bundled APB-1-style benchmark dataset (the workload of
// the paper's experiments). Zero fields take laptop-scale defaults.
type APBScale struct {
	// Seed drives the deterministic generator.
	Seed int64
	// ProductFanout gives children-per-node for the 6 levels below the
	// product hierarchy's top (7 levels total).
	ProductFanout []int
	// Channels / Customers are base member counts; Years sizes the time
	// dimension (12 months per year).
	Channels  int
	Customers int
	Years     int
	// Density is the fact-table density; the paper's experiments use 0.1.
	Density float64
}

// APBInfo summarizes an installed dataset.
type APBInfo struct {
	FactRows, CubeRows, Products, Months int
}

// InstallAPB generates the APB dataset and registers its tables:
// apb_fact(c,h,t,p,s), apb_cube(c,h,t,p,s), product_dt(p, parent1, parent2,
// parent3, lvl) and time_dt(m, m_yago, m_qago).
func (db *DB) InstallAPB(scale APBScale) (APBInfo, error) {
	d := apb.Generate(apb.Config{
		Seed:          scale.Seed,
		ProductFanout: scale.ProductFanout,
		Channels:      scale.Channels,
		Customers:     scale.Customers,
		Years:         scale.Years,
		Density:       scale.Density,
	})
	db.stmtMu.Lock()
	// The generator is deterministic in its scale parameters, so the log
	// records only those; replay regenerates the dataset.
	pos, err := db.logRecord(wal.KindAPB, wal.EncodeAPB(wal.APBParams{
		Seed:          scale.Seed,
		ProductFanout: scale.ProductFanout,
		Channels:      scale.Channels,
		Customers:     scale.Customers,
		Years:         scale.Years,
		Density:       scale.Density,
	}))
	if err == nil {
		err = d.Install(db.cat)
	}
	db.cat.PublishAll()
	db.stmtMu.Unlock()
	if err == nil {
		err = db.walCommit(pos)
	}
	if err != nil {
		return APBInfo{}, err
	}
	return APBInfo{
		FactRows: len(d.Fact),
		CubeRows: len(d.Cube),
		Products: len(d.Products),
		Months:   len(d.Months),
	}, nil
}
