// End-to-end tests for the parallel data-movement layer: the partitioned
// access-structure build, the chunked external sort, and asynchronous spill
// I/O. Every knob combination must return byte-identical rows — parallelism
// here buys throughput, never a different answer.
package sqlsheet_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"sqlsheet"
)

// movementQuery touches all three data movers at once: the spreadsheet clause
// forces a partition build, ORDER BY forces a sort, and a small MemoryBudget
// pushes both the partitions and the sort through the spill store. The ORDER
// BY key (r, p, t) is unique per row, so the output order is total and the
// comparison below can demand byte identity.
const movementQuery = `SELECT r, p, t, s FROM f
	SPREADSHEET PBY(r) DBY (p, t) MEA (s)
	( s[*, 2003] = avg(s)[cv(p), 1995 <= t <= 2002] )
	ORDER BY r, p, t`

// TestDataMovementConfigsPreserveResults is the acceptance property for this
// layer: Workers=1 versus Workers=N, hash versus B-tree access structures,
// and each ablation knob (DisableParallelBuild, DisableParallelSort,
// DisableAsyncSpill) all yield byte-identical rows, in memory and under a
// budget that forces spilling.
func TestDataMovementConfigsPreserveResults(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		db := randomFactDB(t, rand.New(rand.NewSource(seed)))
		base := sqlsheet.Config{Parallel: 1, Workers: 1, Buckets: 7, MorselSize: 16,
			DisableParallelBuild: true, DisableParallelSort: true, DisableAsyncSpill: true}
		db.Configure(base)
		ref, err := db.Query(movementQuery)
		if err != nil {
			t.Fatal(err)
		}
		want := exactRows(ref)
		spill := func(c sqlsheet.Config) sqlsheet.Config {
			c.MemoryBudget = 1500
			c.SpillDir = t.TempDir()
			return c
		}
		variants := []struct {
			name string
			cfg  sqlsheet.Config
		}{
			{"parallel", sqlsheet.Config{Parallel: 3, Workers: 8, Buckets: 7, MorselSize: 16}},
			{"parallel-btree", sqlsheet.Config{Parallel: 3, Workers: 8, Buckets: 7, MorselSize: 16, UseBTreeIndex: true}},
			{"serial-btree", sqlsheet.Config{Parallel: 1, Workers: 1, Buckets: 7, MorselSize: 16, UseBTreeIndex: true}},
			{"no-parallel-build", sqlsheet.Config{Parallel: 3, Workers: 8, Buckets: 7, MorselSize: 16, DisableParallelBuild: true}},
			{"no-parallel-sort", sqlsheet.Config{Parallel: 3, Workers: 8, Buckets: 7, MorselSize: 16, DisableParallelSort: true}},
			{"spill-async", spill(sqlsheet.Config{Parallel: 3, Workers: 8, Buckets: 7, MorselSize: 16})},
			{"spill-sync", spill(sqlsheet.Config{Parallel: 3, Workers: 8, Buckets: 7, MorselSize: 16, DisableAsyncSpill: true})},
			{"spill-serial", spill(base)},
		}
		for _, v := range variants {
			db.Configure(v.cfg)
			res, err := db.Query(movementQuery)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			got := exactRows(res)
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: %d rows, serial baseline has %d", seed, v.name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d %s: row %d differs from serial baseline", seed, v.name, i)
				}
			}
		}
	}
}

// TestDataMovementSpillEngages guards the property test above against
// vacuousness: under the budget the query must actually move blocks through
// the spill store.
func TestDataMovementSpillEngages(t *testing.T) {
	db := randomFactDB(t, rand.New(rand.NewSource(1)))
	db.Configure(sqlsheet.Config{Parallel: 3, Workers: 8, Buckets: 7, MorselSize: 16,
		MemoryBudget: 1500, SpillDir: t.TempDir()})
	_, stats, err := db.QueryStats(movementQuery)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlockEvictions == 0 {
		t.Error("expected block evictions under a 1500-byte budget")
	}
	if stats.BytesSpilled == 0 {
		t.Error("expected spilled bytes under a 1500-byte budget")
	}
}

// TestConcurrentDataMovement runs the full build+sort+spill pipeline from
// several client goroutines against one shared database. Its job is to give
// `make race` concurrent coverage of the partition build workers, the sort
// run pool, and the async spill writer/prefetcher all at once.
func TestConcurrentDataMovement(t *testing.T) {
	db := newFactDB(t)
	cfg := db.Options()
	cfg.Parallel = 2
	cfg.Workers = 4
	cfg.Buckets = 6
	cfg.MorselSize = 16
	cfg.MemoryBudget = 1500
	cfg.SpillDir = t.TempDir()
	db.Configure(cfg)
	ref, err := db.Query(movementQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := exactRows(ref)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				res, err := db.Query(movementQuery)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				got := exactRows(res)
				if len(got) != len(want) {
					errs <- fmt.Errorf("goroutine %d: %d rows, want %d", g, len(got), len(want))
					return
				}
				for j := range got {
					if got[j] != want[j] {
						errs <- fmt.Errorf("goroutine %d: row %d differs", g, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestExplainDataMovementNotes checks that EXPLAIN advertises the parallel
// strategies exactly when they are configured: an explicit Workers>1 without
// the ablation knobs annotates both the Sort and the Spreadsheet; the default
// configuration (Workers=0 resolves to the core count at run time) and the
// disabled variants stay silent so EXPLAIN output is machine-independent.
func TestExplainDataMovementNotes(t *testing.T) {
	db := newFactDB(t)
	const buildNote = "parallel partition build"
	const sortNote = "parallel chunked sort"

	db.Configure(sqlsheet.Config{Workers: 4})
	out, err := db.Explain(movementQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, buildNote+" (4 workers)") {
		t.Errorf("Workers=4 explain lacks build note:\n%s", out)
	}
	if !strings.Contains(out, sortNote+" (4 workers, loser-tree merge)") {
		t.Errorf("Workers=4 explain lacks sort note:\n%s", out)
	}

	db.Configure(sqlsheet.Config{Workers: 4, DisableParallelBuild: true, DisableParallelSort: true})
	out, err = db.Explain(movementQuery)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, buildNote) || strings.Contains(out, sortNote) {
		t.Errorf("ablated explain still advertises parallel strategies:\n%s", out)
	}

	db.Configure(sqlsheet.Config{})
	out, err = db.Explain(movementQuery)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, buildNote) || strings.Contains(out, sortNote) {
		t.Errorf("default (Workers=0) explain must stay machine-independent:\n%s", out)
	}
}

// BenchmarkExternalSort measures ORDER BY over a table whose estimated
// footprint exceeds the memory budget, forcing the chunked external merge
// sort through the spill store. Sub-benchmarks compare the in-memory parallel
// sort against the external path with asynchronous and synchronous spill I/O;
// run with -cpu 1,4 to sweep the worker pool.
func BenchmarkExternalSort(b *testing.B) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE big (a INT, b FLOAT, c TEXT)`)
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	for lo := 0; lo < n; lo += 500 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO big VALUES ")
		for i := lo; i < lo+500; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, %.4f, 'c%03d')", rng.Intn(10000), rng.NormFloat64()*100, rng.Intn(500))
		}
		db.MustExec(sb.String())
	}
	q := `SELECT a, b, c FROM big ORDER BY b, a`
	variants := []struct {
		name string
		cfg  sqlsheet.Config
	}{
		{"mem", sqlsheet.Config{}},
		{"spill-async", sqlsheet.Config{MemoryBudget: 64 << 10}},
		{"spill-sync", sqlsheet.Config{MemoryBudget: 64 << 10, DisableAsyncSpill: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := v.cfg
			cfg.Workers = runtime.GOMAXPROCS(0) // -cpu N sweeps the pool size
			if cfg.MemoryBudget > 0 {
				cfg.SpillDir = b.TempDir()
			}
			db.Configure(cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
