// Package sqlsheet is an embeddable SQL engine implementing the SQL
// spreadsheet clause of Witkowski et al., "Spreadsheets in RDBMS for OLAP"
// (SIGMOD 2003) — the design that became the Oracle MODEL clause.
//
// Relations are treated as n-dimensional arrays: the SPREADSHEET clause
// classifies a query's columns into PARTITION BY (PBY), DIMENSION BY (DBY)
// and MEASURES (MEA) columns and evaluates a list of assignment formulas
// over the cells they address, with symbolic cell references, cv(), ranges,
// aggregates, UPSERT semantics, reference spreadsheets, cycles and
// iteration. The engine includes the paper's compile-time analysis
// (dependency graphs, scan-minimizing levels, formula pruning, predicate
// pushing) and run-time machinery (two-level hash access structure with
// optional disk spill, acyclic/cyclic/sequential algorithms, and
// partition-parallel execution).
//
// Basic usage:
//
//	db := sqlsheet.Open()
//	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
//	db.MustExec(`INSERT INTO f VALUES ('west','dvd',2001,10.5)`)
//	res, err := db.Query(`
//	    SELECT r, p, t, s FROM f
//	    SPREADSHEET PBY(r) DBY(p, t) MEA(s)
//	    ( s['dvd', 2002] = s['dvd', 2001] * 1.6 )`)
package sqlsheet

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"sqlsheet/internal/blockstore"
	"sqlsheet/internal/catalog"
	"sqlsheet/internal/core"
	"sqlsheet/internal/exec"
	"sqlsheet/internal/parser"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/plancache"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
	"sqlsheet/internal/wal"
)

// Value is the scalar value type of results.
type Value = types.Value

// Row is one result tuple.
type Row = types.Row

// DB is an embedded database: a catalog of tables plus session options.
//
// Concurrency contract (audited for the serving layer):
//   - Any number of Query/QueryStats/QueryOpStats/Explain/ExplainAnalyze
//     calls may run concurrently, and they acquire no lock at all: each
//     statement pins per-table MVCC images (catalog.Snapshot) published by
//     the last completed mutation and reads only those. Readers never block
//     writers and writers never block readers.
//   - Exec takes the statement lock exclusively when its batch contains
//     anything besides SELECTs (DDL, DML, REFRESH), serializing mutations
//     against each other; after every mutating statement it publishes fresh
//     table images (catalog.PublishAll), so snapshot readers observe
//     statement-boundary states only — never a half-applied mutation.
//     A SELECT-only Exec runs lock-free like Query.
//   - Programmatic mutators (CreateTable, Insert, LoadCSV, InstallAPB,
//     Configure) also take the exclusive lock and publish.
//   - Writers mutate table row slices copy-on-write (UPDATE and DELETE
//     replace the slice; INSERT appends past every published image's
//     clipped length), so a pinned image is immutable for its lifetime.
//   - Config.DisableSnapshotIsolation restores the previous regime —
//     readers share the statement lock and scan live rows — as the ablation
//     baseline; results are byte-identical either way.
//   - catalog.Table.Version is atomic besides all this: the plan cache
//     probes versions lock-free, and the exclusive path bumps them; result
//     dependencies are stamped with the executing statement's *pinned*
//     versions, so a result computed against snapshot V is never registered
//     (or served) under a version installed mid-flight.
//   - When a write-ahead log is enabled (EnableWAL), mutating statements
//     append a log record before applying and are acknowledged only after
//     the record is durable per the configured SyncMode; EnableWAL must be
//     called before the DB is shared between goroutines.
type DB struct {
	cat *catalog.Catalog
	// sess holds the session options, their fingerprint and the optional
	// distributor as one immutable value: lock-free readers load it once
	// per call and see a consistent configuration even if Configure runs
	// mid-flight.
	sess atomic.Pointer[session]
	// cache is the serving-path statement cache: parsed ASTs, optimized
	// plans (with their compiled-closure registries), pristine spreadsheet
	// access structures and full result sets, all keyed by statement
	// fingerprint × configuration fingerprint and invalidated by catalog
	// version counters.
	cache *plancache.Cache
	// stmtMu is the statement-level lock implementing the contract above:
	// mutations own it exclusively; snapshot readers skip it entirely (the
	// shared mode survives only for DisableSnapshotIsolation).
	stmtMu sync.RWMutex
	// wal, when non-nil, is the write-ahead log (EnableWAL). walReplay
	// suppresses re-logging while recovery replays the log; both are
	// written before the DB is shared and accessed by writers under the
	// exclusive statement lock.
	wal       *wal.Log
	walReplay bool
	// walAutoCP triggers a checkpoint compaction when the log exceeds this
	// many bytes (checked at write-batch boundaries).
	walAutoCP int64
}

// session is one immutable configuration state; DB.sess swaps whole values.
type session struct {
	opts Config
	// fp fingerprints opts (and the distributor's presence) so entries
	// cached under other knob settings are never served.
	fp uint64
	// dist, when non-nil, is the scatter-gather coordinator consulted for
	// plan nodes the distribution pass approved (SetDistributor).
	dist exec.Distributor
}

// PushStrategy re-exports the reference-pushing transform selection.
type PushStrategy = plan.PushStrategy

// Push strategies for predicates on functionally independent dimensions
// (§4 of the paper; compared in Fig. 2).
const (
	PushExtended    = plan.PushExtended
	PushRefSubquery = plan.PushRefSubquery
	PushUnfold      = plan.PushUnfold
	PushNone        = plan.PushNone
)

// JoinMethod re-exports join method forcing.
type JoinMethod = plan.JoinMethod

// Join methods; ForceJoin(JoinHash) reproduces the "subquery - forced hash"
// series of Fig. 2.
const (
	JoinAuto       = plan.JoinAuto
	JoinHash       = plan.JoinHash
	JoinNestedLoop = plan.JoinNestedLoop
)

// Config holds session-level options.
type Config struct {
	// Parallel is the spreadsheet degree of parallelism (number of PEs).
	Parallel int
	// Workers is the operator worker-pool size for morsel-driven parallel
	// relational operators (filter, project, hash join, group-by): 0 = one
	// worker per CPU core, 1 = serial operators. Results are row-for-row
	// identical to serial execution for any setting. The pool and the
	// spreadsheet PEs share one core budget of max(Workers, Parallel), so
	// combining both cannot oversubscribe the host.
	Workers int
	// MorselSize overrides the operator morsel size in rows (0 = 1024).
	// Mainly for tests; results do depend on it for floating-point group-bys
	// (partials merge in morsel order), so keep it fixed when comparing runs.
	MorselSize int
	// Buckets overrides the number of first-level hash partitions (0 =
	// automatic).
	Buckets int
	// MemoryBudget bounds each first-level partition's resident memory in
	// bytes; 0 = unbounded. Exceeding it spills blocks to disk under a
	// weighted-LRU policy (Fig. 5's regime).
	MemoryBudget int64
	// SpillDir is the spill directory (default: the OS temp dir).
	SpillDir string
	// Push selects the reference-pushing transform (default extended).
	Push PushStrategy
	// ForceJoin overrides join method selection.
	ForceJoin JoinMethod
	// Optimizer toggles (all false = everything enabled).
	DisableSheetPrune     bool
	DisableSheetRewrite   bool
	DisableSheetPush      bool
	DisableFilterPushdown bool
	DisableSingleScan     bool
	DisableRangeProbe     bool
	// DisableCompiledEval routes all per-row expression evaluation through
	// the tree-walking interpreter instead of closure-compiled expressions.
	// Results are byte-identical either way; this is an ablation knob.
	DisableCompiledEval bool
	// UseBTreeIndex swaps the spreadsheet's cell hash tables for B-trees
	// (the paper's abandoned first access method; ablation only).
	UseBTreeIndex bool
	// DisableParallelBuild forces the serial partition build; the access
	// structure (and every result byte) is identical either way.
	DisableParallelBuild bool
	// DisableParallelSort forces serial ORDER BY / window ordering; results
	// are byte-identical either way.
	DisableParallelSort bool
	// DisableAsyncSpill keeps spill stores on synchronous eviction writes
	// and disables read-ahead; results are byte-identical either way.
	DisableAsyncSpill bool
	// DisableVectorizedExec keeps scans, filters and key encoding on the
	// row-at-a-time engine instead of columnar batch kernels over cached
	// table images; results are byte-identical either way (ablation knob).
	DisableVectorizedExec bool
	// DisableVectorizedRules keeps spreadsheet formula application on the
	// per-cell path instead of batch rule kernels; results are byte-
	// identical either way (ablation knob). DisableVectorizedExec implies
	// it, so one flag still ablates every batch layer at once.
	DisableVectorizedRules bool
	// VecMinRows overrides the spreadsheet engine's minimum batch size
	// (partition rows for scans and existential rules, enumerated targets
	// for single-cell rules); 0 uses the engine default (64).
	VecMinRows int
	// PromoteIndependentDims enables S4-style duplication of an
	// independent dimension into the distribution key when PBY is empty.
	PromoteIndependentDims bool
	// EnableMVRewrite lets the optimizer answer subqueries from
	// materialized views whose definition matches exactly. Off by default
	// because a rewrite may serve data stale since the last REFRESH.
	EnableMVRewrite bool
	// DisablePlanCache turns the serving-path statement cache off entirely:
	// every call re-lexes, re-parses, re-plans, re-compiles and re-executes
	// (the pre-cache behaviour; ablation knob).
	DisablePlanCache bool
	// DisableResultCache keeps the plan/closure/access-structure cache but
	// disables full result-set reuse, so every call re-executes its plan.
	// Result reuse is also off whenever MemoryBudget is set: the budgeted
	// regime (Fig. 5) measures access-structure I/O, which a result hit
	// would bypass.
	DisableResultCache bool
	// PlanCacheBudget bounds the cache's resident bytes (cached results and
	// access structures dominate). 0 shares MemoryBudget when that is set,
	// and otherwise defaults to 64 MiB.
	PlanCacheBudget int64
	// DisableSnapshotIsolation restores lock-based reads: SELECT statements
	// share the statement lock and scan live table rows instead of pinning
	// MVCC images, so readers block behind writers again. Results are
	// byte-identical either way; this is the ablation baseline for the
	// non-blocking-reads benchmarks.
	DisableSnapshotIsolation bool
	// DisableFastLocalPath keeps the spreadsheet engine cloning rows across
	// the chunk-store boundary even for unbudgeted in-memory runs. With the
	// fast path on (the default when MemoryBudget is 0), input rows are
	// stored and returned by reference — safe because the engine replaces
	// stored rows copy-on-write, never mutates them. Results are
	// byte-identical either way (ablation knob).
	DisableFastLocalPath bool
}

// defaultPlanCacheBudget bounds the serving-path cache when neither
// PlanCacheBudget nor MemoryBudget is configured.
const defaultPlanCacheBudget int64 = 64 << 20

func cacheBudget(cfg Config) int64 {
	if cfg.PlanCacheBudget > 0 {
		return cfg.PlanCacheBudget
	}
	if cfg.MemoryBudget > 0 {
		return cfg.MemoryBudget
	}
	return defaultPlanCacheBudget
}

// distFingerprintBit folds the presence of a distributor into the config
// fingerprint: distribution annotates plan nodes (DistNote), so plans and
// results cached with it on must not be served with it off, and vice versa.
const distFingerprintBit = 0x9e3779b97f4a7c15

// configFingerprint hashes every Config field so sessions with different
// knobs never share cache entries (several knobs legally change result
// bytes, e.g. MorselSize reorders float group-by merges).
func configFingerprint(cfg Config) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	text := fmt.Sprintf("%+v", cfg)
	h := uint64(offset64)
	for i := 0; i < len(text); i++ {
		h ^= uint64(text[i])
		h *= prime64
	}
	return h
}

// Open creates an empty database with default options.
func Open() *DB {
	db := &DB{cat: catalog.New(), cache: plancache.New(defaultPlanCacheBudget)}
	db.sess.Store(&session{fp: configFingerprint(Config{})})
	return db
}

// Configure replaces the session options. It takes the exclusive statement
// lock, so in-flight mutations finish under the old options; lock-free
// readers that already loaded the previous session finish under it too
// (each call sees one consistent configuration). Entries cached under
// previous options stay resident until evicted but are keyed away by the
// config fingerprint.
func (db *DB) Configure(cfg Config) {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	old := db.sess.Load()
	fp := configFingerprint(cfg)
	if old.dist != nil {
		fp ^= distFingerprintBit
	}
	db.sess.Store(&session{opts: cfg, fp: fp, dist: old.dist})
	db.cache.SetBudget(cacheBudget(cfg))
}

// Options returns the current session options.
func (db *DB) Options() Config { return db.sess.Load().opts }

// SetDistributor installs (or, with nil, removes) a scatter-gather
// coordinator. Plans built afterwards run the distribution pass and carry
// distributed= annotations; executors consult d for approved nodes.
// Distributed results are byte-identical to local ones, but the plan shape
// differs (DistNote), so the config fingerprint changes with the setting to
// keep cached plans and results coherent.
func (db *DB) SetDistributor(d exec.Distributor) {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	old := db.sess.Load()
	fp := configFingerprint(old.opts)
	if d != nil {
		fp ^= distFingerprintBit
	}
	db.sess.Store(&session{opts: old.opts, fp: fp, dist: d})
}

// readLock acquires the shared statement lock when snapshot isolation is
// disabled (the lock-based ablation baseline) and is a no-op otherwise.
// The returned function releases whatever was taken.
func (db *DB) readLock(s *session) func() {
	if !s.opts.DisableSnapshotIsolation {
		return func() {}
	}
	db.stmtMu.RLock()
	return db.stmtMu.RUnlock
}

// newSnapshot returns the per-statement MVCC snapshot, or nil when snapshot
// isolation is disabled (callers then read live rows under the shared lock).
func (db *DB) newSnapshot(s *session) *catalog.Snapshot {
	if s.opts.DisableSnapshotIsolation {
		return nil
	}
	return catalog.NewSnapshot()
}

// Result is a materialized query result.
type Result struct {
	Columns []string
	Rows    []Row
	inner   *exec.Result
}

// String renders the result as an aligned table.
func (r *Result) String() string {
	if r.inner == nil {
		return "(no rows)\n"
	}
	return r.inner.FormatTable()
}

// prepare is the shared entry step for every statement path: it parses sql
// through the statement-text cache, so a repeated text skips the parser
// entirely (the fingerprint is whitespace- and case-insensitive, so
// reformatted texts share the parse too).
func (db *DB) prepare(s *session, sql string) ([]sqlast.Statement, error) {
	if s.opts.DisablePlanCache {
		return parser.Parse(sql)
	}
	fp, err := parser.Fingerprint(sql)
	if err != nil {
		// Lexically invalid; let the parser produce its usual error.
		return parser.Parse(sql)
	}
	if stmts, ok := db.cache.Text(fp); ok {
		return stmts, nil
	}
	stmts, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	db.cache.SetText(fp, stmts)
	return stmts, nil
}

// prepareQuery prepares a single-SELECT text, reproducing ParseQuery's
// error messages for anything else.
func (db *DB) prepareQuery(s *session, sql string) (*sqlast.SelectStmt, error) {
	stmts, err := db.prepare(s, sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	q, ok := stmts[0].(*sqlast.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("statement is not a query")
	}
	return q, nil
}

// queryOutcome carries per-call cache information alongside a result, for
// stats reporting and EXPLAIN annotations.
type queryOutcome struct {
	planHit      bool
	resultHit    bool
	structReused int
	deps         string // "table=version, ..." of the dependency snapshot
	planText     string // filled when wantPlan
	sheet        blockstore.Stats
	ops          exec.Stats
}

// runSelect executes one SELECT through the serving-path cache. A valid
// cached result is returned directly (unless forceExec); otherwise the
// cached — or freshly built — plan executes with access-structure reuse,
// serialized per entry because cached plans carry mutable state. A caller
// that finds the entry busy executes privately rather than queueing, so
// concurrent identical statements never serialize behind each other.
//
// Each call pins its own MVCC snapshot: planning (which may execute
// reference subqueries), execution and dependency stamping all read the
// same pinned images, so a writer installing new versions mid-flight can
// waste this call's cache stores but never taint them.
func (db *DB) runSelect(ctx context.Context, s *session, stmt *sqlast.SelectStmt, forceExec, wantPlan bool) (*exec.Result, queryOutcome, error) {
	var out queryOutcome
	snap := db.newSnapshot(s)
	if s.opts.DisablePlanCache {
		res, err := db.runSelectUncached(ctx, s, snap, stmt, wantPlan, &out)
		return res, out, err
	}
	key := plancache.Key{Stmt: sqlast.Fingerprint(stmt), Cfg: s.fp}
	e := db.cache.Entry(key)
	useResult := !forceExec && !s.opts.DisableResultCache && s.opts.MemoryBudget == 0
	if useResult {
		if schema, rows, deps, ok := db.cache.Result(e, db.cat); ok {
			out.resultHit, out.planHit = true, true
			out.deps = plancache.DepString(deps)
			db.fillCacheStats(&out)
			return &exec.Result{Schema: schema, Rows: rows}, out, nil
		}
	}
	if !e.ExecMu.TryLock() {
		// Another goroutine is executing this entry; run privately.
		res, err := db.runSelectUncached(ctx, s, snap, stmt, wantPlan, &out)
		return res, out, err
	}
	defer e.ExecMu.Unlock()
	if useResult {
		// Re-check under the lock: the previous holder may have cached it.
		if schema, rows, deps, ok := db.cache.Result(e, db.cat); ok {
			out.resultHit, out.planHit = true, true
			out.deps = plancache.DepString(deps)
			db.fillCacheStats(&out)
			return &exec.Result{Schema: schema, Rows: rows}, out, nil
		}
	}
	ex := db.newExecutor(ctx, s, snap)
	p, deps, hit := db.cache.Plan(e, db.cat)
	if p == nil {
		var err error
		p, err = plan.Build(db.cat, stmt, ex.Opts.PlanOpts)
		if err != nil {
			return nil, out, err
		}
		d, sheets := plancache.CollectDeps(db.cat, stmt, p, snap)
		db.cache.SetPlan(e, stmt, p, d, sheets)
		deps = d
	}
	out.planHit = hit
	out.deps = plancache.DepString(deps)
	if wantPlan {
		out.planText = plan.Explain(p)
	}
	ex.Opts.Structs = db.structCache(s, e)
	res, err := ex.Execute(p, nil)
	out.sheet, out.ops = ex.SheetStats, ex.ExecStats
	out.structReused = ex.ExecStats.Cache.StructuresReused
	if err != nil {
		return nil, out, err
	}
	// DepsMatchSnapshot closes the staleness window: if a writer installed
	// new versions between this entry's dependency stamping and this call's
	// pins, the rows do not correspond to the stamp and must not be
	// registered under it.
	if !s.opts.DisableResultCache && s.opts.MemoryBudget == 0 && ctx.Err() == nil &&
		plancache.DepsMatchSnapshot(deps, snap) {
		db.cache.SetResult(e, res.Schema, res.Rows)
	}
	db.fillCacheStats(&out)
	return res, out, nil
}

// runSelectUncached is the cache-bypassing execution path (cache disabled,
// or the entry is busy).
func (db *DB) runSelectUncached(ctx context.Context, s *session, snap *catalog.Snapshot, stmt *sqlast.SelectStmt, wantPlan bool, out *queryOutcome) (*exec.Result, error) {
	ex := db.newExecutor(ctx, s, snap)
	p, err := plan.Build(db.cat, stmt, ex.Opts.PlanOpts)
	if err != nil {
		return nil, err
	}
	if wantPlan {
		out.planText = plan.Explain(p)
	}
	res, err := ex.Execute(p, nil)
	out.sheet, out.ops = ex.SheetStats, ex.ExecStats
	return res, err
}

// fillCacheStats stamps the per-call flags and cumulative counters into the
// outcome's operator stats (surfaced by QueryOpStats).
func (db *DB) fillCacheStats(out *queryOutcome) {
	c := db.cache.Counters()
	out.ops.Cache = exec.CacheStats{
		PlanHit:          out.planHit,
		ResultHit:        out.resultHit,
		StructuresReused: out.structReused,
		Hits:             c.PlanHits,
		Misses:           c.PlanMisses,
		ResultHits:       c.ResultHits,
		StructReuses:     c.StructReuses,
		Evictions:        c.Evictions,
		Invalidations:    c.Invalidations,
	}
}

// cacheStructs adapts a plan-cache entry to exec.StructureCache.
type cacheStructs struct {
	c *plancache.Cache
	e *plancache.Entry
}

func (s cacheStructs) Lookup(n *plan.Spreadsheet) (*core.PartitionSet, bool) {
	return s.c.Structure(s.e, n)
}

func (s cacheStructs) Store(n *plan.Spreadsheet, ps *core.PartitionSet) {
	s.c.StoreStructure(s.e, n, ps)
}

// structCache returns the structure cache view of an entry, or nil when
// structures are not reusable under the current options (spill-backed
// stores rebuild per run; B-tree indexes have no cloning support).
func (db *DB) structCache(s *session, e *plancache.Entry) exec.StructureCache {
	if s.opts.MemoryBudget > 0 || s.opts.UseBTreeIndex {
		return nil
	}
	return cacheStructs{c: db.cache, e: e}
}

// Exec runs one or more ';'-separated statements, returning the result of
// the last one. Use it for DDL, DML and queries alike. SELECT statements go
// through the serving-path cache; everything else executes directly (and
// invalidates dependents via catalog version counters).
func (db *DB) Exec(sql string) (*Result, error) {
	return db.ExecContext(context.Background(), sql)
}

// isReadOnly reports whether every statement of a batch is a SELECT (and the
// batch may therefore run under the shared statement lock).
func isReadOnly(stmts []sqlast.Statement) bool {
	for _, s := range stmts {
		if _, ok := s.(*sqlast.SelectStmt); !ok {
			return false
		}
	}
	return true
}

// ExecContext is Exec with cancellation: when ctx is cancelled or times out,
// execution stops at the next cancellation point (operator morsel,
// spreadsheet partition, cyclic/ITERATE iteration, partition-scan tick) and
// the context's error is returned. A batch containing DDL/DML holds the
// statement lock exclusively; a SELECT-only batch runs lock-free against
// per-statement snapshots. The lock is only acquired after cancellation is
// checked, so a timed-out request never queues behind a writer just to
// fail. With a write-ahead log enabled, each mutating statement is logged
// before it applies and the call returns only after the batch's log records
// are durable per the configured SyncMode (the group-commit fsync runs
// after the lock is released, so concurrent writers coalesce fsyncs without
// serializing behind the disk).
func (db *DB) ExecContext(ctx context.Context, sql string) (*Result, error) {
	s := db.sess.Load()
	stmts, err := db.prepare(s, sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("empty statement")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if isReadOnly(stmts) {
		unlock := db.readLock(s)
		defer unlock()
		var last *Result
		for _, stmt := range stmts {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, _, err := db.runSelect(ctx, s, stmt.(*sqlast.SelectStmt), false, false)
			if err != nil {
				return nil, err
			}
			last = wrapResult(res)
		}
		return last, nil
	}
	db.stmtMu.Lock()
	last, pos, err := db.execWriteBatch(ctx, s, stmts)
	db.stmtMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := db.walCommit(pos); err != nil {
		return nil, err
	}
	return last, nil
}

// execWriteBatch runs a batch containing at least one mutation; the caller
// holds the exclusive statement lock. Every mutating statement is appended
// to the write-ahead log (when enabled) before it executes, and fresh MVCC
// images are published after it, so lock-free readers only ever pin
// statement-boundary states. The returned position is the batch's last
// logged record, for the caller to commit after releasing the lock.
func (db *DB) execWriteBatch(ctx context.Context, s *session, stmts []sqlast.Statement) (*Result, wal.Pos, error) {
	var last *Result
	var pos wal.Pos
	for _, stmt := range stmts {
		if err := ctx.Err(); err != nil {
			return nil, pos, err
		}
		if sel, ok := stmt.(*sqlast.SelectStmt); ok {
			res, _, err := db.runSelect(ctx, s, sel, false, false)
			if err != nil {
				return nil, pos, err
			}
			last = wrapResult(res)
			continue
		}
		p, err := db.logRecord(wal.KindStmt, []byte(sqlast.FormatStatement(stmt)))
		if err != nil {
			return nil, pos, err
		}
		if p != (wal.Pos{}) {
			pos = p
		}
		ex := db.newExecutor(ctx, s, nil)
		res, err := ex.ExecStatement(stmt)
		// Publish even on error: a failed statement may have applied
		// partially (and bumped versions) before failing; readers must see
		// that state, and WAL replay reproduces it deterministically.
		db.cat.PublishAll()
		if err != nil {
			return nil, pos, err
		}
		last = wrapResult(res)
	}
	db.maybeCheckpointLocked()
	return last, pos, nil
}

// MustExec is Exec that panics on error (setup code and examples).
func (db *DB) MustExec(sql string) *Result {
	res, err := db.Exec(sql)
	if err != nil {
		panic(err)
	}
	return res
}

// Query runs a single SELECT statement.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext is Query with cancellation (see ExecContext).
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	s := db.sess.Load()
	stmt, err := db.prepareQuery(s, sql)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	unlock := db.readLock(s)
	defer unlock()
	res, _, err := db.runSelect(ctx, s, stmt, false, false)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// QueryStats runs a query and also returns the spreadsheet access
// structure's I/O statistics (block loads/evictions, bytes spilled).
// Result reuse is off whenever MemoryBudget is set, so budgeted runs always
// report real I/O.
func (db *DB) QueryStats(sql string) (*Result, blockstore.Stats, error) {
	s := db.sess.Load()
	stmt, err := db.prepareQuery(s, sql)
	if err != nil {
		return nil, blockstore.Stats{}, err
	}
	unlock := db.readLock(s)
	defer unlock()
	res, out, err := db.runSelect(context.Background(), s, stmt, false, false)
	if err != nil {
		return nil, blockstore.Stats{}, err
	}
	return wrapResult(res), out.sheet, nil
}

// OpStats re-exports the per-operator execution statistics collected by the
// morsel-driven parallel operators (rows, morsels, workers, elapsed time).
type OpStats = exec.Stats

// QueryOpStats runs a query and also returns the per-operator parallel
// execution statistics. Operators that ran serially (input below the morsel
// threshold, or not parallelizable) do not appear. Stats.Cache carries the
// serving-path cache's per-call flags and cumulative hit/miss/eviction
// counters; a result hit reports no operator lines (nothing executed).
func (db *DB) QueryOpStats(sql string) (*Result, OpStats, error) {
	s := db.sess.Load()
	stmt, err := db.prepareQuery(s, sql)
	if err != nil {
		return nil, OpStats{}, err
	}
	unlock := db.readLock(s)
	defer unlock()
	res, out, err := db.runSelect(context.Background(), s, stmt, false, false)
	if err != nil {
		return nil, OpStats{}, err
	}
	return wrapResult(res), out.ops, nil
}

// ExplainAnalyze executes the query and returns the optimized plan followed
// by the per-operator parallel execution statistics (EXPLAIN ANALYZE style)
// and cache annotations. It always executes — a cached result is never
// served — but does reuse the cached plan and access structures, so the
// annotations show exactly what a repeated Query call would reuse.
func (db *DB) ExplainAnalyze(sql string) (string, error) {
	s := db.sess.Load()
	stmt, err := db.prepareQuery(s, sql)
	if err != nil {
		return "", err
	}
	unlock := db.readLock(s)
	defer unlock()
	_, out, err := db.runSelect(context.Background(), s, stmt, true, true)
	if err != nil {
		return "", err
	}
	text := out.planText + "\nexecution:\n" + out.ops.String()
	if !s.opts.DisablePlanCache {
		text += "cache: plan " + hitMiss(out.planHit) + "\n"
		if out.structReused > 0 {
			text += fmt.Sprintf("cache: structure reused (table versions %s)\n", out.deps)
		}
	}
	return text, nil
}

func hitMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// Explain returns the optimized plan of a query as indented text, including
// spreadsheet analysis (levels, pruned formulas, pushed predicates) and,
// when the cache is enabled, whether the plan came from it.
func (db *DB) Explain(sql string) (string, error) {
	s := db.sess.Load()
	stmt, err := db.prepareQuery(s, sql)
	if err != nil {
		return "", err
	}
	unlock := db.readLock(s)
	defer unlock()
	snap := db.newSnapshot(s)
	ex := db.newExecutor(context.Background(), s, snap)
	if s.opts.DisablePlanCache {
		p, err := plan.Build(db.cat, stmt, ex.Opts.PlanOpts)
		if err != nil {
			return "", err
		}
		return plan.Explain(p), nil
	}
	key := plancache.Key{Stmt: sqlast.Fingerprint(stmt), Cfg: s.fp}
	e := db.cache.Entry(key)
	// Explain mutates the plan's spreadsheet Model (lazy Analyze), so it
	// must hold the entry's execution lock like any other plan use.
	e.ExecMu.Lock()
	defer e.ExecMu.Unlock()
	p, _, hit := db.cache.Plan(e, db.cat)
	if p == nil {
		p, err = plan.Build(db.cat, stmt, ex.Opts.PlanOpts)
		if err != nil {
			return "", err
		}
		deps, sheets := plancache.CollectDeps(db.cat, stmt, p, snap)
		db.cache.SetPlan(e, stmt, p, deps, sheets)
	}
	return plan.Explain(p) + "cache: plan " + hitMiss(hit) + "\n", nil
}

// CreateTable registers a table programmatically. Column kinds come from
// types: use ColInt/ColFloat/ColString/ColBool helpers.
func (db *DB) CreateTable(name string, cols ...Column) error {
	sc := make([]types.Column, len(cols))
	for i, c := range cols {
		sc[i] = types.Column(c)
	}
	db.stmtMu.Lock()
	pos, err := db.logRecord(wal.KindCreate, wal.EncodeCreate(name, sc))
	if err == nil {
		_, err = db.cat.Create(name, types.NewSchema(sc...))
	}
	db.stmtMu.Unlock()
	if err != nil {
		return err
	}
	return db.walCommit(pos)
}

// Column declares one table column.
type Column types.Column

// Column constructors.
func ColInt(name string) Column    { return Column{Name: name, Kind: types.KindInt} }
func ColFloat(name string) Column  { return Column{Name: name, Kind: types.KindFloat} }
func ColString(name string) Column { return Column{Name: name, Kind: types.KindString} }
func ColBool(name string) Column   { return Column{Name: name, Kind: types.KindBool} }

// Insert appends rows to a table programmatically. Values may be Go ints,
// floats, strings, bools, nil, or Value.
func (db *DB) Insert(table string, rows ...[]any) error {
	conv := make([]types.Row, len(rows))
	for j, r := range rows {
		row := make(types.Row, len(r))
		for i, v := range r {
			row[i] = ToValue(v)
		}
		conv[j] = row
	}
	db.stmtMu.Lock()
	pos, err := db.insertLocked(table, conv)
	db.cat.PublishAll()
	db.stmtMu.Unlock()
	if err != nil {
		return err
	}
	return db.walCommit(pos)
}

// insertLocked logs and applies a programmatic row load; the caller holds
// the exclusive statement lock. The record is appended before t.Insert runs
// (replay re-applies through the same coercion, re-failing at the same row
// if the original failed mid-batch).
func (db *DB) insertLocked(table string, rows []types.Row) (wal.Pos, error) {
	t, ok := db.cat.Get(table)
	if !ok {
		return wal.Pos{}, fmt.Errorf("unknown table %q", table)
	}
	pos, err := db.logRecord(wal.KindRows, wal.EncodeRows(table, rows))
	if err != nil {
		return pos, err
	}
	for _, row := range rows {
		if err := t.Insert(row); err != nil {
			return pos, err
		}
	}
	return pos, nil
}

// LoadCSV bulk-loads CSV data into an existing table. Unlike the other
// mutators, the delta is logged after the load (an io.Reader cannot be
// replayed): a crash between apply and append loses the load, but the call
// had not returned, so durability-implies-acknowledged still holds.
func (db *DB) LoadCSV(table string, r io.Reader, skipHeader bool) (int, error) {
	db.stmtMu.Lock()
	n, pos, err := db.loadCSVLocked(table, r, skipHeader)
	db.cat.PublishAll()
	db.stmtMu.Unlock()
	if err != nil {
		return n, err
	}
	return n, db.walCommit(pos)
}

func (db *DB) loadCSVLocked(table string, r io.Reader, skipHeader bool) (int, wal.Pos, error) {
	t, ok := db.cat.Get(table)
	if !ok {
		return 0, wal.Pos{}, fmt.Errorf("unknown table %q", table)
	}
	before := len(t.Rows)
	n, err := t.LoadCSV(r, skipHeader)
	var pos wal.Pos
	if len(t.Rows) > before {
		// Log whatever actually landed (possibly a partial batch when err
		// is non-nil) so replay reproduces the same state.
		p, logErr := db.logRecord(wal.KindRows, wal.EncodeRows(table, t.Rows[before:]))
		if logErr != nil && err == nil {
			err = logErr
		}
		pos = p
	}
	return n, pos, err
}

// Tables lists the catalog's table names (materialized views included:
// their rows are stored as tables).
func (db *DB) Tables() []string { return db.cat.Names() }

// Views lists the catalog's plain view names.
func (db *DB) Views() []string { return db.cat.ViewNames() }

// MatViews lists the catalog's materialized view names.
func (db *DB) MatViews() []string { return db.cat.MatViewNames() }

// TableRows returns the row count of a table (0 if absent), read from the
// table's published MVCC image so it never blocks behind a writer.
func (db *DB) TableRows(name string) int {
	s := db.sess.Load()
	unlock := db.readLock(s)
	defer unlock()
	t, ok := db.cat.Get(name)
	if !ok {
		return 0
	}
	return len(t.Img().Rows)
}

// CacheCounters is a snapshot of the serving-path cache's cumulative
// counters, re-exported for the metrics endpoint and monitoring.
type CacheCounters struct {
	PlanHits      int64
	PlanMisses    int64
	ResultHits    int64
	StructReuses  int64
	Evictions     int64
	Invalidations int64
}

// CacheCounters snapshots the statement cache's cumulative statistics.
func (db *DB) CacheCounters() CacheCounters {
	c := db.cache.Counters()
	return CacheCounters{
		PlanHits:      c.PlanHits,
		PlanMisses:    c.PlanMisses,
		ResultHits:    c.ResultHits,
		StructReuses:  c.StructReuses,
		Evictions:     c.Evictions,
		Invalidations: c.Invalidations,
	}
}

// ToValue converts a Go value into an engine Value.
func ToValue(v any) Value {
	switch x := v.(type) {
	case nil:
		return types.Null
	case int:
		return types.NewInt(int64(x))
	case int32:
		return types.NewInt(int64(x))
	case int64:
		return types.NewInt(x)
	case float32:
		return types.NewFloat(float64(x))
	case float64:
		return types.NewFloat(x)
	case string:
		return types.NewString(x)
	case bool:
		return types.NewBool(x)
	case types.Value:
		return x
	}
	return types.NewString(fmt.Sprint(v))
}

// newExecutor builds an executor for one statement. snap, when non-nil, is
// the statement's MVCC snapshot: every table access (including plan-time
// reference-subquery execution, since the executor doubles as the planner's
// RefExecutor) pins and reads published images. DML executors pass nil and
// read live rows under the exclusive statement lock.
func (db *DB) newExecutor(ctx context.Context, s *session, snap *catalog.Snapshot) *exec.Executor {
	o := s.opts
	ex := exec.New(db.cat, exec.Options{
		Ctx:                    ctx,
		Parallel:               o.Parallel,
		Workers:                o.Workers,
		MorselSize:             o.MorselSize,
		Buckets:                o.Buckets,
		MemoryBudget:           o.MemoryBudget,
		SpillDir:               o.SpillDir,
		DisableSingleScan:      o.DisableSingleScan,
		DisableRangeProbe:      o.DisableRangeProbe,
		UseBTreeIndex:          o.UseBTreeIndex,
		DisableCompiledEval:    o.DisableCompiledEval,
		DisableParallelBuild:   o.DisableParallelBuild,
		DisableParallelSort:    o.DisableParallelSort,
		DisableAsyncSpill:      o.DisableAsyncSpill,
		DisableVectorizedExec:  o.DisableVectorizedExec,
		DisableVectorizedRules: o.DisableVectorizedRules,
		VecMinRows:             o.VecMinRows,
		Dist:                   s.dist,
		Snap:                   snap,
		FastLocalPath:          o.MemoryBudget == 0 && !o.DisableFastLocalPath,
	})
	ex.Opts.PlanOpts = &plan.Options{
		ForceJoin:              o.ForceJoin,
		Push:                   o.Push,
		DisableSheetPrune:      o.DisableSheetPrune,
		DisableSheetRewrite:    o.DisableSheetRewrite,
		DisableSheetPush:       o.DisableSheetPush,
		DisableFilterPushdown:  o.DisableFilterPushdown,
		DisableCompiledEval:    o.DisableCompiledEval,
		Parallel:               o.Parallel,
		Workers:                o.Workers,
		PromoteIndependentDims: o.PromoteIndependentDims,
		EnableMVRewrite:        o.EnableMVRewrite,
		DisableParallelBuild:   o.DisableParallelBuild,
		DisableParallelSort:    o.DisableParallelSort,
		DisableVectorizedExec:  o.DisableVectorizedExec,
		DisableVectorizedRules: o.DisableVectorizedRules,
		Distributed:            s.dist != nil,
		Exec:                   ex,
	}
	return ex
}

func wrapResult(res *exec.Result) *Result {
	out := &Result{inner: res, Rows: res.Rows}
	for _, c := range res.Schema.Cols {
		out.Columns = append(out.Columns, c.Name)
	}
	return out
}

// Parse exposes the SQL parser for tooling (returns the statement count).
func Parse(sql string) (int, error) {
	stmts, err := parser.Parse(sql)
	return len(stmts), err
}
