package sqlast

// Fingerprint returns a stable 64-bit FNV-1a hash of a statement's
// canonical rendering (FormatStatement), so statements that parse to the
// same tree — regardless of original whitespace, letter case or redundant
// parentheses — share a fingerprint. The plan cache keys on this.
func Fingerprint(s Statement) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	text := FormatStatement(s)
	h := uint64(offset64)
	for i := 0; i < len(text); i++ {
		h ^= uint64(text[i])
		h *= prime64
	}
	return h
}
