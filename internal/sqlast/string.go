package sqlast

import (
	"fmt"
	"strings"
)

func (e *Literal) String() string { return e.Val.SQLLiteral() }

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return QuoteIdent(e.Table) + "." + QuoteIdent(e.Name)
	}
	return QuoteIdent(e.Name)
}

func (e *Star) String() string {
	if e.Table != "" {
		return e.Table + ".*"
	}
	return "*"
}

func (e *Unary) String() string {
	if e.Op == "NOT" {
		return "NOT " + e.X.String()
	}
	return e.Op + e.X.String()
}

func (e *Binary) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

func (e *Between) String() string {
	n := ""
	if e.Not {
		n = " NOT"
	}
	return e.X.String() + n + " BETWEEN " + e.Lo.String() + " AND " + e.Hi.String()
}

func exprList(es []Expr) string {
	ss := make([]string, len(es))
	for i, e := range es {
		ss[i] = e.String()
	}
	return strings.Join(ss, ", ")
}

func (e *InList) String() string {
	n := ""
	if e.Not {
		n = " NOT"
	}
	return e.X.String() + n + " IN (" + exprList(e.List) + ")"
}

func (e *InSubquery) String() string {
	n := ""
	if e.Not {
		n = " NOT"
	}
	return e.X.String() + n + " IN (" + FormatStatement(e.Sub) + ")"
}

func (e *Exists) String() string {
	n := ""
	if e.Not {
		n = "NOT "
	}
	return n + "EXISTS (" + FormatStatement(e.Sub) + ")"
}

func (e *ScalarSubquery) String() string { return "(" + FormatStatement(e.Sub) + ")" }

func (e *IsNull) String() string {
	if e.Not {
		return e.X.String() + " IS NOT NULL"
	}
	return e.X.String() + " IS NULL"
}

func (e *Like) String() string {
	n := ""
	if e.Not {
		n = " NOT"
	}
	return e.X.String() + n + " LIKE " + e.Pattern.String()
}

func (e *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	if e.Operand != nil {
		b.WriteString(" " + e.Operand.String())
	}
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

func (e *FuncCall) String() string {
	if e.Star {
		return QuoteIdent(e.Name) + "(*)"
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return QuoteIdent(e.Name) + "(" + d + exprList(e.Args) + ")"
}

func (e *CurrentV) String() string { return "cv(" + QuoteIdent(e.Dim) + ")" }

func (e *WindowFunc) String() string {
	var b strings.Builder
	b.WriteString(e.Func.String())
	b.WriteString(" OVER (")
	if len(e.PartitionBy) > 0 {
		b.WriteString("PARTITION BY " + exprList(e.PartitionBy))
	}
	for i, o := range e.OrderBy {
		if i == 0 {
			if len(e.PartitionBy) > 0 {
				b.WriteByte(' ')
			}
			b.WriteString("ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.Expr.String())
		if o.Desc {
			b.WriteString(" DESC")
		}
	}
	if e.Frame != nil {
		fmt.Fprintf(&b, " ROWS BETWEEN %s AND %s", e.Frame.Start, e.Frame.End)
	}
	b.WriteByte(')')
	return b.String()
}

// String renders a frame bound the way it is written.
func (fb FrameBound) String() string {
	switch fb.Kind {
	case FrameUnboundedPreceding:
		return "UNBOUNDED PRECEDING"
	case FramePreceding:
		return fmt.Sprintf("%d PRECEDING", fb.N)
	case FrameCurrentRow:
		return "CURRENT ROW"
	case FrameFollowing:
		return fmt.Sprintf("%d FOLLOWING", fb.N)
	case FrameUnboundedFollowing:
		return "UNBOUNDED FOLLOWING"
	}
	return "?"
}

func (q DimQual) String() string {
	switch q.Kind {
	case QualStar:
		return "*"
	case QualPoint:
		if q.Dim != "" {
			return QuoteIdent(q.Dim) + "=" + q.Val.String()
		}
		return q.Val.String()
	case QualPred:
		return q.Pred.String()
	case QualRange:
		lo, hi := "<", "<"
		if q.LoIncl {
			lo = "<="
		}
		if q.HiIncl {
			hi = "<="
		}
		return q.Lo.String() + lo + QuoteIdent(q.Dim) + hi + q.Hi.String()
	case QualForIn:
		if q.ForSub != nil {
			return "FOR " + QuoteIdent(q.Dim) + " IN (" + FormatStatement(q.ForSub) + ")"
		}
		if q.ForFrom != nil {
			out := "FOR " + QuoteIdent(q.Dim) + " FROM " + q.ForFrom.String() + " TO " + q.ForTo.String()
			if q.ForStep != nil {
				out += " INCREMENT " + q.ForStep.String()
			}
			return out
		}
		return "FOR " + QuoteIdent(q.Dim) + " IN (" + exprList(q.ForVals) + ")"
	}
	return "?"
}

func qualList(qs []DimQual) string {
	ss := make([]string, len(qs))
	for i, q := range qs {
		ss[i] = q.String()
	}
	return strings.Join(ss, ", ")
}

func (e *CellRef) String() string {
	s := QuoteIdent(e.Measure)
	if e.Sheet != "" {
		s = QuoteIdent(e.Sheet) + "." + s
	}
	return s + "[" + qualList(e.Quals) + "]"
}

func (e *CellAgg) String() string {
	args := exprList(e.Args)
	if e.Star {
		args = "*"
	}
	return QuoteIdent(e.Func) + "(" + args + ")[" + qualList(e.Quals) + "]"
}

func (e *Previous) String() string { return "previous(" + e.Cell.String() + ")" }

func (e *Present) String() string {
	if e.Not {
		return e.Cell.String() + " IS NOT PRESENT"
	}
	return e.Cell.String() + " IS PRESENT"
}

// String renders the formula roughly as written, for EXPLAIN output.
func (f *Formula) String() string {
	var b strings.Builder
	if f.Label != "" {
		b.WriteString(QuoteIdent(f.Label) + ": ")
	}
	if m := f.Mode.String(); m != "" {
		b.WriteString(m + " ")
	}
	b.WriteString(f.LHS.String())
	for i, o := range f.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.Expr.String())
		if o.Desc {
			b.WriteString(" DESC")
		}
	}
	b.WriteString(" = ")
	b.WriteString(f.RHS.String())
	return b.String()
}
