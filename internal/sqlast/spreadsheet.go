package sqlast

// SpreadsheetClause is the paper's new query clause: PARTITION BY /
// DIMENSION BY / MEASURES column classification, processing options,
// optional read-only reference spreadsheets, and a list of formulas.
type SpreadsheetClause struct {
	Refs []*RefSheet

	PBY []Expr // partition columns (usually ColumnRefs)
	DBY []Expr // dimension columns: array indexes within a partition
	MEA []MeaItem

	// DefaultMode applies to formulas without an explicit UPDATE/UPSERT
	// annotation. The paper's default is UPSERT.
	DefaultMode FormulaMode

	SeqOrder  bool // SEQUENTIAL ORDER (default AUTOMATIC ORDER)
	IgnoreNav bool
	// ReturnUpdated restricts the result to rows assigned or created by
	// the formulas (RETURN UPDATED ROWS).
	ReturnUpdated bool

	Iterate *IterateOpt // nil unless ITERATE(n) given

	Rules []*Formula
}

// IterateOpt is ITERATE (N) [UNTIL (cond)].
type IterateOpt struct {
	N     int
	Until Expr // may reference previous(cell); nil if absent
}

// MeaItem is one MEASURES entry: an expression with an optional alias.
// A bare identifier that does not resolve to an input column declares a new
// NULL-initialized measure; any other expression initializes a new measure
// per input row (e.g. "0 AS x").
type MeaItem struct {
	Expr  Expr
	Alias string
}

// Name returns the measure's output column name.
func (m MeaItem) Name() string {
	if m.Alias != "" {
		return m.Alias
	}
	if c, ok := m.Expr.(*ColumnRef); ok {
		return c.Name
	}
	return m.Expr.String()
}

// RefSheet is a read-only reference spreadsheet: an n-dimensional lookup
// array defined over another query block.
type RefSheet struct {
	Name  string
	Query *SelectStmt
	DBY   []Expr
	MEA   []MeaItem
}

// FormulaMode is UPDATE / UPSERT / unspecified.
type FormulaMode uint8

const (
	// ModeDefault defers to the clause's DefaultMode.
	ModeDefault FormulaMode = iota
	// ModeUpdate ignores nonexistent target cells.
	ModeUpdate
	// ModeUpsert creates nonexistent target cells (single-cell and FOR-IN
	// left sides only).
	ModeUpsert
)

func (m FormulaMode) String() string {
	switch m {
	case ModeUpdate:
		return "UPDATE"
	case ModeUpsert:
		return "UPSERT"
	}
	return ""
}

// Formula is one assignment rule: LHS cell (or range of cells) = RHS expr.
type Formula struct {
	Label   string
	Mode    FormulaMode
	LHS     *CellRef
	OrderBy []OrderItem // evaluation order for existential left sides
	RHS     Expr
}
