package sqlast

import (
	"strings"
	"testing"

	"sqlsheet/internal/types"
)

func lit(v any) *Literal {
	switch x := v.(type) {
	case int:
		return &Literal{Val: types.NewInt(int64(x))}
	case string:
		return &Literal{Val: types.NewString(x)}
	case float64:
		return &Literal{Val: types.NewFloat(x)}
	}
	return &Literal{Val: types.Null}
}

func col(n string) *ColumnRef { return &ColumnRef{Name: n} }

// tinyQuery is "SELECT 1" for subquery-bearing nodes.
func tinyQuery() *SelectStmt {
	return &SelectStmt{Query: &SelectBody{Items: []SelectItem{{Expr: lit(1)}}}}
}

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{lit(1), "1"},
		{lit("dvd"), "'dvd'"},
		{&ColumnRef{Table: "f", Name: "p"}, "f.p"},
		{&Star{}, "*"},
		{&Star{Table: "f"}, "f.*"},
		{&Unary{Op: "-", X: col("x")}, "-x"},
		{&Unary{Op: "NOT", X: col("x")}, "NOT x"},
		{&Binary{Op: "+", L: lit(1), R: lit(2)}, "(1 + 2)"},
		{&Between{X: col("t"), Lo: lit(1), Hi: lit(2)}, "t BETWEEN 1 AND 2"},
		{&Between{X: col("t"), Lo: lit(1), Hi: lit(2), Not: true}, "t NOT BETWEEN 1 AND 2"},
		{&InList{X: col("p"), List: []Expr{lit("a"), lit("b")}}, "p IN ('a', 'b')"},
		{&InList{X: col("p"), List: []Expr{lit("a")}, Not: true}, "p NOT IN ('a')"},
		{&InSubquery{X: col("p"), Sub: tinyQuery()}, "p IN (SELECT 1)"},
		{&Exists{Not: true, Sub: tinyQuery()}, "NOT EXISTS (SELECT 1)"},
		{&ScalarSubquery{Sub: tinyQuery()}, "(SELECT 1)"},
		{&IsNull{X: col("x")}, "x IS NULL"},
		{&IsNull{X: col("x"), Not: true}, "x IS NOT NULL"},
		{&Like{X: col("s"), Pattern: lit("a%")}, "s LIKE 'a%'"},
		{&Like{X: col("s"), Pattern: lit("a%"), Not: true}, "s NOT LIKE 'a%'"},
		{&FuncCall{Name: "count", Star: true}, "count(*)"},
		{&FuncCall{Name: "sum", Args: []Expr{col("s")}, Distinct: true}, "sum(DISTINCT s)"},
		{&CurrentV{Dim: "t"}, "cv(t)"},
		{&CellRef{Measure: "s", Quals: []DimQual{{Kind: QualStar}}}, "s[*]"},
		{&CellRef{Sheet: "ref", Measure: "m", Quals: []DimQual{{Kind: QualPoint, Val: lit(1)}}}, "ref.m[1]"},
		{&CellAgg{Func: "count", Star: true, Quals: []DimQual{{Kind: QualStar}}}, "count(*)[*]"},
		{&Present{Cell: &CellRef{Measure: "s", Quals: []DimQual{{Kind: QualPoint, Val: lit(1)}}}}, "s[1] IS PRESENT"},
		{&Present{Not: true, Cell: &CellRef{Measure: "s", Quals: []DimQual{{Kind: QualPoint, Val: lit(1)}}}}, "s[1] IS NOT PRESENT"},
		{&Previous{Cell: &CellRef{Measure: "s", Quals: []DimQual{{Kind: QualPoint, Val: lit(1)}}}}, "previous(s[1])"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestCaseString(t *testing.T) {
	e := &Case{
		Operand: col("x"),
		Whens:   []When{{Cond: lit(1), Then: lit("one")}},
		Else:    lit("other"),
	}
	want := "CASE x WHEN 1 THEN 'one' ELSE 'other' END"
	if got := e.String(); got != want {
		t.Errorf("case = %q", got)
	}
}

func TestDimQualStrings(t *testing.T) {
	cases := []struct {
		q    DimQual
		want string
	}{
		{DimQual{Kind: QualStar}, "*"},
		{DimQual{Kind: QualPoint, Val: lit(2002)}, "2002"},
		{DimQual{Kind: QualPoint, Dim: "t", Val: lit(2002)}, "t=2002"},
		{DimQual{Kind: QualPred, Pred: &Binary{Op: "<", L: col("t"), R: lit(5)}}, "(t < 5)"},
		{DimQual{Kind: QualRange, Dim: "t", Lo: lit(1), Hi: lit(5), LoIncl: true}, "1<=t<5"},
		{DimQual{Kind: QualForIn, Dim: "t", ForVals: []Expr{lit(1), lit(2)}}, "FOR t IN (1, 2)"},
		{DimQual{Kind: QualForIn, Dim: "t", ForSub: tinyQuery()}, "FOR t IN (SELECT 1)"},
		{DimQual{Kind: QualForIn, Dim: "t", ForFrom: lit(1), ForTo: lit(9), ForStep: lit(2)},
			"FOR t FROM 1 TO 9 INCREMENT 2"},
	}
	for _, c := range cases {
		if got := c.q.String(); got != c.want {
			t.Errorf("qual = %q, want %q", got, c.want)
		}
	}
}

func TestFormulaString(t *testing.T) {
	f := &Formula{
		Label: "f1",
		Mode:  ModeUpsert,
		LHS:   &CellRef{Measure: "s", Quals: []DimQual{{Kind: QualPoint, Val: lit(1)}}},
		OrderBy: []OrderItem{
			{Expr: col("t")}, {Expr: col("p"), Desc: true},
		},
		RHS: lit(5),
	}
	got := f.String()
	for _, part := range []string{"f1:", "UPSERT", "s[1]", "ORDER BY t, p DESC", "= 5"} {
		if !strings.Contains(got, part) {
			t.Errorf("formula %q missing %q", got, part)
		}
	}
	if ModeUpdate.String() != "UPDATE" || ModeDefault.String() != "" {
		t.Error("mode strings broken")
	}
}

func TestJoinTypeString(t *testing.T) {
	for jt, want := range map[JoinType]string{
		JoinInner: "INNER", JoinLeft: "LEFT OUTER", JoinRight: "RIGHT OUTER", JoinCross: "CROSS",
	} {
		if jt.String() != want {
			t.Errorf("JoinType %d = %q", jt, jt.String())
		}
	}
}

func TestMeaItemName(t *testing.T) {
	if (MeaItem{Expr: col("s")}).Name() != "s" {
		t.Error("colref name")
	}
	if (MeaItem{Expr: col("s"), Alias: "x"}).Name() != "x" {
		t.Error("alias wins")
	}
	if (MeaItem{Expr: lit(0)}).Name() != "0" {
		t.Error("expr fallback")
	}
}

func TestWalkExprPrune(t *testing.T) {
	e := &Binary{Op: "+", L: &FuncCall{Name: "f", Args: []Expr{col("inner")}}, R: col("outer")}
	var seen []string
	WalkExpr(e, func(n Expr) bool {
		if c, ok := n.(*ColumnRef); ok {
			seen = append(seen, c.Name)
		}
		// Prune descent into function calls.
		_, isFn := n.(*FuncCall)
		return !isFn
	})
	if len(seen) != 1 || seen[0] != "outer" {
		t.Errorf("prune broken: %v", seen)
	}
}

func TestCellRefsCollectsNested(t *testing.T) {
	// s[m_yago[cv(m)]] / avg(x)[t<5]
	inner := &CellRef{Measure: "m_yago", Quals: []DimQual{{Kind: QualPoint, Val: &CurrentV{Dim: "m"}}}}
	outer := &CellRef{Measure: "s", Quals: []DimQual{{Kind: QualPoint, Val: inner}}}
	agg := &CellAgg{Func: "avg", Args: []Expr{col("x")},
		Quals: []DimQual{{Kind: QualPred, Pred: &Binary{Op: "<", L: col("t"), R: lit(5)}}}}
	e := &Binary{Op: "/", L: outer, R: agg}
	cells, aggsFound := CellRefs(e)
	if len(cells) != 2 {
		t.Errorf("cells = %d, want 2 (outer + nested)", len(cells))
	}
	if len(aggsFound) != 1 {
		t.Errorf("aggs = %d", len(aggsFound))
	}
	if !ContainsCurrentV(e) {
		t.Error("cv not found")
	}
	if ContainsCurrentV(lit(1)) {
		t.Error("cv false positive")
	}
}

func TestHasSubquery(t *testing.T) {
	if !HasSubquery(&InSubquery{X: col("x")}) || !HasSubquery(&Exists{}) || !HasSubquery(&ScalarSubquery{}) {
		t.Error("subquery nodes not detected")
	}
	if HasSubquery(&Binary{Op: "+", L: lit(1), R: lit(2)}) {
		t.Error("false positive")
	}
	// Nested inside other expressions.
	if !HasSubquery(&Unary{Op: "-", X: &ScalarSubquery{}}) {
		t.Error("nested subquery not detected")
	}
}

func TestTransformRebuilds(t *testing.T) {
	e := &Binary{Op: "+", L: col("a"), R: &Case{
		Whens: []When{{Cond: col("a"), Then: col("a")}},
	}}
	out := Transform(e, func(n Expr) Expr {
		if c, ok := n.(*ColumnRef); ok && c.Name == "a" {
			return lit(7)
		}
		return n
	})
	if strings.Contains(out.String(), "a") {
		t.Errorf("transform left refs: %s", out)
	}
	// Original untouched.
	if !strings.Contains(e.String(), "a") {
		t.Error("transform mutated the input")
	}
	// Qualifier expressions are transformed too.
	cr := &CellRef{Measure: "s", Quals: []DimQual{
		{Kind: QualRange, Dim: "t", Lo: col("a"), Hi: col("a")},
		{Kind: QualForIn, Dim: "u", ForVals: []Expr{col("a")}},
	}}
	out2 := Transform(cr, func(n Expr) Expr {
		if c, ok := n.(*ColumnRef); ok && c.Name == "a" {
			return lit(3)
		}
		return n
	})
	if strings.Contains(out2.String(), "a") {
		t.Errorf("qual transform left refs: %s", out2)
	}
}

func TestTransformNil(t *testing.T) {
	if Transform(nil, func(e Expr) Expr { return e }) != nil {
		t.Error("nil transform")
	}
}

func TestWindowFuncString(t *testing.T) {
	w := &WindowFunc{
		Func:        &FuncCall{Name: "sum", Args: []Expr{col("s")}},
		PartitionBy: []Expr{col("r")},
		OrderBy:     []OrderItem{{Expr: col("t")}, {Expr: col("p"), Desc: true}},
		Frame: &WindowFrame{
			Start: FrameBound{Kind: FramePreceding, N: 2},
			End:   FrameBound{Kind: FrameCurrentRow},
		},
	}
	want := "sum(s) OVER (PARTITION BY r ORDER BY t, p DESC ROWS BETWEEN 2 PRECEDING AND CURRENT ROW)"
	if got := w.String(); got != want {
		t.Errorf("window string = %q, want %q", got, want)
	}
	empty := &WindowFunc{Func: &FuncCall{Name: "count", Star: true}}
	if got := empty.String(); got != "count(*) OVER ()" {
		t.Errorf("empty over = %q", got)
	}
	for fb, want := range map[FrameBound]string{
		{Kind: FrameUnboundedPreceding}: "UNBOUNDED PRECEDING",
		{Kind: FrameUnboundedFollowing}: "UNBOUNDED FOLLOWING",
		{Kind: FrameFollowing, N: 3}:    "3 FOLLOWING",
	} {
		if fb.String() != want {
			t.Errorf("bound %v = %q", fb, fb.String())
		}
	}
}
