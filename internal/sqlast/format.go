package sqlast

import (
	"fmt"
	"strings"
)

// FormatStatement renders a statement back to parseable SQL. The output is
// canonical: parsing it again yields a tree that formats identically, which
// the materialized-view rewriter uses to match queries against stored view
// definitions, and the parser round-trip tests rely on.
func FormatStatement(s Statement) string {
	var b strings.Builder
	formatStatement(&b, s)
	return b.String()
}

func formatStatement(b *strings.Builder, s Statement) {
	switch x := s.(type) {
	case *SelectStmt:
		formatSelect(b, x)
	case *CreateTable:
		b.WriteString("CREATE TABLE " + QuoteIdent(x.Name) + " (")
		for i, c := range x.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(QuoteIdent(c.Name) + " " + kindSQL(c.Kind))
		}
		b.WriteString(")")
	case *InsertStmt:
		b.WriteString("INSERT INTO " + QuoteIdent(x.Table))
		if len(x.Cols) > 0 {
			b.WriteString(" (")
			for i, c := range x.Cols {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(QuoteIdent(c))
			}
			b.WriteString(")")
		}
		if x.Query != nil {
			b.WriteString(" ")
			formatSelect(b, x.Query)
			return
		}
		b.WriteString(" VALUES ")
		for i, row := range x.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(" + exprList(row) + ")")
		}
	case *CreateView:
		b.WriteString("CREATE ")
		if x.Materialized {
			b.WriteString("MATERIALIZED ")
		}
		b.WriteString("VIEW " + QuoteIdent(x.Name) + " AS ")
		formatSelect(b, x.Query)
	case *RefreshStmt:
		b.WriteString("REFRESH " + QuoteIdent(x.Name))
		if x.Full {
			b.WriteString(" FULL")
		}
	case *DropStmt:
		b.WriteString("DROP TABLE " + QuoteIdent(x.Name))
	case *DeleteStmt:
		b.WriteString("DELETE FROM " + QuoteIdent(x.Table))
		if x.Where != nil {
			b.WriteString(" WHERE " + x.Where.String())
		}
	case *UpdateStmt:
		b.WriteString("UPDATE " + QuoteIdent(x.Table) + " SET ")
		for i := range x.Cols {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(QuoteIdent(x.Cols[i]) + " = " + x.Exprs[i].String())
		}
		if x.Where != nil {
			b.WriteString(" WHERE " + x.Where.String())
		}
	default:
		fmt.Fprintf(b, "/* unprintable %T */", s)
	}
}

func kindSQL(k interface{ String() string }) string {
	switch k.String() {
	case "INT":
		return "INT"
	case "FLOAT":
		return "FLOAT"
	case "STRING":
		return "TEXT"
	case "BOOL":
		return "BOOL"
	}
	return "TEXT"
}

func formatSelect(b *strings.Builder, s *SelectStmt) {
	for i, cte := range s.With {
		if i == 0 {
			b.WriteString("WITH ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(QuoteIdent(cte.Name) + " AS (")
		formatSelect(b, cte.Query)
		b.WriteString(")")
	}
	if len(s.With) > 0 {
		b.WriteString(" ")
	}
	formatQueryExpr(b, s.Query)
	for i, o := range s.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.Expr.String())
		if o.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT " + s.Limit.String())
	}
}

func formatQueryExpr(b *strings.Builder, q QueryExpr) {
	switch x := q.(type) {
	case *Union:
		formatQueryExpr(b, x.L)
		b.WriteString(" UNION ")
		if x.All {
			b.WriteString("ALL ")
		}
		formatQueryExpr(b, x.R)
	case *SelectBody:
		formatBody(b, x)
	}
}

func formatBody(b *strings.Builder, body *SelectBody) {
	b.WriteString("SELECT ")
	if body.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, item := range body.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(item.Expr.String())
		if item.Alias != "" {
			b.WriteString(" AS " + QuoteIdent(item.Alias))
		}
	}
	for i, tr := range body.From {
		if i == 0 {
			b.WriteString(" FROM ")
		} else {
			b.WriteString(", ")
		}
		formatTableRef(b, tr)
	}
	if body.Where != nil {
		b.WriteString(" WHERE " + body.Where.String())
	}
	if len(body.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + exprList(body.GroupBy))
	}
	if body.Having != nil {
		b.WriteString(" HAVING " + body.Having.String())
	}
	if body.Spreadsheet != nil {
		formatSheet(b, body.Spreadsheet)
	}
}

func formatTableRef(b *strings.Builder, tr TableRef) {
	switch x := tr.(type) {
	case *TableName:
		b.WriteString(QuoteIdent(x.Name))
		if x.Alias != "" && x.Alias != x.Name {
			b.WriteString(" AS " + QuoteIdent(x.Alias))
		}
	case *SubqueryRef:
		b.WriteString("(")
		formatSelect(b, x.Sub)
		b.WriteString(")")
		if x.Alias != "" {
			b.WriteString(" AS " + QuoteIdent(x.Alias))
		}
	case *JoinRef:
		b.WriteString("(")
		formatTableRef(b, x.L)
		switch x.Type {
		case JoinInner:
			b.WriteString(" JOIN ")
		case JoinLeft:
			b.WriteString(" LEFT JOIN ")
		case JoinRight:
			b.WriteString(" RIGHT JOIN ")
		case JoinCross:
			b.WriteString(" CROSS JOIN ")
		}
		formatTableRef(b, x.R)
		if x.On != nil {
			b.WriteString(" ON " + x.On.String())
		}
		b.WriteString(")")
		if x.Alias != "" {
			b.WriteString(" AS " + QuoteIdent(x.Alias))
		}
	}
}

func formatSheet(b *strings.Builder, sc *SpreadsheetClause) {
	b.WriteString(" SPREADSHEET")
	if sc.ReturnUpdated {
		b.WriteString(" RETURN UPDATED ROWS")
	}
	for _, ref := range sc.Refs {
		b.WriteString(" REFERENCE")
		if ref.Name != "" {
			b.WriteString(" " + QuoteIdent(ref.Name))
		}
		b.WriteString(" ON (")
		formatSelect(b, ref.Query)
		b.WriteString(") DBY (" + exprList(ref.DBY) + ") MEA (")
		formatMea(b, ref.MEA)
		b.WriteString(")")
	}
	if len(sc.PBY) > 0 {
		b.WriteString(" PBY (" + exprList(sc.PBY) + ")")
	}
	b.WriteString(" DBY (" + exprList(sc.DBY) + ") MEA (")
	formatMea(b, sc.MEA)
	b.WriteString(")")
	if sc.DefaultMode == ModeUpdate {
		b.WriteString(" UPDATE")
	}
	if sc.SeqOrder {
		b.WriteString(" SEQUENTIAL ORDER")
	}
	if sc.IgnoreNav {
		b.WriteString(" IGNORE NAV")
	}
	if sc.Iterate != nil {
		fmt.Fprintf(b, " ITERATE (%d)", sc.Iterate.N)
		if sc.Iterate.Until != nil {
			b.WriteString(" UNTIL (" + sc.Iterate.Until.String() + ")")
		}
	}
	b.WriteString(" ( ")
	for i, f := range sc.Rules {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.String())
	}
	b.WriteString(" )")
}

func formatMea(b *strings.Builder, items []MeaItem) {
	for i, mi := range items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(mi.Expr.String())
		if mi.Alias != "" {
			b.WriteString(" AS " + QuoteIdent(mi.Alias))
		}
	}
}
