package sqlast

import "strings"

// reservedWords is the set of identifiers the formatter must quote for the
// output to re-parse as a name rather than a keyword. It is deliberately a
// superset of what the parser treats contextually — over-quoting is
// harmless, under-quoting breaks round-trips.
var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "having": true,
	"order": true, "by": true, "union": true, "all": true, "distinct": true,
	"limit": true, "as": true, "on": true, "join": true, "inner": true,
	"left": true, "right": true, "full": true, "cross": true, "outer": true,
	"and": true, "or": true, "not": true, "in": true, "between": true,
	"like": true, "is": true, "null": true, "true": true, "false": true,
	"case": true, "when": true, "then": true, "else": true, "end": true,
	"exists": true, "asc": true, "desc": true, "with": true, "insert": true,
	"into": true, "values": true, "create": true, "table": true, "view": true,
	"materialized": true, "refresh": true, "drop": true, "set": true,
	"spreadsheet": true, "model": true, "pby": true, "dby": true, "mea": true,
	"partition": true, "dimension": true, "measures": true, "rules": true,
	"update": true, "upsert": true, "sequential": true, "automatic": true,
	"iterate": true, "until": true, "ignore": true, "nav": true, "keep": true,
	"reference": true, "for": true, "to": true, "increment": true,
	"return": true, "updated": true, "rows": true, "over": true,
	"preceding": true, "following": true, "unbounded": true, "current": true,
	"row": true,
}

// IsReservedWord reports whether the formatter must quote name.
func IsReservedWord(name string) bool { return reservedWords[name] }

// QuoteIdent renders an identifier, double-quoting it when it is reserved
// or not identifier-shaped. Embedded double quotes are doubled (the lexer
// understands the escape).
func QuoteIdent(name string) string {
	if identShaped(name) && !reservedWords[name] {
		return name
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

func identShaped(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c >= 'a' && c <= 'z':
		case i > 0 && (c >= '0' && c <= '9' || c == '$' || c == '#'):
		default:
			return false
		}
	}
	return true
}
