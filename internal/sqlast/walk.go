package sqlast

// WalkExpr calls fn for e and every sub-expression of e, pre-order.
// Returning false from fn prunes descent into that node's children.
// Subqueries are not entered; dimension-qualifier expressions are.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Unary:
		WalkExpr(x.X, fn)
	case *Binary:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *Between:
		WalkExpr(x.X, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *InList:
		WalkExpr(x.X, fn)
		for _, it := range x.List {
			WalkExpr(it, fn)
		}
	case *InSubquery:
		WalkExpr(x.X, fn)
	case *IsNull:
		WalkExpr(x.X, fn)
	case *Like:
		WalkExpr(x.X, fn)
		WalkExpr(x.Pattern, fn)
	case *Case:
		WalkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(x.Else, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *WindowFunc:
		WalkExpr(x.Func, fn)
		for _, p := range x.PartitionBy {
			WalkExpr(p, fn)
		}
		for _, o := range x.OrderBy {
			WalkExpr(o.Expr, fn)
		}
	case *CellRef:
		walkQuals(x.Quals, fn)
	case *CellAgg:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
		walkQuals(x.Quals, fn)
	case *Previous:
		WalkExpr(x.Cell, fn)
	case *Present:
		WalkExpr(x.Cell, fn)
	}
}

func walkQuals(qs []DimQual, fn func(Expr) bool) {
	for _, q := range qs {
		WalkExpr(q.Val, fn)
		WalkExpr(q.Pred, fn)
		WalkExpr(q.Lo, fn)
		WalkExpr(q.Hi, fn)
		for _, v := range q.ForVals {
			WalkExpr(v, fn)
		}
	}
}

// CellRefs collects every CellRef and CellAgg in e (including nested ones
// inside qualifier expressions).
func CellRefs(e Expr) (cells []*CellRef, aggs []*CellAgg) {
	WalkExpr(e, func(n Expr) bool {
		switch x := n.(type) {
		case *CellRef:
			cells = append(cells, x)
		case *CellAgg:
			aggs = append(aggs, x)
		}
		return true
	})
	return cells, aggs
}

// ContainsCurrentV reports whether e references cv().
func ContainsCurrentV(e Expr) bool {
	found := false
	WalkExpr(e, func(n Expr) bool {
		if _, ok := n.(*CurrentV); ok {
			found = true
		}
		return !found
	})
	return found
}

// ColumnRefs collects every ColumnRef in e.
func ColumnRefs(e Expr) []*ColumnRef {
	var out []*ColumnRef
	WalkExpr(e, func(n Expr) bool {
		if c, ok := n.(*ColumnRef); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// HasSubquery reports whether e contains a subquery of any kind.
func HasSubquery(e Expr) bool {
	found := false
	WalkExpr(e, func(n Expr) bool {
		switch n.(type) {
		case *InSubquery, *Exists, *ScalarSubquery:
			found = true
		}
		return !found
	})
	return found
}
