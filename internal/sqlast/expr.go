// Package sqlast defines the abstract syntax tree for the SQL dialect,
// including the SPREADSHEET clause of Witkowski et al. (SIGMOD 2003).
package sqlast

import (
	"sync"
	"sync/atomic"

	"sqlsheet/internal/types"
)

// Expr is any SQL expression node.
type Expr interface {
	exprNode()
	String() string
}

// Literal is a constant value.
type Literal struct {
	Val types.Value
}

// ColumnRef names a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table string // optional qualifier, lowercase
	Name  string // lowercase
}

// Star is the "*" of SELECT * or COUNT(*); Table qualifies "t.*".
type Star struct {
	Table string
}

// Unary is a prefix operator: "-" or "NOT".
type Unary struct {
	Op string
	X  Expr
}

// Binary is an infix operator: arithmetic, comparison, AND, OR, ||.
type Binary struct {
	Op   string // one of + - * / % = <> < <= > >= AND OR ||
	L, R Expr
}

// Between is X [NOT] BETWEEN Lo AND Hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// InList is X [NOT] IN (e1, e2, ...). Large all-literal lists are hashed
// once on first evaluation (SetCache/Cache), so pushed membership
// predicates probe instead of scanning.
type InList struct {
	X    Expr
	List []Expr
	Not  bool

	cacheOnce sync.Once
	cache     any
}

// Cache builds (once) and returns the evaluator's membership cache.
func (e *InList) Cache(build func() any) any {
	e.cacheOnce.Do(func() { e.cache = build() })
	return e.cache
}

// InSubquery is X [NOT] IN (SELECT ...).
type InSubquery struct {
	X   Expr
	Sub *SelectStmt
	Not bool
}

// Exists is [NOT] EXISTS (SELECT ...).
type Exists struct {
	Sub *SelectStmt
	Not bool
}

// ScalarSubquery is a parenthesized subquery used as a scalar value.
type ScalarSubquery struct {
	Sub *SelectStmt
}

// IsNull is X IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Like is X [NOT] LIKE pattern. The evaluator caches its precompiled
// pattern matcher here: Cache for constant patterns (built once), DynCache
// for patterns that vary per row (rebuilt only when the pattern changes).
type Like struct {
	X, Pattern Expr
	Not        bool

	cacheOnce sync.Once
	cache     any
	dyn       atomic.Value // always holds a likeDyn
}

// Cache builds (once) and returns the evaluator's matcher for a constant
// pattern.
func (e *Like) Cache(build func() any) any {
	e.cacheOnce.Do(func() { e.cache = build() })
	return e.cache
}

// likeDyn pairs a pattern string with its matcher for DynCache.
type likeDyn struct {
	pat string
	m   any
}

// DynCache returns the cached value when the last-seen pattern matches key,
// rebuilding and re-storing otherwise. Loads and stores are atomic, so
// concurrent evaluators at worst rebuild redundantly — they never race.
func (e *Like) DynCache(key string, build func() any) any {
	if c, ok := e.dyn.Load().(likeDyn); ok && c.pat == key {
		return c.m
	}
	m := build()
	e.dyn.Store(likeDyn{pat: key, m: m})
	return m
}

// When is one WHEN ... THEN ... arm of a CASE.
type When struct {
	Cond, Then Expr
}

// Case is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr
}

// FuncCall is a scalar or aggregate function call. Aggregates are
// distinguished by name during analysis (see aggs.IsAggregate).
type FuncCall struct {
	Name     string // lowercase
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool
}

// WindowFunc is fn(args) OVER ([PARTITION BY ...] [ORDER BY ...] [frame]).
// Window functions are the ANSI OLAP amendment the paper cites as [18]; the
// engine implements them both as a general SQL feature and as the ROLAP
// baseline the spreadsheet clause is compared against.
type WindowFunc struct {
	Func        *FuncCall
	PartitionBy []Expr
	OrderBy     []OrderItem
	Frame       *WindowFrame // nil = default (cumulative with ORDER BY, whole partition without)
}

// FrameBoundKind positions one end of a ROWS frame.
type FrameBoundKind uint8

const (
	FrameUnboundedPreceding FrameBoundKind = iota
	FramePreceding                         // N rows before
	FrameCurrentRow
	FrameFollowing // N rows after
	FrameUnboundedFollowing
)

// FrameBound is one end of a window frame.
type FrameBound struct {
	Kind FrameBoundKind
	N    int
}

// WindowFrame is ROWS BETWEEN start AND end.
type WindowFrame struct {
	Start, End FrameBound
}

func (*WindowFunc) exprNode() {}

// --- spreadsheet-specific expression nodes ---

// CurrentV is cv(dim) / currentv(dim): the left-side value of a dimension,
// carried to the right side of a formula.
type CurrentV struct {
	Dim string
}

// CellRef addresses one cell (all qualifiers single-valued) or, on a formula
// left side / under an aggregate, a range of cells.
type CellRef struct {
	Sheet   string    // optional reference-spreadsheet qualifier
	Measure string    // measure column name
	Quals   []DimQual // positional, one per DBY dimension of the sheet
}

// CellAgg is an aggregate over a range of cells: avg(s)[q...], slope(s,t)[q...].
type CellAgg struct {
	Func  string // lowercase aggregate name
	Args  []Expr // measure expressions; empty with Star for count(*)
	Star  bool
	Quals []DimQual
}

// Previous is previous(cell): the value of a cell at the start of the current
// ITERATE iteration; valid only inside UNTIL conditions.
type Previous struct {
	Cell *CellRef
}

// Present is "<cell> IS [NOT] PRESENT": whether the addressed row existed
// before spreadsheet execution began.
type Present struct {
	Cell *CellRef
	Not  bool
}

func (*Literal) exprNode()        {}
func (*ColumnRef) exprNode()      {}
func (*Star) exprNode()           {}
func (*Unary) exprNode()          {}
func (*Binary) exprNode()         {}
func (*Between) exprNode()        {}
func (*InList) exprNode()         {}
func (*InSubquery) exprNode()     {}
func (*Exists) exprNode()         {}
func (*ScalarSubquery) exprNode() {}
func (*IsNull) exprNode()         {}
func (*Like) exprNode()           {}
func (*Case) exprNode()           {}
func (*FuncCall) exprNode()       {}
func (*CurrentV) exprNode()       {}
func (*CellRef) exprNode()        {}
func (*CellAgg) exprNode()        {}
func (*Previous) exprNode()       {}
func (*Present) exprNode()        {}

// QualKind classifies a dimension qualifier inside cell-reference brackets.
type QualKind uint8

const (
	// QualPoint is a single-valued qualifier: a positional expression or
	// "dim = expr". The expression may contain cv().
	QualPoint QualKind = iota
	// QualStar is "*": every value of the dimension.
	QualStar
	// QualPred is a boolean predicate over the dimension (t < 2002,
	// p IN ('a','b'), ...). Range-valued: existential on the left side,
	// requires an aggregate on the right side.
	QualPred
	// QualRange is a chained comparison lo (<|<=) dim (<|<=) hi.
	QualRange
	// QualForIn is "FOR dim IN (list | subquery)": an enumerable set of
	// values, the only multi-valued form allowed with UPSERT.
	QualForIn
)

// DimQual is one positional dimension qualifier of a cell reference.
type DimQual struct {
	Kind QualKind
	Dim  string // dimension column; filled by the binder for positional quals

	Val Expr // QualPoint

	Pred Expr // QualPred: boolean over Dim

	Lo, Hi         Expr // QualRange bounds (either may be nil... both set for chained)
	LoIncl, HiIncl bool

	ForVals []Expr      // QualForIn literal list
	ForSub  *SelectStmt // QualForIn subquery
	// FOR dim FROM lo TO hi [INCREMENT step] arithmetic enumeration.
	ForFrom, ForTo, ForStep Expr
}
