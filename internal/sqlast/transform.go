package sqlast

// Transform rebuilds an expression tree bottom-up. fn receives each rebuilt
// node and may return a replacement; returning the argument keeps it.
// Subqueries are not entered (they are independent scopes); dimension
// qualifier expressions are transformed.
func Transform(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Unary:
		e = &Unary{Op: x.Op, X: Transform(x.X, fn)}
	case *Binary:
		e = &Binary{Op: x.Op, L: Transform(x.L, fn), R: Transform(x.R, fn)}
	case *Between:
		e = &Between{X: Transform(x.X, fn), Lo: Transform(x.Lo, fn), Hi: Transform(x.Hi, fn), Not: x.Not}
	case *InList:
		list := make([]Expr, len(x.List))
		for i, it := range x.List {
			list[i] = Transform(it, fn)
		}
		e = &InList{X: Transform(x.X, fn), List: list, Not: x.Not}
	case *InSubquery:
		e = &InSubquery{X: Transform(x.X, fn), Sub: x.Sub, Not: x.Not}
	case *IsNull:
		e = &IsNull{X: Transform(x.X, fn), Not: x.Not}
	case *Like:
		e = &Like{X: Transform(x.X, fn), Pattern: Transform(x.Pattern, fn), Not: x.Not}
	case *Case:
		c := &Case{Operand: Transform(x.Operand, fn), Else: Transform(x.Else, fn)}
		for _, w := range x.Whens {
			c.Whens = append(c.Whens, When{Cond: Transform(w.Cond, fn), Then: Transform(w.Then, fn)})
		}
		e = c
	case *FuncCall:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Transform(a, fn)
		}
		e = &FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}
	case *WindowFunc:
		w := &WindowFunc{Frame: x.Frame}
		if f, ok := Transform(x.Func, fn).(*FuncCall); ok {
			w.Func = f
		} else {
			w.Func = x.Func
		}
		for _, p := range x.PartitionBy {
			w.PartitionBy = append(w.PartitionBy, Transform(p, fn))
		}
		for _, o := range x.OrderBy {
			w.OrderBy = append(w.OrderBy, OrderItem{Expr: Transform(o.Expr, fn), Desc: o.Desc})
		}
		e = w
	case *CellRef:
		e = &CellRef{Sheet: x.Sheet, Measure: x.Measure, Quals: transformQuals(x.Quals, fn)}
	case *CellAgg:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Transform(a, fn)
		}
		e = &CellAgg{Func: x.Func, Args: args, Star: x.Star, Quals: transformQuals(x.Quals, fn)}
	case *Previous:
		if c, ok := Transform(x.Cell, fn).(*CellRef); ok {
			e = &Previous{Cell: c}
		}
	case *Present:
		if c, ok := Transform(x.Cell, fn).(*CellRef); ok {
			e = &Present{Cell: c, Not: x.Not}
		}
	}
	return fn(e)
}

func transformQuals(qs []DimQual, fn func(Expr) Expr) []DimQual {
	out := make([]DimQual, len(qs))
	for i, q := range qs {
		nq := q
		nq.Val = Transform(q.Val, fn)
		nq.Pred = Transform(q.Pred, fn)
		nq.Lo = Transform(q.Lo, fn)
		nq.Hi = Transform(q.Hi, fn)
		if len(q.ForVals) > 0 {
			nq.ForVals = make([]Expr, len(q.ForVals))
			for j, v := range q.ForVals {
				nq.ForVals[j] = Transform(v, fn)
			}
		}
		out[i] = nq
	}
	return out
}
