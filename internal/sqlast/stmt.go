package sqlast

import "sqlsheet/internal/types"

// Statement is any executable SQL statement.
type Statement interface {
	stmtNode()
}

// SelectStmt is a full query: optional WITH list, a query expression
// (select body or UNION tree), and outermost ORDER BY / LIMIT.
type SelectStmt struct {
	With    []CTE
	Query   QueryExpr
	OrderBy []OrderItem
	Limit   Expr // nil if absent
}

// CTE is one WITH name AS (query) entry.
type CTE struct {
	Name  string
	Query *SelectStmt
}

// QueryExpr is a select body or a UNION of query expressions.
type QueryExpr interface {
	queryNode()
}

// Union combines two query expressions; All keeps duplicates.
type Union struct {
	L, R QueryExpr
	All  bool
}

// SelectBody is a single SELECT ... FROM ... query block.
type SelectBody struct {
	Distinct    bool
	Items       []SelectItem
	From        []TableRef // cross-product of join trees
	Where       Expr
	GroupBy     []Expr
	Having      Expr
	Spreadsheet *SpreadsheetClause
}

// SelectItem is one projection: expression plus optional alias, or "*".
type SelectItem struct {
	Expr  Expr // a *Star for "*" / "t.*"
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a FROM-clause item.
type TableRef interface {
	tableNode()
}

// TableName references a stored table or CTE, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

// SubqueryRef is a derived table: (SELECT ...) alias.
type SubqueryRef struct {
	Sub   *SelectStmt
	Alias string
}

// JoinType enumerates join flavours.
type JoinType uint8

const (
	JoinInner JoinType = iota
	JoinLeft
	JoinRight
	JoinCross
)

func (t JoinType) String() string {
	switch t {
	case JoinInner:
		return "INNER"
	case JoinLeft:
		return "LEFT OUTER"
	case JoinRight:
		return "RIGHT OUTER"
	case JoinCross:
		return "CROSS"
	}
	return "?"
}

// JoinRef is L <join type> R ON On. Alias, when nonempty, renames the
// column qualifier of the whole parenthesized join tree ("(a JOIN b) v").
type JoinRef struct {
	L, R  TableRef
	Type  JoinType
	On    Expr // nil for CROSS
	Alias string
}

func (*TableName) tableNode()   {}
func (*SubqueryRef) tableNode() {}
func (*JoinRef) tableNode()     {}

func (*SelectBody) queryNode() {}
func (*Union) queryNode()      {}

// CreateTable is CREATE TABLE name (col kind, ...).
type CreateTable struct {
	Name string
	Cols []types.Column
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...),... | SELECT ... .
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
	Query *SelectStmt
}

// CreateView is CREATE [MATERIALIZED] VIEW name AS query. Plain views store
// the query and expand at plan time; materialized views store rows and
// support REFRESH (the paper's §7 "Materialized Views" direction).
type CreateView struct {
	Name         string
	Query        *SelectStmt
	Materialized bool
}

// RefreshStmt is REFRESH [MATERIALIZED VIEW] name [FULL|INCREMENTAL].
type RefreshStmt struct {
	Name string
	// Full forces complete recomputation even when an incremental refresh
	// would apply.
	Full bool
}

// DropStmt is DROP TABLE|VIEW|MATERIALIZED VIEW name.
type DropStmt struct {
	Name string
}

// DeleteStmt is DELETE FROM name [WHERE cond].
type DeleteStmt struct {
	Table string
	Where Expr
}

// UpdateStmt is UPDATE name SET col = expr, ... [WHERE cond].
type UpdateStmt struct {
	Table string
	Cols  []string
	Exprs []Expr
	Where Expr
}

func (*SelectStmt) stmtNode()  {}
func (*CreateTable) stmtNode() {}
func (*InsertStmt) stmtNode()  {}
func (*CreateView) stmtNode()  {}
func (*RefreshStmt) stmtNode() {}
func (*DropStmt) stmtNode()    {}
func (*DeleteStmt) stmtNode()  {}
func (*UpdateStmt) stmtNode()  {}
