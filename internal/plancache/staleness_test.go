package plancache

import (
	"testing"

	"sqlsheet/internal/catalog"
	"sqlsheet/internal/parser"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/types"
)

// TestDepsStampedFromSnapshot is the regression test for the result-cache
// staleness window: a result computed against pinned version V must be
// stamped V — never the live catalog version — even when a writer installs
// V+1 between planning and execution. Otherwise the entry would be stamped
// V+1 (matching the live catalog) while holding V's rows, and served stale
// until the next write.
func TestDepsStampedFromSnapshot(t *testing.T) {
	cat := catalog.New()
	tbl, err := cat.Create("t", types.NewSchema(types.Column{Name: "a", Kind: types.KindInt}))
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert(types.Row{types.NewInt(1)})
	tbl.Publish()
	v := tbl.Version.Load()

	stmt, err := parser.ParseQuery("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(cat, stmt, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The statement pins the table at V, then a concurrent writer publishes
	// V+1 before the dependency stamp is taken.
	snap := catalog.NewSnapshot()
	snap.Pin(tbl)
	tbl.Insert(types.Row{types.NewInt(2)})
	tbl.Publish()
	if live := tbl.Version.Load(); live == v {
		t.Fatal("publish did not bump the version")
	}

	deps, _ := CollectDeps(cat, stmt, p, snap)
	var dep *Dep
	for i := range deps {
		if deps[i].Table == tbl {
			dep = &deps[i]
		}
	}
	if dep == nil {
		t.Fatalf("no dependency on t in %v", deps)
	}
	if dep.Version != v {
		t.Fatalf("dep stamped %d, want pinned version %d (live is %d)", dep.Version, v, tbl.Version.Load())
	}
	if !DepsMatchSnapshot(deps, snap) {
		t.Fatal("snapshot-stamped deps must match their own snapshot")
	}

	// Deps stamped from the live catalog (the pre-fix behavior) must be
	// rejected, keeping the mismatched result out of the cache.
	liveDeps, _ := CollectDeps(cat, stmt, p, nil)
	if DepsMatchSnapshot(liveDeps, snap) {
		t.Fatal("live-stamped deps matched a snapshot pinned at an older version")
	}

	// A snapshot that never read the table matches trivially.
	if !DepsMatchSnapshot(liveDeps, catalog.NewSnapshot()) {
		t.Fatal("unpinned table should match trivially")
	}
}
