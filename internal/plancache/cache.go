// Package plancache implements the serving-path statement cache: a sharded,
// byte-budgeted LRU keyed by statement fingerprint × session configuration.
// An entry accumulates, in order of cost, the parsed AST, the optimized plan
// (whose spreadsheet Model carries the eval.Compile closure registry), the
// pristine two-level hash access structures built for the plan's spreadsheet
// nodes, and the full result set. Every cached artifact downstream of the
// AST is guarded by a dependency snapshot — the identity and version of each
// catalog object the statement can read — and is dropped the moment any
// dependency moved (DML bumps table versions; DDL changes object identity).
//
// Locking: each shard has one mutex guarding its map, LRU list and entry
// fields; cumulative counters are atomics. An entry additionally carries
// ExecMu, which the DB layer holds while planning into or executing out of
// the entry — plans are stateful (lazy Analyze, closure registry, per-run
// reference-sheet data), so at most one execution of a given entry runs at
// a time; concurrent callers that find ExecMu busy execute privately.
package plancache

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sqlsheet/internal/blockstore"
	"sqlsheet/internal/catalog"
	"sqlsheet/internal/core"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

const numShards = 8

// maxTextEntries bounds the statement-text → AST side cache.
const maxTextEntries = 512

// entryBaseBytes is the budget charge for an entry's AST + plan, which are
// small and not worth walking to measure.
const entryBaseBytes = 2048

// Key identifies one cache entry: canonical-statement fingerprint × session
// configuration fingerprint. Two sessions with any differing knob never
// share an entry (results may legitimately differ, e.g. MorselSize changes
// float group-by merge order).
type Key struct {
	Stmt uint64
	Cfg  uint64
}

// Dep is one catalog object in an entry's dependency snapshot. Identity is
// by pointer, so DROP + CREATE under the same name invalidates even when
// the new object's version coincides; Name guards objects absent at plan
// time (creating one later must invalidate, e.g. a table shadowing a view).
type Dep struct {
	Name    string
	Table   *catalog.Table // nil if no such table at snapshot time
	Version int64          // Table.Version at snapshot time
	View    *catalog.View
	Mat     *catalog.MatView
}

// Entry is one cached statement. All fields except ExecMu are guarded by
// the owning shard's mutex and accessed through Cache methods.
type Entry struct {
	key Key

	// ExecMu serializes planning and execution of this entry. The DB layer
	// holds it across plan.Build / Executor.Execute because the cached plan
	// is stateful: the spreadsheet Model lazily computes levels and the
	// closure registry, FOR-IN lists are materialized into qualifier
	// caches, and reference-sheet data is rewritten per run.
	ExecMu sync.Mutex

	prev, next *Entry
	dead       bool // evicted or never linked; Set* calls become no-ops

	stmt      *sqlast.SelectStmt
	plan      plan.Node
	deps      []Dep
	sheets    map[*plan.Spreadsheet]bool // spreadsheet nodes owned by plan
	structs   map[*plan.Spreadsheet]*core.PartitionSet
	schema    *eval.BoundSchema
	rows      []types.Row
	hasResult bool
	bytes     int64
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*Entry
	// Intrusive LRU list: head is most recently used.
	head, tail *Entry
	bytes      int64
}

// Counters is a snapshot of the cache's cumulative statistics.
type Counters struct {
	PlanHits      int64
	PlanMisses    int64
	ResultHits    int64
	StructReuses  int64
	Evictions     int64
	Invalidations int64
}

// Cache is the sharded LRU. Safe for concurrent use.
type Cache struct {
	budget atomic.Int64 // total byte budget across shards
	shards [numShards]shard

	textMu    sync.Mutex
	text      map[uint64][]sqlast.Statement
	textOrder []uint64 // FIFO eviction order

	planHits      atomic.Int64
	planMisses    atomic.Int64
	resultHits    atomic.Int64
	structReuses  atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// New creates a cache with the given byte budget (<=0 disables result and
// structure retention but still caches ASTs and plans up to one entry's
// base charge per statement).
func New(budget int64) *Cache {
	c := &Cache{text: make(map[uint64][]sqlast.Statement)}
	c.budget.Store(budget)
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*Entry)
	}
	return c
}

// SetBudget replaces the byte budget; over-budget shards shrink on their
// next insertion.
func (c *Cache) SetBudget(b int64) { c.budget.Store(b) }

// Counters snapshots the cumulative statistics.
func (c *Cache) Counters() Counters {
	return Counters{
		PlanHits:      c.planHits.Load(),
		PlanMisses:    c.planMisses.Load(),
		ResultHits:    c.resultHits.Load(),
		StructReuses:  c.structReuses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// Len returns the number of resident entries (tests).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

func (c *Cache) shardOf(k Key) *shard {
	return &c.shards[(k.Stmt^k.Cfg)%numShards]
}

// --- intrusive LRU list (shard.mu held) ---

func (sh *shard) unlink(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if sh.head == e {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if sh.tail == e {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) pushFront(e *Entry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) touch(e *Entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// evictOver drops least-recently-used entries until the shard fits its
// budget slice. keep (the entry being served) is never evicted, so one
// oversized artifact cannot thrash itself out mid-request.
func (c *Cache) evictOver(sh *shard, keep *Entry) {
	limit := c.budget.Load() / numShards
	if limit <= 0 {
		limit = 0
	}
	for sh.bytes > limit && sh.tail != nil && sh.tail != keep {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.entries, victim.key)
		sh.bytes -= victim.bytes
		victim.dead = true
		victim.clearDerived()
		victim.stmt = nil
		c.evictions.Add(1)
	}
}

// clearDerived drops everything downstream of the AST (shard.mu held).
func (e *Entry) clearDerived() {
	e.plan = nil
	e.deps = nil
	e.sheets = nil
	e.structs = nil
	e.schema = nil
	e.rows = nil
	e.hasResult = false
	e.bytes = entryBaseBytes
}

// Entry returns the cache entry for key, creating it on first use, and
// marks it most recently used.
func (c *Cache) Entry(key Key) *Entry {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok {
		sh.touch(e)
		return e
	}
	e := &Entry{key: key, bytes: entryBaseBytes}
	sh.entries[key] = e
	sh.pushFront(e)
	sh.bytes += e.bytes
	c.evictOver(sh, e)
	return e
}

// depsValid checks the dependency snapshot against the live catalog:
// every object must have the same identity (pointer) and, for tables, the
// same version; objects absent at snapshot time must still be absent.
func depsValid(cat *catalog.Catalog, deps []Dep) bool {
	for i := range deps {
		d := &deps[i]
		t, _ := cat.Get(d.Name)
		if t != d.Table {
			return false
		}
		if t != nil && t.Version.Load() != d.Version {
			return false
		}
		v, _ := cat.ViewDef(d.Name)
		if v != d.View {
			return false
		}
		mv, _ := cat.MatViewDef(d.Name)
		if mv != d.Mat {
			return false
		}
	}
	return true
}

// invalidate drops an entry's derived artifacts (shard.mu held).
func (c *Cache) invalidate(sh *shard, e *Entry) {
	sh.bytes -= e.bytes
	e.clearDerived()
	sh.bytes += e.bytes
	c.invalidations.Add(1)
}

// Plan returns the entry's cached plan when its dependency snapshot is
// still current, invalidating stale entries. hit reports whether a valid
// plan was found; the miss counter covers both "no plan" and "stale plan".
func (c *Cache) Plan(e *Entry, cat *catalog.Catalog) (p plan.Node, deps []Dep, hit bool) {
	sh := c.shardOf(e.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.plan != nil && !depsValid(cat, e.deps) {
		c.invalidate(sh, e)
	}
	if e.plan == nil {
		c.planMisses.Add(1)
		return nil, nil, false
	}
	c.planHits.Add(1)
	return e.plan, e.deps, true
}

// SetPlan records a freshly built plan with its dependency snapshot and the
// set of spreadsheet nodes the plan owns (the only nodes whose access
// structures may be cached — executor-private subquery plans are transient
// and would leak).
func (c *Cache) SetPlan(e *Entry, stmt *sqlast.SelectStmt, p plan.Node, deps []Dep, sheets map[*plan.Spreadsheet]bool) {
	sh := c.shardOf(e.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.dead {
		return
	}
	sh.bytes -= e.bytes
	e.clearDerived()
	e.stmt = stmt
	e.plan = p
	e.deps = deps
	e.sheets = sheets
	sh.bytes += e.bytes
	sh.touch(e)
	c.evictOver(sh, e)
}

// Stmt returns the entry's cached AST, if any.
func (c *Cache) Stmt(e *Entry) *sqlast.SelectStmt {
	sh := c.shardOf(e.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return e.stmt
}

// Result returns the cached result set when the dependency snapshot is
// still current. The returned row slice is a fresh top-level slice (rows
// shared), so callers may append/reorder without corrupting the cache.
func (c *Cache) Result(e *Entry, cat *catalog.Catalog) (*eval.BoundSchema, []types.Row, []Dep, bool) {
	sh := c.shardOf(e.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.plan != nil && !depsValid(cat, e.deps) {
		c.invalidate(sh, e)
	}
	if !e.hasResult {
		return nil, nil, nil, false
	}
	c.resultHits.Add(1)
	sh.touch(e)
	out := make([]types.Row, len(e.rows))
	copy(out, e.rows)
	return e.schema, out, e.deps, true
}

// SetResult stores a result set against the entry's current plan. The rows
// themselves are shared with the caller; the engine never mutates result
// rows in place, and any DML that could change what the query returns bumps
// a dependency version first.
func (c *Cache) SetResult(e *Entry, schema *eval.BoundSchema, rows []types.Row) {
	kept := make([]types.Row, len(rows))
	copy(kept, rows)
	var sz int64
	for _, r := range kept {
		sz += blockstore.RowBytes(r)
	}
	sh := c.shardOf(e.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.dead || e.plan == nil {
		return // evicted or invalidated while executing
	}
	sh.bytes -= e.bytes
	if e.hasResult {
		e.rows, e.schema, e.hasResult = nil, nil, false
		e.bytes = entryBaseBytes + e.structsBytes()
	}
	e.schema = schema
	e.rows = kept
	e.hasResult = true
	e.bytes += sz
	sh.bytes += e.bytes
	sh.touch(e)
	c.evictOver(sh, e)
}

func (e *Entry) structsBytes() int64 {
	var n int64
	for _, ps := range e.structs {
		n += ps.EstimateBytes()
	}
	return n
}

// Structure returns the cached pristine access structure for one of the
// plan's spreadsheet nodes. Validity is implied: structures live and die
// with the entry's plan, whose dependency snapshot was checked when the
// plan was fetched under ExecMu.
func (c *Cache) Structure(e *Entry, n *plan.Spreadsheet) (*core.PartitionSet, bool) {
	sh := c.shardOf(e.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ps, ok := e.structs[n]
	if ok {
		c.structReuses.Add(1)
	}
	return ps, ok
}

// StoreStructure caches a pristine (never evaluated) access structure for a
// plan-owned spreadsheet node.
func (c *Cache) StoreStructure(e *Entry, n *plan.Spreadsheet, ps *core.PartitionSet) {
	sz := ps.EstimateBytes()
	sh := c.shardOf(e.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.dead || e.plan == nil || !e.sheets[n] {
		return
	}
	if e.structs == nil {
		e.structs = make(map[*plan.Spreadsheet]*core.PartitionSet)
	}
	if _, dup := e.structs[n]; dup {
		return
	}
	e.structs[n] = ps
	e.bytes += sz
	sh.bytes += sz
	sh.touch(e)
	c.evictOver(sh, e)
}

// --- statement-text cache ---

// Text returns the parsed statements previously recorded for a text
// fingerprint. The statements are shared: callers must either treat them as
// read-only or serialize execution (the DB layer holds ExecMu around any
// execution that can write into AST node caches).
func (c *Cache) Text(fp uint64) ([]sqlast.Statement, bool) {
	c.textMu.Lock()
	defer c.textMu.Unlock()
	stmts, ok := c.text[fp]
	return stmts, ok
}

// SetText records the parse of a statement text.
func (c *Cache) SetText(fp uint64, stmts []sqlast.Statement) {
	c.textMu.Lock()
	defer c.textMu.Unlock()
	if _, ok := c.text[fp]; ok {
		return
	}
	for len(c.textOrder) >= maxTextEntries {
		delete(c.text, c.textOrder[0])
		c.textOrder = c.textOrder[1:]
	}
	c.text[fp] = stmts
	c.textOrder = append(c.textOrder, fp)
}

// DepString renders a dependency snapshot's table versions for EXPLAIN
// annotations ("es=13568, g=4").
func DepString(deps []Dep) string {
	var parts []string
	for i := range deps {
		if deps[i].Table != nil {
			parts = append(parts, fmt.Sprintf("%s=%d", deps[i].Name, deps[i].Version))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}
