package plancache

import (
	"fmt"
	"testing"

	"sqlsheet/internal/catalog"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

func testCatalog(t *testing.T, names ...string) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, n := range names {
		sch := types.NewSchema(types.Column{Name: "v", Kind: types.KindInt})
		if _, err := cat.Create(n, sch); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func snapDep(t *testing.T, cat *catalog.Catalog, name string) Dep {
	t.Helper()
	d := Dep{Name: name}
	if tb, ok := cat.Get(name); ok {
		d.Table, d.Version = tb, tb.Version.Load()
	}
	return d
}

// planFor builds a throwaway plan node over a catalog table; cache tests
// never execute it, they only need a non-nil plan.Node with dependencies.
func planFor(cat *catalog.Catalog, name string) plan.Node {
	tb, _ := cat.Get(name)
	return &plan.Scan{Table: tb}
}

func TestPlanHitAndVersionInvalidation(t *testing.T) {
	cat := testCatalog(t, "f")
	c := New(1 << 20)
	e := c.Entry(Key{Stmt: 1})
	deps := []Dep{snapDep(t, cat, "f")}
	c.SetPlan(e, &sqlast.SelectStmt{}, planFor(cat, "f"), deps, nil)

	if _, _, hit := c.Plan(e, cat); !hit {
		t.Fatal("expected plan hit after SetPlan")
	}
	tb, _ := cat.Get("f")
	tb.Version.Add(1) // DML
	if _, _, hit := c.Plan(e, cat); hit {
		t.Fatal("expected invalidation after version bump")
	}
	got := c.Counters()
	if got.PlanHits != 1 || got.PlanMisses != 1 || got.Invalidations != 1 {
		t.Fatalf("counters = %+v, want 1 hit / 1 miss / 1 invalidation", got)
	}
}

func TestDropRecreateInvalidates(t *testing.T) {
	cat := testCatalog(t, "f")
	c := New(1 << 20)
	e := c.Entry(Key{Stmt: 2})
	c.SetPlan(e, &sqlast.SelectStmt{}, planFor(cat, "f"), []Dep{snapDep(t, cat, "f")}, nil)

	// DROP + CREATE yields a new *Table whose Version (0) matches the
	// snapshot; pointer identity must still catch it.
	cat.Drop("f")
	sch := types.NewSchema(types.Column{Name: "v", Kind: types.KindInt})
	if _, err := cat.Create("f", sch); err != nil {
		t.Fatal(err)
	}
	if _, _, hit := c.Plan(e, cat); hit {
		t.Fatal("expected invalidation after drop + recreate")
	}
}

func TestAbsentDependencyAppearing(t *testing.T) {
	cat := testCatalog(t, "f")
	c := New(1 << 20)
	e := c.Entry(Key{Stmt: 3})
	// Snapshot records that "g" did not exist at plan time.
	deps := []Dep{snapDep(t, cat, "f"), snapDep(t, cat, "g")}
	c.SetPlan(e, &sqlast.SelectStmt{}, planFor(cat, "f"), deps, nil)

	if _, _, hit := c.Plan(e, cat); !hit {
		t.Fatal("expected hit while g stays absent")
	}
	sch := types.NewSchema(types.Column{Name: "v", Kind: types.KindInt})
	if _, err := cat.Create("g", sch); err != nil {
		t.Fatal(err)
	}
	if _, _, hit := c.Plan(e, cat); hit {
		t.Fatal("expected invalidation once g exists")
	}
}

func TestResultRoundTripAndCopy(t *testing.T) {
	cat := testCatalog(t, "f")
	c := New(1 << 20)
	e := c.Entry(Key{Stmt: 4})
	c.SetPlan(e, &sqlast.SelectStmt{}, planFor(cat, "f"), []Dep{snapDep(t, cat, "f")}, nil)

	rows := []types.Row{{types.NewInt(1)}, {types.NewInt(2)}}
	c.SetResult(e, nil, rows)
	// Caller's slice must be independent of the cache's copy.
	rows[0] = types.Row{types.NewInt(99)}

	_, got, _, ok := c.Result(e, cat)
	if !ok {
		t.Fatal("expected result hit")
	}
	if got[0][0].Int() != 1 {
		t.Fatalf("cached result aliased the caller's slice: got %v", got[0][0])
	}
	// The hit's slice must likewise be a private top-level copy.
	got[1] = types.Row{types.NewInt(77)}
	_, again, _, ok := c.Result(e, cat)
	if !ok || again[1][0].Int() != 2 {
		t.Fatal("result hit returned a shared top-level slice")
	}
	if c.Counters().ResultHits != 2 {
		t.Fatalf("ResultHits = %d, want 2", c.Counters().ResultHits)
	}

	tb, _ := cat.Get("f")
	tb.Version.Add(1)
	if _, _, _, ok := c.Result(e, cat); ok {
		t.Fatal("expected result invalidation after version bump")
	}
}

func TestLRUEviction(t *testing.T) {
	cat := testCatalog(t, "f")
	// Budget admits roughly one entry per shard; big results force eviction.
	c := New(numShards * 4096)
	bigRow := types.Row{types.NewString(string(make([]byte, 8192)))}

	var entries []*Entry
	for i := 0; i < 64; i++ {
		e := c.Entry(Key{Stmt: uint64(i)})
		c.SetPlan(e, &sqlast.SelectStmt{}, planFor(cat, "f"), []Dep{snapDep(t, cat, "f")}, nil)
		c.SetResult(e, nil, []types.Row{bigRow})
		entries = append(entries, e)
	}
	got := c.Counters()
	if got.Evictions == 0 {
		t.Fatalf("expected evictions under a %d-byte budget, counters = %+v", numShards*4096, got)
	}
	if n := c.Len(); n >= 64 {
		t.Fatalf("expected resident entries < 64, got %d", n)
	}
	// The most recently inserted entry must have survived (never-evict-the-
	// served-entry rule), and its artifacts must be intact.
	last := entries[len(entries)-1]
	if _, _, hit := c.Plan(last, cat); !hit {
		t.Fatal("most recently used entry was evicted")
	}
	// An evicted entry's Set* calls must be no-ops.
	var victim *Entry
	for _, e := range entries {
		if _, _, hit := c.Plan(e, cat); !hit && c.Stmt(e) == nil {
			victim = e
			break
		}
	}
	if victim == nil {
		t.Fatal("no evicted entry found")
	}
	c.SetResult(victim, nil, []types.Row{bigRow})
	if _, _, _, ok := c.Result(victim, cat); ok {
		t.Fatal("SetResult on a dead entry should be a no-op")
	}
}

func TestTextCacheFIFO(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < maxTextEntries+8; i++ {
		c.SetText(uint64(i), []sqlast.Statement{&sqlast.SelectStmt{}})
	}
	if _, ok := c.Text(0); ok {
		t.Fatal("oldest text entry should have been evicted FIFO")
	}
	if _, ok := c.Text(uint64(maxTextEntries + 7)); !ok {
		t.Fatal("newest text entry missing")
	}
	// Duplicate SetText keeps the first parse.
	first := []sqlast.Statement{&sqlast.SelectStmt{}}
	c.SetText(99999, first)
	c.SetText(99999, []sqlast.Statement{&sqlast.SelectStmt{}, &sqlast.SelectStmt{}})
	got, _ := c.Text(99999)
	if len(got) != 1 {
		t.Fatal("SetText overwrote an existing entry")
	}
}

func TestDepString(t *testing.T) {
	cat := testCatalog(t, "b", "a")
	tb, _ := cat.Get("b")
	tb.Version.Store(7)
	deps := []Dep{snapDep(t, cat, "b"), snapDep(t, cat, "a"), {Name: "absent"}}
	if got, want := DepString(deps), "a=0, b=7"; got != want {
		t.Fatalf("DepString = %q, want %q", got, want)
	}
}

func TestConfigKeysAreDistinct(t *testing.T) {
	c := New(1 << 20)
	a := c.Entry(Key{Stmt: 5, Cfg: 1})
	b := c.Entry(Key{Stmt: 5, Cfg: 2})
	if a == b {
		t.Fatal("entries with different config fingerprints must be distinct")
	}
}

func TestSetBudgetShrinks(t *testing.T) {
	cat := testCatalog(t, "f")
	c := New(1 << 30)
	bigRow := types.Row{types.NewString(string(make([]byte, 8192)))}
	for i := 0; i < 32; i++ {
		e := c.Entry(Key{Stmt: uint64(i)})
		c.SetPlan(e, &sqlast.SelectStmt{}, planFor(cat, "f"), []Dep{snapDep(t, cat, "f")}, nil)
		c.SetResult(e, nil, []types.Row{bigRow})
	}
	before := c.Len()
	c.SetBudget(numShards * 2048)
	// Shrink happens on next insertion into each shard.
	for i := 32; i < 64; i++ {
		e := c.Entry(Key{Stmt: uint64(i)})
		c.SetPlan(e, &sqlast.SelectStmt{}, planFor(cat, "f"), []Dep{snapDep(t, cat, "f")}, nil)
	}
	if c.Len() >= before+32 {
		t.Fatalf("no shrink after SetBudget: before=%d after=%d", before, c.Len())
	}
	if c.Counters().Evictions == 0 {
		t.Fatal("expected evictions after budget shrink")
	}
}

// Guard against accidental shard-count changes breaking the tests above.
func TestShardSpread(t *testing.T) {
	c := New(0)
	seen := map[*shard]bool{}
	for i := 0; i < 256; i++ {
		seen[c.shardOf(Key{Stmt: uint64(i)})] = true
	}
	if len(seen) != numShards {
		t.Fatalf("keys spread over %d shards, want %d", len(seen), numShards)
	}
	_ = fmt.Sprintf // keep fmt import if assertions change
}
