package plancache

import (
	"sort"

	"sqlsheet/internal/catalog"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
)

// CollectDeps gathers every catalog object a statement and its optimized
// plan can read, snapshotting identities and versions, plus the set of
// spreadsheet nodes owned by the plan (eligible for structure caching).
//
// Names come from two walks that cross-check each other:
//   - the AST walk descends into CTE bodies, derived tables, every subquery
//     form (IN/EXISTS/scalar, FOR-IN qualifier subqueries), reference
//     spreadsheets and view definitions — catching tables the planner turns
//     into executor-private subplans that never appear as plan Scans;
//   - the plan walk collects Scan tables — catching objects the optimizer
//     substituted (view expansion, materialized-view rewrite targets).
//
// A materialized view's sources are deliberately not snapshotted: reads are
// served from its backing table, which is stale by design until REFRESH
// (REFRESH bumps the backing table's version).
//
// snap, when non-nil, is the statement's MVCC snapshot: dependency versions
// come from the snapshot's pins rather than the live catalog, so a result
// computed against pinned version V is stamped V even if a writer installs
// V+1 between planning and execution. Stamping from the live catalog here
// would open a staleness window: deps stamped V+1, rows computed from V,
// and the entry served as long as the catalog stays at V+1.
func CollectDeps(cat *catalog.Catalog, stmt *sqlast.SelectStmt, p plan.Node, snap *catalog.Snapshot) ([]Dep, map[*plan.Spreadsheet]bool) {
	w := &depWalker{cat: cat, names: map[string]bool{}}
	w.stmt(stmt)
	sheets := make(map[*plan.Spreadsheet]bool)
	walkPlan(p, w.names, sheets, map[plan.Node]bool{})

	names := make([]string, 0, len(w.names))
	for n := range w.names {
		names = append(names, n)
	}
	sort.Strings(names)
	deps := make([]Dep, 0, len(names))
	for _, n := range names {
		d := Dep{Name: n}
		if t, ok := cat.Get(n); ok {
			d.Table = t
			if snap != nil {
				d.Version = snap.Version(t)
			} else {
				d.Version = t.Version.Load()
			}
		}
		if v, ok := cat.ViewDef(n); ok {
			d.View = v
		}
		if mv, ok := cat.MatViewDef(n); ok {
			d.Mat = mv
		}
		deps = append(deps, d)
	}
	return deps, sheets
}

// DepsMatchSnapshot reports whether every dependency the snapshot actually
// pinned matches the dependency snapshot's stamped version. The DB layer
// checks it before registering a result against a cached entry whose deps
// were stamped by an earlier execution: a mismatch means a writer installed
// a new version mid-flight, so the rows do not correspond to the stamp and
// caching them would only waste budget (they could never be served — the
// live version has moved past the stamp — but skipping the store is
// cheaper and keeps the invariant auditable). Tables the snapshot never
// read match trivially.
func DepsMatchSnapshot(deps []Dep, snap *catalog.Snapshot) bool {
	if snap == nil {
		return true
	}
	for i := range deps {
		if deps[i].Table == nil {
			continue
		}
		if v, ok := snap.Pinned(deps[i].Table); ok && v != deps[i].Version {
			return false
		}
	}
	return true
}

type depWalker struct {
	cat   *catalog.Catalog
	names map[string]bool
}

func (w *depWalker) stmt(s *sqlast.SelectStmt) {
	if s == nil {
		return
	}
	for _, cte := range s.With {
		w.stmt(cte.Query)
	}
	w.query(s.Query)
	for _, o := range s.OrderBy {
		w.expr(o.Expr)
	}
	w.expr(s.Limit)
}

func (w *depWalker) query(q sqlast.QueryExpr) {
	switch x := q.(type) {
	case *sqlast.Union:
		w.query(x.L)
		w.query(x.R)
	case *sqlast.SelectBody:
		for _, it := range x.Items {
			w.expr(it.Expr)
		}
		for _, tr := range x.From {
			w.tableRef(tr)
		}
		w.expr(x.Where)
		for _, g := range x.GroupBy {
			w.expr(g)
		}
		w.expr(x.Having)
		w.spreadsheet(x.Spreadsheet)
	}
}

func (w *depWalker) spreadsheet(sp *sqlast.SpreadsheetClause) {
	if sp == nil {
		return
	}
	for _, r := range sp.Refs {
		w.stmt(r.Query)
	}
	for _, e := range sp.PBY {
		w.expr(e)
	}
	for _, e := range sp.DBY {
		w.expr(e)
	}
	for _, m := range sp.MEA {
		w.expr(m.Expr)
	}
	if sp.Iterate != nil {
		w.expr(sp.Iterate.Until)
	}
	for _, f := range sp.Rules {
		w.expr(f.LHS)
		w.expr(f.RHS)
		for _, o := range f.OrderBy {
			w.expr(o.Expr)
		}
	}
}

func (w *depWalker) tableRef(tr sqlast.TableRef) {
	switch x := tr.(type) {
	case *sqlast.TableName:
		w.name(x.Name)
	case *sqlast.SubqueryRef:
		w.stmt(x.Sub)
	case *sqlast.JoinRef:
		w.tableRef(x.L)
		w.tableRef(x.R)
		w.expr(x.On)
	}
}

// expr walks an expression, descending into every subquery form (WalkExpr
// itself stops at subquery boundaries) and into FOR-IN qualifier subqueries
// of cell references.
func (w *depWalker) expr(e sqlast.Expr) {
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		switch x := n.(type) {
		case *sqlast.InSubquery:
			w.stmt(x.Sub)
		case *sqlast.Exists:
			w.stmt(x.Sub)
		case *sqlast.ScalarSubquery:
			w.stmt(x.Sub)
		case *sqlast.CellRef:
			w.quals(x.Quals)
		case *sqlast.CellAgg:
			w.quals(x.Quals)
		}
		return true
	})
}

func (w *depWalker) quals(qs []sqlast.DimQual) {
	for i := range qs {
		if qs[i].ForSub != nil {
			w.stmt(qs[i].ForSub)
		}
	}
}

// name records a referenced object name. Names that resolve to a view are
// expanded recursively — a view's result changes when its underlying tables
// do, so those tables join the snapshot. CTE names may shadow table names;
// recording the shadowed table anyway only over-approximates (spurious
// invalidation, never a stale serve).
func (w *depWalker) name(n string) {
	if w.names[n] {
		return
	}
	w.names[n] = true
	if v, ok := w.cat.ViewDef(n); ok {
		w.stmt(v.Query)
	}
}

// walkPlan collects Scan tables and plan-owned spreadsheet nodes, following
// CTE definition plans explicitly (CTERef.Children returns nil).
func walkPlan(n plan.Node, names map[string]bool, sheets map[*plan.Spreadsheet]bool, visited map[plan.Node]bool) {
	if n == nil || visited[n] {
		return
	}
	visited[n] = true
	switch x := n.(type) {
	case *plan.Scan:
		names[x.Table.Name] = true
	case *plan.CTERef:
		walkPlan(x.Def.Plan, names, sheets, visited)
	case *plan.Spreadsheet:
		sheets[x] = true
	}
	for _, c := range n.Children() {
		walkPlan(c, names, sheets, visited)
	}
}
