package shard

import (
	"context"
	"math"
	"reflect"
	"testing"

	"sqlsheet/internal/catalog"
	"sqlsheet/internal/core"
	"sqlsheet/internal/parser"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

func TestRingDeterministicAndCovering(t *testing.T) {
	a := NewRing(4, 0)
	b := NewRing(4, 0)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		key := types.AppendKey(nil, types.NewInt(int64(i)))
		w := a.Owner(key)
		if w < 0 || w >= 4 {
			t.Fatalf("owner %d out of range", w)
		}
		if b.Owner(key) != w {
			t.Fatalf("ring not deterministic for key %d", i)
		}
		seen[w] = true
	}
	if len(seen) != 4 {
		t.Fatalf("1000 keys covered only %d of 4 workers", len(seen))
	}
	one := NewRing(1, 0)
	if one.Owner([]byte("anything")) != 0 {
		t.Fatal("single-worker ring must own everything")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	rows := []types.Row{
		{types.NewInt(1), types.NewString("a"), types.NewFloat(math.NaN())},
		{types.NewInt(2), types.NewString(""), types.NewFloat(math.Inf(-1))},
		{types.Null, types.NewBool(true), types.NewFloat(-0.0)},
	}
	pages, ok := EncodeRowPages(rows, 3)
	if !ok {
		t.Fatal("rows should be page-encodable")
	}
	for _, e := range []*Envelope{
		{Kind: KindSheet, Stmt: "SELECT * FROM \"__shard_input\"", Cols: []string{"r", "d", "m"}, Pages: pages},
		{Kind: KindGroup, Stmt: "SELECT k, sum(x) FROM t GROUP BY k", Cols: []string{"k", "x", ""},
			Pages: pages, NKeys: 1, NAggs: 1, Runs: []MorselRun{{0, 2}, {3, 1}}},
	} {
		got, err := DecodeEnvelope(EncodeEnvelope(e))
		if err != nil {
			t.Fatalf("kind %d: %v", e.Kind, err)
		}
		if got.Kind != e.Kind || got.Stmt != e.Stmt || !reflect.DeepEqual(got.Cols, e.Cols) ||
			got.NKeys != e.NKeys || got.NAggs != e.NAggs || len(got.Runs) != len(e.Runs) {
			t.Fatalf("kind %d: envelope mismatch: %+v vs %+v", e.Kind, got, e)
		}
		back, err := DecodeRowPages(got.Pages)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(rows) {
			t.Fatalf("rows: %d vs %d", len(back), len(rows))
		}
		for i := range back {
			for j := range back[i] {
				if !bitsEqual(back[i][j], rows[i][j]) {
					t.Fatalf("row %d col %d: %#v vs %#v", i, j, back[i][j], rows[i][j])
				}
			}
		}
	}
	if _, err := DecodeEnvelope(nil); err == nil {
		t.Fatal("empty envelope must error")
	}
	if _, err := DecodeEnvelope([]byte{9}); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestGroupPartRoundTrip(t *testing.T) {
	p := &GroupPart{
		Morsel: 7,
		Groups: []PartGroup{
			{Keys: []types.Value{types.NewInt(1), types.NewString("x")},
				States: [][]byte{{1, 2, 3}, {}}},
			{Keys: []types.Value{types.NewFloat(math.NaN())},
				States: [][]byte{{0xff}}},
		},
	}
	got, err := DecodeGroupPart(EncodeGroupPart(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Morsel != 7 || len(got.Groups) != 2 {
		t.Fatalf("shape: %+v", got)
	}
	for gi := range p.Groups {
		for ki := range p.Groups[gi].Keys {
			if !bitsEqual(got.Groups[gi].Keys[ki], p.Groups[gi].Keys[ki]) {
				t.Fatalf("group %d key %d mismatch", gi, ki)
			}
		}
		if len(got.Groups[gi].States) != len(p.Groups[gi].States) {
			t.Fatalf("group %d state count", gi)
		}
		for si, s := range p.Groups[gi].States {
			if string(got.Groups[gi].States[si]) != string(s) {
				t.Fatalf("group %d state %d mismatch", gi, si)
			}
		}
	}
}

// bitsEqual compares values at the representation level (NaN payloads,
// numeric kind) — the distributed contract is byte identity, not SQL
// equality.
func bitsEqual(a, b types.Value) bool {
	return a.K == b.K && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

func compileModel(t *testing.T, sql string) *core.Model {
	t.Helper()
	stmt, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	body := stmt.Query.(*sqlast.SelectBody)
	m, err := core.Compile(body.Spreadsheet, types.NewSchemaNames("r", "p", "t", "s"), nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSheetStatementRoundTrip(t *testing.T) {
	m := compileModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s) IGNORE NAV
		(
		  UPSERT s[p='dvd',t=2002] = s[p='dvd',t=2001]*1.6,
		  s[p='vcr',t=2002] = s[p='vcr',t=2000] + s[p='vcr',t=2001]
		)`)
	text := SheetStatement(m)
	stmt, err := parser.ParseQuery(text)
	if err != nil {
		t.Fatalf("synthesized statement does not re-parse: %v\n%s", err, text)
	}
	body, _ := stmt.Query.(*sqlast.SelectBody)
	if body == nil || body.Spreadsheet == nil {
		t.Fatalf("no SPREADSHEET clause in %s", text)
	}
	m2, err := core.Compile(body.Spreadsheet, types.NewSchemaNames("r", "p", "t", "s"), nil)
	if err != nil {
		t.Fatalf("synthesized clause does not re-compile: %v\n%s", err, text)
	}
	if m2.NPby != m.NPby || m2.NDby != m.NDby || m2.NMea != m.NMea {
		t.Fatalf("column split drifted: %d/%d/%d vs %d/%d/%d",
			m2.NPby, m2.NDby, m2.NMea, m.NPby, m.NDby, m.NMea)
	}
	if len(m2.Rules) != len(m.Rules) {
		t.Fatalf("rules drifted: %d vs %d", len(m2.Rules), len(m.Rules))
	}
	if m2.IgnoreNav != m.IgnoreNav || m2.SeqOrder != m.SeqOrder || m2.ReturnUpdated != m.ReturnUpdated {
		t.Fatal("clause flags drifted")
	}
}

// TestWorkerSheetSubplanMatchesLocalRun runs the same partition rows through
// the worker path (envelope → ExecuteSubplan → pages) and a local Model.Run
// and demands bit-identical rows.
func TestWorkerSheetSubplanMatchesLocalRun(t *testing.T) {
	m := compileModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		(
		  UPSERT s[p='dvd',t=2002] = s[p='dvd',t=2001]*1.6,
		  s[p='vcr',t=2002] = s[p='vcr',t=2000] + s[p='vcr',t=2001]
		)`)
	var rows []types.Row
	for r := 0; r < 3; r++ {
		for _, p := range []string{"dvd", "vcr", "tv"} {
			for _, yr := range []int64{2000, 2001} {
				rows = append(rows, types.Row{
					types.NewInt(int64(r)), types.NewString(p), types.NewInt(yr),
					types.NewFloat(float64(r) + float64(yr)/100),
				})
			}
		}
	}
	want, _, err := m.Run(rows, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pages, ok := EncodeRowPages(rows, 4)
	if !ok {
		t.Fatal("input not page-encodable")
	}
	env := EncodeEnvelope(&Envelope{
		Kind: KindSheet, Stmt: SheetStatement(m),
		Cols: []string{"r", "p", "t", "s"}, Pages: pages,
	})
	var chunks [][]byte
	err = ExecuteSubplan(context.Background(), env, WorkerOptions{}, func(chunk []byte) error {
		cp := make([]byte, len(chunk))
		copy(cp, chunk)
		chunks = append(chunks, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRowPages(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows: %d vs %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if !bitsEqual(got[i][j], want[i][j]) {
				t.Fatalf("row %d col %d: %#v vs %#v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestGroupStatementSynthesis(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.Create("t", types.NewSchemaNames("k", "x", "y")); err != nil {
		t.Fatal(err)
	}
	stmt, err := parser.ParseQuery("SELECT k, sum(x), count(*), avg(y) FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	pn, err := plan.Build(cat, stmt, &plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gb := findGroupBy(pn)
	if gb == nil {
		t.Fatal("no GroupBy in plan")
	}
	text, ok := GroupStatement(gb, gb.Input.Schema())
	if !ok {
		t.Fatal("synthesis declined a plain group-by")
	}
	stmt2, err := parser.ParseQuery(text)
	if err != nil {
		t.Fatalf("synthesized statement does not re-parse: %v\n%s", err, text)
	}
	cat2 := catalog.New()
	if _, err := cat2.Create(InputTable, types.NewSchemaNames("k", "x", "y")); err != nil {
		t.Fatal(err)
	}
	pn2, err := plan.Build(cat2, stmt2, &plan.Options{})
	if err != nil {
		t.Fatalf("synthesized statement does not re-plan: %v\n%s", err, text)
	}
	gb2 := findGroupBy(pn2)
	if gb2 == nil {
		t.Fatalf("no GroupBy in synthesized plan: %s", text)
	}
	if len(gb2.Keys) != len(gb.Keys) || len(gb2.Aggs) != len(gb.Aggs) {
		t.Fatalf("shape drifted: %d keys/%d aggs vs %d/%d",
			len(gb2.Keys), len(gb2.Aggs), len(gb.Keys), len(gb.Aggs))
	}
	for i := range gb.Aggs {
		if gb2.Aggs[i].Call.Name != gb.Aggs[i].Call.Name {
			t.Fatalf("agg %d: %s vs %s", i, gb2.Aggs[i].Call.Name, gb.Aggs[i].Call.Name)
		}
	}
	// Duplicate aggregate calls cannot keep positional alignment: decline.
	stmt3, err := parser.ParseQuery("SELECT k, sum(x), sum(x) FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	pn3, err := plan.Build(cat, stmt3, &plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gb3 := findGroupBy(pn3); gb3 != nil && len(gb3.Aggs) == 2 {
		if _, ok := GroupStatement(gb3, gb3.Input.Schema()); ok {
			t.Fatal("duplicate aggregate calls must decline synthesis")
		}
	}
}
