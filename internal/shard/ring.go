// Package shard implements the scatter-gather coordinator and worker halves
// of distributed spreadsheet/group-by execution. The coordinator hashes
// PARTITION BY values (and grouping keys) onto sqlsheetd workers over the
// wire protocol, streams back partial frames and aggregate partials, and
// merges them morsel-ordered so the distributed result is byte-identical to
// a single-process run at any shard count (see DESIGN.md §15).
package shard

import (
	"sort"
)

// defaultVnodes is the virtual-node count per worker. Enough points that a
// two-worker ring splits keys close to evenly; small enough that building
// the ring is trivially cheap.
const defaultVnodes = 64

// Ring is a consistent-hash ring over worker indices. Placement is a pure
// function of the key bytes and the worker count, so every coordinator (and
// every retry) agrees on ownership without coordination. Correctness never
// depends on placement — only load balance does — because the merge layers
// regroup by key.
type Ring struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash   uint32
	worker int
}

// NewRing builds a ring over workers 0..n-1 with vnodes points each
// (<=0 uses the default).
func NewRing(n, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{n: n, points: make([]ringPoint, 0, n*vnodes)}
	var buf [8]byte
	for w := 0; w < n; w++ {
		for v := 0; v < vnodes; v++ {
			buf[0] = byte(w)
			buf[1] = byte(w >> 8)
			buf[2] = byte(w >> 16)
			buf[3] = byte(w >> 24)
			buf[4] = byte(v)
			buf[5] = byte(v >> 8)
			buf[6] = byte(v >> 16)
			buf[7] = byte(v >> 24)
			r.points = append(r.points, ringPoint{hash: fnv32(buf[:]), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.worker < b.worker // deterministic tiebreak
	})
	return r
}

// Workers returns the worker count the ring was built for.
func (r *Ring) Workers() int { return r.n }

// Owner maps a key (an encoded types.AppendKey byte string) to its owning
// worker index: the first ring point clockwise from the key's hash.
func (r *Ring) Owner(key []byte) int {
	if r.n == 1 {
		return 0
	}
	h := fnv32(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].worker
}

// fnv32 is FNV-1a, matching the hash family used across the storage layer.
func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}
