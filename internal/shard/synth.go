package shard

import (
	"sqlsheet/internal/core"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
)

// InputTable is the scratch table name a worker binds the shipped rows to.
// The name is unreachable from user SQL (quoting aside, nothing in the
// shipped statements references any other table), so there is no collision
// with worker-local catalogs.
const InputTable = "__shard_input"

// Subplans travel as SQL text, not serialized plan trees: the statement is
// synthesized from the coordinator's *optimized* node (post-pruning rule
// sources, resolved column names), the worker re-parses and re-compiles it
// over the shipped schema, and both sides therefore execute the exact same
// expression set through the exact same evaluation paths. Text is also
// trivially versionable across worker builds.

// SheetStatement renders the carrier statement for a spreadsheet subplan:
// SELECT * FROM "__shard_input" SPREADSHEET <clause>, with the clause
// rebuilt from the compiled model — PBY/DBY/MEA by working-schema name and
// the post-optimizer rule set (Model.Rules[i].Src), so pruned or rewritten
// formulas never resurface on the worker.
func SheetStatement(m *core.Model) string {
	clause := &sqlast.SpreadsheetClause{
		DefaultMode:   m.Clause.DefaultMode,
		SeqOrder:      m.SeqOrder,
		IgnoreNav:     m.IgnoreNav,
		ReturnUpdated: m.ReturnUpdated,
		Iterate:       m.Iterate,
	}
	for _, n := range m.PbyNames() {
		clause.PBY = append(clause.PBY, &sqlast.ColumnRef{Name: n})
	}
	for _, n := range m.DimNames() {
		clause.DBY = append(clause.DBY, &sqlast.ColumnRef{Name: n})
	}
	for _, n := range m.MeasureNames() {
		clause.MEA = append(clause.MEA, sqlast.MeaItem{Expr: &sqlast.ColumnRef{Name: n}})
	}
	for _, r := range m.Rules {
		clause.Rules = append(clause.Rules, r.Src)
	}
	stmt := &sqlast.SelectStmt{Query: &sqlast.SelectBody{
		Items:       []sqlast.SelectItem{{Expr: &sqlast.Star{}}},
		From:        []sqlast.TableRef{&sqlast.TableName{Name: InputTable}},
		Spreadsheet: clause,
	}}
	return sqlast.FormatStatement(stmt)
}

// GroupStatement renders the carrier statement for a group-by subplan:
// SELECT <keys>, <aggs> FROM "__shard_input" GROUP BY <keys>. Keys are
// rebuilt as bare ColumnRefs by resolved schema name (the distribution pass
// guarantees uniqueness); aggregate calls are reused verbatim (the pass
// guarantees their column refs are unqualified and unambiguous). ok is
// false when the node cannot be expressed — duplicate keys or duplicate
// aggregate calls would make the worker's rebuilt plan ambiguous — in which
// case the coordinator declines and the executor runs locally.
func GroupStatement(n *plan.GroupBy, env *eval.BoundSchema) (string, bool) {
	items := make([]sqlast.SelectItem, 0, len(n.Keys)+len(n.Aggs))
	groupBy := make([]sqlast.Expr, 0, len(n.Keys))
	seenKey := map[string]bool{}
	for _, k := range n.Keys {
		ord, isCol := eval.PlainOrdinal(env, k)
		if !isCol {
			return "", false
		}
		name := env.Cols[ord].Name
		if name == "" || seenKey[name] {
			return "", false
		}
		seenKey[name] = true
		ref := &sqlast.ColumnRef{Name: name}
		items = append(items, sqlast.SelectItem{Expr: ref})
		groupBy = append(groupBy, ref)
	}
	seenAgg := map[string]bool{}
	for _, spec := range n.Aggs {
		s := spec.Call.String()
		if seenAgg[s] {
			// Two identical calls would be collapsed by the worker's
			// planner and break positional alignment.
			return "", false
		}
		seenAgg[s] = true
		items = append(items, sqlast.SelectItem{Expr: spec.Call})
	}
	stmt := &sqlast.SelectStmt{Query: &sqlast.SelectBody{
		Items:   items,
		From:    []sqlast.TableRef{&sqlast.TableName{Name: InputTable}},
		GroupBy: groupBy,
	}}
	return sqlast.FormatStatement(stmt), true
}
