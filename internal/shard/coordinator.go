package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sqlsheet/internal/aggs"
	"sqlsheet/internal/client"
	"sqlsheet/internal/core"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/exec"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
	"sqlsheet/internal/wire"
)

// WorkerAddr names one worker process: its wire-protocol address plus an
// optional metrics address used for /healthz probing before redials.
type WorkerAddr struct {
	Addr        string
	MetricsAddr string
}

// Config tunes a Coordinator. Zero values pick the defaults noted per field.
type Config struct {
	Workers []WorkerAddr
	// MinRows is the runtime distribution threshold: below it scatter
	// overhead dominates and the node runs locally (default 256).
	MinRows int
	// Retries is how many times a subplan is re-sent on a fresh connection
	// after a transport error before the coordinator falls back to local
	// execution (default 1).
	Retries int
	// Vnodes is the consistent-hash virtual-node count per worker
	// (default 64).
	Vnodes int
	// CancelTimeout bounds each CANCEL control round trip (default 2s).
	CancelTimeout time.Duration
	// DialTimeout is the per-attempt worker dial deadline (default 2s).
	DialTimeout time.Duration
}

// Coordinator is the scatter-gather side of distributed execution. It
// implements exec.Distributor: the executor hands it plan nodes the
// distribution pass approved, it consistent-hashes PARTITION BY values (or
// grouping keys) across the configured workers, ships synthesized subplans,
// and merges the streamed partials back into the exact rows a
// single-process run would produce. Transport failures degrade to local
// execution (handled=false); server-side errors — including CANCELED after
// a context-triggered broadcast — propagate.
type Coordinator struct {
	cfg   Config
	ring  *Ring
	recs  []*client.Reconnector
	subMu []sync.Mutex // per worker: one subplan round trip at a time
	met   Metrics
	nonce string
	seq   atomic.Int64
}

// errWorkerDown marks a transport-level scatter failure: the caller falls
// back to local execution instead of erroring the query.
var errWorkerDown = errors.New("shard: worker unreachable")

// New builds a coordinator over cfg.Workers. It does not dial until the
// first distributed node.
func New(cfg Config) *Coordinator {
	if cfg.MinRows <= 0 {
		cfg.MinRows = 256
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	if cfg.CancelTimeout <= 0 {
		cfg.CancelTimeout = 2 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	c := &Coordinator{
		cfg:   cfg,
		ring:  NewRing(len(cfg.Workers), cfg.Vnodes),
		recs:  make([]*client.Reconnector, len(cfg.Workers)),
		subMu: make([]sync.Mutex, len(cfg.Workers)),
		nonce: fmt.Sprintf("%d.%d", os.Getpid(), time.Now().UnixNano()),
	}
	for i, w := range cfg.Workers {
		c.recs[i] = client.NewReconnector(client.ReconnectConfig{
			Addr:        w.Addr,
			MetricsAddr: w.MetricsAddr,
			DialTimeout: cfg.DialTimeout,
		})
	}
	return c
}

// Close drops all worker connections.
func (c *Coordinator) Close() {
	for _, r := range c.recs {
		r.Close()
	}
}

// Metrics exposes the coordinator's counters (for tests and benchmarks).
func (c *Coordinator) Metrics() *Metrics { return &c.met }

// Snapshot materializes the counters plus per-worker connection health for
// the server's /metrics endpoint.
func (c *Coordinator) Snapshot() Snapshot {
	s := c.met.snapshot()
	for i, w := range c.cfg.Workers {
		s.Workers = append(s.Workers, WorkerSnapshot{Addr: w.Addr, Redials: c.recs[i].Redials()})
	}
	return s
}

// DistributeSheet scatters a spreadsheet node's partitions across workers
// and reassembles the results in the local structure's order: bucket index
// ascending, then per-bucket first-seen key order, with each partition's
// rows exactly as its owning worker produced them (the worker rebuilds the
// same frame from the same rows, so within-partition order is already
// identical).
func (c *Coordinator) DistributeSheet(ex *exec.Executor, n *plan.Spreadsheet, inRows []types.Row, buckets int) ([]types.Row, bool, error) {
	if len(c.cfg.Workers) == 0 || len(inRows) < c.cfg.MinRows || buckets < 1 {
		return nil, false, nil
	}
	m := n.Model
	ncols := len(m.Schema.Cols)
	cols := make([]string, ncols)
	for i, col := range m.Schema.Cols {
		cols[i] = col.Name
	}
	// Scatter scan: place each partition key on its ring owner and record
	// its merge rank — (local bucket, first-seen sequence within bucket) —
	// which is exactly where the local build would put its frame.
	type keyInfo struct{ owner, bucket, seq int }
	infos := map[string]*keyInfo{}
	bucketSeq := make([]int, buckets)
	perWorker := make([][]types.Row, len(c.cfg.Workers))
	var keyBuf []byte
	for _, row := range inRows {
		if len(row) < m.NPby {
			return nil, false, nil
		}
		keyBuf = appendPbyKey(keyBuf[:0], row, m.NPby)
		ki := infos[string(keyBuf)]
		if ki == nil {
			b := core.PartitionBucket(keyBuf, buckets)
			ki = &keyInfo{owner: c.ring.Owner(keyBuf), bucket: b, seq: bucketSeq[b]}
			bucketSeq[b]++
			infos[string(keyBuf)] = ki
		}
		perWorker[ki.owner] = append(perWorker[ki.owner], row)
	}
	stmt := SheetStatement(m)
	envs := make([][]byte, len(c.cfg.Workers))
	for w, wrows := range perWorker {
		if len(wrows) == 0 {
			continue
		}
		pages, ok := EncodeRowPages(wrows, ncols)
		if !ok {
			c.met.Fallbacks.Add(1)
			return nil, false, nil
		}
		envs[w] = EncodeEnvelope(&Envelope{Kind: KindSheet, Stmt: stmt, Cols: cols, Pages: pages})
	}
	chunks, err := c.scatter(ex.Opts.Ctx, envs)
	if err != nil {
		if errors.Is(err, errWorkerDown) {
			c.met.Fallbacks.Add(1)
			return nil, false, nil
		}
		return nil, false, err
	}
	// Regroup each worker's output into per-partition runs (a partition's
	// rows are contiguous in worker output — one frame each) and sort the
	// runs by merge rank.
	type runT struct {
		bucket, seq int
		rows        []types.Row
	}
	var runs []*runT
	for _, wchunks := range chunks {
		wrows, err := DecodeRowPages(wchunks)
		if err != nil {
			return nil, false, err
		}
		var cur *runT
		var curKey string
		for _, row := range wrows {
			if len(row) < m.NPby {
				return nil, false, fmt.Errorf("shard: short worker result row")
			}
			keyBuf = appendPbyKey(keyBuf[:0], row, m.NPby)
			if cur == nil || curKey != string(keyBuf) {
				ki := infos[string(keyBuf)]
				if ki == nil {
					return nil, false, fmt.Errorf("shard: worker returned unknown partition key")
				}
				cur = &runT{bucket: ki.bucket, seq: ki.seq}
				curKey = string(keyBuf)
				runs = append(runs, cur)
			}
			cur.rows = append(cur.rows, row)
		}
	}
	sort.SliceStable(runs, func(i, j int) bool {
		if runs[i].bucket != runs[j].bucket {
			return runs[i].bucket < runs[j].bucket
		}
		return runs[i].seq < runs[j].seq
	})
	out := make([]types.Row, 0, len(inRows))
	for _, r := range runs {
		out = append(out, r.rows...)
	}
	c.met.SheetSubplans.Add(1)
	return out, true, nil
}

// DistributeGroupBy scatters a group-by's input by grouping key (a key's
// rows live wholly on one worker, in input order), has each worker compute
// one aggregation partial per global operator morsel it holds rows of, and
// reassembles whole-morsel partials merged in morsel order — replaying the
// local morsel fold bit for bit.
func (c *Coordinator) DistributeGroupBy(ex *exec.Executor, n *plan.GroupBy, in *exec.Result) ([]types.Row, bool, error) {
	rows := in.Rows
	if len(c.cfg.Workers) == 0 || len(rows) < c.cfg.MinRows {
		return nil, false, nil
	}
	env := in.Schema
	ords := make([]int, len(n.Keys))
	for i, k := range n.Keys {
		ord, isCol := eval.PlainOrdinal(env, k)
		if !isCol {
			return nil, false, nil
		}
		ords[i] = ord
	}
	stmt, ok := GroupStatement(n, env)
	if !ok {
		return nil, false, nil
	}
	cols, ok := shippedNames(env, n)
	if !ok {
		return nil, false, nil
	}
	spans := ex.MorselSpans(len(rows))
	if len(spans) == 0 {
		return nil, false, nil
	}
	nw := len(c.cfg.Workers)
	perWorker := make([][]types.Row, nw)
	runsW := make([][]MorselRun, nw)
	owners := map[string]int{}
	morselOrder := make([][]string, len(spans))
	cnt := make([]int, nw)
	var keyBuf []byte
	for mi, sp := range spans {
		for w := range cnt {
			cnt[w] = 0
		}
		seen := map[string]bool{}
		for r := sp[0]; r < sp[1]; r++ {
			row := rows[r]
			keyBuf = keyBuf[:0]
			for _, o := range ords {
				keyBuf = types.AppendKey(keyBuf, row[o])
			}
			ks := string(keyBuf)
			w, okw := owners[ks]
			if !okw {
				w = c.ring.Owner(keyBuf)
				owners[ks] = w
			}
			if !seen[ks] {
				seen[ks] = true
				morselOrder[mi] = append(morselOrder[mi], ks)
			}
			perWorker[w] = append(perWorker[w], row)
			cnt[w]++
		}
		for w, k := range cnt {
			if k > 0 {
				runsW[w] = append(runsW[w], MorselRun{Morsel: mi, Count: k})
			}
		}
	}
	envs := make([][]byte, nw)
	for w := range perWorker {
		if len(perWorker[w]) == 0 {
			continue
		}
		pages, ok := EncodeRowPages(perWorker[w], len(env.Cols))
		if !ok {
			c.met.Fallbacks.Add(1)
			return nil, false, nil
		}
		envs[w] = EncodeEnvelope(&Envelope{
			Kind: KindGroup, Stmt: stmt, Cols: cols, Pages: pages,
			NKeys: len(n.Keys), NAggs: len(n.Aggs), Runs: runsW[w],
		})
	}
	chunks, err := c.scatter(ex.Opts.Ctx, envs)
	if err != nil {
		if errors.Is(err, errWorkerDown) {
			c.met.Fallbacks.Add(1)
			return nil, false, nil
		}
		return nil, false, err
	}
	// Index every worker's run partials by (morsel, encoded group key).
	partIdx := make([]map[int]map[string]*PartGroup, nw)
	for w, wchunks := range chunks {
		if len(wchunks) == 0 {
			continue
		}
		partIdx[w] = map[int]map[string]*PartGroup{}
		for _, chunk := range wchunks {
			gp, err := DecodeGroupPart(chunk)
			if err != nil {
				return nil, false, err
			}
			idx := make(map[string]*PartGroup, len(gp.Groups))
			for gi := range gp.Groups {
				g := &gp.Groups[gi]
				keyBuf = keyBuf[:0]
				for _, v := range g.Keys {
					keyBuf = types.AppendKey(keyBuf, v)
				}
				idx[string(keyBuf)] = g
			}
			partIdx[w][gp.Morsel] = idx
		}
	}
	// Reassemble one whole-morsel partial per morsel: groups in the global
	// first-seen order the local fold would have seen, states loaded from
	// the owning worker.
	partials := make([]*exec.GroupPartial, 0, len(spans))
	for mi := range spans {
		order := morselOrder[mi]
		p := &exec.GroupPartial{
			Order: order,
			Keys:  make([]types.Row, len(order)),
			Accs:  make([][]aggs.Agg, len(order)),
		}
		for gi, ks := range order {
			w := owners[ks]
			var pg *PartGroup
			if partIdx[w] != nil {
				pg = partIdx[w][mi][ks]
			}
			if pg == nil {
				return nil, false, fmt.Errorf("shard: worker %d missing partial for morsel %d", w, mi)
			}
			accs, err := exec.NewGroupAggs(n)
			if err != nil {
				return nil, false, err
			}
			if len(pg.States) != len(accs) {
				return nil, false, fmt.Errorf("shard: partial has %d states, want %d", len(pg.States), len(accs))
			}
			for j := range accs {
				if _, err := aggs.LoadState(accs[j], pg.States[j]); err != nil {
					return nil, false, err
				}
			}
			p.Keys[gi] = pg.Keys
			p.Accs[gi] = accs
		}
		partials = append(partials, p)
	}
	out, err := exec.MergeGroupPartials(n, partials)
	if err != nil {
		return nil, false, err
	}
	c.met.GroupSubplans.Add(1)
	return out, true, nil
}

// scatter ships one envelope per worker (nil entries skipped) and collects
// each worker's PART chunks. A context cancellation broadcasts CANCEL to
// every in-flight subplan; transport failures past the retry budget return
// errWorkerDown (callers fall back to local execution); worker-side errors
// propagate.
func (c *Coordinator) scatter(ctx context.Context, envs [][]byte) ([][][]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type slot struct {
		chunks [][]byte
		err    error
	}
	slots := make([]slot, len(envs))
	inflight := &inflightSet{ids: map[string]int{}}
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	if ctx.Done() != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			select {
			case <-ctx.Done():
				for id, w := range inflight.cancelSnapshot() {
					c.met.Cancels.Add(1)
					client.Cancel(c.cfg.Workers[w].Addr, id, c.cfg.CancelTimeout)
				}
			case <-watchDone:
			}
		}()
	}
	var wg sync.WaitGroup
	for w, env := range envs {
		if env == nil {
			continue
		}
		c.met.ScatterFanout.Add(1)
		wg.Add(1)
		go func(w int, env []byte) {
			defer wg.Done()
			slots[w].chunks, slots[w].err = c.runSubplan(ctx, w, env, inflight)
		}(w, env)
	}
	t0 := time.Now()
	wg.Wait()
	c.met.MergeWaitNS.Add(time.Since(t0).Nanoseconds())
	close(watchDone)
	watchWG.Wait()
	out := make([][][]byte, len(envs))
	var firstErr error
	down := false
	for w := range slots {
		switch {
		case slots[w].err == nil:
			out[w] = slots[w].chunks
		case errors.Is(slots[w].err, errWorkerDown):
			down = true
		case firstErr == nil:
			firstErr = slots[w].err
		}
	}
	if firstErr != nil {
		// Prefer the caller's cancellation error over the worker's CANCELED
		// echo so the statement unwinds with the context's error, as local
		// execution would.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, firstErr
	}
	if down {
		return nil, errWorkerDown
	}
	return out, nil
}

// runSubplan performs one worker's subplan round trip, redialing and
// resending after transport errors up to the retry budget.
func (c *Coordinator) runSubplan(ctx context.Context, w int, env []byte, inflight *inflightSet) ([][]byte, error) {
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.met.WorkerRetries.Add(1)
		}
		cl, err := c.recs[w].Get(ctx)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			// Get already burned its own dial/backoff budget.
			return nil, fmt.Errorf("%w: %v", errWorkerDown, err)
		}
		id := c.nextID()
		if !inflight.add(id, w) {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, context.Canceled
		}
		var chunks [][]byte
		c.subMu[w].Lock()
		_, err = cl.Subplan(id, env, func(chunk []byte) error {
			c.met.PartialBytes.Add(int64(len(chunk)))
			chunks = append(chunks, chunk)
			return nil
		})
		c.subMu[w].Unlock()
		inflight.remove(id)
		if err == nil {
			return chunks, nil
		}
		var werr *wire.Error
		if errors.As(err, &werr) {
			// The worker executed and failed (or was canceled): not a
			// transport problem, don't retry.
			return nil, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		c.recs[w].MarkBroken(cl)
	}
	return nil, fmt.Errorf("%w: %s after %d attempts", errWorkerDown, c.cfg.Workers[w].Addr, c.cfg.Retries+1)
}

func (c *Coordinator) nextID() string {
	return fmt.Sprintf("sp-%s-%d", c.nonce, c.seq.Add(1))
}

// inflightSet tracks in-flight subplan ids for the cancel broadcast. Once
// cancelSnapshot has run, add refuses new registrations so a racing send
// cannot slip past the broadcast.
type inflightSet struct {
	mu       sync.Mutex
	ids      map[string]int
	canceled bool
}

func (s *inflightSet) add(id string, w int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.canceled {
		return false
	}
	s.ids[id] = w
	return true
}

func (s *inflightSet) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.ids, id)
}

func (s *inflightSet) cancelSnapshot() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.canceled = true
	out := make(map[string]int, len(s.ids))
	for id, w := range s.ids {
		out[id] = w
	}
	return out
}

// appendPbyKey encodes a row's PARTITION BY prefix with the engine's key
// codec — the same bytes the partition build hashes.
func appendPbyKey(buf []byte, row types.Row, npby int) []byte {
	for p := 0; p < npby; p++ {
		buf = types.AppendKey(buf, row[p])
	}
	return buf
}

// shippedNames picks the column names for a group subplan's scratch schema:
// referenced columns (keys, aggregate arguments) keep their — unique, per
// the distribution pass — names; unreferenced duplicates or anonymous
// expression columns get synthetic placeholders so the worker's catalog
// stays unambiguous. ok is false when a name cannot be preserved safely.
func shippedNames(env *eval.BoundSchema, n *plan.GroupBy) ([]string, bool) {
	count := map[string]int{}
	for _, col := range env.Cols {
		count[col.Name]++
	}
	referenced := map[string]bool{}
	for _, k := range n.Keys {
		if ord, isCol := eval.PlainOrdinal(env, k); isCol {
			referenced[env.Cols[ord].Name] = true
		}
	}
	for _, spec := range n.Aggs {
		for _, a := range spec.Call.Args {
			for _, cr := range sqlast.ColumnRefs(a) {
				referenced[cr.Name] = true
			}
		}
	}
	names := make([]string, len(env.Cols))
	for i, col := range env.Cols {
		if col.Name != "" && count[col.Name] == 1 {
			names[i] = col.Name
			continue
		}
		if col.Name != "" && referenced[col.Name] {
			return nil, false
		}
		syn := fmt.Sprintf("__shard_c%d", i)
		if count[syn] > 0 {
			return nil, false
		}
		names[i] = syn
	}
	return names, true
}
