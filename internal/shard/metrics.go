package shard

import "sync/atomic"

// Metrics counts coordinator-side scatter-gather activity. All fields are
// atomic so the query path updates them lock-free; Snapshot materializes a
// JSON-friendly view for the server's /metrics endpoint.
type Metrics struct {
	// SheetSubplans / GroupSubplans count distributed node executions that
	// completed remotely (one per node, not per worker).
	SheetSubplans atomic.Int64
	GroupSubplans atomic.Int64
	// Fallbacks counts distributable nodes that ran locally after all —
	// input under the row threshold, rows not page-encodable, or a worker
	// down past its retry budget.
	Fallbacks atomic.Int64
	// ScatterFanout counts SUBPLAN requests sent (one per worker that
	// received rows, retries excluded).
	ScatterFanout atomic.Int64
	// PartialBytes totals PART payload bytes received from workers.
	PartialBytes atomic.Int64
	// MergeWaitNS totals the time the coordinator spent blocked waiting for
	// worker partials before merging.
	MergeWaitNS atomic.Int64
	// WorkerRetries counts subplan attempts abandoned on a transport error
	// and retried on a fresh connection.
	WorkerRetries atomic.Int64
	// Cancels counts CANCEL broadcasts sent to in-flight workers.
	Cancels atomic.Int64
}

// Snapshot is a point-in-time metrics view (embedded in the server's
// /metrics JSON under "shard").
type Snapshot struct {
	SheetSubplans int64            `json:"sheet_subplans"`
	GroupSubplans int64            `json:"group_subplans"`
	Fallbacks     int64            `json:"fallbacks"`
	ScatterFanout int64            `json:"scatter_fanout"`
	PartialBytes  int64            `json:"partial_bytes"`
	MergeWaitNS   int64            `json:"merge_wait_ns"`
	WorkerRetries int64            `json:"worker_retries"`
	Cancels       int64            `json:"cancels"`
	Workers       []WorkerSnapshot `json:"workers"`
}

// WorkerSnapshot reports one worker connection's health history.
type WorkerSnapshot struct {
	Addr    string `json:"addr"`
	Redials int64  `json:"redials"`
}

func (m *Metrics) snapshot() Snapshot {
	return Snapshot{
		SheetSubplans: m.SheetSubplans.Load(),
		GroupSubplans: m.GroupSubplans.Load(),
		Fallbacks:     m.Fallbacks.Load(),
		ScatterFanout: m.ScatterFanout.Load(),
		PartialBytes:  m.PartialBytes.Load(),
		MergeWaitNS:   m.MergeWaitNS.Load(),
		WorkerRetries: m.WorkerRetries.Load(),
		Cancels:       m.Cancels.Load(),
	}
}
