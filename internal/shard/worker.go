package shard

import (
	"context"
	"fmt"

	"sqlsheet/internal/aggs"
	"sqlsheet/internal/catalog"
	"sqlsheet/internal/core"
	"sqlsheet/internal/exec"
	"sqlsheet/internal/parser"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// WorkerOptions tunes subplan execution on a worker (mapped from the
// server's config). Neither knob affects result bytes — the engine's
// parallelism contract holds on workers exactly as it does locally.
type WorkerOptions struct {
	// Parallel is the spreadsheet PE count (<=1 serial).
	Parallel int
	// Workers is the build worker-pool size (<=1 serial).
	Workers int
}

// Emit receives one encoded partial-result chunk; the server wraps each in
// a PART frame and streams it back to the coordinator mid-request.
type Emit func(chunk []byte) error

// ExecuteSubplan runs one decoded subplan envelope: re-parse the carrier
// statement, bind the shipped rows, execute, and stream partials through
// emit. Sheet subplans emit result-row pages; group subplans emit one
// morsel-run partial per shipped run. ctx cancels mid-scan (the engine
// polls it inside partition evaluation, and the run loop checks it between
// partials).
func ExecuteSubplan(ctx context.Context, env []byte, opts WorkerOptions, emit Emit) error {
	e, err := DecodeEnvelope(env)
	if err != nil {
		return err
	}
	rows, err := DecodeRowPages(e.Pages)
	if err != nil {
		return err
	}
	switch e.Kind {
	case KindSheet:
		return execSheetSubplan(ctx, e, rows, opts, emit)
	default:
		return execGroupSubplan(ctx, e, rows, opts, emit)
	}
}

// execSheetSubplan compiles the synthesized SPREADSHEET clause over the
// shipped working schema and runs the model directly — the statement's
// SELECT * FROM "__shard_input" shell is only a carrier, so the planner
// (and any catalog) is bypassed entirely.
func execSheetSubplan(ctx context.Context, e *Envelope, rows []types.Row, opts WorkerOptions, emit Emit) error {
	stmt, err := parser.ParseQuery(e.Stmt)
	if err != nil {
		return fmt.Errorf("shard: sheet subplan parse: %w", err)
	}
	body, _ := stmt.Query.(*sqlast.SelectBody)
	if body == nil || body.Spreadsheet == nil {
		return fmt.Errorf("shard: sheet subplan carries no SPREADSHEET clause")
	}
	m, err := core.Compile(body.Spreadsheet, types.NewSchemaNames(e.Cols...), nil)
	if err != nil {
		return fmt.Errorf("shard: sheet subplan compile: %w", err)
	}
	out, _, err := m.Run(rows, core.RunOptions{
		Ctx:          ctx,
		Parallel:     opts.Parallel,
		BuildWorkers: opts.Workers,
	})
	if err != nil {
		return err
	}
	pages, ok := EncodeRowPages(out, len(e.Cols))
	if !ok {
		return fmt.Errorf("shard: sheet result rows not page-encodable")
	}
	for _, p := range pages {
		if err := emit(p); err != nil {
			return err
		}
	}
	return nil
}

// execGroupSubplan plans the synthesized aggregate statement over an
// ephemeral catalog holding the shipped rows, locates the group-by node,
// and computes one aggregation partial per shipped morsel run on the
// row-at-a-time path (whose accumulator states are bit-identical to the
// vectorized path's).
func execGroupSubplan(ctx context.Context, e *Envelope, rows []types.Row, opts WorkerOptions, emit Emit) error {
	stmt, err := parser.ParseQuery(e.Stmt)
	if err != nil {
		return fmt.Errorf("shard: group subplan parse: %w", err)
	}
	cat := catalog.New()
	t, err := cat.Create(InputTable, types.NewSchemaNames(e.Cols...))
	if err != nil {
		return err
	}
	// Assign directly: Insert would re-coerce values, and the shipped rows
	// are already in engine representation.
	t.Rows = rows
	pn, err := plan.Build(cat, stmt, &plan.Options{Parallel: 1, Workers: 1})
	if err != nil {
		return fmt.Errorf("shard: group subplan plan: %w", err)
	}
	gb := findGroupBy(pn)
	if gb == nil {
		return fmt.Errorf("shard: group subplan has no GroupBy node")
	}
	if len(gb.Keys) != e.NKeys || len(gb.Aggs) != e.NAggs {
		return fmt.Errorf("shard: group subplan shape mismatch: %d keys/%d aggs, want %d/%d",
			len(gb.Keys), len(gb.Aggs), e.NKeys, e.NAggs)
	}
	ex := exec.New(cat, exec.Options{Ctx: ctx, Parallel: 1, Workers: 1})
	in, err := ex.Execute(gb.Input, nil)
	if err != nil {
		return err
	}
	total := 0
	for _, r := range e.Runs {
		total += r.Count
	}
	if total != len(in.Rows) {
		return fmt.Errorf("shard: morsel runs cover %d rows, shipped %d", total, len(in.Rows))
	}
	off := 0
	for _, run := range e.Runs {
		if err := ctx.Err(); err != nil {
			return err
		}
		p, err := ex.ComputeGroupPartial(gb, in, off, off+run.Count)
		if err != nil {
			return err
		}
		off += run.Count
		part := &GroupPart{Morsel: run.Morsel, Groups: make([]PartGroup, len(p.Order))}
		for i := range p.Order {
			pg := PartGroup{Keys: p.Keys[i], States: make([][]byte, len(p.Accs[i]))}
			for j, acc := range p.Accs[i] {
				pg.States[j] = aggs.AppendState(nil, acc)
			}
			part.Groups[i] = pg
		}
		if err := emit(EncodeGroupPart(part)); err != nil {
			return err
		}
	}
	return nil
}

// findGroupBy returns the first group-by node in the tree (the synthesized
// statement has exactly one).
func findGroupBy(n plan.Node) *plan.GroupBy {
	if gb, ok := n.(*plan.GroupBy); ok {
		return gb
	}
	for _, ch := range n.Children() {
		if gb := findGroupBy(ch); gb != nil {
			return gb
		}
	}
	return nil
}
