package shard

import (
	"encoding/binary"
	"fmt"
	"math"

	"sqlsheet/internal/colstore"
	"sqlsheet/internal/types"
)

// Subplan envelope and partial-result encodings. The envelope travels in a
// SUBPLAN request frame; partials come back as PART frames. Everything is
// length-prefixed binary: input rows ship as colstore pages (the codec is
// lossless down to float bits and dictionary overflow), aggregate states
// ship as aggs.AppendState bytes, so a round trip never perturbs a value.

// Envelope kinds.
const (
	KindSheet = 1 // spreadsheet partition batch: PARTs are result-row pages
	KindGroup = 2 // group-by morsel runs: PARTs are per-run partials
)

// pageRows is the row-chunk size for encoding shipped rows into colstore
// pages. Purely a framing choice — it never affects results.
const pageRows = 4096

// MorselRun addresses a contiguous stretch of shipped rows that belongs to
// one global operator morsel: the worker computes one aggregation partial
// per run, and the coordinator reassembles runs into whole-morsel partials
// so the merge replays the local morsel fold exactly.
type MorselRun struct {
	Morsel int // global morsel index on the coordinator
	Count  int // number of consecutive shipped rows in this run
}

// Envelope is one decoded subplan request.
type Envelope struct {
	Kind int
	// Stmt is the synthesized carrier statement the worker compiles
	// (see synth.go); Cols are the shipped schema's column names.
	Stmt string
	Cols []string
	// Pages hold the input rows, in shipped order, as colstore pages.
	Pages [][]byte
	// Group-only: expected key/aggregate counts (validated against the
	// worker's plan so a synthesis mismatch fails loudly) and the morsel
	// runs partitioning the shipped rows.
	NKeys, NAggs int
	Runs         []MorselRun
}

// EncodeEnvelope serializes e.
func EncodeEnvelope(e *Envelope) []byte {
	buf := []byte{byte(e.Kind)}
	buf = appendString(buf, e.Stmt)
	buf = binary.AppendUvarint(buf, uint64(len(e.Cols)))
	for _, c := range e.Cols {
		buf = appendString(buf, c)
	}
	buf = binary.AppendUvarint(buf, uint64(len(e.Pages)))
	for _, p := range e.Pages {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	if e.Kind == KindGroup {
		buf = binary.AppendUvarint(buf, uint64(e.NKeys))
		buf = binary.AppendUvarint(buf, uint64(e.NAggs))
		buf = binary.AppendUvarint(buf, uint64(len(e.Runs)))
		for _, r := range e.Runs {
			buf = binary.AppendUvarint(buf, uint64(r.Morsel))
			buf = binary.AppendUvarint(buf, uint64(r.Count))
		}
	}
	return buf
}

// DecodeEnvelope parses a subplan envelope.
func DecodeEnvelope(data []byte) (*Envelope, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("shard: empty envelope")
	}
	e := &Envelope{Kind: int(data[0])}
	data = data[1:]
	if e.Kind != KindSheet && e.Kind != KindGroup {
		return nil, fmt.Errorf("shard: unknown envelope kind %d", e.Kind)
	}
	var err error
	if e.Stmt, data, err = takeString(data); err != nil {
		return nil, err
	}
	ncols, data, err := takeUvarint(data)
	if err != nil {
		return nil, err
	}
	e.Cols = make([]string, ncols)
	for i := range e.Cols {
		if e.Cols[i], data, err = takeString(data); err != nil {
			return nil, err
		}
	}
	npages, data, err := takeUvarint(data)
	if err != nil {
		return nil, err
	}
	e.Pages = make([][]byte, 0, npages)
	for i := 0; i < npages; i++ {
		n, rest, err := takeUvarint(data)
		if err != nil {
			return nil, err
		}
		if n > len(rest) {
			return nil, fmt.Errorf("shard: truncated page")
		}
		e.Pages = append(e.Pages, rest[:n])
		data = rest[n:]
	}
	if e.Kind == KindGroup {
		if e.NKeys, data, err = takeUvarint(data); err != nil {
			return nil, err
		}
		if e.NAggs, data, err = takeUvarint(data); err != nil {
			return nil, err
		}
		nruns, rest, err := takeUvarint(data)
		if err != nil {
			return nil, err
		}
		data = rest
		e.Runs = make([]MorselRun, nruns)
		for i := range e.Runs {
			if e.Runs[i].Morsel, data, err = takeUvarint(data); err != nil {
				return nil, err
			}
			if e.Runs[i].Count, data, err = takeUvarint(data); err != nil {
				return nil, err
			}
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("shard: %d trailing envelope bytes", len(data))
	}
	return e, nil
}

// EncodeRowPages chunks rows into colstore pages. ok is false when a row's
// arity differs from ncols (the page codec cannot represent ragged rows) —
// the caller falls back to local execution.
func EncodeRowPages(rows []types.Row, ncols int) (pages [][]byte, ok bool) {
	for lo := 0; lo < len(rows); lo += pageRows {
		hi := lo + pageRows
		if hi > len(rows) {
			hi = len(rows)
		}
		page, ok := colstore.AppendPage(nil, ncols, rows[lo:hi])
		if !ok {
			return nil, false
		}
		pages = append(pages, page)
	}
	return pages, true
}

// DecodeRowPages reassembles the rows shipped as pages.
func DecodeRowPages(pages [][]byte) ([]types.Row, error) {
	var rows []types.Row
	for _, p := range pages {
		rs, err := colstore.DecodePage(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	return rows, nil
}

// PartGroup is one group inside a morsel-run partial: its first-seen key
// values and one aggs.AppendState blob per aggregate.
type PartGroup struct {
	Keys   []types.Value
	States [][]byte
}

// GroupPart is one PART frame of a group subplan: the worker's aggregation
// partial over its rows of one global morsel.
type GroupPart struct {
	Morsel int
	Groups []PartGroup
}

// EncodeGroupPart serializes one morsel-run partial.
func EncodeGroupPart(p *GroupPart) []byte {
	buf := binary.AppendUvarint(nil, uint64(p.Morsel))
	buf = binary.AppendUvarint(buf, uint64(len(p.Groups)))
	for _, g := range p.Groups {
		buf = binary.AppendUvarint(buf, uint64(len(g.Keys)))
		for _, v := range g.Keys {
			buf = appendValue(buf, v)
		}
		buf = binary.AppendUvarint(buf, uint64(len(g.States)))
		for _, s := range g.States {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf
}

// DecodeGroupPart parses one morsel-run partial.
func DecodeGroupPart(data []byte) (*GroupPart, error) {
	p := &GroupPart{}
	var err error
	if p.Morsel, data, err = takeUvarint(data); err != nil {
		return nil, err
	}
	ngroups, data, err := takeUvarint(data)
	if err != nil {
		return nil, err
	}
	p.Groups = make([]PartGroup, ngroups)
	for i := range p.Groups {
		nkeys, rest, err := takeUvarint(data)
		if err != nil {
			return nil, err
		}
		data = rest
		p.Groups[i].Keys = make([]types.Value, nkeys)
		for k := range p.Groups[i].Keys {
			if p.Groups[i].Keys[k], data, err = takeValue(data); err != nil {
				return nil, err
			}
		}
		nstates, rest2, err := takeUvarint(data)
		if err != nil {
			return nil, err
		}
		data = rest2
		p.Groups[i].States = make([][]byte, nstates)
		for s := range p.Groups[i].States {
			n, rest3, err := takeUvarint(data)
			if err != nil {
				return nil, err
			}
			if n > len(rest3) {
				return nil, fmt.Errorf("shard: truncated aggregate state")
			}
			p.Groups[i].States[s] = rest3[:n]
			data = rest3[n:]
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("shard: %d trailing partial bytes", len(data))
	}
	return p, nil
}

// appendValue copies a Value's representation verbatim — kind, integer,
// float bits and string — so a round trip reproduces the exact in-memory
// value, including NaN payloads and numeric-kind distinctions.
func appendValue(buf []byte, v types.Value) []byte {
	buf = append(buf, byte(v.K))
	buf = binary.BigEndian.AppendUint64(buf, uint64(v.I))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.F))
	return appendString(buf, v.S)
}

func takeValue(data []byte) (types.Value, []byte, error) {
	var v types.Value
	if len(data) < 17 {
		return v, nil, fmt.Errorf("shard: truncated value")
	}
	v.K = types.Kind(data[0])
	v.I = int64(binary.BigEndian.Uint64(data[1:9]))
	v.F = math.Float64frombits(binary.BigEndian.Uint64(data[9:17]))
	s, rest, err := takeString(data[17:])
	if err != nil {
		return v, nil, err
	}
	v.S = s
	return v, rest, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func takeString(data []byte) (string, []byte, error) {
	n, rest, err := takeUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if n > len(rest) {
		return "", nil, fmt.Errorf("shard: truncated string")
	}
	return string(rest[:n]), rest[n:], nil
}

func takeUvarint(data []byte) (int, []byte, error) {
	u, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("shard: bad uvarint")
	}
	if u > math.MaxInt32 {
		return 0, nil, fmt.Errorf("shard: uvarint out of range")
	}
	return int(u), data[n:], nil
}
