// Package client is the Go client for sqlsheetd's framed wire protocol.
// A Client owns one TCP connection (one server session); Query serializes
// concurrent callers because the protocol is strict request/response.
package client

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sqlsheet/internal/wire"
)

// Client is one connection to a sqlsheetd server.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a sqlsheetd server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects with a dial deadline.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Query sends one statement batch and decodes the response. Server-side
// failures come back as *wire.Error with a typed code (PARSE_ERROR carries
// the line/column/token of the offending input).
func (c *Client) Query(sql string) (*wire.Result, error) {
	return c.roundTrip(wire.EncodeQuery(sql))
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	_, err := c.roundTrip([]byte(wire.ReqPing))
	return err
}

// Close ends the session politely (QUIT/BYE) and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	// Best-effort goodbye; the close below is what matters.
	if wire.WriteFrame(c.conn, []byte(wire.ReqQuit)) == nil {
		c.conn.SetReadDeadline(time.Now().Add(time.Second))
		if p, err := wire.ReadFrame(c.conn); err == nil {
			wire.DecodeResponse(p)
		}
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *Client) roundTrip(req []byte) (*wire.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, fmt.Errorf("client: connection closed")
	}
	if err := wire.WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResponse(payload)
}
