// Package client is the Go client for sqlsheetd's framed wire protocol.
// A Client owns one TCP connection (one server session); Query serializes
// concurrent callers because the protocol is strict request/response.
//
// For the scatter-gather coordinator the request/response halves are also
// exposed separately (Send / Recv / RecvParts) so several requests can be
// pipelined onto one connection: write them back to back, then read the
// responses in order. Send and the Recv family take independent locks —
// one sender and one receiver may run concurrently — but multiple
// concurrent senders (or receivers) must coordinate externally.
package client

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sqlsheet/internal/wire"
)

// Client is one connection to a sqlsheetd server.
type Client struct {
	sendMu sync.Mutex
	recvMu sync.Mutex

	connMu sync.Mutex
	conn   net.Conn
}

// Dial connects to a sqlsheetd server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects with a dial deadline.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Query sends one statement batch and decodes the response. Server-side
// failures come back as *wire.Error with a typed code (PARSE_ERROR carries
// the line/column/token of the offending input).
func (c *Client) Query(sql string) (*wire.Result, error) {
	return c.roundTrip(wire.EncodeQuery(sql))
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	_, err := c.roundTrip([]byte(wire.ReqPing))
	return err
}

// Subplan ships a distributed sub-plan and streams the worker's partial
// results: onPart is called once per PART chunk, in arrival order, until the
// terminal OK/ERR. An onPart error aborts the stream (the connection is left
// mid-stream and must be discarded). Equivalent to Send + RecvParts.
func (c *Client) Subplan(id string, env []byte, onPart func(chunk []byte) error) (*wire.Result, error) {
	if err := c.Send(wire.EncodeSubplan(id, env)); err != nil {
		return nil, err
	}
	return c.RecvParts(onPart)
}

// Send writes one raw request frame without waiting for the response. Pair
// each Send with exactly one later Recv/RecvParts; responses arrive in
// request order (the server handles a session's requests sequentially).
func (c *Client) Send(req []byte) error {
	conn, err := c.get()
	if err != nil {
		return err
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return wire.WriteFrame(conn, req)
}

// Recv reads one terminal response for a previously Sent request.
func (c *Client) Recv() (*wire.Result, error) {
	return c.RecvParts(nil)
}

// RecvParts reads one response stream: zero or more PART frames (each
// passed to onPart; a nil onPart rejects unexpected parts) followed by the
// terminal response, which is decoded like Query's.
func (c *Client) RecvParts(onPart func(chunk []byte) error) (*wire.Result, error) {
	conn, err := c.get()
	if err != nil {
		return nil, err
	}
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return nil, err
		}
		chunk, isPart := wire.DecodePart(payload)
		if !isPart {
			return wire.DecodeResponse(payload)
		}
		if onPart == nil {
			return nil, fmt.Errorf("client: unexpected PART frame")
		}
		if err := onPart(chunk); err != nil {
			return nil, err
		}
	}
}

// SetDeadline bounds all pending and future reads and writes on the
// connection. Zero clears the deadline.
func (c *Client) SetDeadline(t time.Time) error {
	conn, err := c.get()
	if err != nil {
		return err
	}
	return conn.SetDeadline(t)
}

// Cancel asks the server to cancel an in-flight SUBPLAN by id, using a
// short-lived control connection: the data connection is mid-stream, and the
// protocol has no out-of-band channel. Best effort — an unknown id (the
// subplan already finished) still answers OK.
func Cancel(addr, id string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(conn, wire.EncodeCancel(id)); err != nil {
		return err
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	_, err = wire.DecodeResponse(payload)
	return err
}

// Close ends the session politely (QUIT/BYE) and closes the connection.
func (c *Client) Close() error {
	c.connMu.Lock()
	conn := c.conn
	c.conn = nil
	c.connMu.Unlock()
	if conn == nil {
		return nil
	}
	// Best-effort goodbye; the close below is what matters.
	if wire.WriteFrame(conn, []byte(wire.ReqQuit)) == nil {
		conn.SetReadDeadline(time.Now().Add(time.Second))
		if p, err := wire.ReadFrame(conn); err == nil {
			wire.DecodeResponse(p)
		}
	}
	return conn.Close()
}

func (c *Client) get() (net.Conn, error) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn == nil {
		return nil, fmt.Errorf("client: connection closed")
	}
	return c.conn, nil
}

func (c *Client) roundTrip(req []byte) (*wire.Result, error) {
	// Hold both halves so concurrent Query callers stay strictly
	// request/response, as before the pipelining split.
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	conn, err := c.get()
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, req); err != nil {
		return nil, err
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResponse(payload)
}
