package client

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ReconnectConfig tunes a Reconnector. Zero values pick the defaults noted
// on each field.
type ReconnectConfig struct {
	Addr        string        // wire-protocol address (required)
	MetricsAddr string        // HTTP /healthz address; empty skips probing
	MaxAttempts int           // dial attempts per Get (default 4)
	BaseDelay   time.Duration // first backoff step (default 50ms)
	MaxDelay    time.Duration // backoff cap (default 2s)
	DialTimeout time.Duration // per-attempt dial deadline (default 2s)
}

// Reconnector hands out a live Client for one server address and replaces it
// after failures: callers MarkBroken the client when a send/recv errors, and
// the next Get probes /healthz (when configured) and redials with
// exponential backoff. This is what lets a scatter-gather coordinator ride
// out a worker restart instead of erroring the whole query fleet.
type Reconnector struct {
	cfg ReconnectConfig

	mu     sync.Mutex
	c      *Client
	dialed bool // a dial has succeeded at least once

	// Redials counts successful reconnections (not the first dial);
	// exported via the coordinator's worker-retry metrics.
	redials int64
}

// NewReconnector builds a Reconnector; it does not dial until the first Get.
func NewReconnector(cfg ReconnectConfig) *Reconnector {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 50 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	return &Reconnector{cfg: cfg}
}

// Get returns the current client, dialing (with backoff) if none is live.
// ctx bounds the whole attempt sequence.
func (r *Reconnector) Get(ctx context.Context) (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c != nil {
		return r.c, nil
	}
	delay := r.cfg.BaseDelay
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if delay *= 2; delay > r.cfg.MaxDelay {
				delay = r.cfg.MaxDelay
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Probe /healthz first when we have a metrics address: a draining
		// or still-booting worker refuses work, so don't burn a dial
		// attempt — or hand out a session that rejects every query.
		if r.cfg.MetricsAddr != "" {
			if err := CheckHealth(ctx, r.cfg.MetricsAddr, r.cfg.DialTimeout); err != nil {
				lastErr = err
				continue
			}
		}
		c, err := DialTimeout(r.cfg.Addr, r.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if r.dialed {
			r.redials++
		}
		r.dialed = true
		r.c = c
		return c, nil
	}
	return nil, fmt.Errorf("client: %s unreachable after %d attempts: %w",
		r.cfg.Addr, r.cfg.MaxAttempts, lastErr)
}

// MarkBroken discards c so the next Get redials. A stale call (c is no
// longer the current client) is a no-op, so several in-flight users of the
// same broken client may all report it.
func (r *Reconnector) MarkBroken(c *Client) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c == c && c != nil {
		c.Close()
		r.c = nil
	}
}

// Redials returns how many times this address has been successfully
// re-dialed after a failure.
func (r *Reconnector) Redials() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.redials
}

// Close discards the current client, if any.
func (r *Reconnector) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c != nil {
		r.c.Close()
		r.c = nil
	}
}

// CheckHealth probes a sqlsheetd metrics endpoint's /healthz: nil means the
// server is up and accepting work (a draining server answers 503).
func CheckHealth(ctx context.Context, metricsAddr string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+metricsAddr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: %s/healthz: %s", metricsAddr, resp.Status)
	}
	return nil
}
