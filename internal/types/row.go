package types

// Row is a tuple of values. Rows are positionally bound to a Schema.
type Row []Value

// Clone returns a copy of r that shares no storage with it.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Schema describes the columns of a relation.
type Schema struct {
	Cols []Column
	// byName caches the lowercase name → ordinal mapping.
	byName map[string]int
}

// Column is a single named, typed attribute.
type Column struct {
	Name string // lowercase canonical name
	Kind Kind   // declared kind; KindNull means untyped/any
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Cols: cols}
	s.reindex()
	return s
}

// NewSchemaNames builds an untyped schema from column names.
func NewSchemaNames(names ...string) *Schema {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n}
	}
	return NewSchema(cols...)
}

func (s *Schema) reindex() {
	s.byName = make(map[string]int, len(s.Cols))
	for i, c := range s.Cols {
		if _, dup := s.byName[c.Name]; !dup {
			s.byName[c.Name] = i
		}
	}
}

// Lookup returns the ordinal of the named column, or -1.
func (s *Schema) Lookup(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	ns := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		ns[i] = c.Name
	}
	return ns
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }
