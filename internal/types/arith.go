package types

import (
	"fmt"
	"math"
)

// NavMode controls how NULL operands behave in numeric operations.
type NavMode uint8

const (
	// KeepNav is standard SQL: any NULL operand makes the result NULL.
	KeepNav NavMode = iota
	// IgnoreNav implements the spreadsheet clause's IGNORE NAV option:
	// NULL numeric operands are treated as 0 (strings as ”).
	IgnoreNav
)

// coerceNum prepares a value for arithmetic under the given NAV mode.
// ok is false when the operation must return NULL.
func coerceNum(v Value, nav NavMode) (Value, bool) {
	if v.IsNull() {
		if nav == IgnoreNav {
			return NewInt(0), true
		}
		return Null, false
	}
	if !v.IsNumeric() {
		return Null, false
	}
	return v, true
}

// Arith applies a binary arithmetic operator (+ - * /) to a and b.
// Integer/integer stays integer except for division, which is always
// floating point (OLAP ratio semantics; 1/3 must not be 0).
func Arith(op byte, a, b Value, nav NavMode) (Value, error) {
	if (!a.IsNull() && !a.IsNumeric()) || (!b.IsNull() && !b.IsNumeric()) {
		return Null, fmt.Errorf("non-numeric operand for %q", string(op))
	}
	a, okA := coerceNum(a, nav)
	b, okB := coerceNum(b, nav)
	if !okA || !okB {
		return Null, nil
	}
	if op == '/' {
		den := b.Float()
		if den == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return NewFloat(a.Float() / den), nil
	}
	if a.K == KindInt && b.K == KindInt {
		switch op {
		case '+':
			return NewInt(a.I + b.I), nil
		case '-':
			return NewInt(a.I - b.I), nil
		case '*':
			return NewInt(a.I * b.I), nil
		case '%':
			if b.I == 0 {
				return Null, fmt.Errorf("division by zero")
			}
			return NewInt(a.I % b.I), nil
		}
	}
	af, bf := a.Float(), b.Float()
	switch op {
	case '+':
		return NewFloat(af + bf), nil
	case '-':
		return NewFloat(af - bf), nil
	case '*':
		return NewFloat(af * bf), nil
	case '%':
		if bf == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return NewFloat(math.Mod(af, bf)), nil
	}
	return Null, fmt.Errorf("unknown arithmetic operator %q", string(op))
}

// Neg returns -v under the given NAV mode.
func Neg(v Value, nav NavMode) (Value, error) {
	if !v.IsNull() && !v.IsNumeric() {
		return Null, fmt.Errorf("non-numeric operand for unary -")
	}
	v, ok := coerceNum(v, nav)
	if !ok {
		return Null, nil
	}
	if v.K == KindInt {
		return NewInt(-v.I), nil
	}
	return NewFloat(-v.F), nil
}
