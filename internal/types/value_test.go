package types

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v := NewInt(42); v.K != KindInt || v.I != 42 || v.Float() != 42 || v.Int() != 42 {
		t.Fatalf("NewInt broken: %#v", v)
	}
	if v := NewFloat(2.5); v.K != KindFloat || v.F != 2.5 || v.Int() != 2 {
		t.Fatalf("NewFloat broken: %#v", v)
	}
	if v := NewString("dvd"); v.K != KindString || v.S != "dvd" {
		t.Fatalf("NewString broken: %#v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Fatal("NewBool(true) not true")
	}
	if v := NewBool(false); v.Bool() {
		t.Fatal("NewBool(false) not false")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewString("tv"), "tv"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := NewString("x").SQLLiteral(); got != "'x'" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Equal(NewInt(2002), NewFloat(2002)) {
		t.Error("2002 != 2002.0")
	}
	if Equal(NewInt(2002), NewFloat(2002.5)) {
		t.Error("2002 == 2002.5")
	}
	if !Equal(Null, Null) {
		t.Error("NULL key != NULL key")
	}
	if Equal(NewString("1"), NewInt(1)) {
		t.Error("'1' == 1")
	}
	if !Equal(NewBool(true), NewBool(true)) || Equal(NewBool(true), NewBool(false)) {
		t.Error("bool equality broken")
	}
}

func TestCompareOrdering(t *testing.T) {
	// NULLs last.
	if Compare(Null, NewInt(1)) != 1 || Compare(NewInt(1), Null) != -1 || Compare(Null, Null) != 0 {
		t.Error("NULL ordering broken")
	}
	if Compare(NewInt(1), NewFloat(1.5)) != -1 {
		t.Error("cross numeric compare broken")
	}
	if Compare(NewString("a"), NewString("b")) != -1 || Compare(NewString("b"), NewString("a")) != 1 {
		t.Error("string compare broken")
	}
	if Compare(NewBool(false), NewBool(true)) != -1 {
		t.Error("bool compare broken")
	}
}

func TestKeyEqualConsistency(t *testing.T) {
	// Property: Key(a) == Key(b) iff Equal(a, b).
	f := func(ai int64, af float64, as string, pick uint8) bool {
		mk := func(p uint8) Value {
			switch p % 5 {
			case 0:
				return Null
			case 1:
				return NewInt(ai)
			case 2:
				return NewFloat(af)
			case 3:
				return NewString(as)
			default:
				return NewBool(ai%2 == 0)
			}
		}
		a, b := mk(pick), mk(pick/5)
		if math.IsNaN(af) {
			return true
		}
		return (Key(a) == Key(b)) == Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyIntFloatNormalization(t *testing.T) {
	if Key(NewInt(7)) != Key(NewFloat(7)) {
		t.Error("integral float must share key with int")
	}
	if Key(NewFloat(7.25)) == Key(NewInt(7)) {
		t.Error("7.25 must not collide with 7")
	}
	if Key(NewInt(1), NewInt(2)) == Key(NewInt(12)) {
		t.Error("composite keys must be self-delimiting")
	}
	// Huge floats outside int64 range must not panic or collide oddly.
	big := NewFloat(1e300)
	if Key(big) == Key(NewInt(math.MaxInt64)) {
		t.Error("1e300 collided with MaxInt64")
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	vals := []Value{
		Null, NewInt(-3), NewInt(0), NewInt(5), NewFloat(-2.5), NewFloat(5),
		NewString(""), NewString("a"), NewString("z"), NewBool(false), NewBool(true),
	}
	sorted := append([]Value(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return Compare(sorted[i], sorted[j]) < 0 })
	// antisymmetry + transitivity sanity: re-sorting is stable w.r.t. Compare.
	for i := 0; i+1 < len(sorted); i++ {
		if Compare(sorted[i], sorted[i+1]) > 0 {
			t.Fatalf("sort violated order at %d: %v > %v", i, sorted[i], sorted[i+1])
		}
	}
	if !sorted[len(sorted)-1].IsNull() {
		t.Error("NULL must sort last")
	}
}

func TestArith(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustV(Arith('+', NewInt(2), NewInt(3), KeepNav)); got.I != 5 || got.K != KindInt {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Arith('*', NewInt(2), NewFloat(1.5), KeepNav)); got.F != 3 {
		t.Errorf("2*1.5 = %v", got)
	}
	if got := mustV(Arith('/', NewInt(1), NewInt(3), KeepNav)); got.K != KindFloat || got.F <= 0.33 || got.F >= 0.34 {
		t.Errorf("1/3 = %v", got)
	}
	if got := mustV(Arith('-', NewInt(10), NewInt(4), KeepNav)); got.I != 6 {
		t.Errorf("10-4 = %v", got)
	}
	if got := mustV(Arith('%', NewInt(10), NewInt(4), KeepNav)); got.I != 2 {
		t.Errorf("10%%4 = %v", got)
	}
	if _, err := Arith('/', NewInt(1), NewInt(0), KeepNav); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := Arith('+', NewString("x"), NewInt(1), KeepNav); err == nil {
		t.Error("string arithmetic must error")
	}
}

func TestArithNavModes(t *testing.T) {
	// KeepNav: NULL propagates.
	if v, err := Arith('+', Null, NewInt(3), KeepNav); err != nil || !v.IsNull() {
		t.Errorf("NULL+3 keepnav = %v, %v", v, err)
	}
	// IgnoreNav: NULL becomes 0.
	if v, err := Arith('+', Null, NewInt(3), IgnoreNav); err != nil || v.Int() != 3 {
		t.Errorf("NULL+3 ignorenav = %v, %v", v, err)
	}
	if v, err := Arith('*', Null, NewInt(3), IgnoreNav); err != nil || v.Int() != 0 {
		t.Errorf("NULL*3 ignorenav = %v, %v", v, err)
	}
	if v, err := Neg(Null, IgnoreNav); err != nil || v.Int() != 0 {
		t.Errorf("-NULL ignorenav = %v, %v", v, err)
	}
	if v, err := Neg(Null, KeepNav); err != nil || !v.IsNull() {
		t.Errorf("-NULL keepnav = %v, %v", v, err)
	}
	if v, err := Neg(NewFloat(2.5), KeepNav); err != nil || v.F != -2.5 {
		t.Errorf("-2.5 = %v, %v", v, err)
	}
}

func TestSchema(t *testing.T) {
	s := NewSchemaNames("r", "p", "t", "s")
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Lookup("t") != 2 || s.Lookup("missing") != -1 {
		t.Error("Lookup broken")
	}
	if got := s.Names(); len(got) != 4 || got[3] != "s" {
		t.Errorf("Names = %v", got)
	}
	r := Row{NewInt(1), NewInt(2)}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].I != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestSchemaDuplicateNamesKeepFirst(t *testing.T) {
	s := NewSchemaNames("a", "a", "b")
	if s.Lookup("a") != 0 {
		t.Error("duplicate column lookup must resolve to first occurrence")
	}
}
