// Package types implements the scalar value system shared by every layer of
// the engine: NULL-aware values, three-valued comparison, canonical key
// encoding for hash structures, and arithmetic with the spreadsheet clause's
// IGNORE NAV semantics.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single SQL scalar. The zero Value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer Value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a floating-point Value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a string Value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewBool returns a boolean Value.
func NewBool(b bool) Value {
	v := Value{K: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// IsNumeric reports whether v is an INT or FLOAT.
func (v Value) IsNumeric() bool { return v.K == KindInt || v.K == KindFloat }

// Bool returns the boolean content of v. It is only meaningful for KindBool.
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// Float returns the numeric content of v widened to float64.
// NULL and non-numeric values yield 0.
func (v Value) Float() float64 {
	switch v.K {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	return 0
}

// Int returns the numeric content of v narrowed to int64 (floats truncate).
func (v Value) Int() int64 {
	switch v.K {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	}
	return 0
}

// String renders v the way the result printer and EXPLAIN show it.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		// Integral floats print without a trailing ".0" noise but keep a
		// marker of floatness out of results; tests rely on %g.
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}

// SQLLiteral renders v as a SQL literal (strings quoted, embedded quotes
// doubled). Integral floats keep a ".0" so re-parsing preserves the kind
// (and the sign of -0.0).
func (v Value) SQLLiteral() string {
	switch v.K {
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindFloat:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	}
	return v.String()
}

// normNum maps an integral FLOAT onto the equivalent INT so that 2002 and
// 2002.0 address the same spreadsheet cell and hash to the same key.
func normNum(v Value) Value {
	if v.K == KindFloat {
		if f := v.F; f == math.Trunc(f) && !math.IsInf(f, 0) && f >= math.MinInt64 && f <= math.MaxInt64 {
			return Value{K: KindInt, I: int64(f)}
		}
	}
	return v
}

// Equal reports whether a and b are the same value under dimension-key
// semantics: numeric values compare across INT/FLOAT, NULL equals NULL.
// (SQL's three-valued = is implemented by Compare in the evaluator.)
func Equal(a, b Value) bool {
	a, b = normNum(a), normNum(b)
	if a.K != b.K {
		if a.IsNumeric() && b.IsNumeric() {
			return a.Float() == b.Float()
		}
		return false
	}
	switch a.K {
	case KindNull:
		return true
	case KindInt, KindBool:
		return a.I == b.I
	case KindFloat:
		return a.F == b.F
	case KindString:
		return a.S == b.S
	}
	return false
}

// Compare orders a before b (-1), equal (0) or after (1). NULLs sort last and
// equal to each other; numerics compare across INT/FLOAT; mixed non-numeric
// kinds order by Kind. Use CompareSQL in the evaluator for three-valued logic.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case KindString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case a.I == b.I:
			return 0
		case a.I < b.I:
			return -1
		}
		return 1
	}
	return 0
}

// AppendKey appends a canonical byte encoding of v to buf. Two values encode
// identically iff Equal(a, b); the encoding is self-delimiting so tuples of
// values can be concatenated into composite keys.
func AppendKey(buf []byte, v Value) []byte {
	v = normNum(v)
	switch v.K {
	case KindNull:
		return append(buf, 0x00)
	case KindInt:
		buf = append(buf, 0x01)
		u := uint64(v.I)
		return append(buf,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	case KindFloat:
		buf = append(buf, 0x02)
		u := math.Float64bits(v.F)
		return append(buf,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	case KindString:
		buf = append(buf, 0x03)
		n := len(v.S)
		buf = append(buf, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
		return append(buf, v.S...)
	case KindBool:
		if v.I != 0 {
			return append(buf, 0x05)
		}
		return append(buf, 0x04)
	}
	return buf
}

// Key returns the canonical encoding of a tuple of values as a string, for
// use as a Go map key in hash access structures.
func Key(vs ...Value) string {
	buf := make([]byte, 0, 16*len(vs))
	for _, v := range vs {
		buf = AppendKey(buf, v)
	}
	return string(buf)
}
