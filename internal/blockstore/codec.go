package blockstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"sqlsheet/internal/colstore"
	"sqlsheet/internal/types"
)

// codec serializes blocks of rows for the spill file. The format is
// private to a single store's lifetime, so it carries no cross-version
// compatibility — just a leading tag selecting the encoding:
//
//	block    := tag:byte payload
//	tag 1    := columnar page (colstore.AppendPage) — the normal case;
//	            rectangular blocks compress column-major with dictionary
//	            and varint encoding and decode without per-value kind tags
//	tag 0    := legacy row-major fallback, kept for ragged blocks:
//	rowBlock := rowCount:uvarint row*
//	row      := valCount:uvarint value*
//	value    := kind:byte payload
type codec struct{}

const (
	blockRows     byte = 0
	blockColumnar byte = 1
)

func (codec) encodeBlock(rows []types.Row) []byte {
	ncols := 0
	if len(rows) > 0 {
		ncols = len(rows[0])
	}
	buf := []byte{blockColumnar}
	if out, ok := colstore.AppendPage(buf, ncols, rows); ok {
		return out
	}
	return codec{}.encodeRowBlock(rows)
}

func (codec) encodeRowBlock(rows []types.Row) []byte {
	buf := []byte{blockRows}
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = binary.AppendUvarint(buf, uint64(len(r)))
		for _, v := range r {
			buf = append(buf, byte(v.K))
			switch v.K {
			case types.KindNull:
			case types.KindInt, types.KindBool:
				buf = binary.AppendVarint(buf, v.I)
			case types.KindFloat:
				buf = binary.AppendUvarint(buf, math.Float64bits(v.F))
			case types.KindString:
				buf = binary.AppendUvarint(buf, uint64(len(v.S)))
				buf = append(buf, v.S...)
			}
		}
	}
	return buf
}

func (codec) decodeBlock(data []byte) ([]types.Row, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("empty block")
	}
	tag := data[0]
	data = data[1:]
	switch tag {
	case blockColumnar:
		return colstore.DecodePage(data)
	case blockRows:
		return codec{}.decodeRowBlock(data)
	}
	return nil, fmt.Errorf("unknown block tag %d", tag)
}

func (codec) decodeRowBlock(data []byte) ([]types.Row, error) {
	pos := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("corrupt block at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	iv := func() (int64, error) {
		v, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("corrupt block at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	nrows, err := uv()
	if err != nil {
		return nil, err
	}
	rows := make([]types.Row, 0, nrows)
	for r := uint64(0); r < nrows; r++ {
		nvals, err := uv()
		if err != nil {
			return nil, err
		}
		row := make(types.Row, nvals)
		for i := range row {
			if pos >= len(data) {
				return nil, fmt.Errorf("truncated block")
			}
			k := types.Kind(data[pos])
			pos++
			switch k {
			case types.KindNull:
				row[i] = types.Null
			case types.KindInt, types.KindBool:
				n, err := iv()
				if err != nil {
					return nil, err
				}
				row[i] = types.Value{K: k, I: n}
			case types.KindFloat:
				bits, err := uv()
				if err != nil {
					return nil, err
				}
				row[i] = types.NewFloat(math.Float64frombits(bits))
			case types.KindString:
				n, err := uv()
				if err != nil {
					return nil, err
				}
				if pos+int(n) > len(data) {
					return nil, fmt.Errorf("truncated string")
				}
				row[i] = types.NewString(string(data[pos : pos+int(n)]))
				pos += int(n)
			default:
				return nil, fmt.Errorf("unknown kind %d", k)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
