package blockstore

import (
	"fmt"
	"testing"
)

// BenchmarkSpillThroughput drives a budget-bounded SpillStore through its
// write-heavy append phase and a sequential re-read — the access pattern of
// an external sort's spill and merge. The async variant overlaps eviction
// writes with appends and prefetches ahead of the scan; sync issues every
// pwrite and pread inline. On a single core the async win comes from write
// coalescing (fewer, larger syscalls) rather than overlap.
func BenchmarkSpillThroughput(b *testing.B) {
	const n = 4096
	for _, async := range []bool{true, false} {
		name := "sync"
		if async {
			name = "async"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			payload := make([]string, 97)
			for i := range payload {
				payload[i] = fmt.Sprintf("payload-%04d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewSpill(Config{BudgetBytes: 8 << 10, Dir: dir, RowsPerBlock: 16, Async: async})
				ids := make([]RowID, 0, n)
				for j := 0; j < n; j++ {
					ids = append(ids, s.Append(row(j, float64(j)*0.5, payload[j%97])))
				}
				for _, id := range ids {
					if got := s.Get(id); len(got) != 3 {
						b.Fatal("bad row")
					}
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
