// Package blockstore provides the row storage behind the spreadsheet
// clause's hash access structure.
//
// The paper (§5) builds a two-level hash structure and, when a spreadsheet
// partition does not fit in memory, degrades to "a disk based hash table
// employing a weighted LRU scheme for block replacement, and pointer
// swizzling to make references lightweight". This package implements that
// storage layer: rows live in fixed-capacity blocks; a byte budget bounds
// resident blocks; over-budget blocks are evicted to a spill file under a
// weighted-LRU policy; and rows are addressed by stable (block, slot) RowIDs
// — the moral equivalent of swizzled pointers. I/O counters feed the
// memory-scaling experiment (Fig. 5).
package blockstore

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"sqlsheet/internal/types"
)

// RowID is a stable handle to a stored row.
type RowID struct {
	Block int32
	Slot  int32
}

// Store abstracts row storage so the spreadsheet engine runs unchanged over
// the unbounded in-memory store and the budgeted spilling store.
type Store interface {
	// Append adds a row and returns its handle.
	Append(row types.Row) RowID
	// Get returns the row; the result must not be retained across other
	// store calls (spilling stores may recycle block memory).
	Get(id RowID) types.Row
	// Set overwrites the row.
	Set(id RowID, row types.Row)
	// Len returns the number of stored rows.
	Len() int
	// Stats returns cumulative I/O statistics.
	Stats() Stats
	// Close releases any spill resources.
	Close() error
}

// Stats counts block-level I/O performed by a store.
type Stats struct {
	BlockLoads      int64 // blocks read back from spill
	BlockEvictions  int64 // blocks written out
	BytesSpilled    int64
	BytesLoaded     int64
	SpillWrites     int64 // physical pwrite calls issued to the spill file
	CoalescedBlocks int64 // dirty blocks folded into an adjacent block's pwrite
	PrefetchHits    int64 // block loads served by the sequential read-ahead buffer
}

// Add accumulates another store's statistics into s.
func (s *Stats) Add(o Stats) {
	s.BlockLoads += o.BlockLoads
	s.BlockEvictions += o.BlockEvictions
	s.BytesSpilled += o.BytesSpilled
	s.BytesLoaded += o.BytesLoaded
	s.SpillWrites += o.SpillWrites
	s.CoalescedBlocks += o.CoalescedBlocks
	s.PrefetchHits += o.PrefetchHits
}

// counters is the store-internal mutable form of Stats. Every field is an
// atomic so that Stats() is safe to call concurrently with Append/Get/Set —
// including from outside the store mutex — and so the background spill
// writer and prefetcher can report I/O without taking that mutex. The
// snapshot loads each counter atomically; counters are monotonic, so the
// snapshot is a consistent lower bound of the true totals at return time.
type counters struct {
	blockLoads      atomic.Int64
	blockEvictions  atomic.Int64
	bytesSpilled    atomic.Int64
	bytesLoaded     atomic.Int64
	spillWrites     atomic.Int64
	coalescedBlocks atomic.Int64
	prefetchHits    atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		BlockLoads:      c.blockLoads.Load(),
		BlockEvictions:  c.blockEvictions.Load(),
		BytesSpilled:    c.bytesSpilled.Load(),
		BytesLoaded:     c.bytesLoaded.Load(),
		SpillWrites:     c.spillWrites.Load(),
		CoalescedBlocks: c.coalescedBlocks.Load(),
		PrefetchHits:    c.prefetchHits.Load(),
	}
}

// MemStore is the unbounded in-memory store used when the partition fits.
// Get and Len are safe for concurrent use once writes have stopped (reads
// mutate nothing); interleaving Append/Set with other calls still requires
// external synchronization, as with any Go slice.
type MemStore struct {
	rows []types.Row
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{} }

// Append implements Store.
func (m *MemStore) Append(row types.Row) RowID {
	m.rows = append(m.rows, row)
	return RowID{Slot: int32(len(m.rows) - 1)}
}

// Get implements Store.
func (m *MemStore) Get(id RowID) types.Row { return m.rows[id.Slot] }

// Set implements Store.
func (m *MemStore) Set(id RowID, row types.Row) { m.rows[id.Slot] = row }

// Len implements Store.
func (m *MemStore) Len() int { return len(m.rows) }

// Stats implements Store.
func (m *MemStore) Stats() Stats { return Stats{} }

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// CloneShallow returns an independent MemStore whose row table is copied
// but whose rows are shared with the original. Sharing is safe under the
// engine's write discipline: a stored row is never mutated in place —
// writers clone the row and replace it via Set — so the original's rows
// stay frozen no matter what the clone does.
func (m *MemStore) CloneShallow() *MemStore {
	return &MemStore{rows: append([]types.Row(nil), m.rows...)}
}

// Config sizes a SpillStore.
type Config struct {
	// BudgetBytes bounds resident block memory; <= 0 means unbounded.
	BudgetBytes int64
	// RowsPerBlock is the block capacity in rows (default 128).
	RowsPerBlock int
	// Dir is the spill directory (default os.TempDir()).
	Dir string
	// Async enables background spill I/O: dirty evictions are handed to a
	// writer goroutine that coalesces blocks bound for adjacent file offsets
	// into single pwrites (double-buffered eviction), and sequential Get
	// patterns trigger read-ahead of the next block. Results are identical
	// to synchronous spilling; only the I/O schedule changes.
	Async bool
}

type block struct {
	rows  []types.Row // nil when evicted
	bytes int64       // estimated resident size
	dirty bool
	// spill file location of the latest written version; length 0 if the
	// block has never been spilled.
	off, length int64
	// weighted-LRU bookkeeping.
	lastTick int64
	hits     int64
}

// SpillStore is a byte-budgeted store backed by a spill file. The engine
// gives each processing element its own store, but reads are not naturally
// concurrency-safe the way MemStore's are — even Get mutates LRU bookkeeping
// and may evict or reload blocks — so every method takes an internal mutex.
// Callers must still honor the Store contract of not retaining a Get result
// across other store calls.
type SpillStore struct {
	mu       sync.Mutex
	cfg      Config
	blocks   []*block
	resident int64 // bytes of resident blocks
	tick     int64
	file     *os.File
	fileEnd  int64
	stats    counters
	nrows    int
	codec    codec

	// Async-spill state (nil/zero when cfg.Async is off or nothing has
	// spilled yet). pending holds encoded blocks whose pwrite has not
	// completed; reads of those blocks decode from memory instead of the
	// file. prefetched holds read-ahead block images keyed by block index.
	wr         *ioQueue
	pf         *ioQueue
	pending    map[int32]pendingBlock
	prefetched map[int32]diskImage
	lastGet    int32 // previous Get's block index (sequential detection)
}

// pendingBlock is an encoded block awaiting its background write. off
// identifies the version: a block re-evicted before its previous image hit
// disk gets a new offset, and only the matching version may be dropped from
// the pending set once written.
type pendingBlock struct {
	off  int64
	data []byte
}

// diskImage is a block image read (or about to be read) from the spill file.
type diskImage struct {
	off  int64
	data []byte
}

// NewSpill creates a budgeted spilling store.
func NewSpill(cfg Config) *SpillStore {
	if cfg.RowsPerBlock <= 0 {
		cfg.RowsPerBlock = 128
	}
	return &SpillStore{cfg: cfg, lastGet: -2}
}

// Append implements Store.
func (s *SpillStore) Append(row types.Row) RowID {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.blocks)
	if n == 0 || len(s.lastBlockRows()) >= s.cfg.RowsPerBlock {
		s.blocks = append(s.blocks, &block{rows: make([]types.Row, 0, s.cfg.RowsPerBlock)})
		n = len(s.blocks)
	}
	b := s.blocks[n-1]
	if b.rows == nil {
		s.load(int32(n - 1))
		b = s.blocks[n-1]
	}
	id := RowID{Block: int32(n - 1), Slot: int32(len(b.rows))}
	b.rows = append(b.rows, row)
	b.dirty = true
	sz := rowBytes(row)
	b.bytes += sz
	s.resident += sz
	s.nrows++
	s.touch(b)
	s.enforceBudget(int32(n - 1))
	return id
}

func (s *SpillStore) lastBlockRows() []types.Row {
	b := s.blocks[len(s.blocks)-1]
	if b.rows == nil {
		s.load(int32(len(s.blocks) - 1))
	}
	return b.rows
}

// Get implements Store.
func (s *SpillStore) Get(id RowID) types.Row {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.blocks[id.Block]
	if b.rows == nil {
		s.load(id.Block)
	}
	s.touch(b)
	s.maybePrefetch(id.Block)
	s.enforceBudget(id.Block)
	return b.rows[id.Slot]
}

// maybePrefetch schedules a read-ahead of block cur+1 when Gets are walking
// blocks sequentially (cur follows the previous Get's block). Called with
// s.mu held.
func (s *SpillStore) maybePrefetch(cur int32) {
	prev := s.lastGet
	s.lastGet = cur
	if s.pf == nil || cur != prev+1 {
		return
	}
	next := cur + 1
	if int(next) >= len(s.blocks) || len(s.prefetched) >= prefetchWindow {
		return
	}
	nb := s.blocks[next]
	if nb.rows != nil || nb.length == 0 {
		return // resident, or nothing on disk to read
	}
	if _, ok := s.pending[next]; ok {
		return // its bytes are still in memory; load hits the pending set
	}
	if _, ok := s.prefetched[next]; ok {
		return
	}
	// Reserve the slot so the request is not re-issued before it completes;
	// the prefetcher replaces the placeholder with the block image.
	s.prefetched[next] = diskImage{off: -1}
	s.pf.push(ioReq{idx: next, off: nb.off, length: nb.length})
}

// Set implements Store.
func (s *SpillStore) Set(id RowID, row types.Row) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.blocks[id.Block]
	if b.rows == nil {
		s.load(id.Block)
	}
	old := b.rows[id.Slot]
	b.rows[id.Slot] = row
	delta := rowBytes(row) - rowBytes(old)
	b.bytes += delta
	s.resident += delta
	b.dirty = true
	s.touch(b)
	s.enforceBudget(id.Block)
}

// Len implements Store.
func (s *SpillStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nrows
}

// Stats implements Store. It is safe to call concurrently with any other
// store method: the counters are atomics, so no lock is taken and callers
// polling progress never contend with the I/O path.
func (s *SpillStore) Stats() Stats { return s.stats.snapshot() }

// Close drains the background I/O goroutines and removes the spill file.
func (s *SpillStore) Close() error {
	s.mu.Lock()
	wr, pf := s.wr, s.pf
	s.wr, s.pf = nil, nil
	s.mu.Unlock()
	// Join outside the mutex: the writer takes s.mu to retire pending
	// entries after each batch.
	if wr != nil {
		wr.close()
	}
	if pf != nil {
		pf.close()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending, s.prefetched = nil, nil
	if s.file == nil {
		return nil
	}
	name := s.file.Name()
	err := s.file.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	s.file = nil
	return err
}

func (s *SpillStore) touch(b *block) {
	s.tick++
	b.lastTick = s.tick
	b.hits++
}

// weight implements the "weighted LRU" policy: plain recency, boosted by a
// capped hit count so that hot blocks (e.g. the block holding a partition's
// parent rows, probed once per child) survive longer than blocks touched
// once during the build scan.
func (b *block) weight() int64 {
	boost := b.hits
	if boost > 16 {
		boost = 16
	}
	return b.lastTick + 8*boost
}

// enforceBudget evicts lowest-weight blocks until the resident set fits.
// keep is never evicted (it is the block being actively accessed).
func (s *SpillStore) enforceBudget(keep int32) {
	if s.cfg.BudgetBytes <= 0 {
		return
	}
	for s.resident > s.cfg.BudgetBytes {
		victim := int32(-1)
		var vw int64
		for i, b := range s.blocks {
			if b.rows == nil || int32(i) == keep {
				continue
			}
			if w := b.weight(); victim < 0 || w < vw {
				victim, vw = int32(i), w
			}
		}
		if victim < 0 {
			return // only the active block is resident; nothing to do
		}
		s.evict(victim)
	}
}

// ensureFile lazily creates the spill file and, in async mode, starts the
// background writer and prefetcher. Called with s.mu held, before the first
// spill write.
func (s *SpillStore) ensureFile() {
	if s.file != nil {
		return
	}
	f, err := os.CreateTemp(s.cfg.Dir, "sqlsheet-spill-*.dat")
	if err != nil {
		panic(fmt.Sprintf("blockstore: create spill file: %v", err))
	}
	s.file = f
	if s.cfg.Async {
		s.pending = make(map[int32]pendingBlock)
		s.prefetched = make(map[int32]diskImage)
		s.wr = newIOQueue()
		s.pf = newIOQueue()
		go s.writeLoop(s.wr)
		go s.prefetchLoop(s.pf)
	}
}

func (s *SpillStore) evict(i int32) {
	b := s.blocks[i]
	if b.dirty {
		data := s.codec.encodeBlock(b.rows)
		s.ensureFile()
		b.off, b.length = s.fileEnd, int64(len(data))
		s.fileEnd += int64(len(data))
		s.stats.bytesSpilled.Add(int64(len(data)))
		b.dirty = false
		if s.wr != nil {
			// Hand the encoded image to the background writer. The block
			// stays readable from the pending set until the pwrite lands;
			// offsets are assigned here, under s.mu, so the writer sees
			// requests in strictly increasing file order and can coalesce
			// adjacent ones into single pwrites.
			s.pending[i] = pendingBlock{off: b.off, data: data}
			s.wr.push(ioReq{idx: i, off: b.off, data: data})
		} else {
			if _, err := s.file.WriteAt(data, b.off); err != nil {
				panic(fmt.Sprintf("blockstore: spill write: %v", err))
			}
			s.stats.spillWrites.Add(1)
		}
	}
	s.stats.blockEvictions.Add(1)
	s.resident -= b.bytes
	b.rows = nil
	b.bytes = 0
}

func (s *SpillStore) load(i int32) {
	b := s.blocks[i]
	if p, ok := s.pending[i]; ok && p.off == b.off {
		// Reload before the background write landed: decode straight from
		// the in-memory image (the double-buffering win — no disk round
		// trip for blocks evicted and touched again shortly after).
		s.installBlock(i, b, p.data)
		return
	}
	if img, ok := s.prefetched[i]; ok {
		delete(s.prefetched, i)
		if img.data != nil && img.off == b.off && int64(len(img.data)) == b.length {
			s.stats.prefetchHits.Add(1)
			s.installBlock(i, b, img.data)
			return
		}
	}
	if b.length == 0 {
		// Never spilled with data; must have been evicted empty.
		b.rows = make([]types.Row, 0, s.cfg.RowsPerBlock)
		return
	}
	data := make([]byte, b.length)
	if _, err := s.file.ReadAt(data, b.off); err != nil {
		panic(fmt.Sprintf("blockstore: spill read: %v", err))
	}
	s.installBlock(i, b, data)
}

// installBlock decodes an encoded block image into block b and charges the
// load to the budget and statistics. Called with s.mu held.
func (s *SpillStore) installBlock(i int32, b *block, data []byte) {
	rows, err := s.codec.decodeBlock(data)
	if err != nil {
		panic(fmt.Sprintf("blockstore: decode: %v", err))
	}
	b.rows = rows
	for _, r := range rows {
		b.bytes += rowBytes(r)
	}
	s.resident += b.bytes
	s.stats.blockLoads.Add(1)
	s.stats.bytesLoaded.Add(int64(len(data)))
	s.enforceBudget(i)
}

// RowBytes estimates the resident size of a row; callers sizing budgets
// relative to data (the Fig. 5 experiment) use the same accounting as the
// store itself.
func RowBytes(r types.Row) int64 { return rowBytes(r) }

// rowBytes estimates the resident size of a row.
func rowBytes(r types.Row) int64 {
	n := int64(24) // slice header + padding
	for _, v := range r {
		n += 40 // Value struct
		n += int64(len(v.S))
	}
	return n
}
