package blockstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"sqlsheet/internal/types"
)

func row(vals ...any) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			r[i] = types.NewInt(int64(x))
		case float64:
			r[i] = types.NewFloat(x)
		case string:
			r[i] = types.NewString(x)
		case nil:
			r[i] = types.Null
		case bool:
			r[i] = types.NewBool(x)
		}
	}
	return r
}

func TestMemStoreBasics(t *testing.T) {
	s := NewMem()
	id0 := s.Append(row(1, "a"))
	id1 := s.Append(row(2, "b"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Get(id1); got[1].S != "b" {
		t.Errorf("Get = %v", got)
	}
	s.Set(id0, row(9, "z"))
	if got := s.Get(id0); got[0].I != 9 {
		t.Errorf("Set broken: %v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillStoreNoBudgetActsAsMem(t *testing.T) {
	s := NewSpill(Config{RowsPerBlock: 4})
	defer s.Close()
	var ids []RowID
	for i := 0; i < 100; i++ {
		ids = append(ids, s.Append(row(i, fmt.Sprintf("v%d", i))))
	}
	for i, id := range ids {
		if got := s.Get(id); got[0].Int() != int64(i) {
			t.Fatalf("row %d = %v", i, got)
		}
	}
	if st := s.Stats(); st.BlockEvictions != 0 || st.BlockLoads != 0 {
		t.Errorf("unexpected I/O without budget: %+v", st)
	}
}

func TestSpillStoreEvictsAndReloads(t *testing.T) {
	s := NewSpill(Config{BudgetBytes: 2000, RowsPerBlock: 8, Dir: t.TempDir()})
	defer s.Close()
	const n = 500
	var ids []RowID
	for i := 0; i < n; i++ {
		ids = append(ids, s.Append(row(i, float64(i)*1.5, fmt.Sprintf("payload-%d", i))))
	}
	st := s.Stats()
	if st.BlockEvictions == 0 {
		t.Fatal("expected evictions under a tight budget")
	}
	// Read-your-writes across the whole store, random order.
	rng := rand.New(rand.NewSource(1))
	for _, i := range rng.Perm(n) {
		got := s.Get(ids[i])
		if got[0].Int() != int64(i) || got[2].S != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("row %d corrupted: %v", i, got)
		}
	}
	if s.Stats().BlockLoads == 0 {
		t.Error("expected block loads after evictions")
	}
}

func TestSpillStoreSetAfterEviction(t *testing.T) {
	s := NewSpill(Config{BudgetBytes: 1500, RowsPerBlock: 4, Dir: t.TempDir()})
	defer s.Close()
	var ids []RowID
	for i := 0; i < 200; i++ {
		ids = append(ids, s.Append(row(i)))
	}
	// Update every row, then verify.
	for i, id := range ids {
		s.Set(id, row(i*10))
	}
	for i, id := range ids {
		if got := s.Get(id); got[0].Int() != int64(i*10) {
			t.Fatalf("row %d = %v, want %d", i, got, i*10)
		}
	}
	if s.Stats().BytesSpilled == 0 {
		t.Error("dirty evictions must write bytes")
	}
}

func TestSpillStoreReadYourWritesProperty(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(map[bool]string{false: "sync", true: "async"}[async], func(t *testing.T) {
			testReadYourWrites(t, async)
		})
	}
}

func testReadYourWrites(t *testing.T, async bool) {
	// Property: under an arbitrary tiny budget, a random sequence of
	// appends/sets/gets behaves exactly like a plain slice — with or
	// without background spill I/O.
	f := func(ops []uint16, budget uint16) bool {
		s := NewSpill(Config{BudgetBytes: int64(budget%4000) + 200, RowsPerBlock: 3, Dir: t.TempDir(), Async: async})
		defer s.Close()
		var mirror []types.Row
		var ids []RowID
		for k, op := range ops {
			switch {
			case len(mirror) == 0 || op%3 == 0: // append
				r := row(int(op), fmt.Sprintf("s%d", k))
				ids = append(ids, s.Append(r))
				mirror = append(mirror, r)
			case op%3 == 1: // set
				i := int(op) % len(mirror)
				r := row(k, "upd")
				s.Set(ids[i], r)
				mirror[i] = r
			default: // get
				i := int(op) % len(mirror)
				got := s.Get(ids[i])
				want := mirror[i]
				if len(got) != len(want) {
					return false
				}
				for j := range got {
					if !types.Equal(got[j], want[j]) {
						return false
					}
				}
			}
		}
		for i := range mirror {
			got := s.Get(ids[i])
			for j := range got {
				if !types.Equal(got[j], mirror[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAsyncSpillCoalescesWrites(t *testing.T) {
	// A bulk load past a tight budget evicts waves of blocks with adjacent
	// file offsets; the background writer must fold them into fewer pwrites.
	s := NewSpill(Config{BudgetBytes: 1024, RowsPerBlock: 4, Dir: t.TempDir(), Async: true})
	var ids []RowID
	for i := 0; i < 600; i++ {
		ids = append(ids, s.Append(row(i, fmt.Sprintf("payload-%d", i))))
	}
	// Read everything back before Close so the data path (pending buffers +
	// file) is exercised, not just the shutdown flush.
	for i, id := range ids {
		if got := s.Get(id); got[0].Int() != int64(i) {
			t.Fatalf("row %d = %v", i, got)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BlockEvictions == 0 || st.BytesSpilled == 0 {
		t.Fatalf("expected spill traffic: %+v", st)
	}
	if st.CoalescedBlocks == 0 {
		t.Errorf("expected coalesced writes, got %+v", st)
	}
	// Every physical write wrote >= 1 block; coalesced blocks rode along on
	// one of them; no write can exceed the eviction count.
	if st.SpillWrites < 1 || st.SpillWrites+st.CoalescedBlocks > st.BlockEvictions {
		t.Errorf("write accounting inconsistent: %+v", st)
	}
}

// waitSpillDrained polls until the background writer has retired every
// pending block (bounded; the store stays usable either way).
func waitSpillDrained(s *SpillStore) {
	for i := 0; i < 5000; i++ {
		s.mu.Lock()
		n := len(s.pending)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// waitPrefetched polls until block idx's read-ahead reservation resolves —
// filled, consumed, or cancelled — giving the single-core test scheduler a
// yield point so the prefetcher can actually run.
func waitPrefetched(s *SpillStore, idx int32) {
	for i := 0; i < 5000; i++ {
		s.mu.Lock()
		img, reserved := s.prefetched[idx]
		s.mu.Unlock()
		if !reserved || img.data != nil {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func TestAsyncSpillSequentialPrefetch(t *testing.T) {
	s := NewSpill(Config{BudgetBytes: 900, RowsPerBlock: 4, Dir: t.TempDir(), Async: true})
	defer s.Close()
	const n = 400
	ids := make([]RowID, n)
	for i := 0; i < n; i++ {
		ids[i] = s.Append(row(i, "abcdefgh"))
	}
	// Let the background writer land everything so the scan reads from the
	// file (pending-set hits would mask the read-ahead path).
	waitSpillDrained(s)
	// A sequential scan over the (mostly evicted) store should trigger
	// read-ahead. Gets within a block give the prefetcher time; at each
	// block boundary, wait for the outstanding reservation to resolve so
	// the test is deterministic on a single-core host.
	for i := 0; i < n; i++ {
		if got := s.Get(ids[i]); got[0].Int() != int64(i) {
			t.Fatalf("row %d = %v", i, got)
		}
		s.mu.Lock()
		blk := ids[i].Block
		s.mu.Unlock()
		waitPrefetched(s, blk+1)
	}
	if hits := s.Stats().PrefetchHits; hits == 0 {
		t.Errorf("sequential scan produced no prefetch hits: %+v", s.Stats())
	}
}

// TestStatsConcurrentWithIO hammers Append/Get/Set from writer goroutines
// while readers poll Stats() — the counters are atomics, so Stats must be
// safe (and non-blocking) under -race in both sync and async modes.
func TestStatsConcurrentWithIO(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(map[bool]string{false: "sync", true: "async"}[async], func(t *testing.T) {
			s := NewSpill(Config{BudgetBytes: 1500, RowsPerBlock: 4, Dir: t.TempDir(), Async: async})
			defer s.Close()
			const seed = 256
			ids := make([]RowID, seed)
			for i := range ids {
				ids[i] = s.Append(row(i, "seed"))
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < 400; i++ {
						j := rng.Intn(seed)
						switch i % 3 {
						case 0:
							s.Get(ids[j])
						case 1:
							s.Set(ids[j], row(j, "upd"))
						default:
							s.Append(row(i, "new"))
						}
					}
				}(g)
			}
			statsDone := make(chan struct{})
			go func() {
				defer close(statsDone)
				var prev Stats
				for {
					st := s.Stats()
					// Counters are monotonic; a snapshot may never go back.
					if st.BlockLoads < prev.BlockLoads || st.BytesSpilled < prev.BytesSpilled {
						t.Error("stats went backwards")
						return
					}
					prev = st
					select {
					case <-stop:
						return
					default:
					}
				}
			}()
			wg.Wait()
			close(stop)
			<-statsDone
		})
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var c codec
	rows := []types.Row{
		row(1, 2.5, "hello", nil, true),
		row(-42, -0.0, "", nil, false),
		{},
	}
	out, err := c.decodeBlock(c.encodeBlock(rows))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rows) {
		t.Fatalf("rows = %d", len(out))
	}
	for i := range rows {
		if len(out[i]) != len(rows[i]) {
			t.Fatalf("row %d len", i)
		}
		for j := range rows[i] {
			if out[i][j].K != rows[i][j].K || !types.Equal(out[i][j], rows[i][j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, out[i][j], rows[i][j])
			}
		}
	}
}

func TestCodecCorruptData(t *testing.T) {
	var c codec
	if _, err := c.decodeBlock([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("overlong varint must fail")
	}
	good := c.encodeBlock([]types.Row{row("abcdef")})
	if _, err := c.decodeBlock(good[:len(good)-3]); err == nil {
		t.Error("truncated string must fail")
	}
}

func TestHotBlockSurvives(t *testing.T) {
	// A frequently probed block should outlive one-touch blocks under the
	// weighted-LRU policy.
	s := NewSpill(Config{BudgetBytes: 3000, RowsPerBlock: 4, Dir: t.TempDir()})
	defer s.Close()
	hot := s.Append(row(0, "hot"))
	for i := 0; i < 50; i++ {
		s.Get(hot) // heat the first block
	}
	loadsBefore := s.Stats().BlockLoads
	for i := 0; i < 300; i++ {
		s.Append(row(i, "cold"))
		s.Get(hot)
	}
	_ = loadsBefore
	// The hot block may still be evicted occasionally, but it must not be
	// reloaded once per probe; check it was reloaded far less often than
	// it was probed.
	if loads := s.Stats().BlockLoads; loads > 200 {
		t.Errorf("hot block thrashing: %d loads", loads)
	}
}

// TestConcurrentGets exercises concurrent readers under the race detector.
// MemStore reads are naturally safe (nothing mutates); SpillStore reads
// mutate LRU state and trigger evictions/reloads, so they rely on the
// store's internal mutex. Run with -race to make this meaningful.
func TestConcurrentGets(t *testing.T) {
	const nRows = 400
	stores := map[string]Store{
		"mem": NewMem(),
		"spill": NewSpill(Config{
			BudgetBytes:  2048, // force constant eviction/reload churn
			RowsPerBlock: 8,
			Dir:          t.TempDir(),
		}),
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			ids := make([]RowID, nRows)
			for i := 0; i < nRows; i++ {
				ids[i] = s.Append(row(i, fmt.Sprintf("val-%d", i)))
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < 500; i++ {
						j := rng.Intn(nRows)
						got := s.Get(ids[j])
						if want := int64(j); got[0].I != want {
							t.Errorf("Get(%d) = %v, want %d", j, got[0], want)
							return
						}
						if s.Len() != nRows {
							t.Errorf("Len = %d, want %d", s.Len(), nRows)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			s.Stats()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
