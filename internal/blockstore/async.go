package blockstore

import (
	"fmt"
	"sync"
)

// Background spill I/O. Eviction under a byte budget is the dominant cost of
// the out-of-core regime (the paper's Fig. 5 experiment): every block that
// crosses the budget boundary costs a synchronous encode + pwrite on the
// query path. In async mode the store instead double-buffers evictions —
// the foreground encodes the block, assigns its file offset and hands the
// image to a writer goroutine; the writer drains whole batches, coalescing
// blocks bound for adjacent offsets into single pwrites. A small read-ahead
// queue mirrors the idea on the load side: when Gets walk blocks
// sequentially (a partition scan over a clustered bucket), the next block is
// fetched before it is asked for.

// prefetchWindow bounds the number of outstanding read-ahead block images.
// Two is the classic double buffer: one block being consumed, one in flight.
const prefetchWindow = 2

// ioReq is one unit of background work: a write (data != nil) or a
// read-ahead (length > 0) of block idx at file offset off.
type ioReq struct {
	idx    int32
	off    int64
	length int64
	data   []byte
}

// ioQueue is an unbounded FIFO drained by one background goroutine. It is
// deliberately not a channel: the producer runs under the store mutex, and a
// bounded channel send there could deadlock against a consumer waiting for
// that same mutex. Unboundedness is safe — queue depth is limited by how far
// eviction can outrun the writer within one budget enforcement pass.
type ioQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	reqs   []ioReq
	closed bool
	done   chan struct{}
}

func newIOQueue() *ioQueue {
	q := &ioQueue{done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a request. Never blocks; safe to call with the store mutex
// held.
func (q *ioQueue) push(r ioReq) {
	q.mu.Lock()
	q.reqs = append(q.reqs, r)
	q.mu.Unlock()
	q.cond.Signal()
}

// drain blocks until requests are available or the queue is closed, then
// returns the whole backlog (the swap is what makes eviction double-
// buffered: the foreground refills a fresh slice while the consumer works
// the old one). ok is false once the queue is closed and empty.
func (q *ioQueue) drain() (batch []ioReq, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.reqs) == 0 && !q.closed {
		q.cond.Wait()
	}
	batch, q.reqs = q.reqs, nil
	return batch, len(batch) > 0 || !q.closed
}

// close marks the queue closed and waits for the consumer to finish the
// backlog and exit.
func (q *ioQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
	<-q.done
}

// writeLoop is the background eviction writer: it drains write batches and
// issues them with adjacent-offset coalescing. Offsets are assigned by
// evict() under the store mutex, so requests arrive in increasing file
// order and blocks evicted in one budget pass occupy contiguous offsets —
// the common case collapses a whole eviction wave into one pwrite.
func (s *SpillStore) writeLoop(q *ioQueue) {
	defer close(q.done)
	for {
		batch, ok := q.drain()
		if len(batch) > 0 {
			s.flushBatch(batch)
		}
		if !ok {
			return
		}
	}
}

// flushBatch writes a batch of encoded blocks, merging runs of requests
// whose file ranges are adjacent into single pwrites, then retires the
// written versions from the pending set.
func (s *SpillStore) flushBatch(batch []ioReq) {
	for lo := 0; lo < len(batch); {
		hi := lo + 1
		end := batch[lo].off + int64(len(batch[lo].data))
		for hi < len(batch) && batch[hi].off == end {
			end += int64(len(batch[hi].data))
			hi++
		}
		buf := batch[lo].data
		if hi > lo+1 {
			buf = make([]byte, 0, end-batch[lo].off)
			for i := lo; i < hi; i++ {
				buf = append(buf, batch[i].data...)
			}
			s.stats.coalescedBlocks.Add(int64(hi - lo - 1))
		}
		if _, err := s.file.WriteAt(buf, batch[lo].off); err != nil {
			panic(fmt.Sprintf("blockstore: async spill write: %v", err))
		}
		s.stats.spillWrites.Add(1)
		s.mu.Lock()
		for i := lo; i < hi; i++ {
			// Retire only the version we wrote: a block re-evicted in the
			// meantime has a newer offset and a newer pending entry.
			if p, ok := s.pending[batch[i].idx]; ok && p.off == batch[i].off {
				delete(s.pending, batch[i].idx)
			}
		}
		s.mu.Unlock()
		lo = hi
	}
}

// prefetchLoop services read-ahead requests. Each request's offset range was
// durably written before the request was issued (pending blocks are never
// enqueued), and the spill file is append-only, so the pread needs no lock;
// only installing the image does. The image is kept only if its block is
// still evicted at the same offset and its reservation was not cancelled by
// a foreground load.
func (s *SpillStore) prefetchLoop(q *ioQueue) {
	defer close(q.done)
	for {
		batch, ok := q.drain()
		for _, r := range batch {
			data := make([]byte, r.length)
			if _, err := s.file.ReadAt(data, r.off); err != nil {
				panic(fmt.Sprintf("blockstore: read-ahead: %v", err))
			}
			s.mu.Lock()
			img, reserved := s.prefetched[r.idx]
			b := s.blocks[r.idx]
			if reserved && img.data == nil && b.rows == nil && b.off == r.off {
				s.prefetched[r.idx] = diskImage{off: r.off, data: data}
			} else if reserved && img.data == nil {
				delete(s.prefetched, r.idx) // overtaken by a foreground load
			}
			s.mu.Unlock()
		}
		if !ok {
			return
		}
	}
}
