package core

import (
	"testing"

	"sqlsheet/internal/blockstore"
	"sqlsheet/internal/types"
)

// TestFrameProbeDoesNotAllocate pins the allocation-free cell-probe
// contract: once a frame's key scratch buffer has warmed up, Lookup and
// WasPresent encode the DBY key into the reused buffer and probe the hash
// index via the no-alloc string(key) map-access idiom — zero allocations
// per probe in steady state. Formula evaluation probes cells for every
// qualifier of every rule on every row, so an allocation here multiplies
// into GC pressure proportional to cells × rules.
func TestFrameProbeDoesNotAllocate(t *testing.T) {
	m := mustModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY(p, t) MEA(s)
		( s['dvd', 2000] = 1 )`, nil)
	rows := []types.Row{
		R("west", "dvd", 2000, 10.0),
		R("west", "vcr", 2001, 20.0),
		R("west", "tv", 1999, 30.0),
		R("east", "dvd", 2000, 40.0),
	}
	ps, err := buildPartitions(m, rows, 2, func() blockstore.Store { return blockstore.NewMem() }, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	var frames []*Frame
	for _, b := range ps.Buckets() {
		frames = append(frames, b.frames...)
	}
	if len(frames) == 0 {
		t.Fatal("no frames built")
	}
	hit := []types.Value{V("dvd"), V(2000)}
	miss := []types.Value{V("laser"), V(1985)}
	probe := func() {
		for _, f := range frames {
			f.Lookup(hit)
			f.Lookup(miss)
			f.WasPresent(hit)
			f.WasPresent(miss)
		}
	}
	probe() // warm the per-frame key scratch buffers
	if avg := testing.AllocsPerRun(200, probe); avg != 0 {
		t.Errorf("frame probes allocate %.2f times per run; want 0", avg)
	}
}
