package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sqlsheet/internal/btree"
	"sqlsheet/internal/colstore"
	"sqlsheet/internal/types"
)

// Parallel partition build. The access structure is built in two phases that
// mirror the serial two-pass loop but decompose along axes with no shared
// state:
//
//  1. Scan: workers take morsel-sized row ranges in input order and encode
//     every row's PBY and DBY keys into chunk-local arenas, folding the
//     first-level bucket hash into the same FNV-1a pass that encodes the key
//     bytes. Chunks only write their own arrays, so this phase needs no
//     locking at all.
//  2. Assemble: workers take whole first-level buckets. Each bucket walks the
//     chunks in input order, creating frames in first-seen order and
//     collecting its rows' positions, then sorts each frame's rows by
//     second-level hash and appends them to the bucket's private store.
//     Buckets share nothing (each owns its store, frame list and key map),
//     so this phase is also lock-free.
//
// Because chunk boundaries are a pure function of the input size and phase 2
// visits rows in global input order regardless of which worker scanned them,
// the resulting PartitionSet is byte-identical to the serial build for any
// worker count.

// buildMorsel is the number of rows one scan task encodes at a time.
const buildMorsel = 4096

// BuildOptions selects the second-level access method and the build
// parallelism.
type BuildOptions struct {
	// UseBTree swaps the second-level hash tables for B-trees (ablation).
	UseBTree bool
	// Workers is the number of build workers; <=1 builds serially. The
	// output is identical for every value.
	Workers int
	// Cols, when non-nil, supplies columnar vectors for the working
	// relation so the scan phase encodes PBY/DBY keys straight from typed
	// columns. The key bytes are identical to the row path's
	// (colstore.Column.AppendKey is pinned to types.AppendKey).
	Cols *ColSource
	// ShareRows stores input rows by reference instead of cloning them into
	// the bucket stores, and hands stored rows out of PartitionSet.Rows by
	// reference too (the unbudgeted in-memory fast path). Safe because the
	// engine replaces stored rows copy-on-write (SetMeasure clones before
	// Set) and never mutates one in place; only valid for memory-resident
	// stores, which never serialize rows across a spill boundary.
	ShareRows bool
}

// ColSource maps working-schema ordinals to columnar vectors. Cols is
// indexed by ordinal (a nil entry falls back to the boxed row value);
// RowIdx maps working-relation positions to vector rows (nil = identity).
type ColSource struct {
	Cols   []*colstore.Column
	RowIdx []int32
}

// appendKey appends the key bytes for working-relation position ri,
// ordinal ord, preferring the typed vector when one is available.
func (cs *ColSource) appendKey(buf []byte, rows []types.Row, ri, ord int) []byte {
	if cs != nil && ord < len(cs.Cols) && cs.Cols[ord] != nil {
		r := ri
		if cs.RowIdx != nil {
			r = int(cs.RowIdx[ri])
		}
		return cs.Cols[ord].AppendKey(buf, r)
	}
	return types.AppendKey(buf, rows[ri][ord]) // interp-ok: row fallback
}

// buildChunk holds one scan task's encoded keys. Key bytes live in flat
// arenas addressed by prefix offsets; the arenas stay alive until assembly
// finishes, so frame entries can alias them instead of copying.
type buildChunk struct {
	lo      int     // global index of the chunk's first row
	bucket  []int32 // first-level bucket per row
	pbyOff  []int32 // prefix offsets into pbyFlat (len rows+1)
	pbyFlat []byte
	dbyOff  []int32 // prefix offsets into dbyFlat (len rows+1)
	dbyFlat []byte
	dbyHash []uint32 // second-level hash per row
}

// frameEntry is one row routed to a frame: its global input position, its
// second-level hash, and its encoded DBY key (aliasing the chunk arena).
type frameEntry struct {
	ri   int
	hash uint32
	key  []byte
}

// BuildPartitionsOpts builds the two-level access structure with explicit
// build options. See BuildPartitions for the structure's invariants.
func BuildPartitionsOpts(m *Model, rows []types.Row, nBuckets int, newStore StoreFactory, o BuildOptions) (*PartitionSet, error) {
	if nBuckets < 1 {
		nBuckets = 1
	}
	ps := &PartitionSet{model: m, shareRows: o.ShareRows}
	ps.buckets = make([]*bucket, nBuckets)
	for i := range ps.buckets {
		ps.buckets[i] = &bucket{store: newStore(), byKey: make(map[string]*Frame)}
	}
	nChunks := (len(rows) + buildMorsel - 1) / buildMorsel
	chunks := make([]*buildChunk, nChunks)
	runBuildTasks(o.Workers, nChunks, func(ci int) {
		lo := ci * buildMorsel
		hi := min(lo+buildMorsel, len(rows))
		chunks[ci] = scanChunk(m, rows, lo, hi, nBuckets, o.Cols)
	})
	errs := make([]error, nBuckets)
	runBuildTasks(o.Workers, nBuckets, func(bi int) {
		errs[bi] = assembleBucket(m, ps.buckets[bi], rows, chunks, int32(bi), o)
	})
	for _, err := range errs {
		if err != nil {
			// Lowest bucket index wins, matching the serial build's
			// bucket-order error. Release the stores: the caller never sees
			// the partial structure.
			ps.Close()
			return nil, err
		}
	}
	return ps, nil
}

// runBuildTasks runs fn(i) for every i in [0,n) across min(workers, n)
// goroutines (the caller is one of them). Tasks write disjoint output slots,
// so the only shared state is the claim counter.
func runBuildTasks(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	for {
		i := int(next.Add(1) - 1)
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}

// scanChunk encodes rows [lo,hi) into a chunk arena. Both hashes are folded
// into the same pass that appends the key bytes, so each key byte is touched
// exactly once.
func scanChunk(m *Model, rows []types.Row, lo, hi, nBuckets int, cols *ColSource) *buildChunk {
	n := hi - lo
	c := &buildChunk{
		lo:      lo,
		bucket:  make([]int32, n),
		pbyOff:  make([]int32, n+1),
		dbyOff:  make([]int32, n+1),
		dbyHash: make([]uint32, n),
	}
	for i := 0; i < n; i++ {
		ri := lo + i
		h := uint32(fnvOffset32)
		for p := 0; p < m.NPby; p++ {
			pre := len(c.pbyFlat)
			c.pbyFlat = cols.appendKey(c.pbyFlat, rows, ri, p)
			h = hashExtend(h, c.pbyFlat[pre:])
		}
		c.pbyOff[i+1] = int32(len(c.pbyFlat))
		c.bucket[i] = int32(int(h) % nBuckets)
		h = fnvOffset32
		for d := 0; d < m.NDby; d++ {
			pre := len(c.dbyFlat)
			c.dbyFlat = cols.appendKey(c.dbyFlat, rows, ri, m.NPby+d)
			h = hashExtend(h, c.dbyFlat[pre:])
		}
		c.dbyOff[i+1] = int32(len(c.dbyFlat))
		c.dbyHash[i] = h
	}
	return c
}

// assembleBucket routes the bucket's rows to frames (first-seen order, input
// order within each frame), then appends each frame's rows to the bucket
// store in second-level hash order so partitions stay block-clustered — the
// same layout the serial build produces ("the hash access structure maintains
// records within a hash bucket clustered on PBY and DBY column values").
func assembleBucket(m *Model, b *bucket, rows []types.Row, chunks []*buildChunk, bi int32, o BuildOptions) error {
	slot := make(map[*Frame]int)
	var ents [][]frameEntry
	for _, c := range chunks {
		for i, cb := range c.bucket {
			if cb != bi {
				continue
			}
			pk := c.pbyFlat[c.pbyOff[i]:c.pbyOff[i+1]]
			f := b.byKey[string(pk)]
			if f == nil {
				f = &Frame{
					b:       b,
					pby:     append([]types.Value(nil), rows[c.lo+i][:m.NPby]...),
					present: make(map[string]bool),
				}
				if o.UseBTree {
					f.bidx = btree.New()
				} else {
					f.index = make(map[string]int)
				}
				b.byKey[string(pk)] = f
				b.frames = append(b.frames, f)
				slot[f] = len(ents)
				ents = append(ents, nil)
			}
			ents[slot[f]] = append(ents[slot[f]], frameEntry{
				ri:   c.lo + i,
				hash: c.dbyHash[i],
				key:  c.dbyFlat[c.dbyOff[i]:c.dbyOff[i+1]],
			})
		}
	}
	for fi, f := range b.frames {
		es := ents[fi]
		// Stable on hash: ties keep input order, exactly like the serial
		// build's order-index sort.
		sort.SliceStable(es, func(i, j int) bool { return es[i].hash < es[j].hash })
		for _, e := range es {
			if _, dup := f.lookupKey(e.key); dup {
				return fmt.Errorf("spreadsheet: DBY columns (%s) do not uniquely identify row %v within its partition",
					joinNames(m.DimNames()), rows[e.ri][m.NPby:m.NPby+m.NDby])
			}
			r := rows[e.ri]
			if !o.ShareRows {
				r = r.Clone()
			}
			id := b.store.Append(r)
			dk := string(e.key) // stored in index and present set
			f.putKey(dk, len(f.ids))
			f.ids = append(f.ids, id)
			f.present[dk] = true
		}
	}
	return nil
}
