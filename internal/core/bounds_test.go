package core

import (
	"testing"
	"testing/quick"

	"sqlsheet/internal/types"
)

func rng(lo, hi any, loIncl, hiIncl bool) Bound {
	b := Bound{IsRange: true, LoIncl: loIncl, HiIncl: hiIncl}
	if lo != nil {
		b.Lo = V(lo)
	}
	if hi != nil {
		b.Hi = V(hi)
	}
	return b
}

func TestBoundsIntersect(t *testing.T) {
	cases := []struct {
		a, b Bound
		want bool
	}{
		{allBound(), valsBound(V(1)), true},
		{valsBound(V(1), V(2)), valsBound(V(2), V(3)), true},
		{valsBound(V(1)), valsBound(V(2)), false},
		{valsBound(V(2002)), valsBound(V(types.NewFloat(2002))), true}, // cross-kind
		{rng(1, 5, true, true), valsBound(V(3)), true},
		{rng(1, 5, true, false), valsBound(V(5)), false},
		{rng(1, 5, true, true), rng(5, 9, true, true), true},
		{rng(1, 5, true, false), rng(5, 9, true, true), false},
		{rng(1, 5, true, true), rng(6, 9, true, true), false},
		{rng(nil, 5, false, true), rng(5, nil, true, false), true},
		{rng(nil, 4, false, true), rng(5, nil, true, false), false},
	}
	for i, c := range cases {
		if got := boundsIntersect(c.a, c.b); got != c.want {
			t.Errorf("case %d: intersect(%+v, %+v) = %v", i, c.a, c.b, got)
		}
		if got := boundsIntersect(c.b, c.a); got != c.want {
			t.Errorf("case %d: intersect must be symmetric", i)
		}
	}
}

func TestBoundUnionContainsBoth(t *testing.T) {
	// Property: the union of two finite bounds contains every value of
	// both operands.
	f := func(as, bs []int16) bool {
		if len(as) == 0 || len(bs) == 0 || len(as) > 8 || len(bs) > 8 {
			return true
		}
		var a, b Bound
		for _, v := range as {
			a.Vals = append(a.Vals, types.NewInt(int64(v)))
		}
		for _, v := range bs {
			b.Vals = append(b.Vals, types.NewInt(int64(v)))
		}
		u := unionBound(a, b)
		for _, v := range append(append([]types.Value{}, a.Vals...), b.Vals...) {
			if !rangeContains(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectBoundSoundness(t *testing.T) {
	// Property: a value in both operands stays in the intersection.
	f := func(vals []int16, lo, hi int16) bool {
		if len(vals) == 0 || len(vals) > 10 {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		var vb Bound
		for _, v := range vals {
			vb.Vals = append(vb.Vals, types.NewInt(int64(v)))
		}
		rb := rng(int(lo), int(hi), true, true)
		out := intersectBound(vb, rb)
		for _, v := range vb.Vals {
			inBoth := rangeContains(rb, v)
			if inBoth && !rangeContains(out, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftBound(t *testing.T) {
	b := shiftBound(valsBound(V(2000), V(2001)), -1)
	if len(b.Vals) != 2 || b.Vals[0].I != 1999 {
		t.Errorf("shift vals = %+v", b)
	}
	b = shiftBound(rng(1990, 2000, true, false), 5)
	if b.Lo.I != 1995 || b.Hi.I != 2005 || !b.LoIncl || b.HiIncl {
		t.Errorf("shift range = %+v", b)
	}
	// Non-integer values degrade to All.
	if !shiftBound(valsBound(V("dvd")), 1).All {
		t.Error("string shift must degrade to All")
	}
}

func TestBoundPredicate(t *testing.T) {
	cases := []struct {
		b    Bound
		want string
	}{
		{valsBound(V(2000)), "(t = 2000)"},
		{valsBound(V(1), V(2)), "t IN (1, 2)"},
		{rng(1, 5, true, false), "((t >= 1) AND (t < 5))"},
		{rng(nil, 5, false, true), "(t <= 5)"},
		{Bound{}, "FALSE"}, // empty set matches nothing
	}
	for _, c := range cases {
		p := BoundPredicate("t", c.b)
		got := "nil"
		if p != nil {
			got = p.String()
		}
		if c.want == "FALSE" {
			if got != "false" {
				t.Errorf("empty bound = %s", got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("BoundPredicate(%+v) = %s, want %s", c.b, got, c.want)
		}
	}
	if BoundPredicate("t", allBound()) != nil {
		t.Error("All bound must give no predicate")
	}
}

func TestCvShiftRecognition(t *testing.T) {
	m := mustModel(t, `SELECT p, t, s FROM f SPREADSHEET DBY (p, t) MEA (s) UPDATE
		( s['dvd', 2002] = s[cv(p), t=cv(t)-1] + s[cv(p), cv(t)+2] )`, nil)
	r := m.Rules[0]
	// Reads: t shifted by -1 and +2 from the LHS {2002}.
	found := map[int64]bool{}
	for _, a := range r.reads {
		if a.rect == nil || a.rect[1].All {
			continue
		}
		for _, v := range a.rect[1].Vals {
			found[v.I] = true
		}
	}
	if !found[2001] || !found[2004] {
		t.Errorf("cv-shift rectangles wrong: %v", found)
	}
}

func TestDepGraphLevelsRespectDependencies(t *testing.T) {
	// Property-style check over the compiled example set: in every level
	// plan, a rule's dependencies occur in strictly earlier steps.
	m := mustModel(t, `SELECT p, t, s FROM f SPREADSHEET DBY (p, t) MEA (s) UPDATE
		(
		F1: s['a', 4] = s['a', 3] + s['b', 3],
		F2: s['a', 3] = s['a', 2] * 2,
		F3: s['b', 3] = sum(s)['b', t<3],
		F4: s['a', 2] = 1,
		F5: s['c', 9] = 5
		)`, nil)
	if err := m.Analyze(); err != nil {
		t.Fatal(err)
	}
	steps, _ := m.Levels()
	stepOf := map[int]int{}
	for si, rules := range steps {
		for _, ri := range rules {
			stepOf[ri] = si
		}
	}
	for ri := range m.Rules {
		for _, dep := range m.depEdges[ri] {
			if dep == ri {
				continue
			}
			if stepOf[dep] >= stepOf[ri] {
				t.Errorf("rule %d (step %d) depends on rule %d (step %d)",
					ri, stepOf[ri], dep, stepOf[dep])
			}
		}
	}
	// F5 (independent point) must share the first level with F4.
	if len(steps[0]) < 2 {
		t.Errorf("independent single_refs not batched: %v", steps)
	}
}
