package core

import (
	"fmt"

	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// evalCellAgg resolves an aggregate reference during formula evaluation.
// Instances prepared for the current target are consulted first; an
// aggregate without a prepared instance (e.g. one nested inside a
// dimension-qualifier expression) is computed on the spot.
func (fe *frameEval) evalCellAgg(ctx *eval.Context, a *sqlast.CellAgg) (types.Value, error) {
	if inst, ok := fe.curAggs[a]; ok {
		return inst.acc.Result(), nil
	}
	inst, err := fe.buildInstance(ctx, a)
	if err != nil {
		return types.Null, err
	}
	if inst.probe {
		if err := inst.runProbe(fe); err != nil {
			return types.Null, err
		}
	} else if err := fe.scanFeed([]*aggInstance{inst}); err != nil {
		return types.Null, err
	}
	return inst.acc.Result(), nil
}

// runSCC is the Auto-Cyclic algorithm (§5): formulas in a strongly
// connected component are evaluated in order, repeatedly, until a fixed
// point. The iteration bound is N = the number of cells updated or upserted
// in the first iteration — enough for any spreadsheet that was actually
// acyclic but could not be proven so; genuinely divergent models exceed N
// and error out.
//
// Convergence is detected with two alternating generations of per-cell
// "referenced" flags: a write that changes a cell read in this or the
// previous iteration — or any insert — forces another iteration.
func (fe *frameEval) runSCC(rules []int) error {
	fe.trackRefs = true
	fe.gen = 0
	fe.f.ClearFlags(0)
	fe.f.ClearFlags(1)
	defer func() {
		fe.trackRefs = false
		fe.assigned = nil
	}()

	bound := 0
	for iter := 0; ; iter++ {
		// Cancellation point: one poll per fixpoint iteration.
		if err := fe.opts.ctxErr(); err != nil {
			return err
		}
		fe.changed = false
		fe.assigned = make(map[int64]bool)
		for _, ri := range rules {
			r := fe.m.Rules[ri]
			var err error
			if r.Existential {
				err = fe.applyExistential(r)
			} else {
				err = fe.applyPointRuleStandalone(r)
			}
			if err != nil {
				return err
			}
		}
		if iter == 0 {
			bound = len(fe.assigned)
			if bound < 1 {
				bound = 1
			}
		}
		if !fe.changed {
			return nil
		}
		if iter >= bound {
			return fmt.Errorf("spreadsheet did not converge: cycle of %d formula(s) still changing after %d iterations",
				len(rules), iter+1)
		}
		// Swap flag generations; the one we enter holds flags from two
		// iterations back and is cleared (the paper's alternating-flag
		// trick avoids clearing both every iteration).
		fe.gen = 1 - fe.gen
		fe.f.ClearFlags(fe.gen)
	}
}

// applyPointRuleStandalone evaluates one single-cell rule outside the
// shared-scan batching: targets enumerated and aggregates computed fresh,
// so each SCC iteration sees the current state.
func (fe *frameEval) applyPointRuleStandalone(r *Rule) error {
	targets, err := fe.ruleTargets(r)
	if err != nil {
		return err
	}
	_, cellAggs := sqlast.CellRefs(r.RHS)
	for _, dims := range targets {
		ctx := fe.targetCtx(r, dims)
		if len(cellAggs) > 0 {
			am := make(map[*sqlast.CellAgg]*aggInstance, len(cellAggs))
			var scans []*aggInstance
			for _, ca := range cellAggs {
				inst, err := fe.buildInstance(ctx, ca)
				if err != nil {
					return fmt.Errorf("%s: %v", r.Label, err)
				}
				if inst.probe {
					if err := inst.runProbe(fe); err != nil {
						return err
					}
				} else {
					scans = append(scans, inst)
				}
				am[ca] = inst
			}
			if len(scans) > 0 {
				if err := fe.scanFeed(scans); err != nil {
					return err
				}
			}
			fe.curAggs = am
		}
		err := fe.applyPoint(r, dims, ctx)
		fe.curAggs = nil
		if err != nil {
			return err
		}
	}
	return nil
}
