package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"sqlsheet/internal/parser"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// V builds a Value from a Go literal.
func V(x any) types.Value {
	switch v := x.(type) {
	case int:
		return types.NewInt(int64(v))
	case int64:
		return types.NewInt(v)
	case float64:
		return types.NewFloat(v)
	case string:
		return types.NewString(v)
	case bool:
		return types.NewBool(v)
	case nil:
		return types.Null
	case types.Value:
		return v
	}
	panic(fmt.Sprintf("V(%T)", x))
}

// R builds a Row.
func R(vals ...any) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		r[i] = V(v)
	}
	return r
}

// mustClause extracts the spreadsheet clause from a SQL query.
func mustClause(t testing.TB, sql string) *sqlast.SpreadsheetClause {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := q.Query.(*sqlast.SelectBody)
	if body.Spreadsheet == nil {
		t.Fatal("no spreadsheet clause")
	}
	return body.Spreadsheet
}

// workingSchema derives the working schema from the clause's PBY/DBY/MEA.
func workingSchema(t testing.TB, sc *sqlast.SpreadsheetClause) *types.Schema {
	t.Helper()
	var cols []types.Column
	for _, lists := range [][]sqlast.Expr{sc.PBY, sc.DBY} {
		for _, e := range lists {
			c, ok := e.(*sqlast.ColumnRef)
			if !ok {
				t.Fatalf("test helper requires plain column refs, got %s", e)
			}
			cols = append(cols, types.Column{Name: c.Name})
		}
	}
	for _, mi := range sc.MEA {
		cols = append(cols, types.Column{Name: mi.Name()})
	}
	return types.NewSchema(cols...)
}

// refMetaFor builds RefMeta (with data) from the clause's reference sheets.
func refMetaFor(t testing.TB, sc *sqlast.SpreadsheetClause, data map[string][]types.Row) []*RefMeta {
	t.Helper()
	var out []*RefMeta
	for i, rs := range sc.Refs {
		name := rs.Name
		if name == "" {
			name = fmt.Sprintf("ref_%d", i+1)
		}
		rm := &RefMeta{Name: name, Src: rs, Data: map[string]types.Row{}}
		for _, e := range rs.DBY {
			rm.Dims = append(rm.Dims, e.(*sqlast.ColumnRef).Name)
		}
		for _, mi := range rs.MEA {
			rm.Meas = append(rm.Meas, mi.Name())
		}
		for _, row := range data[name] {
			rm.Data[keyOf(row[:len(rm.Dims)])] = row
		}
		out = append(out, rm)
	}
	return out
}

// mustModel compiles a clause from SQL.
func mustModel(t testing.TB, sql string, refData map[string][]types.Row) *Model {
	t.Helper()
	sc := mustClause(t, sql)
	m, err := Compile(sc, workingSchema(t, sc), refMetaFor(t, sc, refData))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

// run executes the model and indexes results by their dimension key.
func run(t *testing.T, m *Model, rows []types.Row, opts RunOptions) map[string]types.Row {
	t.Helper()
	out, _, err := m.Run(rows, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return indexRows(m, out)
}

func indexRows(m *Model, out []types.Row) map[string]types.Row {
	idx := make(map[string]types.Row, len(out))
	for _, r := range out {
		idx[keyOf(r[:m.NPby+m.NDby])] = r
	}
	return idx
}

// cell fetches a result row by its pby+dby values.
func cell(t *testing.T, idx map[string]types.Row, keys ...any) types.Row {
	t.Helper()
	r, ok := idx[keyOf(R(keys...))]
	if !ok {
		t.Fatalf("no cell %v", keys)
	}
	return r
}

// --- compile-time validation ---

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, sql, want string
	}{
		{"unknown measure", `SELECT 1 FROM f SPREADSHEET DBY (t) MEA (s) ( z[1] = 2 )`, "not a MEA column"},
		{"wrong arity", `SELECT 1 FROM f SPREADSHEET DBY (p, t) MEA (s) ( s[1] = 2 )`, "qualifiers"},
		{"wrong symbolic dim", `SELECT 1 FROM f SPREADSHEET DBY (p, t) MEA (s) ( s[t=1, 2] = 3 )`, "position binds"},
		{"upsert existential", `SELECT 1 FROM f SPREADSHEET DBY (t) MEA (s) ( UPSERT s[t<5] = 3 )`, "UPSERT is not allowed"},
		{"cv on lhs", `SELECT 1 FROM f SPREADSHEET DBY (t) MEA (s) ( s[cv(t)] = 3 )`, "cv() is not allowed on the left"},
		{"rhs range no agg", `SELECT 1 FROM f SPREADSHEET DBY (t) MEA (s) ( s[1] = s[t<5] )`, "single value"},
		{"cv unknown dim", `SELECT 1 FROM f SPREADSHEET DBY (t) MEA (s) ( s[1] = s[cv(x)] )`, "does not name a DBY"},
		{"for on rhs", `SELECT 1 FROM f SPREADSHEET DBY (t) MEA (s) ( s[1] = sum(s)[FOR t IN (1,2)] )`, "left side"},
		{"previous in formula", `SELECT 1 FROM f SPREADSHEET DBY (t) MEA (s) ( s[1] = previous(s[1]) )`, "UNTIL"},
		{"order by on point", `SELECT 1 FROM f SPREADSHEET DBY (t) MEA (s) ( s[1] ORDER BY t = 2 )`, "existential"},
		{"bad agg", `SELECT 1 FROM f SPREADSHEET DBY (t) MEA (s) ( s[1] = median(s)[t<5] )`, "not an aggregate"},
		{"slope arity", `SELECT 1 FROM f SPREADSHEET DBY (t) MEA (s) ( s[1] = slope(s)[t<5] )`, "takes 2 arguments"},
		{"star agg", `SELECT 1 FROM f SPREADSHEET DBY (t) MEA (s) ( s[1] = sum(*)[t<5] )`, "not supported"},
		{"pred other dim", `SELECT 1 FROM f SPREADSHEET DBY (p, t) MEA (s) ( s[p='a', p=1] = 2 )`, "position binds"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := mustClause(t, c.sql)
			_, err := Compile(sc, workingSchema(t, sc), nil)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestCompileDuplicateColumns(t *testing.T) {
	sc := mustClause(t, `SELECT 1 FROM f SPREADSHEET PBY(r) DBY (r) MEA (s) ( s[1] = 2 )`)
	ws := types.NewSchemaNames("r", "r", "s")
	if _, err := Compile(sc, ws, nil); err == nil {
		t.Fatal("duplicate columns must fail")
	}
}

// --- basic execution (paper §2 examples) ---

// fRows is the electronics fact table used throughout the paper:
// f(r, p, t, s) here (cost column added where needed).
func fRows() []types.Row {
	var rows []types.Row
	for _, r := range []string{"west", "east"} {
		for _, p := range []string{"dvd", "vcr", "tv"} {
			for ti := 1998; ti <= 2002; ti++ {
				// Deterministic, distinct values: s = f(region, product, year).
				base := float64(ti - 1990)
				if p == "vcr" {
					base *= 2
				}
				if p == "tv" {
					base *= 3
				}
				if r == "east" {
					base += 100
				}
				rows = append(rows, R(r, p, ti, base))
			}
		}
	}
	return rows
}

func TestBasicPointFormulas(t *testing.T) {
	m := mustModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		(
		  s[p='dvd',t=2002] = s[p='dvd',t=2001]*1.6,
		  s[p='vcr',t=2002] = s[p='vcr',t=2000] + s[p='vcr',t=2001],
		  s['tv', 2002] = avg(s)['tv', 1992<t<2002]
		)`, nil)
	idx := run(t, m, fRows(), RunOptions{})
	// west: dvd 2001 = 11 → 2002 = 17.6
	if got := cell(t, idx, "west", "dvd", 2002)[3].Float(); got != 17.6 {
		t.Errorf("dvd west 2002 = %v", got)
	}
	// west: vcr 2000=20, 2001=22 → 42
	if got := cell(t, idx, "west", "vcr", 2002)[3].Float(); got != 42 {
		t.Errorf("vcr west 2002 = %v", got)
	}
	// west: tv avg over 1998..2001 (within 1992<t<2002) = 3*(8+9+10+11)/4 = 28.5
	if got := cell(t, idx, "west", "tv", 2002)[3].Float(); got != 28.5 {
		t.Errorf("tv west 2002 = %v", got)
	}
	// east partition independent: dvd east 2001 = 111 → 177.6
	if got := cell(t, idx, "east", "dvd", 2002)[3].Float(); math.Abs(got-177.6) > 1e-9 {
		t.Errorf("dvd east 2002 = %v", got)
	}
}

func TestCvAndStarExistential(t *testing.T) {
	m := mustModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET DBY (r, p, t) MEA (s)
		( s['west',*,t>2001] = 1.2*s[cv(r),cv(p),t=cv(t)-1] )`, nil)
	idx := run(t, m, fRows(), RunOptions{})
	// s[west, dvd, 2002] = 1.2 * s[west, dvd, 2001] = 1.2*11
	if got := cell(t, idx, "west", "dvd", 2002)[3].Float(); got != 1.2*11 {
		t.Errorf("existential cv = %v", got)
	}
	// east untouched.
	if got := cell(t, idx, "east", "dvd", 2002)[3].Float(); got != 112 {
		t.Errorf("east must be untouched: %v", got)
	}
}

func TestUpsertCreatesRows(t *testing.T) {
	m := mustModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( UPSERT s['tv', 2000] = s['black-tv',2000] + s['white-tv',2000] )`, nil)
	rows := []types.Row{
		R("west", "black-tv", 2000, 5.0),
		R("west", "white-tv", 2000, 7.0),
		R("east", "black-tv", 2000, 1.0),
		R("east", "white-tv", 2000, 2.0),
	}
	idx := run(t, m, rows, RunOptions{})
	if got := cell(t, idx, "west", "tv", 2000)[3].Float(); got != 12 {
		t.Errorf("upsert west = %v", got)
	}
	if got := cell(t, idx, "east", "tv", 2000)[3].Float(); got != 3 {
		t.Errorf("upsert east = %v", got)
	}
	if len(idx) != 6 {
		t.Errorf("expected 6 rows, got %d", len(idx))
	}
}

func TestUpdateIgnoresMissingCells(t *testing.T) {
	m := mustModel(t, `SELECT t, s FROM f
		SPREADSHEET DBY (t) MEA (s) UPDATE
		( s[1999] = 42 )`, nil)
	out, _, err := m.Run([]types.Row{R(2000, 1.0)}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("UPDATE must not create rows: %d", len(out))
	}
}

func TestDefaultModeIsUpsert(t *testing.T) {
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s) ( s[1999] = 42 )`, nil)
	out, _, err := m.Run([]types.Row{R(2000, 1.0)}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("default UPSERT must create the row: %d rows", len(out))
	}
}

func TestUpsertedRowColumns(t *testing.T) {
	// New rows: PBY from partition, DBY from target, other measures NULL.
	m := mustModel(t, `SELECT r, t, s, c FROM f
		SPREADSHEET PBY(r) DBY (t) MEA (s, c)
		( UPSERT s[2003] = 9 )`, nil)
	idx := run(t, m, []types.Row{R("west", 2000, 1.0, 2.0)}, RunOptions{})
	row := cell(t, idx, "west", 2003)
	if row[2].Float() != 9 || !row[3].IsNull() {
		t.Errorf("upserted row = %v", row)
	}
}

func TestDensificationForIn(t *testing.T) {
	m := mustModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r, p) DBY (t) MEA (s, 0 as x)
		( UPSERT x[FOR t IN (1998, 1999, 2000, 2001)] = 0 )`, nil)
	rows := []types.Row{
		R("west", "dvd", 1998, 10.0, 0),
		R("west", "dvd", 2001, 13.0, 0),
		R("east", "vcr", 1999, 5.0, 0),
	}
	out, _, err := m.Run(rows, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every (r, p) partition must now have all 4 years.
	if len(out) != 8 {
		t.Fatalf("densification rows = %d, want 8", len(out))
	}
	idx := indexRows(m, out)
	gap := cell(t, idx, "west", "dvd", 1999)
	if !gap[3].IsNull() || gap[4].Int() != 0 {
		t.Errorf("gap row = %v (s must stay NULL, x = 0)", gap)
	}
}

func TestIsPresent(t *testing.T) {
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		( UPSERT s[2001] = 5,
		  s[2002] = CASE WHEN s[2001] IS PRESENT THEN 100 ELSE 200 END,
		  s[2003] = CASE WHEN s[1990] IS NOT PRESENT THEN 300 ELSE 400 END )`, nil)
	idx := run(t, m, []types.Row{R(2000, 1.0)}, RunOptions{})
	// s[2001] was upserted, so it was NOT present before execution.
	if got := cell(t, idx, 2002)[1].Float(); got != 200 {
		t.Errorf("IS PRESENT must see pre-execution state: %v", got)
	}
	if got := cell(t, idx, 2003)[1].Float(); got != 300 {
		t.Errorf("IS NOT PRESENT: %v", got)
	}
}

func TestIgnoreNav(t *testing.T) {
	sql := `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s) %s ( s[2001] = s[2000] + s[1999] )`
	// Without IGNORE NAV: missing cell (NULL) + value = NULL.
	m := mustModel(t, fmt.Sprintf(sql, ""), nil)
	idx := run(t, m, []types.Row{R(2000, 7.0)}, RunOptions{})
	if got := cell(t, idx, 2001)[1]; !got.IsNull() {
		t.Errorf("KEEP NAV: %v", got)
	}
	// With IGNORE NAV: NULL treated as 0.
	m = mustModel(t, fmt.Sprintf(sql, "IGNORE NAV"), nil)
	idx = run(t, m, []types.Row{R(2000, 7.0)}, RunOptions{})
	if got := cell(t, idx, 2001)[1].Float(); got != 7 {
		t.Errorf("IGNORE NAV: %v", got)
	}
}

// --- automatic ordering / dependency analysis ---

func TestAutomaticOrderDependencies(t *testing.T) {
	m := mustModel(t, `SELECT p, t, s FROM f SPREADSHEET DBY (p, t) MEA (s)
		(
		  s['dvd',2002] = s['dvd',2000] + s['dvd',2001],
		  s['dvd',2001] = 1000
		)`, nil)
	idx := run(t, m, []types.Row{R("dvd", 2000, 5.0), R("dvd", 2001, 7.0)}, RunOptions{})
	// The second formula must run first: 5 + 1000.
	if got := cell(t, idx, "dvd", 2002)[2].Float(); got != 1005 {
		t.Errorf("automatic order = %v, want 1005", got)
	}
}

func TestGenLevelsScanSharing(t *testing.T) {
	// Paper §4 example: F3 -> F2; F1 is an independent scan. GenLevels must
	// put F3 alone in level 1 and share level 2 between scans F1 and F2.
	m := mustModel(t, `SELECT p, t, s FROM f SPREADSHEET DBY(p,t) MEA(s)
		(
		F1: s['tv', 2000] = sum(s)['tv', 1990<t<2000],
		F2: s['vcr',2000] = sum(s)['vcr', 1995<t<2000],
		F3: s['vcr',1999] = s['vcr',1997] + s['vcr',1998]
		)`, nil)
	if err := m.Analyze(); err != nil {
		t.Fatal(err)
	}
	steps, cyc := m.Levels()
	if len(steps) != 2 {
		t.Fatalf("levels = %v", steps)
	}
	if len(steps[0]) != 1 || steps[0][0] != 2 {
		t.Errorf("level 1 = %v, want [F3]", steps[0])
	}
	if len(steps[1]) != 2 {
		t.Errorf("level 2 = %v, want [F1 F2]", steps[1])
	}
	for _, c := range cyc {
		if c {
			t.Error("no step should be cyclic")
		}
	}
	if m.Cyclic() {
		t.Error("model must be acyclic")
	}
	// And the numbers come out right: F3 computes vcr 1999 before F2 sums it.
	rows := []types.Row{
		R("vcr", 1997, 1.0), R("vcr", 1998, 2.0), R("vcr", 1999, 100.0), R("vcr", 2000, 0.0),
		R("tv", 1995, 10.0), R("tv", 2000, 0.0),
	}
	idx := run(t, m, rows, RunOptions{})
	if got := cell(t, idx, "vcr", 2000)[2].Float(); got != 1+2+3 {
		t.Errorf("F2 = %v, want 6 (uses F3's vcr 1999 = 3)", got)
	}
	if got := cell(t, idx, "tv", 2000)[2].Float(); got != 10 {
		t.Errorf("F1 = %v", got)
	}
}

func TestExistentialOrderByAscDesc(t *testing.T) {
	// Running average over two preceding years: ascending vs descending
	// order gives different results (the paper's motivating case for ORDER
	// BY on formulas).
	sql := `SELECT p, t, s FROM f SPREADSHEET DBY (p, t) MEA (s)
		( s['vcr', t<2002] ORDER BY t %s = avg(s)[cv(p), cv(t)-2<=t<cv(t)] )`
	rows := func() []types.Row {
		return []types.Row{
			R("vcr", 1998, 1.0), R("vcr", 1999, 2.0), R("vcr", 2000, 4.0), R("vcr", 2001, 8.0),
		}
	}
	mAsc := mustModel(t, fmt.Sprintf(sql, "ASC"), nil)
	idxAsc := run(t, mAsc, rows(), RunOptions{})
	mDesc := mustModel(t, fmt.Sprintf(sql, "DESC"), nil)
	idxDesc := run(t, mDesc, rows(), RunOptions{})
	ascV := cell(t, idxAsc, "vcr", 2001)[2].Float()
	descV := cell(t, idxDesc, "vcr", 2001)[2].Float()
	if ascV == descV {
		t.Errorf("ASC and DESC must differ: %v vs %v", ascV, descV)
	}
	// DESC: 2001 computed first from original 1999=2, 2000=4 → 3.
	if descV != 3 {
		t.Errorf("DESC s[2001] = %v, want 3", descV)
	}
	// ASC: 1998 first (avg of 1996,1997 = missing → NULL), then cascade.
	if got := cell(t, idxAsc, "vcr", 1998)[2]; !got.IsNull() {
		t.Errorf("ASC s[1998] = %v, want NULL", got)
	}
}

func TestSlopeOverCells(t *testing.T) {
	// Paper §3 formula F1: slope-scaled forecast.
	m := mustModel(t, `SELECT p, t, s FROM f SPREADSHEET DBY (p, t) MEA (s) UPDATE
		( s['tv',2002] = slope(s,t)['tv',1992<=t<=2001]*s['tv',2001] + s['tv',2001] )`, nil)
	var rows []types.Row
	for ti := 1992; ti <= 2001; ti++ {
		rows = append(rows, R("tv", ti, float64(ti-1990)*2)) // slope exactly 2
	}
	rows = append(rows, R("tv", 2002, 0.0))
	idx := run(t, m, rows, RunOptions{})
	// s[2001] = 22, slope = 2 → 2*22 + 22 = 66.
	if got := cell(t, idx, "tv", 2002)[2].Float(); got != 66 {
		t.Errorf("slope forecast = %v, want 66", got)
	}
}

// --- cyclic execution ---

func TestCyclicConvergence(t *testing.T) {
	// Two formulas referencing each other's cells converge when the values
	// stabilize: s[1] = s[2], s[2] = s[1] with equal initial values.
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s) UPDATE
		( s[1] = s[2], s[2] = s[1] )`, nil)
	if err := m.Analyze(); err != nil {
		t.Fatal(err)
	}
	if !m.Cyclic() {
		t.Fatal("model must be detected as cyclic")
	}
	idx := run(t, m, []types.Row{R(1, 5.0), R(2, 5.0)}, RunOptions{})
	if cell(t, idx, 1)[1].Float() != 5 || cell(t, idx, 2)[1].Float() != 5 {
		t.Error("stable cycle must converge")
	}
}

func TestCyclicDivergenceError(t *testing.T) {
	// s[1] = s[1]/2 without ITERATE: genuinely cyclic, never converges →
	// error after N iterations (paper: "an error is returned to the user").
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s) UPDATE
		( s[1] = s[1]/2 )`, nil)
	_, _, err := m.Run([]types.Row{R(1, 1024.0)}, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "converge") {
		t.Fatalf("expected convergence error, got %v", err)
	}
}

func TestSpuriousCycleConverges(t *testing.T) {
	// Complex predicates can over-estimate the dependency relation; an
	// actually-acyclic spreadsheet must still produce correct results via
	// the Auto-Cyclic algorithm within its N-iteration bound.
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s) UPDATE
		( s[2001] = s[t=2002-2]*2,
		  s[2002] = s[t=2001] + 1 )`, nil)
	// t=2002-2 folds to 2000 statically; force a spurious cycle instead by
	// checking the engine handles the cyclic path even if analysis was
	// exact. Run and verify values regardless of classification.
	idx := run(t, m, []types.Row{R(2000, 3.0), R(2001, 0.0), R(2002, 0.0)}, RunOptions{})
	if got := cell(t, idx, 2001)[1].Float(); got != 6 {
		t.Errorf("s[2001] = %v", got)
	}
	if got := cell(t, idx, 2002)[1].Float(); got != 7 {
		t.Errorf("s[2002] = %v", got)
	}
}

// --- sequential order and iteration ---

func TestSequentialOrder(t *testing.T) {
	// In sequential order the first formula sees the ORIGINAL s[2001].
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s) SEQUENTIAL ORDER
		(
		  s[2002] = s[2000] + s[2001],
		  s[2001] = 1000
		)`, nil)
	idx := run(t, m, []types.Row{R(2000, 5.0), R(2001, 7.0)}, RunOptions{})
	if got := cell(t, idx, 2002)[1].Float(); got != 12 {
		t.Errorf("sequential = %v, want 12 (not 1005)", got)
	}
	if got := cell(t, idx, 2001)[1].Float(); got != 1000 {
		t.Errorf("second formula must still run: %v", got)
	}
}

func TestIterateUntilPrevious(t *testing.T) {
	// Paper §2: halve until the per-iteration change is <= 1, max 10 times.
	m := mustModel(t, `SELECT x, s FROM f SPREADSHEET DBY (x) MEA (s)
		ITERATE (10) UNTIL (PREVIOUS(s[1])-s[1] <= 1)
		( s[1] = s[1]/2 )`, nil)
	idx := run(t, m, []types.Row{R(1, 8.0)}, RunOptions{})
	// 8→4 (Δ4), →2 (Δ2), →1 (Δ1 ≤ 1: stop). Result 1.
	if got := cell(t, idx, 1)[1].Float(); got != 1 {
		t.Errorf("iterate/until = %v, want 1", got)
	}
	// Without UNTIL: exactly 10 halvings.
	m = mustModel(t, `SELECT x, s FROM f SPREADSHEET DBY (x) MEA (s) ITERATE (10)
		( s[1] = s[1]/2 )`, nil)
	idx = run(t, m, []types.Row{R(1, 1024.0)}, RunOptions{})
	if got := cell(t, idx, 1)[1].Float(); got != 1 {
		t.Errorf("iterate(10) = %v, want 1", got)
	}
}

// --- reference spreadsheets ---

// table1Ref is Table 1 of the paper: month → m_yago, m_qago.
func table1Ref() map[string][]types.Row {
	return map[string][]types.Row{
		"prior": {
			R("1999-01", "1998-01", "1998-10"),
			R("1999-02", "1998-02", "1998-11"),
			R("1999-03", "1998-03", "1998-12"),
		},
	}
}

func TestReferenceSheetLookup(t *testing.T) {
	// Query S1: ratio to year-ago and quarter-ago months.
	m := mustModel(t, `SELECT p, m, s, r_yago, r_qago FROM f
		SPREADSHEET
		  REFERENCE prior ON (SELECT m, m_yago, m_qago FROM time_dt)
		    DBY(m) MEA(m_yago, m_qago)
		  PBY(p) DBY (m) MEA (s, r_yago, r_qago)
		RULES UPDATE
		(
		  F1: r_yago[*] = s[cv(m)] / s[m_yago[cv(m)]],
		  F2: r_qago[*] = s[cv(m)] / s[m_qago[cv(m)]]
		)`, table1Ref())
	rows := []types.Row{
		R("dvd", "1999-01", 30.0, nil, nil),
		R("dvd", "1998-01", 10.0, nil, nil),
		R("dvd", "1998-10", 20.0, nil, nil),
	}
	idx := run(t, m, rows, RunOptions{})
	r99 := cell(t, idx, "dvd", "1999-01")
	if r99[3].Float() != 3 {
		t.Errorf("r_yago = %v, want 3", r99[3])
	}
	if r99[4].Float() != 1.5 {
		t.Errorf("r_qago = %v, want 1.5", r99[4])
	}
	// Months with no reference entry (1998-01 itself) divide by a missing
	// cell → NULL.
	r98 := cell(t, idx, "dvd", "1998-01")
	if !r98[3].IsNull() {
		t.Errorf("missing ref lookup must be NULL, got %v", r98[3])
	}
}

func TestReferenceMeasureConflicts(t *testing.T) {
	sc := mustClause(t, `SELECT p, m, s FROM f SPREADSHEET
		REFERENCE a ON (SELECT m, x FROM d1) DBY(m) MEA(x)
		REFERENCE b ON (SELECT m, x FROM d2) DBY(m) MEA(x)
		DBY (m) MEA (s)
		( s[1] = 1 )`)
	ws := types.NewSchemaNames("m", "s")
	refs := refMetaFor(t, sc, nil)
	if _, err := Compile(sc, ws, refs); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("duplicate ref measures must fail: %v", err)
	}
}

// --- analysis: independence, rectangles, pruning ---

func TestIndependentDims(t *testing.T) {
	m := mustModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
		(
		F1: s['dvd',2000] = s['dvd',1999] + s['dvd',1997],
		F2: s['vcr',2000] = s['vcr',1998] + s['vcr',1999]
		)`, nil)
	ind := m.IndependentDims()
	if !ind[0] {
		t.Error("p must be independent")
	}
	if ind[1] {
		t.Error("t must not be independent")
	}
}

func TestFunctionallyIndependentDims(t *testing.T) {
	m := mustModel(t, `SELECT p, m, s, r_yago FROM f
		SPREADSHEET
		  REFERENCE prior ON (SELECT m, m_yago, m_qago FROM time_dt)
		    DBY(m) MEA(m_yago, m_qago)
		  PBY(p) DBY (m) MEA (s, r_yago)
		RULES UPDATE
		( F1: r_yago[*] = s[cv(m)] / s[m_yago[cv(m)]] )`, table1Ref())
	if ind := m.IndependentDims(); ind[0] {
		t.Error("m is not plainly independent (ref lookup)")
	}
	if find := m.FunctionallyIndependentDims(); !find[0] {
		t.Error("m must be functionally independent via the reference sheet")
	}
	refs := m.RefLookups("m")
	if len(refs) != 1 || refs[0].Measure != "m_yago" {
		t.Errorf("RefLookups = %v", refs)
	}
}

func TestSheetRect(t *testing.T) {
	m := mustModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
		(
		F1: s['dvd',2000] = s['dvd',1999] + s['dvd',1997],
		F2: s['vcr',2000] = s['vcr',1998] + s['vcr',1999]
		)`, nil)
	rect := m.SheetRect()
	// p ∈ {dvd, vcr}; t ∈ {2000, 1999, 1997, 1998}.
	if rect[0].All || len(rect[0].Vals) != 2 {
		t.Errorf("p bound = %+v", rect[0])
	}
	if rect[1].All || len(rect[1].Vals) != 4 {
		t.Errorf("t bound = %+v", rect[1])
	}
	if !rangeContains(rect[1], V(1997)) || rangeContains(rect[1], V(1990)) {
		t.Error("t bound contents wrong")
	}
}

func TestPruneFormulas(t *testing.T) {
	// Paper §4: outer filter p IN ('dvd','vcr','video') discards F3 ('tv').
	m := mustModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
		(
		F1: s['dvd',2000] = s['dvd', 1999]*1.2,
		F2: s['vcr',2000] = s['vcr',1998] + s['vcr',1999],
		F3: s['tv', 2000] = avg(s)['tv', 1990<t<2000]
		)`, nil)
	outer := OuterInfo{DimBounds: Rect{
		{Vals: []types.Value{V("dvd"), V("vcr"), V("video")}},
		allBound(),
	}}
	pruned, _ := m.Prune(outer)
	if len(pruned) != 1 || pruned[0] != "f3" {
		t.Fatalf("pruned = %v, want [f3]", pruned)
	}
	if len(m.Rules) != 2 {
		t.Fatalf("rules left = %d", len(m.Rules))
	}
}

func TestPruneKeepsDependedFormulas(t *testing.T) {
	// With F4 depending on F3, F3 must survive even though 'tv' is filtered.
	m := mustModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
		(
		F3: s['tv', 2000] = avg(s)['tv', 1990<t<2000],
		F4: s['video',2000] = s['vcr',2000] + s['tv',2000]
		)`, nil)
	outer := OuterInfo{DimBounds: Rect{
		{Vals: []types.Value{V("dvd"), V("vcr"), V("video")}},
		allBound(),
	}}
	pruned, _ := m.Prune(outer)
	if len(pruned) != 0 {
		t.Fatalf("pruned = %v, want none", pruned)
	}
}

func TestPruneCascades(t *testing.T) {
	// F_a feeds F_b; both outside the filter: pruning F_b exposes F_a.
	m := mustModel(t, `SELECT p, t, s FROM f
		SPREADSHEET DBY (p, t) MEA (s) UPDATE
		(
		FA: s['tv', 1999] = 1,
		FB: s['tv', 2000] = s['tv', 1999] * 2
		)`, nil)
	outer := OuterInfo{DimBounds: Rect{{Vals: []types.Value{V("dvd")}}, allBound()}}
	pruned, _ := m.Prune(outer)
	if len(pruned) != 2 {
		t.Fatalf("pruned = %v, want both", pruned)
	}
}

func TestPruneByUnusedMeasure(t *testing.T) {
	m := mustModel(t, `SELECT p, t, s, c FROM f
		SPREADSHEET DBY (p, t) MEA (s, c) UPDATE
		( F1: c['tv', 2000] = 5, F2: s['tv', 2000] = 6 )`, nil)
	used := map[int]bool{m.MeasureOrdinal("s"): true}
	pruned, _ := m.Prune(OuterInfo{UsedMeasures: used})
	if len(pruned) != 1 || pruned[0] != "f1" {
		t.Fatalf("pruned = %v, want [f1]", pruned)
	}
}

func TestRewriteFormula(t *testing.T) {
	// Paper §4: F1: s[*,2002] = c[cv(p),2002]*2 with outer filter
	// p IN ('dvd','vcr') → left side restricted to those products.
	m := mustModel(t, `SELECT r, p, t, s, c FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s, c) UPDATE
		( F1: s[*, 2002] = c[cv(p), 2002]*2 )`, nil)
	outer := OuterInfo{DimBounds: Rect{
		{Vals: []types.Value{V("dvd"), V("vcr")}},
		allBound(), // t >= 2000 is a range; only finite sets rewrite
	}}
	pruned, rewritten := m.Prune(outer)
	if len(pruned) != 0 || len(rewritten) != 1 {
		t.Fatalf("pruned=%v rewritten=%v", pruned, rewritten)
	}
	// Execute: only dvd and vcr rows of 2002 get updated.
	rows := []types.Row{
		R("west", "dvd", 2002, 0.0, 5.0),
		R("west", "vcr", 2002, 0.0, 6.0),
		R("west", "tv", 2002, 99.0, 7.0),
	}
	idx := run(t, m, rows, RunOptions{})
	if got := cell(t, idx, "west", "dvd", 2002)[3].Float(); got != 10 {
		t.Errorf("dvd = %v", got)
	}
	if got := cell(t, idx, "west", "tv", 2002)[3].Float(); got != 99 {
		t.Errorf("tv must be skipped after rewrite: %v", got)
	}
}

// --- parallel execution ---

func TestParallelMatchesSerial(t *testing.T) {
	m1 := mustModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		(
		  s[*, 2003] = s[cv(p), 2002] * 1.2,
		  UPSERT s['video', 2002] = s['tv',2002] + s['vcr',2002]
		)`, nil)
	serial, _, err := m1.Run(fRows(), RunOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	m2 := mustModel(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		(
		  s[*, 2003] = s[cv(p), 2002] * 1.2,
		  UPSERT s['video', 2002] = s['tv',2002] + s['vcr',2002]
		)`, nil)
	par, _, err := m2.Run(fRows(), RunOptions{Parallel: 4, Buckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(par))
	}
	si, pi := indexRows(m1, serial), indexRows(m2, par)
	for k, sr := range si {
		pr, ok := pi[k]
		if !ok {
			t.Fatalf("parallel missing row %v", sr)
		}
		for c := range sr {
			if !types.Equal(sr[c], pr[c]) {
				t.Fatalf("mismatch at %v: %v vs %v", sr, sr[c], pr[c])
			}
		}
	}
}

func TestPromotedDimTriggerCondition(t *testing.T) {
	// Simulate the optimizer promoting p into the distribution key (S4):
	// working schema PBY(r, p) DBY(p, t) with p duplicated. The trigger
	// condition must stop partition (r, 'dvd') from upserting a 'vcr' row.
	m := mustModel(t, `SELECT r, p2, p, t, s FROM f
		SPREADSHEET PBY(r, p2) DBY (p, t) MEA (s)
		(
		F1: UPSERT s['dvd', 2002] = 1,
		F2: UPSERT s['vcr', 2002] = 2
		)`, nil)
	rows := []types.Row{
		R("west", "dvd", "dvd", 2000, 1.0),
		R("west", "vcr", "vcr", 2000, 2.0),
	}
	out, _, err := m.Run(rows, RunOptions{Promoted: []PromotedDim{{Pby: 1, Dby: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("rows = %d, want 4 (no spurious cross-partition upserts)", len(out))
	}
	for _, r := range out {
		if !types.Equal(r[1], r[2]) {
			t.Errorf("spurious row: %v", r)
		}
	}
}

// --- single-scan optimization ---

func TestSingleScanMatchesPerLevel(t *testing.T) {
	sql := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		(
		F1: s['dvd', 2002] = sum(s)['dvd', t<2002],
		F2: s['vcr', 2002] = avg(s)['vcr', 1998<=t<=2001],
		F3: s['tv', 2003]  = sum(s)['tv', t<2003] + s['dvd', 2002]
		)`
	m1 := mustModel(t, sql, nil)
	if !m1.canSingleScan() {
		t.Fatal("model must qualify for single-scan")
	}
	r1, _, err := m1.Run(fRows(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2 := mustModel(t, sql, nil)
	r2, _, err := m2.Run(fRows(), RunOptions{DisableSingleScan: true})
	if err != nil {
		t.Fatal(err)
	}
	i1, i2 := indexRows(m1, r1), indexRows(m2, r2)
	if len(i1) != len(i2) {
		t.Fatalf("row counts differ")
	}
	for k, a := range i1 {
		b := i2[k]
		for c := range a {
			if !types.Equal(a[c], b[c]) {
				t.Fatalf("single-scan mismatch: %v vs %v", a, b)
			}
		}
	}
}

func TestSingleScanDisqualifiers(t *testing.T) {
	// min/max (no inverse) must disqualify.
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		( s[2002] = max(s)[t<2002] )`, nil)
	if err := m.Analyze(); err != nil {
		t.Fatal(err)
	}
	if m.canSingleScan() {
		t.Error("max must disable single-scan")
	}
	// Existential rules must disqualify.
	m = mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s) UPDATE
		( s[t<2002] = 1 )`, nil)
	if err := m.Analyze(); err != nil {
		t.Fatal(err)
	}
	if m.canSingleScan() {
		t.Error("existential must disable single-scan")
	}
	// But it still runs correctly.
	idx := run(t, m, []types.Row{R(2000, 9.0), R(2005, 9.0)}, RunOptions{})
	if cell(t, idx, 2000)[1].Float() != 1 || cell(t, idx, 2005)[1].Float() != 9 {
		t.Error("existential update wrong")
	}
}

func TestRangeProbeMatchesScan(t *testing.T) {
	// The integer-range unfolding (F1 transformation) must not change
	// results vs a plain scan.
	sql := `SELECT p, t, s FROM f SPREADSHEET DBY (p, t) MEA (s) UPDATE
		( s['tv',2002] = slope(s,t)['tv',1992<=t<=2001]*s['tv',2001] + s['tv',2001],
		  s['dvd',2002] = avg(s)['dvd', 1999<=t<=2001] )`
	var rows []types.Row
	for ti := 1992; ti <= 2002; ti++ {
		rows = append(rows, R("tv", ti, float64(ti%7)+1), R("dvd", ti, float64(ti%5)+1))
	}
	m1 := mustModel(t, sql, nil)
	r1, _, err := m1.Run(rows, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2 := mustModel(t, sql, nil)
	r2, _, err := m2.Run(rows, RunOptions{DisableRangeProbe: true, DisableSingleScan: true})
	if err != nil {
		t.Fatal(err)
	}
	i1, i2 := indexRows(m1, r1), indexRows(m2, r2)
	for k, a := range i1 {
		b := i2[k]
		for c := range a {
			if a[c].IsNull() != b[c].IsNull() || (!a[c].IsNull() && a[c].Float() != b[c].Float()) {
				t.Fatalf("probe/scan mismatch: %v vs %v", a, b)
			}
		}
	}
}
