package core

import (
	"context"
	"fmt"
	"sync"

	"sqlsheet/internal/blockstore"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// PromotedDim records a DBY dimension duplicated into the distribution key
// by the parallel optimizer (query S4 in the paper). Before firing a
// non-existential formula, the engine verifies the trigger condition: the
// formula's target value for the dimension must match the partition's value,
// otherwise the formula belongs to a different PE's data and is skipped.
type PromotedDim struct {
	Pby int // PBY ordinal holding the duplicated value
	Dby int // DBY ordinal of the dimension
}

// RunOptions configures spreadsheet execution.
type RunOptions struct {
	// Ctx, when non-nil, makes evaluation cancellable. The engine polls it
	// between partitions, at every cyclic (runSCC) and sequential/ITERATE
	// iteration, and every few thousand rows of a partition scan, so even a
	// single-partition divergent model unwinds promptly with the context's
	// error. Nil (the embedded default) costs nothing.
	Ctx context.Context
	// Parallel is the number of processing elements (PEs); <=1 is serial.
	Parallel int
	// BuildWorkers is the number of workers for the partition build; <=1
	// builds serially. The structure produced is identical either way.
	BuildWorkers int
	// Buckets overrides the number of first-level hash partitions.
	Buckets int
	// NewStore supplies the per-bucket row store; nil uses in-memory.
	NewStore StoreFactory
	// Subquery executes subqueries inside formula expressions.
	Subquery eval.SubqueryRunner
	// Promoted lists dimensions duplicated into PBY for parallelism.
	Promoted []PromotedDim
	// DisableSingleScan turns off the cross-level single-scan aggregate
	// maintenance optimization (per-level scans instead).
	DisableSingleScan bool
	// DisableRangeProbe turns off unfolding of small integer ranges into
	// point probes (the paper's F1 transformation), forcing scans.
	DisableRangeProbe bool
	// UseBTreeIndex swaps the second-level hash tables for B-trees — the
	// paper's abandoned first access method, kept as an ablation (§7).
	UseBTreeIndex bool
	// DisableCompiledEval routes formula evaluation through the tree-walking
	// interpreter instead of compiled closures (ablation knob).
	DisableCompiledEval bool
	// DisableVectorizedScan keeps aggregate partition scans on the row-at-a-
	// time matcher/closure path instead of the batch columnar scan (see
	// vecscan.go); the executor wires its DisableVectorizedExec here so one
	// ablation flag covers both engines.
	DisableVectorizedScan bool
	// DisableVectorizedRules keeps formula application on the per-cell
	// path instead of the batch rule kernels (see vecrules.go). Results
	// are bit-identical either way; this is the ablation knob.
	DisableVectorizedRules bool
	// VecMinRows overrides the minimum batch size (partition rows for
	// scans and existential rules, enumerated targets for single-cell
	// rules) below which the batch paths stay per row; <=0 uses the
	// default (64). Shared by vecscan.go and vecrules.go.
	VecMinRows int
	// Stats, when non-nil, receives batch-versus-row path counters
	// (atomic; shared safely by parallel PEs).
	Stats *VecStats
	// Cols, when non-nil, supplies columnar vectors for the working
	// relation's key columns; the partition build encodes PBY/DBY keys
	// from them instead of boxed row values (byte-identical either way).
	Cols *ColSource
	// Prebuilt, when non-nil, skips the partition build and evaluates this
	// structure instead. The caller must pass a private copy (see
	// PartitionSet.CloneForReuse); evaluation mutates it and Run closes it.
	Prebuilt *PartitionSet
	// OnBuilt, when non-nil, observes the freshly built structure after the
	// build and before any formula evaluation — the window in which
	// CloneForReuse may capture a pristine copy for the serving-path cache.
	OnBuilt func(*PartitionSet)
	// FastLocal shares rows across the store boundary instead of cloning
	// them on the way in (partition build) and out (result assembly) — see
	// BuildOptions.ShareRows. Only valid with memory-resident stores;
	// callers gate it on the absence of a memory budget. Results are
	// byte-identical either way.
	FastLocal bool
}

// Run executes the compiled spreadsheet over rows in working-schema layout
// and returns the result rows plus access-structure I/O statistics.
func (m *Model) Run(rows []types.Row, opts RunOptions) ([]types.Row, blockstore.Stats, error) {
	if m.levels == nil {
		if err := m.Analyze(); err != nil {
			return nil, blockstore.Stats{}, err
		}
	}
	if err := m.prepareForIn(opts.Subquery); err != nil {
		return nil, blockstore.Stats{}, err
	}
	if m.compiled == nil && !opts.DisableCompiledEval {
		m.buildCompiled()
	}
	if !opts.DisableVectorizedRules {
		m.buildVecRules()
	}
	newStore := opts.NewStore
	if newStore == nil {
		newStore = func() blockstore.Store { return blockstore.NewMem() }
	}
	nb := opts.Buckets
	if nb <= 0 {
		nb = opts.Parallel
		if nb < 1 {
			nb = 1
		}
	}
	ps := opts.Prebuilt
	if ps == nil {
		var err error
		ps, err = BuildPartitionsOpts(m, rows, nb, newStore, BuildOptions{
			UseBTree:  opts.UseBTreeIndex,
			Workers:   opts.BuildWorkers,
			Cols:      opts.Cols,
			ShareRows: opts.FastLocal,
		})
		if err != nil {
			return nil, blockstore.Stats{}, err
		}
		if opts.OnBuilt != nil {
			opts.OnBuilt(ps)
		}
	}
	defer ps.Close()

	if opts.Parallel > 1 && len(ps.buckets) > 1 {
		if err := m.runParallel(ps, &opts); err != nil {
			return nil, ps.Stats(), err
		}
	} else {
		for _, b := range ps.buckets {
			for _, f := range b.frames {
				if err := opts.ctxErr(); err != nil {
					return nil, ps.Stats(), err
				}
				if err := m.evalFrame(f, &opts); err != nil {
					return nil, ps.Stats(), err
				}
			}
		}
	}
	return ps.Rows(m.ReturnUpdated), ps.Stats(), nil
}

// ctxErr polls the run's context (nil-safe); non-nil once cancelled.
func (opts *RunOptions) ctxErr() error {
	if opts.Ctx == nil {
		return nil
	}
	select {
	case <-opts.Ctx.Done():
		return opts.Ctx.Err()
	default:
		return nil
	}
}

// runParallel distributes first-level buckets to PE goroutines coordinated
// by this (query-coordinator) goroutine.
func (m *Model) runParallel(ps *PartitionSet, opts *RunOptions) error {
	dop := opts.Parallel
	if dop > len(ps.buckets) {
		dop = len(ps.buckets)
	}
	work := make(chan *bucket)
	errs := make(chan error, dop)
	// stop unblocks the coordinator's send once every PE could have exited
	// early (first error or cancellation); without it, an error on all PEs —
	// guaranteed under cancellation — would deadlock the distribution loop.
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	for pe := 0; pe < dop; pe++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				for _, f := range b.frames {
					// Cancellation point: one poll per partition frame.
					err := opts.ctxErr()
					if err == nil {
						err = m.evalFrame(f, opts)
					}
					if err != nil {
						errs <- err
						stopOnce.Do(func() { close(stop) })
						return
					}
				}
			}
		}()
	}
	for _, b := range ps.buckets {
		select {
		case work <- b:
		case <-stop:
		}
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// prepareForIn materializes FOR ... IN value lists (literals and
// subqueries) into each qualifier's cache.
func (m *Model) prepareForIn(runner eval.SubqueryRunner) error {
	for _, r := range m.Rules {
		for qi := range r.Quals {
			q := &r.Quals[qi]
			if q.Kind != sqlast.QualForIn || q.forCache != nil {
				continue
			}
			if q.ForSub != nil {
				if runner == nil {
					return fmt.Errorf("%s: FOR %s IN (subquery) requires a subquery runner", r.Label, q.DimName)
				}
				vals, err := runner.Column(q.ForSub, nil)
				if err != nil {
					return fmt.Errorf("%s: FOR %s IN subquery: %v", r.Label, q.DimName, err)
				}
				q.forCache = vals
				continue
			}
			if q.ForFrom != nil {
				vals, err := enumerateFromTo(q, runner)
				if err != nil {
					return fmt.Errorf("%s: FOR %s FROM..TO: %v", r.Label, q.DimName, err)
				}
				q.forCache = vals
				continue
			}
			vals := make([]types.Value, len(q.ForVals))
			for i, e := range q.ForVals {
				v, err := eval.Eval(&eval.Context{Subquery: runner}, e) // interp-ok: one-time FOR-IN list materialization
				if err != nil {
					return fmt.Errorf("%s: FOR %s IN value %d: %v", r.Label, q.DimName, i+1, err)
				}
				vals[i] = v
			}
			q.forCache = vals
		}
	}
	return nil
}

// maxForEnumeration bounds FOR ... FROM ... TO expansions.
const maxForEnumeration = 1 << 20

// enumerateFromTo expands a FOR dim FROM lo TO hi [INCREMENT step]
// qualifier into its value list.
func enumerateFromTo(q *Qual, runner eval.SubqueryRunner) ([]types.Value, error) {
	ctx := &eval.Context{Subquery: runner}
	lo, err := eval.Eval(ctx, q.ForFrom) // interp-ok: one-time FROM..TO bound
	if err != nil {
		return nil, err
	}
	hi, err := eval.Eval(ctx, q.ForTo) // interp-ok: one-time FROM..TO bound
	if err != nil {
		return nil, err
	}
	step := types.NewInt(1)
	if q.ForStep != nil {
		step, err = eval.Eval(ctx, q.ForStep) // interp-ok: one-time FROM..TO bound
		if err != nil {
			return nil, err
		}
	}
	if !lo.IsNumeric() || !hi.IsNumeric() || !step.IsNumeric() {
		return nil, fmt.Errorf("bounds and increment must be numeric")
	}
	stepF := step.Float()
	if stepF == 0 {
		return nil, fmt.Errorf("INCREMENT must be nonzero")
	}
	isInt := lo.K == types.KindInt && hi.K == types.KindInt && step.K == types.KindInt
	var out []types.Value
	if stepF > 0 {
		for v := lo.Float(); v <= hi.Float(); v += stepF {
			if len(out) >= maxForEnumeration {
				return nil, fmt.Errorf("enumeration exceeds %d values", maxForEnumeration)
			}
			out = append(out, numVal(v, isInt))
		}
	} else {
		for v := lo.Float(); v >= hi.Float(); v += stepF {
			if len(out) >= maxForEnumeration {
				return nil, fmt.Errorf("enumeration exceeds %d values", maxForEnumeration)
			}
			out = append(out, numVal(v, isInt))
		}
	}
	return out, nil
}

func numVal(v float64, isInt bool) types.Value {
	if isInt {
		return types.NewInt(int64(v))
	}
	return types.NewFloat(v)
}

// frameEval carries the per-frame evaluation state.
type frameEval struct {
	m    *Model
	f    *Frame
	opts *RunOptions
	bs   *eval.BoundSchema

	// cv values for the formula target currently being evaluated.
	cv []types.Value // indexed by DBY ordinal; nil entry = not bound

	// curAggs maps the CellAgg nodes of the rule under evaluation to their
	// precomputed instances.
	curAggs map[*sqlast.CellAgg]*aggInstance

	// maintained lists instances under inverse maintenance (single-scan
	// mode); nil otherwise.
	maintained []*aggInstance

	// trackRefs enables convergence-flag tracking (Auto-Cyclic).
	trackRefs bool
	gen       int
	changed   bool
	// assigned counts unique cells written in the current iteration.
	assigned map[int64]bool

	// previousVals resolves previous(cell) inside UNTIL conditions.
	previousVals map[*sqlast.Previous]types.Value

	// ticks counts rows seen by the heavy partition scans; every tickMask+1
	// rows the context is polled (see tick).
	ticks int
}

// tickMask sets the per-row cancellation poll interval for partition scans:
// cheap enough to disappear in the scan cost, frequent enough that a large
// partition cancels in well under a millisecond of extra work.
const tickMask = 4095

// tick is called once per scanned row inside partition scans; it polls the
// run's context every tickMask+1 rows.
func (fe *frameEval) tick() error {
	fe.ticks++
	if fe.ticks&tickMask != 0 {
		return nil
	}
	return fe.opts.ctxErr()
}

func (m *Model) newFrameEval(f *Frame, opts *RunOptions) *frameEval {
	return &frameEval{
		m:    m,
		f:    f,
		opts: opts,
		bs:   eval.FromSchema(m.Schema),
		cv:   make([]types.Value, m.NDby),
	}
}

// eval evaluates a formula expression through its compiled closure when the
// registry has one, falling back to the tree-walking interpreter (identical
// semantics) otherwise. The registry is read-only during execution, so PEs
// call this concurrently without locking.
func (fe *frameEval) eval(ctx *eval.Context, e sqlast.Expr) (types.Value, error) {
	if !fe.opts.DisableCompiledEval {
		if c, ok := fe.m.compiled[e]; ok {
			return c.Eval(ctx)
		}
	}
	return eval.Eval(ctx, e) // interp-ok: fallback when compilation is off
}

// evalBool is eval with SQL boolean coercion (NULL counts as false).
func (fe *frameEval) evalBool(ctx *eval.Context, e sqlast.Expr) (bool, error) {
	if !fe.opts.DisableCompiledEval {
		if c, ok := fe.m.compiled[e]; ok {
			return c.EvalBool(ctx)
		}
	}
	return eval.EvalBool(ctx, e) // interp-ok: fallback when compilation is off
}

// evalFrame runs the analysis plan over one spreadsheet partition.
func (m *Model) evalFrame(f *Frame, opts *RunOptions) error {
	fe := m.newFrameEval(f, opts)
	if m.Iterate != nil || m.SeqOrder {
		return fe.runSequential()
	}
	return fe.runAutomatic()
}

// --- evaluation contexts ---

// ctxFor builds an evaluation context for right-side expressions, bound to
// the given row (may be nil: partition constants only).
func (fe *frameEval) ctxFor(row types.Row) *eval.Context {
	nav := types.KeepNav
	if fe.m.IgnoreNav {
		nav = types.IgnoreNav
	}
	binding := &eval.Binding{BS: fe.bs, Row: row}
	if row == nil {
		// Expose PBY values only, padding the rest with NULLs.
		pad := make(types.Row, fe.m.Schema.Len())
		copy(pad, fe.f.pby)
		binding.Row = pad
	}
	ctx := &eval.Context{
		Binding:  binding,
		Nav:      nav,
		Subquery: fe.opts.Subquery,
	}
	ctx.CurrentV = func(dim string) (types.Value, error) {
		if d := fe.m.DimOrdinal(dim); d >= 0 {
			return fe.cv[d], nil
		}
		if p := fe.m.PbyOrdinal(dim); p >= 0 {
			return fe.f.pby[p], nil
		}
		return types.Null, fmt.Errorf("cv(%s): unknown dimension", dim)
	}
	ctx.Cell = func(c *sqlast.CellRef) (types.Value, error) { return fe.evalCellRef(ctx, c) }
	ctx.CellAgg = func(a *sqlast.CellAgg) (types.Value, error) { return fe.evalCellAgg(ctx, a) }
	ctx.Present = func(c *sqlast.CellRef) (bool, error) {
		if c.Sheet != "" || fe.m.MeasureOrdinal(c.Measure) < 0 {
			return false, fmt.Errorf("IS PRESENT requires a main-sheet cell")
		}
		dims, err := fe.pointDims(ctx, c.Quals)
		if err != nil {
			return false, err
		}
		return fe.f.WasPresent(dims), nil
	}
	return ctx
}

// pointDims evaluates single-valued qualifiers into dimension values.
func (fe *frameEval) pointDims(ctx *eval.Context, quals []sqlast.DimQual) ([]types.Value, error) {
	dims := make([]types.Value, len(quals))
	for i, q := range quals {
		if q.Kind != sqlast.QualPoint {
			return nil, fmt.Errorf("cell reference qualifier %d is not single-valued", i+1)
		}
		v, err := fe.eval(ctx, q.Val)
		if err != nil {
			return nil, err
		}
		dims[i] = v
	}
	return dims, nil
}

// evalCellKey evaluates point qualifiers directly into the caller's key
// buffer, avoiding per-probe allocations. Each caller owns its buffer, so
// nested cell references (qualifier expressions containing lookups) cannot
// clobber it.
func (fe *frameEval) evalCellKey(ctx *eval.Context, quals []sqlast.DimQual, buf []byte) ([]byte, error) {
	for i := range quals {
		if quals[i].Kind != sqlast.QualPoint {
			return nil, fmt.Errorf("cell reference qualifier %d is not single-valued", i+1)
		}
		v, err := fe.eval(ctx, quals[i].Val)
		if err != nil {
			return nil, err
		}
		buf = types.AppendKey(buf, v)
	}
	return buf, nil
}

// evalCellRef resolves a point cell reference: a main-sheet probe or a
// reference-sheet lookup.
func (fe *frameEval) evalCellRef(ctx *eval.Context, c *sqlast.CellRef) (types.Value, error) {
	if c.Sheet == "" {
		if mea := fe.m.MeasureOrdinal(c.Measure); mea >= 0 {
			var arr [48]byte
			key, err := fe.evalCellKey(ctx, c.Quals, arr[:0])
			if err != nil {
				return types.Null, err
			}
			pos, ok := fe.f.lookupKey(key)
			if !ok {
				return types.Null, nil
			}
			if fe.trackRefs {
				fe.f.MarkReferenced(fe.gen, pos, mea)
			}
			return fe.f.Row(pos)[mea], nil
		}
	}
	// Reference-sheet lookup.
	rb, ok := fe.m.refMeas[c.Measure]
	if !ok || (c.Sheet != "" && rb.sheet.Name != c.Sheet) {
		if c.Sheet != "" {
			if ref := fe.m.findRef(c.Sheet); ref != nil {
				for i, mn := range ref.Meas {
					if mn == c.Measure {
						rb = refMeaBinding{sheet: ref, mea: len(ref.Dims) + i}
						ok = true
						break
					}
				}
			}
		}
		if !ok {
			return types.Null, fmt.Errorf("unknown measure %q", c.Measure)
		}
	}
	var arr [48]byte
	key, err := fe.evalCellKey(ctx, c.Quals, arr[:0])
	if err != nil {
		return types.Null, err
	}
	row, found := rb.sheet.Data[string(key)]
	if !found {
		return types.Null, nil
	}
	return row[rb.mea], nil
}
