package core

import (
	"fmt"

	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// This file exposes the pieces of the compile-time analysis the query
// optimizer (internal/plan) consumes.

// AllBound returns the unbounded (unknown) bound.
func AllBound() Bound { return allBound() }

// ValueBound returns a finite-set bound.
func ValueBound(vals ...types.Value) Bound { return Bound{Vals: vals} }

// IsAll reports whether the bound is unconstrained.
func (b Bound) IsAll() bool { return b.All }

// FiniteVals returns the bound's value set when it is finite.
func (b Bound) FiniteVals() ([]types.Value, bool) {
	if b.All || b.IsRange {
		return nil, false
	}
	return b.Vals, true
}

// Union hulls two bounds.
func (b Bound) Union(o Bound) Bound { return unionBound(b, o) }

// Intersect conservatively intersects two bounds.
func (b Bound) Intersect(o Bound) Bound { return intersectBound(b, o) }

// Contains reports whether the bound admits v.
func (b Bound) Contains(v types.Value) bool { return rangeContains(b, v) }

// PredBound extracts the bound a predicate imposes on the named DBY
// dimension (All when the predicate is too complex to analyze).
func (m *Model) PredBound(pred sqlast.Expr, dim string) Bound {
	return m.predBound(pred, dim, nil)
}

// RefForMeasure resolves a reference-sheet measure name.
func (m *Model) RefForMeasure(measure string) (*RefMeta, bool) {
	rb, ok := m.refMeas[measure]
	if !ok {
		return nil, false
	}
	return rb.sheet, true
}

// MeasureNames returns the main sheet's measure column names in order.
func (m *Model) MeasureNames() []string {
	out := make([]string, m.NMea)
	for i := 0; i < m.NMea; i++ {
		out[i] = m.Schema.Cols[m.NPby+m.NDby+i].Name
	}
	return out
}

// PbyNames returns the partition column names.
func (m *Model) PbyNames() []string {
	out := make([]string, m.NPby)
	for i := 0; i < m.NPby; i++ {
		out[i] = m.Schema.Cols[i].Name
	}
	return out
}

// DimNames returns the DBY column names.
func (m *Model) DimNames() []string {
	out := make([]string, m.NDby)
	for d := 0; d < m.NDby; d++ {
		out[d] = m.DimName(d)
	}
	return out
}

// UnfoldDim performs the paper's "formula unfolding" transformation for a
// functionally independent dimension: each rule whose left side ranges over
// the dimension is replaced by one specialized rule per outer value, with
// cv(dim) replaced by the value and refmea[cv(dim)] lookups replaced by
// their materialized results. lookup(measure, v) supplies those results.
func (m *Model) UnfoldDim(d int, vals []types.Value, lookup func(measure string, v types.Value) (types.Value, bool)) error {
	dim := m.DimName(d)
	var newRules []*Rule
	var newFormulas []*sqlast.Formula
	for _, r := range m.Rules {
		q := r.Quals[d]
		switch q.Kind {
		case sqlast.QualStar, sqlast.QualPred, sqlast.QualRange:
			// Existential over the unfold dimension: specialize per value.
			for vi, v := range vals {
				if q.Kind != sqlast.QualStar {
					// Keep only values the original qualifier admits.
					if !m.qualBound(&q, nil).Contains(v) {
						continue
					}
				}
				nf, err := specializeFormula(r.Src, d, dim, v, lookup)
				if err != nil {
					return err
				}
				if nf.Label != "" {
					nf.Label = fmt.Sprintf("%s_%d", nf.Label, vi+1)
				}
				newFormulas = append(newFormulas, nf)
			}
		case sqlast.QualPoint:
			// A point rule on the dimension stays; pruning removes it if
			// its value falls outside the outer filter.
			newFormulas = append(newFormulas, r.Src)
		default:
			newFormulas = append(newFormulas, r.Src)
		}
	}
	// Recompile the transformed rule list.
	for i, f := range newFormulas {
		nr, err := m.compileRule(f, i)
		if err != nil {
			return fmt.Errorf("unfold: %v", err)
		}
		newRules = append(newRules, nr)
	}
	m.Rules = newRules
	m.levels = nil
	m.depEdges = nil
	return nil
}

// specializeFormula clones a formula with the unfold dimension pinned to v.
func specializeFormula(f *sqlast.Formula, d int, dim string, v types.Value, lookup func(string, types.Value) (types.Value, bool)) (*sqlast.Formula, error) {
	lit := &sqlast.Literal{Val: v}
	subst := func(e sqlast.Expr) sqlast.Expr {
		switch x := e.(type) {
		case *sqlast.CurrentV:
			if x.Dim == dim {
				return lit
			}
		case *sqlast.CellRef:
			// refmea[cv(dim)] (already substituted to refmea[v]) → value.
			if len(x.Quals) == 1 && x.Quals[0].Kind == sqlast.QualPoint {
				if l, ok := x.Quals[0].Val.(*sqlast.Literal); ok && types.Equal(l.Val, v) {
					if lv, found := lookup(x.Measure, v); found {
						return &sqlast.Literal{Val: lv}
					}
				}
			}
		}
		return e
	}
	// Pin the left-side qualifier.
	lhs := sqlast.Transform(f.LHS, subst).(*sqlast.CellRef)
	lhs.Quals[d] = sqlast.DimQual{Kind: sqlast.QualPoint, Val: lit}
	rhs := sqlast.Transform(f.RHS, subst)
	return &sqlast.Formula{Label: f.Label, Mode: f.Mode, LHS: lhs, RHS: rhs}, nil
}
