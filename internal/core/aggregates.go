package core

import (
	"fmt"

	"sqlsheet/internal/aggs"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// maxRangeProbe bounds unfolding of an integer range into point probes (the
// paper's transformation of F1: "t in (1992,...,2001)" instead of a scan).
const maxRangeProbe = 256

// aggInstance is one aggregate access being computed for one formula target:
// an accumulator, a row matcher over the partition, and the argument
// extractor. Instances either probe (all qualifiers enumerable — resolved
// through the hash access structure) or participate in a partition scan.
type aggInstance struct {
	node *sqlast.CellAgg
	acc  aggs.Agg
	star bool
	args []sqlast.Expr
	// ctx carries the cv() bindings of the owning formula target.
	ctx *eval.Context

	// matchers holds one per-dimension row test (scan mode).
	matchers []func(row types.Row) (bool, error)
	// vq mirrors matchers declaratively (qual kind plus the constants the
	// closures capture) so the batch partition scan can evaluate the same
	// tests over a columnar image; vqOpaque marks a dimension only the
	// closure can test (predicates), keeping the instance on the row scan.
	vq []vecQual
	// lists holds per-dimension candidate values; probe mode requires all.
	lists [][]types.Value
	probe bool

	// meas is the set of measure ordinals the arguments read, used by the
	// single-scan inverse-maintenance optimization.
	meas map[int]bool

	// argBuf/argCtx/argBind are per-instance scratch so the per-row argument
	// extraction in feed/onInsert does not allocate. onWrite, which needs two
	// argument vectors live at once, uses its own buffers instead.
	argBuf  []types.Value
	argCtx  eval.Context
	argBind eval.Binding
}

// buildInstance compiles a CellAgg into an instance under the current
// formula target's context (cv bound).
func (fe *frameEval) buildInstance(ctx *eval.Context, a *sqlast.CellAgg) (*aggInstance, error) {
	acc, err := aggs.New(a.Func, a.Star)
	if err != nil {
		return nil, err
	}
	inst := &aggInstance{node: a, acc: acc, star: a.Star, args: a.Args, ctx: ctx, meas: map[int]bool{}}
	for _, arg := range a.Args {
		for _, c := range sqlast.ColumnRefs(arg) {
			if mi := fe.m.MeasureOrdinal(c.Name); mi >= 0 {
				inst.meas[mi] = true
			}
		}
	}
	m := fe.m
	inst.matchers = make([]func(types.Row) (bool, error), m.NDby)
	inst.vq = make([]vecQual, m.NDby)
	inst.lists = make([][]types.Value, m.NDby)
	allEnumerable := true
	for i := 0; i < m.NDby; i++ {
		q := a.Quals[i]
		col := m.NPby + i
		switch q.Kind {
		case sqlast.QualPoint:
			v, err := fe.eval(ctx, q.Val)
			if err != nil {
				return nil, err
			}
			inst.lists[i] = []types.Value{v}
			inst.vq[i] = vecQual{kind: vqPoint, val: v}
			inst.matchers[i] = func(row types.Row) (bool, error) {
				return types.Equal(row[col], v), nil
			}
		case sqlast.QualStar:
			allEnumerable = false
			inst.vq[i] = vecQual{kind: vqStar}
			inst.matchers[i] = func(types.Row) (bool, error) { return true, nil }
		case sqlast.QualRange:
			lo, err := fe.eval(ctx, q.Lo)
			if err != nil {
				return nil, err
			}
			hi, err := fe.eval(ctx, q.Hi)
			if err != nil {
				return nil, err
			}
			loIncl, hiIncl := q.LoIncl, q.HiIncl
			inst.vq[i] = vecQual{kind: vqRange, lo: lo, hi: hi, loIncl: loIncl, hiIncl: hiIncl}
			inst.matchers[i] = func(row types.Row) (bool, error) {
				v := row[col]
				if v.IsNull() || lo.IsNull() || hi.IsNull() {
					return false, nil
				}
				cl := types.Compare(v, lo)
				if cl < 0 || (cl == 0 && !loIncl) {
					return false, nil
				}
				ch := types.Compare(v, hi)
				if ch > 0 || (ch == 0 && !hiIncl) {
					return false, nil
				}
				return true, nil
			}
			if vals, ok := enumerateRange(lo, hi, loIncl, hiIncl); ok && !fe.opts.DisableRangeProbe {
				inst.lists[i] = vals
			} else {
				allEnumerable = false
			}
		case sqlast.QualPred:
			if vals, ok := fe.enumeratePred(ctx, q.Pred, q.Dim); ok && !fe.opts.DisableRangeProbe {
				inst.lists[i] = vals
			} else {
				allEnumerable = false
			}
			pred := q.Pred
			// The context copy and binding are hoisted out of the per-row
			// matcher: every field but the row binding is fixed once the
			// owning target's cv() values are bound at build time.
			mctx := *ctx
			mbind := eval.Binding{BS: fe.bs}
			mctx.Binding = &mbind
			inst.matchers[i] = func(row types.Row) (bool, error) {
				mbind.Row = row
				return fe.evalBool(&mctx, pred)
			}
		default:
			return nil, fmt.Errorf("unsupported qualifier kind on an aggregate reference")
		}
	}
	inst.probe = allEnumerable
	return inst, nil
}

// enumerateRange expands an integer interval into its members when small.
func enumerateRange(lo, hi types.Value, loIncl, hiIncl bool) ([]types.Value, bool) {
	if lo.K != types.KindInt || hi.K != types.KindInt {
		return nil, false
	}
	a, b := lo.I, hi.I
	if !loIncl {
		a++
	}
	if !hiIncl {
		b--
	}
	if b < a || b-a+1 > maxRangeProbe {
		return nil, false
	}
	vals := make([]types.Value, 0, b-a+1)
	for v := a; v <= b; v++ {
		vals = append(vals, types.NewInt(v))
	}
	return vals, true
}

// enumeratePred extracts a value list from simple membership predicates:
// "dim = e", "dim IN (e1, ...)" and small integer ranges.
func (fe *frameEval) enumeratePred(ctx *eval.Context, pred sqlast.Expr, dim string) ([]types.Value, bool) {
	switch x := pred.(type) {
	case *sqlast.Binary:
		if x.Op != "=" {
			return nil, false
		}
		if c, ok := x.L.(*sqlast.ColumnRef); ok && c.Name == dim && c.Table == "" {
			v, err := fe.eval(ctx, x.R)
			if err != nil {
				return nil, false
			}
			return []types.Value{v}, true
		}
		return nil, false
	case *sqlast.InList:
		if x.Not {
			return nil, false
		}
		c, ok := x.X.(*sqlast.ColumnRef)
		if !ok || c.Name != dim || c.Table != "" {
			return nil, false
		}
		vals := make([]types.Value, 0, len(x.List))
		for _, e := range x.List {
			v, err := fe.eval(ctx, e)
			if err != nil {
				return nil, false
			}
			vals = append(vals, v)
		}
		return vals, true
	case *sqlast.Between:
		if x.Not {
			return nil, false
		}
		c, ok := x.X.(*sqlast.ColumnRef)
		if !ok || c.Name != dim {
			return nil, false
		}
		lo, err1 := fe.eval(ctx, x.Lo)
		hi, err2 := fe.eval(ctx, x.Hi)
		if err1 != nil || err2 != nil {
			return nil, false
		}
		return enumerateRange(lo, hi, true, true)
	}
	return nil, false
}

// match tests a row against all dimension matchers.
func (inst *aggInstance) match(row types.Row) (bool, error) {
	for _, m := range inst.matchers {
		ok, err := m(row)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// argValsInto extracts the aggregate's argument values from a row, appending
// into buf (callers pass scratch they own; accumulators do not retain the
// slice past Add/Remove).
func (inst *aggInstance) argValsInto(buf []types.Value, fe *frameEval, row types.Row) ([]types.Value, error) {
	if inst.star {
		return nil, nil
	}
	inst.argCtx = *inst.ctx
	inst.argBind = eval.Binding{BS: fe.bs, Row: row}
	inst.argCtx.Binding = &inst.argBind
	for _, a := range inst.args {
		v, err := fe.eval(&inst.argCtx, a)
		if err != nil {
			return nil, err
		}
		buf = append(buf, v)
	}
	return buf, nil
}

// feed adds a matching row to the accumulator, marking convergence flags.
func (inst *aggInstance) feed(fe *frameEval, pos int, row types.Row) error {
	vals, err := inst.argValsInto(inst.argBuf[:0], fe, row)
	if err != nil {
		return err
	}
	inst.argBuf = vals[:0]
	inst.acc.Add(vals...)
	if fe.trackRefs {
		if inst.star {
			// count(*) reads row existence; use a slot past the schema so
			// it cannot collide with a real measure ordinal.
			fe.f.MarkReferenced(fe.gen, pos, fe.m.Schema.Len())
		}
		for mi := range inst.meas {
			fe.f.MarkReferenced(fe.gen, pos, mi)
		}
	}
	return nil
}

// runProbe computes a probe-mode instance through the hash access structure.
func (inst *aggInstance) runProbe(fe *frameEval) error {
	dims := make([]types.Value, len(inst.lists))
	var walk func(d int) error
	walk = func(d int) error {
		if d == len(inst.lists) {
			pos, ok := fe.f.Lookup(dims)
			if !ok {
				return nil
			}
			return inst.feed(fe, pos, fe.f.Row(pos))
		}
		for _, v := range inst.lists[d] {
			dims[d] = v
			if err := walk(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0)
}

// invertible reports whether the instance supports inverse maintenance.
func (inst *aggInstance) invertible() bool { return inst.acc.Invertible() }

// onWrite maintains the accumulator when a matching row's measure changes
// (single-scan mode).
func (inst *aggInstance) onWrite(fe *frameEval, row types.Row, mea int, oldV, newV types.Value) error {
	if inst.star || !inst.meas[mea] {
		return nil
	}
	ok, err := inst.match(row)
	if err != nil || !ok {
		return err
	}
	oldRow := row.Clone()
	oldRow[mea] = oldV
	newRow := row.Clone()
	newRow[mea] = newV
	oldArgs, err := inst.argValsInto(nil, fe, oldRow)
	if err != nil {
		return err
	}
	newArgs, err := inst.argValsInto(nil, fe, newRow)
	if err != nil {
		return err
	}
	inst.acc.Remove(oldArgs...)
	inst.acc.Add(newArgs...)
	return nil
}

// onInsert maintains the accumulator when a new row appears.
func (inst *aggInstance) onInsert(fe *frameEval, pos int, row types.Row) error {
	ok, err := inst.match(row)
	if err != nil || !ok {
		return err
	}
	vals, err := inst.argValsInto(inst.argBuf[:0], fe, row)
	if err != nil {
		return err
	}
	inst.argBuf = vals[:0]
	inst.acc.Add(vals...)
	return nil
}
