package core

import (
	"sqlsheet/internal/blockstore"
)

// CloneForReuse returns an independent copy of a pristine — freshly built,
// never evaluated — partition set, or nil when the structure is not
// reusable (spill-backed stores, B-tree indexes). The serving-path cache
// keeps one pristine copy per spreadsheet node and clones it again for each
// execution, so formula evaluation always starts from build state.
//
// The clone shares what evaluation never mutates in place: the row slices
// themselves (every engine write goes through Store.Set with a cloned row),
// each frame's PBY values, and the pre-execution present-key snapshot
// (frame Inserts do not update it by design). Everything evaluation does
// mutate is copied (ids, the DBY hash index, the store's row table) or
// reset (updated marks, convergence flags, key scratch).
func (ps *PartitionSet) CloneForReuse() *PartitionSet {
	cp := &PartitionSet{model: ps.model, buckets: make([]*bucket, len(ps.buckets)), shareRows: ps.shareRows}
	for bi, b := range ps.buckets {
		ms, ok := b.store.(*blockstore.MemStore)
		if !ok {
			return nil
		}
		nb := &bucket{
			store:  ms.CloneShallow(),
			frames: make([]*Frame, len(b.frames)),
			byKey:  make(map[string]*Frame, len(b.byKey)),
		}
		remap := make(map[*Frame]*Frame, len(b.frames))
		for fi, f := range b.frames {
			if f.bidx != nil {
				return nil
			}
			nf := &Frame{
				b:       nb,
				pby:     f.pby,
				ids:     append([]blockstore.RowID(nil), f.ids...),
				index:   make(map[string]int, len(f.index)),
				present: f.present,
			}
			for k, v := range f.index {
				nf.index[k] = v
			}
			nb.frames[fi] = nf
			remap[f] = nf
		}
		for k, f := range b.byKey {
			nb.byKey[k] = remap[f]
		}
		cp.buckets[bi] = nb
	}
	return cp
}

// EstimateBytes approximates the structure's resident size for cache
// budgeting: stored rows plus per-key index overhead.
func (ps *PartitionSet) EstimateBytes() int64 {
	var n int64
	for _, b := range ps.buckets {
		n += 256
		for _, f := range b.frames {
			n += 128
			n += int64(len(f.ids)) * 16
			for k := range f.index {
				n += int64(len(k)) + 48
			}
			for _, id := range f.ids {
				n += blockstore.RowBytes(b.store.Get(id))
			}
		}
	}
	return n
}
