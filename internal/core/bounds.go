package core

import (
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// Bound is the compile-time abstraction of the values a qualifier can take
// along one dimension: everything (All), a finite value set, or an interval.
// It drives the bounding-rectangle analysis of §4: dependency edges, formula
// pruning/rewriting and predicate pushing all compare Bounds. When a
// qualifier is too complex to analyze the Bound degrades to All, which the
// paper notes "may result in over-estimation of the -> relation leading to
// spurious cycles".
type Bound struct {
	All     bool
	Vals    []types.Value // finite set (when !All && !IsRange)
	IsRange bool
	Lo, Hi  types.Value // Null = unbounded on that side
	LoIncl  bool
	HiIncl  bool
}

// Rect is a bounding rectangle: one Bound per DBY dimension.
type Rect []Bound

// allBound is the unknown/unbounded Bound.
func allBound() Bound { return Bound{All: true} }

func valsBound(vs ...types.Value) Bound { return Bound{Vals: vs} }

// staticEval tries to evaluate an expression that involves only literals.
func staticEval(e sqlast.Expr) (types.Value, bool) {
	if e == nil {
		return types.Null, false
	}
	hasRef := false
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		switch n.(type) {
		case *sqlast.ColumnRef, *sqlast.CurrentV, *sqlast.CellRef, *sqlast.CellAgg,
			*sqlast.ScalarSubquery, *sqlast.InSubquery, *sqlast.Exists, *sqlast.Previous, *sqlast.Present:
			hasRef = true
		}
		return !hasRef
	})
	if hasRef {
		return types.Null, false
	}
	v, err := eval.Eval(&eval.Context{}, e) // interp-ok: one-time analysis of constant bounds
	if err != nil {
		return types.Null, false
	}
	return v, true
}

// cvShift recognizes cv(dim), cv(dim)+k and cv(dim)-k and returns the
// dimension and the integer shift.
func cvShift(e sqlast.Expr) (dim string, shift int64, ok bool) {
	switch x := e.(type) {
	case *sqlast.CurrentV:
		return x.Dim, 0, true
	case *sqlast.Binary:
		if x.Op != "+" && x.Op != "-" {
			return "", 0, false
		}
		cv, isCv := x.L.(*sqlast.CurrentV)
		if !isCv {
			return "", 0, false
		}
		k, isLit := staticEval(x.R)
		if !isLit || k.K != types.KindInt {
			return "", 0, false
		}
		if x.Op == "-" {
			return cv.Dim, -k.I, true
		}
		return cv.Dim, k.I, true
	}
	return "", 0, false
}

// shiftBound offsets an integer-valued bound by k. Non-integer values make
// the result All.
func shiftBound(b Bound, k int64) Bound {
	if b.All {
		return b
	}
	if b.IsRange {
		out := b
		for _, v := range []*types.Value{&out.Lo, &out.Hi} {
			if v.IsNull() {
				continue
			}
			if v.K != types.KindInt {
				return allBound()
			}
			*v = types.NewInt(v.I + k)
		}
		return out
	}
	out := Bound{Vals: make([]types.Value, len(b.Vals))}
	for i, v := range b.Vals {
		if v.K != types.KindInt {
			return allBound()
		}
		out.Vals[i] = types.NewInt(v.I + k)
	}
	return out
}

// qualBound computes the compile-time bound of a qualifier. lhs, when
// non-nil, provides the left-side rectangle used to resolve cv() references
// (the right side of a formula moves within the left side's rectangle).
func (m *Model) qualBound(q *Qual, lhs Rect) Bound {
	switch q.Kind {
	case sqlast.QualStar:
		return allBound()
	case sqlast.QualPoint:
		if v, ok := staticEval(q.Val); ok {
			return valsBound(v)
		}
		if dim, k, ok := cvShift(q.Val); ok && lhs != nil {
			if d := m.DimOrdinal(dim); d >= 0 {
				if k == 0 {
					return lhs[d]
				}
				return shiftBound(lhs[d], k)
			}
		}
		return allBound()
	case sqlast.QualPred:
		return m.predBound(q.Pred, q.DimName, lhs)
	case sqlast.QualRange:
		lo, hi := allBound(), allBound()
		if v, ok := staticEval(q.Lo); ok {
			lo = valsBound(v)
		} else if dim, k, ok := cvShift(q.Lo); ok && lhs != nil {
			if d := m.DimOrdinal(dim); d >= 0 {
				lo = shiftBound(lhs[d], k)
			}
		}
		if v, ok := staticEval(q.Hi); ok {
			hi = valsBound(v)
		} else if dim, k, ok := cvShift(q.Hi); ok && lhs != nil {
			if d := m.DimOrdinal(dim); d >= 0 {
				hi = shiftBound(lhs[d], k)
			}
		}
		loV, okLo := boundMin(lo)
		hiV, okHi := boundMax(hi)
		if !okLo && !okHi {
			return allBound()
		}
		out := Bound{IsRange: true, LoIncl: q.LoIncl, HiIncl: q.HiIncl}
		if okLo {
			out.Lo = loV
		}
		if okHi {
			out.Hi = hiV
		}
		return out
	case sqlast.QualForIn:
		if len(q.ForVals) > 0 {
			var vs []types.Value
			for _, e := range q.ForVals {
				v, ok := staticEval(e)
				if !ok {
					return allBound()
				}
				vs = append(vs, v)
			}
			return Bound{Vals: vs}
		}
		if q.ForFrom != nil {
			lo, okLo := staticEval(q.ForFrom)
			hi, okHi := staticEval(q.ForTo)
			if okLo && okHi {
				if types.Compare(lo, hi) > 0 {
					lo, hi = hi, lo // negative increment walks downward
				}
				return Bound{IsRange: true, Lo: lo, Hi: hi, LoIncl: true, HiIncl: true}
			}
		}
		return allBound() // subquery values unknown until run time
	}
	return allBound()
}

// boundMin returns the smallest value a bound can take, if known.
func boundMin(b Bound) (types.Value, bool) {
	if b.All {
		return types.Null, false
	}
	if b.IsRange {
		if b.Lo.IsNull() {
			return types.Null, false
		}
		return b.Lo, true
	}
	if len(b.Vals) == 0 {
		return types.Null, false
	}
	best := b.Vals[0]
	for _, v := range b.Vals[1:] {
		if types.Compare(v, best) < 0 {
			best = v
		}
	}
	return best, true
}

func boundMax(b Bound) (types.Value, bool) {
	if b.All {
		return types.Null, false
	}
	if b.IsRange {
		if b.Hi.IsNull() {
			return types.Null, false
		}
		return b.Hi, true
	}
	if len(b.Vals) == 0 {
		return types.Null, false
	}
	best := b.Vals[0]
	for _, v := range b.Vals[1:] {
		if types.Compare(v, best) > 0 {
			best = v
		}
	}
	return best, true
}

// predBound extracts a bound from a boolean qualifier over dim.
func (m *Model) predBound(pred sqlast.Expr, dim string, lhs Rect) Bound {
	switch x := pred.(type) {
	case *sqlast.Binary:
		if x.Op == "AND" {
			return intersectBound(m.predBound(x.L, dim, lhs), m.predBound(x.R, dim, lhs))
		}
		if x.Op == "OR" {
			return unionBound(m.predBound(x.L, dim, lhs), m.predBound(x.R, dim, lhs))
		}
		// dim <op> expr or expr <op> dim.
		l, isColL := x.L.(*sqlast.ColumnRef)
		r, isColR := x.R.(*sqlast.ColumnRef)
		var op string
		var valExpr sqlast.Expr
		switch {
		case isColL && l.Name == dim && l.Table == "":
			op, valExpr = x.Op, x.R
		case isColR && r.Name == dim && r.Table == "":
			op, valExpr = flipOp(x.Op), x.L
		default:
			return allBound()
		}
		v, ok := staticEval(valExpr)
		if !ok {
			if d, k, okCv := cvShift(valExpr); okCv && lhs != nil && op == "=" {
				if di := m.DimOrdinal(d); di >= 0 {
					return shiftBound(lhs[di], k)
				}
			}
			return allBound()
		}
		switch op {
		case "=":
			return valsBound(v)
		case "<":
			return Bound{IsRange: true, Hi: v}
		case "<=":
			return Bound{IsRange: true, Hi: v, HiIncl: true}
		case ">":
			return Bound{IsRange: true, Lo: v}
		case ">=":
			return Bound{IsRange: true, Lo: v, LoIncl: true}
		}
		return allBound() // <> and friends
	case *sqlast.InList:
		if x.Not {
			return allBound()
		}
		c, ok := x.X.(*sqlast.ColumnRef)
		if !ok || c.Name != dim {
			return allBound()
		}
		var vs []types.Value
		for _, e := range x.List {
			v, ok := staticEval(e)
			if !ok {
				return allBound()
			}
			vs = append(vs, v)
		}
		return Bound{Vals: vs}
	case *sqlast.Between:
		if x.Not {
			return allBound()
		}
		c, ok := x.X.(*sqlast.ColumnRef)
		if !ok || c.Name != dim {
			return allBound()
		}
		lo, okLo := staticEval(x.Lo)
		hi, okHi := staticEval(x.Hi)
		if !okLo || !okHi {
			return allBound()
		}
		return Bound{IsRange: true, Lo: lo, Hi: hi, LoIncl: true, HiIncl: true}
	}
	return allBound()
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// intersectBound conservatively intersects two bounds (may over-approximate).
func intersectBound(a, b Bound) Bound {
	if a.All {
		return b
	}
	if b.All {
		return a
	}
	if !a.IsRange && !b.IsRange {
		var vs []types.Value
		for _, v := range a.Vals {
			for _, w := range b.Vals {
				if types.Equal(v, w) {
					vs = append(vs, v)
					break
				}
			}
		}
		return Bound{Vals: vs}
	}
	if !a.IsRange {
		return filterVals(a, b)
	}
	if !b.IsRange {
		return filterVals(b, a)
	}
	out := Bound{IsRange: true}
	out.Lo, out.LoIncl = maxEdge(a.Lo, a.LoIncl, b.Lo, b.LoIncl, true)
	out.Hi, out.HiIncl = maxEdge(a.Hi, a.HiIncl, b.Hi, b.HiIncl, false)
	return out
}

// filterVals keeps the values of vals that fall inside rng.
func filterVals(vals, rng Bound) Bound {
	var vs []types.Value
	for _, v := range vals.Vals {
		if rangeContains(rng, v) {
			vs = append(vs, v)
		}
	}
	return Bound{Vals: vs}
}

// maxEdge picks the tighter of two interval edges. lower selects the
// lower-edge rule (tighter = larger) vs the upper-edge rule (tighter =
// smaller). A Null edge is unbounded.
func maxEdge(a types.Value, aIncl bool, b types.Value, bIncl bool, lower bool) (types.Value, bool) {
	if a.IsNull() {
		return b, bIncl
	}
	if b.IsNull() {
		return a, aIncl
	}
	c := types.Compare(a, b)
	if c == 0 {
		return a, aIncl && bIncl
	}
	pickA := c > 0 == lower
	if pickA {
		return a, aIncl
	}
	return b, bIncl
}

// unionBound hulls two bounds.
func unionBound(a, b Bound) Bound {
	if a.All || b.All {
		return allBound()
	}
	if !a.IsRange && !b.IsRange {
		out := Bound{Vals: append([]types.Value(nil), a.Vals...)}
		for _, v := range b.Vals {
			dup := false
			for _, w := range out.Vals {
				if types.Equal(v, w) {
					dup = true
					break
				}
			}
			if !dup {
				out.Vals = append(out.Vals, v)
			}
		}
		return out
	}
	// Mixed or range/range: take the covering interval. An endpoint of the
	// hull is inclusive iff at least one operand attains it inclusively
	// (a finite value set always attains its members).
	lo1, okLo1 := boundMin(a)
	lo2, okLo2 := boundMin(b)
	hi1, okHi1 := boundMax(a)
	hi2, okHi2 := boundMax(b)
	out := Bound{IsRange: true}
	if okLo1 && okLo2 {
		if types.Compare(lo1, lo2) <= 0 {
			out.Lo = lo1
		} else {
			out.Lo = lo2
		}
		out.LoIncl = attainsEdge(a, out.Lo) || attainsEdge(b, out.Lo)
	}
	if okHi1 && okHi2 {
		if types.Compare(hi1, hi2) >= 0 {
			out.Hi = hi1
		} else {
			out.Hi = hi2
		}
		out.HiIncl = attainsEdge(a, out.Hi) || attainsEdge(b, out.Hi)
	}
	return out
}

// attainsEdge reports whether bound b actually contains the value v at an
// interval edge (value sets always do when they hold the member; ranges
// only when the matching side is inclusive).
func attainsEdge(b Bound, v types.Value) bool {
	if b.All {
		return true
	}
	if !b.IsRange {
		for _, w := range b.Vals {
			if types.Equal(v, w) {
				return true
			}
		}
		return false
	}
	if !b.Lo.IsNull() && types.Equal(b.Lo, v) {
		return b.LoIncl
	}
	if !b.Hi.IsNull() && types.Equal(b.Hi, v) {
		return b.HiIncl
	}
	// Interior values of a range are always attained.
	return rangeContains(b, v)
}

// rangeContains reports whether interval-bound b contains v.
func rangeContains(b Bound, v types.Value) bool {
	if b.All {
		return true
	}
	if !b.IsRange {
		for _, w := range b.Vals {
			if types.Equal(v, w) {
				return true
			}
		}
		return false
	}
	if !b.Lo.IsNull() {
		c := types.Compare(v, b.Lo)
		if c < 0 || (c == 0 && !b.LoIncl) {
			return false
		}
	}
	if !b.Hi.IsNull() {
		c := types.Compare(v, b.Hi)
		if c > 0 || (c == 0 && !b.HiIncl) {
			return false
		}
	}
	return true
}

// boundsIntersect reports whether two bounds may share a value.
// Unknown bounds intersect everything (conservative).
func boundsIntersect(a, b Bound) bool {
	if a.All || b.All {
		return true
	}
	if !a.IsRange && !b.IsRange {
		for _, v := range a.Vals {
			for _, w := range b.Vals {
				if types.Equal(v, w) {
					return true
				}
			}
		}
		return false
	}
	if !a.IsRange {
		for _, v := range a.Vals {
			if rangeContains(b, v) {
				return true
			}
		}
		return false
	}
	if !b.IsRange {
		for _, v := range b.Vals {
			if rangeContains(a, v) {
				return true
			}
		}
		return false
	}
	// range vs range: disjoint iff one ends before the other starts.
	if !a.Hi.IsNull() && !b.Lo.IsNull() {
		c := types.Compare(a.Hi, b.Lo)
		if c < 0 || (c == 0 && !(a.HiIncl && b.LoIncl)) {
			return false
		}
	}
	if !b.Hi.IsNull() && !a.Lo.IsNull() {
		c := types.Compare(b.Hi, a.Lo)
		if c < 0 || (c == 0 && !(b.HiIncl && a.LoIncl)) {
			return false
		}
	}
	return true
}

// rectsIntersect tests whether two rectangles can share a cell. Empty or
// nil rectangles intersect everything (conservative for unknown accesses).
func rectsIntersect(a, b Rect) bool {
	if a == nil || b == nil {
		return true
	}
	for d := range a {
		if !boundsIntersect(a[d], b[d]) {
			return false
		}
	}
	return true
}

// lhsRect computes L(F): the rectangle of cells a rule writes.
func (m *Model) lhsRect(r *Rule) Rect {
	rect := make(Rect, m.NDby)
	for i := range r.Quals {
		rect[i] = m.qualBound(&r.Quals[i], nil)
	}
	return rect
}

// refRect computes the rectangle of a right-side reference, resolving cv()
// against the rule's left-side rectangle.
func (m *Model) refRect(qs []sqlast.DimQual, r *Rule) Rect {
	lhs := r.lhsRect
	if lhs == nil {
		// lhsRect not yet assigned during compileRule; compute on demand.
		lhs = m.lhsRect(r)
	}
	if len(qs) != m.NDby {
		return nil
	}
	rect := make(Rect, m.NDby)
	for i := range qs {
		q := Qual{Kind: qs[i].Kind, Dim: i, DimName: m.DimName(i),
			Val: qs[i].Val, Pred: qs[i].Pred, Lo: qs[i].Lo, Hi: qs[i].Hi,
			LoIncl: qs[i].LoIncl, HiIncl: qs[i].HiIncl, ForVals: qs[i].ForVals, ForSub: qs[i].ForSub}
		rect[i] = m.qualBound(&q, lhs)
	}
	return rect
}

// SheetRect returns the bounding rectangle of the whole spreadsheet: the
// union over every rule of the cells it writes and reads. It is the basis
// of DBY predicate pushing ("a bounding rectangle for the entire spreadsheet
// is obtained ... which is a union of bounding rectangles for each formula").
func (m *Model) SheetRect() Rect {
	out := make(Rect, m.NDby)
	for d := range out {
		out[d] = Bound{Vals: nil} // empty
	}
	first := true
	merge := func(r Rect) {
		if r == nil {
			for d := range out {
				out[d] = allBound()
			}
			return
		}
		if first {
			copy(out, r)
			first = false
			return
		}
		for d := range out {
			out[d] = unionBound(out[d], r[d])
		}
	}
	for _, rule := range m.Rules {
		merge(rule.lhsRect)
		for _, a := range rule.reads {
			if a.refIdx >= 0 {
				continue
			}
			merge(a.rect)
		}
	}
	if first {
		for d := range out {
			out[d] = allBound()
		}
	}
	return out
}

// BoundPredicate renders a bound as a SQL predicate over col, or nil when
// the bound is unbounded (All).
func BoundPredicate(col string, b Bound) sqlast.Expr {
	if b.All {
		return nil
	}
	cref := &sqlast.ColumnRef{Name: col}
	if !b.IsRange {
		if len(b.Vals) == 0 {
			return &sqlast.Literal{Val: types.NewBool(false)}
		}
		if len(b.Vals) == 1 {
			return &sqlast.Binary{Op: "=", L: cref, R: &sqlast.Literal{Val: b.Vals[0]}}
		}
		list := make([]sqlast.Expr, len(b.Vals))
		for i, v := range b.Vals {
			list[i] = &sqlast.Literal{Val: v}
		}
		return &sqlast.InList{X: cref, List: list}
	}
	var parts []sqlast.Expr
	if !b.Lo.IsNull() {
		op := ">"
		if b.LoIncl {
			op = ">="
		}
		parts = append(parts, &sqlast.Binary{Op: op, L: cref, R: &sqlast.Literal{Val: b.Lo}})
	}
	if !b.Hi.IsNull() {
		op := "<"
		if b.HiIncl {
			op = "<="
		}
		parts = append(parts, &sqlast.Binary{Op: op, L: cref, R: &sqlast.Literal{Val: b.Hi}})
	}
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	}
	return &sqlast.Binary{Op: "AND", L: parts[0], R: parts[1]}
}
