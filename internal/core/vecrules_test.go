package core

import (
	"math"
	"testing"

	"sqlsheet/internal/types"
)

// vecGridSQL is the shared working schema for the batch-rule tests: two
// partitions of 4 products x 30 years with a populated measure (s), a
// zero-filled target (u) and an all-NULL measure (z).
const vecGridSQL = `SELECT r, p, t, s, u, z FROM f
	SPREADSHEET PBY (r) DBY (p, t) MEA (s, u, z) `

func vecGridRows() []types.Row {
	var rows []types.Row
	for _, r := range []string{"east", "west"} {
		for pi, p := range []string{"tv", "vcr", "dvd", "amp"} {
			for t := 1980; t <= 2009; t++ {
				s := float64(t-1979)*1.5 + float64(pi)*7.25
				rows = append(rows, R(r, p, t, s, 0.0, nil))
			}
		}
	}
	return rows
}

// sameCells requires bit-identical results from the two paths (NaN-safe:
// floats compare by bits, not ==).
func sameCells(t *testing.T, got, want map[string]types.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count: batch=%d row-path=%d", len(got), len(want))
	}
	for k, g := range got {
		w, ok := want[k]
		if !ok {
			t.Fatalf("batch produced extra key %q", k)
		}
		if len(g) != len(w) {
			t.Fatalf("key %q: width %d vs %d", k, len(g), len(w))
		}
		for i := range g {
			if g[i].K != w[i].K || g[i].I != w[i].I || g[i].S != w[i].S ||
				math.Float64bits(g[i].F) != math.Float64bits(w[i].F) {
				t.Fatalf("key %q col %d: batch=%v row-path=%v", k, i, g[i], w[i])
			}
		}
	}
}

// TestVectorizedRulesMatchRowPath drives each rule shape through the batch
// path (cutoff forced to 1) and the per-cell path, requiring bit-identical
// frames. Cases marked batch=true must actually take the batch path at least
// once; batch=false cases document fallbacks that must stay on the row path.
func TestVectorizedRulesMatchRowPath(t *testing.T) {
	cases := []struct {
		name  string
		rules string
		batch bool
	}{
		{"existential-update",
			`( UPDATE u[*, *] = s[cv(p), cv(t)] * 0.5 + s[cv(p), cv(t) - 1] )`, true},
		{"existential-range",
			`( UPDATE u['dvd', 1990 <= t <= 2005] = s[cv(p), cv(t)] + 100 )`, true},
		{"existential-pred-quals",
			`( UPDATE u[p IN ('tv','vcr'), t > 1990] = s[cv(p), cv(t)] / 2 - 1 )`, true},
		{"existential-agg",
			`( UPDATE u['tv', t > 2000] = s[cv(p), cv(t)] - min(s)['tv', 1980 <= t <= 1999] )`, true},
		{"all-null-read",
			`( UPDATE u[*, *] = z[cv(p), cv(t)] )`, true},
		{"ls-for-update",
			`( UPDATE u[FOR p IN ('tv','vcr','dvd','amp'), FOR t FROM 1980 TO 2009] = s[cv(p), cv(t)] * 1.01 + 1 )`, true},
		{"ls-for-upsert",
			`( UPSERT u[FOR p IN ('tv','vcr'), FOR t FROM 2010 TO 2030] = s[cv(p), cv(t) - 30] * 2 )`, true},
		{"ls-agg-rhs",
			`( UPDATE u['tv', 2005] = min(s)['tv', 1992 <= t <= 2001] + s['tv', 2004] )`, true},
		{"ls-agg-maintained",
			`( UPDATE u['tv', 2005] = avg(s)['tv', 1992 <= t <= 2001] + s['tv', 2004] )`, false},
		{"cv-agg-fallback",
			`( UPDATE u[*, *] = avg(s)[cv(p), 1990 <= t <= 1999] )`, false},
		{"cyclic-fallback",
			`( UPDATE s[*, t > 1985] = s[cv(p), cv(t) - 1] * 1.1 )`, false},
		{"self-read-fallback",
			`( UPDATE s['tv', 2005] = s['tv', 1980] * 2 )`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stats := &VecStats{}
			mb := mustModel(t, vecGridSQL+tc.rules, nil)
			batch := run(t, mb, vecGridRows(), RunOptions{VecMinRows: 1, Stats: stats})
			mr := mustModel(t, vecGridSQL+tc.rules, nil)
			rowp := run(t, mr, vecGridRows(), RunOptions{DisableVectorizedRules: true})
			sameCells(t, batch, rowp)
			if tc.batch && stats.RuleBatch.Load() == 0 {
				t.Fatalf("expected batch rule applications, stats=%+v notes=%v",
					stats, mb.RuleVecNotes(false))
			}
			if !tc.batch && stats.RuleBatch.Load() != 0 {
				t.Fatalf("expected row-path fallback, got %d batch applications",
					stats.RuleBatch.Load())
			}
		})
	}
}

// TestVectorizedRulesErrorParity checks that a batch-stage runtime error
// (division by zero) falls back to the row path, which raises the same error
// the interpreter always raised — no writes are lost or doubled before it.
func TestVectorizedRulesErrorParity(t *testing.T) {
	const rules = `( UPDATE u[*, *] = s[cv(p), cv(t)] / (s[cv(p), cv(t)] - s[cv(p), cv(t)]) )`
	mb := mustModel(t, vecGridSQL+rules, nil)
	_, _, errB := mb.Run(vecGridRows(), RunOptions{VecMinRows: 1})
	mr := mustModel(t, vecGridSQL+rules, nil)
	_, _, errR := mr.Run(vecGridRows(), RunOptions{DisableVectorizedRules: true})
	if errB == nil || errR == nil {
		t.Fatalf("expected division-by-zero on both paths, batch=%v row=%v", errB, errR)
	}
	if errB.Error() != errR.Error() {
		t.Fatalf("error text diverged:\n  batch: %v\n  row:   %v", errB, errR)
	}
}

// TestVecMinRowsCutoff pins the VecMinRows knob: partitions below the cutoff
// stay on the per-cell path, partitions at or above it take the batch path,
// and both produce identical frames.
func TestVecMinRowsCutoff(t *testing.T) {
	const rules = `( UPDATE u[*, *] = s[cv(p), cv(t)] * 2 + 1 )`
	// Each partition holds 120 rows.
	small := &VecStats{}
	ms := mustModel(t, vecGridSQL+rules, nil)
	under := run(t, ms, vecGridRows(), RunOptions{VecMinRows: 121, Stats: small})
	if small.RuleBatch.Load() != 0 || small.RuleRow.Load() == 0 {
		t.Fatalf("cutoff 121 over 120-row partitions: stats=%+v", small)
	}
	big := &VecStats{}
	mbig := mustModel(t, vecGridSQL+rules, nil)
	over := run(t, mbig, vecGridRows(), RunOptions{VecMinRows: 120, Stats: big})
	if big.RuleRow.Load() != 0 || big.RuleBatch.Load() == 0 {
		t.Fatalf("cutoff 120 over 120-row partitions: stats=%+v", big)
	}
	sameCells(t, over, under)
}

// TestRuleVecNotes pins the static per-rule EXPLAIN notes.
func TestRuleVecNotes(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		want []string
	}{
		{"yes",
			vecGridSQL + `( UPDATE u[*, *] = s[cv(p), cv(t)] * 0.5 )`,
			[]string{"yes"}},
		{"iterate",
			`SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s) ITERATE (3)
				( s[1980] = s[1980] / 2 )`,
			[]string{"no(iterate)"}},
		{"cv-qualifier",
			vecGridSQL + `( UPDATE u[*, *] = avg(s)[cv(p), 1990 <= t <= 1999] )`,
			[]string{"no(cv-qualifier)"}},
		{"cyclic",
			vecGridSQL + `( UPDATE s[*, t > 1985] = s[cv(p), cv(t) - 1] )`,
			[]string{"no(cyclic)"}},
		{"self-read",
			vecGridSQL + `( UPDATE s['tv', 2005] = s['tv', 1980] * 2 )`,
			[]string{"no(self-read)"}},
		{"unsupported-expr",
			vecGridSQL + `( UPDATE u['tv', 2005] = CASE WHEN s['tv', 2004] > 1 THEN 1 ELSE 2 END )`,
			[]string{"no(unsupported-expr)"}},
		{"mixed",
			vecGridSQL + `( UPDATE u[*, *] = s[cv(p), cv(t)] * 0.5,
				UPDATE s['tv', 2005] = s['tv', 1980] * 2 )`,
			[]string{"yes", "no(self-read)"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := mustModel(t, tc.sql, nil)
			got := m.RuleVecNotes(false)
			if len(got) != len(tc.want) {
				t.Fatalf("notes = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("note[%d] = %q, want %q (all: %v)", i, got[i], tc.want[i], got)
				}
			}
			// The disabled flag masks every would-be batch rule.
			for i, n := range m.RuleVecNotes(true) {
				if tc.want[i] == "yes" && n != "no(disabled)" {
					t.Fatalf("disabled note[%d] = %q, want no(disabled)", i, n)
				}
				if tc.want[i] != "yes" && n != tc.want[i] {
					t.Fatalf("disabled note[%d] = %q, want %q", i, n, tc.want[i])
				}
			}
		})
	}
}
