package core

import (
	"strings"
	"testing"

	"sqlsheet/internal/types"
)

func TestForFromToIncrement(t *testing.T) {
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		( UPSERT s[FOR t FROM 2000 TO 2004 INCREMENT 2] = 7 )`, nil)
	out, _, err := m.Run([]types.Row{R(1999, 1.0)}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 { // 1999 + {2000, 2002, 2004}
		t.Fatalf("rows = %d: %v", len(out), out)
	}
	idx := indexRows(m, out)
	for _, year := range []int{2000, 2002, 2004} {
		if got := cell(t, idx, year)[1].Float(); got != 7 {
			t.Errorf("s[%d] = %v", year, got)
		}
	}
	if _, ok := idx[keyOf(R(2001))]; ok {
		t.Error("2001 must not exist (increment 2)")
	}
}

func TestForFromToDefaultsAndDescending(t *testing.T) {
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		( UPSERT s[FOR t FROM 3 TO 1 INCREMENT -1] = 1 )`, nil)
	out, _, err := m.Run([]types.Row{R(0, 0.0)}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 { // seed row + {3, 2, 1}
		t.Fatalf("rows = %d", len(out))
	}
	m = mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		( UPSERT s[FOR t FROM 1 TO 3] = 1 )`, nil)
	out, _, err = m.Run([]types.Row{R(0, 0.0)}, RunOptions{})
	if err != nil || len(out) != 4 {
		t.Fatalf("default increment: %d rows, %v", len(out), err)
	}
	// Zero increment errors.
	m = mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		( UPSERT s[FOR t FROM 1 TO 3 INCREMENT 0] = 1 )`, nil)
	if _, _, err := m.Run([]types.Row{R(0, 0.0)}, RunOptions{}); err == nil || !strings.Contains(err.Error(), "INCREMENT") {
		t.Fatalf("zero increment: %v", err)
	}
}

func TestReturnUpdatedRows(t *testing.T) {
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET RETURN UPDATED ROWS DBY (t) MEA (s)
		( s[2002] = s[2001] * 2,
		  UPSERT s[2003] = 1 )`, nil)
	if !m.ReturnUpdated {
		t.Fatal("ReturnUpdated not compiled")
	}
	out, _, err := m.Run([]types.Row{R(2000, 5.0), R(2001, 6.0), R(2002, 0.0)}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Only the assigned 2002 row and the upserted 2003 row come back.
	if len(out) != 2 {
		t.Fatalf("rows = %d: %v", len(out), out)
	}
	idx := indexRows(m, out)
	if got := cell(t, idx, 2002)[1].Float(); got != 12 {
		t.Errorf("s[2002] = %v", got)
	}
	if got := cell(t, idx, 2003)[1].Float(); got != 1 {
		t.Errorf("s[2003] = %v", got)
	}
}

func TestUniqueDimensionEnforced(t *testing.T) {
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		( s[2002] = 1 )`, nil)
	_, _, err := m.Run([]types.Row{R(2000, 1.0), R(2000, 2.0)}, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "uniquely identify") {
		t.Fatalf("duplicate DBY must error, got %v", err)
	}
}

func TestForFromToBoundAnalysis(t *testing.T) {
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		( UPSERT s[FOR t FROM 2000 TO 2002] = 1 )`, nil)
	rect := m.Rules[0].lhsRect
	if rect[0].All || !rect[0].IsRange {
		t.Fatalf("FOR FROM..TO bound = %+v", rect[0])
	}
	if !rect[0].Contains(V(2001)) || rect[0].Contains(V(2003)) {
		t.Errorf("bound contents wrong: %+v", rect[0])
	}
}
