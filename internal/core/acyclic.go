package core

import (
	"fmt"
	"sort"

	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// runAutomatic executes the analysis plan for an AUTOMATIC ORDER
// spreadsheet: plain levels run with the Auto-Acyclic algorithm (all
// aggregates of a level computed before its formulas, sharing one partition
// scan), SCC steps run with the Auto-Cyclic fixpoint algorithm.
func (fe *frameEval) runAutomatic() error {
	if !fe.opts.DisableSingleScan && fe.m.canSingleScan() {
		return fe.runSingleScan()
	}
	for _, lv := range fe.m.levels {
		switch lv.kind {
		case stepLevel:
			if err := fe.runRules(lv.rules); err != nil {
				return err
			}
		case stepSCC:
			if err := fe.runSCC(lv.rules); err != nil {
				return err
			}
		}
	}
	return nil
}

// lsEntry is one single-cell-left-side rule prepared for evaluation: its
// enumerated targets and, per target, the aggregate instances of its right
// side.
type lsEntry struct {
	rule    *Rule
	targets [][]types.Value
	// aggMaps[i] maps the rule's CellAgg nodes to instances for target i.
	aggMaps []map[*sqlast.CellAgg]*aggInstance
	ctxs    []*eval.Context
}

// runRules evaluates one level: first the single-cell rules (LS) — their
// aggregates computed up front, scan-mode instances sharing one partition
// scan — then the existential rules (LE), per the Auto-Acyclic algorithm.
func (fe *frameEval) runRules(idxs []int) error {
	var ls []*lsEntry
	var le []*Rule
	for _, ri := range idxs {
		r := fe.m.Rules[ri]
		if r.Existential {
			le = append(le, r)
			continue
		}
		entry, err := fe.prepareLS(r)
		if err != nil {
			return err
		}
		ls = append(ls, entry)
	}

	// Scan (I): compute every scan-mode aggregate of the level in one pass.
	var scanInsts []*aggInstance
	for _, e := range ls {
		for _, am := range e.aggMaps {
			for _, inst := range am {
				if inst.probe {
					if err := inst.runProbe(fe); err != nil {
						return err
					}
				} else {
					scanInsts = append(scanInsts, inst)
				}
			}
		}
	}
	if len(scanInsts) > 0 {
		if err := fe.scanFeed(scanInsts); err != nil {
			return err
		}
	}

	// Evaluate the single-cell formulas, each rule as one batch when its
	// kernels apply (see vecrules.go), per cell otherwise.
	for _, e := range ls {
		handled, err := fe.vecApplyPoints(e)
		if err != nil {
			return err
		}
		fe.opts.Stats.countRule(handled)
		if handled {
			continue
		}
		for ti, dims := range e.targets {
			fe.curAggs = e.aggMaps[ti]
			if err := fe.applyPoint(e.rule, dims, e.ctxs[ti]); err != nil {
				return err
			}
		}
	}
	fe.curAggs = nil

	// Evaluate the existential formulas (scans II and III).
	for _, r := range le {
		if err := fe.applyExistential(r); err != nil {
			return err
		}
	}
	return nil
}

// scanFeed performs one partition scan, feeding every matching row to every
// instance. When every instance has a vectorized form the scan runs as batch
// kernels over a columnar snapshot instead (see vecscan.go) — same state,
// bit for bit.
func (fe *frameEval) scanFeed(insts []*aggInstance) error {
	if handled, err := fe.vecScanFeed(insts); handled {
		fe.opts.Stats.countScan(true)
		return err
	}
	fe.opts.Stats.countScan(false)
	var ferr error
	fe.f.Each(func(pos int, row types.Row) bool {
		if ferr = fe.tick(); ferr != nil {
			return false
		}
		for _, inst := range insts {
			ok, err := inst.match(row)
			if err != nil {
				ferr = err
				return false
			}
			if !ok {
				continue
			}
			if err := inst.feed(fe, pos, row); err != nil {
				ferr = err
				return false
			}
		}
		return true
	})
	return ferr
}

// prepareLS enumerates a single-cell rule's targets and builds the
// aggregate instances of its right side for each target.
func (fe *frameEval) prepareLS(r *Rule) (*lsEntry, error) {
	targets, err := fe.ruleTargets(r)
	if err != nil {
		return nil, err
	}
	entry := &lsEntry{rule: r, targets: targets}
	_, cellAggs := sqlast.CellRefs(r.RHS)
	for _, dims := range targets {
		ctx := fe.targetCtx(r, dims)
		am := make(map[*sqlast.CellAgg]*aggInstance, len(cellAggs))
		for _, ca := range cellAggs {
			inst, err := fe.buildInstance(ctx, ca)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", r.Label, err)
			}
			am[ca] = inst
		}
		entry.aggMaps = append(entry.aggMaps, am)
		entry.ctxs = append(entry.ctxs, ctx)
	}
	return entry, nil
}

// targetCtx builds the evaluation context for one formula target, with cv()
// bound to the target's dimension values.
func (fe *frameEval) targetCtx(r *Rule, dims []types.Value) *eval.Context {
	copy(fe.cv, dims)
	// The context must capture the cv values, not share fe.cv (multiple
	// targets are prepared before any is evaluated).
	bound := append([]types.Value(nil), dims...)
	ctx := fe.ctxFor(nil)
	ctx.CurrentV = func(dim string) (types.Value, error) {
		if d := fe.m.DimOrdinal(dim); d >= 0 {
			return bound[d], nil
		}
		if p := fe.m.PbyOrdinal(dim); p >= 0 {
			return fe.f.pby[p], nil
		}
		return types.Null, fmt.Errorf("cv(%s): unknown dimension", dim)
	}
	return ctx
}

// ruleTargets enumerates the target cells of a non-existential rule: the
// cartesian product of each qualifier's value list.
func (fe *frameEval) ruleTargets(r *Rule) ([][]types.Value, error) {
	lists := make([][]types.Value, len(r.Quals))
	ctx := fe.ctxFor(nil)
	for i := range r.Quals {
		q := &r.Quals[i]
		switch q.Kind {
		case sqlast.QualPoint:
			v, err := fe.eval(ctx, q.Val)
			if err != nil {
				return nil, fmt.Errorf("%s: left side: %v", r.Label, err)
			}
			lists[i] = []types.Value{v}
		case sqlast.QualForIn:
			lists[i] = q.forCache
		default:
			return nil, fmt.Errorf("%s: internal: existential qualifier in point rule", r.Label)
		}
	}
	var out [][]types.Value
	dims := make([]types.Value, len(lists))
	var walk func(d int)
	walk = func(d int) {
		if d == len(lists) {
			out = append(out, append([]types.Value(nil), dims...))
			return
		}
		for _, v := range lists[d] {
			dims[d] = v
			walk(d + 1)
		}
	}
	walk(0)
	return out, nil
}

// applyPoint fires a single-cell rule for one target.
func (fe *frameEval) applyPoint(r *Rule, dims []types.Value, ctx *eval.Context) error {
	// Trigger condition for dimensions promoted into the distribution key:
	// the target must belong to this partition's data (§5, UPSERT case).
	for _, p := range fe.opts.Promoted {
		if !types.Equal(dims[p.Dby], fe.f.pby[p.Pby]) {
			return nil
		}
	}
	pos, ok := fe.f.Lookup(dims)
	if !ok {
		if !r.Upsert {
			return nil // UPDATE ignores nonexistent cells
		}
		pos = fe.insertRow(dims)
	}
	row := fe.f.Row(pos).Clone()
	rctx := *ctx
	rctx.Binding = &eval.Binding{BS: fe.bs, Row: row}
	v, err := fe.eval(&rctx, r.RHS)
	if err != nil {
		return fmt.Errorf("%s: %v", r.Label, err)
	}
	return fe.assignMeasure(pos, r.Mea, v)
}

// insertRow creates an UPSERTed cell and notifies maintenance and
// convergence tracking.
func (fe *frameEval) insertRow(dims []types.Value) int {
	pos := fe.f.Insert(fe.m, dims)
	fe.f.MarkUpdated(pos)
	if fe.trackRefs {
		fe.changed = true // a new cell signals additional iterations
	}
	if fe.assigned != nil {
		fe.assigned[fe.f.flagKey(pos, fe.m.Schema.Len())] = true
	}
	if fe.maintained != nil {
		row := fe.f.Row(pos)
		for _, inst := range fe.maintained {
			if err := inst.onInsert(fe, pos, row); err != nil {
				// Maintenance errors surface on the next assignment; in
				// practice instances never error on insert because their
				// matchers were validated during the build scan.
				_ = err
			}
		}
	}
	return pos
}

// assignMeasure writes a measure, driving convergence detection and
// aggregate maintenance.
func (fe *frameEval) assignMeasure(pos, mea int, v types.Value) error {
	fe.f.MarkUpdated(pos)
	id := fe.f.ids[pos]
	row := fe.f.b.store.Get(id)
	oldV := row[mea]
	changed := !(oldV.K == v.K && types.Equal(oldV, v))
	if changed {
		nr := row.Clone()
		nr[mea] = v
		fe.f.b.store.Set(id, nr)
		fe.f.imgMark(mea)
		row = nr
	}
	if fe.assigned != nil {
		fe.assigned[fe.f.flagKey(pos, mea)] = true
	}
	if changed && fe.trackRefs {
		if fe.f.Referenced(fe.gen, pos, mea) || fe.f.Referenced(1-fe.gen, pos, mea) {
			fe.changed = true
		}
	}
	if changed && fe.maintained != nil {
		for _, inst := range fe.maintained {
			if err := inst.onWrite(fe, row, mea, oldV, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyExistential fires an existential rule: scan (II) finds the target
// rows, then each target evaluates its right side — with scan (III) for any
// non-probe aggregates.
func (fe *frameEval) applyExistential(r *Rule) error {
	if handled, err := fe.vecApplyExistential(r); handled {
		fe.opts.Stats.countRule(true)
		return err
	}
	fe.opts.Stats.countRule(false)
	targets, err := fe.matchTargets(r)
	if err != nil {
		return err
	}
	if len(r.OrderBy) > 0 {
		if err := fe.sortTargets(r, targets); err != nil {
			return err
		}
	}
	_, cellAggs := sqlast.CellRefs(r.RHS)
	if len(cellAggs) == 0 {
		// Fast path: no aggregates, so one shared context serves every
		// target — cv() reads fe.cv, rebound per row.
		ctx := fe.ctxFor(nil)
		binding := &eval.Binding{BS: fe.bs}
		ctx.Binding = binding
		for _, pos := range targets {
			if err := fe.tick(); err != nil {
				return err
			}
			row := fe.f.Row(pos)
			copy(fe.cv, row[fe.m.NPby:fe.m.NPby+fe.m.NDby])
			binding.Row = row
			v, err := fe.eval(ctx, r.RHS)
			if err != nil {
				return fmt.Errorf("%s: %v", r.Label, err)
			}
			if err := fe.assignMeasure(pos, r.Mea, v); err != nil {
				return err
			}
		}
		return nil
	}
	for _, pos := range targets {
		row := fe.f.Row(pos).Clone()
		dims := make([]types.Value, fe.m.NDby)
		copy(dims, row[fe.m.NPby:fe.m.NPby+fe.m.NDby])
		ctx := fe.targetCtx(r, dims)
		if len(cellAggs) > 0 {
			am := make(map[*sqlast.CellAgg]*aggInstance, len(cellAggs))
			var scans []*aggInstance
			for _, ca := range cellAggs {
				inst, err := fe.buildInstance(ctx, ca)
				if err != nil {
					return fmt.Errorf("%s: %v", r.Label, err)
				}
				if inst.probe {
					if err := inst.runProbe(fe); err != nil {
						return err
					}
				} else {
					scans = append(scans, inst)
				}
				am[ca] = inst
			}
			if len(scans) > 0 {
				if err := fe.scanFeed(scans); err != nil {
					return err
				}
			}
			fe.curAggs = am
		}
		rctx := *ctx
		rctx.Binding = &eval.Binding{BS: fe.bs, Row: row}
		v, err := fe.eval(&rctx, r.RHS)
		fe.curAggs = nil
		if err != nil {
			return fmt.Errorf("%s: %v", r.Label, err)
		}
		if err := fe.assignMeasure(pos, r.Mea, v); err != nil {
			return err
		}
	}
	return nil
}

// matchTargets scans the partition for rows matching an existential left
// side.
func (fe *frameEval) matchTargets(r *Rule) ([]int, error) {
	ctx := fe.ctxFor(nil)
	// Pre-evaluate constant qualifier parts.
	type dimTest func(row types.Row) (bool, error)
	tests := make([]dimTest, len(r.Quals))
	for i := range r.Quals {
		q := &r.Quals[i]
		col := fe.m.NPby + i
		switch q.Kind {
		case sqlast.QualStar:
			tests[i] = func(types.Row) (bool, error) { return true, nil }
		case sqlast.QualPoint:
			v, err := fe.eval(ctx, q.Val)
			if err != nil {
				return nil, fmt.Errorf("%s: left side: %v", r.Label, err)
			}
			tests[i] = func(row types.Row) (bool, error) { return types.Equal(row[col], v), nil }
		case sqlast.QualRange:
			lo, err := fe.eval(ctx, q.Lo)
			if err != nil {
				return nil, fmt.Errorf("%s: left side: %v", r.Label, err)
			}
			hi, err := fe.eval(ctx, q.Hi)
			if err != nil {
				return nil, fmt.Errorf("%s: left side: %v", r.Label, err)
			}
			loIncl, hiIncl := q.LoIncl, q.HiIncl
			tests[i] = func(row types.Row) (bool, error) {
				v := row[col]
				if v.IsNull() || lo.IsNull() || hi.IsNull() {
					return false, nil
				}
				cl := types.Compare(v, lo)
				if cl < 0 || (cl == 0 && !loIncl) {
					return false, nil
				}
				ch := types.Compare(v, hi)
				if ch > 0 || (ch == 0 && !hiIncl) {
					return false, nil
				}
				return true, nil
			}
		case sqlast.QualPred:
			pred := q.Pred
			// Hoisted per-rule: only the row binding varies per row.
			pctx := *ctx
			pbind := eval.Binding{BS: fe.bs}
			pctx.Binding = &pbind
			tests[i] = func(row types.Row) (bool, error) {
				pbind.Row = row
				return fe.evalBool(&pctx, pred)
			}
		case sqlast.QualForIn:
			vals := q.forCache
			tests[i] = func(row types.Row) (bool, error) {
				for _, v := range vals {
					if types.Equal(row[col], v) {
						return true, nil
					}
				}
				return false, nil
			}
		}
	}
	var out []int
	var ferr error
	fe.f.Each(func(pos int, row types.Row) bool {
		if ferr = fe.tick(); ferr != nil {
			return false
		}
		for _, t := range tests {
			ok, err := t(row)
			if err != nil {
				ferr = err
				return false
			}
			if !ok {
				return true
			}
		}
		out = append(out, pos)
		return true
	})
	return out, ferr
}

// sortTargets orders existential targets by the rule's ORDER BY.
func (fe *frameEval) sortTargets(r *Rule, targets []int) error {
	type keyed struct {
		pos  int
		keys []types.Value
	}
	ks := make([]keyed, len(targets))
	ctx := fe.ctxFor(nil)
	for i, pos := range targets {
		row := fe.f.Row(pos).Clone()
		rctx := *ctx
		rctx.Binding = &eval.Binding{BS: fe.bs, Row: row}
		keys := make([]types.Value, len(r.OrderBy))
		for j, o := range r.OrderBy {
			v, err := fe.eval(&rctx, o.Expr)
			if err != nil {
				return fmt.Errorf("%s: ORDER BY: %v", r.Label, err)
			}
			keys[j] = v
		}
		ks[i] = keyed{pos: pos, keys: keys}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		for k := range a.keys {
			c := types.Compare(a.keys[k], b.keys[k])
			if r.OrderBy[k].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return a.pos < b.pos
	})
	for i := range ks {
		targets[i] = ks[i].pos
	}
	return nil
}
