package core

import (
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// OuterInfo describes what an outer query block keeps from the spreadsheet's
// result, for formula pruning and rewriting (§4).
type OuterInfo struct {
	// DimBounds gives, per DBY ordinal, the values the outer block keeps
	// (All = no filter on that dimension).
	DimBounds Rect
	// UsedMeasures lists the measure ordinals the outer block references;
	// nil means unknown (assume all).
	UsedMeasures map[int]bool
	// NoRewrite disables the left-side restriction of surviving sinks.
	NoRewrite bool
}

// Prune removes formulas whose outputs the outer block provably discards,
// walking sink nodes exactly as the paper's PruneFormulas, and rewrites
// surviving sinks whose outputs are only partially needed (left-side
// restriction, the F1 -> F1' transformation). It returns the labels of
// pruned and rewritten rules. Analyze must be re-run afterwards; Prune
// resets the analysis state.
func (m *Model) Prune(outer OuterInfo) (pruned, rewritten []string) {
	if outer.DimBounds == nil && outer.UsedMeasures == nil {
		return nil, nil
	}
	n := len(m.Rules)
	removed := make([]bool, n)
	// out[j] = rules that depend on j (reverse of depEdges).
	m.buildDepGraph()
	outEdges := make([][]int, n)
	for i, deps := range m.depEdges {
		for _, j := range deps {
			if j != i {
				outEdges[j] = append(outEdges[j], i)
			}
		}
	}
	liveOut := func(j int) int {
		c := 0
		for _, i := range outEdges[j] {
			if !removed[i] {
				c++
			}
		}
		return c
	}

	// Work the sink frontier.
	var frontier []int
	for i := range m.Rules {
		if liveOut(i) == 0 {
			frontier = append(frontier, i)
		}
	}
	inFrontier := make([]bool, n)
	for _, i := range frontier {
		inFrontier[i] = true
	}
	for len(frontier) > 0 {
		i := frontier[0]
		frontier = frontier[1:]
		inFrontier[i] = false
		if removed[i] || liveOut(i) > 0 {
			continue
		}
		r := m.Rules[i]
		if m.ruleFilteredOut(r, outer) {
			removed[i] = true
			pruned = append(pruned, r.Label)
			// Deleting a sink can expose new sinks among its suppliers.
			for _, j := range m.depEdges[i] {
				if j != i && !removed[j] && liveOut(j) == 0 && !inFrontier[j] {
					frontier = append(frontier, j)
					inFrontier[j] = true
				}
			}
			continue
		}
		if !outer.NoRewrite && m.rewriteRule(r, outer) {
			rewritten = append(rewritten, r.Label)
		}
	}
	if len(pruned) > 0 {
		var keep []*Rule
		for i, r := range m.Rules {
			if !removed[i] {
				keep = append(keep, r)
			}
		}
		m.Rules = keep
	}
	if len(pruned) > 0 || len(rewritten) > 0 {
		m.levels = nil
		m.depEdges = nil
	}
	return pruned, rewritten
}

// ruleFilteredOut reports whether every cell a rule writes is discarded by
// the outer block: its target rectangle misses the outer filter, or the
// measure it assigns is never referenced outside.
func (m *Model) ruleFilteredOut(r *Rule, outer OuterInfo) bool {
	if outer.UsedMeasures != nil && !outer.UsedMeasures[r.Mea] {
		// An unreferenced measure is only safely prunable for UPDATE rules:
		// an UPSERT still creates rows the outer block may see.
		if !r.Upsert {
			return true
		}
	}
	if outer.DimBounds == nil {
		return false
	}
	for d := 0; d < m.NDby; d++ {
		if !boundsIntersect(r.lhsRect[d], outer.DimBounds[d]) {
			return true
		}
	}
	return false
}

// rewriteRule restricts a surviving sink's left side with the outer block's
// dimension filters to skip computing discarded cells. Only existential
// qualifiers on dimensions with a finite outer bound are tightened.
func (m *Model) rewriteRule(r *Rule, outer OuterInfo) bool {
	if outer.DimBounds == nil {
		return false
	}
	// UPSERT rules must not be restricted on enumerable (FOR) qualifiers:
	// row creation is visible even when the assigned measure is filtered...
	// restricting to the outer filter is still correct because the rows
	// created outside it are discarded by that same filter. Restricting is
	// correct for both modes; we simply narrow the target set.
	changed := false
	for d := 0; d < m.NDby; d++ {
		ob := outer.DimBounds[d]
		if ob.All || ob.IsRange {
			continue // only finite value sets produce clean IN rewrites
		}
		q := &r.Quals[d]
		switch q.Kind {
		case sqlast.QualStar:
			*q = Qual{Kind: sqlast.QualPred, Dim: d, DimName: q.DimName, Pred: valuesPred(q.DimName, ob.Vals)}
			changed = true
		case sqlast.QualPred:
			narrowed := intersectBound(m.qualBound(q, nil), ob)
			if narrowed.All || narrowed.IsRange {
				// Keep the original predicate but conjoin the outer filter.
				q.Pred = &sqlast.Binary{Op: "AND", L: q.Pred, R: valuesPred(q.DimName, ob.Vals)}
			} else {
				q.Pred = &sqlast.Binary{Op: "AND", L: q.Pred, R: valuesPred(q.DimName, narrowed.Vals)}
			}
			changed = true
		case sqlast.QualRange:
			rangeB := m.qualBound(q, nil)
			narrowed := intersectBound(rangeB, ob)
			if !narrowed.All && !narrowed.IsRange {
				*q = Qual{Kind: sqlast.QualPred, Dim: d, DimName: q.DimName, Pred: valuesPred(q.DimName, narrowed.Vals)}
				changed = true
			}
		}
	}
	if changed {
		r.Existential = m.stillExistential(r)
		r.lhsRect = m.lhsRect(r)
		r.reads = m.collectReads(r)
	}
	return changed
}

func (m *Model) stillExistential(r *Rule) bool {
	for _, q := range r.Quals {
		switch q.Kind {
		case sqlast.QualStar, sqlast.QualPred, sqlast.QualRange:
			return true
		}
	}
	return false
}

func valuesPred(dim string, vals []types.Value) sqlast.Expr {
	cref := &sqlast.ColumnRef{Name: dim}
	if len(vals) == 1 {
		return &sqlast.Binary{Op: "=", L: cref, R: &sqlast.Literal{Val: vals[0]}}
	}
	list := make([]sqlast.Expr, len(vals))
	for i, v := range vals {
		list[i] = &sqlast.Literal{Val: v}
	}
	return &sqlast.InList{X: cref, List: list}
}

// IndependentDims reports, per DBY ordinal, whether the dimension is
// independent: every right-side reference uses the same value of the
// dimension as the left side (§4). Independent dimensions are functionally
// equivalent to partition dimensions (absent UPSERT) and enable both
// predicate pushing and finer-grained parallelism.
func (m *Model) IndependentDims() []bool {
	out := make([]bool, m.NDby)
	for d := range out {
		out[d] = true
	}
	for _, r := range m.Rules {
		lq := r.Quals
		for _, a := range r.reads {
			if a.refIdx >= 0 {
				continue // reference sheets have their own dimensions
			}
			var quals []sqlast.DimQual
			if a.cell != nil {
				quals = a.cell.Quals
			} else if a.agg != nil {
				quals = a.agg.Quals
			}
			if len(quals) != m.NDby {
				continue
			}
			for d := 0; d < m.NDby; d++ {
				if !out[d] {
					continue
				}
				if !sameDimValue(quals[d], &lq[d], m.DimName(d)) {
					out[d] = false
				}
			}
		}
	}
	return out
}

// sameDimValue reports whether a right-side qualifier provably takes the
// left side's value for its dimension: cv(dim) verbatim, or the identical
// literal on both sides.
func sameDimValue(rq sqlast.DimQual, lq *Qual, dim string) bool {
	if rq.Kind != sqlast.QualPoint {
		return false
	}
	if cv, ok := rq.Val.(*sqlast.CurrentV); ok {
		return cv.Dim == dim
	}
	rv, rOk := staticEval(rq.Val)
	if !rOk {
		return false
	}
	if lq.Kind == sqlast.QualPoint {
		lv, lOk := staticEval(lq.Val)
		return lOk && types.Equal(rv, lv)
	}
	return false
}

// FunctionallyIndependentDims extends independence through reference-sheet
// lookups: a right-side qualifier of the form refmea[cv(dim)], where refmea
// belongs to a one-dimensional reference sheet over dim, makes the
// dimension functionally independent (query S1's m_yago[cv(m)]). The result
// includes plainly independent dimensions.
func (m *Model) FunctionallyIndependentDims() []bool {
	out := make([]bool, m.NDby)
	for d := range out {
		out[d] = true
	}
	for _, r := range m.Rules {
		lq := r.Quals
		for _, a := range r.reads {
			if a.refIdx >= 0 {
				continue
			}
			var quals []sqlast.DimQual
			if a.cell != nil {
				quals = a.cell.Quals
			} else if a.agg != nil {
				quals = a.agg.Quals
			}
			if len(quals) != m.NDby {
				continue
			}
			for d := 0; d < m.NDby; d++ {
				if !out[d] {
					continue
				}
				if sameDimValue(quals[d], &lq[d], m.DimName(d)) {
					continue
				}
				if m.isRefLookupOfDim(quals[d], m.DimName(d)) {
					continue
				}
				out[d] = false
			}
		}
	}
	return out
}

// isRefLookupOfDim recognizes "refmea[cv(dim)]" qualifiers.
func (m *Model) isRefLookupOfDim(q sqlast.DimQual, dim string) bool {
	if q.Kind != sqlast.QualPoint {
		return false
	}
	cell, ok := q.Val.(*sqlast.CellRef)
	if !ok {
		return false
	}
	rb, ok := m.refMeas[cell.Measure]
	if !ok || len(rb.sheet.Dims) != 1 || rb.sheet.Dims[0] != dim {
		return false
	}
	if len(cell.Quals) != 1 || cell.Quals[0].Kind != sqlast.QualPoint {
		return false
	}
	cv, ok := cell.Quals[0].Val.(*sqlast.CurrentV)
	return ok && cv.Dim == dim
}

// HasUpsert reports whether any rule creates rows.
func (m *Model) HasUpsert() bool {
	for _, r := range m.Rules {
		if r.Upsert {
			return true
		}
	}
	return false
}

// RefLookups lists, per DBY dimension name, the reference measures used as
// refmea[cv(dim)] lookups — the inputs to the three reference-pushing
// transforms of §4.
func (m *Model) RefLookups(dim string) []*sqlast.CellRef {
	var out []*sqlast.CellRef
	seen := map[string]bool{}
	for _, r := range m.Rules {
		cells, aggsIn := sqlast.CellRefs(r.RHS)
		collect := func(quals []sqlast.DimQual) {
			for _, q := range quals {
				if m.isRefLookupOfDim(q, dim) {
					cell := q.Val.(*sqlast.CellRef)
					if !seen[cell.Measure] {
						seen[cell.Measure] = true
						out = append(out, cell)
					}
				}
			}
		}
		for _, c := range cells {
			collect(c.Quals)
		}
		for _, a := range aggsIn {
			collect(a.Quals)
		}
	}
	return out
}
