// Package core implements the paper's primary contribution: the SQL
// spreadsheet clause. It contains the compile-time binder and analysis
// (dependency graph, Tarjan SCC, scan-minimizing level generation, bounding
// rectangles, formula pruning and rewriting) and the run-time engine (the
// two-level hash access structure, the Auto-Acyclic / Auto-Cyclic /
// Sequential algorithms, reference spreadsheets, and partition-parallel
// execution).
package core

import (
	"fmt"

	"sqlsheet/internal/aggs"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// Model is a compiled spreadsheet clause bound to its working schema
// (PBY ++ DBY ++ MEA columns, in that order).
type Model struct {
	Clause *sqlast.SpreadsheetClause

	// Schema is the working schema the spreadsheet operates on.
	Schema *types.Schema
	// NPby/NDby/NMea give the column split: [0,NPby) partition columns,
	// [NPby, NPby+NDby) dimensions, rest measures.
	NPby, NDby, NMea int

	Rules []*Rule
	Refs  []*RefMeta

	IgnoreNav bool
	SeqOrder  bool
	Iterate   *sqlast.IterateOpt
	// ReturnUpdated restricts output to rows assigned or created by rules.
	ReturnUpdated bool

	// measures maps a measure name to its working-schema ordinal.
	measures map[string]int
	// refMeas maps a reference-sheet measure name to its sheet and the
	// measure's ordinal within that sheet's row layout.
	refMeas map[string]refMeaBinding

	// analysis products, filled by Analyze.
	levels   []level
	depEdges [][]int // depEdges[i] = rules that rule i depends on
	cyclic   bool

	// compiled maps every per-cell formula expression (rule right sides,
	// qualifier values/predicates/bounds, ORDER BY keys, aggregate
	// arguments) to its closure-compiled form. Built once at the start of
	// Run — after the optimizer's pruning/rewriting has settled the final
	// expression set — and read-only afterwards, so PE goroutines share it
	// without locking. A missing entry falls back to the interpreter.
	compiled map[sqlast.Expr]eval.CompiledExpr

	// vecRules maps each rule to its compiled batch form (or its fallback
	// reason). Built once like compiled (see buildVecRules), read-only
	// during execution.
	vecRules map[*Rule]*vecRuleProg
}

type refMeaBinding struct {
	sheet *RefMeta
	mea   int // ordinal in the ref sheet row layout (dims first, then meas)
}

// RefMeta describes a compiled reference spreadsheet: a read-only
// n-dimensional lookup array over another query block.
type RefMeta struct {
	Name   string
	Src    *sqlast.RefSheet
	Dims   []string // dimension column names, in DBY order
	Meas   []string // measure column names
	Schema *types.Schema

	// Data is filled before Run by materializing the reference query:
	// an index from the DBY key to the row (dims ++ meas layout).
	Data map[string]types.Row
}

// Rule is a compiled formula.
type Rule struct {
	Src   *sqlast.Formula
	Label string
	// Upsert is the resolved mode (clause default applied). Existential
	// left sides always run in update mode.
	Upsert bool
	// Mea is the working-schema ordinal of the assigned measure.
	Mea int
	// Quals holds one compiled qualifier per DBY dimension, positionally.
	Quals   []Qual
	OrderBy []sqlast.OrderItem
	RHS     sqlast.Expr

	// Existential marks a left side that can address a range of cells and
	// therefore requires a scan (QualPred/QualRange/QualStar present).
	Existential bool
	// reads caches the cell accesses on the right side.
	reads []access
	// lhsRect is the bounding rectangle of the cells the rule writes.
	lhsRect Rect
	// level index assigned by Analyze.
	level int
	// sccID groups rules in the same strongly connected component; -1 for
	// rules outside any cycle.
	sccID int
}

// Qual is a compiled dimension qualifier.
type Qual struct {
	Kind sqlast.QualKind
	// Dim is the DBY ordinal this qualifier constrains.
	Dim int
	// DimName is the dimension's column name (for predicates and EXPLAIN).
	DimName string

	Val            sqlast.Expr
	Pred           sqlast.Expr
	Lo, Hi         sqlast.Expr
	LoIncl, HiIncl bool
	ForVals        []sqlast.Expr
	ForSub         *sqlast.SelectStmt
	// ForFrom/ForTo/ForStep hold a FROM..TO..INCREMENT enumeration.
	ForFrom, ForTo, ForStep sqlast.Expr
	// forCache holds the materialized FOR value list (set before Run).
	forCache []types.Value
}

// access describes one cell read on a rule's right side: a point reference
// or an aggregate over a range, with its bounding rectangle.
type access struct {
	// mea is the working-schema measure ordinal, or -1 when the access
	// resolves to a reference-sheet measure (refIdx >= 0 then).
	mea    int
	refIdx int
	// rect bounds the cells touched, per DBY dimension of the main sheet;
	// nil for reference-sheet accesses.
	rect Rect
	// agg is non-nil for aggregate accesses.
	agg *sqlast.CellAgg
	// cell is non-nil for point accesses.
	cell *sqlast.CellRef
	// scan marks accesses that require scanning the partition (aggregates
	// whose qualifiers are not all single-valued).
	scan bool
}

// Compile binds a spreadsheet clause against the working schema produced by
// the query block underneath it. refs carries the already-planned reference
// sheets (schema only; data is attached before Run).
func Compile(clause *sqlast.SpreadsheetClause, working *types.Schema, refs []*RefMeta) (*Model, error) {
	m := &Model{
		Clause:        clause,
		Schema:        working,
		NPby:          len(clause.PBY),
		NDby:          len(clause.DBY),
		NMea:          len(clause.MEA),
		Refs:          refs,
		IgnoreNav:     clause.IgnoreNav,
		SeqOrder:      clause.SeqOrder,
		Iterate:       clause.Iterate,
		ReturnUpdated: clause.ReturnUpdated,
		measures:      make(map[string]int),
		refMeas:       make(map[string]refMeaBinding),
	}
	if m.NPby+m.NDby+m.NMea != working.Len() {
		return nil, fmt.Errorf("spreadsheet: working schema has %d columns, clause classifies %d",
			working.Len(), m.NPby+m.NDby+m.NMea)
	}
	seen := make(map[string]bool, working.Len())
	for _, c := range working.Cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("spreadsheet: duplicate column %q across PBY/DBY/MEA", c.Name)
		}
		seen[c.Name] = true
	}
	for i := 0; i < m.NMea; i++ {
		m.measures[working.Cols[m.NPby+m.NDby+i].Name] = m.NPby + m.NDby + i
	}
	for _, r := range refs {
		for i, mn := range r.Meas {
			if _, dup := m.refMeas[mn]; dup {
				return nil, fmt.Errorf("spreadsheet: reference measure %q is ambiguous across reference sheets", mn)
			}
			if _, dup := m.measures[mn]; dup {
				return nil, fmt.Errorf("spreadsheet: reference measure %q collides with a main measure", mn)
			}
			m.refMeas[mn] = refMeaBinding{sheet: r, mea: len(r.Dims) + i}
		}
	}
	for i, f := range clause.Rules {
		r, err := m.compileRule(f, i)
		if err != nil {
			return nil, err
		}
		m.Rules = append(m.Rules, r)
	}
	return m, nil
}

// DimName returns the name of DBY dimension d.
func (m *Model) DimName(d int) string { return m.Schema.Cols[m.NPby+d].Name }

// DimOrdinal returns the DBY index of the named dimension, or -1.
func (m *Model) DimOrdinal(name string) int {
	for d := 0; d < m.NDby; d++ {
		if m.DimName(d) == name {
			return d
		}
	}
	return -1
}

// PbyOrdinal returns the PBY index of the named partition column, or -1.
// cv() over a PBY column yields the partition's (constant) value — an
// extension that lets reference sheets be keyed by partition columns.
func (m *Model) PbyOrdinal(name string) int {
	for i := 0; i < m.NPby; i++ {
		if m.Schema.Cols[i].Name == name {
			return i
		}
	}
	return -1
}

// MeasureOrdinal returns the working-schema ordinal of a measure, or -1.
func (m *Model) MeasureOrdinal(name string) int {
	if i, ok := m.measures[name]; ok {
		return i
	}
	return -1
}

func (m *Model) compileRule(f *sqlast.Formula, idx int) (*Rule, error) {
	label := f.Label
	if label == "" {
		label = fmt.Sprintf("rule#%d", idx+1)
	}
	r := &Rule{Src: f, Label: label, OrderBy: f.OrderBy, RHS: f.RHS, sccID: -1}

	if f.LHS.Sheet != "" {
		return nil, fmt.Errorf("%s: left side must address the main spreadsheet, not %q", label, f.LHS.Sheet)
	}
	mea, ok := m.measures[f.LHS.Measure]
	if !ok {
		return nil, fmt.Errorf("%s: left side %q is not a MEA column", label, f.LHS.Measure)
	}
	r.Mea = mea

	quals, existential, err := m.compileQuals(label, f.LHS.Quals, false)
	if err != nil {
		return nil, err
	}
	r.Quals = quals
	r.Existential = existential

	mode := f.Mode
	if mode == sqlast.ModeDefault {
		mode = m.Clause.DefaultMode
	}
	if mode == sqlast.ModeUpsert && existential {
		if f.Mode == sqlast.ModeUpsert {
			// Explicit UPSERT with an existential left side is an error
			// (the dimension values to create cannot be enumerated).
			return nil, fmt.Errorf("%s: UPSERT is not allowed with an existential left side", label)
		}
		// The clause default silently degrades to UPDATE.
		mode = sqlast.ModeUpdate
	}
	r.Upsert = mode == sqlast.ModeUpsert

	if len(f.OrderBy) > 0 && !existential {
		return nil, fmt.Errorf("%s: ORDER BY is only meaningful on an existential left side", label)
	}
	for _, o := range f.OrderBy {
		for _, c := range sqlast.ColumnRefs(o.Expr) {
			if m.DimOrdinal(c.Name) < 0 {
				return nil, fmt.Errorf("%s: ORDER BY must use DBY dimensions, %q is not one", label, c.Name)
			}
		}
	}

	// The left side must not reference cv() (it defines cv()).
	for _, q := range f.LHS.Quals {
		if q.Val != nil && sqlast.ContainsCurrentV(q.Val) ||
			q.Pred != nil && sqlast.ContainsCurrentV(q.Pred) {
			return nil, fmt.Errorf("%s: cv() is not allowed on the left side", label)
		}
	}

	if err := m.checkRHS(label, f.RHS); err != nil {
		return nil, err
	}
	r.reads = m.collectReads(r)
	r.lhsRect = m.lhsRect(r)
	return r, nil
}

// compileQuals binds positional qualifiers to DBY dimensions.
// rhs marks right-side references, which allow cv() but not FOR loops.
func (m *Model) compileQuals(label string, qs []sqlast.DimQual, rhs bool) ([]Qual, bool, error) {
	if len(qs) != m.NDby {
		return nil, false, fmt.Errorf("%s: cell reference has %d qualifiers, spreadsheet has %d dimensions",
			label, len(qs), m.NDby)
	}
	out := make([]Qual, len(qs))
	existential := false
	for i, q := range qs {
		dimName := m.DimName(i)
		cq := Qual{Kind: q.Kind, Dim: i, DimName: dimName,
			Val: q.Val, Pred: q.Pred, Lo: q.Lo, Hi: q.Hi,
			LoIncl: q.LoIncl, HiIncl: q.HiIncl, ForVals: q.ForVals, ForSub: q.ForSub,
			ForFrom: q.ForFrom, ForTo: q.ForTo, ForStep: q.ForStep}
		switch q.Kind {
		case sqlast.QualPoint:
			// A symbolic point must name the dimension at its position.
			if q.Dim != "" && q.Dim != dimName {
				return nil, false, fmt.Errorf("%s: qualifier %d names dimension %q but position binds %q",
					label, i+1, q.Dim, dimName)
			}
		case sqlast.QualStar:
			existential = true
		case sqlast.QualPred:
			// The predicate must reference this dimension (and only
			// dimensions at this position).
			if err := m.checkPredDims(label, q.Pred, dimName); err != nil {
				return nil, false, err
			}
			existential = true
		case sqlast.QualRange:
			if q.Dim != dimName {
				return nil, false, fmt.Errorf("%s: range qualifier %d is over %q but position binds %q",
					label, i+1, q.Dim, dimName)
			}
			existential = true
		case sqlast.QualForIn:
			if rhs {
				return nil, false, fmt.Errorf("%s: FOR loops are only allowed on the left side", label)
			}
			if q.Dim != dimName {
				return nil, false, fmt.Errorf("%s: FOR qualifier %d is over %q but position binds %q",
					label, i+1, q.Dim, dimName)
			}
		}
		out[i] = cq
	}
	return out, existential, nil
}

// checkPredDims verifies a predicate qualifier only constrains its own
// positional dimension.
func (m *Model) checkPredDims(label string, pred sqlast.Expr, dimName string) error {
	sawDim := false
	var badRef string
	sqlast.WalkExpr(pred, func(e sqlast.Expr) bool {
		switch x := e.(type) {
		case *sqlast.CellRef, *sqlast.CellAgg:
			return false // nested refs have their own checking
		case *sqlast.ColumnRef:
			if x.Name == dimName {
				sawDim = true
			} else if m.DimOrdinal(x.Name) >= 0 {
				badRef = x.Name
			}
			_ = x
		}
		return true
	})
	if badRef != "" {
		return fmt.Errorf("%s: predicate qualifier for %q references other dimension %q", label, dimName, badRef)
	}
	if !sawDim {
		return fmt.Errorf("%s: predicate qualifier must reference its dimension %q", label, dimName)
	}
	return nil
}

// checkRHS validates right-side cell references and aggregates.
func (m *Model) checkRHS(label string, rhs sqlast.Expr) error {
	var err error
	sqlast.WalkExpr(rhs, func(e sqlast.Expr) bool {
		if err != nil {
			return false
		}
		switch x := e.(type) {
		case *sqlast.CellRef:
			err = m.checkCellRef(label, x)
		case *sqlast.CellAgg:
			if !aggs.IsAggregate(x.Func) {
				err = fmt.Errorf("%s: %q is not an aggregate function", label, x.Func)
				return false
			}
			want := aggs.NumArgs(x.Func)
			if x.Star {
				if x.Func != "count" {
					err = fmt.Errorf("%s: %s(*) is not supported", label, x.Func)
					return false
				}
			} else if len(x.Args) != want {
				err = fmt.Errorf("%s: %s() takes %d arguments", label, x.Func, want)
				return false
			}
			if _, _, cerr := m.compileQuals(label, x.Quals, true); cerr != nil {
				err = cerr
				return false
			}
			// Aggregate arguments must be main-sheet measures.
			for _, a := range x.Args {
				c, ok := a.(*sqlast.ColumnRef)
				if !ok {
					continue // expressions over measures are evaluated per row
				}
				if _, isMea := m.measures[c.Name]; !isMea && m.DimOrdinal(c.Name) < 0 {
					err = fmt.Errorf("%s: aggregate argument %q is not a measure or dimension", label, c.Name)
					return false
				}
			}
		case *sqlast.CurrentV:
			if m.DimOrdinal(x.Dim) < 0 && m.PbyOrdinal(x.Dim) < 0 {
				err = fmt.Errorf("%s: cv(%s) does not name a DBY or PBY column", label, x.Dim)
				return false
			}
		case *sqlast.Previous:
			err = fmt.Errorf("%s: previous() is only valid in UNTIL conditions", label)
			return false
		}
		return true
	})
	return err
}

func (m *Model) checkCellRef(label string, x *sqlast.CellRef) error {
	if x.Sheet != "" {
		// Explicitly qualified reference-sheet access.
		ref := m.findRef(x.Sheet)
		if ref == nil {
			return fmt.Errorf("%s: unknown reference spreadsheet %q", label, x.Sheet)
		}
		return m.checkRefCell(label, ref, x)
	}
	if _, ok := m.measures[x.Measure]; ok {
		// Main-sheet point reference: every qualifier must be single-valued.
		for i, q := range x.Quals {
			switch q.Kind {
			case sqlast.QualPoint:
			default:
				return fmt.Errorf("%s: right-side reference %s qualifier %d must be a single value (use an aggregate for ranges)",
					label, x, i+1)
			}
		}
		if len(x.Quals) != m.NDby {
			return fmt.Errorf("%s: cell reference %s has %d qualifiers, spreadsheet has %d dimensions",
				label, x, len(x.Quals), m.NDby)
		}
		return nil
	}
	if rb, ok := m.refMeas[x.Measure]; ok {
		return m.checkRefCell(label, rb.sheet, x)
	}
	return fmt.Errorf("%s: %q is not a measure of the spreadsheet or any reference sheet", label, x.Measure)
}

func (m *Model) checkRefCell(label string, ref *RefMeta, x *sqlast.CellRef) error {
	found := false
	for _, mn := range ref.Meas {
		if mn == x.Measure {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("%s: %q is not a measure of reference sheet %q", label, x.Measure, ref.Name)
	}
	if len(x.Quals) != len(ref.Dims) {
		return fmt.Errorf("%s: reference %s has %d qualifiers, sheet %q has %d dimensions",
			label, x, len(x.Quals), ref.Name, len(ref.Dims))
	}
	for i, q := range x.Quals {
		if q.Kind != sqlast.QualPoint {
			return fmt.Errorf("%s: reference sheet access %s qualifier %d must be a single value", label, x, i+1)
		}
		if q.Dim != "" && q.Dim != ref.Dims[i] {
			return fmt.Errorf("%s: qualifier %d names %q but reference dimension is %q", label, i+1, q.Dim, ref.Dims[i])
		}
	}
	return nil
}

// buildCompiled populates the compiled-expression registry against the
// working schema. Every expression the per-cell loops evaluate is registered:
// rule right sides as whole trees, plus — because cell-key probing and
// target matching evaluate them standalone — each qualifier value, predicate
// and range bound (including those nested inside right-side cell references
// and aggregates), ORDER BY keys, and aggregate arguments.
func (m *Model) buildCompiled() {
	m.compiled = make(map[sqlast.Expr]eval.CompiledExpr)
	env := eval.FromSchema(m.Schema)
	reg := func(e sqlast.Expr) {
		if e == nil {
			return
		}
		if _, ok := m.compiled[e]; ok {
			return
		}
		if c, err := eval.Compile(env, e); err == nil && c.Valid() {
			m.compiled[e] = c
		}
	}
	regQual := func(q *sqlast.DimQual) {
		reg(q.Val)
		reg(q.Pred)
		reg(q.Lo)
		reg(q.Hi)
	}
	for _, r := range m.Rules {
		reg(r.RHS)
		sqlast.WalkExpr(r.RHS, func(e sqlast.Expr) bool {
			switch x := e.(type) {
			case *sqlast.CellRef:
				for i := range x.Quals {
					regQual(&x.Quals[i])
				}
			case *sqlast.CellAgg:
				for i := range x.Quals {
					regQual(&x.Quals[i])
				}
				for _, a := range x.Args {
					reg(a)
				}
			}
			return true
		})
		for i := range r.Quals {
			q := &r.Quals[i]
			reg(q.Val)
			reg(q.Pred)
			reg(q.Lo)
			reg(q.Hi)
		}
		for _, o := range r.OrderBy {
			reg(o.Expr)
		}
	}
}

func (m *Model) findRef(name string) *RefMeta {
	for _, r := range m.Refs {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// collectReads gathers the rule's right-side cell accesses with their
// bounding rectangles (R(F) in the paper).
func (m *Model) collectReads(r *Rule) []access {
	var reads []access
	add := func(a access) { reads = append(reads, a) }
	cells, cellAggs := sqlast.CellRefs(r.RHS)
	for _, c := range cells {
		a := access{cell: c, mea: -1, refIdx: -1}
		if rb, ok := m.refMeas[c.Measure]; ok && c.Sheet == "" {
			a.refIdx = m.refIndex(rb.sheet)
		} else if c.Sheet != "" {
			a.refIdx = m.refIndexByName(c.Sheet)
		} else if mi, ok := m.measures[c.Measure]; ok {
			a.mea = mi
			a.rect = m.refRect(c.Quals, r)
		}
		add(a)
	}
	for _, ca := range cellAggs {
		a := access{agg: ca, mea: -1, refIdx: -1}
		// An aggregate reads the measures named in its arguments.
		for _, arg := range ca.Args {
			if c, ok := arg.(*sqlast.ColumnRef); ok {
				if mi, ok := m.measures[c.Name]; ok {
					a.mea = mi // first measure argument anchors the access
					break
				}
			}
		}
		if ca.Star && a.mea == -1 {
			a.mea = -2 // count(*) reads row existence rather than a measure
		}
		a.rect = m.refRect(ca.Quals, r)
		a.scan = !allPoints(ca.Quals)
		add(a)
	}
	return reads
}

func allPoints(qs []sqlast.DimQual) bool {
	for _, q := range qs {
		if q.Kind != sqlast.QualPoint {
			return false
		}
	}
	return true
}

func (m *Model) refIndex(ref *RefMeta) int {
	for i, r := range m.Refs {
		if r == ref {
			return i
		}
	}
	return -1
}

func (m *Model) refIndexByName(name string) int {
	for i, r := range m.Refs {
		if r.Name == name {
			return i
		}
	}
	return -1
}
