package core

import (
	"sync/atomic"

	"sqlsheet/internal/colstore"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// Batch rule application: the per-cell formula loops — applyPoint over the
// enumerated targets of a single-cell rule, applyExistential over the scan
// (II) matches of an existential rule — are replaced, for rules on the
// kernel domain, by one batch per rule:
//
//  1. the frame is snapshotted into a columnar image (frameImage, shared
//     with the batch aggregate scan) — or, for single-cell rules, the
//     target rows are gathered into a mini image after every UPSERT miss
//     has been appended in target order;
//  2. the left side becomes a selection: declarative qualifiers run the
//     row matcher's own types.Equal / NULL-rejecting types.Compare tests
//     over the image, predicate qualifiers run as selection kernels
//     (eval.CompileSelKernel — TRUE-set identical to evalBool);
//  3. the right side runs as one expression kernel
//     (eval.CompileExprKernelExt) whose extension leaves resolve what the
//     schema cannot: cv() becomes a dimension-column read (or a broadcast
//     PBY constant), an aggregate becomes a broadcast of its precomputed
//     accumulator result, and a point cell reference becomes qualifier
//     kernels producing key columns, one Frame.LookupBatch bulk probe over
//     them, and a columnar gather of the referenced measure — the paper's
//     F1 probe unfolding done once per rule instead of once per cell;
//  4. the result vector is written back with Frame.SetMeasureBulk, in the
//     per-cell path's exact cell order with its exact compare-then-clone
//     assignment semantics.
//
// The decision is per rule and conservative: ITERATE/sequential models,
// cyclic (SCC) rules, ORDER BY, IGNORE NAV, reference-sheet reads,
// self-reading cell references, cv() inside aggregate qualifiers and
// anything else off the kernel domain keeps the rule on the per-cell path,
// annotated with a reason EXPLAIN surfaces. At runtime any batch-stage
// error or unsupported column representation falls back before a single
// measure is written, so the per-cell path reproduces results — and error
// text and error position — exactly. RunOptions.DisableVectorizedRules
// ablates the layer; RunOptions.Stats counts the decisions.

// Rule vectorization notes, surfaced by EXPLAIN next to each rule. The
// "yes" value doubles as the runtime gate: only a prog whose note is
// ruleVecYes carries compiled kernels.
const (
	ruleVecYes           = "yes"
	ruleVecNoIterate     = "no(iterate)"
	ruleVecNoIgnoreNav   = "no(ignore-nav)"
	ruleVecNoCyclic      = "no(cyclic)"
	ruleVecNoOrderBy     = "no(order-by)"
	ruleVecNoCvQual      = "no(cv-qualifier)"
	ruleVecNoSelfRead    = "no(self-read)"
	ruleVecNoUnsupported = "no(unsupported-expr)"
	ruleVecNoDisabled    = "no(disabled)"
)

// VecStats counts batch-versus-row decisions during a run: one Rule tick
// per rule application (per frame), one Scan tick per aggregate partition
// scan. Counters are atomic so parallel PEs share one struct.
type VecStats struct {
	RuleBatch atomic.Int64
	RuleRow   atomic.Int64
	ScanBatch atomic.Int64
	ScanRow   atomic.Int64
}

// countRule records one rule application (nil-safe).
func (s *VecStats) countRule(batch bool) {
	if s == nil {
		return
	}
	if batch {
		s.RuleBatch.Add(1)
	} else {
		s.RuleRow.Add(1)
	}
}

// countScan records one aggregate partition scan (nil-safe).
func (s *VecStats) countScan(batch bool) {
	if s == nil {
		return
	}
	if batch {
		s.ScanBatch.Add(1)
	} else {
		s.ScanRow.Add(1)
	}
}

// Extension-leaf kinds: expression shapes the working schema cannot
// resolve, lowered to extra image columns the runtime populates.
const (
	leafCV    = iota // cv(dim) over a DBY dimension
	leafPbyCV        // cv(dim) over a PBY column (partition constant)
	leafCell         // point cell reference on the main sheet
	leafAgg          // aggregate reference (accumulator precomputed)
	leafNull         // bare dim/measure column reference (NULL per target)
)

// vecLeaf is one extension leaf of a rule's right-side kernel.
type vecLeaf struct {
	kind int
	// ord is the leaf's column ordinal in the extended image
	// (Schema.Len() + leaf index).
	ord int
	// dim is the DBY ordinal (leafCV) or PBY ordinal (leafPbyCV).
	dim int
	// mea is the referenced measure's working-schema ordinal (leafCell).
	mea  int
	cell *sqlast.CellRef
	agg  *sqlast.CellAgg
	// qualKerns computes the cell reference's point-qualifier values, one
	// kernel per DBY dimension; their output columns are the LookupBatch
	// key image (leafCell).
	qualKerns []eval.ExprKernel
}

// vecRuleProg is one rule's compiled batch form. note != ruleVecYes means
// the rule stays on the per-cell path (kernels absent).
type vecRuleProg struct {
	note   string
	rhs    eval.ExprKernel
	leaves []vecLeaf
	// preds holds one selection kernel per predicate qualifier of an
	// existential left side, indexed by qualifier position (zero-value
	// kernel elsewhere).
	preds []eval.SelKernel
}

// vecRuleCompiler carries the state of one rule's batch compilation.
type vecRuleCompiler struct {
	m    *Model
	r    *Rule
	bs   *eval.BoundSchema
	base int // first extension ordinal = Schema.Len()
	// failNote records the first specific fallback reason hit inside the
	// extension hook (the hook itself can only answer yes/no).
	failNote string
	leaves   []vecLeaf
	// qualPad selects the binding bare column references see inside
	// cell-reference qualifiers. The per-cell engine evaluates them through
	// the ctx.Cell closure, whose captured binding depends on the code path:
	// applyPoint and the aggregate-bearing existential path capture the
	// padded target context (PBY values, NULLs elsewhere), while the
	// aggregate-free existential fast path rebinds the shared context to the
	// current frame row in place — so its qualifiers read row values.
	qualPad bool
}

func (c *vecRuleCompiler) fail(note string) {
	if c.failNote == "" {
		c.failNote = note
	}
}

func (c *vecRuleCompiler) addLeaf(lf vecLeaf) int {
	lf.ord = c.base + len(c.leaves)
	c.leaves = append(c.leaves, lf)
	return lf.ord
}

// leafOrd is the kernel compiler's extension hook: it maps cv(), cell
// references and aggregates to extension ordinals, or declines (keeping
// the rule per-cell).
func (c *vecRuleCompiler) leafOrd(e sqlast.Expr) (int, bool) {
	switch x := e.(type) {
	case *sqlast.CurrentV:
		return c.cvLeaf(x)
	case *sqlast.CellRef:
		return c.cellLeaf(x)
	case *sqlast.CellAgg:
		return c.aggLeaf(x)
	}
	// Bare column references fall through to the kernel's own schema
	// resolution: the per-cell path binds the right side to the target's
	// frame row (applyPoint/applyExistential), so reading the image column
	// at the same ordinal is exactly the interpreter's value — dims and
	// measures alike (a measure read is the cell's own pre-write value;
	// duplicate targets force the per-cell path, so no batch target is
	// written before it is read).
	return 0, false
}

// cvOnly is the restricted hook for cell-reference qualifier kernels:
// only cv() and bare column references resolve, so a nested cell reference
// or aggregate inside a qualifier keeps the whole rule per-cell.
func (c *vecRuleCompiler) cvOnly(e sqlast.Expr) (int, bool) {
	switch x := e.(type) {
	case *sqlast.CurrentV:
		return c.cvLeaf(x)
	case *sqlast.ColumnRef:
		if c.qualPad {
			return c.colLeaf(x)
		}
		// Row-bound qualifier context: fall through to plain image
		// resolution, the same ordinal the rebound per-cell binding reads.
		return 0, false
	}
	return 0, false
}

// colLeaf lowers a bare column reference inside a cell-reference qualifier.
// Unlike the right side proper (bound to the target's frame row), qualifier
// expressions evaluate under the padded binding captured by ctx.Cell
// (ctxFor(nil)): PBY columns carry the partition value, everything past the
// PBY prefix reads as NULL. Resolving against the image instead would
// (wrongly) read each row's own values, so the leaf broadcasts the same
// constants the interpreter sees. Unresolvable names decline — the per-cell
// path owns the unknown-column error.
func (c *vecRuleCompiler) colLeaf(x *sqlast.ColumnRef) (int, bool) {
	idx, ok, err := c.bs.Resolve(x.Table, x.Name)
	if err != nil || !ok {
		return 0, false
	}
	if idx < c.m.NPby {
		for _, lf := range c.leaves {
			if lf.kind == leafPbyCV && lf.dim == idx {
				return lf.ord, true
			}
		}
		return c.addLeaf(vecLeaf{kind: leafPbyCV, dim: idx}), true
	}
	for _, lf := range c.leaves {
		if lf.kind == leafNull {
			return lf.ord, true
		}
	}
	return c.addLeaf(vecLeaf{kind: leafNull}), true
}

func (c *vecRuleCompiler) cvLeaf(x *sqlast.CurrentV) (int, bool) {
	kind, ix := leafCV, c.m.DimOrdinal(x.Dim)
	if ix < 0 {
		kind, ix = leafPbyCV, c.m.PbyOrdinal(x.Dim)
		if ix < 0 {
			return 0, false
		}
	}
	for _, lf := range c.leaves {
		if lf.kind == kind && lf.dim == ix {
			return lf.ord, true
		}
	}
	return c.addLeaf(vecLeaf{kind: kind, dim: ix}), true
}

// cellLeaf lowers a main-sheet point reference. Reference-sheet lookups
// and self-reads (a reference back to the assigned measure, whose value
// changes as the rule fires cell by cell) decline.
func (c *vecRuleCompiler) cellLeaf(x *sqlast.CellRef) (int, bool) {
	if x.Sheet != "" {
		return 0, false
	}
	mea := c.m.MeasureOrdinal(x.Measure)
	if mea < 0 {
		return 0, false // resolves to a reference sheet
	}
	if mea == c.r.Mea {
		c.fail(ruleVecNoSelfRead)
		return 0, false
	}
	for _, lf := range c.leaves {
		if lf.kind == leafCell && lf.cell == x {
			return lf.ord, true
		}
	}
	if len(x.Quals) != c.m.NDby {
		return 0, false
	}
	kerns := make([]eval.ExprKernel, len(x.Quals))
	for i := range x.Quals {
		q := &x.Quals[i]
		if q.Kind != sqlast.QualPoint || sqlast.HasSubquery(q.Val) {
			return 0, false
		}
		k := eval.CompileExprKernelExt(c.bs, q.Val, c.cvOnly)
		if !k.Valid() {
			return 0, false
		}
		kerns[i] = k
	}
	return c.addLeaf(vecLeaf{kind: leafCell, mea: mea, cell: x, qualKerns: kerns}), true
}

// aggPartOK vets one qualifier expression or argument of an existential
// rule's aggregate, which the batch evaluates once per rule instead of
// once per target: it must be target-independent (no cv()), side-effect
// free (no subquery) and stable across the rule's own writes (no cell
// reads, no reference to the assigned measure).
func (c *vecRuleCompiler) aggPartOK(e sqlast.Expr) bool {
	if e == nil {
		return true
	}
	if sqlast.ContainsCurrentV(e) {
		c.fail(ruleVecNoCvQual)
		return false
	}
	if sqlast.HasSubquery(e) {
		return false
	}
	cells, nested := sqlast.CellRefs(e)
	if len(cells) > 0 || len(nested) > 0 {
		return false
	}
	meaName := c.m.Schema.Cols[c.r.Mea].Name
	for _, cr := range sqlast.ColumnRefs(e) {
		if cr.Name == meaName {
			c.fail(ruleVecNoSelfRead)
			return false
		}
	}
	return true
}

// aggLeaf lowers an aggregate reference. Single-cell rules always qualify
// (their instances are fully computed in scan (I) before any formula
// fires); existential rules qualify only when the aggregate is provably
// identical for every target, so computing it once up front matches the
// per-target row path.
func (c *vecRuleCompiler) aggLeaf(x *sqlast.CellAgg) (int, bool) {
	for _, lf := range c.leaves {
		if lf.kind == leafAgg && lf.agg == x {
			return lf.ord, true
		}
	}
	if c.r.Existential {
		for _, q := range x.Quals {
			if !c.aggPartOK(q.Val) || !c.aggPartOK(q.Pred) ||
				!c.aggPartOK(q.Lo) || !c.aggPartOK(q.Hi) {
				return 0, false
			}
		}
		for _, a := range x.Args {
			if !c.aggPartOK(a) {
				return 0, false
			}
		}
	}
	return c.addLeaf(vecLeaf{kind: leafAgg, agg: x}), true
}

// compileVecRule decides one rule's batch form. The static gates mirror
// the per-cell machinery the batch cannot reproduce: fixpoint iteration
// observes intermediate states per cell, ORDER BY imposes a data-dependent
// firing order, IGNORE NAV rebinds NULL semantics the kernels don't model,
// and cyclic rules run under reference tracking.
func (m *Model) compileVecRule(r *Rule) *vecRuleProg {
	if m.Iterate != nil || m.SeqOrder {
		return &vecRuleProg{note: ruleVecNoIterate}
	}
	if m.IgnoreNav {
		return &vecRuleProg{note: ruleVecNoIgnoreNav}
	}
	if r.sccID >= 0 {
		return &vecRuleProg{note: ruleVecNoCyclic}
	}
	if len(r.OrderBy) > 0 {
		return &vecRuleProg{note: ruleVecNoOrderBy}
	}
	c := &vecRuleCompiler{m: m, r: r, bs: eval.FromSchema(m.Schema), base: m.Schema.Len()}
	_, rhsAggs := sqlast.CellRefs(r.RHS)
	c.qualPad = !r.Existential || len(rhsAggs) > 0
	prog := &vecRuleProg{}
	if r.Existential {
		prog.preds = make([]eval.SelKernel, len(r.Quals))
		for i := range r.Quals {
			q := &r.Quals[i]
			for _, e := range []sqlast.Expr{q.Val, q.Lo, q.Hi} {
				if e != nil && sqlast.HasSubquery(e) {
					return &vecRuleProg{note: ruleVecNoUnsupported}
				}
			}
			if q.Kind == sqlast.QualPred {
				k := eval.CompileSelKernel(c.bs, q.Pred)
				if !k.Valid() {
					return &vecRuleProg{note: ruleVecNoUnsupported}
				}
				prog.preds[i] = k
			}
		}
	}
	rhs := eval.CompileExprKernelExt(c.bs, r.RHS, c.leafOrd)
	if !rhs.Valid() {
		note := c.failNote
		if note == "" {
			note = ruleVecNoUnsupported
		}
		return &vecRuleProg{note: note}
	}
	prog.rhs = rhs
	prog.leaves = c.leaves
	prog.note = ruleVecYes
	return prog
}

// buildVecRules populates the batch-rule registry. Like buildCompiled it
// runs once at the start of Run (after Analyze settles levels and SCCs)
// and is read-only afterwards, so PE goroutines share it without locking.
func (m *Model) buildVecRules() {
	if m.vecRules != nil {
		return
	}
	vr := make(map[*Rule]*vecRuleProg, len(m.Rules))
	for _, r := range m.Rules {
		vr[r] = m.compileVecRule(r)
	}
	m.vecRules = vr
}

// RuleVecNotes returns one EXPLAIN vectorization annotation per rule, in
// rule order. disabled maps a would-be "yes" to "no(disabled)" (the
// executor's ablation flags). Returns nil when the model fails analysis
// (the statement will fail elsewhere with the real error).
func (m *Model) RuleVecNotes(disabled bool) []string {
	if m.levels == nil {
		if err := m.Analyze(); err != nil {
			return nil
		}
	}
	m.buildVecRules()
	notes := make([]string, len(m.Rules))
	for i, r := range m.Rules {
		n := m.vecRules[r].note
		if disabled && n == ruleVecYes {
			n = ruleVecNoDisabled
		}
		notes[i] = n
	}
	return notes
}

// vecProg returns the rule's batch program, or nil before buildVecRules.
func (m *Model) vecProg(r *Rule) *vecRuleProg {
	return m.vecRules[r]
}

// vecRuleReady gates a batch attempt at runtime: the rule must have a
// compiled program, the ablation knob must be off, and the frame must be
// outside the per-cell-only execution modes (reference tracking under
// Auto-Cyclic, inverse maintenance under single-scan, assignment counting).
func (fe *frameEval) vecRuleReady(prog *vecRuleProg) bool {
	return prog != nil && prog.note == ruleVecYes &&
		!fe.opts.DisableVectorizedRules &&
		!fe.trackRefs && fe.maintained == nil && fe.assigned == nil
}

// vecApplyExistential fires an existential rule as one batch.
// handled=false means no state was touched (beyond state-equivalent
// aggregate computation) and the per-cell path must run; handled=true
// means every target cell holds the rule's result (or err aborted the
// statement).
func (fe *frameEval) vecApplyExistential(r *Rule) (bool, error) {
	prog := fe.m.vecProg(r)
	if !fe.vecRuleReady(prog) || fe.f.Len() < fe.opts.vecMinRows() {
		return false, nil
	}
	// Left-side constants, evaluated once exactly like matchTargets; any
	// error falls back so the row path reproduces it with its own label.
	ctx := fe.ctxFor(nil)
	type dimSpec struct {
		val    types.Value
		lo, hi types.Value
	}
	specs := make([]dimSpec, len(r.Quals))
	for i := range r.Quals {
		q := &r.Quals[i]
		switch q.Kind {
		case sqlast.QualPoint:
			v, err := fe.eval(ctx, q.Val)
			if err != nil {
				return false, nil
			}
			specs[i].val = v
		case sqlast.QualRange:
			lo, err := fe.eval(ctx, q.Lo)
			if err != nil {
				return false, nil
			}
			hi, err := fe.eval(ctx, q.Hi)
			if err != nil {
				return false, nil
			}
			specs[i].lo, specs[i].hi = lo, hi
		}
	}
	img, err := fe.frameImage()
	if err != nil {
		return true, err // context cancellation; the scan ticked like the row path
	}
	n := img.NRows

	// Scan (II) as a selection: declarative qualifiers first (the row
	// matcher's own tests over image values, which hold the same bits),
	// then predicate kernels, positions ascending throughout — the row
	// path's target order.
	cur := colstore.GetSel(n)
	defer colstore.PutSel(cur)
	nxt := colstore.GetSel(n)
	defer colstore.PutSel(nxt)
	sel := (*cur)[:0]
rows:
	for ri := 0; ri < n; ri++ {
		for i := range r.Quals {
			q := &r.Quals[i]
			if q.Kind == sqlast.QualStar || q.Kind == sqlast.QualPred {
				continue
			}
			v := img.Cols[fe.m.NPby+i].Value(ri) // interp-ok: qualifier test reuses the row matcher's Equal/Compare verbatim
			switch q.Kind {
			case sqlast.QualPoint:
				if !types.Equal(v, specs[i].val) {
					continue rows
				}
			case sqlast.QualRange:
				lo, hi := specs[i].lo, specs[i].hi
				if v.IsNull() || lo.IsNull() || hi.IsNull() {
					continue rows
				}
				cl := types.Compare(v, lo)
				if cl < 0 || (cl == 0 && !q.LoIncl) {
					continue rows
				}
				ch := types.Compare(v, hi)
				if ch > 0 || (ch == 0 && !q.HiIncl) {
					continue rows
				}
			case sqlast.QualForIn:
				found := false
				for _, fv := range q.forCache {
					if types.Equal(v, fv) {
						found = true
						break
					}
				}
				if !found {
					continue rows
				}
			}
		}
		sel = append(sel, int32(ri))
	}
	for i := range prog.preds {
		if !prog.preds[i].Valid() {
			continue
		}
		res := prog.preds[i].Run(img, nil, nil, sel, (*nxt)[:0])
		*cur, *nxt = *nxt, *cur
		sel = res
	}
	if len(sel) == 0 {
		return true, nil
	}

	// Extension columns. cv() leaves alias the image's dimension columns
	// (each target's cv is its own row); aggregates compute once — their
	// target independence was proven at compile time.
	extTbl := img.WithExtra(make([]*colstore.Column, len(prog.leaves)))
	for li := range prog.leaves {
		lf := &prog.leaves[li]
		switch lf.kind {
		case leafCV:
			extTbl.Cols[lf.ord] = img.Cols[fe.m.NPby+lf.dim]
		case leafPbyCV:
			extTbl.Cols[lf.ord] = colstore.Broadcast(fe.f.pby[lf.dim], n)
		case leafNull:
			extTbl.Cols[lf.ord] = colstore.Broadcast(types.Null, n)
		case leafAgg:
			inst, err := fe.buildInstance(ctx, lf.agg)
			if err != nil {
				return false, nil
			}
			if inst.probe {
				if err := inst.runProbe(fe); err != nil {
					return false, nil
				}
			} else if err := fe.scanFeed([]*aggInstance{inst}); err != nil {
				return false, nil
			}
			extTbl.Cols[lf.ord] = colstore.Broadcast(inst.acc.Result(), n)
		}
	}
	// Cell leaves: qualifier kernels build the key image over the
	// selection, one bulk probe resolves every target's reference, and a
	// gather of the referenced measure becomes the leaf column (a miss
	// gathers NULL — the row path's miss value). Unselected slots stay
	// NULL; the right side never reads them.
	for li := range prog.leaves {
		lf := &prog.leaves[li]
		if lf.kind != leafCell {
			continue
		}
		keyCols := make([]*colstore.Column, len(lf.qualKerns))
		for qi := range lf.qualKerns {
			k := lf.qualKerns[qi]
			if _, ok := k.OutKind(extTbl, nil); !ok || k.MinCols() > len(extTbl.Cols) {
				return false, nil
			}
			vec, kerr := k.Run(extTbl, nil, nil, sel)
			if kerr != nil {
				return false, nil
			}
			keyCols[qi] = vec.Column()
		}
		probed := make([]int32, len(sel))
		fe.f.LookupBatch(keyCols, probed)
		full := make([]int32, n)
		for i := range full {
			full[i] = -1
		}
		for k, p := range sel {
			full[p] = probed[k]
		}
		extTbl.Cols[lf.ord] = colstore.Gather(img.Cols[lf.mea], full)
	}
	if _, ok := prog.rhs.OutKind(extTbl, nil); !ok || prog.rhs.MinCols() > len(extTbl.Cols) {
		return false, nil
	}
	vec, kerr := prog.rhs.Run(extTbl, nil, nil, sel)
	if kerr != nil {
		return false, nil // division by zero: the row path raises it with the rule label
	}
	vals := make([]types.Value, len(sel))
	for k := range vals {
		vals[k] = vec.BoxValue(k)
	}
	// Image row index == frame position (frameImage appends in Each
	// order), so the ascending selection is both the position vector and
	// the per-cell firing order.
	fe.f.SetMeasureBulk(sel, r.Mea, vals)
	return true, nil
}

// vecApplyPoints fires a prepared single-cell rule as one batch over its
// enumerated targets: probe (or UPSERT-append) every target in order,
// gather the target rows into a mini image, run the right-side kernel
// once, write back in target order. handled=false leaves the rule to the
// per-cell loop; UPSERT inserts performed before a fallback are
// state-equivalent (the per-cell path finds and reuses them: fresh rows
// hold NULL measures either way, and only the assigned measure is ever
// written).
func (fe *frameEval) vecApplyPoints(e *lsEntry) (bool, error) {
	r := e.rule
	prog := fe.m.vecProg(r)
	if !fe.vecRuleReady(prog) || len(e.targets) < fe.opts.vecMinRows() {
		return false, nil
	}
	poss := make([]int32, 0, len(e.targets))
	tis := make([]int, 0, len(e.targets))
	seen := make(map[int32]struct{}, len(e.targets))
targets:
	for ti, dims := range e.targets {
		// Trigger condition for promoted dimensions, as in applyPoint.
		for _, p := range fe.opts.Promoted {
			if !types.Equal(dims[p.Dby], fe.f.pby[p.Pby]) {
				continue targets
			}
		}
		pos, ok := fe.f.Lookup(dims)
		if !ok {
			if !r.Upsert {
				continue
			}
			pos = fe.f.Insert(fe.m, dims)
			fe.f.MarkUpdated(pos)
		}
		p32 := int32(pos)
		if _, dup := seen[p32]; dup {
			// Two targets addressing one cell: the per-cell path
			// interleaves the second target's reads with the first's
			// write; keep the rule per cell.
			return false, nil
		}
		seen[p32] = struct{}{}
		poss = append(poss, p32)
		tis = append(tis, ti)
	}
	nb := len(poss)
	if nb == 0 {
		return true, nil
	}
	// The mini image is built after every insert, so a target whose cell
	// reference hits a just-created row reads its NULL measures — exactly
	// what the per-cell path's probe returns at that point (self-reads
	// were rejected at compile time, so no batch read can observe a value
	// this rule writes). Only the schema columns some kernel actually reads
	// are materialized; a rule whose right side is pure cv()/cell/aggregate
	// leaves gathers nothing here.
	ncols := fe.m.Schema.Len()
	refs := prog.rhs.ColRefs(nil)
	for li := range prog.leaves {
		for _, k := range prog.leaves[li].qualKerns {
			refs = k.ColRefs(refs)
		}
	}
	need := make([]bool, ncols)
	var needed []int
	for _, o := range refs {
		if o < ncols && !need[o] {
			need[o] = true
			needed = append(needed, o)
		}
	}
	cols := make([]*colstore.Column, ncols)
	if len(needed) > 0 {
		bufs := make([][]types.Value, len(needed))
		for i := range bufs {
			bufs[i] = make([]types.Value, nb)
		}
		for k, pos := range poss {
			row := fe.f.Row(int(pos))
			for i, c := range needed {
				bufs[i][k] = row[c]
			}
		}
		for i, c := range needed {
			cols[c] = colstore.FromValues(bufs[i])
		}
	}
	mini := &colstore.Table{NRows: nb, Cols: cols}
	extTbl := mini.WithExtra(make([]*colstore.Column, len(prog.leaves)))
	idSel := make([]int32, nb)
	for i := range idSel {
		idSel[i] = int32(i)
	}
	for li := range prog.leaves {
		lf := &prog.leaves[li]
		switch lf.kind {
		case leafCV:
			// cv() comes from the target's values, not the row's: the key
			// encoding normalizes integral floats, so a looked-up row may
			// hold different bits than the target that found it.
			vals := make([]types.Value, nb)
			for k, ti := range tis {
				vals[k] = e.targets[ti][lf.dim]
			}
			extTbl.Cols[lf.ord] = colstore.FromValues(vals)
		case leafPbyCV:
			extTbl.Cols[lf.ord] = colstore.Broadcast(fe.f.pby[lf.dim], nb)
		case leafNull:
			extTbl.Cols[lf.ord] = colstore.Broadcast(types.Null, nb)
		case leafAgg:
			vals := make([]types.Value, nb)
			for k, ti := range tis {
				inst, ok := e.aggMaps[ti][lf.agg]
				if !ok {
					return false, nil
				}
				vals[k] = inst.acc.Result()
			}
			extTbl.Cols[lf.ord] = colstore.FromValues(vals)
		}
	}
	for li := range prog.leaves {
		lf := &prog.leaves[li]
		if lf.kind != leafCell {
			continue
		}
		keyCols := make([]*colstore.Column, len(lf.qualKerns))
		for qi := range lf.qualKerns {
			k := lf.qualKerns[qi]
			if _, ok := k.OutKind(extTbl, nil); !ok || k.MinCols() > len(extTbl.Cols) {
				return false, nil
			}
			vec, kerr := k.Run(extTbl, nil, nil, idSel)
			if kerr != nil {
				return false, nil
			}
			keyCols[qi] = vec.Column()
		}
		probed := make([]int32, nb)
		fe.f.LookupBatch(keyCols, probed)
		vals := make([]types.Value, nb)
		for k, pp := range probed {
			if pp < 0 {
				vals[k] = types.Null
			} else {
				vals[k] = fe.f.Row(int(pp))[lf.mea]
			}
		}
		extTbl.Cols[lf.ord] = colstore.FromValues(vals)
	}
	if _, ok := prog.rhs.OutKind(extTbl, nil); !ok || prog.rhs.MinCols() > len(extTbl.Cols) {
		return false, nil
	}
	vec, kerr := prog.rhs.Run(extTbl, nil, nil, idSel)
	if kerr != nil {
		return false, nil
	}
	vals := make([]types.Value, nb)
	for k := range vals {
		vals[k] = vec.BoxValue(k)
	}
	fe.f.SetMeasureBulk(poss, r.Mea, vals)
	return true, nil
}
