package core

import (
	"sqlsheet/internal/colstore"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/types"
)

// Batch partition scan: scanFeed's per-row loop — match every row against
// every scan-mode aggregate instance, then evaluate the instance's argument
// expressions through compiled closures — is replaced, when every instance
// has a vectorized form, by one pass that snapshots the partition into a
// columnar image (colstore.Builder) and then, per instance:
//
//  1. builds a selection of matching image rows from the instance's
//     declarative qualifier descriptors (the same types.Equal / NULL-
//     rejecting types.Compare tests the closure matchers run, evaluated on
//     values read back from the image — which holds the same bits);
//  2. runs one compute kernel per aggregate argument over the selection
//     (eval.CompileExprKernel — the same kernels the executor's projection
//     and group-by use);
//  3. bulk-feeds the argument vectors into a single-group batch accumulator
//     (eval.AggBatch) and unboxes it into the instance's ordinary Agg, so
//     result finalization and single-scan inverse maintenance run unchanged.
//
// Rows feed in insertion order, so accumulator state — float addition order
// included — is bit-identical to the row scan's. The decision is
// all-or-nothing over the instance list: one predicate qualifier, cv()-
// bearing argument or batchless aggregate keeps the whole scan on the row
// path, and on the kernel domain the only runtime error is division by
// zero, raised with the row path's exact message. RunOptions.
// DisableVectorizedScan (wired from the executor's DisableVectorizedExec)
// ablates the layer.

// defaultVecMinRows keeps tiny batches on the row path: building the
// columnar image costs one extra pass over the rows, which only pays off
// once the kernel loops have enough rows to amortize it. Both batch
// engines — the aggregate scan here and the rule kernels in vecrules.go —
// share the cutoff, overridable via RunOptions.VecMinRows.
const defaultVecMinRows = 64

// vecMinRows resolves the batch-size cutoff for this run.
func (opts *RunOptions) vecMinRows() int {
	if opts.VecMinRows > 0 {
		return opts.VecMinRows
	}
	return defaultVecMinRows
}

// vecQual kinds. vqOpaque is the zero value: a dimension only the closure
// matcher can test.
const (
	vqOpaque = iota
	vqStar
	vqPoint
	vqRange
)

// vecQual is the declarative form of one dimension qualifier: the kind plus
// the constants the closure matcher captured at instance-build time.
type vecQual struct {
	kind           int
	val            types.Value // vqPoint
	lo, hi         types.Value // vqRange
	loIncl, hiIncl bool
}

// vecScanFeed is the batch form of scanFeed. handled=false means no
// instance state was touched and the caller must run the row scan;
// handled=true means every instance's accumulator holds the scan's result
// (or err aborted the statement). Instances arrive freshly built with empty
// accumulators (scanFeed's contract), so replacing inst.acc with the
// unboxed batch state is exact.
func (fe *frameEval) vecScanFeed(insts []*aggInstance) (bool, error) {
	if fe.opts.DisableVectorizedScan || fe.trackRefs || fe.m.IgnoreNav || fe.f.Len() < fe.opts.vecMinRows() {
		return false, nil
	}
	kerns := make([][]eval.ExprKernel, len(insts))
	for i, inst := range insts {
		for _, q := range inst.vq {
			if q.kind == vqOpaque {
				return false, nil
			}
		}
		if inst.star {
			continue
		}
		ks := make([]eval.ExprKernel, len(inst.args))
		for j, a := range inst.args {
			// Arguments reading cv(), cells or subqueries have no kernel,
			// so their row-path evaluation order (and errors) are preserved.
			k := eval.CompileExprKernel(fe.bs, a)
			if !k.Valid() {
				return false, nil
			}
			ks[j] = k
		}
		kerns[i] = ks
	}
	img, err := fe.frameImage()
	if err != nil {
		return true, err
	}
	// Argument vector kinds are a property of the image; resolve them and
	// every batch accumulator before touching any instance, so a late
	// fallback leaves all accumulators untouched for the row scan.
	states := make([]eval.AggBatch, len(insts))
	for i, inst := range insts {
		var kinds []types.Kind
		if !inst.star {
			kinds = make([]types.Kind, len(kerns[i]))
			for j, k := range kerns[i] {
				kind, ok := k.OutKind(img, nil)
				if !ok || k.MinCols() > len(img.Cols) {
					return false, nil
				}
				kinds[j] = kind
			}
		}
		st, ok := eval.NewAggBatch(inst.node.Func, inst.star, kinds)
		if !ok {
			return false, nil
		}
		states[i] = st
	}
	n := img.NRows
	selBuf := colstore.GetSel(n)
	defer colstore.PutSel(selBuf)
	zeros := make([]int32, n) // group-id vector: every selected row feeds group 0
	for i, inst := range insts {
		sel := fe.vecMatchSel(img, inst, (*selBuf)[:0])
		*selBuf = sel[:0]
		st := states[i]
		st.Grow(1)
		gids := zeros[:len(sel)]
		if inst.star {
			st.Feed(gids, nil)
		} else {
			vecs := make([]*eval.ExprVec, len(kerns[i]))
			for j := range kerns[i] {
				v, kerr := kerns[i][j].Run(img, nil, nil, sel)
				if kerr != nil {
					return true, kerr
				}
				vecs[j] = v
			}
			st.Feed(gids, vecs)
		}
		inst.acc = st.Unbox(0)
	}
	return true, nil
}

// frameImage snapshots the partition's current rows into a columnar image in
// one scan, ticking per row exactly like the row scan it replaces. The
// snapshot is cached on the frame: a later call re-extracts only the columns
// written since (imgDirty), so a sequence of vectorized rules pays the full
// row-to-column conversion once, then one column per assigned measure. The
// returned table owns its Cols slice but shares the cached columns; callers
// treat images as immutable (WithExtra copies before extending).
func (fe *frameEval) frameImage() (*colstore.Table, error) {
	f := fe.f
	ncols := fe.m.Schema.Len()
	if f.img == nil || f.imgRows != f.Len() || len(f.img) != ncols {
		b := colstore.NewBuilder(ncols)
		var ferr error
		f.Each(func(pos int, row types.Row) bool {
			if ferr = fe.tick(); ferr != nil {
				return false
			}
			b.Append(row)
			return true
		})
		if ferr != nil {
			return nil, ferr
		}
		t := b.Build()
		f.img = append([]*colstore.Column(nil), t.Cols...)
		f.imgRows = t.NRows
		f.imgDirty = make([]bool, ncols)
		return t, nil
	}
	var dirty []int
	for c, d := range f.imgDirty {
		if d {
			dirty = append(dirty, c)
		}
	}
	if len(dirty) > 0 {
		vals := make([][]types.Value, len(dirty))
		for i := range vals {
			vals[i] = make([]types.Value, 0, f.imgRows)
		}
		var ferr error
		f.Each(func(pos int, row types.Row) bool {
			if ferr = fe.tick(); ferr != nil {
				return false
			}
			for i, c := range dirty {
				vals[i] = append(vals[i], row[c])
			}
			return true
		})
		if ferr != nil {
			return nil, ferr
		}
		for i, c := range dirty {
			f.img[c] = colstore.FromValues(vals[i])
			f.imgDirty[c] = false
		}
	} else {
		// Cache hit: keep the per-row tick cadence (cancellation polls) of
		// the scan this replaces.
		for i := 0; i < f.imgRows; i++ {
			if err := fe.tick(); err != nil {
				return nil, err
			}
		}
	}
	cols := make([]*colstore.Column, ncols)
	copy(cols, f.img)
	return &colstore.Table{NRows: f.imgRows, Cols: cols}, nil
}

// vecMatchSel appends the image rows matching inst's dimension qualifiers to
// sel, positions ascending. The tests are the scan matchers' own — types.
// Equal for points, the NULL-rejecting types.Compare interval test for
// ranges — evaluated on values read back from the image, which hold the same
// bits the row scan saw; matching is therefore exact, including NULL = NULL
// points, NaN bounds and cross-kind numeric comparisons.
func (fe *frameEval) vecMatchSel(img *colstore.Table, inst *aggInstance, sel []int32) []int32 {
	n := img.NRows
	npby := fe.m.NPby
outer:
	for r := 0; r < n; r++ {
		for di := range inst.vq {
			q := &inst.vq[di]
			if q.kind == vqStar {
				continue
			}
			v := img.Cols[npby+di].Value(r) // interp-ok: dimension qualifier test reuses the row matcher's Equal/Compare verbatim
			switch q.kind {
			case vqPoint:
				if !types.Equal(v, q.val) {
					continue outer
				}
			case vqRange:
				if v.IsNull() || q.lo.IsNull() || q.hi.IsNull() {
					continue outer
				}
				cl := types.Compare(v, q.lo)
				if cl < 0 || (cl == 0 && !q.loIncl) {
					continue outer
				}
				ch := types.Compare(v, q.hi)
				if ch > 0 || (ch == 0 && !q.hiIncl) {
					continue outer
				}
			}
		}
		sel = append(sel, int32(r))
	}
	return sel
}
