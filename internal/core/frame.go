package core

import (
	"sqlsheet/internal/blockstore"
	"sqlsheet/internal/btree"
	"sqlsheet/internal/colstore"
	"sqlsheet/internal/types"
)

// PartitionSet is the paper's two-level hash access structure (§5): rows are
// hash partitioned on the PBY columns into first-level buckets; within each
// bucket a hash table on the DBY columns addresses individual cells. Each
// bucket owns one row store, so bounding the store's memory models the
// paper's "fit the second-level hash tables of each first-level partition in
// memory" regime, with spilling beyond it.
type PartitionSet struct {
	model   *Model
	buckets []*bucket
	// shareRows records that the structure was built with
	// BuildOptions.ShareRows: stored rows are shared with the input
	// relation and Rows hands them out by reference. Carried across
	// CloneForReuse so reused structures keep the fast path.
	shareRows bool
}

type bucket struct {
	store  blockstore.Store
	frames []*Frame          // spreadsheet partitions, in first-seen order
	byKey  map[string]*Frame // PBY key -> frame
}

// Frame is one spreadsheet partition: all rows sharing the PBY values.
type Frame struct {
	b   *bucket
	pby []types.Value
	// ids holds the partition's rows in insertion order.
	ids []blockstore.RowID
	// index maps the DBY key to the row's position in ids. Records within a
	// bucket stay clustered per frame, making partition scans and probes
	// cheap (the paper clusters hash buckets on PBY+DBY for the same
	// reason). Exactly one of index (hash) and bidx (B-tree, the paper's
	// abandoned first implementation, kept as an ablation) is non-nil.
	index map[string]int
	bidx  *btree.Tree
	// present snapshots the keys that existed before formula execution
	// (the IS PRESENT predicate).
	present map[string]bool
	// updated records positions assigned or created by a rule
	// (RETURN UPDATED ROWS).
	updated map[int]bool

	// refFlags are the Auto-Cyclic convergence flags: two generations of
	// per-cell "referenced" marks, alternated between iterations so that
	// clearing is free (§5).
	refFlags [2]map[int64]bool

	// keyScratch is the frame's reusable DBY-key encoding buffer. Frames are
	// evaluated by exactly one PE at a time, and no key encoding happens
	// re-entrantly, so a single buffer makes steady-state cell probes
	// allocation-free.
	keyScratch []byte

	// img caches the frame's columnar snapshot (frameImage) so consecutive
	// vectorized rules pay only for the columns written between them: every
	// measure write marks its column in imgDirty, an Insert drops the cache
	// (the row set changed), and the next snapshot rebuilds just the dirty
	// columns. Single-PE frame ownership (see keyScratch) makes the cache
	// race-free.
	img      []*colstore.Column
	imgRows  int
	imgDirty []bool
}

// imgMark records that a column's stored values changed since the cached
// snapshot was taken.
func (f *Frame) imgMark(col int) {
	if f.img != nil && col < len(f.imgDirty) {
		f.imgDirty[col] = true
	}
}

// imgDrop invalidates the cached snapshot entirely (row set changed).
func (f *Frame) imgDrop() {
	f.img = nil
	f.imgDirty = nil
}

// StoreFactory builds the row store for one first-level bucket.
type StoreFactory func() blockstore.Store

// ChooseBuckets picks the number of first-level partitions from the
// estimated data size, the per-bucket memory budget and the parallel degree
// ("the number of first level partitions is chosen based on estimated size
// of data ... and the amount of available memory").
func ChooseBuckets(nRows int, avgRowBytes, budgetBytes int64, dop int) int {
	n := dop
	if n < 1 {
		n = 1
	}
	if budgetBytes > 0 && avgRowBytes > 0 {
		need := int((int64(nRows)*avgRowBytes + budgetBytes - 1) / budgetBytes)
		if need > n {
			n = need
		}
	}
	if n > 1024 {
		n = 1024
	}
	return n
}

// MarkUpdated records that a rule assigned or created the row at pos.
func (f *Frame) MarkUpdated(pos int) {
	if f.updated == nil {
		f.updated = make(map[int]bool)
	}
	f.updated[pos] = true
}

// BuildPartitions loads rows (working-schema layout) into the two-level
// structure. The paper requires DBY columns to uniquely identify a row
// within each partition; duplicates are an error.
//
// Rows are appended to each bucket's store clustered by frame ("the hash
// access structure maintains records within a hash bucket clustered on PBY
// and DBY column values"), so evaluating one spreadsheet partition touches
// a contiguous run of blocks — the locality Fig. 5 depends on.
func BuildPartitions(m *Model, rows []types.Row, nBuckets int, newStore StoreFactory) (*PartitionSet, error) {
	return buildPartitions(m, rows, nBuckets, newStore, false)
}

// BuildPartitionsBTree builds the structure with B-tree second-level
// indexes instead of hash tables (access-path ablation).
func BuildPartitionsBTree(m *Model, rows []types.Row, nBuckets int, newStore StoreFactory) (*PartitionSet, error) {
	return buildPartitions(m, rows, nBuckets, newStore, true)
}

func buildPartitions(m *Model, rows []types.Row, nBuckets int, newStore StoreFactory, useBTree bool) (*PartitionSet, error) {
	return BuildPartitionsOpts(m, rows, nBuckets, newStore, BuildOptions{UseBTree: useBTree})
}

func joinNames(ns []string) string {
	out := ""
	for i, n := range ns {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func bucketOf(key []byte, n int) int {
	return int(hashBytes(key)) % n
}

// PartitionBucket exposes the first-level bucket of an encoded PBY key
// (types.AppendKey bytes) among n buckets. The scatter-gather coordinator
// uses it to reproduce the local bucket/frame discovery order when merging
// worker results, so distributed row order matches a single-process run.
func PartitionBucket(key []byte, n int) int {
	return bucketOf(key, n)
}

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// hashExtend folds more bytes into a running FNV-1a hash. The build path
// extends the hash over each key segment as it is encoded, so bucket
// selection never re-traverses the key bytes.
func hashExtend(h uint32, b []byte) uint32 {
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= fnvPrime32
	}
	return h
}

// hashBytes gives the second-level hash ordering of an encoded DBY key
// (FNV-1a, computed inline so per-row hashing does not allocate a hasher).
func hashBytes(key []byte) uint32 {
	return hashExtend(fnvOffset32, key)
}

// HashValue exposes the bucket hash for a single dimension value; the
// parallel executor uses it for the per-PE formula trigger condition
// (WHERE HASH(p) = hash_value_of_P_for_this_PE).
func HashValue(v types.Value, n int) int {
	return bucketOf(types.AppendKey(nil, v), n)
}

// dbyKey builds the second-level hash key from a working-schema row.
func dbyKey(m *Model, row types.Row) string {
	buf := make([]byte, 0, 16*m.NDby)
	for d := 0; d < m.NDby; d++ {
		buf = types.AppendKey(buf, row[m.NPby+d])
	}
	return string(buf)
}

// keyOf builds the second-level key directly from dimension values.
func keyOf(vals []types.Value) string {
	buf := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		buf = types.AppendKey(buf, v)
	}
	return string(buf)
}

// Buckets returns the first-level partitions (for parallel execution).
func (ps *PartitionSet) Buckets() []*bucket { return ps.buckets }

// Rows gathers every row back out in deterministic order: bucket index,
// frame discovery order, row insertion order. updatedOnly restricts the
// output to rows assigned or created by rules (RETURN UPDATED ROWS).
func (ps *PartitionSet) Rows(updatedOnly bool) []types.Row {
	var out []types.Row
	for _, b := range ps.buckets {
		for _, f := range b.frames {
			for pos, id := range f.ids {
				if updatedOnly && !f.updated[pos] {
					continue
				}
				r := b.store.Get(id)
				if !ps.shareRows {
					// Spill-capable stores may reuse row storage after
					// Close; hand out private copies.
					r = r.Clone()
				}
				out = append(out, r)
			}
		}
	}
	return out
}

// Stats sums the I/O statistics of every bucket store.
func (ps *PartitionSet) Stats() blockstore.Stats {
	var s blockstore.Stats
	for _, b := range ps.buckets {
		s.Add(b.store.Stats())
	}
	return s
}

// Close releases every bucket store.
func (ps *PartitionSet) Close() error {
	var err error
	for _, b := range ps.buckets {
		if cerr := b.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// --- Frame operations ---

// Len returns the number of rows currently in the frame.
func (f *Frame) Len() int { return len(f.ids) }

// PBY returns the partition's PBY values.
func (f *Frame) PBY() []types.Value { return f.pby }

// Row returns the row at position pos. The returned slice must not be
// retained across other frame operations.
func (f *Frame) Row(pos int) types.Row { return f.b.store.Get(f.ids[pos]) }

// lookupKey probes the second-level index with an encoded DBY key.
func (f *Frame) lookupKey(key []byte) (int, bool) {
	if f.index != nil {
		pos, ok := f.index[string(key)] // no-alloc map probe
		return pos, ok
	}
	return f.bidx.Get(string(key))
}

// putKey registers a key at a row position.
func (f *Frame) putKey(key string, pos int) {
	if f.index != nil {
		f.index[key] = pos
		return
	}
	f.bidx.Put(key, pos)
}

// dimsKey encodes dimension values into the frame's scratch buffer. The
// result is only valid until the next dimsKey call; probe paths convert it
// inside map index expressions, which the compiler keeps allocation-free.
func (f *Frame) dimsKey(dims []types.Value) []byte {
	buf := f.keyScratch[:0]
	for _, v := range dims {
		buf = types.AppendKey(buf, v)
	}
	f.keyScratch = buf
	return buf
}

// Lookup probes the second-level index with dimension values.
func (f *Frame) Lookup(dims []types.Value) (pos int, ok bool) {
	return f.lookupKey(f.dimsKey(dims))
}

// LookupBatch probes the second-level index for every row of a columnar key
// image: keyCols holds one column per DBY dimension, out receives the frame
// position of each row's cell or -1 on a miss. The key bytes come from
// Column.AppendKey — byte-identical to the types.AppendKey encoding Lookup
// uses, including integral-float normalization — through one reused scratch
// buffer, so the whole batch is a run of no-alloc map probes: the paper's
// F1 unfolding done once per rule instead of once per cell.
func (f *Frame) LookupBatch(keyCols []*colstore.Column, out []int32) {
	n := len(out)
	for r := 0; r < n; r++ {
		buf := f.keyScratch[:0]
		for _, c := range keyCols {
			buf = c.AppendKey(buf, r)
		}
		f.keyScratch = buf
		if pos, ok := f.lookupKey(buf); ok {
			out[r] = int32(pos)
		} else {
			out[r] = -1
		}
	}
}

// WasPresent reports whether the cell existed before the spreadsheet ran.
func (f *Frame) WasPresent(dims []types.Value) bool {
	return f.present[string(f.dimsKey(dims))]
}

// SetMeasure assigns one measure of the row at pos and reports whether the
// stored value changed.
func (f *Frame) SetMeasure(pos, col int, v types.Value) bool {
	id := f.ids[pos]
	row := f.b.store.Get(id)
	old := row[col]
	if old.K == v.K && types.Equal(old, v) {
		return false
	}
	nr := row.Clone()
	nr[col] = v
	f.b.store.Set(id, nr)
	f.imgMark(col)
	return true
}

// SetMeasureBulk writes one measure column for a batch of frame positions:
// the columnar writeback of a vectorized rule. Positions are written in
// slice order — the same cell order the per-cell path produces — with the
// same mark-updated-then-compare-then-clone semantics as a single
// assignment.
func (f *Frame) SetMeasureBulk(pos []int32, col int, vals []types.Value) {
	for i, p := range pos {
		f.MarkUpdated(int(p))
		f.SetMeasure(int(p), col, vals[i])
	}
}

// Insert adds a new row for the given dimension values: PBY columns take
// the partition's values, DBY columns the target values, measures NULL.
// It returns the new row's position.
func (f *Frame) Insert(m *Model, dims []types.Value) int {
	row := make(types.Row, m.Schema.Len())
	copy(row, f.pby)
	copy(row[m.NPby:], dims)
	id := f.b.store.Append(row)
	pos := len(f.ids)
	f.ids = append(f.ids, id)
	f.putKey(keyOf(dims), pos)
	f.imgDrop()
	return pos
}

// Each scans the frame's rows in insertion order. The callback's row must
// not be retained. Rows inserted during the scan are not visited.
func (f *Frame) Each(fn func(pos int, row types.Row) bool) {
	n := len(f.ids)
	for pos := 0; pos < n; pos++ {
		if !fn(pos, f.b.store.Get(f.ids[pos])) {
			return
		}
	}
}

// --- convergence flags (Auto-Cyclic) ---

func (f *Frame) flagKey(pos, mea int) int64 { return int64(pos)<<16 | int64(mea) }

// MarkReferenced records that a cell's measure was read in generation g.
func (f *Frame) MarkReferenced(g int, pos, mea int) {
	if f.refFlags[g] == nil {
		f.refFlags[g] = make(map[int64]bool)
	}
	f.refFlags[g][f.flagKey(pos, mea)] = true
}

// Referenced reports whether the cell's measure was read in generation g.
func (f *Frame) Referenced(g int, pos, mea int) bool {
	return f.refFlags[g][f.flagKey(pos, mea)]
}

// ClearFlags resets generation g (the paper alternates two flags so only
// the inactive generation needs clearing).
func (f *Frame) ClearFlags(g int) { f.refFlags[g] = nil }
