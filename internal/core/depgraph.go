package core

import (
	"fmt"
)

// buildDepGraph forms the paper's "->" relation: edges[j] lists the rules i
// such that rule i depends on rule j's output (j -> i). A rule F1 depends on
// F2 when a cell F2 writes may be read by F1:
//
//   - F1 reads measure m over rectangle R, F2 writes m over rectangle L, and
//     R intersects L; or
//   - F2 upserts (creates rows) and F1 scans (aggregate or existential left
//     side) a rectangle intersecting F2's left side — new rows change
//     aggregate inputs and existential target sets even across measures.
//
// Complex qualifiers degrade to All bounds, over-estimating the relation;
// the paper accepts the resulting spurious cycles and handles them with the
// Auto-Cyclic algorithm.
func (m *Model) buildDepGraph() {
	n := len(m.Rules)
	m.depEdges = make([][]int, n)
	for i, r1 := range m.Rules {
		deps := make(map[int]bool)
		for j, r2 := range m.Rules {
			if i == j && len(r1.OrderBy) > 0 {
				// An explicit ORDER BY resolves the self-reference
				// ambiguity the paper describes; the rule runs as an
				// ordered existential scan rather than via the cyclic
				// algorithm.
				continue
			}
			if m.dependsOn(r1, r2) {
				deps[j] = true
			}
		}
		for j := range deps {
			m.depEdges[i] = append(m.depEdges[i], j)
		}
		sortInts(m.depEdges[i])
	}
}

// dependsOn reports whether r1 must be evaluated after r2 (r2 -> r1).
func (m *Model) dependsOn(r1, r2 *Rule) bool {
	for _, a := range r1.reads {
		if a.refIdx >= 0 {
			continue // reference sheets are read-only snapshots
		}
		sameMeasure := a.mea == r2.Mea
		scanRead := a.agg != nil
		if sameMeasure && rectsIntersect(a.rect, r2.lhsRect) {
			return true
		}
		if r2.Upsert && scanRead && rectsIntersect(a.rect, r2.lhsRect) {
			return true
		}
	}
	// An existential target set is defined by which rows exist, so row
	// creation feeds every existential rule whose left side may match.
	if r1.Existential && r2.Upsert && rectsIntersect(r1.lhsRect, r2.lhsRect) {
		return true
	}
	return false
}

// sortInts is a tiny insertion sort (edge lists are short).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// stepKind distinguishes plain levels from cyclic groups.
type stepKind uint8

const (
	stepLevel stepKind = iota // independent rules, one shared scan
	stepSCC                   // strongly connected rules, iterated to fixpoint
)

// level is one execution step produced by the analysis.
type level struct {
	kind  stepKind
	rules []int // rule indices, in original formula order
}

// Analyze orders the rules for execution: dependency graph, SCC detection,
// and scan-minimizing level generation (GenLevels in the paper). It must be
// called before Run and after any pruning/rewriting.
func (m *Model) Analyze() error {
	m.buildDepGraph()
	m.levels = nil
	m.cyclic = false
	if m.SeqOrder {
		m.analyzeSequential()
		return nil
	}
	return m.genLevels()
}

// Levels exposes the analysis result for EXPLAIN and tests: one slice of
// rule indices per execution step, plus whether the step iterates (SCC).
func (m *Model) Levels() (steps [][]int, cyclicStep []bool) {
	for _, l := range m.levels {
		steps = append(steps, append([]int(nil), l.rules...))
		cyclicStep = append(cyclicStep, l.kind == stepSCC)
	}
	return steps, cyclicStep
}

// Cyclic reports whether the analysis found (potentially) cyclic rules.
func (m *Model) Cyclic() bool { return m.cyclic }

// isScanRule classifies rules the way GenLevels needs: a rule requires a
// scan when it computes a range aggregate or has an existential left side;
// everything else is a single_ref.
func (m *Model) isScanRule(i int) bool {
	r := m.Rules[i]
	if r.Existential {
		return true
	}
	for _, a := range r.reads {
		if a.scan {
			return true
		}
	}
	return false
}

// genLevels implements the paper's GenLevels: repeatedly take the sources of
// the remaining graph; if any of them are single_refs, emit only those
// (delaying scans so independent scans share a level); otherwise emit all
// the (scan) sources. When no source exists the remaining front is cyclic:
// emit its source SCC as an iterated group.
func (m *Model) genLevels() error {
	n := len(m.Rules)
	remaining := make(map[int]bool, n)
	for i := range m.Rules {
		remaining[i] = true
	}
	// sccOf assigns every rule its strongly connected component; components
	// of size >1 (or with a self-loop) are cyclic.
	sccs := tarjanSCC(n, m.depEdges)
	selfLoop := make([]bool, n)
	for i, deps := range m.depEdges {
		for _, j := range deps {
			if j == i {
				selfLoop[i] = true
			}
		}
	}
	sccOf := make([]int, n)
	sccSize := make([]int, len(sccs))
	for id, comp := range sccs {
		sccSize[id] = len(comp)
		for _, i := range comp {
			sccOf[i] = id
		}
	}
	for i := range m.Rules {
		if sccSize[sccOf[i]] > 1 || selfLoop[i] {
			m.Rules[i].sccID = sccOf[i]
			m.cyclic = true
		} else {
			m.Rules[i].sccID = -1
		}
	}

	for len(remaining) > 0 {
		// Sources: remaining rules with no dependency on another remaining
		// rule outside their own SCC... plain sources first.
		var sources []int
		for i := range remaining {
			ok := true
			for _, j := range m.depEdges[i] {
				if remaining[j] && j != i {
					ok = false
					break
				}
			}
			if ok && m.Rules[i].sccID < 0 {
				sources = append(sources, i)
			}
		}
		sortInts(sources)
		if len(sources) > 0 {
			var singles, scans []int
			for _, i := range sources {
				if m.isScanRule(i) {
					scans = append(scans, i)
				} else {
					singles = append(singles, i)
				}
			}
			if len(singles) > 0 {
				m.appendLevel(stepLevel, singles)
				for _, i := range singles {
					delete(remaining, i)
				}
			} else {
				m.appendLevel(stepLevel, scans)
				for _, i := range scans {
					delete(remaining, i)
				}
			}
			continue
		}
		// No acyclic source: find a source SCC (all external deps done).
		sccReady := -1
		for i := range remaining {
			id := m.Rules[i].sccID
			if id < 0 {
				continue
			}
			ready := true
			for _, k := range sccs[id] {
				for _, j := range m.depEdges[k] {
					if remaining[j] && m.Rules[j].sccID != id {
						ready = false
						break
					}
				}
				if !ready {
					break
				}
			}
			if ready && (sccReady < 0 || id < sccReady) {
				sccReady = id
			}
		}
		if sccReady < 0 {
			return fmt.Errorf("spreadsheet analysis: dependency graph is stuck (internal error)")
		}
		comp := append([]int(nil), sccs[sccReady]...)
		sortInts(comp)
		m.appendLevel(stepSCC, comp)
		for _, i := range comp {
			delete(remaining, i)
		}
	}
	for li, l := range m.levels {
		for _, i := range l.rules {
			m.Rules[i].level = li
		}
	}
	return nil
}

func (m *Model) appendLevel(kind stepKind, rules []int) {
	m.levels = append(m.levels, level{kind: kind, rules: rules})
}

// analyzeSequential groups lexically consecutive independent rules into
// shared-scan levels. Dependency edges always point from earlier to later
// formulas, so the graph is acyclic by construction; iteration (ITERATE) is
// handled by the executor, not the level structure.
func (m *Model) analyzeSequential() {
	var cur []int
	flush := func() {
		if len(cur) > 0 {
			m.appendLevel(stepLevel, cur)
			cur = nil
		}
	}
	dependsOnCur := func(i int) bool {
		for _, j := range m.depEdges[i] {
			for _, k := range cur {
				if j == k {
					return true
				}
			}
		}
		return false
	}
	for i := range m.Rules {
		if dependsOnCur(i) {
			flush()
		}
		cur = append(cur, i)
	}
	flush()
	for li, l := range m.levels {
		for _, i := range l.rules {
			m.Rules[i].level = li
			m.Rules[i].sccID = -1
		}
	}
}
