package core

import (
	"sqlsheet/internal/sqlast"
)

// canSingleScan decides whether the cross-level single-scan optimization
// applies (§5): "In the absence of existential formulas, and presence of
// only those aggregate functions for which an inverse is defined, the
// aggregates for all the levels are computed in a single scan" and then
// maintained incrementally as formulas update cells. We additionally
// require statically-known targets — a left-side value or aggregate bound
// that reads cells (nested cell references, subqueries) would make upfront
// instance construction see pre-execution state.
func (m *Model) canSingleScan() bool {
	if m.SeqOrder || m.Iterate != nil || m.cyclic {
		return false
	}
	for _, r := range m.Rules {
		if r.Existential {
			return false
		}
		dynamic := false
		check := func(e sqlast.Expr) {
			if e == nil {
				return
			}
			cells, aggsIn := sqlast.CellRefs(e)
			if len(cells) > 0 || len(aggsIn) > 0 || sqlast.HasSubquery(e) {
				dynamic = true
			}
		}
		for _, q := range r.Quals {
			check(q.Val)
			if q.Kind == sqlast.QualForIn && q.ForSub != nil {
				// FOR-IN subqueries are materialized before execution, so
				// they are static by run time.
				continue
			}
		}
		_, cellAggs := sqlast.CellRefs(r.RHS)
		for _, ca := range cellAggs {
			switch ca.Func {
			case "min", "max":
				return false // no inverse
			}
			for _, q := range ca.Quals {
				check(q.Val)
				check(q.Pred)
				check(q.Lo)
				check(q.Hi)
			}
		}
		if dynamic {
			return false
		}
	}
	return true
}

// runSingleScan executes all acyclic levels with one partition scan: every
// aggregate instance of every level is built and filled up front, then
// registered for inverse maintenance so that formula writes and upserts
// keep later levels' aggregates current without rescanning.
func (fe *frameEval) runSingleScan() error {
	type levelEntries struct{ ls []*lsEntry }
	var all []levelEntries
	var scanInsts []*aggInstance
	fe.maintained = nil
	for _, lv := range fe.m.levels {
		var le levelEntries
		for _, ri := range lv.rules {
			r := fe.m.Rules[ri]
			entry, err := fe.prepareLS(r)
			if err != nil {
				return err
			}
			le.ls = append(le.ls, entry)
			for _, am := range entry.aggMaps {
				for _, inst := range am {
					if inst.probe {
						if err := inst.runProbe(fe); err != nil {
							return err
						}
					} else {
						scanInsts = append(scanInsts, inst)
					}
					fe.maintained = append(fe.maintained, inst)
				}
			}
		}
		all = append(all, le)
	}
	if len(scanInsts) > 0 {
		if err := fe.scanFeed(scanInsts); err != nil {
			return err
		}
	}
	defer func() { fe.maintained = nil }()
	for _, le := range all {
		for _, e := range le.ls {
			// Agg-free models (maintained stays nil) batch exactly like
			// runRules; any maintained aggregate forces the per-cell path so
			// inverse maintenance observes every write.
			handled, err := fe.vecApplyPoints(e)
			if err != nil {
				return err
			}
			fe.opts.Stats.countRule(handled)
			if handled {
				continue
			}
			for ti, dims := range e.targets {
				fe.curAggs = e.aggMaps[ti]
				if err := fe.applyPoint(e.rule, dims, e.ctxs[ti]); err != nil {
					return err
				}
			}
		}
	}
	fe.curAggs = nil
	return nil
}
