package core

import (
	"fmt"

	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// runSequential executes a SEQUENTIAL ORDER (or ITERATE) spreadsheet:
// formulas run in lexical order — grouped into shared-scan levels of
// consecutive independent formulas by the analysis — optionally repeated
// ITERATE(n) times with an UNTIL condition checked after each pass.
func (fe *frameEval) runSequential() error {
	iterN := 1
	var until sqlast.Expr
	if it := fe.m.Iterate; it != nil {
		iterN = it.N
		until = it.Until
	}
	var prevNodes []*sqlast.Previous
	if until != nil {
		sqlast.WalkExpr(until, func(e sqlast.Expr) bool {
			if p, ok := e.(*sqlast.Previous); ok {
				prevNodes = append(prevNodes, p)
			}
			return true
		})
	}
	for iter := 0; iter < iterN; iter++ {
		// Cancellation point: ITERATE counts can be enormous (the clause
		// allows ITERATE(1e9)), so every pass polls the context.
		if err := fe.opts.ctxErr(); err != nil {
			return err
		}
		if until != nil {
			if err := fe.snapshotPrevious(prevNodes); err != nil {
				return err
			}
		}
		for _, lv := range fe.m.levels {
			if err := fe.runRules(lv.rules); err != nil {
				return err
			}
		}
		if until != nil {
			stop, err := fe.evalUntil(until)
			if err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
	}
	return nil
}

// snapshotPrevious records, at the start of an iteration, the values that
// previous(cell) must report inside the UNTIL condition.
func (fe *frameEval) snapshotPrevious(nodes []*sqlast.Previous) error {
	if fe.previousVals == nil {
		fe.previousVals = make(map[*sqlast.Previous]types.Value, len(nodes))
	}
	ctx := fe.ctxFor(nil)
	for _, p := range nodes {
		v, err := fe.evalCellRef(ctx, p.Cell)
		if err != nil {
			return fmt.Errorf("previous(%s): %v", p.Cell, err)
		}
		fe.previousVals[p] = v
	}
	return nil
}

// evalUntil evaluates the UNTIL condition after an iteration. Cells read
// directly see post-iteration values; previous() sees the snapshot.
func (fe *frameEval) evalUntil(until sqlast.Expr) (bool, error) {
	ctx := fe.ctxFor(nil)
	ctx.Previous = func(p *sqlast.CellRef) (types.Value, error) {
		for node, v := range fe.previousVals {
			if node.Cell == p {
				return v, nil
			}
		}
		return types.Null, fmt.Errorf("previous(%s): no snapshot (internal)", p)
	}
	ok, err := eval.EvalBool(ctx, until) // interp-ok: once per ITERATE pass, not per cell
	if err != nil {
		return false, fmt.Errorf("UNTIL: %v", err)
	}
	return ok, nil
}
