package core

import (
	"strings"
	"testing"

	"sqlsheet/internal/types"
)

func TestQualifiedReferenceSheetAccess(t *testing.T) {
	m := mustModel(t, `SELECT p, m, s, r FROM f
		SPREADSHEET
		  REFERENCE prior ON (SELECT m, m_yago FROM time_dt) DBY(m) MEA(m_yago)
		  PBY(p) DBY (m) MEA (s, r)
		RULES UPDATE
		( F1: r[*] = s[prior.m_yago[cv(m)]] )`,
		map[string][]types.Row{"prior": {R("1999-01", "1998-01")}})
	rows := []types.Row{
		R("dvd", "1999-01", 30.0, nil),
		R("dvd", "1998-01", 10.0, nil),
	}
	idx := run(t, m, rows, RunOptions{})
	if got := cell(t, idx, "dvd", "1999-01")[3].Float(); got != 10 {
		t.Errorf("qualified ref lookup = %v", got)
	}
}

func TestCountStarAndMinMaxOverCells(t *testing.T) {
	m := mustModel(t, `SELECT p, t, s FROM f SPREADSHEET DBY (p, t) MEA (s)
		(
		  s['n',   0] = count(*)['x', t > 0],
		  s['cnt', 0] = count(s)['x', t > 0],
		  s['min', 0] = min(s)['x', *],
		  s['max', 0] = max(s)['x', *]
		)`, nil)
	rows := []types.Row{
		R("x", 1, 5.0), R("x", 2, nil), R("x", 3, 2.0), R("x", 4, 9.0),
	}
	idx := run(t, m, rows, RunOptions{})
	if got := cell(t, idx, "n", 0)[2].Int(); got != 4 {
		t.Errorf("count(*) = %v", got)
	}
	if got := cell(t, idx, "cnt", 0)[2].Int(); got != 3 {
		t.Errorf("count(s) = %v (NULL must not count)", got)
	}
	if got := cell(t, idx, "min", 0)[2].Float(); got != 2 {
		t.Errorf("min = %v", got)
	}
	if got := cell(t, idx, "max", 0)[2].Float(); got != 9 {
		t.Errorf("max = %v", got)
	}
}

func TestAggregateOverExpressionArgs(t *testing.T) {
	m := mustModel(t, `SELECT t, s, c FROM f SPREADSHEET DBY (t) MEA (s, c)
		( s[0] = sum(s * c)[t > 0] )`, nil)
	rows := []types.Row{
		R(0, 0.0, 0.0), R(1, 2.0, 3.0), R(2, 4.0, 5.0),
	}
	idx := run(t, m, rows, RunOptions{})
	if got := cell(t, idx, 0)[1].Float(); got != 2*3+4*5 {
		t.Errorf("sum(s*c) = %v", got)
	}
}

func TestCyclicWithUpsertConverges(t *testing.T) {
	// A mutually-referencing pair that stabilizes: s[100] = s[1] (upsert)
	// and s[1] = s[100]. After the first iteration both hold 5; the second
	// iteration changes nothing and the fixpoint is detected.
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		(
		  UPSERT s[100] = s[1] * 1,
		  s[1] = s[t = 200 - 100] * 1
		)`, nil)
	if err := m.Analyze(); err != nil {
		t.Fatal(err)
	}
	if !m.Cyclic() {
		t.Fatal("pair must be classified cyclic")
	}
	idx := run(t, m, []types.Row{R(1, 5.0)}, RunOptions{})
	if got := cell(t, idx, 100)[1].Float(); got != 5 {
		t.Errorf("s[100] = %v", got)
	}
	if got := cell(t, idx, 1)[1].Float(); got != 5 {
		t.Errorf("s[1] = %v", got)
	}
}

func TestCyclicDivergentUpsertErrors(t *testing.T) {
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		(
		  UPSERT s[100] = s[1] + 1,
		  s[1] = s[t = 200 - 100] * 1
		)`, nil)
	_, _, err := m.Run([]types.Row{R(1, 5.0)}, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "converge") {
		t.Fatalf("divergent cyclic upsert: %v", err)
	}
}

func TestIgnoreNavOnExistentialAndAggregates(t *testing.T) {
	m := mustModel(t, `SELECT p, t, s FROM f SPREADSHEET DBY (p, t) MEA (s) IGNORE NAV UPDATE
		( s[*, 3] = s[cv(p), 1] + s[cv(p), 2] )`, nil)
	rows := []types.Row{
		R("a", 1, 4.0), R("a", 2, nil), R("a", 3, 0.0),
	}
	idx := run(t, m, rows, RunOptions{})
	if got := cell(t, idx, "a", 3)[2].Float(); got != 4 {
		t.Errorf("IGNORE NAV existential = %v", got)
	}
}

func TestEmptyRuleList(t *testing.T) {
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s) ( )`, nil)
	out, _, err := m.Run([]types.Row{R(1, 2.0)}, RunOptions{})
	if err != nil || len(out) != 1 {
		t.Fatalf("empty rules: %v, %d rows", err, len(out))
	}
}

func TestChooseBuckets(t *testing.T) {
	if got := ChooseBuckets(1000, 100, 0, 4); got != 4 {
		t.Errorf("dop only = %d", got)
	}
	if got := ChooseBuckets(1000, 100, 10000, 1); got != 10 {
		t.Errorf("budget driven = %d", got)
	}
	if got := ChooseBuckets(0, 0, 0, 0); got != 1 {
		t.Errorf("floor = %d", got)
	}
	if got := ChooseBuckets(1<<30, 100, 10, 1); got != 1024 {
		t.Errorf("cap = %d", got)
	}
}

func TestNullDimensionValues(t *testing.T) {
	// NULL is a legal dimension value and addresses its own cell.
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		( s[2000] = s[t = NULL] )`, nil)
	// t = NULL comparison never matches under SQL semantics... but as a
	// point qualifier the value NULL addresses the NULL cell.
	idx := run(t, m, []types.Row{R(nil, 7.0), R(2000, 0.0)}, RunOptions{})
	if got := cell(t, idx, 2000)[1].Float(); got != 7 {
		t.Errorf("NULL-addressed cell = %v", got)
	}
}

func TestLevelsExposedForExplain(t *testing.T) {
	m := mustModel(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s) UPDATE
		( s[1] = s[1] / 2 )`, nil)
	if err := m.Analyze(); err != nil {
		t.Fatal(err)
	}
	steps, cyc := m.Levels()
	if len(steps) != 1 || !cyc[0] {
		t.Errorf("self-loop must form a cyclic step: %v %v", steps, cyc)
	}
}
