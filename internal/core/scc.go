package core

// tarjanSCC computes strongly connected components of the rule graph using
// Tarjan's algorithm [17]. deps[i] lists the nodes i depends on (edges
// j -> i reversed; direction does not matter for component membership).
// Components are returned in reverse topological order of the condensation
// with respect to the dep direction; callers only use membership.
func tarjanSCC(n int, deps [][]int) [][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	var comps [][]int
	next := 0

	// Iterative Tarjan to keep deep chains off the Go stack.
	type frame struct {
		v, ei int
	}
	var call []frame
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		call = append(call[:0], frame{v: start})
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.ei < len(deps[v]) {
				w := deps[v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			// v is finished.
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
