package core

import (
	"fmt"
	"testing"

	"sqlsheet/internal/blockstore"
	"sqlsheet/internal/types"
)

// benchRuleRows builds the batch-rule benchmark workload: 10 partitions of
// 10,000 cells each (10 products x 1000 years), a populated source measure
// and zero-filled targets.
func benchRuleRows(nmea int) []types.Row {
	rows := make([]types.Row, 0, 100000)
	for ri := 0; ri < 10; ri++ {
		r := fmt.Sprintf("r%02d", ri)
		for pi := 0; pi < 10; pi++ {
			p := fmt.Sprintf("p%d", pi)
			for t := 1000; t < 2000; t++ {
				row := types.Row{V(r), V(p), V(t), V(float64(t-1000)*0.5 + float64(pi))}
				for len(row) < 3+nmea {
					row = append(row, V(0.0))
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// benchRuleLegs times rule application — evalFrame over prebuilt
// partitions — under the batch rule engine and under the per-cell
// interpreter. Partition building, which both paths share unchanged, stays
// outside the loop; one warm-up pass performs any UPSERT inserts so every
// timed iteration applies the rules over an identical, settled frame set
// (rules recompute their targets from the untouched source measure, so
// repeated application is idempotent).
func benchRuleLegs(b *testing.B, sql string, nmea int) {
	legs := []struct {
		name string
		opts RunOptions
	}{
		{"vectorized", RunOptions{}},
		{"interpreted", RunOptions{DisableVectorizedRules: true}},
	}
	for _, leg := range legs {
		b.Run(leg.name, func(b *testing.B) {
			m := mustModel(b, sql, nil)
			if err := m.Analyze(); err != nil {
				b.Fatal(err)
			}
			if err := m.prepareForIn(nil); err != nil {
				b.Fatal(err)
			}
			m.buildCompiled()
			m.buildVecRules()
			ps, err := BuildPartitions(m, benchRuleRows(nmea), 1,
				func() blockstore.Store { return blockstore.NewMem() })
			if err != nil {
				b.Fatal(err)
			}
			defer ps.Close()
			opts := leg.opts
			evalAll := func() {
				for _, bk := range ps.buckets {
					for _, f := range bk.frames {
						if err := m.evalFrame(f, &opts); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			evalAll()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				evalAll()
			}
		})
	}
}

// BenchmarkSpreadsheetRulesExistential measures existential formulas over
// every cell of a 100k-row working set: each target fires point probes into
// neighbouring cells (cv(t)-1 ... cv(t)-4). The batch path snapshots each
// partition once (cached columns thereafter), compiles each right side to
// one expression kernel, resolves all probes through bulk LookupBatch sweeps
// and writes back columnarly; the per-cell leg evaluates the formula tree
// and re-encodes probe keys target by target.
func BenchmarkSpreadsheetRulesExistential(b *testing.B) {
	benchRuleLegs(b, `SELECT r, p, t, s, u, v FROM rb
		SPREADSHEET PBY(r) DBY (p, t) MEA (s, u, v)
		( UPDATE u[*, *] = s[cv(p), cv(t)] * 1.1 + s[cv(p), cv(t) - 1] * 0.25,
		  UPDATE v[p IN ('p0','p1','p2','p3','p4'), t > 1200] =
			s[cv(p), cv(t) - 2] * 0.5 - s[cv(p), cv(t) - 3] / 8,
		  UPDATE v[*, t > 1100] = s[cv(p), cv(t)] * 1.01 - s[cv(p), cv(t) - 4] )`, 3)
}

// BenchmarkSpreadsheetRulesPointHeavy measures left-side FOR loops: 11,000
// explicit targets per partition (10,000 updated in place, 1,000 upserted by
// the warm-up pass), each reading the source measure through the bulk probe.
func BenchmarkSpreadsheetRulesPointHeavy(b *testing.B) {
	benchRuleLegs(b, `SELECT r, p, t, s, u FROM rb
		SPREADSHEET PBY(r) DBY (p, t) MEA (s, u)
		( UPSERT u[FOR p IN ('p0','p1','p2','p3','p4','p5','p6','p7','p8','p9'),
			FOR t FROM 1000 TO 2099] =
			s[cv(p), cv(t)] * 2 + s[cv(p), cv(t) - 1] * 0.5 + s[cv(p), cv(t) - 2] / 4 + 1 )`, 2)
}
