package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"sqlsheet/internal/blockstore"
	"sqlsheet/internal/parser"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

func buildTestModel(tb testing.TB) *Model {
	tb.Helper()
	sql := `SELECT r, p, t, s, c FROM f
		SPREADSHEET PBY (r, p) DBY (t) MEA (s, c)
		( s[1] = s[2] )`
	q, err := parser.ParseQuery(sql)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	sc := q.Query.(*sqlast.SelectBody).Spreadsheet
	m, err := Compile(sc, types.NewSchema(
		types.Column{Name: "r"}, types.Column{Name: "p"}, types.Column{Name: "t"},
		types.Column{Name: "s"}, types.Column{Name: "c"},
	), nil)
	if err != nil {
		tb.Fatalf("compile: %v", err)
	}
	return m
}

// buildTestRows generates rows with enough PBY skew to exercise frames of
// very different sizes and several rows per frame.
func buildTestRows(n int, seed int64) []types.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]types.Row, 0, n)
	used := make(map[string]bool)
	for len(rows) < n {
		reg := fmt.Sprintf("reg%d", rng.Intn(7))
		prod := rng.Intn(11)
		tdim := rng.Intn(800)
		k := fmt.Sprintf("%s|%d|%d", reg, prod, tdim)
		if used[k] { // DBY must be unique within a partition
			continue
		}
		used[k] = true
		rows = append(rows, R(reg, prod, tdim, float64(rng.Intn(1000)), rng.Intn(50)))
	}
	return rows
}

// samePartitionSet asserts two access structures are byte-identical:
// same bucketing, frame discovery order, row clustering, index contents and
// present sets.
func samePartitionSet(t *testing.T, a, b *PartitionSet) {
	t.Helper()
	if len(a.buckets) != len(b.buckets) {
		t.Fatalf("bucket count %d vs %d", len(a.buckets), len(b.buckets))
	}
	for bi := range a.buckets {
		ba, bb := a.buckets[bi], b.buckets[bi]
		if len(ba.frames) != len(bb.frames) {
			t.Fatalf("bucket %d: frame count %d vs %d", bi, len(ba.frames), len(bb.frames))
		}
		for fi := range ba.frames {
			fa, fb := ba.frames[fi], bb.frames[fi]
			if ka, kb := keyOf(fa.pby), keyOf(fb.pby); ka != kb {
				t.Fatalf("bucket %d frame %d: pby %q vs %q", bi, fi, ka, kb)
			}
			if fa.Len() != fb.Len() {
				t.Fatalf("bucket %d frame %d: len %d vs %d", bi, fi, fa.Len(), fb.Len())
			}
			for pos := 0; pos < fa.Len(); pos++ {
				ra, rb := fa.Row(pos), fb.Row(pos)
				if types.Key(ra...) != types.Key(rb...) {
					t.Fatalf("bucket %d frame %d pos %d: %v vs %v", bi, fi, pos, ra, rb)
				}
			}
			if len(fa.present) != len(fb.present) {
				t.Fatalf("bucket %d frame %d: present size differs", bi, fi)
			}
			for k := range fa.present {
				if !fb.present[k] {
					t.Fatalf("bucket %d frame %d: present key missing", bi, fi)
				}
				pa, oka := fa.lookupKey([]byte(k))
				pb, okb := fb.lookupKey([]byte(k))
				if !oka || !okb || pa != pb {
					t.Fatalf("bucket %d frame %d: index disagrees on %q: (%d,%v) vs (%d,%v)",
						bi, fi, k, pa, oka, pb, okb)
				}
			}
		}
	}
}

// TestParallelBuildMatchesSerial checks that the morsel-partitioned build is
// byte-identical to the serial build across worker counts, bucket counts and
// both access methods, including chunk boundaries (row counts straddling
// buildMorsel).
func TestParallelBuildMatchesSerial(t *testing.T) {
	m := buildTestModel(t)
	mem := func() blockstore.Store { return blockstore.NewMem() }
	for _, n := range []int{0, 1, 100, buildMorsel - 1, buildMorsel + 37} {
		rows := buildTestRows(n, int64(n)+1)
		for _, nb := range []int{1, 4, 13} {
			for _, bt := range []bool{false, true} {
				serial, err := BuildPartitionsOpts(m, rows, nb, mem, BuildOptions{UseBTree: bt, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range []int{2, 8} {
					par, err := BuildPartitionsOpts(m, rows, nb, mem, BuildOptions{UseBTree: bt, Workers: w})
					if err != nil {
						t.Fatal(err)
					}
					samePartitionSet(t, serial, par)
					par.Close()
				}
				serial.Close()
			}
		}
	}
}

// TestParallelBuildDuplicateError checks the parallel build reports the same
// duplicate-DBY error the serial build does, from the lowest bucket index.
func TestParallelBuildDuplicateError(t *testing.T) {
	m := buildTestModel(t)
	mem := func() blockstore.Store { return blockstore.NewMem() }
	rows := buildTestRows(500, 3)
	rows = append(rows, rows[123].Clone()) // exact duplicate partition+dims
	serial, serr := BuildPartitionsOpts(m, rows, 8, mem, BuildOptions{Workers: 1})
	if serr == nil {
		serial.Close()
		t.Fatal("expected duplicate error from serial build")
	}
	par, perr := BuildPartitionsOpts(m, rows, 8, mem, BuildOptions{Workers: 8})
	if perr == nil {
		par.Close()
		t.Fatal("expected duplicate error from parallel build")
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("error mismatch:\n serial: %v\n parallel: %v", serr, perr)
	}
}

func BenchmarkParallelBuild(b *testing.B) {
	m := buildTestModel(b)
	rows := buildTestRows(20000, 42)
	mem := func() blockstore.Store { return blockstore.NewMem() }
	// -cpu sets GOMAXPROCS per run; scale the build workers with it so
	// `-cpu 1,4` compares serial vs parallel build.
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := BuildPartitionsOpts(m, rows, 16, mem, BuildOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		ps.Close()
	}
}
