package apb

import (
	"testing"

	"sqlsheet/internal/catalog"
	"sqlsheet/internal/types"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7})
	b := Generate(Config{Seed: 7})
	if len(a.Fact) != len(b.Fact) || len(a.Cube) != len(b.Cube) {
		t.Fatal("same seed must give identical sizes")
	}
	for i := range a.Fact {
		for j := range a.Fact[i] {
			if !types.Equal(a.Fact[i][j], b.Fact[i][j]) {
				t.Fatalf("fact row %d differs", i)
			}
		}
	}
	c := Generate(Config{Seed: 8})
	if len(c.Fact) == len(a.Fact) {
		// Sizes may rarely coincide, but sales values must differ.
		same := true
		for i := range a.Fact {
			if !types.Equal(a.Fact[i][4], c.Fact[i][4]) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical data")
		}
	}
}

func TestProductHierarchyShape(t *testing.T) {
	d := Generate(Config{ProductFanout: []int{2, 2, 2, 2, 3, 3}})
	// 7 levels: 1 + 2 + 4 + 8 + 16 + 48 + 144.
	if len(d.Products) != 1+2+4+8+16+48+144 {
		t.Fatalf("products = %d", len(d.Products))
	}
	if len(d.BaseProducts) != 144 {
		t.Fatalf("base products = %d", len(d.BaseProducts))
	}
	for _, pi := range d.BaseProducts {
		if d.Products[pi].Level != 6 {
			t.Fatal("base product at wrong level")
		}
		if got := len(d.Ancestors(pi)); got != 6 {
			t.Fatalf("base ancestors = %d", got)
		}
	}
	// product_dt excludes the top and has 3 parent columns + level.
	if len(d.ProductDT) != len(d.Products)-1 {
		t.Fatalf("product_dt rows = %d", len(d.ProductDT))
	}
	for _, row := range d.ProductDT {
		if len(row) != 5 {
			t.Fatal("product_dt arity")
		}
	}
}

func TestTimeDimensionTable1(t *testing.T) {
	d := Generate(Config{Years: 2})
	if len(d.Months) != 24 {
		t.Fatalf("months = %d", len(d.Months))
	}
	// Table 1 of the paper: 1999-01 → 1998-01, 1998-10.
	found := false
	for _, row := range d.TimeDT {
		if row[0].S == "1999-01" {
			found = true
			if row[1].S != "1998-01" || row[2].S != "1998-10" {
				t.Errorf("1999-01 maps to %s, %s", row[1].S, row[2].S)
			}
		}
		if row[0].S == "1999-03" {
			if row[1].S != "1998-03" || row[2].S != "1998-12" {
				t.Errorf("1999-03 maps to %s, %s", row[1].S, row[2].S)
			}
		}
	}
	if !found {
		t.Fatal("1999-01 missing from time_dt")
	}
}

func TestDensityControlsFactSize(t *testing.T) {
	lo := Generate(Config{Seed: 3, Density: 0.05})
	hi := Generate(Config{Seed: 3, Density: 0.5})
	if len(hi.Fact) <= len(lo.Fact)*3 {
		t.Errorf("density not respected: %d vs %d", len(lo.Fact), len(hi.Fact))
	}
	total := lo.Cfg.Customers * lo.Cfg.Channels * len(lo.Months) * len(lo.BaseProducts)
	frac := float64(len(lo.Fact)) / float64(total)
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("density 0.05 produced fraction %.3f", frac)
	}
}

func TestCubeRollupConsistency(t *testing.T) {
	d := Generate(Config{Seed: 2})
	// The top-level cube row for each (c,h,t) must equal the sum of base
	// fact rows for it.
	factSum := map[string]float64{}
	for _, row := range d.Fact {
		factSum[row[0].S+"|"+row[1].S+"|"+row[2].S] += row[4].F
	}
	checked := 0
	for _, row := range d.Cube {
		if row[3].S != "TOP" {
			continue
		}
		k := row[0].S + "|" + row[1].S + "|" + row[2].S
		if diff := row[4].F - factSum[k]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("rollup mismatch at %s: %g vs %g", k, row[4].F, factSum[k])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no TOP rows in cube")
	}
	if len(d.Cube) <= len(d.Fact) {
		t.Error("cube must contain rollup rows beyond the fact rows")
	}
}

func TestInstall(t *testing.T) {
	cat := catalog.New()
	d := Generate(Config{})
	if err := d.Install(cat); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"apb_fact", "apb_cube", "product_dt", "time_dt"} {
		tb, ok := cat.Get(name)
		if !ok || len(tb.Rows) == 0 {
			t.Errorf("table %s missing or empty", name)
		}
	}
	if err := d.Install(cat); err == nil {
		t.Error("double install must fail (tables exist)")
	}
}

func TestProductsAtLevel(t *testing.T) {
	d := Generate(Config{ProductFanout: []int{2, 2, 2, 2, 3, 3}})
	if got := len(d.ProductsAtLevel(0)); got != 1 {
		t.Errorf("level 0 = %d", got)
	}
	if got := len(d.ProductsAtLevel(6)); got != 144 {
		t.Errorf("level 6 = %d", got)
	}
}
