// Package apb generates an APB-1-style OLAP benchmark dataset (the
// workload of the paper's §6 experiments): four hierarchical dimensions —
// channel (2 levels), time (3 levels), customer (3 levels), product (7
// levels) — a density-controlled fact table, a materialized cube with the
// product hierarchy rolled up (each dimension value encodes its level, as
// the paper describes), and the product_dt / time_dt dimension tables used
// by queries S1 and S5.
//
// The generator is fully deterministic for a given Config.
package apb

import (
	"fmt"

	"sqlsheet/internal/catalog"
	"sqlsheet/internal/types"
)

// Config sizes the dataset. The zero value is replaced by DefaultConfig.
type Config struct {
	// Seed drives the deterministic PRNG.
	Seed int64
	// ProductFanout is the children-per-node count for each of the 6
	// levels below the product hierarchy's top (7 levels total, matching
	// APB's prod/class/group/family/line/division/top).
	ProductFanout []int
	// Channels is the number of base channel members (level 2 of 2).
	Channels int
	// Customers is the number of base customer members.
	Customers int
	// Years of months in the time dimension (months are the base level).
	Years int
	// Density is the fraction of (month, channel, customer, base product)
	// combinations present in the fact table; the paper uses 0.1.
	Density float64
}

// DefaultConfig returns a laptop-scale configuration (the paper's shapes at
// reduced size).
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		ProductFanout: []int{2, 2, 2, 2, 3, 3},
		Channels:      2,
		Customers:     4,
		Years:         2,
		Density:       0.1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if len(c.ProductFanout) == 0 {
		c.ProductFanout = d.ProductFanout
	}
	if c.Channels <= 0 {
		c.Channels = d.Channels
	}
	if c.Customers <= 0 {
		c.Customers = d.Customers
	}
	if c.Years <= 0 {
		c.Years = d.Years
	}
	if c.Density <= 0 {
		c.Density = d.Density
	}
	return c
}

// Product is one node of the product hierarchy.
type Product struct {
	Code   string
	Level  int // 0 = top, 6 = base ("prod" level)
	Parent int // index into Products; -1 for top
}

// Data is the generated dataset.
type Data struct {
	Cfg Config

	// Products holds the full hierarchy, index 0 = top.
	Products []Product
	// BaseProducts indexes the leaf (level-6) products.
	BaseProducts []int

	// Months are the base time members, "YYYY-MM".
	Months []string

	// ProductDT rows: p, parent1, parent2, parent3, level.
	ProductDT []types.Row
	// TimeDT rows: m, m_yago, m_qago.
	TimeDT []types.Row
	// Fact rows: c, h, t, p, s (customer, channel, month, base product).
	Fact []types.Row
	// Cube rows: c, h, t, p, s — p at every product hierarchy level
	// (sales summed up the hierarchy), the access pattern of query S5.
	Cube []types.Row
}

// prng is a small deterministic xorshift generator (stdlib math/rand would
// also do; this keeps the stream stable across Go versions).
type prng struct{ s uint64 }

func (r *prng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// float returns a uniform float in [0, 1).
func (r *prng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Generate builds the dataset.
func Generate(cfg Config) *Data {
	cfg = cfg.withDefaults()
	d := &Data{Cfg: cfg}
	rng := &prng{s: uint64(cfg.Seed)*2654435761 + 1}

	d.genProducts()
	d.genTime()
	d.genFact(rng)
	d.genCube()
	return d
}

func (d *Data) genProducts() {
	d.Products = append(d.Products, Product{Code: "TOP", Level: 0, Parent: -1})
	frontier := []int{0}
	for lvl, fan := range d.Cfg.ProductFanout {
		var next []int
		for _, pi := range frontier {
			for c := 0; c < fan; c++ {
				idx := len(d.Products)
				code := fmt.Sprintf("%s.%d", d.Products[pi].Code, c)
				d.Products = append(d.Products, Product{Code: code, Level: lvl + 1, Parent: pi})
				next = append(next, idx)
			}
		}
		frontier = next
	}
	d.BaseProducts = frontier

	// product_dt: every member with its first three ancestors.
	for _, p := range d.Products[1:] {
		row := types.Row{types.NewString(p.Code)}
		anc := p.Parent
		for k := 0; k < 3; k++ {
			if anc >= 0 {
				row = append(row, types.NewString(d.Products[anc].Code))
				anc = d.Products[anc].Parent
			} else {
				row = append(row, types.Null)
			}
		}
		row = append(row, types.NewInt(int64(p.Level)))
		d.ProductDT = append(d.ProductDT, row)
	}
}

// Ancestors returns the codes of a product's ancestors, nearest first.
func (d *Data) Ancestors(idx int) []string {
	var out []string
	for anc := d.Products[idx].Parent; anc >= 0; anc = d.Products[anc].Parent {
		out = append(out, d.Products[anc].Code)
	}
	return out
}

func month(year, m int) string { return fmt.Sprintf("%04d-%02d", year, m) }

func (d *Data) genTime() {
	startYear := 1998
	for y := 0; y < d.Cfg.Years; y++ {
		for m := 1; m <= 12; m++ {
			d.Months = append(d.Months, month(startYear+y, m))
		}
	}
	for y := 0; y < d.Cfg.Years; y++ {
		for m := 1; m <= 12; m++ {
			cur := month(startYear+y, m)
			yago := month(startYear+y-1, m)
			// Quarter ago: same month of the previous quarter.
			qy, qm := startYear+y, m-3
			if qm < 1 {
				qm += 12
				qy--
			}
			qago := month(qy, qm)
			d.TimeDT = append(d.TimeDT, types.Row{
				types.NewString(cur), types.NewString(yago), types.NewString(qago),
			})
		}
	}
}

func (d *Data) genFact(rng *prng) {
	for ci := 0; ci < d.Cfg.Customers; ci++ {
		cust := fmt.Sprintf("cust%02d", ci)
		for hi := 0; hi < d.Cfg.Channels; hi++ {
			ch := fmt.Sprintf("chan%d", hi)
			for _, m := range d.Months {
				for _, pi := range d.BaseProducts {
					if rng.float() >= d.Cfg.Density {
						continue
					}
					s := 10 + rng.float()*990
					d.Fact = append(d.Fact, types.Row{
						types.NewString(cust), types.NewString(ch), types.NewString(m),
						types.NewString(d.Products[pi].Code),
						types.NewFloat(float64(int(s*100)) / 100),
					})
				}
			}
		}
	}
}

// genCube rolls the fact table up the product hierarchy: for every
// (c, h, t) and every ancestor of every base product sold, a row with the
// summed sales. Base rows are included (level 6) down to the top (level 0),
// so query S5's parent lookups always hit.
func (d *Data) genCube() {
	codeIdx := make(map[string]int, len(d.Products))
	for i, p := range d.Products {
		codeIdx[p.Code] = i
	}
	type key struct{ c, h, t, p string }
	sums := make(map[key]float64)
	var order []key
	add := func(k key, v float64) {
		if _, ok := sums[k]; !ok {
			order = append(order, k)
		}
		sums[k] += v
	}
	for _, row := range d.Fact {
		c, h, t, p := row[0].S, row[1].S, row[2].S, row[3].S
		v := row[4].F
		add(key{c, h, t, p}, v)
		for anc := d.Products[codeIdx[p]].Parent; anc >= 0; anc = d.Products[anc].Parent {
			add(key{c, h, t, d.Products[anc].Code}, v)
		}
	}
	for _, k := range order {
		d.Cube = append(d.Cube, types.Row{
			types.NewString(k.c), types.NewString(k.h), types.NewString(k.t),
			types.NewString(k.p), types.NewFloat(sums[k]),
		})
	}
}

// Install registers the dataset's tables in a catalog:
// apb_fact(c,h,t,p,s), apb_cube(c,h,t,p,s), product_dt(p,parent1,parent2,
// parent3,lvl), time_dt(m,m_yago,m_qago).
func (d *Data) Install(cat *catalog.Catalog) error {
	mk := func(name string, schema *types.Schema, rows []types.Row) error {
		t, err := cat.Create(name, schema)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, rows...)
		return nil
	}
	if err := mk("apb_fact", types.NewSchemaNames("c", "h", "t", "p", "s"), d.Fact); err != nil {
		return err
	}
	if err := mk("apb_cube", types.NewSchemaNames("c", "h", "t", "p", "s"), d.Cube); err != nil {
		return err
	}
	if err := mk("product_dt", types.NewSchemaNames("p", "parent1", "parent2", "parent3", "lvl"), d.ProductDT); err != nil {
		return err
	}
	return mk("time_dt", types.NewSchemaNames("m", "m_yago", "m_qago"), d.TimeDT)
}

// ProductsAtLevel returns the codes of products at the given level.
func (d *Data) ProductsAtLevel(level int) []string {
	var out []string
	for _, p := range d.Products {
		if p.Level == level {
			out = append(out, p.Code)
		}
	}
	return out
}
