// Package btree implements an in-memory B-tree mapping cell keys to row
// positions. It exists to reproduce the paper's §7 note on access methods:
// "Our initial implementation of the access method was based on a B-tree
// ... This proved more expensive than the current hash table mostly due to
// code path length." The spreadsheet engine can run on either index (see
// core.RunOptions.UseBTreeIndex), and the access-path benchmark measures
// the difference.
package btree

// degree is the minimum fan-out; nodes hold between degree-1 and
// 2*degree-1 keys.
const degree = 16

// Tree maps string keys to int values, ordered by key bytes.
type Tree struct {
	root *node
	size int
}

type node struct {
	keys     []string
	vals     []int
	children []*node // nil for leaves
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored under key.
func (t *Tree) Get(key string) (int, bool) {
	n := t.root
	for n != nil {
		i, eq := n.search(key)
		if eq {
			return n.vals[i], true
		}
		if n.children == nil {
			return 0, false
		}
		n = n.children[i]
	}
	return 0, false
}

// search returns the index of the first key >= key, and whether it equals.
func (n *node) search(key string) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == key
}

// Put inserts or overwrites a key.
func (t *Tree) Put(key string, val int) {
	if len(t.root.keys) == 2*degree-1 {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	if t.root.insert(key, val) {
		t.size++
	}
}

// insert adds key to the (non-full) subtree rooted at n; reports whether a
// new key was created (false = overwrite).
func (n *node) insert(key string, val int) bool {
	i, eq := n.search(key)
	if eq {
		n.vals[i] = val
		return false
	}
	if n.children == nil {
		n.keys = append(n.keys, "")
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = key
		n.vals[i] = val
		return true
	}
	if len(n.children[i].keys) == 2*degree-1 {
		n.splitChild(i)
		if key > n.keys[i] {
			i++
		} else if key == n.keys[i] {
			n.vals[i] = val
			return false
		}
	}
	return n.children[i].insert(key, val)
}

// splitChild splits the full child at index i, hoisting its median.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := degree - 1
	midKey, midVal := child.keys[mid], child.vals[mid]

	right := &node{
		keys: append([]string(nil), child.keys[mid+1:]...),
		vals: append([]int(nil), child.vals[mid+1:]...),
	}
	if child.children != nil {
		right.children = append([]*node(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]

	n.keys = append(n.keys, "")
	n.vals = append(n.vals, 0)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.vals[i+1:], n.vals[i:])
	n.keys[i] = midKey
	n.vals[i] = midVal

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Ascend visits every (key, value) pair in key order; returning false stops
// the walk.
func (t *Tree) Ascend(fn func(key string, val int) bool) {
	t.root.ascend(fn)
}

func (n *node) ascend(fn func(string, int) bool) bool {
	for i, k := range n.keys {
		if n.children != nil && !n.children[i].ascend(fn) {
			return false
		}
		if !fn(k, n.vals[i]) {
			return false
		}
	}
	if n.children != nil {
		return n.children[len(n.children)-1].ascend(fn)
	}
	return true
}

// AscendRange visits pairs with lo <= key < hi in order.
func (t *Tree) AscendRange(lo, hi string, fn func(key string, val int) bool) {
	t.Ascend(func(k string, v int) bool {
		if k < lo {
			return true
		}
		if k >= hi {
			return false
		}
		return fn(k, v)
	})
}

// Height returns the tree height (leaves = 1); exported for tests.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; n.children != nil; n = n.children[0] {
		h++
	}
	return h
}
