package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGetBasics(t *testing.T) {
	tr := New()
	if _, ok := tr.Get("x"); ok {
		t.Fatal("empty tree must miss")
	}
	tr.Put("b", 2)
	tr.Put("a", 1)
	tr.Put("c", 3)
	for k, want := range map[string]int{"a": 1, "b": 2, "c": 3} {
		if v, ok := tr.Get(k); !ok || v != want {
			t.Errorf("Get(%q) = %d, %v", k, v, ok)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	// Overwrite does not grow.
	tr.Put("b", 20)
	if v, _ := tr.Get("b"); v != 20 || tr.Len() != 3 {
		t.Errorf("overwrite broken: %d len=%d", v, tr.Len())
	}
}

func TestLargeInsertAndSplits(t *testing.T) {
	tr := New()
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Put(fmt.Sprintf("key-%06d", i), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, expected real splits", tr.Height())
	}
	for i := 0; i < n; i += 97 {
		if v, ok := tr.Get(fmt.Sprintf("key-%06d", i)); !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New()
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, k := range keys {
		tr.Put(k, i)
	}
	var got []string
	tr.Ascend(func(k string, _ int) bool {
		got = append(got, k)
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: %v", got)
		}
	}
	// Early stop.
	count := 0
	tr.Ascend(func(string, int) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("%03d", i), i)
	}
	var got []int
	tr.AscendRange("010", "015", func(_ string, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 5 || got[0] != 10 || got[4] != 14 {
		t.Errorf("range = %v", got)
	}
}

func TestMatchesMapProperty(t *testing.T) {
	// Property: after an arbitrary insert/overwrite sequence, the tree
	// agrees with a plain map, and Ascend yields sorted unique keys.
	f := func(ops []uint16) bool {
		tr := New()
		mirror := map[string]int{}
		for i, op := range ops {
			k := fmt.Sprintf("k%03d", op%300)
			tr.Put(k, i)
			mirror[k] = i
		}
		if tr.Len() != len(mirror) {
			return false
		}
		for k, want := range mirror {
			if v, ok := tr.Get(k); !ok || v != want {
				return false
			}
		}
		prev := ""
		ok := true
		n := 0
		tr.Ascend(func(k string, v int) bool {
			if n > 0 && k <= prev {
				ok = false
				return false
			}
			if mirror[k] != v {
				ok = false
				return false
			}
			prev = k
			n++
			return true
		})
		return ok && n == len(mirror)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
