// Package wire implements the serving layer's framed text protocol: every
// message is one frame — a 4-byte big-endian payload length followed by the
// payload — and payloads are line-oriented text. Requests carry a query (or
// PING/QUIT); responses carry a typed result set or a structured error with
// a machine-readable code and, for parse errors, the line/column/token of
// the offending input. Values are encoded with a one-byte kind tag so every
// scalar round-trips exactly (floats via strconv's shortest exact form,
// strings via %q).
//
// The codec is shared by internal/server and internal/client so the two
// sides cannot drift.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sqlsheet/internal/types"
)

// MaxFrame bounds a single frame's payload. Large result sets fit comfortably
// (a frame holds an entire response); anything bigger is a protocol error
// rather than an unbounded allocation driven by four attacker-chosen bytes.
const MaxFrame = 64 << 20

// Error codes carried in ERR responses.
const (
	CodeParseError    = "PARSE_ERROR"    // statement failed to parse; POS line present
	CodeExecError     = "EXEC_ERROR"     // planning or execution failed
	CodeServerBusy    = "SERVER_BUSY"    // admission queue full or wait deadline hit
	CodeTimeout       = "TIMEOUT"        // per-query timeout elapsed mid-execution
	CodeCanceled      = "CANCELED"       // query canceled (shutdown drain, connection close)
	CodeProtocolError = "PROTOCOL_ERROR" // malformed frame or unknown command
	CodeShutdown      = "SHUTDOWN"       // server is draining and rejects new work
)

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame. io.EOF is returned untouched on
// a clean close between frames; a partial header or payload yields
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// io.ReadFull yields io.EOF only when zero header bytes arrived —
		// a clean close between frames; a torn header is ErrUnexpectedEOF.
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// --- requests ---

// Request kinds (first line of a request payload).
const (
	ReqQuery = "QUERY" // remaining payload is the SQL text
	ReqPing  = "PING"
	ReqQuit  = "QUIT"
	// ReqSubplan ships a distributed sub-plan to a worker: the second line
	// is an opaque query id (for CANCEL), the rest a binary envelope built
	// by internal/shard. The worker streams PART frames back and finishes
	// with a terminal OK (0 cols, 0 rows) or ERR.
	ReqSubplan = "SUBPLAN"
	// ReqCancel asks the worker to cancel an in-flight SUBPLAN by id. Sent
	// on a separate control connection (the data connection is mid-stream);
	// always answered OK, whether or not the id was still running.
	ReqCancel = "CANCEL"
)

// EncodeQuery builds a QUERY request payload.
func EncodeQuery(sql string) []byte {
	return []byte(ReqQuery + "\n" + sql)
}

// EncodeSubplan builds a SUBPLAN request payload. id must be newline-free.
func EncodeSubplan(id string, env []byte) []byte {
	buf := make([]byte, 0, len(ReqSubplan)+len(id)+len(env)+2)
	buf = append(buf, ReqSubplan...)
	buf = append(buf, '\n')
	buf = append(buf, id...)
	buf = append(buf, '\n')
	return append(buf, env...)
}

// SplitSubplan splits a SUBPLAN body (as returned by DecodeRequest) into the
// query id and the binary envelope.
func SplitSubplan(body string) (id string, env []byte, err error) {
	i := strings.IndexByte(body, '\n')
	if i < 0 {
		return "", nil, fmt.Errorf("wire: SUBPLAN body missing id line")
	}
	return body[:i], []byte(body[i+1:]), nil
}

// EncodeCancel builds a CANCEL request payload.
func EncodeCancel(id string) []byte {
	return []byte(ReqCancel + "\n" + id)
}

// DecodeRequest splits a request payload into its kind and body.
func DecodeRequest(payload []byte) (kind, body string, err error) {
	s := string(payload)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		kind, body = s[:i], s[i+1:]
	} else {
		kind = s
	}
	switch kind {
	case ReqQuery, ReqPing, ReqQuit, ReqSubplan, ReqCancel:
		return kind, body, nil
	}
	return "", "", fmt.Errorf("wire: unknown request %q", kind)
}

// --- responses ---

// Result is a decoded query result: column names, column kinds (as rendered
// by types.Kind.String), and the rows.
type Result struct {
	Cols  []string
	Kinds []string
	Rows  [][]types.Value
}

// Error is a decoded ERR response. Line/Col/Token are populated (HasPos) for
// parse errors so clients can point at the offending input.
type Error struct {
	Code   string
	Msg    string
	HasPos bool
	Line   int
	Col    int
	Token  string
}

func (e *Error) Error() string {
	if e.HasPos {
		return fmt.Sprintf("%s at %d:%d near %q: %s", e.Code, e.Line, e.Col, e.Token, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Msg)
}

// EncodeResult renders an OK response.
//
//	OK <ncols> <nrows>
//	<quoted col names, tab-separated>     (omitted when ncols == 0)
//	<col kinds, tab-separated>            (omitted when ncols == 0)
//	<encoded cells, tab-separated> × nrows
func EncodeResult(cols []string, kinds []string, rows []types.Row) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "OK %d %d\n", len(cols), len(rows))
	if len(cols) > 0 {
		for i, c := range cols {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(strconv.Quote(c))
		}
		b.WriteByte('\n')
		b.WriteString(strings.Join(kinds, "\t"))
		b.WriteByte('\n')
	}
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(encodeValue(v))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// EncodePart renders one streamed SUBPLAN partial-result frame: the PART
// marker line followed by an opaque binary chunk (columnar pages or encoded
// aggregate partials — internal/shard owns the chunk format). A PART frame
// is not a terminal response; the stream ends with OK or ERR.
func EncodePart(chunk []byte) []byte {
	buf := make([]byte, 0, len(chunk)+5)
	buf = append(buf, "PART\n"...)
	return append(buf, chunk...)
}

// DecodePart reports whether a response payload is a streamed PART frame
// and, if so, returns its binary chunk.
func DecodePart(payload []byte) ([]byte, bool) {
	if len(payload) >= 5 && string(payload[:5]) == "PART\n" {
		return payload[5:], true
	}
	return nil, false
}

// EncodePong renders the reply to PING.
func EncodePong() []byte { return []byte("PONG\n") }

// EncodeBye renders the reply to QUIT.
func EncodeBye() []byte { return []byte("BYE\n") }

// EncodeError renders an ERR response.
//
//	ERR <code>
//	POS <line> <col> <quoted token>   (only when hasPos)
//	MSG <quoted message>
func EncodeError(e *Error) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "ERR %s\n", e.Code)
	if e.HasPos {
		fmt.Fprintf(&b, "POS %d %d %s\n", e.Line, e.Col, strconv.Quote(e.Token))
	}
	fmt.Fprintf(&b, "MSG %s\n", strconv.Quote(e.Msg))
	return []byte(b.String())
}

// DecodeResponse parses a response payload into a Result, or returns the
// decoded *Error for ERR responses. PONG and BYE decode to a nil Result.
func DecodeResponse(payload []byte) (*Result, error) {
	sc := bufio.NewScanner(strings.NewReader(string(payload)))
	sc.Buffer(make([]byte, 64*1024), MaxFrame)
	if !sc.Scan() {
		return nil, fmt.Errorf("wire: empty response")
	}
	head := sc.Text()
	switch {
	case head == "PONG" || head == "BYE":
		return nil, nil
	case strings.HasPrefix(head, "ERR "):
		return nil, decodeError(head, sc)
	case strings.HasPrefix(head, "OK "):
		return decodeResult(head, sc)
	}
	return nil, fmt.Errorf("wire: malformed response header %q", head)
}

func decodeError(head string, sc *bufio.Scanner) error {
	e := &Error{Code: strings.TrimPrefix(head, "ERR ")}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "POS "):
			var tok string
			if _, err := fmt.Sscanf(line, "POS %d %d %q", &e.Line, &e.Col, &tok); err == nil {
				e.Token = tok
				e.HasPos = true
			}
		case strings.HasPrefix(line, "MSG "):
			if msg, err := strconv.Unquote(strings.TrimPrefix(line, "MSG ")); err == nil {
				e.Msg = msg
			}
		}
	}
	return e
}

func decodeResult(head string, sc *bufio.Scanner) (*Result, error) {
	var ncols, nrows int
	if _, err := fmt.Sscanf(head, "OK %d %d", &ncols, &nrows); err != nil {
		return nil, fmt.Errorf("wire: malformed OK header %q", head)
	}
	res := &Result{}
	if ncols > 0 {
		if !sc.Scan() {
			return nil, fmt.Errorf("wire: truncated response: missing column names")
		}
		for _, q := range strings.Split(sc.Text(), "\t") {
			name, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("wire: bad column name %q: %v", q, err)
			}
			res.Cols = append(res.Cols, name)
		}
		if !sc.Scan() {
			return nil, fmt.Errorf("wire: truncated response: missing column kinds")
		}
		res.Kinds = strings.Split(sc.Text(), "\t")
		if len(res.Cols) != ncols || len(res.Kinds) != ncols {
			return nil, fmt.Errorf("wire: header/column count mismatch")
		}
	}
	for i := 0; i < nrows; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("wire: truncated response: %d of %d rows", i, nrows)
		}
		var row types.Row
		if line := sc.Text(); line != "" || ncols > 0 {
			cells := strings.Split(line, "\t")
			if len(cells) != ncols {
				return nil, fmt.Errorf("wire: row %d has %d cells, want %d", i, len(cells), ncols)
			}
			row = make(types.Row, ncols)
			for j, c := range cells {
				v, err := decodeValue(c)
				if err != nil {
					return nil, fmt.Errorf("wire: row %d col %d: %v", i, j, err)
				}
				row[j] = v
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// --- value codec ---

// encodeValue renders one scalar with a kind tag: N (null), I<int>,
// F<shortest-exact float>, S<%q string>, B0/B1. The float form round-trips
// bit-exactly through strconv; the string form is %q so tabs and newlines
// cannot break the line structure.
func encodeValue(v types.Value) string {
	switch v.K {
	case types.KindNull:
		return "N"
	case types.KindInt:
		return "I" + strconv.FormatInt(v.I, 10)
	case types.KindFloat:
		return "F" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case types.KindString:
		return "S" + strconv.Quote(v.S)
	case types.KindBool:
		if v.I != 0 {
			return "B1"
		}
		return "B0"
	}
	return "N"
}

func decodeValue(s string) (types.Value, error) {
	if s == "" {
		return types.Null, fmt.Errorf("empty cell")
	}
	body := s[1:]
	switch s[0] {
	case 'N':
		return types.Null, nil
	case 'I':
		i, err := strconv.ParseInt(body, 10, 64)
		if err != nil {
			return types.Null, fmt.Errorf("bad int %q", body)
		}
		return types.NewInt(i), nil
	case 'F':
		f, err := strconv.ParseFloat(body, 64)
		if err != nil {
			return types.Null, fmt.Errorf("bad float %q", body)
		}
		return types.NewFloat(f), nil
	case 'S':
		str, err := strconv.Unquote(body)
		if err != nil {
			return types.Null, fmt.Errorf("bad string %q", body)
		}
		return types.NewString(str), nil
	case 'B':
		switch body {
		case "0":
			return types.NewBool(false), nil
		case "1":
			return types.NewBool(true), nil
		}
		return types.Null, fmt.Errorf("bad bool %q", body)
	}
	return types.Null, fmt.Errorf("unknown value tag %q", s[0])
}

// EncodeValue renders one scalar in the wire value form (N / I<int> /
// F<exact float> / S<%q> / B0 / B1). The write-ahead log reuses it for row
// records so WAL payloads round-trip values bit-exactly the same way the
// protocol does.
func EncodeValue(v types.Value) string { return encodeValue(v) }

// DecodeValue parses a value rendered by EncodeValue.
func DecodeValue(s string) (types.Value, error) { return decodeValue(s) }
