package wire

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"sqlsheet/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte("x"), 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: %d vs %d bytes", len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected io.EOF at end, got %v", err)
	}
}

func TestFrameTornHeader(t *testing.T) {
	if _, err := ReadFrame(strings.NewReader("\x00\x00")); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn header: got %v", err)
	}
	// Header promises 10 bytes, only 3 arrive.
	if _, err := ReadFrame(strings.NewReader("\x00\x00\x00\x0aabc")); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn payload: got %v", err)
	}
}

func TestFrameOversized(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized frame must be rejected before allocation")
	}
}

func TestResultRoundTrip(t *testing.T) {
	cols := []string{"r", "weird\tname", "v"}
	kinds := []string{"STRING", "INT", "FLOAT"}
	rows := []types.Row{
		{types.NewString("a\tb\nc"), types.NewInt(-42), types.NewFloat(0.1)},
		{types.Null, types.NewInt(math.MaxInt64), types.NewFloat(math.Inf(1))},
		{types.NewString(""), types.NewBool(true), types.NewFloat(1e-300)},
	}
	res, err := DecodeResponse(EncodeResult(cols, kinds, rows))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 3 || res.Cols[1] != "weird\tname" {
		t.Fatalf("cols = %q", res.Cols)
	}
	if len(res.Rows) != len(rows) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(rows))
	}
	for i, row := range rows {
		for j, want := range row {
			got := res.Rows[i][j]
			if got.K != want.K || got.String() != want.String() {
				t.Errorf("row %d col %d: %v(%v) != %v(%v)", i, j, got, got.K, want, want.K)
			}
		}
	}
}

func TestFloatExactRoundTrip(t *testing.T) {
	vals := []float64{1.0 / 3.0, math.Pi, 0.1 + 0.2, math.SmallestNonzeroFloat64, -0.0}
	rows := []types.Row{}
	for _, f := range vals {
		rows = append(rows, types.Row{types.NewFloat(f)})
	}
	res, err := DecodeResponse(EncodeResult([]string{"f"}, []string{"FLOAT"}, rows))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range vals {
		got := res.Rows[i][0].F
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Errorf("float %g not bit-exact: got %g", f, got)
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	in := &Error{Code: CodeParseError, Msg: "expected \"(\" near\nnewline",
		HasPos: true, Line: 3, Col: 14, Token: "sel\tect"}
	_, err := DecodeResponse(EncodeError(in))
	out, ok := err.(*Error)
	if !ok {
		t.Fatalf("decoded %T, want *Error", err)
	}
	if *out != *in {
		t.Fatalf("error round-trip: got %+v, want %+v", out, in)
	}

	plain := &Error{Code: CodeServerBusy, Msg: "queue full"}
	_, err = DecodeResponse(EncodeError(plain))
	out, ok = err.(*Error)
	if !ok || *out != *plain {
		t.Fatalf("plain error round-trip: got %+v", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	kind, body, err := DecodeRequest(EncodeQuery("SELECT 1;\nSELECT 2"))
	if err != nil || kind != ReqQuery || body != "SELECT 1;\nSELECT 2" {
		t.Fatalf("query: %q %q %v", kind, body, err)
	}
	if _, _, err := DecodeRequest([]byte("NONSENSE")); err == nil {
		t.Fatal("unknown request must error")
	}
}

func TestSubplanRoundTrip(t *testing.T) {
	// The envelope is opaque binary: embedded newlines, NULs and a fake
	// PART marker must all survive the trip.
	env := []byte("\x00\x01PART\nbinary\nstuff\xff")
	kind, body, err := DecodeRequest(EncodeSubplan("c1-42", env))
	if err != nil || kind != ReqSubplan {
		t.Fatalf("subplan: %q %v", kind, err)
	}
	id, got, err := SplitSubplan(body)
	if err != nil || id != "c1-42" || !bytes.Equal(got, env) {
		t.Fatalf("split: id=%q env=%q err=%v", id, got, err)
	}
	if _, _, err := SplitSubplan("no-newline"); err == nil {
		t.Fatal("missing id line must error")
	}

	kind, body, err = DecodeRequest(EncodeCancel("c1-42"))
	if err != nil || kind != ReqCancel || body != "c1-42" {
		t.Fatalf("cancel: %q %q %v", kind, body, err)
	}
}

func TestPartFrames(t *testing.T) {
	chunk := []byte("\x00pages\nwith\nnewlines")
	got, ok := DecodePart(EncodePart(chunk))
	if !ok || !bytes.Equal(got, chunk) {
		t.Fatalf("part round-trip: ok=%v got=%q", ok, got)
	}
	if empty, ok := DecodePart(EncodePart(nil)); !ok || len(empty) != 0 {
		t.Fatal("empty part must round-trip")
	}
	// Terminal responses must not be mistaken for parts.
	if _, ok := DecodePart(EncodeResult(nil, nil, nil)); ok {
		t.Fatal("OK response misread as PART")
	}
	if _, ok := DecodePart(EncodeError(&Error{Code: CodeExecError, Msg: "x"})); ok {
		t.Fatal("ERR response misread as PART")
	}
	// And a PART frame is not a decodable terminal response.
	if _, err := DecodeResponse(EncodePart(chunk)); err == nil {
		t.Fatal("PART frame must not decode as a response")
	}
}
