package experiments

import (
	"sort"
	"strings"
	"testing"

	"sqlsheet"
)

func TestS5SpreadsheetEqualsJoins(t *testing.T) {
	// The spreadsheet formulation of S5 and its ANSI self-join equivalent
	// must produce identical share values (the premise of Fig. 3).
	db, _, err := Setup(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	sheet, err := db.Query(S5Query(n, nil))
	if err != nil {
		t.Fatal(err)
	}
	joins, err := db.Query(S5JoinQuery(n, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(sheet.Rows) != len(joins.Rows) {
		t.Fatalf("row counts: sheet=%d joins=%d", len(sheet.Rows), len(joins.Rows))
	}
	key := func(r sqlsheet.Row) string {
		return r[0].String() + "|" + r[1].String() + "|" + r[2].String() + "|" + r[3].String()
	}
	// sheet columns: c,h,t,p,s,share1..n; join columns: same order.
	jm := map[string]sqlsheet.Row{}
	for _, r := range joins.Rows {
		jm[key(r)] = r
	}
	for _, sr := range sheet.Rows {
		jr, ok := jm[key(sr)]
		if !ok {
			t.Fatalf("join result missing cell %s", key(sr))
		}
		for c := 4; c < 5+n; c++ {
			a, b := sr[c], jr[c]
			if a.IsNull() != b.IsNull() {
				t.Fatalf("cell %s col %d: %v vs %v", key(sr), c, a, b)
			}
			if !a.IsNull() {
				d := a.Float() - b.Float()
				if d > 1e-9 || d < -1e-9 {
					t.Fatalf("cell %s col %d: %v vs %v", key(sr), c, a, b)
				}
			}
		}
	}
}

func TestFig2StrategiesAgree(t *testing.T) {
	// All pushing strategies must return the same rows for the same
	// selectivity — speed differs, results must not.
	db, _, err := Setup(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BaseProducts(db)
	if err != nil {
		t.Fatal(err)
	}
	prods := selectProducts(base, 0.1)
	q := S5Query(3, prods)

	var baseline []string
	for _, cfg := range []sqlsheet.Config{
		{DisableSheetPush: true, DisableSheetPrune: true},
		{Push: sqlsheet.PushExtended},
		{Push: sqlsheet.PushUnfold},
		{Push: sqlsheet.PushRefSubquery},
		{Push: sqlsheet.PushRefSubquery, ForceJoin: sqlsheet.JoinNestedLoop},
	} {
		db.Configure(cfg)
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		var rows []string
		for _, r := range res.Rows {
			var parts []string
			for _, v := range r {
				parts = append(parts, v.String())
			}
			rows = append(rows, strings.Join(parts, "|"))
		}
		sort.Strings(rows)
		if baseline == nil {
			baseline = rows
			if len(baseline) == 0 {
				t.Fatal("baseline returned no rows")
			}
			continue
		}
		if len(rows) != len(baseline) {
			t.Fatalf("cfg %+v: %d rows vs %d", cfg, len(rows), len(baseline))
		}
		for i := range rows {
			if rows[i] != baseline[i] {
				t.Fatalf("cfg %+v: row %d differs:\n%s\n%s", cfg, i, rows[i], baseline[i])
			}
		}
	}
}

func TestFig3RunsAndCounts(t *testing.T) {
	series, err := Fig3(SmallScale, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	// Identical result cardinalities for both formulations.
	for i := range series[0].Points {
		if series[0].Points[i].Rows != series[1].Points[i].Rows {
			t.Errorf("rule count %v: %d vs %d rows",
				series[0].Points[i].X, series[0].Points[i].Rows, series[1].Points[i].Rows)
		}
	}
}

func TestFig5BudgetSweep(t *testing.T) {
	s, loads, err := Fig5(SmallScale, []int{40, 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 || len(loads) != 2 {
		t.Fatalf("points = %v", s.Points)
	}
	if s.Points[0].Rows != s.Points[1].Rows {
		t.Error("budget must not change results")
	}
	if loads[0] <= loads[1] {
		t.Errorf("tight budget must load more blocks: %v", loads)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]string{
		{"1999-01", "1998-01", "1998-10"},
		{"1999-02", "1998-02", "1998-11"},
		{"1999-03", "1998-03", "1998-12"},
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %v, want %v", i, rows[i], want[i])
		}
	}
}

func TestFormatSeries(t *testing.T) {
	out := FormatSeries("Fig X", "selectivity", []Series{
		{Name: "a", Points: []Point{{X: 0.1, Y: 0.5}, {X: 0.2, Y: 1.0}}},
		{Name: "b", Points: []Point{{X: 0.1, Y: 1.0}}},
	})
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "selectivity") {
		t.Errorf("format broken:\n%s", out)
	}
	if !strings.Contains(out, "1.00") || !strings.Contains(out, "2.00") {
		t.Errorf("normalization broken:\n%s", out)
	}
}

func TestSelectProducts(t *testing.T) {
	base := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	if got := selectProducts(base, 0.2); len(got) != 2 {
		t.Errorf("0.2 → %v", got)
	}
	if got := selectProducts(base, 0.0001); len(got) != 1 {
		t.Errorf("tiny → %v", got)
	}
	if got := selectProducts(base, 2.0); len(got) != 10 {
		t.Errorf("clamp → %v", got)
	}
}
