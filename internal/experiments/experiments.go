// Package experiments regenerates every table and figure of the paper's §6
// evaluation: predicate pushing (Fig. 2), hash join vs. spreadsheet
// (Fig. 3), scalability with the number of formulas and parallel execution
// (Fig. 4), the memory-limited access structure (Fig. 5), and the Table 1
// time mapping. The same workload builders feed the testing.B benchmarks in
// the repository root and the cmd/experiments binary that prints the
// paper-style series.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sqlsheet"
	"sqlsheet/internal/blockstore"
)

// Scale presets.
var (
	// SmallScale keeps full runs under a second per point (unit tests).
	SmallScale = sqlsheet.APBScale{
		Seed: 1, ProductFanout: []int{2, 2, 2, 2, 3, 3},
		Channels: 2, Customers: 2, Years: 1, Density: 0.2,
	}
	// DefaultScale is the cmd/experiments default (~10^5 cube rows).
	DefaultScale = sqlsheet.APBScale{
		Seed: 1, ProductFanout: []int{2, 2, 3, 3, 3, 4},
		Channels: 2, Customers: 4, Years: 1, Density: 0.1,
	}
	// Fig5Scale concentrates rows into few, large partitions (a deep
	// product hierarchy, one channel/customer), the regime of the paper's
	// memory experiment: its partitions were ~15 MB, far larger than a
	// cache block.
	Fig5Scale = sqlsheet.APBScale{
		Seed: 1, ProductFanout: []int{3, 3, 3, 3, 4, 4},
		Channels: 1, Customers: 1, Years: 1, Density: 0.5,
	}
)

// Workers, when non-zero, sets the operator worker-pool size on every
// configuration the experiments apply (cmd/experiments -workers). It layers
// morsel-driven operator parallelism on top of whatever each figure varies;
// results are unchanged, only timings move.
var Workers int

// withWorkers applies the package-level Workers override to a configuration.
func withWorkers(cfg sqlsheet.Config) sqlsheet.Config {
	cfg.Workers = Workers
	// Experiments time the engine; a warm serving-path cache would answer
	// repeated timing iterations without executing.
	cfg.DisablePlanCache = true
	return cfg
}

// Setup creates a database with the APB dataset installed.
func Setup(scale sqlsheet.APBScale) (*sqlsheet.DB, sqlsheet.APBInfo, error) {
	db := sqlsheet.Open()
	info, err := db.InstallAPB(scale)
	if err != nil {
		return nil, info, err
	}
	return db, info, nil
}

// BaseProducts lists the base-level product codes present in the cube, in
// deterministic order. Used to build selectivity-controlled predicates.
func BaseProducts(db *sqlsheet.DB) ([]string, error) {
	res, err := db.Query(`SELECT DISTINCT p FROM product_dt WHERE lvl = 6 ORDER BY p`)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[0].String()
	}
	return out, nil
}

// S5Query builds the paper's query S5 generalized to nRules share-of-parent
// formulas, optionally wrapped in an outer block filtering products.
// Rule i divides by parent (i-1)%3 + 1.
func S5Query(nRules int, prodFilter []string) string {
	var shares, meas, rules []string
	for i := 1; i <= nRules; i++ {
		parent := (i-1)%3 + 1
		shares = append(shares, fmt.Sprintf("share_%d", i))
		meas = append(meas, fmt.Sprintf("0 share_%d", i))
		rules = append(rules, fmt.Sprintf(
			"F%d: share_%d[*] = s[cv(p)] / s[parent%d[cv(p)]]", i, i, parent))
	}
	inner := fmt.Sprintf(`SELECT c, h, t, p, s, %s FROM apb_cube
  SPREADSHEET
    REFERENCE pref ON
      (SELECT p, parent1, parent2, parent3 FROM product_dt)
      DBY (p) MEA (parent1, parent2, parent3)
    PBY (c, h, t) DBY (p)
    MEA (s, %s)
  RULES UPDATE
  ( %s )`,
		strings.Join(shares, ", "), strings.Join(meas, ", "), strings.Join(rules, ",\n    "))
	if len(prodFilter) == 0 {
		return inner
	}
	return fmt.Sprintf("SELECT * FROM (%s) v WHERE p IN (%s)", inner, quoteList(prodFilter))
}

// S5JoinQuery builds the ANSI-join equivalent of S5Query: one self-join of
// apb_cube per rule plus a join to product_dt (§6, "Hash-Join vs. SQL
// Spreadsheet").
func S5JoinQuery(nRules int, prodFilter []string) string {
	var sel, joins []string
	sel = append(sel, "a1.c", "a1.h", "a1.t", "a1.p", "a1.s")
	for i := 1; i <= nRules; i++ {
		parent := (i-1)%3 + 1
		a := fmt.Sprintf("a%d", i+1)
		sel = append(sel, fmt.Sprintf("a1.s / %s.s AS share_%d", a, i))
		joins = append(joins, fmt.Sprintf(
			"LEFT JOIN apb_cube %[1]s ON %[1]s.p = pd.parent%[2]d AND %[1]s.c = a1.c AND %[1]s.h = a1.h AND %[1]s.t = a1.t",
			a, parent))
	}
	q := fmt.Sprintf(`SELECT %s
FROM apb_cube a1
LEFT JOIN product_dt pd ON a1.p = pd.p
%s`, strings.Join(sel, ", "), strings.Join(joins, "\n"))
	if len(prodFilter) > 0 {
		q += "\nWHERE a1.p IN (" + quoteList(prodFilter) + ")"
	}
	return q
}

func quoteList(vals []string) string {
	qs := make([]string, len(vals))
	for i, v := range vals {
		qs[i] = "'" + strings.ReplaceAll(v, "'", "''") + "'"
	}
	return strings.Join(qs, ", ")
}

// Point is one measured (x, y) sample.
type Point struct {
	X float64
	Y float64 // seconds
	// Rows sanity-checks that variants compute the same result set.
	Rows int
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// timeQuery runs a query three times (the first doubles as warm-up) and
// returns the fastest time plus the row count — single samples are too
// noisy for the relative-units tables.
func timeQuery(db *sqlsheet.DB, q string) (float64, int, error) {
	best := 0.0
	rows := 0
	for i := 0; i < 3; i++ {
		start := time.Now()
		res, err := db.Query(q)
		if err != nil {
			return 0, 0, fmt.Errorf("%v\nquery:\n%s", err, q)
		}
		secs := time.Since(start).Seconds()
		if i == 0 || secs < best {
			best = secs
		}
		rows = len(res.Rows)
	}
	return best, rows, nil
}

// selectProducts picks ~selectivity×len(base) products deterministically.
func selectProducts(base []string, selectivity float64) []string {
	k := int(selectivity*float64(len(base)) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(base) {
		k = len(base)
	}
	// Spread the picks across the sorted list for stable behaviour.
	out := make([]string, 0, k)
	step := float64(len(base)) / float64(k)
	for i := 0; i < k; i++ {
		out = append(out, base[int(float64(i)*step)])
	}
	return out
}

// Fig2 measures the predicate-pushing strategies of §4 against the no-push
// baseline, across outer-predicate selectivities (paper Fig. 2).
func Fig2(scale sqlsheet.APBScale, selectivities []float64) ([]Series, error) {
	db, _, err := Setup(scale)
	if err != nil {
		return nil, err
	}
	base, err := BaseProducts(db)
	if err != nil {
		return nil, err
	}
	type variant struct {
		name string
		cfg  func(c *sqlsheet.Config)
	}
	variants := []variant{
		{"no-pushing", func(c *sqlsheet.Config) { c.DisableSheetPush = true }},
		{"extended-pushing", func(c *sqlsheet.Config) { c.Push = sqlsheet.PushExtended }},
		{"formula-unfolding", func(c *sqlsheet.Config) { c.Push = sqlsheet.PushUnfold }},
		{"subquery-nested-loop", func(c *sqlsheet.Config) {
			c.Push = sqlsheet.PushRefSubquery
			c.ForceJoin = sqlsheet.JoinNestedLoop
		}},
		{"subquery-forced-hash", func(c *sqlsheet.Config) {
			c.Push = sqlsheet.PushRefSubquery
			c.ForceJoin = sqlsheet.JoinHash
		}},
	}
	var out []Series
	for _, v := range variants {
		s := Series{Name: v.name}
		for _, sel := range selectivities {
			prods := selectProducts(base, sel)
			q := S5Query(3, prods)
			cfg := sqlsheet.Config{}
			v.cfg(&cfg)
			db.Configure(withWorkers(cfg))
			secs, rows, err := timeQuery(db, q)
			if err != nil {
				return nil, fmt.Errorf("%s sel=%g: %v", v.name, sel, err)
			}
			s.Points = append(s.Points, Point{X: sel, Y: secs, Rows: rows})
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig3 compares the spreadsheet formulation against the equivalent N-self-
// join ANSI query as the number of rules grows (paper Fig. 3).
func Fig3(scale sqlsheet.APBScale, ruleCounts []int) ([]Series, error) {
	db, _, err := Setup(scale)
	if err != nil {
		return nil, err
	}
	db.Configure(withWorkers(sqlsheet.Config{}))
	sheet := Series{Name: "sql-spreadsheet"}
	joins := Series{Name: "self-joins"}
	for _, n := range ruleCounts {
		secs, rows, err := timeQuery(db, S5Query(n, nil))
		if err != nil {
			return nil, err
		}
		sheet.Points = append(sheet.Points, Point{X: float64(n), Y: secs, Rows: rows})
		secs, rows, err = timeQuery(db, S5JoinQuery(n, nil))
		if err != nil {
			return nil, err
		}
		joins.Points = append(joins.Points, Point{X: float64(n), Y: secs, Rows: rows})
	}
	return []Series{sheet, joins}, nil
}

// Fig4 measures response time as a function of the number of formulas
// (serial), plus parallel speedup across PE counts (paper Fig. 4 reports
// near-linear scaling and ~80% parallel efficiency at 12 PEs).
func Fig4(scale sqlsheet.APBScale, formulaCounts []int, dops []int) ([]Series, error) {
	db, _, err := Setup(scale)
	if err != nil {
		return nil, err
	}
	db.Configure(withWorkers(sqlsheet.Config{}))
	serial := Series{Name: "serial"}
	maxN := 0
	for _, n := range formulaCounts {
		if n > maxN {
			maxN = n
		}
		secs, rows, err := timeQuery(db, S5Query(n, nil))
		if err != nil {
			return nil, err
		}
		serial.Points = append(serial.Points, Point{X: float64(n), Y: secs, Rows: rows})
	}
	par := Series{Name: "parallel-speedup"}
	for _, dop := range dops {
		db.Configure(withWorkers(sqlsheet.Config{Parallel: dop, Buckets: dop * 4}))
		secs, rows, err := timeQuery(db, S5Query(maxN, nil))
		if err != nil {
			return nil, err
		}
		par.Points = append(par.Points, Point{X: float64(dop), Y: secs, Rows: rows})
	}
	// Third series: the same sweep applied to the relational operators — the
	// ANSI self-join formulation with the morsel-driven worker pool at each
	// degree. It answers the obvious follow-up to Fig. 3: does the join
	// formulation catch up when it too is parallelized?
	opPar := Series{Name: "operator-parallel-joins"}
	for _, dop := range dops {
		db.Configure(sqlsheet.Config{Workers: dop, DisablePlanCache: true})
		secs, rows, err := timeQuery(db, S5JoinQuery(maxN, nil))
		if err != nil {
			return nil, err
		}
		opPar.Points = append(opPar.Points, Point{X: float64(dop), Y: secs, Rows: rows})
	}
	return []Series{serial, par, opPar}, nil
}

// Fig5 sweeps the access structure's memory budget as a percentage of the
// largest first-level partition, measuring response time and spill I/O for
// the single-rule share query (paper Fig. 5).
func Fig5(scale sqlsheet.APBScale, percents []int) (Series, []int64, error) {
	db, _, err := Setup(scale)
	if err != nil {
		return Series{}, nil, err
	}
	q := S5Query(1, nil)
	// Compute the largest partition's resident bytes exactly, with the
	// block store's own accounting.
	res, err := db.Query(`SELECT c, h, t, p, s FROM apb_cube`)
	if err != nil {
		return Series{}, nil, err
	}
	partBytes := map[string]int64{}
	var largest int64
	for _, row := range res.Rows {
		k := row[0].String() + "|" + row[1].String() + "|" + row[2].String()
		partBytes[k] += blockstore.RowBytes(row)
		if partBytes[k] > largest {
			largest = partBytes[k]
		}
	}

	s := Series{Name: "response-time"}
	var loads []int64
	for _, pct := range percents {
		budget := largest * int64(pct) / 100
		db.Configure(withWorkers(sqlsheet.Config{MemoryBudget: budget, Buckets: 8}))
		start := time.Now()
		result, stats, err := db.QueryStats(q)
		if err != nil {
			return Series{}, nil, err
		}
		s.Points = append(s.Points, Point{X: float64(pct), Y: time.Since(start).Seconds(), Rows: len(result.Rows)})
		loads = append(loads, stats.BlockLoads)
	}
	return s, loads, nil
}

// Table1 reproduces the paper's Table 1: the month → year-ago/quarter-ago
// mapping held in time_dt.
func Table1(scale sqlsheet.APBScale) ([][3]string, error) {
	if scale.Years < 2 {
		scale.Years = 2 // the mapping needs the 1999 months present
	}
	db, _, err := Setup(scale)
	if err != nil {
		return nil, err
	}
	res, err := db.Query(`SELECT m, m_yago, m_qago FROM time_dt
		WHERE m IN ('1999-01','1999-02','1999-03') ORDER BY m`)
	if err != nil {
		return nil, err
	}
	var out [][3]string
	for _, r := range res.Rows {
		out = append(out, [3]string{r[0].String(), r[1].String(), r[2].String()})
	}
	return out, nil
}

// FormatSeries renders series as an aligned relative-units table, the way
// the paper reports ("only relative units of time are reported"): every Y
// is normalized to the smallest Y across all series.
func FormatSeries(title, xLabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	minY := 0.0
	for _, s := range series {
		for _, p := range s.Points {
			if p.Y > 0 && (minY == 0 || p.Y < minY) {
				minY = p.Y
			}
		}
	}
	if minY == 0 {
		minY = 1
	}
	// Collect the x values (union, sorted).
	xsSet := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	fmt.Fprintf(&b, "%-14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%22s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14g", x)
		for _, s := range series {
			val := ""
			for _, p := range s.Points {
				if p.X == x {
					val = fmt.Sprintf("%.2f", p.Y/minY)
				}
			}
			fmt.Fprintf(&b, "%22s", val)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
