package experiments

import (
	"strings"
	"testing"
)

// Smoke tests for the figure drivers not covered elsewhere, at tiny scale.

func TestFig2Driver(t *testing.T) {
	series, err := Fig2(SmallScale, []float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("series = %d", len(series))
	}
	rows := series[0].Points[0].Rows
	for _, s := range series {
		if len(s.Points) != 1 {
			t.Fatalf("%s points = %d", s.Name, len(s.Points))
		}
		if s.Points[0].Rows != rows {
			t.Errorf("%s returned %d rows, baseline %d", s.Name, s.Points[0].Rows, rows)
		}
		if s.Points[0].Y <= 0 {
			t.Errorf("%s has nonpositive time", s.Name)
		}
	}
}

func TestFig4Driver(t *testing.T) {
	series, err := Fig4(SmallScale, []int{1, 2}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("%s points = %d", s.Name, len(s.Points))
		}
	}
	// Parallel runs must compute the same result cardinality, for the
	// spreadsheet PEs and for the operator worker pool alike.
	if series[1].Points[0].Rows != series[1].Points[1].Rows {
		t.Error("parallel DOPs disagree on row count")
	}
	if series[2].Points[0].Rows != series[2].Points[1].Rows {
		t.Error("operator worker counts disagree on row count")
	}
}

func TestS5QueryShapes(t *testing.T) {
	q := S5Query(2, []string{"a'b"})
	// Quoting of product codes with quotes.
	if want := "'a''b'"; !contains(q, want) {
		t.Errorf("quoting broken:\n%s", q)
	}
	if !contains(q, "share_2") || contains(q, "share_3") {
		t.Errorf("rule count wrong:\n%s", q)
	}
	j := S5JoinQuery(2, []string{"x"})
	if !contains(j, "LEFT JOIN apb_cube a3") || contains(j, "a4") {
		t.Errorf("join count wrong:\n%s", j)
	}
	if !contains(j, "WHERE a1.p IN ('x')") {
		t.Errorf("join filter missing:\n%s", j)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
