package catalog

import (
	"sync"

	"sqlsheet/internal/mvcc"
)

// Snapshot pins per-table MVCC images for the duration of one statement.
// Pinning is lazy — a table's image is captured at the statement's first
// access to it — which is equivalent to pinning everything up front because
// writers publish only at statement boundaries (a mutating statement
// touches one table's rows and publishes once it completes), so any
// combination of pins is a state some serial statement order produced.
//
// A Snapshot is safe for concurrent use by the executor's worker
// goroutines: the pin map is mutex-guarded, and the Images themselves are
// immutable.
type Snapshot struct {
	mu   sync.Mutex
	pins map[*Table]*mvcc.Image
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{pins: make(map[*Table]*mvcc.Image)}
}

// Pin returns the table's image as of this snapshot's first access to it.
// Repeated calls return the same image even if writers have published newer
// versions since.
func (s *Snapshot) Pin(t *Table) *mvcc.Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	if im := s.pins[t]; im != nil {
		return im
	}
	im := t.Img()
	s.pins[t] = im
	return im
}

// Pinned returns t's pinned version without pinning it; ok is false when
// the snapshot never read t.
func (s *Snapshot) Pinned(t *Table) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	im := s.pins[t]
	if im == nil {
		return 0, false
	}
	return im.Version, true
}

// Version returns the pinned version of a table (pinning it if needed).
// The plan cache stamps result dependencies with pinned — not live —
// versions so a result computed against snapshot V can never be registered
// under a later version installed mid-flight.
func (s *Snapshot) Version(t *Table) int64 {
	return s.Pin(t).Version
}
