package catalog

import (
	"bytes"
	"strings"
	"testing"

	"sqlsheet/internal/types"
)

func TestCreateGetDrop(t *testing.T) {
	c := New()
	tb, err := c.Create("F", types.NewSchemaNames("t", "s"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Name != "f" {
		t.Errorf("name not lowercased: %q", tb.Name)
	}
	if _, err := c.Create("f", types.NewSchemaNames("x")); err == nil {
		t.Error("duplicate create must fail")
	}
	got, ok := c.Get("F")
	if !ok || got != tb {
		t.Error("case-insensitive Get broken")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "f" {
		t.Errorf("Names = %v", names)
	}
	c.Drop("f")
	if _, ok := c.Get("f"); ok {
		t.Error("Drop broken")
	}
}

func TestInsertCoercion(t *testing.T) {
	c := New()
	tb, _ := c.Create("f", types.NewSchema(
		types.Column{Name: "t", Kind: types.KindInt},
		types.Column{Name: "s", Kind: types.KindFloat},
		types.Column{Name: "p", Kind: types.KindString},
	))
	if err := tb.Insert(types.Row{types.NewFloat(2000), types.NewInt(5), types.NewString("tv")}); err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][0].K != types.KindInt || tb.Rows[0][1].K != types.KindFloat {
		t.Errorf("coercion broken: %v", tb.Rows[0])
	}
	if err := tb.Insert(types.Row{types.Null, types.Null, types.Null}); err != nil {
		t.Fatalf("NULLs must insert: %v", err)
	}
	if err := tb.Insert(types.Row{types.NewString("x"), types.NewInt(1), types.NewString("y")}); err == nil {
		t.Error("string→int must fail")
	}
	if err := tb.Insert(types.Row{types.NewInt(1)}); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := New()
	tb, _ := c.Create("f", types.NewSchemaNames("t", "s", "p"))
	n, err := tb.LoadCSV(strings.NewReader("t,s,p\n2000,1.5,tv\n2001,,vcr\n"), true)
	if err != nil || n != 2 {
		t.Fatalf("LoadCSV: n=%d err=%v", n, err)
	}
	if tb.Rows[0][0].Int() != 2000 || tb.Rows[0][1].F != 1.5 || tb.Rows[0][2].S != "tv" {
		t.Errorf("row 0 = %v", tb.Rows[0])
	}
	if !tb.Rows[1][1].IsNull() {
		t.Error("empty field must be NULL")
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "t,s,p\n") || !strings.Contains(out, "2001,,vcr") {
		t.Errorf("WriteCSV = %q", out)
	}
}

func TestParseField(t *testing.T) {
	if v := ParseField("42"); v.K != types.KindInt {
		t.Errorf("int: %v", v)
	}
	if v := ParseField("4.5"); v.K != types.KindFloat {
		t.Errorf("float: %v", v)
	}
	if v := ParseField("1999-01"); v.K != types.KindString || v.S != "1999-01" {
		t.Errorf("month string: %v", v)
	}
	if v := ParseField(""); !v.IsNull() {
		t.Errorf("empty: %v", v)
	}
}
