// Package catalog manages named tables and their row storage. It is the
// engine's "dictionary": the paper contrasts spreadsheets' lack of shared
// metadata with RDBMS catalogs, and this package is that catalog.
package catalog

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sqlsheet/internal/colstore"
	"sqlsheet/internal/mvcc"
	"sqlsheet/internal/types"
)

// Table is a named relation with a schema and in-memory row storage.
// Version increments on every mutation; materialized-view refresh uses it
// to distinguish pure appends (incremental-refresh eligible) from updates
// and deletes, and the serving-path cache snapshots it to invalidate
// derived artifacts. Version is atomic because cache probes read it
// lock-free while a concurrent writer (holding the DB statement lock, which
// readers of *other* tables do not contend on) bumps it; Rows itself is
// only safe under the reader/writer discipline documented on sqlsheet.DB.
type Table struct {
	Name    string
	Schema  *types.Schema
	Rows    []types.Row
	Version atomic.Int64

	// colMu serializes columnar image builds; colImg caches the latest
	// image, keyed by the Version it was built at (see Columnar).
	colMu  sync.Mutex
	colImg atomic.Pointer[colImage]

	// img is the last published MVCC image: the row set readers under
	// snapshot isolation scan. Writers publish at statement boundaries
	// (Publish / Catalog.PublishAll) while holding the exclusive statement
	// lock; readers pin it lock-free through a Snapshot. See internal/mvcc
	// for the copy-on-write discipline that makes this safe.
	img atomic.Pointer[mvcc.Image]
}

// colImage is one cached columnar image: the table's rows transposed into
// typed vectors at a specific version. img is nil when the rows were not
// rectangular at that version (the negative result is cached too). Besides
// the version, the key records the row slice's identity (length and first
// element address) so code that swaps Rows wholesale without bumping
// Version — tests mostly — still gets a fresh image; in-place row
// replacement (UPDATE/DELETE) always bumps Version.
type colImage struct {
	version int64
	nrows   int
	first   *types.Row
	img     *colstore.Table
}

func (ci *colImage) fresh(v int64, rows []types.Row) bool {
	if ci == nil || ci.version != v || ci.nrows != len(rows) {
		return false
	}
	if len(rows) == 0 {
		return ci.first == nil
	}
	return ci.first == &rows[0]
}

// Columnar returns a columnar image of the table's current rows, built
// lazily and cached until the next mutation invalidates it. It returns nil
// when the rows are not rectangular. Callers must hold whatever lock makes
// t.Rows safe to scan (the DB statement read lock); Version is read first
// so an image is never published under a version newer than the rows it
// was built from.
func (t *Table) Columnar() *colstore.Table {
	v := t.Version.Load()
	if ci := t.colImg.Load(); ci.fresh(v, t.Rows) {
		return ci.img
	}
	t.colMu.Lock()
	defer t.colMu.Unlock()
	if ci := t.colImg.Load(); ci.fresh(v, t.Rows) {
		return ci.img
	}
	img := colstore.FromRows(t.Schema.Len(), t.Rows)
	ci := &colImage{version: v, nrows: len(t.Rows), img: img}
	if len(t.Rows) > 0 {
		ci.first = &t.Rows[0]
	}
	t.colImg.Store(ci)
	return img
}

// Publish installs the table's current rows as its readable MVCC image.
// The caller must hold the lock that makes t.Rows safe to read (the
// exclusive statement lock, or exclusive ownership of a fresh table). When
// the live columnar cache is fresh at the published version the image
// inherits it, so the snapshot and no-snapshot paths share one
// transposition.
func (t *Table) Publish() {
	v := t.Version.Load()
	im := mvcc.NewImage(v, t.Schema.Len(), t.Rows)
	if ci := t.colImg.Load(); ci.fresh(v, t.Rows) {
		im.SeedColumnar(ci.img)
	}
	t.img.Store(im)
}

// Img returns the table's last published image. Catalog-registered tables
// always have one (Create and CreateMatView publish before the table
// becomes visible); for a Table constructed directly — tests, the shard
// workers' ephemeral catalogs — it falls back to a one-off image of the
// live rows, which those single-owner callers read safely by construction.
func (t *Table) Img() *mvcc.Image {
	if im := t.img.Load(); im != nil {
		return im
	}
	return mvcc.NewImage(t.Version.Load(), t.Schema.Len(), t.Rows)
}

// PublishAll publishes every table whose rows changed since its last image
// (version bumped, or the slice swapped wholesale). The database calls it
// at the end of every mutating statement, under the exclusive statement
// lock, so readers pin only statement-boundary states.
func (c *Catalog) PublishAll() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, t := range c.tables {
		if !t.img.Load().Covers(t.Version.Load(), t.Rows) {
			t.Publish()
		}
	}
}

// Catalog is a registry of tables. It is safe for concurrent readers with a
// single writer per table.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*View
	mviews map[string]*MatView
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create registers a new empty table. It fails if the name exists.
func (c *Catalog) Create(name string, schema *types.Schema) (*Table, error) {
	name = strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureViews()
	if c.nameInUse(name) {
		return nil, fmt.Errorf("table %q already exists", name)
	}
	t := &Table{Name: name, Schema: schema}
	// Publish the empty image before the table becomes visible, so a
	// snapshot reader racing the creating statement pins a well-defined
	// (empty) state instead of nil.
	t.Publish()
	c.tables[name] = t
	return t, nil
}

// Drop removes a table; missing tables are ignored.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, strings.ToLower(name))
}

// Get looks a table up by name.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Names returns all table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ns := make([]string, 0, len(c.tables))
	for n := range c.tables {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Insert appends rows to a table, coercing each value to the declared
// column kind where a kind is declared.
func (t *Table) Insert(rows ...types.Row) error {
	for _, r := range rows {
		if len(r) != t.Schema.Len() {
			return fmt.Errorf("table %q: row has %d values, schema has %d columns", t.Name, len(r), t.Schema.Len())
		}
		cp := make(types.Row, len(r))
		for i, v := range r {
			cv, err := Coerce(v, t.Schema.Cols[i].Kind)
			if err != nil {
				return fmt.Errorf("table %q column %q: %v", t.Name, t.Schema.Cols[i].Name, err)
			}
			cp[i] = cv
		}
		t.Rows = append(t.Rows, cp)
		t.Version.Add(1)
	}
	return nil
}

// Coerce converts v to the declared kind. KindNull declarations accept any
// value unchanged; NULL passes through every declaration.
func Coerce(v types.Value, k types.Kind) (types.Value, error) {
	if v.IsNull() || k == types.KindNull || v.K == k {
		return v, nil
	}
	switch k {
	case types.KindInt:
		if v.K == types.KindFloat {
			return types.NewInt(int64(v.F)), nil
		}
	case types.KindFloat:
		if v.K == types.KindInt {
			return types.NewFloat(float64(v.I)), nil
		}
	case types.KindString:
		return types.NewString(v.String()), nil
	}
	return types.Null, fmt.Errorf("cannot store %s value as %s", v.K, k)
}

// LoadCSV reads CSV data into the table. Columns are matched positionally;
// values parse as int, then float, then string; empty fields become NULL.
func (t *Table) LoadCSV(r io.Reader, skipHeader bool) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = t.Schema.Len()
	n := 0
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if first && skipHeader {
			first = false
			continue
		}
		first = false
		row := make(types.Row, len(rec))
		for i, f := range rec {
			row[i] = ParseField(f)
		}
		if err := t.Insert(row); err != nil {
			return n, err
		}
		n++
	}
}

// ParseField converts one CSV field into a Value.
func ParseField(f string) types.Value {
	if f == "" {
		return types.Null
	}
	if i, err := strconv.ParseInt(f, 10, 64); err == nil {
		return types.NewInt(i)
	}
	if fl, err := strconv.ParseFloat(f, 64); err == nil {
		return types.NewFloat(fl)
	}
	return types.NewString(f)
}

// WriteCSV writes the table's rows (with a header) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.Names()); err != nil {
		return err
	}
	rec := make([]string, t.Schema.Len())
	for _, row := range t.Rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
