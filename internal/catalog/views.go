package catalog

import (
	"fmt"
	"sort"
	"strings"

	"sqlsheet/internal/sqlast"
)

// View is a stored query expanded at plan time. The paper expects
// applications to "generate views containing spreadsheets with thousands of
// formulas" and relies on formula pruning when users query them (§4).
type View struct {
	Name  string
	Query *sqlast.SelectStmt
}

// MatView is a materialized view: a stored query plus its materialized rows
// (registered as a table of the same name) and the bookkeeping incremental
// refresh needs (§7 "Materialized Views").
type MatView struct {
	Name  string
	Query *sqlast.SelectStmt
	// DefSQL is the canonical (FormatStatement) rendering of Query; the
	// optimizer's exact-match rewrite compares against it.
	DefSQL string
	// Table holds the materialized rows; it is also registered in the
	// table namespace so scans resolve it like any relation.
	Table *Table

	// Incremental-refresh metadata (zero values = full refresh only).
	// MainSource is the fact table under the view's spreadsheet; PbyCols
	// maps the spreadsheet's PBY columns to (source ordinal, output
	// ordinal) pairs.
	MainSource string
	PbyCols    []PbyBinding
	// Watermarks records each source table's row count at last refresh; a
	// grown count identifies the appended delta.
	Watermarks map[string]int
	// Versions records each source's mutation counter at last refresh. A
	// version change that is not explained by appends (inserts bump both
	// counters in step) forces a full refresh.
	Versions map[string]int64
}

// PbyBinding ties one PBY column to its position in the source table and in
// the materialized output.
type PbyBinding struct {
	Name      string
	SourceCol int
	OutputCol int
}

// ensureViews lazily initializes the view namespaces.
func (c *Catalog) ensureViews() {
	if c.views == nil {
		c.views = make(map[string]*View)
	}
	if c.mviews == nil {
		c.mviews = make(map[string]*MatView)
	}
}

// nameInUse reports whether any namespace holds the name. Callers hold c.mu.
func (c *Catalog) nameInUse(name string) bool {
	if _, ok := c.tables[name]; ok {
		return true
	}
	if _, ok := c.views[name]; ok {
		return true
	}
	_, ok := c.mviews[name]
	return ok
}

// CreateView registers a plain view.
func (c *Catalog) CreateView(name string, query *sqlast.SelectStmt) (*View, error) {
	name = strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureViews()
	if c.nameInUse(name) {
		return nil, fmt.Errorf("object %q already exists", name)
	}
	v := &View{Name: name, Query: query}
	c.views[name] = v
	return v, nil
}

// ViewDef looks up a plain view.
func (c *Catalog) ViewDef(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[strings.ToLower(name)]
	return v, ok
}

// CreateMatView registers a materialized view and its backing table.
func (c *Catalog) CreateMatView(mv *MatView) error {
	name := strings.ToLower(mv.Name)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureViews()
	if c.nameInUse(name) {
		return fmt.Errorf("object %q already exists", name)
	}
	mv.Name = name
	mv.Table.Name = name
	// The backing table was constructed outside Create; publish its image
	// before it becomes visible to snapshot readers.
	mv.Table.Publish()
	c.mviews[name] = mv
	c.tables[name] = mv.Table
	return nil
}

// MatViewDef looks up a materialized view.
func (c *Catalog) MatViewDef(name string) (*MatView, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	mv, ok := c.mviews[strings.ToLower(name)]
	return mv, ok
}

// DropObject removes a table, view or materialized view; it reports whether
// anything was removed.
func (c *Catalog) DropObject(name string) bool {
	name = strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensureViews()
	found := c.nameInUse(name)
	delete(c.views, name)
	delete(c.mviews, name)
	delete(c.tables, name)
	return found
}

// ViewNames lists plain views, sorted.
func (c *Catalog) ViewNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for n := range c.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MatViewNames lists materialized views, sorted.
func (c *Catalog) MatViewNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for n := range c.mviews {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MatViewByDef finds a materialized view whose canonical definition equals
// defSQL (the optimizer's exact-match rewrite).
func (c *Catalog) MatViewByDef(defSQL string) (*MatView, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, mv := range c.mviews {
		if mv.DefSQL != "" && mv.DefSQL == defSQL {
			return mv, true
		}
	}
	return nil, false
}
