package server_test

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"sqlsheet"
	"sqlsheet/internal/server"
	"sqlsheet/internal/wire"
)

var (
	fuzzOnce sync.Once
	fuzzAddr string
)

// fuzzServer lazily boots one shared server for the fuzz workers; the
// process-wide invariant under test is "no panic, every session either gets
// an answer or a clean close".
func fuzzServer(t testing.TB) string {
	fuzzOnce.Do(func() {
		db := sqlsheet.Open()
		db.MustExec(`CREATE TABLE tiny (a INT, b TEXT)`)
		db.MustExec(`INSERT INTO tiny VALUES (1, 'x')`)
		db.MustExec(`INSERT INTO tiny VALUES (2, 'y')`)
		srv := server.New(db, server.Config{
			MaxInFlight:  4,
			MaxQueue:     4,
			QueueWait:    100 * time.Millisecond,
			QueryTimeout: time.Second,
		})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		fuzzAddr = srv.Addr().String()
	})
	return fuzzAddr
}

// frame wraps payload in a well-formed length prefix (seed-corpus helper).
func frame(payload string) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	return append(hdr[:], payload...)
}

// FuzzWireProtocol throws raw bytes — malformed frames, torn writes, bogus
// lengths, valid-looking requests — at a live server connection. The server
// must never panic and must either answer with frames or close the
// connection; the session always terminates.
func FuzzWireProtocol(f *testing.F) {
	f.Add(frame("QUERY\nSELECT a, b FROM tiny ORDER BY a"))
	f.Add(frame("QUERY\nSELECT nonsense"))
	f.Add(frame("PING"))
	f.Add(frame("QUIT"))
	f.Add(frame("BOGUS\nstuff"))
	f.Add(frame(""))
	f.Add([]byte{0x00, 0x00})                                 // torn header
	f.Add([]byte{0x00, 0x00, 0x00, 0x10, 'h', 'i'})           // torn payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})                // oversized length
	f.Add(append(frame("PING"), frame("QUERY\nSELECT 1")...)) // pipelined
	f.Add(append(frame("PING"), 0x00, 0x00, 0x00))            // valid then torn
	f.Add([]byte("GET /metrics HTTP/1.1\r\nHost: localhost")) // wrong protocol

	f.Fuzz(func(t *testing.T, data []byte) {
		addr := fuzzServer(t)
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Skip("dial failed; host under load")
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		conn.Write(data)
		// Half-close the write side where possible so the server sees EOF
		// after the garbage instead of waiting for more.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		// Drain whatever comes back: any number of well-formed response
		// frames followed by EOF (or an immediate close) is acceptable. The
		// read deadline bounds a server that would wrongly hold the session
		// open forever.
		for {
			payload, err := wire.ReadFrame(conn)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					t.Fatalf("server neither answered nor closed within deadline")
				}
				return // EOF / reset: clean termination
			}
			if _, err := wire.DecodeResponse(payload); err != nil {
				if _, isWire := err.(*wire.Error); !isWire {
					t.Fatalf("server sent malformed response: %v", err)
				}
			}
		}
	})
}
