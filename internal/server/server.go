// Package server implements sqlsheetd's serving layer: TCP sessions speaking
// the internal/wire framed protocol, a bounded admission controller in front
// of the embedded engine, per-query timeouts backed by the engine's
// cancellation points, graceful drain, and an HTTP metrics endpoint.
//
// Admission policy: at most MaxInFlight queries execute concurrently; up to
// MaxQueue more may wait, each for at most QueueWait. A query that finds the
// queue full — or waits out its deadline — receives a typed SERVER_BUSY error
// immediately instead of stalling the connection, so overload degrades to
// fast rejections rather than collapse.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sqlsheet"
	"sqlsheet/internal/parser"
	"sqlsheet/internal/shard"
	"sqlsheet/internal/types"
	"sqlsheet/internal/wire"
)

// Config tunes a Server. Zero values take the documented defaults.
type Config struct {
	Addr         string        // TCP listen address (default "127.0.0.1:0")
	MetricsAddr  string        // HTTP /metrics + /healthz address ("" disables)
	MaxInFlight  int           // concurrent executing queries (default 8)
	MaxQueue     int           // admission wait-queue length (default 16)
	QueueWait    time.Duration // max admission wait (default 1s)
	QueryTimeout time.Duration // per-query deadline (0 = none)

	// Worker enables the SUBPLAN/CANCEL verbs so this process serves as a
	// shard worker for a scatter-gather coordinator. Subplans share the
	// admission controller with queries.
	Worker bool
	// WorkerParallel is the per-subplan spreadsheet PE / build worker
	// count (<=1 serial).
	WorkerParallel int
	// ShardMetrics, when non-nil, is called by /metrics and its result
	// embedded under "shard" (a coordinator installs its counters here).
	ShardMetrics func() any
}

// Server owns the listener, the sessions, and the admission controller.
type Server struct {
	db  *sqlsheet.DB
	cfg Config

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	Metrics Metrics

	admit    chan struct{} // in-flight semaphore (capacity MaxInFlight)
	waiting  atomic.Int64  // queries currently queued for admission
	draining atomic.Bool

	baseCtx    context.Context // canceled to hard-stop in-flight queries
	baseCancel context.CancelFunc

	wg    sync.WaitGroup // live connection handlers
	conns struct {
		sync.Mutex
		m map[net.Conn]*connState
	}

	// subplans maps in-flight subplan ids to their cancel functions so a
	// coordinator's CANCEL (on a separate control connection) can stop a
	// scan mid-stream.
	subplans struct {
		sync.Mutex
		m map[string]context.CancelFunc
	}
}

// connState tracks whether a session is mid-request, so drain can close idle
// connections (parked in a frame read) immediately while busy ones finish
// their current query.
type connState struct {
	busy atomic.Bool
}

// New wraps db in an unstarted server.
func New(db *sqlsheet.DB, cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 16
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:         db,
		cfg:        cfg,
		admit:      make(chan struct{}, cfg.MaxInFlight),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.conns.m = make(map[net.Conn]*connState)
	s.subplans.m = make(map[string]context.CancelFunc)
	return s
}

// Start begins listening and serving. It returns once the listeners are
// bound; sessions are handled on background goroutines.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.cfg.MetricsAddr != "" {
		hln, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			return err
		}
		s.httpLn = hln
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", s.handleMetrics)
		mux.HandleFunc("/healthz", s.handleHealthz)
		s.httpSrv = &http.Server{Handler: mux}
		go s.httpSrv.Serve(hln)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound query-protocol address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// MetricsAddr returns the bound metrics address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Shutdown drains gracefully: stop accepting, fail new queries with
// SHUTDOWN, let in-flight queries finish until ctx expires, then cancel
// them through the engine's cancellation points and wait for the sessions
// to unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close()
	if s.httpSrv != nil {
		defer s.httpSrv.Close()
	}
	// Idle sessions are parked in a frame read and will never see the drain
	// flag; close them now. Busy ones finish their current request (the
	// handler exits after responding once draining is set).
	s.conns.Lock()
	for c, st := range s.conns.m {
		if !st.busy.Load() {
			c.Close()
		}
	}
	s.conns.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Hard phase: cancel in-flight work and snap idle sessions.
		s.baseCancel()
		s.conns.Lock()
		for c := range s.conns.m {
			c.Close()
		}
		s.conns.Unlock()
		<-done
	}
	s.baseCancel()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown)
		}
		st := &connState{}
		s.conns.Lock()
		s.conns.m[conn] = st
		s.conns.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn, st)
	}
}

// handleConn runs one session: a loop of framed requests, each answered with
// exactly one framed response. A protocol-level fault gets an ERR
// PROTOCOL_ERROR response when the transport still works, then the session
// closes. Panics are contained to the session.
func (s *Server) handleConn(conn net.Conn, st *connState) {
	s.Metrics.ConnectionsTotal.Add(1)
	s.Metrics.ConnectionsActive.Add(1)
	defer func() {
		if r := recover(); r != nil {
			// A panic must never take the server down; the session dies,
			// the connection closes, everyone else is unaffected.
			s.Metrics.ProtocolErrors.Add(1)
		}
		s.conns.Lock()
		delete(s.conns.m, conn)
		s.conns.Unlock()
		conn.Close()
		s.Metrics.ConnectionsActive.Add(-1)
		s.wg.Done()
	}()

	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			// Clean close, torn frame, or oversized length: if the error was
			// a policy rejection (not an I/O failure) try to say so first.
			if !isIOError(err) {
				s.Metrics.ProtocolErrors.Add(1)
				wire.WriteFrame(conn, wire.EncodeError(&wire.Error{
					Code: wire.CodeProtocolError, Msg: err.Error(),
				}))
			}
			return
		}
		st.busy.Store(true)
		kind, body, err := wire.DecodeRequest(payload)
		if err != nil {
			s.Metrics.ProtocolErrors.Add(1)
			wire.WriteFrame(conn, wire.EncodeError(&wire.Error{
				Code: wire.CodeProtocolError, Msg: err.Error(),
			}))
			return
		}
		switch kind {
		case wire.ReqPing:
			if wire.WriteFrame(conn, wire.EncodePong()) != nil {
				return
			}
		case wire.ReqQuit:
			wire.WriteFrame(conn, wire.EncodeBye())
			return
		case wire.ReqQuery:
			resp := s.runQuery(body)
			if wire.WriteFrame(conn, resp) != nil {
				return
			}
		case wire.ReqSubplan:
			if !s.handleSubplan(conn, body) {
				return
			}
		case wire.ReqCancel:
			// Always OK: an unknown id just means the subplan already
			// finished — cancellation is inherently racy.
			s.cancelSubplan(body)
			if wire.WriteFrame(conn, wire.EncodeResult(nil, nil, nil)) != nil {
				return
			}
		}
		st.busy.Store(false)
		// During drain the current request was answered; end the session
		// instead of parking in another read that only a close can end.
		if s.draining.Load() {
			return
		}
	}
}

// isIOError distinguishes transport failures (nothing to be written back)
// from protocol policy errors (peer is still reachable; tell it what broke).
func isIOError(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// runQuery admits, executes, and encodes one query. Always returns a
// response frame payload.
func (s *Server) runQuery(sql string) []byte {
	if s.draining.Load() {
		return wire.EncodeError(&wire.Error{Code: wire.CodeShutdown, Msg: "server is shutting down"})
	}
	if err := s.admitQuery(); err != nil {
		s.Metrics.AdmissionRejected.Add(1)
		return wire.EncodeError(err)
	}
	defer func() { <-s.admit }()

	s.Metrics.QueriesTotal.Add(1)
	s.Metrics.InFlight.Add(1)
	defer s.Metrics.InFlight.Add(-1)

	ctx := s.baseCtx
	var cancel context.CancelFunc
	if s.cfg.QueryTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	start := time.Now()
	res, err := s.db.ExecContext(ctx, sql)
	s.Metrics.observe(time.Since(start))
	if err != nil {
		return wire.EncodeError(s.classify(err))
	}
	cols, kinds, rows := resultColumns(res)
	return wire.EncodeResult(cols, kinds, rows)
}

// handleSubplan admits and executes one worker-side subplan, streaming PART
// frames followed by a terminal OK/ERR on the same connection. It returns
// false when the transport failed mid-stream and the session must end (the
// coordinator discards half streams and redials).
func (s *Server) handleSubplan(conn net.Conn, body string) bool {
	respond := func(payload []byte) bool { return wire.WriteFrame(conn, payload) == nil }
	if !s.cfg.Worker {
		s.Metrics.ProtocolErrors.Add(1)
		return respond(wire.EncodeError(&wire.Error{
			Code: wire.CodeProtocolError, Msg: "SUBPLAN requires worker mode (-worker)"}))
	}
	if s.draining.Load() {
		return respond(wire.EncodeError(&wire.Error{
			Code: wire.CodeShutdown, Msg: "server is shutting down"}))
	}
	id, env, err := wire.SplitSubplan(body)
	if err != nil {
		s.Metrics.ProtocolErrors.Add(1)
		return respond(wire.EncodeError(&wire.Error{
			Code: wire.CodeProtocolError, Msg: err.Error()}))
	}
	if aerr := s.admitQuery(); aerr != nil {
		s.Metrics.AdmissionRejected.Add(1)
		return respond(wire.EncodeError(aerr))
	}
	defer func() { <-s.admit }()

	s.Metrics.SubplansTotal.Add(1)
	s.Metrics.SubplansInFlight.Add(1)
	defer s.Metrics.SubplansInFlight.Add(-1)

	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if s.cfg.QueryTimeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer tcancel()
	}
	s.subplans.Lock()
	s.subplans.m[id] = cancel
	s.subplans.Unlock()
	defer func() {
		s.subplans.Lock()
		delete(s.subplans.m, id)
		s.subplans.Unlock()
	}()

	var writeErr error
	execErr := shard.ExecuteSubplan(ctx, env,
		shard.WorkerOptions{Parallel: s.cfg.WorkerParallel, Workers: s.cfg.WorkerParallel},
		func(chunk []byte) error {
			s.Metrics.SubplanPartBytes.Add(int64(len(chunk)))
			if werr := wire.WriteFrame(conn, wire.EncodePart(chunk)); werr != nil {
				writeErr = werr
				return werr
			}
			return nil
		})
	if writeErr != nil {
		return false
	}
	if execErr != nil {
		if errors.Is(execErr, context.Canceled) || errors.Is(execErr, context.DeadlineExceeded) {
			s.Metrics.SubplansCanceled.Add(1)
		}
		return respond(wire.EncodeError(s.classify(execErr)))
	}
	return respond(wire.EncodeResult(nil, nil, nil))
}

// cancelSubplan cancels an in-flight subplan by id (no-op when unknown).
func (s *Server) cancelSubplan(id string) {
	s.subplans.Lock()
	cancel := s.subplans.m[id]
	s.subplans.Unlock()
	if cancel != nil {
		cancel()
	}
}

// admitQuery implements the bounded-queue admission policy.
func (s *Server) admitQuery() *wire.Error {
	select {
	case s.admit <- struct{}{}:
		return nil
	default:
	}
	// Contended: join the bounded queue.
	if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
		s.waiting.Add(-1)
		return &wire.Error{Code: wire.CodeServerBusy,
			Msg: fmt.Sprintf("admission queue full (%d waiting)", s.cfg.MaxQueue)}
	}
	s.Metrics.Queued.Add(1)
	defer func() {
		s.Metrics.Queued.Add(-1)
		s.waiting.Add(-1)
	}()
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.admit <- struct{}{}:
		return nil
	case <-t.C:
		return &wire.Error{Code: wire.CodeServerBusy,
			Msg: fmt.Sprintf("no execution slot within %v", s.cfg.QueueWait)}
	case <-s.baseCtx.Done():
		return &wire.Error{Code: wire.CodeShutdown, Msg: "server is shutting down"}
	}
}

// classify maps an engine error onto a typed wire error and bumps the
// matching counter.
func (s *Server) classify(err error) *wire.Error {
	var pe *parser.Error
	switch {
	case errors.As(err, &pe):
		s.Metrics.ParseErrors.Add(1)
		return &wire.Error{Code: wire.CodeParseError, Msg: pe.Msg,
			HasPos: true, Line: pe.Line, Col: pe.Col, Token: pe.Token}
	case errors.Is(err, context.DeadlineExceeded):
		s.Metrics.QueryTimeouts.Add(1)
		return &wire.Error{Code: wire.CodeTimeout,
			Msg: fmt.Sprintf("query exceeded %v", s.cfg.QueryTimeout)}
	case errors.Is(err, context.Canceled):
		s.Metrics.QueriesCanceled.Add(1)
		if s.draining.Load() {
			return &wire.Error{Code: wire.CodeShutdown, Msg: "canceled by server shutdown"}
		}
		return &wire.Error{Code: wire.CodeCanceled, Msg: "query canceled"}
	}
	s.Metrics.ExecErrors.Add(1)
	return &wire.Error{Code: wire.CodeExecError, Msg: err.Error()}
}

// resultColumns flattens a DB result for the wire. Column kinds are derived
// from the data (the engine is dynamically typed): the kind of the first
// non-NULL value per column, NULL if the column never holds one.
func resultColumns(res *sqlsheet.Result) (cols []string, kinds []string, rows []types.Row) {
	if res == nil {
		return nil, nil, nil
	}
	cols = res.Columns
	kinds = make([]string, len(cols))
	for i := range kinds {
		k := types.KindNull
		for _, row := range res.Rows {
			if i < len(row) && row[i].K != types.KindNull {
				k = row[i].K
				break
			}
		}
		kinds[i] = k.String()
	}
	rows = make([]types.Row, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = types.Row(r)
	}
	return cols, kinds, rows
}

// --- HTTP endpoints ---

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.Metrics.snapshot()
	cc := s.db.CacheCounters()
	snap.Cache.PlanHits = cc.PlanHits
	snap.Cache.PlanMisses = cc.PlanMisses
	snap.Cache.ResultHits = cc.ResultHits
	snap.Cache.StructReuses = cc.StructReuses
	snap.Cache.Evictions = cc.Evictions
	snap.Cache.Invalidations = cc.Invalidations
	if s.cfg.ShardMetrics != nil {
		snap.Shard = s.cfg.ShardMetrics()
	}
	if wc, ok := s.db.WALCounters(); ok {
		snap.WAL = &WALSnapshot{
			Appends:        wc.Appends,
			BytesWritten:   wc.BytesWritten,
			Fsyncs:         wc.Fsyncs,
			CoalescedSyncs: wc.CoalescedSyncs,
			Checkpoints:    wc.Checkpoints,
			Replayed:       wc.Replayed,
			TruncatedTail:  wc.TruncatedTail,
			Segments:       wc.Segments,
			SizeBytes:      wc.SizeBytes,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}
