package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlsheet"
	"sqlsheet/internal/client"
	"sqlsheet/internal/server"
	"sqlsheet/internal/wire"
)

// newFactDB builds the paper's electronics warehouse f(r, p, t, s, c).
func newFactDB(t testing.TB) *sqlsheet.DB {
	t.Helper()
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT, c FLOAT)`)
	for _, r := range []string{"west", "east"} {
		for _, p := range []string{"dvd", "vcr", "tv"} {
			for ti := 1992; ti <= 2002; ti++ {
				base := float64(ti - 1990)
				if p == "vcr" {
					base *= 2
				}
				if p == "tv" {
					base *= 3
				}
				if r == "east" {
					base += 100
				}
				if err := db.Insert("f", []any{r, p, ti, base, base / 2}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return db
}

// startServer boots an in-process server on an ephemeral port.
func startServer(t testing.TB, db *sqlsheet.DB, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv := server.New(db, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// canon flattens a wire result into a canonical string for byte-identity
// comparison: column names, derived kinds, and every cell with its kind tag.
func canon(res *wire.Result) string {
	if res == nil {
		return "<nil>"
	}
	var b strings.Builder
	b.WriteString(strings.Join(res.Cols, ","))
	b.WriteByte('\n')
	b.WriteString(strings.Join(res.Kinds, ","))
	b.WriteByte('\n')
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			fmt.Fprintf(&b, "%d:%s", v.K, v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// The statement mix exercised by the concurrency tests: spreadsheet update,
// upsert, aggregate window, and a plain relational query. All carry ORDER BY
// so results are positionally deterministic.
var queryMix = []string{
	`SELECT r, p, t, s FROM f
	   SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
	   ( s['dvd', 2002] = s['dvd', 2000] + s['dvd', 2001],
	     s['tv', 2002] = avg(s)['tv', 1992 <= t <= 2001] )
	   ORDER BY r, p, t`,
	`SELECT r, p, t, s FROM f
	   SPREADSHEET PBY(r) DBY (p, t) MEA (s)
	   ( UPSERT s['video', 2002] = s['tv', 2002] + s['vcr', 2002] )
	   ORDER BY r, p, t`,
	`SELECT r, SUM(s) AS total FROM f GROUP BY r ORDER BY r`,
	`SELECT r, p, t, s FROM f WHERE t >= 2000 ORDER BY r, p, t, s`,
}

// dmlFor returns the round's interleaved write.
func dmlFor(round int) string {
	switch round % 3 {
	case 0:
		return fmt.Sprintf(`INSERT INTO f VALUES ('north', 'dvd', %d, %d.5, 1.0)`, 2003+round, round)
	case 1:
		return fmt.Sprintf(`UPDATE f SET s = s + 1 WHERE t = %d`, 1992+round%10)
	default:
		return fmt.Sprintf(`DELETE FROM f WHERE r = 'north' AND t = %d`, 2003+round-2)
	}
}

// TestServerConcurrentSessions is the acceptance integration test: 32
// concurrent client sessions issue the mixed statement set against one
// server while a reference DB replays the same rounds serially; every
// concurrent result must be byte-identical to the serial replay.
func TestServerConcurrentSessions(t *testing.T) {
	srv := startServer(t, newFactDB(t), server.Config{MaxInFlight: 8, MaxQueue: 64, QueueWait: 30 * time.Second})
	refSrv := startServer(t, newFactDB(t), server.Config{MaxInFlight: 1, MaxQueue: 1})
	ref, err := client.Dial(refSrv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	const sessions = 32
	const rounds = 3

	for round := 0; round < rounds; round++ {
		// Interleaved DML, applied to both sides before the query storm.
		dml := dmlFor(round)
		if _, err := ref.Query(dml); err != nil {
			t.Fatalf("round %d ref dml: %v", round, err)
		}
		dc, err := client.Dial(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dc.Query(dml); err != nil {
			t.Fatalf("round %d dml: %v", round, err)
		}
		dc.Close()

		// Serial replay is the oracle for this round.
		want := make([]string, len(queryMix))
		for i, q := range queryMix {
			res, err := ref.Query(q)
			if err != nil {
				t.Fatalf("round %d ref query %d: %v", round, i, err)
			}
			want[i] = canon(res)
		}

		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				c, err := client.Dial(srv.Addr().String())
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				// Stagger the mix so sessions collide on different statements.
				for k := 0; k < len(queryMix); k++ {
					i := (s + k) % len(queryMix)
					res, err := c.Query(queryMix[i])
					if err != nil {
						errs <- fmt.Errorf("session %d query %d: %v", s, i, err)
						return
					}
					if got := canon(res); got != want[i] {
						errs <- fmt.Errorf("session %d query %d: result differs from serial replay\ngot:\n%s\nwant:\n%s",
							s, i, got, want[i])
						return
					}
				}
			}(s)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	if got := srv.Metrics.ConnectionsTotal.Load(); got < sessions {
		t.Errorf("connections_total = %d, want >= %d", got, sessions)
	}
	if got := srv.Metrics.QueriesTotal.Load(); got < int64(sessions*len(queryMix)) {
		t.Errorf("queries_total = %d, want >= %d", got, sessions*len(queryMix))
	}
}

// slowQuery runs long enough to outlive small timeouts but is bounded, and
// every ITERATE pass is a cancellation point.
const slowQuery = `SELECT r, p, t, s FROM f
	SPREADSHEET PBY(r, p) DBY (t) MEA (s) UPDATE ITERATE (30000000)
	( s[2000] = s[2000] * 1.0000001 )
	ORDER BY r, p, t`

// TestQueryTimeout verifies server-side cancellation: a query exceeding the
// per-query timeout comes back as a typed TIMEOUT error, the cancellation is
// visible in the timeout counter, and other sessions are unaffected.
func TestQueryTimeout(t *testing.T) {
	srv := startServer(t, newFactDB(t), server.Config{
		MaxInFlight: 4, MaxQueue: 8, QueryTimeout: 100 * time.Millisecond,
	})

	var wg sync.WaitGroup
	wg.Add(1)
	okErr := make(chan error, 1)
	go func() {
		// A healthy session running quick queries throughout.
		defer wg.Done()
		c, err := client.Dial(srv.Addr().String())
		if err != nil {
			okErr <- err
			return
		}
		defer c.Close()
		for i := 0; i < 10; i++ {
			if _, err := c.Query(`SELECT r, SUM(s) AS total FROM f GROUP BY r ORDER BY r`); err != nil {
				okErr <- fmt.Errorf("healthy session: %v", err)
				return
			}
		}
		okErr <- nil
	}()

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Query(slowQuery)
	elapsed := time.Since(start)
	we, ok := err.(*wire.Error)
	if !ok || we.Code != wire.CodeTimeout {
		t.Fatalf("slow query: got %v, want TIMEOUT", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; cancellation points too coarse", elapsed)
	}
	if got := srv.Metrics.QueryTimeouts.Load(); got != 1 {
		t.Errorf("query_timeouts = %d, want 1", got)
	}
	wg.Wait()
	if err := <-okErr; err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionOverload induces overload: with one execution slot and a
// one-deep queue, a burst of slow queries must produce typed SERVER_BUSY
// rejections rather than stalls, counted by the admission-rejection metric.
func TestAdmissionOverload(t *testing.T) {
	srv := startServer(t, newFactDB(t), server.Config{
		MaxInFlight: 1, MaxQueue: 1, QueueWait: 50 * time.Millisecond,
		QueryTimeout: 2 * time.Second,
	})

	const burst = 6
	var busy, timedOut, okCount int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			_, err = c.Query(slowQuery)
			mu.Lock()
			defer mu.Unlock()
			switch we, ok := err.(*wire.Error); {
			case err == nil:
				okCount++
			case ok && we.Code == wire.CodeServerBusy:
				busy++
			case ok && we.Code == wire.CodeTimeout:
				timedOut++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if busy == 0 {
		t.Errorf("no SERVER_BUSY under overload (ok=%d busy=%d timeout=%d)", okCount, busy, timedOut)
	}
	if got := srv.Metrics.AdmissionRejected.Load(); got != int64(busy) {
		t.Errorf("admission_rejected = %d, want %d", got, busy)
	}
}

// TestParseErrorOverWire checks that a syntax error carries its position and
// offending token through the protocol.
func TestParseErrorOverWire(t *testing.T) {
	srv := startServer(t, newFactDB(t), server.Config{})
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query("SELECT r\nFROM f\nWHERE t BETWIXT 1 AND 2")
	we, ok := err.(*wire.Error)
	if !ok {
		t.Fatalf("got %T %v, want *wire.Error", err, err)
	}
	if we.Code != wire.CodeParseError {
		t.Fatalf("code = %s, want PARSE_ERROR", we.Code)
	}
	if !we.HasPos || we.Line != 3 || we.Token == "" {
		t.Errorf("position not carried: %+v", we)
	}
	if got := srv.Metrics.ParseErrors.Load(); got != 1 {
		t.Errorf("parse_errors = %d, want 1", got)
	}
}

// TestMetricsEndpoint drives a little traffic and checks that /metrics and
// /healthz reflect it.
func TestMetricsEndpoint(t *testing.T) {
	srv := startServer(t, newFactDB(t), server.Config{MetricsAddr: "127.0.0.1:0"})
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	q := `SELECT r, SUM(s) AS total FROM f GROUP BY r ORDER BY r`
	for i := 0; i < 3; i++ {
		if _, err := c.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query("SELECT nonsense FROM nowhere"); err == nil {
		t.Fatal("expected exec error")
	}

	resp, err := http.Get("http://" + srv.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap server.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.ConnectionsTotal < 1 || snap.ConnectionsActive < 1 {
		t.Errorf("connection counters: %+v", snap)
	}
	if snap.QueriesTotal != 4 {
		t.Errorf("queries_total = %d, want 4", snap.QueriesTotal)
	}
	if snap.ExecErrors != 1 {
		t.Errorf("exec_errors = %d, want 1", snap.ExecErrors)
	}
	if snap.Latency.Count != 4 {
		t.Errorf("latency count = %d, want 4", snap.Latency.Count)
	}
	// Three identical SELECTs: at least one should have come from the
	// plan/result cache, proving the re-export works end to end.
	if snap.Cache.PlanHits+snap.Cache.ResultHits < 1 {
		t.Errorf("cache counters not re-exported: %+v", snap.Cache)
	}

	health, err := http.Get("http://" + srv.MetricsAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", health.StatusCode)
	}
}

// TestGracefulShutdown verifies drain: in-flight quick queries finish, new
// queries after drain get SHUTDOWN or a closed connection.
func TestGracefulShutdown(t *testing.T) {
	db := newFactDB(t)
	srv := server.New(db, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(`SELECT r, SUM(s) AS total FROM f GROUP BY r ORDER BY r`); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()

	// The still-open session either gets a typed SHUTDOWN answer or the
	// connection closes under it; both are clean outcomes.
	_, err = c.Query(`SELECT 1 AS one FROM f WHERE t = 1992 ORDER BY r, p`)
	if we, ok := err.(*wire.Error); ok && we.Code != wire.CodeShutdown {
		t.Errorf("post-drain query: unexpected typed error %v", we)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := client.Dial(srv.Addr().String()); err == nil {
		t.Error("dial after shutdown should fail")
	}
}
