package server_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sqlsheet"
	"sqlsheet/internal/client"
	"sqlsheet/internal/server"
)

// TestRecoverHelperProcess is not a test: it is the child half of
// TestRecoverKillNineMidBurst. Re-invoked from the parent's test binary
// with the env vars below, it serves a WAL-backed database (fsync-always,
// so every acknowledged statement is durable) and blocks until SIGKILL.
func TestRecoverHelperProcess(t *testing.T) {
	if os.Getenv("SQLSHEETD_RECOVER_CHILD") != "1" {
		t.Skip("helper process for TestRecoverKillNineMidBurst")
	}
	db := sqlsheet.Open()
	if err := db.EnableWAL(os.Getenv("SQLSHEETD_RECOVER_WALDIR"), sqlsheet.SyncAlways); err != nil {
		fmt.Printf("ERR %v\n", err)
		os.Exit(1)
	}
	srv := startServer(t, db, server.Config{MaxInFlight: 8, MaxQueue: 16, QueueWait: time.Second})
	fmt.Printf("ADDR %s\n", srv.Addr())
	select {} // hold the process open until the parent kills it
}

// startChild re-execs this test binary as the helper process and returns
// the command plus the address its server listens on.
func startChild(t *testing.T, walDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestRecoverHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"SQLSHEETD_RECOVER_CHILD=1",
		"SQLSHEETD_RECOVER_WALDIR="+walDir,
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	deadline := time.After(30 * time.Second)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, "ADDR "); ok {
				addrCh <- a
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
			if strings.HasPrefix(line, "ERR ") {
				t.Error(line)
			}
		}
	}()
	select {
	case a := <-addrCh:
		return cmd, a
	case <-deadline:
		cmd.Process.Kill()
		t.Fatal("helper process never reported its address")
		return nil, ""
	}
}

// TestRecoverKillNineMidBurst is the crash-recovery acceptance test:
// SIGKILL a WAL-backed server (fsync-always) in the middle of an INSERT
// burst, restart it over the same log directory, and require that the
// recovered table is (a) a contiguous prefix 0..m-1 of the burst with
// m >= the count of acknowledged inserts — durability: nothing acked is
// lost, nothing torn survives — and (b) byte-identical to a fresh database
// that executed the same m statements.
func TestRecoverKillNineMidBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	walDir := t.TempDir()

	cmd, addr := startChild(t, walDir)
	c, err := client.DialTimeout(addr, 5*time.Second)
	if err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}
	if _, err := c.Query(`CREATE TABLE burst (k INT, v INT)`); err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}

	var acked atomic.Int64
	burstDone := make(chan struct{})
	go func() {
		defer close(burstDone)
		for i := 0; ; i++ {
			if _, err := c.Query(fmt.Sprintf(`INSERT INTO burst VALUES (%d, %d)`, i, i*7)); err != nil {
				return // the kill severed the connection
			}
			acked.Add(1)
		}
	}()

	// Kill mid-burst: once a healthy chunk of inserts is acknowledged, or
	// after a generous deadline on a slow disk (fsync-always pays one sync
	// per statement).
	waitUntil := time.After(20 * time.Second)
	for acked.Load() < 50 {
		select {
		case <-waitUntil:
		case <-time.After(time.Millisecond):
			continue
		}
		break
	}
	if acked.Load() < 2 {
		cmd.Process.Kill()
		t.Fatalf("only %d inserts acknowledged before deadline", acked.Load())
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()
	<-burstDone
	c.Close()
	nAcked := int(acked.Load())
	t.Logf("killed server after %d acknowledged inserts", nAcked)

	// Restart over the same log and read back the recovered table.
	cmd2, addr2 := startChild(t, walDir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	c2, err := client.DialTimeout(addr2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.Query(`SELECT k, v FROM burst ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}

	m := len(res.Rows)
	if m < nAcked {
		t.Fatalf("recovered %d rows < %d acknowledged — durable writes were lost", m, nAcked)
	}
	// One unacknowledged in-flight insert may legitimately have reached the
	// log before the kill; anything more means phantom writes.
	if m > nAcked+1 {
		t.Fatalf("recovered %d rows for %d acks — phantom rows appeared", m, nAcked)
	}
	for i, row := range res.Rows {
		if row[0].Int() != int64(i) || row[1].Int() != int64(i*7) {
			t.Fatalf("row %d = (%v, %v), want (%d, %d) — recovered state is not a clean prefix", i, row[0], row[1], i, i*7)
		}
	}

	// Byte-identity: a fresh database executing the same m statements must
	// render exactly the recovered rows.
	ref := sqlsheet.Open()
	ref.MustExec(`CREATE TABLE burst (k INT, v INT)`)
	for i := 0; i < m; i++ {
		ref.MustExec(fmt.Sprintf(`INSERT INTO burst VALUES (%d, %d)`, i, i*7))
	}
	want, err := ref.Query(`SELECT k, v FROM burst ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got, w := res.Rows[i][j].String(), want.Rows[i][j].String(); got != w {
				t.Fatalf("row %d col %d: recovered %q, replayed %q", i, j, got, w)
			}
		}
	}
}
