package server_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sqlsheet/internal/client"
	"sqlsheet/internal/server"
)

// benchQuery is a representative spreadsheet statement: partitioned, two
// rules, cacheable.
const benchQuery = `SELECT r, p, t, s FROM f
	SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
	( s['dvd', 2002] = s['dvd', 2000] + s['dvd', 2001],
	  s['tv', 2002] = avg(s)['tv', 1992 <= t <= 2001] )
	ORDER BY r, p, t`

// BenchmarkServe measures end-to-end serving throughput (dial once, then
// query round-trips) at 1, 8 and 64 concurrent client sessions, with the
// serving-path cache cold (plan cache disabled) and warm (result reuse).
func BenchmarkServe(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		for _, mode := range []string{"cold", "warm"} {
			b.Run(fmt.Sprintf("clients=%d/%s", clients, mode), func(b *testing.B) {
				db := newFactDB(b)
				if mode == "cold" {
					cfg := db.Options()
					cfg.DisablePlanCache = true
					db.Configure(cfg)
				}
				srv := startServer(b, db, server.Config{
					MaxInFlight: 16, MaxQueue: 128, QueueWait: 30 * time.Second,
				})
				conns := make([]*client.Client, clients)
				for i := range conns {
					c, err := client.Dial(srv.Addr().String())
					if err != nil {
						b.Fatal(err)
					}
					defer c.Close()
					conns[i] = c
					// Warm-up round-trip (fills the cache in warm mode).
					if _, err := c.Query(benchQuery); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / clients
				extra := b.N % clients
				for i, c := range conns {
					n := per
					if i < extra {
						n++
					}
					wg.Add(1)
					go func(c *client.Client, n int) {
						defer wg.Done()
						for j := 0; j < n; j++ {
							if _, err := c.Query(benchQuery); err != nil {
								b.Error(err)
								return
							}
						}
					}(c, n)
				}
				wg.Wait()
			})
		}
	}
}
