package server

import (
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in milliseconds (+Inf is
// implicit as the last counter).
var latencyBuckets = []float64{0.5, 1, 5, 10, 50, 100, 500, 1000, 5000}

// Metrics holds the server's cumulative counters. All fields are atomics so
// the serving path updates them without locks and the /metrics handler reads
// a consistent-enough snapshot.
type Metrics struct {
	ConnectionsTotal  atomic.Int64
	ConnectionsActive atomic.Int64
	QueriesTotal      atomic.Int64
	InFlight          atomic.Int64
	Queued            atomic.Int64
	AdmissionRejected atomic.Int64
	QueryTimeouts     atomic.Int64
	QueriesCanceled   atomic.Int64
	ParseErrors       atomic.Int64
	ExecErrors        atomic.Int64
	ProtocolErrors    atomic.Int64

	// Worker-side subplan counters (SUBPLAN verb; zero on non-workers).
	SubplansTotal    atomic.Int64
	SubplansInFlight atomic.Int64
	SubplansCanceled atomic.Int64
	SubplanPartBytes atomic.Int64

	latCounts [10]atomic.Int64 // one per bucket + +Inf
	latCount  atomic.Int64
	latSumUS  atomic.Int64 // microseconds, to keep the sum integral
}

// observe records one query latency in the histogram.
func (m *Metrics) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBuckets) && ms > latencyBuckets[i] {
		i++
	}
	m.latCounts[i].Add(1)
	m.latCount.Add(1)
	m.latSumUS.Add(d.Microseconds())
}

// histBucket is one cumulative histogram bucket in the /metrics snapshot.
type histBucket struct {
	LeMS  float64 `json:"le_ms"` // upper bound; 0 encodes +Inf
	Count int64   `json:"count"` // cumulative count ≤ LeMS
}

// Snapshot is the JSON shape served at /metrics.
type Snapshot struct {
	ConnectionsTotal  int64 `json:"connections_total"`
	ConnectionsActive int64 `json:"connections_active"`
	QueriesTotal      int64 `json:"queries_total"`
	InFlight          int64 `json:"in_flight"`
	Queued            int64 `json:"queued"`
	AdmissionRejected int64 `json:"admission_rejected"`
	QueryTimeouts     int64 `json:"query_timeouts"`
	QueriesCanceled   int64 `json:"queries_canceled"`
	ParseErrors       int64 `json:"parse_errors"`
	ExecErrors        int64 `json:"exec_errors"`
	ProtocolErrors    int64 `json:"protocol_errors"`

	SubplansTotal    int64 `json:"subplans_total"`
	SubplansInFlight int64 `json:"subplans_in_flight"`
	SubplansCanceled int64 `json:"subplans_canceled"`
	SubplanPartBytes int64 `json:"subplan_part_bytes"`

	// Shard carries the coordinator's scatter-gather counters when this
	// process runs one (Config.ShardMetrics); omitted otherwise.
	Shard any `json:"shard,omitempty"`

	// WAL carries the write-ahead log's durability counters when one is
	// enabled (sqlsheetd -wal-dir); omitted otherwise.
	WAL *WALSnapshot `json:"wal,omitempty"`

	Latency struct {
		Buckets []histBucket `json:"buckets"`
		Count   int64        `json:"count"`
		SumMS   float64      `json:"sum_ms"`
	} `json:"latency"`

	Cache struct {
		PlanHits      int64 `json:"plan_hits"`
		PlanMisses    int64 `json:"plan_misses"`
		ResultHits    int64 `json:"result_hits"`
		StructReuses  int64 `json:"struct_reuses"`
		Evictions     int64 `json:"evictions"`
		Invalidations int64 `json:"invalidations"`
	} `json:"cache"`
}

// WALSnapshot is the /metrics shape of the write-ahead log counters.
type WALSnapshot struct {
	Appends        int64 `json:"appends"`
	BytesWritten   int64 `json:"bytes_written"`
	Fsyncs         int64 `json:"fsyncs"`
	CoalescedSyncs int64 `json:"coalesced_syncs"`
	Checkpoints    int64 `json:"checkpoints"`
	Replayed       int64 `json:"replayed"`
	TruncatedTail  int64 `json:"truncated_tail"`
	Segments       int64 `json:"segments"`
	SizeBytes      int64 `json:"size_bytes"`
}

// snapshot materializes the current counter values.
func (m *Metrics) snapshot() Snapshot {
	var s Snapshot
	s.ConnectionsTotal = m.ConnectionsTotal.Load()
	s.ConnectionsActive = m.ConnectionsActive.Load()
	s.QueriesTotal = m.QueriesTotal.Load()
	s.InFlight = m.InFlight.Load()
	s.Queued = m.Queued.Load()
	s.AdmissionRejected = m.AdmissionRejected.Load()
	s.QueryTimeouts = m.QueryTimeouts.Load()
	s.QueriesCanceled = m.QueriesCanceled.Load()
	s.ParseErrors = m.ParseErrors.Load()
	s.ExecErrors = m.ExecErrors.Load()
	s.ProtocolErrors = m.ProtocolErrors.Load()
	s.SubplansTotal = m.SubplansTotal.Load()
	s.SubplansInFlight = m.SubplansInFlight.Load()
	s.SubplansCanceled = m.SubplansCanceled.Load()
	s.SubplanPartBytes = m.SubplanPartBytes.Load()
	cum := int64(0)
	for i := range m.latCounts {
		cum += m.latCounts[i].Load()
		le := 0.0 // +Inf
		if i < len(latencyBuckets) {
			le = latencyBuckets[i]
		}
		s.Latency.Buckets = append(s.Latency.Buckets, histBucket{LeMS: le, Count: cum})
	}
	s.Latency.Count = m.latCount.Load()
	s.Latency.SumMS = float64(m.latSumUS.Load()) / 1000
	return s
}
