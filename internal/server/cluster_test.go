package server_test

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlsheet"
	"sqlsheet/internal/client"
	"sqlsheet/internal/server"
	"sqlsheet/internal/shard"
	"sqlsheet/internal/types"
)

// The cluster suite boots real sqlsheetd worker servers (in-process, over
// TCP) behind a scatter-gather coordinator and demands that distributed
// results are byte-identical to a single-process oracle at every shard
// count — including float payload bits and row order, which is why the
// canonical form below prints Float64bits instead of a rendered number.

// canonRows flattens rows at the representation level: kind tag, integer
// payload, float bits, string payload. Identical strings ⇔ bit-identical
// results.
func canonRows[R ~[]types.Value](cols []string, rows []R) string {
	var b strings.Builder
	b.WriteString(strings.Join(cols, ","))
	for _, row := range rows {
		b.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			fmt.Fprintf(&b, "%d:%d:%016x:%q", v.K, v.I, math.Float64bits(v.F), v.S)
		}
	}
	return b.String()
}

func canonDB(res *sqlsheet.Result) string { return canonRows(res.Columns, res.Rows) }

// startWorkers boots n worker-mode servers with empty databases (workers
// are stateless: every subplan ships its own input rows). WorkerParallel
// is pinned to 1 so cluster speedups measure scatter across processes, not
// intra-worker parallelism.
func startWorkers(t testing.TB, n int) []*server.Server {
	t.Helper()
	ws := make([]*server.Server, n)
	for i := range ws {
		ws[i] = startServer(t, sqlsheet.Open(), server.Config{
			MetricsAddr:    "127.0.0.1:0",
			Worker:         true,
			WorkerParallel: 1,
			MaxInFlight:    8,
			MaxQueue:       16,
		})
	}
	return ws
}

func workerAddrs(ws []*server.Server) []shard.WorkerAddr {
	addrs := make([]shard.WorkerAddr, len(ws))
	for i, w := range ws {
		addrs[i] = shard.WorkerAddr{Addr: w.Addr().String(), MetricsAddr: w.MetricsAddr()}
	}
	return addrs
}

// distFactDB builds the fact-table DB with a coordinator over ws installed
// as its distributor. MinRows 1 so the small test table still distributes.
func distFactDB(t testing.TB, ws []*server.Server, cfg sqlsheet.Config) (*sqlsheet.DB, *shard.Coordinator) {
	t.Helper()
	db := newFactDB(t)
	db.Configure(cfg)
	coord := shard.New(shard.Config{Workers: workerAddrs(ws), MinRows: 1})
	db.SetDistributor(coord)
	t.Cleanup(coord.Close)
	return db, coord
}

// clusterQueries deliberately omit ORDER BY: the distributed contract
// covers raw merge order (bucket/frame order for sheets, morsel first-seen
// order for group-bys), not just sorted output. The last two are
// non-distributable (global aggregate; no PBY) and pin the fallback path.
var clusterQueries = []string{
	`SELECT r, p, t, s FROM f
	   SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
	   ( s['dvd', 2002] = s['dvd', 2000] + s['dvd', 2001],
	     s['tv', 2002] = avg(s)['tv', 1992 <= t <= 2001] )`,
	`SELECT r, p, t, s, c FROM f
	   SPREADSHEET PBY(r) DBY (p, t) MEA (s, c)
	   ( UPSERT s['video', 2002] = s['tv', 2002] + s['vcr', 2002],
	     c['video', 2002] = 0.0 )`,
	`SELECT r, p, SUM(s), AVG(c), COUNT(*) FROM f GROUP BY r, p`,
	`SELECT p, SUM(s * 1.0000001), AVG(s / 3.0) FROM f GROUP BY p`,
	`SELECT SUM(s), AVG(c) FROM f`,
	`SELECT r, p, t, s FROM f
	   SPREADSHEET DBY (r, p, t) MEA (s)
	   ( UPSERT s['west', 'video', 2002] = s['west', 'tv', 2002] )`,
}

// clusterDML is replayed identically on oracle and distributed DBs between
// query rounds, exercising the version-invalidation path: the second round
// must re-execute (and re-distribute), not serve cached results.
var clusterDML = []string{
	`INSERT INTO f VALUES ('north', 'dvd', 2003, 7.25, 3.5)`,
	`UPDATE f SET s = s + 0.125 WHERE p = 'vcr'`,
}

func queryCanon(t *testing.T, db *sqlsheet.DB, q string) string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return canonDB(res)
}

// TestClusterByteIdenticalGrid is the acceptance grid: shard counts 1/2/4 ×
// db operator workers 1/4, pre- and post-DML, every result byte-identical
// to one single-process oracle. MorselSize is pinned small so the 66-row
// fact table spans several morsels and the per-morsel partial merge is
// actually exercised; Buckets is pinned because spreadsheet row order is a
// documented function of the bucket count (which otherwise tracks
// Parallel), and the grid varies Parallel while sharing one serial oracle.
func TestClusterByteIdenticalGrid(t *testing.T) {
	workers := startWorkers(t, 4)

	oracle := newFactDB(t)
	oracle.Configure(sqlsheet.Config{MorselSize: 16, Buckets: 4})
	want := make([]string, len(clusterQueries))
	for i, q := range clusterQueries {
		want[i] = queryCanon(t, oracle, q)
	}
	for _, d := range clusterDML {
		oracle.MustExec(d)
	}
	want2 := make([]string, len(clusterQueries))
	for i, q := range clusterQueries {
		want2[i] = queryCanon(t, oracle, q)
	}

	for _, nw := range []int{1, 2, 4} {
		for _, dbw := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d,workers=%d", nw, dbw), func(t *testing.T) {
				db, coord := distFactDB(t, workers[:nw], sqlsheet.Config{
					MorselSize: 16, Buckets: 4, Parallel: dbw, Workers: dbw,
				})
				for i, q := range clusterQueries {
					if got := queryCanon(t, db, q); got != want[i] {
						t.Errorf("query %d differs from single-process oracle\ngot:\n%s\nwant:\n%s", i, got, want[i])
					}
				}
				for _, d := range clusterDML {
					db.MustExec(d)
				}
				for i, q := range clusterQueries {
					if got := queryCanon(t, db, q); got != want2[i] {
						t.Errorf("query %d post-DML differs from oracle\ngot:\n%s\nwant:\n%s", i, got, want2[i])
					}
				}
				m := coord.Metrics()
				if m.SheetSubplans.Load() == 0 {
					t.Error("no spreadsheet node was distributed")
				}
				if m.GroupSubplans.Load() == 0 {
					t.Error("no group-by node was distributed")
				}
			})
		}
	}
}

// TestClusterExplainAnnotations checks EXPLAIN's distributed= verdicts: yes
// on shardable nodes, a reason on fallbacks, and no annotation at all
// without a distributor (single-process EXPLAIN output is unchanged).
func TestClusterExplainAnnotations(t *testing.T) {
	workers := startWorkers(t, 2)
	db, _ := distFactDB(t, workers, sqlsheet.Config{})
	for i, want := range map[int]string{
		0: "distributed=yes",         // PBY spreadsheet
		2: "distributed=yes",         // keyed group-by
		4: "distributed=no(no-keys)", // global aggregate
		5: "distributed=no(no-pby)",  // spreadsheet without PARTITION BY
	} {
		text, err := db.Explain(clusterQueries[i])
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN of query %d: want %q in:\n%s", i, want, text)
		}
	}
	local := newFactDB(t)
	text, err := local.Explain(clusterQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "distributed=") {
		t.Errorf("single-process EXPLAIN grew a distributed= annotation:\n%s", text)
	}
}

// TestClusterCancelMidScatter cancels a query while its shards are
// executing remotely: the coordinator must broadcast CANCEL to every
// in-flight shard and the workers must actually stop (in-flight subplan
// count drains to zero, cancellations recorded) instead of burning CPU on
// an abandoned scatter.
func TestClusterCancelMidScatter(t *testing.T) {
	workers := startWorkers(t, 2)
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE big (r INT, d INT, m FLOAT)`)
	for r := 0; r < 64; r++ {
		if err := db.Insert("big", []any{r, 1, float64(r)}, []any{r, 2, float64(r) / 3}); err != nil {
			t.Fatal(err)
		}
	}
	coord := shard.New(shard.Config{Workers: workerAddrs(workers), MinRows: 1})
	db.SetDistributor(coord)
	t.Cleanup(coord.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	_, err := db.QueryContext(ctx, `SELECT r, d, m FROM big
		SPREADSHEET PBY(r) DBY (d) MEA (m)
		ITERATE (500000)
		( m[1] = m[1]*1.0000001 + m[2]*0.0000001 )`)
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if coord.Metrics().Cancels.Load() == 0 {
		t.Error("coordinator broadcast no CANCELs to in-flight shards")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var inflight, canceled int64
		for _, w := range workers {
			inflight += w.Metrics.SubplansInFlight.Load()
			canceled += w.Metrics.SubplansCanceled.Load()
		}
		if inflight == 0 && canceled >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers still scanning after cancel: inflight=%d canceled=%d", inflight, canceled)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterWorkerRestartReconnect kills one of two workers and demands
// the coordinator (a) degrades to local execution without erroring or
// changing a byte, and (b) rediscovers the worker once it is restarted on
// the same address, resuming distribution through a fresh connection.
func TestClusterWorkerRestartReconnect(t *testing.T) {
	w1 := startWorkers(t, 1)[0]
	w2 := server.New(sqlsheet.Open(), server.Config{
		Addr: "127.0.0.1:0", MetricsAddr: "127.0.0.1:0",
		Worker: true, WorkerParallel: 1,
	})
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	addr2, maddr2 := w2.Addr().String(), w2.MetricsAddr()

	oracle := newFactDB(t)
	db := newFactDB(t)
	coord := shard.New(shard.Config{
		Workers: append(workerAddrs([]*server.Server{w1}), shard.WorkerAddr{Addr: addr2, MetricsAddr: maddr2}),
		MinRows: 1,
	})
	db.SetDistributor(coord)
	t.Cleanup(coord.Close)

	check := func(step string) {
		t.Helper()
		q := clusterQueries[0]
		want := queryCanon(t, oracle, q)
		if got := queryCanon(t, db, q); got != want {
			t.Fatalf("%s: distributed result differs from oracle\ngot:\n%s\nwant:\n%s", step, got, want)
		}
	}
	year := 2004
	bump := func() { // invalidate cached results so the next query re-executes
		for _, d := range []*sqlsheet.DB{oracle, db} {
			d.MustExec(fmt.Sprintf(`INSERT INTO f VALUES ('north', 'tv', %d, 1.5, 0.75)`, year))
		}
		year++
	}

	check("both workers up")
	if coord.Metrics().SheetSubplans.Load() == 0 {
		t.Fatal("query was not distributed with both workers up")
	}

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	w2.Shutdown(sctx)
	scancel()
	bump()
	check("one worker down")
	if coord.Metrics().Fallbacks.Load() == 0 {
		t.Error("no local fallback recorded while a worker was down")
	}

	// Restart on the same wire and metrics addresses, as a supervisor would.
	var w2b *server.Server
	for attempt := 0; ; attempt++ {
		w2b = server.New(sqlsheet.Open(), server.Config{
			Addr: addr2, MetricsAddr: maddr2,
			Worker: true, WorkerParallel: 1,
		})
		if err := w2b.Start(); err == nil {
			break
		} else if attempt > 50 {
			t.Fatalf("restart on %s: %v", addr2, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		w2b.Shutdown(ctx)
	})

	bump()
	check("worker restarted")
	snap := coord.Snapshot()
	var redials int64
	for _, w := range snap.Workers {
		redials += w.Redials
	}
	if redials == 0 {
		t.Error("coordinator never redialed the restarted worker")
	}
	if w2b.Metrics.SubplansTotal.Load() == 0 {
		t.Error("restarted worker received no subplans: distribution did not resume")
	}
}

// TestClusterConcurrentSessions fronts a coordinator DB with a serving
// layer and hammers it from concurrent client sessions; every result must
// match the serial single-process replay (this also exercises the
// per-worker subplan serialization on shared coordinator connections).
func TestClusterConcurrentSessions(t *testing.T) {
	workers := startWorkers(t, 2)
	db, _ := distFactDB(t, workers, sqlsheet.Config{MorselSize: 16})
	srv := startServer(t, db, server.Config{MaxInFlight: 8, MaxQueue: 64, QueueWait: 30 * time.Second})

	oracle := newFactDB(t)
	oracle.Configure(sqlsheet.Config{MorselSize: 16})
	want := make([]string, len(clusterQueries))
	for i, q := range clusterQueries {
		want[i] = queryCanon(t, oracle, q)
	}

	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for k := 0; k < len(clusterQueries); k++ {
				i := (s + k) % len(clusterQueries)
				res, err := c.Query(clusterQueries[i])
				if err != nil {
					errs <- fmt.Errorf("session %d query %d: %v", s, i, err)
					return
				}
				if got := canonRows(res.Cols, res.Rows); got != want[i] {
					errs <- fmt.Errorf("session %d query %d differs from serial replay\ngot:\n%s\nwant:\n%s",
						s, i, got, want[i])
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// BenchmarkShardedSpreadsheet measures end-to-end spreadsheet execution
// over 32 partitions of 256 rows with per-cell prefix aggregates (work is
// proportional to data, unlike ITERATE whose cost is per-round batch
// overhead). Three topologies: local single-process, scatter to 1 worker,
// scatter to 2 workers. Workers run their shards serially
// (WorkerParallel=1) and the coordinator DB is pinned serial too, so
// workers=2 vs workers=1 isolates inter-process scaling — note that ratio
// needs ≥2 CPUs to show; on a single-core host the two CPU-bound worker
// processes time-slice one core and the ratio pins at ~1.0×. The
// workers=N vs local ratio (evaluation shipped to a worker's in-memory
// partition store instead of the spill-capable chunk store) is visible on
// any host.
func BenchmarkShardedSpreadsheet(b *testing.B) {
	const q = `SELECT r, d, m, u, v FROM big
		SPREADSHEET PBY(r) DBY (d) MEA (m, u, v)
		( UPDATE u[*] = avg(m)[d <= cv(d)] + m[cv(d)]*0.5,
		  UPDATE v[*] = sum(u)[d <= cv(d)]*0.001 + m[cv(d)] )`
	newBigDB := func(b *testing.B) *sqlsheet.DB {
		db := sqlsheet.Open()
		db.Configure(sqlsheet.Config{Parallel: 1, Workers: 1, DisablePlanCache: true})
		db.MustExec(`CREATE TABLE big (r INT, d INT, m FLOAT, u FLOAT, v FLOAT)`)
		for r := 0; r < 32; r++ {
			for d := 1; d <= 256; d++ {
				if err := db.Insert("big", []any{r, d, float64(r*d) / 7, 0.0, 0.0}); err != nil {
					b.Fatal(err)
				}
			}
		}
		return db
	}
	run := func(b *testing.B, db *sqlsheet.DB) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("topology=local", func(b *testing.B) {
		run(b, newBigDB(b))
	})
	for _, nw := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			workers := startWorkers(b, nw)
			db := newBigDB(b)
			coord := shard.New(shard.Config{Workers: workerAddrs(workers), MinRows: 1})
			db.SetDistributor(coord)
			b.Cleanup(coord.Close)
			if _, err := db.Query(q); err != nil { // warm connections, surface errors
				b.Fatal(err)
			}
			m := coord.Metrics()
			if m.SheetSubplans.Load() == 0 || m.Fallbacks.Load() != 0 {
				b.Fatalf("benchmark not distributed: subplans=%d fallbacks=%d",
					m.SheetSubplans.Load(), m.Fallbacks.Load())
			}
			run(b, db)
		})
	}
}
