// Package wal implements the write-ahead log behind sqlsheetd's crash
// safety: every mutating statement is appended as a length-prefixed,
// CRC-checksummed record before (or alongside — see SyncMode) its effects
// apply, and recovery replays the log so a restarted process comes back
// with exactly the state it acknowledged.
//
// Layout: the log is a directory of segment files (wal-00000001.log, ...).
// Records never span segments. The writer rotates to a new segment when the
// current one exceeds the segment threshold, and a checkpoint compacts the
// whole database state into a fresh segment and deletes every older one.
// The checkpoint swap is crash-atomic: the new segment is written to a
// temp file, fsynced, renamed into place (its first record a KindReset
// marker) and the directory fsynced before any old segment is removed;
// recovery starts at the newest such marker, so no crash window replays
// old history and checkpoint state together. Recovery replays segments in
// order and stops at the first torn or corrupted frame — under the
// append-before-ack discipline anything after a torn frame was never
// acknowledged.
//
// Frame format (little-endian):
//
//	[4 bytes payload length][4 bytes CRC-32 (IEEE) of payload][payload]
//
// The payload's first byte is the record kind; see Record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// SyncMode selects the durability/throughput trade-off.
type SyncMode int

const (
	// SyncGroup (the default) fsyncs after a statement applies, outside
	// the statement lock, coalescing concurrent commits into one fsync
	// (group commit): an acknowledgement still implies durability, but N
	// back-to-back writers share fsyncs instead of paying one each.
	SyncGroup SyncMode = iota
	// SyncAlways fsyncs inside Append, before the statement applies —
	// the strict write-ahead discipline. Slowest, used by the recovery
	// tests where the kill window must never contain an applied-but-
	// unlogged statement.
	SyncAlways
	// SyncNone never fsyncs; durability is whatever the OS page cache
	// survives. Benchmark baseline and bulk-load mode.
	SyncNone
)

// ParseSyncMode converts a -fsync flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch strings.ToLower(s) {
	case "group", "":
		return SyncGroup, nil
	case "always", "on":
		return SyncAlways, nil
	case "none", "off":
		return SyncNone, nil
	}
	return SyncGroup, fmt.Errorf("wal: unknown fsync mode %q (want group, always or none)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return "group"
}

// Record kinds. The payload after the kind byte is kind-specific text (see
// record.go for the codecs).
const (
	// KindStmt is a canonical SQL statement (sqlast.FormatStatement) to
	// re-execute on replay: all DDL/DML that arrived as SQL.
	KindStmt = 'S'
	// KindCreate is a programmatic CreateTable: table name + column specs.
	KindCreate = 'C'
	// KindRows is a programmatic row load (Insert, LoadCSV): table name
	// plus rows in the wire value encoding.
	KindRows = 'R'
	// KindAPB replays an InstallAPB call: the generator is deterministic
	// in its scale parameters, so the record stores only those.
	KindAPB = 'A'
	// KindReset marks the start of a checkpoint: replay drops all state
	// accumulated so far and rebuilds from the records that follow. It is
	// always the first record of a checkpoint segment, which is how
	// recovery identifies one.
	KindReset = 'X'
)

// Record is one replayed log entry.
type Record struct {
	Kind byte
	Data []byte // payload after the kind byte; valid until the next read
}

// Counters is a snapshot of the log's cumulative statistics (atomics
// underneath; safe to call concurrently with appends).
type Counters struct {
	Appends        int64 // records appended
	BytesWritten   int64 // payload + framing bytes appended
	Fsyncs         int64 // physical fsync calls issued
	CoalescedSyncs int64 // commits satisfied by another commit's fsync
	Checkpoints    int64 // checkpoint compactions performed
	Replayed       int64 // records replayed at open
	TruncatedTail  int64 // torn/corrupt frames dropped at recovery
	Segments       int64 // segment files currently on disk
	SizeBytes      int64 // bytes currently on disk across segments
}

// Pos identifies an appended record's end position for Commit: everything
// up to and including it must be durable before the statement is
// acknowledged.
type Pos struct {
	seg int64
	end int64
}

// Log is the append side of the write-ahead log. Appends are serialized by
// an internal mutex (the database additionally serializes writers with its
// exclusive statement lock); Commit may be called concurrently from many
// committing statements and coalesces their fsyncs.
type Log struct {
	dir      string
	mode     SyncMode
	segBytes int64

	mu       sync.Mutex // guards f, seg, off, rotation, checkpoint
	f        *os.File
	seg      int64 // current segment number
	off      int64 // current segment size
	segments []int64

	// syncMu guards the group-commit coverage state: the highest
	// (segment, offset) known to be durable.
	syncMu    sync.Mutex
	syncedSeg int64
	syncedOff int64

	appends        atomic.Int64
	bytesWritten   atomic.Int64
	fsyncs         atomic.Int64
	coalescedSyncs atomic.Int64
	checkpoints    atomic.Int64
	replayed       atomic.Int64
	truncatedTail  atomic.Int64
}

const defaultSegBytes = 16 << 20

// Open opens (creating if needed) the log directory. Existing segments are
// left untouched for Replay; new appends go to a fresh segment numbered
// after the newest existing one, so a torn tail in an old segment is never
// appended over. segBytes <= 0 uses the 16 MiB default.
//
// Open also finishes any checkpoint a crash interrupted: leftover temp
// files (a checkpoint that never became durable) are removed, and segments
// older than the newest completed checkpoint (durable before the crash cut
// their removal short) are deleted — replay would skip them anyway, since
// replaying them and the checkpoint together would duplicate state.
func Open(dir string, mode SyncMode, segBytes int64) (*Log, error) {
	if segBytes <= 0 {
		segBytes = defaultSegBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %v", err)
	}
	if err := removeTempFiles(dir); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, mode: mode, segBytes: segBytes, segments: segs}
	if err := l.pruneSuperseded(); err != nil {
		return nil, err
	}
	if n := len(l.segments); n > 0 {
		l.seg = l.segments[n-1]
	}
	return l, nil
}

// removeTempFiles deletes in-progress checkpoint files a crash left behind;
// they were never renamed, so they were never authoritative.
func removeTempFiles(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: %v", err)
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, tmpSuffix) {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("wal: %v", err)
			}
		}
	}
	return nil
}

// pruneSuperseded removes segments older than the newest checkpoint
// segment: a crash between a checkpoint's rename and the removal of the
// history it replaces leaves them behind, and replaying them would
// duplicate the checkpointed state. Called from Open, before any appends.
func (l *Log) pruneSuperseded() error {
	start := l.replayStart()
	if start == 0 {
		return nil
	}
	for _, seg := range l.segments[:start] {
		if err := os.Remove(filepath.Join(l.dir, segName(seg))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("wal: truncate: %v", err)
		}
	}
	l.segments = append([]int64(nil), l.segments[start:]...)
	return nil
}

// replayStart returns the index into l.segments where replay must begin:
// the newest segment that starts with a checkpoint's KindReset marker, or
// 0 when no checkpoint exists.
func (l *Log) replayStart() int {
	for i := len(l.segments) - 1; i > 0; i-- {
		if startsWithReset(filepath.Join(l.dir, segName(l.segments[i]))) {
			return i
		}
	}
	return 0
}

// startsWithReset reports whether the segment's first frame is an intact
// KindReset record — the marker a completed checkpoint begins with. The
// rename protocol means a visible checkpoint segment is always durable, so
// an unreadable or torn first frame simply means "not a checkpoint".
func startsWithReset(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	// A reset marker is a bare kind byte; anything bigger (including a
	// garbage length demanding a huge buffer) is some other record.
	if n != 1 {
		return false
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(f, buf); err != nil {
		return false
	}
	return crc32.ChecksumIEEE(buf) == crc && buf[0] == KindReset
}

func segName(seg int64) string { return fmt.Sprintf("wal-%08d.log", seg) }

func listSegments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %v", err)
	}
	var segs []int64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// Replay streams every intact record to fn, starting at the newest
// checkpoint segment (identified by its leading KindReset marker) — any
// older segment holds history the checkpoint already compacted, and
// replaying both would duplicate state. With no checkpoint, every segment
// replays in order. A torn or corrupted frame ends replay of the log (not
// just the segment): everything after it postdates the corruption and
// cannot be trusted to apply against the right state. fn errors abort and
// are returned; replay never fails on corruption — it just stops.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	segs := append([]int64(nil), l.segments[l.replayStart():]...)
	l.mu.Unlock()
	for _, seg := range segs {
		ok, err := l.replaySegment(filepath.Join(l.dir, segName(seg)), fn)
		if err != nil {
			return err
		}
		if !ok {
			return nil // corruption: stop the whole replay
		}
	}
	return nil
}

// replaySegment replays one segment file. ok=false reports a torn or
// corrupted tail (replay must stop); err carries fn failures only.
func (l *Log) replaySegment(path string, fn func(Record) error) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return true, nil
		}
		return false, fmt.Errorf("wal: %v", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return false, fmt.Errorf("wal: %v", err)
	}
	remaining := fi.Size()
	var hdr [8]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return true, nil // clean end of segment
			}
			l.truncatedTail.Add(1)
			return false, nil // torn header
		}
		remaining -= int64(len(hdr))
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		// A length exceeding what the file still holds is necessarily torn
		// or corrupt; checking before allocating keeps a garbage 4-byte
		// prefix from demanding a gigabyte buffer.
		if n == 0 || n > maxRecordBytes || int64(n) > remaining {
			l.truncatedTail.Add(1)
			return false, nil
		}
		remaining -= int64(n)
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(f, buf); err != nil {
			l.truncatedTail.Add(1)
			return false, nil // torn payload
		}
		if crc32.ChecksumIEEE(buf) != crc {
			l.truncatedTail.Add(1)
			return false, nil // corrupted payload
		}
		l.replayed.Add(1)
		if err := fn(Record{Kind: buf[0], Data: buf[1:]}); err != nil {
			return false, err
		}
	}
}

// maxRecordBytes bounds a single record frame; anything larger in a header
// is treated as corruption. Generous: a record is one statement or one
// bulk-load batch.
const maxRecordBytes = 1 << 30

// Append frames and writes one record, rotating segments as needed. Under
// SyncAlways the write is durable when Append returns; under SyncGroup the
// caller must Commit the returned position after applying the statement;
// under SyncNone the position is meaningless and Commit is a no-op.
func (l *Log) Append(kind byte, data []byte) (Pos, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil || l.off >= l.segBytes {
		if err := l.rotateLocked(); err != nil {
			return Pos{}, err
		}
	}
	payload := make([]byte, 0, 1+len(data))
	payload = append(payload, kind)
	payload = append(payload, data...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return Pos{}, fmt.Errorf("wal: append: %v", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return Pos{}, fmt.Errorf("wal: append: %v", err)
	}
	l.off += int64(len(hdr) + len(payload))
	l.appends.Add(1)
	l.bytesWritten.Add(int64(len(hdr) + len(payload)))
	pos := Pos{seg: l.seg, end: l.off}
	if l.mode == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return Pos{}, fmt.Errorf("wal: fsync: %v", err)
		}
		l.fsyncs.Add(1)
		l.markSynced(pos)
	}
	return pos, nil
}

// rotateLocked closes the current segment (fsyncing it unless SyncNone, so
// group commits against the old segment are already durable) and opens the
// next one. Called with l.mu held.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if l.mode != SyncNone {
			if err := l.f.Sync(); err != nil {
				return fmt.Errorf("wal: fsync: %v", err)
			}
			l.fsyncs.Add(1)
			l.markSynced(Pos{seg: l.seg, end: l.off})
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: close: %v", err)
		}
		l.f = nil
	}
	l.seg++
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.seg)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %v", err)
	}
	l.f = f
	l.off = 0
	l.segments = append(l.segments, l.seg)
	return nil
}

// markSynced advances the durable high-water mark.
func (l *Log) markSynced(pos Pos) {
	l.syncMu.Lock()
	if pos.seg > l.syncedSeg || (pos.seg == l.syncedSeg && pos.end > l.syncedOff) {
		l.syncedSeg, l.syncedOff = pos.seg, pos.end
	}
	l.syncMu.Unlock()
}

// Commit makes everything up to pos durable. Under SyncGroup it is called
// after the statement applied and outside the statement lock, so concurrent
// committers pile up here: the first through fsyncs the file (covering
// everyone appended so far), the rest observe coverage and return without
// touching the disk (counted as coalesced).
//
// Lock order is l.mu before l.syncMu, everywhere: rotation, checkpoint and
// Close hold l.mu and advance the durable mark via markSynced (which takes
// syncMu), so Commit must never acquire l.mu while holding syncMu. It
// snapshots the live file state first, then does all coverage bookkeeping
// and the fsync under syncMu alone — appenders are still never blocked by
// the disk.
func (l *Log) Commit(pos Pos) error {
	if l.mode != SyncGroup || pos.seg == 0 {
		return nil
	}
	l.mu.Lock()
	f, seg, off := l.f, l.seg, l.off
	l.mu.Unlock()
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if pos.seg < l.syncedSeg || (pos.seg == l.syncedSeg && pos.end <= l.syncedOff) {
		l.coalescedSyncs.Add(1)
		return nil
	}
	if f == nil {
		// The log was closed between the append and this commit. Close
		// fsyncs and advances the durable mark on the way out, so an
		// uncovered pos here means pos was never appended to this log;
		// either way there is nothing left to sync.
		return nil
	}
	if seg < pos.seg {
		return fmt.Errorf("wal: commit past end of log")
	}
	// The snapshotted file cannot be closed under us: rotation, checkpoint
	// and Close all advance the durable mark — which needs syncMu, held
	// here — before closing the file they fsynced, and an already-closed
	// file means pos was covered above.
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %v", err)
	}
	l.fsyncs.Add(1)
	if seg > l.syncedSeg || (seg == l.syncedSeg && off > l.syncedOff) {
		l.syncedSeg, l.syncedOff = seg, off
	}
	return nil
}

// Checkpoint compacts the database into a fresh segment: write streams the
// full state as records through app, and every older segment is deleted.
// The caller must hold the exclusive statement lock so the streamed state
// is a statement boundary.
//
// The swap is crash-atomic. The checkpoint is written to a temporary file
// (invisible to recovery), fsynced, renamed to its final segment name, and
// the directory is fsynced — only then are the old segments removed. Its
// first record is a KindReset marker, which is how recovery recognizes a
// checkpoint segment and starts replay there: a crash at any point leaves
// either the old history fully intact (rename not yet durable; the torn
// temp file is ignored and cleaned up at the next Open) or the checkpoint
// authoritative (old segments — whether still present, partially deleted,
// or gone — are skipped by replay). There is no window where old history
// and checkpoint records both replay, which would duplicate every row.
func (l *Log) Checkpoint(write func(app func(kind byte, data []byte) error) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	old := append([]int64(nil), l.segments...)
	oldF := l.f
	seg := l.seg + 1
	path := filepath.Join(l.dir, segName(seg))
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %v", err)
	}
	abort := func() {
		f.Close()
		os.Remove(tmp)
	}
	var off int64
	app := func(kind byte, data []byte) error {
		payload := make([]byte, 0, 1+len(data))
		payload = append(payload, kind)
		payload = append(payload, data...)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := f.Write(hdr[:]); err != nil {
			return fmt.Errorf("wal: checkpoint: %v", err)
		}
		if _, err := f.Write(payload); err != nil {
			return fmt.Errorf("wal: checkpoint: %v", err)
		}
		off += int64(len(hdr) + len(payload))
		l.appends.Add(1)
		l.bytesWritten.Add(int64(len(hdr) + len(payload)))
		return nil
	}
	if err := app(KindReset, nil); err != nil {
		abort()
		return err
	}
	if err := write(app); err != nil {
		abort()
		return err
	}
	// The checkpoint must be durable before it becomes visible under its
	// final name, whatever the sync mode.
	if err := f.Sync(); err != nil {
		abort()
		return fmt.Errorf("wal: fsync: %v", err)
	}
	l.fsyncs.Add(1)
	if err := os.Rename(tmp, path); err != nil {
		abort()
		return fmt.Errorf("wal: checkpoint: %v", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// The rename is durable: the checkpoint is now the authoritative state
	// and subsequent appends go to its open handle. Advance the durable
	// mark before closing the old file — an in-flight group commit against
	// it holds syncMu while fsyncing, so markSynced also orders this close
	// after that fsync completes.
	l.f, l.seg, l.off = f, seg, off
	l.segments = []int64{seg}
	l.markSynced(Pos{seg: seg, end: off})
	if oldF != nil {
		oldF.Close()
	}
	for _, o := range old {
		if err := os.Remove(filepath.Join(l.dir, segName(o))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("wal: truncate: %v", err)
		}
	}
	l.checkpoints.Add(1)
	return nil
}

// tmpSuffix marks an in-progress checkpoint segment. The suffix keeps it
// out of listSegments; Open removes leftovers from a crashed checkpoint.
const tmpSuffix = ".tmp"

// syncDir fsyncs a directory, making a just-completed rename durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %v", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir: %v", err)
	}
	return nil
}

// SizeBytes returns the on-disk size of all segments (sloppy: the current
// segment's size is tracked, older ones are stat'ed).
func (l *Log) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, seg := range l.segments {
		// l.off only tracks a segment this process has open; right after
		// Open, l.seg aliases the newest pre-existing segment with off 0,
		// which must be stat'ed like the rest.
		if seg == l.seg && l.f != nil {
			n += l.off
			continue
		}
		if fi, err := os.Stat(filepath.Join(l.dir, segName(seg))); err == nil {
			n += fi.Size()
		}
	}
	return n
}

// Counters snapshots the cumulative statistics.
func (l *Log) Counters() Counters {
	c := Counters{
		Appends:        l.appends.Load(),
		BytesWritten:   l.bytesWritten.Load(),
		Fsyncs:         l.fsyncs.Load(),
		CoalescedSyncs: l.coalescedSyncs.Load(),
		Checkpoints:    l.checkpoints.Load(),
		Replayed:       l.replayed.Load(),
		TruncatedTail:  l.truncatedTail.Load(),
	}
	l.mu.Lock()
	c.Segments = int64(len(l.segments))
	l.mu.Unlock()
	c.SizeBytes = l.SizeBytes()
	return c
}

// Mode returns the log's sync mode.
func (l *Log) Mode() SyncMode { return l.mode }

// Close flushes and closes the current segment. The durable mark is
// advanced before the file closes, so an in-flight Commit racing Close
// observes coverage rather than fsyncing a closed file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if l.mode != SyncNone {
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.fsyncs.Add(1)
		l.markSynced(Pos{seg: l.seg, end: l.off})
	}
	err := l.f.Close()
	l.f = nil
	return err
}
