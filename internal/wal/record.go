package wal

import (
	"fmt"
	"strconv"
	"strings"

	"sqlsheet/internal/types"
	"sqlsheet/internal/wire"
)

// Record payload codecs. KindStmt payloads are the canonical SQL text and
// need no codec; the programmatic kinds (KindCreate, KindRows, KindAPB)
// use the line/tab-separated encodings below. Every field that could
// contain a tab or newline (names, string values) goes through
// strconv.Quote / the wire value codec, so the separators are unambiguous.

// kindLetters maps a column kind to its single-letter tag and back.
var kindLetters = map[types.Kind]byte{
	types.KindNull:   'n',
	types.KindInt:    'i',
	types.KindFloat:  'f',
	types.KindString: 's',
	types.KindBool:   'b',
}

func letterKind(b byte) (types.Kind, bool) {
	for k, l := range kindLetters {
		if l == b {
			return k, true
		}
	}
	return types.KindNull, false
}

// EncodeCreate encodes a programmatic CreateTable:
//
//	"name"\t i"col1"\t s"col2"...
func EncodeCreate(name string, cols []types.Column) []byte {
	var b strings.Builder
	b.WriteString(strconv.Quote(name))
	for _, c := range cols {
		b.WriteByte('\t')
		b.WriteByte(kindLetters[c.Kind])
		b.WriteString(strconv.Quote(c.Name))
	}
	return []byte(b.String())
}

// DecodeCreate decodes EncodeCreate's payload.
func DecodeCreate(data []byte) (string, []types.Column, error) {
	fields := strings.Split(string(data), "\t")
	name, err := strconv.Unquote(fields[0])
	if err != nil {
		return "", nil, fmt.Errorf("wal: create record: bad table name: %v", err)
	}
	cols := make([]types.Column, 0, len(fields)-1)
	for _, f := range fields[1:] {
		if f == "" {
			return "", nil, fmt.Errorf("wal: create record: empty column spec")
		}
		k, ok := letterKind(f[0])
		if !ok {
			return "", nil, fmt.Errorf("wal: create record: unknown kind %q", f[0])
		}
		cn, err := strconv.Unquote(f[1:])
		if err != nil {
			return "", nil, fmt.Errorf("wal: create record: bad column name: %v", err)
		}
		cols = append(cols, types.Column{Name: cn, Kind: k})
	}
	return name, cols, nil
}

// EncodeRows encodes a programmatic row load: the quoted table name on the
// first line, then one row per line with tab-separated wire-encoded values.
func EncodeRows(table string, rows []types.Row) []byte {
	var b strings.Builder
	b.WriteString(strconv.Quote(table))
	for _, row := range rows {
		b.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(wire.EncodeValue(v))
		}
	}
	return []byte(b.String())
}

// DecodeRows decodes EncodeRows's payload.
func DecodeRows(data []byte) (string, []types.Row, error) {
	lines := strings.Split(string(data), "\n")
	table, err := strconv.Unquote(lines[0])
	if err != nil {
		return "", nil, fmt.Errorf("wal: rows record: bad table name: %v", err)
	}
	rows := make([]types.Row, 0, len(lines)-1)
	for _, ln := range lines[1:] {
		fields := strings.Split(ln, "\t")
		row := make(types.Row, len(fields))
		for i, f := range fields {
			v, err := wire.DecodeValue(f)
			if err != nil {
				return "", nil, fmt.Errorf("wal: rows record: %v", err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return table, rows, nil
}

// APBParams are the deterministic generator inputs of an InstallAPB call;
// replay regenerates the dataset instead of storing it.
type APBParams struct {
	Seed          int64
	ProductFanout []int
	Channels      int
	Customers     int
	Years         int
	Density       float64
}

// EncodeAPB encodes the generator parameters:
//
//	seed\tchannels\tcustomers\tyears\tdensity\tfanout1,fanout2,...
func EncodeAPB(p APBParams) []byte {
	fan := make([]string, len(p.ProductFanout))
	for i, f := range p.ProductFanout {
		fan[i] = strconv.Itoa(f)
	}
	return []byte(fmt.Sprintf("%d\t%d\t%d\t%d\t%s\t%s",
		p.Seed, p.Channels, p.Customers, p.Years,
		strconv.FormatFloat(p.Density, 'g', -1, 64),
		strings.Join(fan, ",")))
}

// DecodeAPB decodes EncodeAPB's payload.
func DecodeAPB(data []byte) (APBParams, error) {
	fields := strings.Split(string(data), "\t")
	if len(fields) != 6 {
		return APBParams{}, fmt.Errorf("wal: apb record: want 6 fields, got %d", len(fields))
	}
	var p APBParams
	var err error
	if p.Seed, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
		return APBParams{}, fmt.Errorf("wal: apb record: %v", err)
	}
	ints := []*int{&p.Channels, &p.Customers, &p.Years}
	for i, dst := range ints {
		n, err := strconv.Atoi(fields[1+i])
		if err != nil {
			return APBParams{}, fmt.Errorf("wal: apb record: %v", err)
		}
		*dst = n
	}
	if p.Density, err = strconv.ParseFloat(fields[4], 64); err != nil {
		return APBParams{}, fmt.Errorf("wal: apb record: %v", err)
	}
	if fields[5] != "" {
		for _, f := range strings.Split(fields[5], ",") {
			n, err := strconv.Atoi(f)
			if err != nil {
				return APBParams{}, fmt.Errorf("wal: apb record: %v", err)
			}
			p.ProductFanout = append(p.ProductFanout, n)
		}
	}
	return p, nil
}
