package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sqlsheet/internal/types"
)

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	err := l.Replay(func(r Record) error {
		recs = append(recs, Record{Kind: r.Kind, Data: append([]byte(nil), r.Data...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	payloads := []string{"CREATE TABLE t (a INT)", "INSERT INTO t VALUES (1)", "UPDATE t SET a = 2"}
	var last Pos
	for _, p := range payloads {
		pos, err := l.Append(KindStmt, []byte(p))
		if err != nil {
			t.Fatal(err)
		}
		last = pos
	}
	if err := l.Commit(last); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, SyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2)
	if len(recs) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Kind != KindStmt || string(r.Data) != payloads[i] {
			t.Fatalf("record %d = %c %q, want S %q", i, r.Kind, r.Data, payloads[i])
		}
	}
}

func TestReplayStopsAtTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindStmt, []byte("first")); err != nil {
		t.Fatal(err)
	}
	pos, err := l.Append(KindStmt, []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncate the segment mid-way through the second frame.
	seg := filepath.Join(dir, segName(pos.seg))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2)
	if len(recs) != 1 || string(recs[0].Data) != "first" {
		t.Fatalf("replayed %v, want just the first record", recs)
	}
	if l2.Counters().TruncatedTail != 1 {
		t.Fatalf("TruncatedTail = %d, want 1", l2.Counters().TruncatedTail)
	}
}

func TestReplayStopsAtCorruptedPayload(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindStmt, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	pos, err := l.Append(KindStmt, []byte("corrupt-me"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindStmt, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload bit of the middle record.
	seg := filepath.Join(dir, segName(pos.seg))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte("corrupt-me"))
	data[i] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2)
	// Everything from the corruption on is dropped, including the intact
	// record after it (it postdates the corruption).
	if len(recs) != 1 || string(recs[0].Data) != "keep" {
		t.Fatalf("replayed %d records, want 1 (%v)", len(recs), recs)
	}
}

func TestRotationAndNewSegmentPerOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone, 64) // tiny segments force rotation
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(KindStmt, []byte("statement payload that exceeds the threshold")); err != nil {
			t.Fatal(err)
		}
	}
	c := l.Counters()
	if c.Segments < 2 {
		t.Fatalf("segments = %d, want rotation to have produced several", c.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replay sees all ten records across segments, in order.
	l2, err := Open(dir, SyncNone, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, l2)); got != 10 {
		t.Fatalf("replayed %d records, want 10", got)
	}
	// New appends land in a fresh segment, never after an old tail.
	pos, err := l2.Append(KindStmt, []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if pos.seg <= c.Segments {
		t.Fatalf("append went to segment %d, want a fresh one", pos.seg)
	}
}

func TestCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(KindStmt, []byte("old history")); err != nil {
			t.Fatal(err)
		}
	}
	err = l.Checkpoint(func(app func(kind byte, data []byte) error) error {
		return app(KindStmt, []byte("compacted state"))
	})
	if err != nil {
		t.Fatal(err)
	}
	c := l.Counters()
	if c.Segments != 1 {
		t.Fatalf("segments after checkpoint = %d, want 1", c.Segments)
	}
	if c.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", c.Checkpoints)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, SyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2)
	if len(recs) != 2 || recs[0].Kind != KindReset || string(recs[1].Data) != "compacted state" {
		t.Fatalf("replay after checkpoint = %v, want reset marker + compacted record", recs)
	}
}

// TestCheckpointCrashBeforeRename simulates a crash while a checkpoint was
// still streaming into its temp file: the temp file must be ignored by
// recovery, removed at Open, and the old history must replay intact.
func TestCheckpointCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(KindStmt, []byte("history")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn checkpoint that never reached its rename.
	tmp := filepath.Join(dir, segName(2)+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial checkpoint frames"), 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2)
	if len(recs) != 3 || string(recs[0].Data) != "history" {
		t.Fatalf("replayed %v, want the 3 history records", recs)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover checkpoint temp file survived Open: %v", err)
	}
}

// TestCheckpointCrashBeforeTruncate simulates a crash after the checkpoint
// segment became durable but before the old segments were removed: replay
// must start at the checkpoint and never see the old history (which would
// duplicate every checkpointed row), and Open must prune the stale files.
func TestCheckpointCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(KindStmt, []byte("old history")); err != nil {
			t.Fatal(err)
		}
	}
	oldSeg := filepath.Join(dir, segName(1))
	oldBytes, err := os.ReadFile(oldSeg)
	if err != nil {
		t.Fatal(err)
	}
	err = l.Checkpoint(func(app func(kind byte, data []byte) error) error {
		return app(KindStmt, []byte("compacted state"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the pre-checkpoint segment, as if the crash hit mid-removal.
	if err := os.WriteFile(oldSeg, oldBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l2)
	if len(recs) != 2 || recs[0].Kind != KindReset || string(recs[1].Data) != "compacted state" {
		t.Fatalf("replayed %v, want only the checkpoint records", recs)
	}
	if _, err := os.Stat(oldSeg); !os.IsNotExist(err) {
		t.Fatalf("superseded segment survived Open: %v", err)
	}
}

// TestCommitConcurrentWithRotation drives group commits against appenders
// that rotate segments constantly; the old lock order (Commit holding
// syncMu while acquiring mu, rotation holding mu while acquiring syncMu)
// deadlocked this in two goroutines.
func TestCommitConcurrentWithRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncGroup, 256) // tiny segments: rotate every few appends
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				pos, err := l.Append(KindStmt, []byte("a payload long enough to force frequent segment rotation"))
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.Commit(pos); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, SyncGroup, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, l2)); got != 200 {
		t.Fatalf("replayed %d records, want 200", got)
	}
}

// TestCommitAfterCloseIsCleanNoop covers the walCommit/Close race: Close
// fsyncs and advances the durable mark, so a commit that arrives after it
// finds its position covered and succeeds without touching the closed file.
func TestCommitAfterCloseIsCleanNoop(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := l.Append(KindStmt, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(pos); err != nil {
		t.Fatalf("commit after close = %v, want clean no-op", err)
	}
}

// TestSizeBytesCountsPreexistingSegments: right after Open, before any
// append, the newest on-disk segment shares its number with l.seg but is
// not open in this process — SizeBytes must stat it, not report zero.
func TestSizeBytesCountsPreexistingSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindStmt, []byte("some durable history")); err != nil {
		t.Fatal(err)
	}
	want := l.SizeBytes()
	if want == 0 {
		t.Fatal("SizeBytes = 0 after append")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.SizeBytes(); got != want {
		t.Fatalf("SizeBytes after reopen = %d, want %d", got, want)
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, SyncGroup, 0)
	if err != nil {
		t.Fatal(err)
	}
	var last Pos
	for i := 0; i < 4; i++ {
		pos, err := l.Append(KindStmt, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		last = pos
	}
	// Committing the last position first covers the earlier three.
	if err := l.Commit(last); err != nil {
		t.Fatal(err)
	}
	before := l.Counters().Fsyncs
	if err := l.Commit(Pos{seg: last.seg, end: 1}); err != nil {
		t.Fatal(err)
	}
	c := l.Counters()
	if c.Fsyncs != before {
		t.Fatalf("covered commit issued an fsync (%d -> %d)", before, c.Fsyncs)
	}
	if c.CoalescedSyncs != 1 {
		t.Fatalf("coalesced = %d, want 1", c.CoalescedSyncs)
	}
}

func TestRecordCodecs(t *testing.T) {
	name, cols, err := DecodeCreate(EncodeCreate("T1", []types.Column{
		{Name: "a", Kind: types.KindInt},
		{Name: "weird\tname", Kind: types.KindString},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if name != "T1" || len(cols) != 2 || cols[1].Name != "weird\tname" || cols[1].Kind != types.KindString {
		t.Fatalf("create round-trip = %q %v", name, cols)
	}

	rows := []types.Row{
		{types.NewInt(1), types.NewString("tab\tand\nnewline"), types.Null},
		{types.NewFloat(3.25), types.NewBool(true), types.NewString("")},
	}
	table, got, err := DecodeRows(EncodeRows("t", rows))
	if err != nil {
		t.Fatal(err)
	}
	if table != "t" || len(got) != 2 {
		t.Fatalf("rows round-trip = %q %v", table, got)
	}
	for i := range rows {
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Fatalf("row %d col %d = %v, want %v", i, j, got[i][j], rows[i][j])
			}
		}
	}

	p, err := DecodeAPB(EncodeAPB(APBParams{Seed: 7, ProductFanout: []int{2, 3}, Channels: 4, Customers: 5, Years: 2, Density: 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.ProductFanout) != 2 || p.ProductFanout[1] != 3 || p.Density != 0.1 {
		t.Fatalf("apb round-trip = %+v", p)
	}
}

// FuzzWALReplay feeds arbitrary bytes as a segment file: replay must never
// panic, never return an error for corruption (only stop), and must accept
// its own valid prefix.
func FuzzWALReplay(f *testing.F) {
	// Seed with a valid log, its truncations, and a bit-flipped variant.
	dir := f.TempDir()
	l, err := Open(dir, SyncNone, 0)
	if err != nil {
		f.Fatal(err)
	}
	l.Append(KindStmt, []byte("CREATE TABLE t (a INT)"))
	l.Append(KindRows, EncodeRows("t", []types.Row{{types.NewInt(1)}}))
	l.Append(KindCreate, EncodeCreate("u", []types.Column{{Name: "x", Kind: types.KindFloat}}))
	l.Close()
	valid, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, cut := range []int{1, 7, 9, len(valid) / 2, len(valid) - 1} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	// A checkpoint segment: leading reset marker, then compacted state.
	cpDir := f.TempDir()
	cl, err := Open(cpDir, SyncNone, 0)
	if err != nil {
		f.Fatal(err)
	}
	if err := cl.Checkpoint(func(app func(kind byte, data []byte) error) error {
		return app(KindStmt, []byte("CREATE TABLE t (a INT)"))
	}); err != nil {
		f.Fatal(err)
	}
	cl.Close()
	if cp, err := os.ReadFile(filepath.Join(cpDir, segName(1))); err == nil {
		f.Add(cp)
		f.Add(cp[:9]) // torn mid-reset-marker
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, SyncNone, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := l.Replay(func(r Record) error {
			// Decoders must tolerate arbitrary CRC-valid payloads too.
			switch r.Kind {
			case KindCreate:
				DecodeCreate(r.Data)
			case KindRows:
				DecodeRows(r.Data)
			case KindAPB:
				DecodeAPB(r.Data)
			}
			n++
			return nil
		}); err != nil {
			t.Fatalf("replay returned error for corrupt input: %v", err)
		}
		_ = n
	})
}
