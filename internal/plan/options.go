package plan

import (
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// PushStrategy selects how predicates on functionally independent
// dimensions are pushed through reference spreadsheets (§4's three
// transformations).
type PushStrategy uint8

const (
	// PushExtended executes the reference query at optimization time and
	// pushes the disjunction of outer and referenced values ("extended
	// pushing"). The paper's best performer; the default.
	PushExtended PushStrategy = iota
	// PushRefSubquery pushes a subquery predicate over the reference query
	// ("ref-subquery pushing", the magic-set-like transform).
	PushRefSubquery
	// PushUnfold replaces reference lookups with their values, specializing
	// formulas per outer dimension value ("formula unfolding").
	PushUnfold
	// PushNone disables pushing through functionally independent
	// dimensions (the "no pushing" baseline of Fig. 2).
	PushNone
)

func (s PushStrategy) String() string {
	switch s {
	case PushExtended:
		return "extended"
	case PushRefSubquery:
		return "ref-subquery"
	case PushUnfold:
		return "unfold"
	case PushNone:
		return "none"
	}
	return "?"
}

// RefExecutor lets the optimizer execute reference queries at plan time
// (the paper calls this "dynamic optimization"); the executor package
// provides the implementation.
type RefExecutor interface {
	Rows(stmt *sqlast.SelectStmt) (*eval.BoundSchema, []types.Row, error)
}

// Options steers planning and optimization. The zero value gives default
// behaviour with every optimization enabled.
type Options struct {
	// ForceJoin overrides join method selection (JoinAuto = pick).
	ForceJoin JoinMethod
	// Push selects the reference-pushing transform.
	Push PushStrategy
	// DisableSheetPrune turns off formula pruning (PruneFormulas).
	DisableSheetPrune bool
	// DisableSheetRewrite turns off left-side restriction of sink formulas.
	DisableSheetRewrite bool
	// DisableSheetPush turns off predicate pushing through spreadsheets.
	DisableSheetPush bool
	// DisableFilterPushdown turns off generic filter pushdown.
	DisableFilterPushdown bool
	// Parallel is the spreadsheet degree of parallelism.
	Parallel int
	// Workers is the operator worker-pool size for morsel-driven parallel
	// relational operators (0 = all cores, 1 = serial). The pool shares one
	// core budget with the spreadsheet PEs; see exec.Options.Workers.
	Workers int
	// PromoteIndependentDims duplicates an independent dimension into the
	// distribution key when the PBY list is empty (S3/S4).
	PromoteIndependentDims bool
	// Exec runs reference queries during optimization (extended pushing,
	// formula unfolding); nil disables those strategies gracefully.
	Exec RefExecutor
	// EnableMVRewrite substitutes materialized views for subqueries whose
	// canonical SQL exactly matches an MV definition (§7; the general
	// problem is undecidable, the exact-match restriction is not). Off by
	// default: a rewrite may serve data stale since the last REFRESH.
	EnableMVRewrite bool
	// DisableCompiledEval keeps every per-row expression on the tree-walking
	// interpreter instead of the closure-compiled form (ablation knob; the
	// two paths produce byte-identical results).
	DisableCompiledEval bool
	// DisableParallelBuild / DisableParallelSort mirror the executor's
	// ablation knobs so EXPLAIN annotations reflect the paths a query will
	// actually take; see exec.Options.
	DisableParallelBuild bool
	DisableParallelSort  bool
	// DisableVectorizedExec keeps scans, filters and key encoding on the
	// row-at-a-time paths instead of columnar batch kernels (ablation knob;
	// the two paths produce byte-identical results). The executor carries
	// the same flag in exec.Options.
	DisableVectorizedExec bool
	// DisableVectorizedRules keeps spreadsheet formula application on the
	// per-cell path (ablation knob; byte-identical results). Mirrored here
	// so EXPLAIN's per-rule vectorized= notes reflect the executed path.
	DisableVectorizedRules bool
	// Distributed runs the distribution pass: spreadsheet and group-by
	// nodes get a DistNote verdict ("yes" / "no(reason)", printed as
	// distributed= by EXPLAIN) deciding whether the executor may hand them
	// to the scatter-gather coordinator. Set by the DB layer when a
	// distributor is installed; results are byte-identical either way.
	Distributed bool
}
