package plan

import (
	"strings"
	"testing"

	"sqlsheet/internal/catalog"
	"sqlsheet/internal/parser"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	mk := func(name string, cols ...string) {
		if _, err := cat.Create(name, types.NewSchemaNames(cols...)); err != nil {
			t.Fatal(err)
		}
	}
	mk("f", "r", "p", "t", "s", "c")
	mk("fm", "p", "m", "s")
	mk("dim", "p", "cat")
	mk("time_dt", "m", "m_yago", "m_qago")
	return cat
}

func mustPlan(t *testing.T, sql string, opts *Options) Node {
	t.Helper()
	stmt, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := Build(testCatalog(t), stmt, opts)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return n
}

func planErr(t *testing.T, sql string) error {
	t.Helper()
	stmt, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Build(testCatalog(t), stmt, nil)
	if err == nil {
		t.Fatalf("expected plan error for %q", sql)
	}
	return err
}

func TestFilterPushedIntoScan(t *testing.T) {
	n := mustPlan(t, `SELECT r FROM f WHERE t = 2000 AND s > 1`, nil)
	out := Explain(n)
	if !strings.Contains(out, "Scan f filter=") {
		t.Errorf("filter not pushed:\n%s", out)
	}
	if strings.Contains(out, "\nFilter") {
		t.Errorf("stray filter remains:\n%s", out)
	}
}

func TestCommaJoinUpgradedToHash(t *testing.T) {
	n := mustPlan(t, `SELECT f.p FROM f, dim WHERE f.p = dim.p AND f.t = 2000`, nil)
	out := Explain(n)
	if !strings.Contains(out, "INNER Join") {
		t.Errorf("cross join not upgraded:\n%s", out)
	}
	if !strings.Contains(out, "on f.p = dim.p") {
		t.Errorf("equi key not extracted:\n%s", out)
	}
	if !strings.Contains(out, "Scan f filter=(f.t = 2000)") {
		t.Errorf("side predicate not pushed:\n%s", out)
	}
}

func TestOuterJoinPushdownRestrictions(t *testing.T) {
	// A predicate on the null-supplying side must NOT push below a LEFT
	// join.
	n := mustPlan(t, `SELECT f.p FROM f LEFT JOIN dim ON f.p = dim.p WHERE dim.cat = 'x'`, nil)
	out := Explain(n)
	if strings.Contains(out, "Scan dim filter=") {
		t.Errorf("unsound pushdown below left join:\n%s", out)
	}
	// But a preserved-side predicate may push.
	n = mustPlan(t, `SELECT f.p FROM f LEFT JOIN dim ON f.p = dim.p WHERE f.t = 2000`, nil)
	out = Explain(n)
	if !strings.Contains(out, "Scan f filter=") {
		t.Errorf("preserved-side predicate not pushed:\n%s", out)
	}
}

func TestGroupKeyPushdown(t *testing.T) {
	n := mustPlan(t, `SELECT p FROM (SELECT p, SUM(s) total FROM f GROUP BY p) v WHERE p = 'dvd'`, nil)
	out := Explain(n)
	if !strings.Contains(out, "Scan f filter=(p = 'dvd')") {
		t.Errorf("group-key predicate not pushed through GROUP BY:\n%s", out)
	}
	// Aggregate-result predicates must stay above.
	n = mustPlan(t, `SELECT p FROM (SELECT p, SUM(s) total FROM f GROUP BY p) v WHERE total > 5`, nil)
	out = Explain(n)
	if strings.Contains(out, "Scan f filter=") {
		t.Errorf("aggregate predicate pushed unsoundly:\n%s", out)
	}
}

func TestAggregateRewriting(t *testing.T) {
	ar := newAggRewriter(mustExprs(t, "p"))
	e := mustExpr(t, "sum(s) + sum(s) + avg(c)")
	out := ar.rewrite(e)
	if len(ar.specs) != 2 {
		t.Fatalf("specs = %d, want dedup to 2", len(ar.specs))
	}
	if !strings.Contains(out.String(), "$agg0") || !strings.Contains(out.String(), "$agg1") {
		t.Errorf("rewrite = %s", out)
	}
	// Key expression rewrite.
	ar2 := newAggRewriter(mustExprs(t, "t + 1"))
	out2 := ar2.rewrite(mustExpr(t, "(t + 1) * 2"))
	if !strings.Contains(out2.String(), "$key0") {
		t.Errorf("key rewrite = %s", out2)
	}
}

func mustExpr(t *testing.T, s string) sqlast.Expr {
	t.Helper()
	e, err := parser.ParseExpr(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustExprs(t *testing.T, ss ...string) []sqlast.Expr {
	t.Helper()
	out := make([]sqlast.Expr, len(ss))
	for i, s := range ss {
		out[i] = mustExpr(t, s)
	}
	return out
}

func TestPlanErrors(t *testing.T) {
	cases := []struct{ sql, want string }{
		{`SELECT zzz FROM f`, "unknown column"},
		{`SELECT * FROM missing`, "unknown table"},
		{`SELECT s FROM f GROUP BY p`, "unknown column s"},
		{`SELECT p FROM f HAVING SUM(q) > 1`, "unknown column"},
		{`SELECT * FROM f GROUP BY p`, "SELECT *"},
		{`SELECT p FROM f UNION SELECT p, t FROM f`, "UNION arms"},
		{`SELECT p FROM f LIMIT 'x'`, "LIMIT"},
		{`SELECT p FROM f ORDER BY 9`, "out of range"},
		{`SELECT p FROM f WHERE cv(t) = 1`, "cv()"},
		{`SELECT p FROM f HAVING 1 = 1`, "HAVING requires"},
		{`SELECT sum(q) FROM f`, "unknown column"},
	}
	for _, c := range cases {
		err := planErr(t, c.sql)
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.sql, err, c.want)
		}
	}
}

func TestOrderByResolution(t *testing.T) {
	// Positional.
	n := mustPlan(t, `SELECT p, t FROM f ORDER BY 2 DESC`, nil)
	s, ok := n.(*Sort)
	if !ok {
		t.Fatalf("top = %T", n)
	}
	if s.Items[0].Expr.String() != "t" || !s.Items[0].Desc {
		t.Errorf("positional order = %+v", s.Items[0])
	}
	// Stale qualifier stripped.
	n = mustPlan(t, `SELECT f.p FROM f ORDER BY f.p`, nil)
	if n.(*Sort).Items[0].Expr.String() != "p" {
		t.Errorf("qualifier not stripped: %s", n.(*Sort).Items[0].Expr)
	}
}

func TestSpreadsheetPlanSchema(t *testing.T) {
	n := mustPlan(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY(p, t) MEA(s)
		( s['dvd', 2002] = 1 )`, nil)
	cols := n.Schema().Cols
	if len(cols) != 4 || cols[3].Name != "s" {
		t.Errorf("schema = %+v", cols)
	}
	out := Explain(n)
	if !strings.Contains(out, "Spreadsheet PBY(r) DBY(p, t) MEA(s)") {
		t.Errorf("explain:\n%s", out)
	}
}

func TestSpreadsheetSelectMustResolve(t *testing.T) {
	err := planErr(t, `SELECT r, p, t, s, c FROM f
		SPREADSHEET PBY(r) DBY(p, t) MEA(s)
		( s['dvd', 2002] = 1 )`)
	if !strings.Contains(err.Error(), "unknown column c") {
		t.Errorf("err = %v", err)
	}
}

func TestNewMeasureDeclaration(t *testing.T) {
	// A bare unresolvable MEA name declares a NULL measure; an expression
	// initializes one.
	n := mustPlan(t, `SELECT t, s, x, y FROM f
		SPREADSHEET PBY(r) DBY(t) MEA(s, 0 AS x, y)
		( x[2000] = 1 )`, nil)
	sheet := findSheet(n)
	if sheet == nil {
		t.Fatal("no spreadsheet node")
	}
	names := sheet.Model.MeasureNames()
	if len(names) != 3 || names[1] != "x" || names[2] != "y" {
		t.Errorf("measures = %v", names)
	}
}

func findSheet(n Node) *Spreadsheet {
	if s, ok := n.(*Spreadsheet); ok {
		return s
	}
	for _, c := range n.Children() {
		if s := findSheet(c); s != nil {
			return s
		}
	}
	return nil
}

func TestUnfoldStrategyRewritesRules(t *testing.T) {
	// With PushUnfold and an executable ref, formulas specialize per outer
	// value; without an Exec hook the strategy degrades gracefully.
	stmt, err := parser.ParseQuery(`SELECT p, m, s, r_yago FROM
		(SELECT p, m, s, r_yago FROM fm
		 SPREADSHEET
		   REFERENCE prior ON (SELECT m, m_yago FROM time_dt) DBY(m) MEA(m_yago)
		   PBY(p) DBY(m) MEA(s, r_yago)
		 RULES UPDATE
		 ( F1: r_yago[*] = s[cv(m)] / s[m_yago[cv(m)]] )
		) v WHERE m IN ('1999-01')`)
	if err != nil {
		t.Fatal(err)
	}
	// No Exec hook: plan must still build (predicate simply stays).
	cat := testCatalog(t)
	n, err := Build(cat, stmt, &Options{Push: PushUnfold})
	if err != nil {
		t.Fatal(err)
	}
	if findSheet(n) == nil {
		t.Fatal("no sheet in plan")
	}
}

func TestCTEPlan(t *testing.T) {
	n := mustPlan(t, `WITH w AS (SELECT p, SUM(s) tot FROM f GROUP BY p)
		SELECT a.p FROM w a JOIN w b ON a.p = b.p`, nil)
	out := Explain(n)
	if strings.Count(out, "CTE w") != 2 {
		t.Errorf("CTE refs:\n%s", out)
	}
}

func TestExplainJoinDetails(t *testing.T) {
	n := mustPlan(t, `SELECT f.p FROM f JOIN dim ON f.p = dim.p AND f.t > 5`,
		&Options{ForceJoin: JoinHash})
	out := Explain(n)
	if !strings.Contains(out, "(hash)") {
		t.Errorf("forced method missing:\n%s", out)
	}
	if !strings.Contains(out, "residual=") && !strings.Contains(out, "Scan f filter=") {
		t.Errorf("non-equi conjunct lost:\n%s", out)
	}
}
