package plan

import (
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
)

// compilePlan attaches closure-compiled forms of every per-row expression to
// the plan after optimization, so the executor's hot loops run closure
// chains instead of re-walking ASTs. Compilation is best-effort: a failure
// leaves the slot invalid and the executor falls back to the interpreter,
// which is always behaviorally identical.
//
// Expressions compile against the schema they are evaluated under at run
// time: a Scan/CTERef filter against the node's own (aliased) schema, a
// Filter/Project/GroupBy/Sort/Window expression against the input schema,
// join keys against their side's schema, and a join residual against the
// combined output schema.
func compilePlan(n Node, visited map[Node]bool) {
	if n == nil || visited[n] {
		return
	}
	visited[n] = true
	switch x := n.(type) {
	case *Scan:
		x.FilterC = compileExpr(x.Schema(), x.Filter)
	case *CTERef:
		x.FilterC = compileExpr(x.Schema(), x.Filter)
		compilePlan(x.Def.Plan, visited)
	case *Filter:
		x.CondC = compileExpr(x.Input.Schema(), x.Cond)
	case *Project:
		x.ExprsC = compileExprs(x.Input.Schema(), x.Exprs)
	case *Join:
		x.LeftKeysC = compileExprs(x.L.Schema(), x.LeftKeys)
		x.RightKeysC = compileExprs(x.R.Schema(), x.RightKeys)
		x.ResidualC = compileExpr(x.Schema(), x.Residual)
	case *GroupBy:
		x.KeysC = compileExprs(x.Input.Schema(), x.Keys)
		x.AggArgsC = make([][]eval.CompiledExpr, len(x.Aggs))
		for i, spec := range x.Aggs {
			x.AggArgsC[i] = compileExprs(x.Input.Schema(), spec.Call.Args)
		}
	case *Sort:
		items := make([]sqlast.Expr, len(x.Items))
		for i, it := range x.Items {
			items[i] = it.Expr
		}
		x.ItemsC = compileExprs(x.Input.Schema(), items)
	case *Window:
		x.Compiled = map[sqlast.Expr]eval.CompiledExpr{}
		env := x.Input.Schema()
		add := func(e sqlast.Expr) {
			if e != nil {
				x.Compiled[e] = compileExpr(env, e)
			}
		}
		for _, spec := range x.Specs {
			for _, a := range spec.Fn.Func.Args {
				add(a)
			}
			for _, p := range spec.Fn.PartitionBy {
				add(p)
			}
			for _, o := range spec.Fn.OrderBy {
				add(o.Expr)
			}
		}
	}
	for _, ch := range n.Children() {
		compilePlan(ch, visited)
	}
}

// Fallback reasons for EXPLAIN's vectorized= annotation. Recorded even when
// vectorized execution is disabled, so ablation runs show why (or that)
// every node is on the row path without a debugger.
const (
	vecYes             = "yes"
	vecNoDisabled      = "no(disabled)"
	vecNoUnsupported   = "no(unsupported-expr)"
	vecNoNonColumnKeys = "no(non-column-keys)"
	vecNoNestedLoop    = "no(nested-loop)"
)

// vectorizePlan attaches vectorized selection and compute kernels to the
// plan's filter, projection and aggregation sites, and records each node's
// vectorized= note. Best-effort like compilePlan: expressions without a
// kernel form leave the slot invalid and the executor keeps the per-row
// closure path. Kernel compilation is a pure function of the expression and
// schema, so EXPLAIN's annotations stay machine-independent; the executor
// may still fall back at run time when a column's representation (mixed-kind
// boxed values, string operands under arithmetic) has no typed vector.
func vectorizePlan(n Node, visited map[Node]bool, disabled, rulesDisabled bool) {
	if n == nil || visited[n] {
		return
	}
	visited[n] = true
	switch x := n.(type) {
	case *Scan:
		if x.Filter != nil {
			if disabled {
				x.VecNote = vecNoDisabled
			} else {
				x.FilterK = eval.CompileSelKernel(x.Schema(), x.Filter)
				x.VecNote = kernelNote(x.FilterK.Valid())
			}
		}
	case *CTERef:
		vectorizePlan(x.Def.Plan, visited, disabled, rulesDisabled)
	case *Filter:
		if disabled {
			x.VecNote = vecNoDisabled
		} else {
			x.CondK = eval.CompileSelKernel(x.Input.Schema(), x.Cond)
			x.VecNote = kernelNote(x.CondK.Valid())
		}
	case *Project:
		if disabled {
			x.VecNote = vecNoDisabled
			break
		}
		env := x.Input.Schema()
		x.ExprsK = make([]eval.ExprKernel, len(x.Exprs))
		ok := true
		for i, e := range x.Exprs {
			x.ExprsK[i] = eval.CompileExprKernel(env, e)
			if !x.ExprsK[i].Valid() {
				ok = false
			}
		}
		x.VecNote = kernelNote(ok)
	case *GroupBy:
		if disabled {
			x.VecNote = vecNoDisabled
			break
		}
		env := x.Input.Schema()
		x.ArgK = make([][]eval.ExprKernel, len(x.Aggs))
		argsOK := true
		for i, spec := range x.Aggs {
			if spec.Call.Star {
				continue
			}
			x.ArgK[i] = make([]eval.ExprKernel, len(spec.Call.Args))
			for j, a := range spec.Call.Args {
				x.ArgK[i][j] = eval.CompileExprKernel(env, a)
				if !x.ArgK[i][j].Valid() {
					argsOK = false
				}
			}
		}
		keysOK := true
		for _, k := range x.Keys {
			if _, isCol := eval.PlainOrdinal(env, k); !isCol {
				keysOK = false
			}
		}
		switch {
		case !keysOK:
			x.VecNote = vecNoNonColumnKeys
		case !argsOK:
			x.VecNote = vecNoUnsupported
		default:
			x.VecNote = vecYes
		}
	case *Join:
		switch {
		case disabled:
			x.VecNote = vecNoDisabled
		case x.Method == JoinHash || (x.Method == JoinAuto && len(x.LeftKeys) > 0):
			x.VecNote = vecYes
		default:
			x.VecNote = vecNoNestedLoop
		}
	case *Spreadsheet:
		// Per-rule batch-kernel decisions, compiled by the core engine (it
		// owns the kernel-domain contract); EXPLAIN prints one note per
		// rule line. Like the flag above, a disabled run still records why
		// each rule would or would not vectorize.
		x.RuleVecNotes = x.Model.RuleVecNotes(rulesDisabled)
	}
	for _, ch := range n.Children() {
		vectorizePlan(ch, visited, disabled, rulesDisabled)
	}
}

func kernelNote(ok bool) string {
	if ok {
		return vecYes
	}
	return vecNoUnsupported
}

func compileExpr(env *eval.BoundSchema, e sqlast.Expr) eval.CompiledExpr {
	ce, err := eval.Compile(env, e)
	if err != nil {
		return eval.CompiledExpr{}
	}
	return ce
}

func compileExprs(env *eval.BoundSchema, es []sqlast.Expr) []eval.CompiledExpr {
	if len(es) == 0 {
		return nil
	}
	out := make([]eval.CompiledExpr, len(es))
	for i, e := range es {
		out[i] = compileExpr(env, e)
	}
	return out
}
