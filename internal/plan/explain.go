package plan

import (
	"fmt"
	"strings"

	"sqlsheet/internal/eval"
)

// Explain renders a plan tree as indented text, including the optimizer's
// spreadsheet decisions (pushed predicates, pruned/rewritten formulas,
// execution levels).
func Explain(n Node) string {
	var b strings.Builder
	explainNode(&b, n, 0)
	return b.String()
}

func explainNode(b *strings.Builder, n Node, depth int) {
	pad := strings.Repeat("  ", depth)
	switch x := n.(type) {
	case *Scan:
		fmt.Fprintf(b, "%sScan %s", pad, x.Table.Name)
		if x.Alias != "" && x.Alias != x.Table.Name {
			fmt.Fprintf(b, " as %s", x.Alias)
		}
		if x.Filter != nil {
			fmt.Fprintf(b, " filter=%s compiled=%s vectorized=%s", x.Filter, yesNo(x.FilterC.Valid()), vecNote(x.VecNote, x.FilterK.Valid()))
		}
		b.WriteByte('\n')
	case *CTERef:
		fmt.Fprintf(b, "%sCTE %s as %s", pad, x.Def.Name, x.Alias)
		if x.Filter != nil {
			fmt.Fprintf(b, " filter=%s compiled=%s", x.Filter, yesNo(x.FilterC.Valid()))
		}
		b.WriteByte('\n')
		explainNode(b, x.Def.Plan, depth+1)
	case *Filter:
		fmt.Fprintf(b, "%sFilter %s compiled=%s vectorized=%s\n", pad, x.Cond, yesNo(x.CondC.Valid()), vecNote(x.VecNote, x.CondK.Valid()))
		explainNode(b, x.Input, depth+1)
	case *Project:
		names := make([]string, len(x.Exprs))
		for i, e := range x.Exprs {
			names[i] = e.String()
		}
		fmt.Fprintf(b, "%sProject %s compiled=%s vectorized=%s\n", pad,
			strings.Join(names, ", "), yesNo(len(x.ExprsC) == len(x.Exprs) && allValid(x.ExprsC)),
			vecNote(x.VecNote, false))
		explainNode(b, x.Input, depth+1)
	case *Join:
		fmt.Fprintf(b, "%s%s Join (%s)", pad, x.Type, x.Method)
		for i := range x.LeftKeys {
			if i == 0 {
				b.WriteString(" on ")
			} else {
				b.WriteString(" AND ")
			}
			fmt.Fprintf(b, "%s = %s", x.LeftKeys[i], x.RightKeys[i])
		}
		if x.Residual != nil {
			fmt.Fprintf(b, " residual=%s", x.Residual)
		}
		if len(x.LeftKeys) > 0 || x.Residual != nil {
			joinCompiled := len(x.LeftKeysC) == len(x.LeftKeys) && allValid(x.LeftKeysC) &&
				len(x.RightKeysC) == len(x.RightKeys) && allValid(x.RightKeysC) &&
				(x.Residual == nil || x.ResidualC.Valid())
			fmt.Fprintf(b, " compiled=%s", yesNo(joinCompiled))
		}
		fmt.Fprintf(b, " vectorized=%s", vecNote(x.VecNote, false))
		b.WriteByte('\n')
		explainNode(b, x.L, depth+1)
		explainNode(b, x.R, depth+1)
	case *GroupBy:
		keys := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = k.String()
		}
		aggsS := make([]string, len(x.Aggs))
		for i, a := range x.Aggs {
			aggsS[i] = a.Call.String()
		}
		fmt.Fprintf(b, "%sGroupBy keys=[%s] aggs=[%s] compiled=%s vectorized=%s%s\n", pad,
			strings.Join(keys, ", "), strings.Join(aggsS, ", "),
			yesNo(len(x.KeysC) == len(x.Keys) && allValid(x.KeysC)),
			vecNote(x.VecNote, false), distNote(x.DistNote))
		explainNode(b, x.Input, depth+1)
	case *Union:
		all := ""
		if x.All {
			all = " ALL"
		}
		fmt.Fprintf(b, "%sUnion%s\n", pad, all)
		explainNode(b, x.L, depth+1)
		explainNode(b, x.R, depth+1)
	case *Distinct:
		fmt.Fprintf(b, "%sDistinct\n", pad)
		explainNode(b, x.Input, depth+1)
	case *Sort:
		items := make([]string, len(x.Items))
		for i, it := range x.Items {
			items[i] = it.Expr.String()
			if it.Desc {
				items[i] += " DESC"
			}
		}
		fmt.Fprintf(b, "%sSort %s\n", pad, strings.Join(items, ", "))
		if x.Note != "" {
			fmt.Fprintf(b, "%s  * %s\n", pad, x.Note)
		}
		explainNode(b, x.Input, depth+1)
	case *Limit:
		fmt.Fprintf(b, "%sLimit %d\n", pad, x.N)
		explainNode(b, x.Input, depth+1)
	case *Window:
		specs := make([]string, len(x.Specs))
		for i, s := range x.Specs {
			specs[i] = s.Fn.String()
		}
		fmt.Fprintf(b, "%sWindow %s\n", pad, strings.Join(specs, ", "))
		explainNode(b, x.Input, depth+1)
	case *Alias:
		explainNode(b, x.Input, depth)
	case *OneRow:
		fmt.Fprintf(b, "%sOneRow\n", pad)
	case *Spreadsheet:
		m := x.Model
		fmt.Fprintf(b, "%sSpreadsheet PBY(%s) DBY(%s) MEA(%s)",
			pad,
			strings.Join(m.PbyNames(), ", "),
			strings.Join(m.DimNames(), ", "),
			strings.Join(m.MeasureNames(), ", "))
		if m.SeqOrder {
			b.WriteString(" SEQUENTIAL ORDER")
		}
		if m.Iterate != nil {
			fmt.Fprintf(b, " ITERATE(%d)", m.Iterate.N)
		}
		b.WriteString(distNote(x.DistNote))
		b.WriteByte('\n')
		for _, note := range x.Notes {
			fmt.Fprintf(b, "%s  * %s\n", pad, note)
		}
		if err := m.Analyze(); err == nil {
			steps, cyclic := m.Levels()
			for li, step := range steps {
				kind := "level"
				if cyclic[li] {
					kind = "cycle"
				}
				fmt.Fprintf(b, "%s  %s %d:\n", pad, kind, li+1)
				for _, ri := range step {
					if ri < len(x.RuleVecNotes) {
						fmt.Fprintf(b, "%s    %s vectorized=%s\n", pad, m.Rules[ri].Src, x.RuleVecNotes[ri])
					} else {
						fmt.Fprintf(b, "%s    %s\n", pad, m.Rules[ri].Src)
					}
				}
			}
		}
		for i, rp := range x.RefPlans {
			fmt.Fprintf(b, "%s  reference %s:\n", pad, m.Refs[i].Name)
			explainNode(b, rp, depth+2)
		}
		explainNode(b, x.Input, depth+1)
	default:
		fmt.Fprintf(b, "%s%T\n", pad, n)
	}
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// vecNote renders a node's vectorized= annotation. Plans built through
// plan.Build always carry a note with the fallback reason; hand-built plans
// (tests) fall back to plain yes/no from the kernel slot.
func vecNote(note string, valid bool) string {
	if note != "" {
		return note
	}
	return yesNo(valid)
}

// distNote renders a node's distributed= annotation ("yes" / "no(reason)").
// Empty when no distributor is configured, so single-process EXPLAIN output
// is unchanged.
func distNote(note string) string {
	if note == "" {
		return ""
	}
	return " distributed=" + note
}

func allValid(cs []eval.CompiledExpr) bool {
	for _, c := range cs {
		if !c.Valid() {
			return false
		}
	}
	return true
}
