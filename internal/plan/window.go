package plan

import (
	"fmt"
	"strconv"

	"sqlsheet/internal/aggs"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
)

// Window computes window functions over its input: the output schema is the
// input's columns followed by one synthetic column per spec. Window
// functions are the ANSI OLAP amendment ([18] in the paper) and double as
// the ROLAP baseline for running/prior-period calculations that the
// spreadsheet clause subsumes.
type Window struct {
	Input Node
	Specs []WindowSpec
	// Compiled maps each spec's argument / PARTITION BY / ORDER BY
	// expression to its compiled form (nil when compilation is disabled).
	Compiled map[sqlast.Expr]eval.CompiledExpr
	schema   *eval.BoundSchema
}

// WindowSpec is one computed window column.
type WindowSpec struct {
	Name string
	Fn   *sqlast.WindowFunc
}

func (n *Window) Schema() *eval.BoundSchema { return n.schema }
func (n *Window) Children() []Node          { return []Node{n.Input} }

// rankingFuncs are the non-aggregate window functions supported.
var rankingFuncs = map[string]int{ // name -> max arity
	"row_number": 0, "rank": 0, "dense_rank": 0,
	"lag": 3, "lead": 3, "first_value": 1, "last_value": 1,
}

// windowRewriter extracts WindowFunc expressions, replacing them with
// references to the Window node's synthetic output columns.
type windowRewriter struct {
	specs []WindowSpec
	seen  map[string]string
}

func newWindowRewriter() *windowRewriter {
	return &windowRewriter{seen: map[string]string{}}
}

func (wr *windowRewriter) rewrite(e sqlast.Expr) sqlast.Expr {
	return sqlast.Transform(e, func(n sqlast.Expr) sqlast.Expr {
		w, ok := n.(*sqlast.WindowFunc)
		if !ok {
			return n
		}
		key := w.String()
		if name, dup := wr.seen[key]; dup {
			return &sqlast.ColumnRef{Name: name}
		}
		name := "$win" + strconv.Itoa(len(wr.specs))
		wr.seen[key] = name
		wr.specs = append(wr.specs, WindowSpec{Name: name, Fn: w})
		return &sqlast.ColumnRef{Name: name}
	})
}

// newWindow validates the specs against the input schema.
func newWindow(input Node, specs []WindowSpec) (*Window, error) {
	for _, spec := range specs {
		fn := spec.Fn.Func
		maxArity, isRanking := rankingFuncs[fn.Name]
		switch {
		case aggs.IsAggregate(fn.Name):
			if fn.Star && fn.Name != "count" {
				return nil, fmt.Errorf("%s(*) is not supported", fn.Name)
			}
			if !fn.Star && len(fn.Args) != aggs.NumArgs(fn.Name) {
				return nil, fmt.Errorf("%s() takes %d argument(s)", fn.Name, aggs.NumArgs(fn.Name))
			}
		case isRanking:
			if fn.Star {
				return nil, fmt.Errorf("%s(*) is not valid", fn.Name)
			}
			if len(fn.Args) > maxArity {
				return nil, fmt.Errorf("%s() takes at most %d argument(s)", fn.Name, maxArity)
			}
			minArity := 0
			if fn.Name == "lag" || fn.Name == "lead" || fn.Name == "first_value" || fn.Name == "last_value" {
				minArity = 1
			}
			if len(fn.Args) < minArity {
				return nil, fmt.Errorf("%s() requires an argument", fn.Name)
			}
			if len(spec.Fn.OrderBy) == 0 && fn.Name != "first_value" && fn.Name != "last_value" {
				return nil, fmt.Errorf("%s() requires ORDER BY in its OVER clause", fn.Name)
			}
			if spec.Fn.Frame != nil && (fn.Name == "lag" || fn.Name == "lead" ||
				fn.Name == "row_number" || fn.Name == "rank" || fn.Name == "dense_rank") {
				return nil, fmt.Errorf("%s() does not accept a frame", fn.Name)
			}
		default:
			return nil, fmt.Errorf("%s() is not a window function", fn.Name)
		}
		check := func(e sqlast.Expr, what string) error {
			if e == nil {
				return nil
			}
			if err := checkResolvable(e, input.Schema()); err != nil {
				return fmt.Errorf("window %s: %v", what, err)
			}
			return nil
		}
		for _, a := range fn.Args {
			if err := check(a, "argument"); err != nil {
				return nil, err
			}
		}
		for _, p := range spec.Fn.PartitionBy {
			if err := check(p, "PARTITION BY"); err != nil {
				return nil, err
			}
		}
		for _, o := range spec.Fn.OrderBy {
			if err := check(o.Expr, "ORDER BY"); err != nil {
				return nil, err
			}
		}
	}
	cols := append([]eval.BoundCol{}, input.Schema().Cols...)
	for _, spec := range specs {
		cols = append(cols, eval.BoundCol{Name: spec.Name})
	}
	return &Window{Input: input, Specs: specs, schema: eval.NewBoundSchema(cols)}, nil
}

// rejectWindow errors when e contains a window function (WHERE, GROUP BY,
// HAVING and spreadsheet formulas evaluate before windows).
func rejectWindow(e sqlast.Expr, where string) error {
	var err error
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		if _, ok := n.(*sqlast.WindowFunc); ok {
			err = fmt.Errorf("window functions are not allowed in %s", where)
			return false
		}
		return true
	})
	return err
}
