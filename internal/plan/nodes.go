// Package plan builds and optimizes logical query plans: name resolution,
// aggregate rewriting, filter pushdown, join method selection, and the
// spreadsheet-specific optimizations of §4 (formula pruning/rewriting,
// predicate pushing through PBY / independent-dimension / bounding-rectangle
// analysis, and the three reference-spreadsheet transforms).
package plan

import (
	"sqlsheet/internal/catalog"
	"sqlsheet/internal/core"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
)

// Node is a logical plan operator. Schemas are static: every node knows its
// output columns at plan time.
type Node interface {
	Schema() *eval.BoundSchema
	Children() []Node
}

// Scan reads a stored table, applying an optional pushed-down filter.
type Scan struct {
	Table   *catalog.Table
	Alias   string
	Filter  sqlast.Expr // nil = none; conjuncts pushed by the optimizer
	FilterC eval.CompiledExpr
	// FilterK is the vectorized form of Filter (invalid = no kernel; the
	// executor keeps the per-row closure path).
	FilterK eval.SelKernel
	// VecNote is EXPLAIN's vectorized= annotation: "yes", or "no(reason)"
	// explaining the fallback. Set at plan time from the expression shape;
	// the executor may still fall back at run time on unsupported column
	// representations.
	VecNote string
	schema  *eval.BoundSchema
}

// CTERef reads a common table expression materialized per execution.
type CTERef struct {
	Def     *CTEDef
	Alias   string
	Filter  sqlast.Expr
	FilterC eval.CompiledExpr
	schema  *eval.BoundSchema
}

// CTEDef is a planned WITH entry, shared by every CTERef to it.
type CTEDef struct {
	Name string
	Plan Node
}

// Filter keeps rows satisfying Cond.
type Filter struct {
	Input Node
	Cond  sqlast.Expr
	CondC eval.CompiledExpr
	// CondK is the vectorized form of Cond, applied when the input result
	// carries a columnar image.
	CondK eval.SelKernel
	// VecNote is EXPLAIN's vectorized= annotation ("yes" / "no(reason)").
	VecNote string
}

// Project computes expressions over input rows.
type Project struct {
	Input  Node
	Exprs  []sqlast.Expr
	ExprsC []eval.CompiledExpr
	// ExprsK holds the vectorized compute kernel per output expression
	// (plain column references compile to gather kernels). The executor
	// takes the batch path only when every slot is valid and supported over
	// the input's actual column representations.
	ExprsK []eval.ExprKernel
	// VecNote is EXPLAIN's vectorized= annotation ("yes" / "no(reason)").
	VecNote string
	schema  *eval.BoundSchema
}

// JoinMethod selects the physical join algorithm.
type JoinMethod uint8

const (
	// JoinAuto picks hash when equi-keys exist, else nested loops.
	JoinAuto JoinMethod = iota
	JoinHash
	JoinNestedLoop
)

func (m JoinMethod) String() string {
	switch m {
	case JoinHash:
		return "hash"
	case JoinNestedLoop:
		return "nested-loop"
	}
	return "auto"
}

// Join combines two inputs. LeftKeys/RightKeys hold the equi-join key
// expressions (evaluated against the respective side); Residual is the
// remaining predicate evaluated over the combined row.
type Join struct {
	L, R       Node
	Type       sqlast.JoinType
	LeftKeys   []sqlast.Expr
	RightKeys  []sqlast.Expr
	Residual   sqlast.Expr
	LeftKeysC  []eval.CompiledExpr
	RightKeysC []eval.CompiledExpr
	ResidualC  eval.CompiledExpr
	Method     JoinMethod
	// VecNote is EXPLAIN's vectorized= annotation: hash joins carry columnar
	// provenance through their output ("yes"); nested loops re-box.
	VecNote string
	schema  *eval.BoundSchema
}

// AggSpec is one aggregate computed by GroupBy.
type AggSpec struct {
	Name string // output column name ($agg0, ...)
	Call *sqlast.FuncCall
}

// GroupBy hash-aggregates its input. Output schema: one column per key
// (named after the key when it is a plain column) then one per aggregate.
type GroupBy struct {
	Input Node
	Keys  []sqlast.Expr
	Aggs  []AggSpec
	// KeysC / AggArgsC are the compiled key and per-aggregate argument
	// extractors (AggArgsC[i] aligns with Aggs[i].Call.Args).
	KeysC    []eval.CompiledExpr
	AggArgsC [][]eval.CompiledExpr
	// ArgK holds vectorized compute kernels for the aggregate arguments
	// (ArgK[i] aligns with Aggs[i].Call.Args; nil for COUNT(*)). The batch
	// aggregation path runs only when keys are plain columns and every
	// argument kernel is valid and supported over the input image.
	ArgK [][]eval.ExprKernel
	// VecNote is EXPLAIN's vectorized= annotation ("yes" / "no(reason)").
	VecNote string
	// DistNote is the distribution pass's verdict (DistYes / "no(reason)";
	// empty when no distributor is configured). The executor consults the
	// scatter-gather coordinator only when it equals DistYes.
	DistNote string
	schema   *eval.BoundSchema
}

// Union concatenates (ALL) or deduplicates its inputs.
type Union struct {
	L, R Node
	All  bool
}

// Distinct removes duplicate rows.
type Distinct struct {
	Input Node
}

// Sort orders rows by the items, evaluated against the input schema.
type Sort struct {
	Input Node
	Items []sqlast.OrderItem
	// ItemsC aligns with Items (compiled sort-key extractors).
	ItemsC []eval.CompiledExpr
	// Note records the execution strategy for EXPLAIN (set only when the
	// session configures an explicit worker count, so plans stay
	// machine-independent).
	Note string
}

// Limit keeps the first N rows.
type Limit struct {
	Input Node
	N     int
}

// Spreadsheet executes a compiled spreadsheet clause over its input, which
// must produce rows in the model's working-schema layout. RefPlans supply
// the reference sheets' data; ForInPlans the FOR-IN subqueries.
type Spreadsheet struct {
	Input Node
	Model *core.Model
	// RefPlans aligns with Model.Refs.
	RefPlans []Node
	// Promoted dimensions for parallel execution (S4 duplication).
	Promoted []core.PromotedDim
	// DropCols is the number of leading working-schema columns (duplicated
	// distribution keys) removed from the node's output.
	DropCols int
	// Notes records optimizer decisions for EXPLAIN.
	Notes []string
	// RuleVecNotes records each rule's batch-kernel decision (aligned with
	// Model.Rules), printed as vectorized= on EXPLAIN's rule lines.
	RuleVecNotes []string
	// DistNote is the distribution pass's verdict (DistYes / "no(reason)";
	// empty when no distributor is configured). The executor consults the
	// scatter-gather coordinator only when it equals DistYes.
	DistNote string
	schema   *eval.BoundSchema
}

func (n *Scan) Schema() *eval.BoundSchema        { return n.schema }
func (n *CTERef) Schema() *eval.BoundSchema      { return n.schema }
func (n *Filter) Schema() *eval.BoundSchema      { return n.Input.Schema() }
func (n *Project) Schema() *eval.BoundSchema     { return n.schema }
func (n *Join) Schema() *eval.BoundSchema        { return n.schema }
func (n *GroupBy) Schema() *eval.BoundSchema     { return n.schema }
func (n *Union) Schema() *eval.BoundSchema       { return n.L.Schema() }
func (n *Distinct) Schema() *eval.BoundSchema    { return n.Input.Schema() }
func (n *Sort) Schema() *eval.BoundSchema        { return n.Input.Schema() }
func (n *Limit) Schema() *eval.BoundSchema       { return n.Input.Schema() }
func (n *Spreadsheet) Schema() *eval.BoundSchema { return n.schema }

func (n *Scan) Children() []Node     { return nil }
func (n *CTERef) Children() []Node   { return nil }
func (n *Filter) Children() []Node   { return []Node{n.Input} }
func (n *Project) Children() []Node  { return []Node{n.Input} }
func (n *Join) Children() []Node     { return []Node{n.L, n.R} }
func (n *GroupBy) Children() []Node  { return []Node{n.Input} }
func (n *Union) Children() []Node    { return []Node{n.L, n.R} }
func (n *Distinct) Children() []Node { return []Node{n.Input} }
func (n *Sort) Children() []Node     { return []Node{n.Input} }
func (n *Limit) Children() []Node    { return []Node{n.Input} }
func (n *Spreadsheet) Children() []Node {
	out := []Node{n.Input}
	out = append(out, n.RefPlans...)
	return out
}
