package plan

import (
	"fmt"
	"strconv"
	"strings"

	"sqlsheet/internal/aggs"
	"sqlsheet/internal/catalog"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// Build plans a full SELECT statement.
func Build(cat *catalog.Catalog, stmt *sqlast.SelectStmt, opts *Options) (Node, error) {
	if opts == nil {
		opts = &Options{}
	}
	b := &builder{cat: cat, opts: opts, ctes: map[string]*CTEDef{}}
	n, err := b.buildStmt(stmt)
	if err != nil {
		return nil, err
	}
	n, err = optimize(n, opts)
	if err != nil {
		return nil, err
	}
	if !opts.DisableCompiledEval {
		compilePlan(n, map[Node]bool{})
	}
	// Runs even when vectorized execution is disabled: the pass then only
	// records vectorized=no(disabled) notes for EXPLAIN, attaching no kernels.
	vectorizePlan(n, map[Node]bool{}, opts.DisableVectorizedExec,
		opts.DisableVectorizedExec || opts.DisableVectorizedRules)
	if opts.Distributed {
		distributePlan(n, map[Node]bool{})
	}
	return n, nil
}

type builder struct {
	cat  *catalog.Catalog
	opts *Options
	ctes map[string]*CTEDef
}

func (b *builder) buildStmt(stmt *sqlast.SelectStmt) (Node, error) {
	saved := b.ctes
	if len(stmt.With) > 0 {
		// CTEs are lexically scoped; inner statements see outer CTEs.
		b.ctes = make(map[string]*CTEDef, len(saved)+len(stmt.With))
		for k, v := range saved {
			b.ctes[k] = v
		}
		for i := range stmt.With {
			cte := &stmt.With[i]
			p, err := b.buildStmt(cte.Query)
			if err != nil {
				return nil, fmt.Errorf("WITH %s: %v", cte.Name, err)
			}
			b.ctes[cte.Name] = &CTEDef{Name: cte.Name, Plan: p}
		}
		defer func() { b.ctes = saved }()
	}
	n, err := b.buildQueryExpr(stmt.Query)
	if err != nil {
		return nil, err
	}
	if len(stmt.OrderBy) > 0 {
		items, err := resolveOrderBy(stmt.OrderBy, n.Schema())
		if err != nil {
			return nil, err
		}
		s := &Sort{Input: n, Items: items}
		// Annotate only for an explicitly configured worker count: Workers=0
		// means "all cores", which would make EXPLAIN machine-dependent.
		if b.opts.Workers > 1 && !b.opts.DisableParallelSort {
			s.Note = fmt.Sprintf("parallel chunked sort (%d workers, loser-tree merge)", b.opts.Workers)
		}
		n = s
	}
	if stmt.Limit != nil {
		v, err := eval.Eval(&eval.Context{}, stmt.Limit)
		if err != nil || !v.IsNumeric() {
			return nil, fmt.Errorf("LIMIT must be a numeric constant")
		}
		n = &Limit{Input: n, N: int(v.Int())}
	}
	return n, nil
}

// resolveOrderBy maps positional ORDER BY items onto output columns and
// strips stale table qualifiers (projection output columns are unqualified,
// but "ORDER BY f.p" after "SELECT f.p" is idiomatic).
func resolveOrderBy(items []sqlast.OrderItem, schema *eval.BoundSchema) ([]sqlast.OrderItem, error) {
	out := make([]sqlast.OrderItem, len(items))
	for i, it := range items {
		if lit, ok := it.Expr.(*sqlast.Literal); ok && lit.Val.K == types.KindInt {
			pos := int(lit.Val.I)
			if pos < 1 || pos > len(schema.Cols) {
				return nil, fmt.Errorf("ORDER BY position %d out of range", pos)
			}
			c := schema.Cols[pos-1]
			it.Expr = &sqlast.ColumnRef{Table: c.Table, Name: c.Name}
		}
		it.Expr = sqlast.Transform(it.Expr, func(n sqlast.Expr) sqlast.Expr {
			c, ok := n.(*sqlast.ColumnRef)
			if !ok || c.Table == "" {
				return n
			}
			if _, found, _ := schema.Resolve(c.Table, c.Name); found {
				return n
			}
			if _, found, err := schema.Resolve("", c.Name); found && err == nil {
				return &sqlast.ColumnRef{Name: c.Name}
			}
			return n
		})
		if err := checkResolvable(it.Expr, schema); err != nil {
			return nil, fmt.Errorf("ORDER BY: %v", err)
		}
		out[i] = it
	}
	return out, nil
}

func (b *builder) buildQueryExpr(q sqlast.QueryExpr) (Node, error) {
	switch x := q.(type) {
	case *sqlast.SelectBody:
		return b.buildBody(x)
	case *sqlast.Union:
		l, err := b.buildQueryExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.buildQueryExpr(x.R)
		if err != nil {
			return nil, err
		}
		if len(l.Schema().Cols) != len(r.Schema().Cols) {
			return nil, fmt.Errorf("UNION arms have %d and %d columns",
				len(l.Schema().Cols), len(r.Schema().Cols))
		}
		var n Node = &Union{L: l, R: r, All: x.All}
		if !x.All {
			n = &Distinct{Input: n}
		}
		return n, nil
	}
	return nil, fmt.Errorf("unsupported query expression %T", q)
}

func (b *builder) buildBody(body *sqlast.SelectBody) (Node, error) {
	// FROM.
	var input Node
	for _, tr := range body.From {
		n, err := b.buildTableRef(tr)
		if err != nil {
			return nil, err
		}
		if input == nil {
			input = n
		} else {
			input = newJoin(input, n, sqlast.JoinCross, nil, b.opts)
		}
	}
	if input == nil {
		// SELECT without FROM: a single empty row.
		input = &Project{Input: NewOneRow(), Exprs: nil, schema: eval.NewBoundSchema(nil)}
	}
	// WHERE.
	if body.Where != nil {
		if err := rejectModelOnly(body.Where); err != nil {
			return nil, err
		}
		if err := rejectWindow(body.Where, "WHERE"); err != nil {
			return nil, err
		}
		input = &Filter{Input: input, Cond: body.Where}
	}
	for _, k := range body.GroupBy {
		if err := rejectWindow(k, "GROUP BY"); err != nil {
			return nil, err
		}
	}
	if body.Having != nil {
		if err := rejectWindow(body.Having, "HAVING"); err != nil {
			return nil, err
		}
	}

	// Aggregate collection across SELECT, HAVING, and spreadsheet MEA.
	agg := newAggRewriter(body.GroupBy)
	var selectExprs []sqlast.Expr
	var selectNames []string
	star := false
	for _, item := range body.Items {
		if _, ok := item.Expr.(*sqlast.Star); ok {
			star = true
		}
	}
	collectFrom := func(e sqlast.Expr) sqlast.Expr { return agg.rewrite(e) }

	var having sqlast.Expr
	if body.Having != nil {
		having = collectFrom(body.Having)
	}
	// Rewrite MEA aggregates on a copy: view bodies are planned repeatedly,
	// so the stored AST must stay pristine.
	sheetClause := body.Spreadsheet
	if sheetClause != nil {
		cl := *sheetClause
		cl.MEA = append([]sqlast.MeaItem(nil), sheetClause.MEA...)
		for i := range cl.MEA {
			cl.MEA[i].Expr = collectFrom(cl.MEA[i].Expr)
		}
		sheetClause = &cl
	}
	// SELECT items (not rewritten yet when * present with grouping).
	for _, item := range body.Items {
		if _, ok := item.Expr.(*sqlast.Star); ok {
			continue
		}
		e := collectFrom(item.Expr)
		selectExprs = append(selectExprs, e)
		selectNames = append(selectNames, selectItemName(item, e))
	}

	grouped := len(body.GroupBy) > 0 || len(agg.specs) > 0
	if grouped {
		if star {
			return nil, fmt.Errorf("SELECT * cannot be combined with GROUP BY or aggregates")
		}
		gb, err := newGroupBy(input, body.GroupBy, agg.specs)
		if err != nil {
			return nil, err
		}
		input = gb
		if having != nil {
			input = &Filter{Input: input, Cond: having}
		}
		// Validate that select expressions only use keys and aggregates —
		// unless a spreadsheet clause follows, in which case the select
		// list resolves against its PBY ∪ DBY ∪ MEA columns instead.
		if body.Spreadsheet == nil {
			for i, e := range selectExprs {
				if err := checkResolvable(e, input.Schema()); err != nil {
					return nil, fmt.Errorf("select item %d: %v", i+1, err)
				}
			}
		}
	} else if having != nil {
		return nil, fmt.Errorf("HAVING requires GROUP BY or aggregates")
	}

	// Window functions compute over the grouped input, before projection.
	wr := newWindowRewriter()
	for i := range selectExprs {
		selectExprs[i] = wr.rewrite(selectExprs[i])
	}
	if len(wr.specs) > 0 {
		if sheetClause != nil {
			return nil, fmt.Errorf("window functions cannot share a query block with a spreadsheet clause; use a subquery")
		}
		win, err := newWindow(input, wr.specs)
		if err != nil {
			return nil, err
		}
		input = win
	}

	// Spreadsheet clause.
	if sheetClause != nil {
		sheet, err := b.buildSpreadsheet(sheetClause, input)
		if err != nil {
			return nil, err
		}
		input = sheet
		// The select list resolves against PBY ∪ DBY ∪ MEA.
		if star {
			return b.projectAll(input, body, selectExprs, selectNames)
		}
		return b.project(input, selectExprs, selectNames, body.Distinct)
	}

	if star {
		return b.projectAll(input, body, selectExprs, selectNames)
	}
	return b.project(input, selectExprs, selectNames, body.Distinct)
}

// projectAll expands "*" (and any explicit items around it) in declaration
// order: explicit items keep their relative order after the star columns
// when mixed; plain "SELECT *" is the overwhelmingly common case.
func (b *builder) projectAll(input Node, body *sqlast.SelectBody, explicit []sqlast.Expr, names []string) (Node, error) {
	var exprs []sqlast.Expr
	var outNames []string
	ei := 0
	for _, item := range body.Items {
		if st, ok := item.Expr.(*sqlast.Star); ok {
			for _, c := range input.Schema().Cols {
				if st.Table != "" && c.Table != st.Table {
					continue
				}
				if strings.HasPrefix(c.Name, "$") {
					continue // synthetic window/aggregate columns
				}
				exprs = append(exprs, &sqlast.ColumnRef{Table: c.Table, Name: c.Name})
				outNames = append(outNames, c.Name)
			}
			continue
		}
		exprs = append(exprs, explicit[ei])
		outNames = append(outNames, names[ei])
		ei++
	}
	return b.project(input, exprs, outNames, body.Distinct)
}

func (b *builder) project(input Node, exprs []sqlast.Expr, names []string, distinct bool) (Node, error) {
	for i, e := range exprs {
		if err := checkResolvable(e, input.Schema()); err != nil {
			return nil, fmt.Errorf("select item %d: %v", i+1, err)
		}
	}
	cols := make([]eval.BoundCol, len(exprs))
	for i := range exprs {
		cols[i] = eval.BoundCol{Name: names[i]}
	}
	var n Node = &Project{Input: input, Exprs: exprs, schema: eval.NewBoundSchema(cols)}
	if distinct {
		n = &Distinct{Input: n}
	}
	return n, nil
}

// rejectModelOnly errors on spreadsheet-only constructs used outside a
// spreadsheet clause. cv()/previous() parse as ordinary function calls in
// plain SQL contexts, so both spellings are caught here.
func rejectModelOnly(e sqlast.Expr) error {
	var err error
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		if err != nil {
			return false
		}
		switch x := n.(type) {
		case *sqlast.CurrentV:
			err = fmt.Errorf("cv() is only valid inside a spreadsheet clause")
		case *sqlast.CellRef, *sqlast.CellAgg, *sqlast.Previous, *sqlast.Present:
			err = fmt.Errorf("cell references are only valid inside a spreadsheet clause")
		case *sqlast.FuncCall:
			switch x.Name {
			case "cv", "currentv", "previous":
				err = fmt.Errorf("%s() is only valid inside a spreadsheet clause", x.Name)
			}
		}
		return true
	})
	return err
}

// tryMVRewrite substitutes a scan of a materialized view for a derived
// table whose canonical SQL equals the view's definition.
func (b *builder) tryMVRewrite(sub *sqlast.SelectStmt, alias string) (Node, bool) {
	if !b.opts.EnableMVRewrite {
		return nil, false
	}
	mv, ok := b.cat.MatViewByDef(sqlast.FormatStatement(sub))
	if !ok {
		return nil, false
	}
	if alias == "" {
		alias = mv.Name
	}
	t := mv.Table
	cols := make([]eval.BoundCol, t.Schema.Len())
	for i, c := range t.Schema.Cols {
		cols[i] = eval.BoundCol{Table: alias, Name: c.Name}
	}
	return &Scan{Table: t, Alias: alias, schema: eval.NewBoundSchema(cols)}, true
}

// checkResolvable verifies every column reference in e (outside subqueries)
// resolves in the schema. Unresolvable names may still be satisfied by an
// outer binding at run time for subquery expressions, so this check is
// advisory only for correlated contexts; top-level queries get hard errors.
func checkResolvable(e sqlast.Expr, schema *eval.BoundSchema) error {
	var err error
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		if err != nil {
			return false
		}
		if c, ok := n.(*sqlast.ColumnRef); ok {
			_, found, rerr := schema.Resolve(c.Table, c.Name)
			if rerr != nil {
				err = rerr
			} else if !found {
				err = fmt.Errorf("%w %s", eval.ErrUnknownColumn, c)
			}
		}
		return true
	})
	return err
}

func selectItemName(item sqlast.SelectItem, e sqlast.Expr) string {
	if item.Alias != "" {
		return item.Alias
	}
	if c, ok := e.(*sqlast.ColumnRef); ok {
		return c.Name
	}
	if c, ok := item.Expr.(*sqlast.ColumnRef); ok {
		return c.Name
	}
	if fc, ok := item.Expr.(*sqlast.FuncCall); ok {
		return fc.Name
	}
	return item.Expr.String()
}

// OneRowNode produces a single empty row (SELECT without FROM).
type OneRow struct{ schema *eval.BoundSchema }

func NewOneRow() Node                       { return &OneRow{schema: eval.NewBoundSchema(nil)} }
func (n *OneRow) Schema() *eval.BoundSchema { return n.schema }
func (n *OneRow) Children() []Node          { return nil }

func (b *builder) buildTableRef(tr sqlast.TableRef) (Node, error) {
	switch x := tr.(type) {
	case *sqlast.TableName:
		alias := x.Alias
		if alias == "" {
			alias = x.Name
		}
		if def, ok := b.ctes[x.Name]; ok {
			return &CTERef{Def: def, Alias: alias, schema: def.Plan.Schema().Qualify(alias)}, nil
		}
		if v, ok := b.cat.ViewDef(x.Name); ok {
			// Views expand at plan time, so outer predicates flow into the
			// view body — including into spreadsheet clauses (the paper's
			// formula-pruning scenario).
			sub, err := b.buildStmt(v.Query)
			if err != nil {
				return nil, fmt.Errorf("view %s: %v", v.Name, err)
			}
			return &Alias{Input: sub, schema: sub.Schema().Qualify(alias)}, nil
		}
		t, ok := b.cat.Get(x.Name)
		if !ok {
			return nil, fmt.Errorf("unknown table %q", x.Name)
		}
		cols := make([]eval.BoundCol, t.Schema.Len())
		for i, c := range t.Schema.Cols {
			cols[i] = eval.BoundCol{Table: alias, Name: c.Name}
		}
		return &Scan{Table: t, Alias: alias, schema: eval.NewBoundSchema(cols)}, nil
	case *sqlast.SubqueryRef:
		if mvScan, ok := b.tryMVRewrite(x.Sub, x.Alias); ok {
			return mvScan, nil
		}
		sub, err := b.buildStmt(x.Sub)
		if err != nil {
			return nil, err
		}
		if x.Alias != "" {
			return &Alias{Input: sub, schema: sub.Schema().Qualify(x.Alias)}, nil
		}
		return sub, nil
	case *sqlast.JoinRef:
		l, err := b.buildTableRef(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.buildTableRef(x.R)
		if err != nil {
			return nil, err
		}
		j := newJoin(l, r, x.Type, x.On, b.opts)
		if x.Alias != "" {
			return &Alias{Input: j, schema: j.Schema().Qualify(x.Alias)}, nil
		}
		return j, nil
	}
	return nil, fmt.Errorf("unsupported table reference %T", tr)
}

// Alias re-qualifies its input's columns under a new table alias.
type Alias struct {
	Input  Node
	schema *eval.BoundSchema
}

func (n *Alias) Schema() *eval.BoundSchema { return n.schema }
func (n *Alias) Children() []Node          { return []Node{n.Input} }

// newJoin builds a join node, splitting equi-join keys out of the ON
// condition.
func newJoin(l, r Node, jt sqlast.JoinType, on sqlast.Expr, opts *Options) *Join {
	cols := append(append([]eval.BoundCol{}, l.Schema().Cols...), r.Schema().Cols...)
	j := &Join{L: l, R: r, Type: jt, Method: opts.ForceJoin, schema: eval.NewBoundSchema(cols)}
	if on != nil {
		keysL, keysR, residual := splitEqui(on, l.Schema(), r.Schema())
		j.LeftKeys, j.RightKeys, j.Residual = keysL, keysR, residual
	}
	return j
}

// splitEqui extracts equi-join conjuncts "lexpr = rexpr" whose sides
// resolve entirely against opposite inputs.
func splitEqui(on sqlast.Expr, ls, rs *eval.BoundSchema) (keysL, keysR []sqlast.Expr, residual sqlast.Expr) {
	for _, conj := range conjuncts(on) {
		eq, ok := conj.(*sqlast.Binary)
		if ok && eq.Op == "=" {
			switch {
			case resolvesIn(eq.L, ls) && resolvesIn(eq.R, rs):
				keysL = append(keysL, eq.L)
				keysR = append(keysR, eq.R)
				continue
			case resolvesIn(eq.L, rs) && resolvesIn(eq.R, ls):
				keysL = append(keysL, eq.R)
				keysR = append(keysR, eq.L)
				continue
			}
		}
		residual = andExpr(residual, conj)
	}
	return keysL, keysR, residual
}

// conjuncts flattens nested ANDs.
func conjuncts(e sqlast.Expr) []sqlast.Expr {
	if b, ok := e.(*sqlast.Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sqlast.Expr{e}
}

func andExpr(a, b sqlast.Expr) sqlast.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &sqlast.Binary{Op: "AND", L: a, R: b}
}

// resolvesIn reports whether every column reference in e resolves in the
// schema and e references at least one column (a pure literal "resolves"
// anywhere but makes a useless join key).
func resolvesIn(e sqlast.Expr, s *eval.BoundSchema) bool {
	refs := sqlast.ColumnRefs(e)
	if len(refs) == 0 {
		return false
	}
	for _, c := range refs {
		_, found, err := s.Resolve(c.Table, c.Name)
		if err != nil || !found {
			return false
		}
	}
	return !sqlast.HasSubquery(e)
}

// --- aggregate rewriting ---

// aggRewriter replaces aggregate calls and GROUP BY key expressions with
// references to the GroupBy node's output columns.
type aggRewriter struct {
	keyNames map[string]string // key expr string -> output column name
	specs    []AggSpec
	seen     map[string]string // agg call string -> output column name
}

func newAggRewriter(keys []sqlast.Expr) *aggRewriter {
	ar := &aggRewriter{keyNames: map[string]string{}, seen: map[string]string{}}
	for i, k := range keys {
		name := "$key" + strconv.Itoa(i)
		if c, ok := k.(*sqlast.ColumnRef); ok {
			name = c.Name
		}
		ar.keyNames[k.String()] = name
	}
	return ar
}

// rewrite returns e with aggregate calls and key expressions replaced by
// output column references.
func (ar *aggRewriter) rewrite(e sqlast.Expr) sqlast.Expr {
	if e == nil {
		return nil
	}
	if name, ok := ar.keyNames[e.String()]; ok {
		if c, isCol := e.(*sqlast.ColumnRef); isCol {
			// Plain column keys keep their name; no rewrite needed unless
			// qualified differently.
			return &sqlast.ColumnRef{Name: c.Name}
		}
		return &sqlast.ColumnRef{Name: name}
	}
	switch x := e.(type) {
	case *sqlast.FuncCall:
		if aggs.IsAggregate(x.Name) {
			key := x.String()
			if name, ok := ar.seen[key]; ok {
				return &sqlast.ColumnRef{Name: name}
			}
			name := "$agg" + strconv.Itoa(len(ar.specs))
			ar.seen[key] = name
			ar.specs = append(ar.specs, AggSpec{Name: name, Call: x})
			return &sqlast.ColumnRef{Name: name}
		}
		args := make([]sqlast.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = ar.rewrite(a)
		}
		return &sqlast.FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}
	case *sqlast.Unary:
		return &sqlast.Unary{Op: x.Op, X: ar.rewrite(x.X)}
	case *sqlast.Binary:
		return &sqlast.Binary{Op: x.Op, L: ar.rewrite(x.L), R: ar.rewrite(x.R)}
	case *sqlast.Between:
		return &sqlast.Between{X: ar.rewrite(x.X), Lo: ar.rewrite(x.Lo), Hi: ar.rewrite(x.Hi), Not: x.Not}
	case *sqlast.InList:
		list := make([]sqlast.Expr, len(x.List))
		for i, it := range x.List {
			list[i] = ar.rewrite(it)
		}
		return &sqlast.InList{X: ar.rewrite(x.X), List: list, Not: x.Not}
	case *sqlast.IsNull:
		return &sqlast.IsNull{X: ar.rewrite(x.X), Not: x.Not}
	case *sqlast.Like:
		return &sqlast.Like{X: ar.rewrite(x.X), Pattern: ar.rewrite(x.Pattern), Not: x.Not}
	case *sqlast.Case:
		c := &sqlast.Case{Operand: ar.rewrite(x.Operand), Else: ar.rewrite(x.Else)}
		for _, w := range x.Whens {
			c.Whens = append(c.Whens, sqlast.When{Cond: ar.rewrite(w.Cond), Then: ar.rewrite(w.Then)})
		}
		return c
	case *sqlast.WindowFunc:
		// The window's own function is not a group aggregate, but its
		// arguments and PARTITION/ORDER expressions may reference group
		// aggregates (e.g. avg(sum(s)) OVER ()).
		nf := &sqlast.FuncCall{Name: x.Func.Name, Star: x.Func.Star, Distinct: x.Func.Distinct}
		for _, a := range x.Func.Args {
			nf.Args = append(nf.Args, ar.rewrite(a))
		}
		w := &sqlast.WindowFunc{Func: nf, Frame: x.Frame}
		for _, pe := range x.PartitionBy {
			w.PartitionBy = append(w.PartitionBy, ar.rewrite(pe))
		}
		for _, o := range x.OrderBy {
			w.OrderBy = append(w.OrderBy, sqlast.OrderItem{Expr: ar.rewrite(o.Expr), Desc: o.Desc})
		}
		return w
	}
	return e
}

func newGroupBy(input Node, keys []sqlast.Expr, specs []AggSpec) (*GroupBy, error) {
	gb := &GroupBy{Input: input, Keys: keys, Aggs: specs}
	var cols []eval.BoundCol
	for i, k := range keys {
		if err := checkResolvable(k, input.Schema()); err != nil {
			return nil, fmt.Errorf("GROUP BY key %d: %v", i+1, err)
		}
		if c, ok := k.(*sqlast.ColumnRef); ok {
			cols = append(cols, eval.BoundCol{Name: c.Name})
		} else {
			cols = append(cols, eval.BoundCol{Name: "$key" + strconv.Itoa(i)})
		}
	}
	for _, s := range specs {
		if !s.Call.Star {
			for _, a := range s.Call.Args {
				if err := checkResolvable(a, input.Schema()); err != nil {
					return nil, fmt.Errorf("aggregate %s: %v", s.Call, err)
				}
			}
		}
		if s.Call.Star && s.Call.Name != "count" {
			return nil, fmt.Errorf("%s(*) is not supported", s.Call.Name)
		}
		if !s.Call.Star && len(s.Call.Args) != aggs.NumArgs(s.Call.Name) {
			return nil, fmt.Errorf("%s() takes %d argument(s)", s.Call.Name, aggs.NumArgs(s.Call.Name))
		}
		cols = append(cols, eval.BoundCol{Name: s.Name})
	}
	gb.schema = eval.NewBoundSchema(cols)
	return gb, nil
}
