package plan

import (
	"fmt"

	"sqlsheet/internal/core"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// buildSpreadsheet plans a spreadsheet clause over the query block's input:
// reference-sheet subplans, the working projection (PBY ++ DBY ++ MEA), the
// compiled model, and — when enabled — independent-dimension promotion into
// the distribution key for parallel execution (S3/S4).
func (b *builder) buildSpreadsheet(sc *sqlast.SpreadsheetClause, input Node) (*Spreadsheet, error) {
	refPlans, refMetas, err := b.buildRefSheets(sc)
	if err != nil {
		return nil, err
	}

	var work []workCol
	addClassified := func(exprs []sqlast.Expr, what string) error {
		for _, e := range exprs {
			if err := checkResolvable(e, input.Schema()); err != nil {
				return fmt.Errorf("%s: %v", what, err)
			}
			name := e.String()
			if c, ok := e.(*sqlast.ColumnRef); ok {
				name = c.Name
			}
			work = append(work, workCol{expr: e, name: name})
		}
		return nil
	}
	if err := addClassified(sc.PBY, "PBY"); err != nil {
		return nil, err
	}
	if err := addClassified(sc.DBY, "DBY"); err != nil {
		return nil, err
	}
	for _, mi := range sc.MEA {
		name := mi.Name()
		expr := mi.Expr
		if c, ok := expr.(*sqlast.ColumnRef); ok {
			if _, found, _ := input.Schema().Resolve(c.Table, c.Name); !found {
				// A bare unresolvable name declares a new NULL measure
				// (r_yago in query S1).
				expr = &sqlast.Literal{Val: types.Null}
			}
		} else if err := checkResolvable(expr, input.Schema()); err != nil {
			return nil, fmt.Errorf("MEA %s: %v", name, err)
		}
		work = append(work, workCol{expr: expr, name: name})
	}

	// Independent-dimension promotion (S4): duplicate one independent DBY
	// dimension in front of the (empty) PBY list so partition-parallelism
	// has something to distribute on.
	promote := -1
	clause := sc
	if b.opts.Parallel > 1 && b.opts.PromoteIndependentDims && len(sc.PBY) == 0 {
		// Compile a probe model to run the independence analysis.
		probe, err := core.Compile(sc, workSchemaOf(work), refMetas)
		if err != nil {
			return nil, err
		}
		for d, ind := range probe.IndependentDims() {
			if ind {
				promote = d
				break
			}
		}
		if promote >= 0 {
			dup := workCol{expr: work[len(sc.PBY)+promote].expr, name: "$dup"}
			work = append([]workCol{dup}, work...)
			cl := *sc
			cl.PBY = append([]sqlast.Expr{&sqlast.ColumnRef{Name: "$dup"}}, sc.PBY...)
			clause = &cl
		}
	}

	exprs := make([]sqlast.Expr, len(work))
	names := make([]string, len(work))
	for i, wc := range work {
		exprs[i] = wc.expr
		names[i] = wc.name
	}
	cols := make([]eval.BoundCol, len(names))
	for i, n := range names {
		cols[i] = eval.BoundCol{Name: n}
	}
	workProj := &Project{Input: input, Exprs: exprs, schema: eval.NewBoundSchema(cols)}

	model, err := core.Compile(clause, types.NewSchemaNames(names...), refMetas)
	if err != nil {
		return nil, err
	}
	sheet := &Spreadsheet{Input: workProj, Model: model, RefPlans: refPlans}
	// Annotate only for an explicitly configured worker count (Workers=0
	// resolves to the core count at run time, which would make EXPLAIN
	// output machine-dependent).
	if b.opts.Workers > 1 && !b.opts.DisableParallelBuild {
		sheet.Notes = append(sheet.Notes,
			fmt.Sprintf("parallel partition build (%d workers)", b.opts.Workers))
	}
	if promote >= 0 {
		sheet.Promoted = []core.PromotedDim{{Pby: 0, Dby: promote}}
		sheet.Notes = append(sheet.Notes,
			fmt.Sprintf("promoted independent dimension %q into the distribution key", model.DimName(promote)))
	}
	drop := 0
	if promote >= 0 {
		drop = 1
	}
	sheet.schema = eval.NewBoundSchema(cols[drop:])
	sheet.DropCols = drop
	return sheet, nil
}

// workCol is one column of the spreadsheet working projection.
type workCol struct {
	expr sqlast.Expr
	name string
}

func workSchemaOf(work []workCol) *types.Schema {
	names := make([]string, len(work))
	for i, wc := range work {
		names[i] = wc.name
	}
	return types.NewSchemaNames(names...)
}

// buildRefSheets plans each REFERENCE subquery and normalizes its output to
// the dims ++ measures layout RefMeta expects.
func (b *builder) buildRefSheets(sc *sqlast.SpreadsheetClause) ([]Node, []*core.RefMeta, error) {
	var plans []Node
	var metas []*core.RefMeta
	for i, rs := range sc.Refs {
		name := rs.Name
		if name == "" {
			name = fmt.Sprintf("ref_%d", i+1)
		}
		sub, err := b.buildStmt(rs.Query)
		if err != nil {
			return nil, nil, fmt.Errorf("REFERENCE %s: %v", name, err)
		}
		var exprs []sqlast.Expr
		var dims, meas []string
		for _, e := range rs.DBY {
			if err := checkResolvable(e, sub.Schema()); err != nil {
				return nil, nil, fmt.Errorf("REFERENCE %s DBY: %v", name, err)
			}
			n := e.String()
			if c, ok := e.(*sqlast.ColumnRef); ok {
				n = c.Name
			}
			exprs = append(exprs, e)
			dims = append(dims, n)
		}
		for _, mi := range rs.MEA {
			if err := checkResolvable(mi.Expr, sub.Schema()); err != nil {
				return nil, nil, fmt.Errorf("REFERENCE %s MEA: %v", name, err)
			}
			exprs = append(exprs, mi.Expr)
			meas = append(meas, mi.Name())
		}
		cols := make([]eval.BoundCol, 0, len(exprs))
		for _, n := range append(append([]string{}, dims...), meas...) {
			cols = append(cols, eval.BoundCol{Name: n})
		}
		plans = append(plans, &Project{Input: sub, Exprs: exprs, schema: eval.NewBoundSchema(cols)})
		metas = append(metas, &core.RefMeta{Name: name, Src: rs, Dims: dims, Meas: meas})
	}
	return plans, metas, nil
}
