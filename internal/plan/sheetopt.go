package plan

import (
	"fmt"

	"sqlsheet/internal/core"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// optimizeSheets walks the plan looking for Filter → [Project] →
// Spreadsheet chains and applies §4's optimizations: formula pruning,
// left-side rewriting, and predicate pushing (PBY columns, independent
// dimensions, bounding rectangles, and the reference-spreadsheet
// transforms).
func optimizeSheets(n Node, opts *Options) (Node, error) {
	// Recurse first so nested spreadsheets optimize bottom-up.
	var err error
	switch x := n.(type) {
	case *Filter:
		x.Input, err = optimizeSheets(x.Input, opts)
		if err != nil {
			return nil, err
		}
		return rewriteSheetFilter(x, opts)
	case *Project:
		x.Input, err = optimizeSheets(x.Input, opts)
	case *Join:
		if x.L, err = optimizeSheets(x.L, opts); err != nil {
			return nil, err
		}
		x.R, err = optimizeSheets(x.R, opts)
	case *GroupBy:
		x.Input, err = optimizeSheets(x.Input, opts)
	case *Union:
		if x.L, err = optimizeSheets(x.L, opts); err != nil {
			return nil, err
		}
		x.R, err = optimizeSheets(x.R, opts)
	case *Distinct:
		x.Input, err = optimizeSheets(x.Input, opts)
	case *Sort:
		x.Input, err = optimizeSheets(x.Input, opts)
	case *Limit:
		x.Input, err = optimizeSheets(x.Input, opts)
	case *Alias:
		x.Input, err = optimizeSheets(x.Input, opts)
	case *Spreadsheet:
		x.Input, err = optimizeSheets(x.Input, opts)
	}
	return n, err
}

// sheetChain matches Filter → [Projects/aliases] → Spreadsheet and exposes
// the outer-name → working-name column mapping.
type sheetChain struct {
	sheet *Spreadsheet
	// nameMap maps the filter's visible column names to working columns.
	nameMap map[string]string
	// usedMeasures collects the measure ordinals visible above.
	usedMeasures map[int]bool
}

func matchSheetChain(f *Filter) *sheetChain {
	node := f.Input
	// Identity mapping through the filter's input schema.
	nameMap := map[string]string{}
	for _, c := range f.Input.Schema().Cols {
		nameMap[c.Name] = c.Name
	}
	var projects []*Project
	for {
		switch x := node.(type) {
		case *Project:
			projects = append(projects, x)
			node = x.Input
			continue
		case *Alias:
			node = x.Input
			continue
		case *Spreadsheet:
			sc := &sheetChain{sheet: x, usedMeasures: map[int]bool{}}
			// Compose mappings outer → ... → working columns.
			m := x.Model
			// Start from the outermost visible names and trace each
			// through the project stack.
			final := map[string]string{}
			usedWorking := map[string]bool{}
			for outer := range nameMap {
				name := outer
				ok := true
				for _, p := range projects {
					idx, found, err := p.Schema().Resolve("", name)
					if err != nil || !found {
						ok = false
						break
					}
					cref, isCol := p.Exprs[idx].(*sqlast.ColumnRef)
					if !isCol {
						ok = false
						break
					}
					name = cref.Name
				}
				if ok {
					if _, found, _ := x.Schema().Resolve("", name); found {
						final[outer] = name
					}
				}
			}
			// Every working column any project references counts as used.
			for _, p := range projects {
				for _, e := range p.Exprs {
					for _, c := range sqlast.ColumnRefs(e) {
						usedWorking[c.Name] = true
					}
				}
			}
			if len(projects) == 0 {
				for _, c := range x.Schema().Cols {
					usedWorking[c.Name] = true
				}
			} else {
				// Only the outermost projection defines visibility; trace
				// it fully: if it fails to stay within column refs we fall
				// back to "all used".
				_ = usedWorking
			}
			for i, mn := range m.MeasureNames() {
				if usedWorking[mn] {
					sc.usedMeasures[m.NPby+m.NDby+i] = true
				}
			}
			sc.nameMap = final
			return sc
		default:
			return nil
		}
	}
}

// rewriteSheetFilter applies prune/rewrite/push for one matched chain.
func rewriteSheetFilter(f *Filter, opts *Options) (Node, error) {
	chain := matchSheetChain(f)
	if chain == nil {
		return f, nil
	}
	m := chain.sheet.Model
	sheet := chain.sheet

	// Translate filter conjuncts into working-column terms.
	type tconj struct {
		orig       sqlast.Expr
		translated sqlast.Expr // nil if not translatable
	}
	var tcs []tconj
	for _, conj := range conjuncts(f.Cond) {
		tr, ok := translateConj(conj, chain.nameMap)
		if !ok {
			tcs = append(tcs, tconj{orig: conj})
			continue
		}
		tcs = append(tcs, tconj{orig: conj, translated: tr})
	}

	// Outer dimension bounds for pruning.
	dimBounds := make(core.Rect, m.NDby)
	for d := range dimBounds {
		dimBounds[d] = core.AllBound()
	}
	for _, tc := range tcs {
		if tc.translated == nil {
			continue
		}
		for d, dim := range m.DimNames() {
			if singleColumnIs(tc.translated, dim) {
				dimBounds[d] = dimBounds[d].Intersect(m.PredBound(tc.translated, dim))
			}
		}
	}

	// Formula pruning and rewriting.
	if !opts.DisableSheetPrune {
		outer := core.OuterInfo{DimBounds: dimBounds}
		if len(chain.usedMeasures) > 0 {
			outer.UsedMeasures = chain.usedMeasures
		}
		if opts.DisableSheetRewrite {
			outer.NoRewrite = true
		}
		pruned, rewritten := m.Prune(outer)
		for _, p := range pruned {
			sheet.Notes = append(sheet.Notes, "pruned formula "+p)
		}
		for _, r := range rewritten {
			sheet.Notes = append(sheet.Notes, "rewrote formula "+r)
		}
	}

	if opts.DisableSheetPush {
		return f, nil
	}

	pby := map[string]bool{}
	for _, n := range m.PbyNames() {
		pby[n] = true
	}
	independent := m.IndependentDims()
	funcInd := m.FunctionallyIndependentDims()
	sheetRect := m.SheetRect()
	hasUpsert := m.HasUpsert()

	var pushed sqlast.Expr
	var keep sqlast.Expr
	for _, tc := range tcs {
		if tc.translated == nil {
			keep = andExpr(keep, tc.orig)
			continue
		}
		refs := sqlast.ColumnRefs(tc.translated)
		onlyPby := true
		for _, c := range refs {
			if !pby[c.Name] {
				onlyPby = false
			}
		}
		if onlyPby && len(refs) > 0 {
			// PBY predicates filter whole partitions: push and drop the
			// outer copy.
			pushed = andExpr(pushed, tc.translated)
			sheet.Notes = append(sheet.Notes, "pushed PBY predicate "+tc.translated.String())
			continue
		}
		// Single-dimension conjuncts.
		d := singleDimOf(tc.translated, m)
		if d < 0 {
			keep = andExpr(keep, tc.orig)
			continue
		}
		dim := m.DimName(d)
		switch {
		case independent[d] && !hasUpsert:
			// Independent dimensions behave like partition columns.
			pushed = andExpr(pushed, tc.translated)
			sheet.Notes = append(sheet.Notes, "pushed independent-dimension predicate "+tc.translated.String())
			continue
		case funcInd[d] && !independent[d] && opts.Push != PushNone:
			outerB := m.PredBound(tc.translated, dim)
			if vals, ok := outerB.FiniteVals(); ok && len(vals) > 0 {
				pred, note, err := pushThroughReference(m, d, vals, opts)
				if err != nil {
					return nil, err
				}
				if pred != nil {
					pushed = andExpr(pushed, pred)
					sheet.Notes = append(sheet.Notes, note)
					keep = andExpr(keep, tc.orig)
					continue
				}
			}
			keep = andExpr(keep, tc.orig)
			continue
		default:
			// Bounding-rectangle extension: widen the outer bound with the
			// spreadsheet's rectangle for the dimension and push that.
			outerB := m.PredBound(tc.translated, dim)
			ext := outerB.Union(sheetRect[d])
			if p := core.BoundPredicate(dim, ext); p != nil {
				pushed = andExpr(pushed, p)
				sheet.Notes = append(sheet.Notes, "pushed bounding-rectangle predicate "+p.String())
			}
			keep = andExpr(keep, tc.orig)
		}
	}
	if pushed != nil {
		sheet.Input = &Filter{Input: sheet.Input, Cond: pushed}
	}
	if keep == nil {
		return f.Input, nil
	}
	f.Cond = keep
	return f, nil
}

// pushThroughReference builds the pushed predicate for a functionally
// independent dimension using the configured transform.
func pushThroughReference(m *core.Model, d int, outerVals []types.Value, opts *Options) (sqlast.Expr, string, error) {
	dim := m.DimName(d)
	lookups := m.RefLookups(dim)
	if len(lookups) == 0 {
		return nil, "", nil
	}
	dimRef := &sqlast.ColumnRef{Name: dim}
	valLits := make([]sqlast.Expr, len(outerVals))
	for i, v := range outerVals {
		valLits[i] = &sqlast.Literal{Val: v}
	}
	switch opts.Push {
	case PushRefSubquery:
		// dim IN (SELECT dim FROM ref WHERE dim IN vals UNION SELECT mea ...).
		var union sqlast.QueryExpr
		addArm := func(col string, ref *core.RefMeta) {
			body := &sqlast.SelectBody{
				Items: []sqlast.SelectItem{{Expr: &sqlast.ColumnRef{Name: col}, Alias: "$v"}},
				From:  []sqlast.TableRef{&sqlast.SubqueryRef{Sub: ref.Src.Query, Alias: "$r"}},
				Where: &sqlast.InList{X: &sqlast.ColumnRef{Name: dim}, List: valLits},
			}
			if union == nil {
				union = body
			} else {
				union = &sqlast.Union{L: union, R: body}
			}
		}
		seen := map[*core.RefMeta]bool{}
		for _, lk := range lookups {
			ref, ok := m.RefForMeasure(lk.Measure)
			if !ok {
				continue
			}
			if !seen[ref] {
				seen[ref] = true
				addArm(dim, ref)
			}
			addArm(lk.Measure, ref)
		}
		if union == nil {
			return nil, "", nil
		}
		pred := &sqlast.InSubquery{X: dimRef, Sub: &sqlast.SelectStmt{Query: union}}
		return pred, "pushed ref-subquery predicate on " + dim, nil
	case PushExtended, PushUnfold:
		if opts.Exec == nil {
			return nil, "", nil
		}
		vals, perMeasure, err := materializeRefLookups(m, dim, lookups, valLits, opts)
		if err != nil {
			return nil, "", err
		}
		all := append([]types.Value{}, outerVals...)
		all = appendDistinct(all, vals)
		if opts.Push == PushUnfold {
			lookup := func(measure string, v types.Value) (types.Value, bool) {
				lv, ok := perMeasure[measure][types.Key(v)]
				return lv, ok
			}
			if err := m.UnfoldDim(d, outerVals, lookup); err != nil {
				return nil, "", err
			}
			pred := core.BoundPredicate(dim, core.ValueBound(all...))
			return pred, "unfolded formulas and pushed predicate on " + dim, nil
		}
		pred := core.BoundPredicate(dim, core.ValueBound(all...))
		return pred, "pushed extended predicate on " + dim, nil
	}
	return nil, "", nil
}

// materializeRefLookups executes "SELECT dim, mea FROM ref WHERE dim IN
// (vals)" for every lookup measure, returning all referenced values and the
// per-measure dim → value maps (for unfolding).
func materializeRefLookups(m *core.Model, dim string, lookups []*sqlast.CellRef, valLits []sqlast.Expr, opts *Options) ([]types.Value, map[string]map[string]types.Value, error) {
	var all []types.Value
	perMeasure := map[string]map[string]types.Value{}
	for _, lk := range lookups {
		ref, ok := m.RefForMeasure(lk.Measure)
		if !ok {
			continue
		}
		stmt := &sqlast.SelectStmt{Query: &sqlast.SelectBody{
			Items: []sqlast.SelectItem{
				{Expr: &sqlast.ColumnRef{Name: dim}},
				{Expr: &sqlast.ColumnRef{Name: lk.Measure}},
			},
			From:  []sqlast.TableRef{&sqlast.SubqueryRef{Sub: ref.Src.Query, Alias: "$r"}},
			Where: &sqlast.InList{X: &sqlast.ColumnRef{Name: dim}, List: valLits},
		}}
		_, rows, err := opts.Exec.Rows(stmt)
		if err != nil {
			return nil, nil, fmt.Errorf("extended pushing: %v", err)
		}
		mm := perMeasure[lk.Measure]
		if mm == nil {
			mm = map[string]types.Value{}
			perMeasure[lk.Measure] = mm
		}
		for _, r := range rows {
			mm[types.Key(r[0])] = r[1]
			all = appendDistinct(all, []types.Value{r[1]})
		}
	}
	return all, perMeasure, nil
}

func appendDistinct(dst []types.Value, src []types.Value) []types.Value {
	for _, v := range src {
		if v.IsNull() {
			continue
		}
		dup := false
		for _, w := range dst {
			if types.Equal(v, w) {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, v)
		}
	}
	return dst
}

// translateConj rewrites a conjunct's column references through the
// outer → working name map.
func translateConj(e sqlast.Expr, nameMap map[string]string) (sqlast.Expr, bool) {
	if sqlast.HasSubquery(e) {
		return nil, false
	}
	ok := true
	out := sqlast.Transform(e, func(n sqlast.Expr) sqlast.Expr {
		c, isCol := n.(*sqlast.ColumnRef)
		if !isCol {
			return n
		}
		w, found := nameMap[c.Name]
		if !found {
			ok = false
			return n
		}
		return &sqlast.ColumnRef{Name: w}
	})
	if !ok {
		return nil, false
	}
	return out, true
}

// singleColumnIs reports whether e references exactly one column, named col.
func singleColumnIs(e sqlast.Expr, col string) bool {
	refs := sqlast.ColumnRefs(e)
	if len(refs) == 0 {
		return false
	}
	for _, c := range refs {
		if c.Name != col {
			return false
		}
	}
	return true
}

// singleDimOf returns the DBY ordinal when e references exactly one DBY
// dimension (and nothing else), else -1.
func singleDimOf(e sqlast.Expr, m *core.Model) int {
	refs := sqlast.ColumnRefs(e)
	if len(refs) == 0 {
		return -1
	}
	d := -1
	for _, c := range refs {
		od := m.DimOrdinal(c.Name)
		if od < 0 {
			return -1
		}
		if d >= 0 && od != d {
			return -1
		}
		d = od
	}
	return d
}
