package plan

import (
	"sqlsheet/internal/aggs"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
)

// The distribution pass decides, per plan node, whether the executor may
// hand the node to the scatter-gather coordinator (internal/shard). It only
// annotates — DistNote carries the verdict plus EXPLAIN's distributed=
// fallback reason — and never changes plan shape, so a distributed and a
// local plan stay structurally identical (a prerequisite for byte-identical
// results and for plan-cache sharing keyed by the config fingerprint).
//
// Spreadsheet nodes shard by PARTITION BY value: the paper's §6 model makes
// partitions independent evaluation units, so a partition's frame can be
// built and its formulas run on any worker. Group-by nodes shard by grouping
// key with per-morsel partials (the PR 1 Merger contract). Everything the
// coordinator cannot reproduce remotely — reference sheets (global state),
// subqueries (need the coordinator's catalog), promoted dimensions (plan
// rewrites baked into DropCols), correlated evaluation — falls back with a
// reason.
const (
	// DistYes marks a node the executor may distribute.
	DistYes = "yes"

	distNoPby         = "no(no-pby)"
	distNoPromoted    = "no(promoted-dims)"
	distNoRefs        = "no(reference-sheets)"
	distNoSubquery    = "no(subquery)"
	distNoColNames    = "no(ambiguous-columns)"
	distNoAggs        = "no(non-mergeable-aggregate)"
	distNoKeys        = "no(no-keys)"
	distNoComplexKeys = "no(non-column-keys)"
	distNoQualified   = "no(qualified-arg-columns)"
)

// distributePlan annotates every Spreadsheet and GroupBy node with its
// distribution verdict.
func distributePlan(n Node, visited map[Node]bool) {
	if n == nil || visited[n] {
		return
	}
	visited[n] = true
	switch x := n.(type) {
	case *CTERef:
		distributePlan(x.Def.Plan, visited)
	case *Spreadsheet:
		x.DistNote = sheetDistNote(x)
	case *GroupBy:
		x.DistNote = groupDistNote(x)
	}
	for _, ch := range n.Children() {
		distributePlan(ch, visited)
	}
}

// sheetDistNote checks a spreadsheet node against the coordinator's
// contract: the worker re-compiles the model from a synthesized statement
// (canonical clause text over the shipped working schema), so everything
// the model touches must be frame-local and self-contained.
func sheetDistNote(x *Spreadsheet) string {
	m := x.Model
	if m.NPby == 0 {
		// No PARTITION BY means one global frame: nothing to scatter.
		return distNoPby
	}
	if len(x.Promoted) > 0 || x.DropCols > 0 {
		// Promoted dimensions are a local-parallelism rewrite (duplicated
		// $dup key column dropped after the run); shipping it would leak
		// the synthetic column into the synthesized clause.
		return distNoPromoted
	}
	if len(m.Refs) > 0 {
		// Reference sheets are read-only global lookups materialized from
		// coordinator-side subplans; formulas over them are not
		// frame-local.
		return distNoRefs
	}
	for _, r := range m.Rules {
		if formulaBlocksDist(r.Src) {
			return distNoSubquery
		}
	}
	if it := m.Iterate; it != nil && it.Until != nil && exprBlocksDist(it.Until) {
		return distNoSubquery
	}
	// The synthesized clause names working columns by their schema names;
	// duplicates or empties would mis-bind on the worker.
	seen := map[string]bool{}
	for _, c := range m.Schema.Cols {
		if c.Name == "" || seen[c.Name] {
			return distNoColNames
		}
		seen[c.Name] = true
	}
	return DistYes
}

// groupDistNote checks a group-by node: aggregates must merge, keys must be
// plain columns (the coordinator hashes them per row to place groups), and
// argument expressions must re-resolve by bare column name on the worker.
func groupDistNote(x *GroupBy) string {
	if len(x.Keys) == 0 {
		// A global aggregate hashes everything to one worker: all overhead,
		// no scatter. Keep it local.
		return distNoKeys
	}
	env := x.Input.Schema()
	nameCount := map[string]int{}
	for _, c := range env.Cols {
		nameCount[c.Name]++
	}
	for _, k := range x.Keys {
		if sqlast.HasSubquery(k) {
			return distNoSubquery
		}
		ord, isCol := eval.PlainOrdinal(env, k)
		if !isCol {
			return distNoComplexKeys
		}
		if name := env.Cols[ord].Name; name == "" || nameCount[name] != 1 {
			return distNoColNames
		}
	}
	for _, spec := range x.Aggs {
		if !aggs.Mergeable(spec.Call.Name) {
			return distNoAggs
		}
		for _, a := range spec.Call.Args {
			if sqlast.HasSubquery(a) {
				return distNoSubquery
			}
			for _, c := range sqlast.ColumnRefs(a) {
				if c.Table != "" {
					// The shipped scratch table has no alias to qualify
					// with; a qualified ref would fail to bind remotely.
					return distNoQualified
				}
				if c.Name == "" || nameCount[c.Name] != 1 {
					return distNoColNames
				}
			}
		}
	}
	return DistYes
}

// formulaBlocksDist reports whether a formula contains anything the worker
// cannot evaluate from the shipped partition alone (subqueries, directly or
// inside cell-reference qualifiers).
func formulaBlocksDist(f *sqlast.Formula) bool {
	if f == nil {
		return true // defensive: no source to synthesize from
	}
	if exprBlocksDist(f.LHS) || exprBlocksDist(f.RHS) {
		return true
	}
	for _, o := range f.OrderBy {
		if exprBlocksDist(o.Expr) {
			return true
		}
	}
	return false
}

// exprBlocksDist is HasSubquery plus the qualifier fields WalkExpr does not
// descend into: FOR d IN (subquery) and FOR d FROM/TO/INCREMENT expressions
// (which may themselves nest cell references).
func exprBlocksDist(e sqlast.Expr) bool {
	if e == nil {
		return false
	}
	if sqlast.HasSubquery(e) {
		return true
	}
	cells, cellAggs := sqlast.CellRefs(e)
	var quals []sqlast.DimQual
	for _, c := range cells {
		quals = append(quals, c.Quals...)
	}
	for _, a := range cellAggs {
		quals = append(quals, a.Quals...)
	}
	for _, q := range quals {
		if q.ForSub != nil {
			return true
		}
		if exprBlocksDist(q.ForFrom) || exprBlocksDist(q.ForTo) || exprBlocksDist(q.ForStep) {
			return true
		}
	}
	return false
}
