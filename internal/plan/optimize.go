package plan

import (
	"sqlsheet/internal/eval"
	"sqlsheet/internal/sqlast"
)

// optimize runs the optimization pipeline: spreadsheet-specific rewrites
// first (they insert filters to push), then generic filter pushdown.
func optimize(n Node, opts *Options) (Node, error) {
	var err error
	n, err = optimizeSheets(n, opts)
	if err != nil {
		return nil, err
	}
	if !opts.DisableFilterPushdown {
		n = pushFilters(n)
	}
	return n, nil
}

// pushFilters sinks Filter nodes toward scans, splits conjuncts across
// joins, and upgrades cross joins with equi-conjuncts into keyed joins.
func pushFilters(n Node) Node {
	switch x := n.(type) {
	case *Filter:
		child := pushFilters(x.Input)
		return sinkFilter(x.Cond, child)
	case *Project:
		x.Input = pushFilters(x.Input)
	case *Join:
		x.L = pushFilters(x.L)
		x.R = pushFilters(x.R)
	case *GroupBy:
		x.Input = pushFilters(x.Input)
	case *Union:
		x.L = pushFilters(x.L)
		x.R = pushFilters(x.R)
	case *Distinct:
		x.Input = pushFilters(x.Input)
	case *Sort:
		x.Input = pushFilters(x.Input)
	case *Limit:
		x.Input = pushFilters(x.Input)
	case *Spreadsheet:
		x.Input = pushFilters(x.Input)
		for i := range x.RefPlans {
			x.RefPlans[i] = pushFilters(x.RefPlans[i])
		}
	case *Alias:
		x.Input = pushFilters(x.Input)
	}
	return n
}

// sinkFilter pushes cond as deep as possible into node, returning the
// rewritten tree.
func sinkFilter(cond sqlast.Expr, node Node) Node {
	var keep sqlast.Expr
	for _, conj := range conjuncts(cond) {
		pushed, rest := trySink(conj, node)
		node = pushed
		keep = andExpr(keep, rest)
	}
	if keep != nil {
		return &Filter{Input: node, Cond: keep}
	}
	return node
}

// trySink attempts to push one conjunct into node. It returns the possibly
// rewritten node and the residual predicate (nil when fully absorbed).
func trySink(conj sqlast.Expr, node Node) (Node, sqlast.Expr) {
	switch x := node.(type) {
	case *Scan:
		if refsResolveIn(conj, x.Schema()) {
			x.Filter = andExpr(x.Filter, conj)
			return x, nil
		}
	case *CTERef:
		if refsResolveIn(conj, x.Schema()) {
			x.Filter = andExpr(x.Filter, conj)
			return x, nil
		}
	case *Filter:
		inner, rest := trySink(conj, x.Input)
		x.Input = inner
		return x, rest
	case *Project:
		if sub, ok := substituteThroughProject(conj, x); ok {
			x.Input = sinkFilter(sub, x.Input)
			return x, nil
		}
	case *Alias:
		if sub, ok := remapByOrdinal(conj, x.Schema(), x.Input.Schema()); ok {
			x.Input = sinkFilter(sub, x.Input)
			return x, nil
		}
	case *Limit:
		// Filters do not commute with LIMIT.
	case *GroupBy:
		// Only key-referencing conjuncts commute with aggregation.
		if sub, ok := substituteGroupKeys(conj, x); ok {
			x.Input = sinkFilter(sub, x.Input)
			return x, nil
		}
	case *Sort:
		inner, rest := trySink(conj, x.Input)
		x.Input = inner
		return x, rest
	case *Distinct:
		inner, rest := trySink(conj, x.Input)
		x.Input = inner
		return x, rest
	case *Join:
		return sinkIntoJoin(conj, x)
	}
	return node, conj
}

// sinkIntoJoin routes one conjunct into a join: equi-conjuncts between the
// sides become join keys (inner/cross), single-side conjuncts push to the
// preserved side(s).
func sinkIntoJoin(conj sqlast.Expr, j *Join) (Node, sqlast.Expr) {
	inner := j.Type == sqlast.JoinInner || j.Type == sqlast.JoinCross
	if inner {
		if eq, ok := conj.(*sqlast.Binary); ok && eq.Op == "=" {
			switch {
			case resolvesIn(eq.L, j.L.Schema()) && resolvesIn(eq.R, j.R.Schema()):
				j.LeftKeys = append(j.LeftKeys, eq.L)
				j.RightKeys = append(j.RightKeys, eq.R)
				if j.Type == sqlast.JoinCross {
					j.Type = sqlast.JoinInner
				}
				return j, nil
			case resolvesIn(eq.L, j.R.Schema()) && resolvesIn(eq.R, j.L.Schema()):
				j.LeftKeys = append(j.LeftKeys, eq.R)
				j.RightKeys = append(j.RightKeys, eq.L)
				if j.Type == sqlast.JoinCross {
					j.Type = sqlast.JoinInner
				}
				return j, nil
			}
		}
	}
	canLeft := inner || j.Type == sqlast.JoinLeft
	canRight := inner || j.Type == sqlast.JoinRight
	if canLeft && refsResolveIn(conj, j.L.Schema()) {
		j.L = sinkFilter(conj, j.L)
		return j, nil
	}
	if canRight && refsResolveIn(conj, j.R.Schema()) {
		j.R = sinkFilter(conj, j.R)
		return j, nil
	}
	return j, conj
}

// refsResolveIn reports whether every column reference of e resolves in s
// and e contains at least one reference (pure literals stay put).
func refsResolveIn(e sqlast.Expr, s interface {
	Resolve(table, name string) (int, bool, error)
}) bool {
	refs := sqlast.ColumnRefs(e)
	if len(refs) == 0 {
		return false
	}
	for _, c := range refs {
		_, found, err := s.Resolve(c.Table, c.Name)
		if err != nil || !found {
			return false
		}
	}
	return true
}

// substituteThroughProject rewrites a predicate over project outputs into
// one over project inputs by inlining the defining expressions.
func substituteThroughProject(e sqlast.Expr, p *Project) (sqlast.Expr, bool) {
	ok := true
	out := sqlast.Transform(e, func(n sqlast.Expr) sqlast.Expr {
		c, isCol := n.(*sqlast.ColumnRef)
		if !isCol {
			return n
		}
		idx, found, err := p.Schema().Resolve(c.Table, c.Name)
		if err != nil || !found {
			ok = false
			return n
		}
		return p.Exprs[idx]
	})
	if !ok {
		return nil, false
	}
	// Don't duplicate subquery executions below.
	if sqlast.HasSubquery(out) && !sqlast.HasSubquery(e) {
		return nil, false
	}
	return out, true
}

// substituteGroupKeys rewrites a predicate over GroupBy outputs into one
// over its input when it references only grouping keys.
func substituteGroupKeys(e sqlast.Expr, g *GroupBy) (sqlast.Expr, bool) {
	ok := true
	out := sqlast.Transform(e, func(n sqlast.Expr) sqlast.Expr {
		c, isCol := n.(*sqlast.ColumnRef)
		if !isCol {
			return n
		}
		idx, found, err := g.Schema().Resolve(c.Table, c.Name)
		if err != nil || !found || idx >= len(g.Keys) {
			ok = false
			return n
		}
		return g.Keys[idx]
	})
	if !ok {
		return nil, false
	}
	return out, true
}

// remapByOrdinal translates column references positionally between two
// equal-arity schemas (alias nodes re-qualify without reordering).
func remapByOrdinal(e sqlast.Expr, from, to *eval.BoundSchema) (sqlast.Expr, bool) {
	ok := true
	out := sqlast.Transform(e, func(n sqlast.Expr) sqlast.Expr {
		c, isCol := n.(*sqlast.ColumnRef)
		if !isCol {
			return n
		}
		idx, found, err := from.Resolve(c.Table, c.Name)
		if err != nil || !found || idx >= len(to.Cols) {
			ok = false
			return n
		}
		tc := to.Cols[idx]
		return &sqlast.ColumnRef{Table: tc.Table, Name: tc.Name}
	})
	if !ok {
		return nil, false
	}
	return out, true
}
