package aggs

import (
	"sqlsheet/internal/types"
)

// Batch accumulators: structure-of-arrays aggregate state addressed by dense
// group id, fed whole argument vectors per call instead of one boxed row per
// Add. The executor's vectorized group-by assigns every row of a morsel a
// group id, then feeds each aggregate's argument vector in one bulk call —
// replacing per-row interface dispatch with a typed loop.
//
// Equivalence contract: feeding rows in ascending order through a bulk Add*
// leaves group g's state bit-identical to calling the row accumulator's Add
// with the same boxed values in the same order (same float additions in the
// same order, same int64 wraparound, same truncating int64(float) machine
// conversion). Unbox materializes that state as the ordinary Agg so result
// finalization, partial-state merging (Merger) and single-scan inverse
// maintenance run unchanged.
//
// Kind dispatch is the caller's job: the argument vector's kind picks the
// Add* method, and kinds an aggregate ignores (strings under SUM/AVG, any
// non-numeric under SLOPE) are simply not fed — the row path skips those
// values silently, so skipping the whole vector is identical.

// SumBatch is sumAgg over many groups.
type SumBatch struct {
	n        []int64
	isum     []int64
	fsum     []float64
	sawFloat []bool
}

func NewSumBatch() *SumBatch { return &SumBatch{} }

// Grow ensures state exists for group ids < n.
func (b *SumBatch) Grow(n int) {
	for len(b.n) < n {
		b.n = append(b.n, 0)
		b.isum = append(b.isum, 0)
		b.fsum = append(b.fsum, 0)
		b.sawFloat = append(b.sawFloat, false)
	}
}

// AddInts feeds an integer argument vector: slot k belongs to group gids[k].
func (b *SumBatch) AddInts(gids []int32, vals []int64, nulls []bool) {
	for k, g := range gids {
		if nulls != nil && nulls[k] {
			continue
		}
		v := vals[k]
		b.n[g]++
		b.isum[g] += v
		b.fsum[g] += float64(v)
	}
}

// AddFloats feeds a float argument vector. isum accumulates the same
// truncating int64(float64) conversion Value.Int() performs on the row path.
func (b *SumBatch) AddFloats(gids []int32, vals []float64, nulls []bool) {
	for k, g := range gids {
		if nulls != nil && nulls[k] {
			continue
		}
		v := vals[k]
		b.n[g]++
		b.sawFloat[g] = true
		b.isum[g] += int64(v)
		b.fsum[g] += v
	}
}

// Unbox materializes group g's state as the row accumulator.
func (b *SumBatch) Unbox(g int) Agg {
	return &sumAgg{n: b.n[g], isum: b.isum[g], fsum: b.fsum[g], sawFloat: b.sawFloat[g]}
}

// CountBatch is countAgg over many groups.
type CountBatch struct {
	star bool
	n    []int64
}

func NewCountBatch(star bool) *CountBatch { return &CountBatch{star: star} }

func (b *CountBatch) Grow(n int) {
	for len(b.n) < n {
		b.n = append(b.n, 0)
	}
}

// AddRows counts every row (COUNT(*), or a no-NULL argument vector).
func (b *CountBatch) AddRows(gids []int32) {
	for _, g := range gids {
		b.n[g]++
	}
}

// AddNonNull counts the non-NULL slots of an argument vector.
func (b *CountBatch) AddNonNull(gids []int32, nulls []bool) {
	if nulls == nil {
		b.AddRows(gids)
		return
	}
	for k, g := range gids {
		if !nulls[k] {
			b.n[g]++
		}
	}
}

func (b *CountBatch) Unbox(g int) Agg { return &countAgg{star: b.star, n: b.n[g]} }

// AvgBatch is avgAgg over many groups.
type AvgBatch struct {
	n   []int64
	sum []float64
}

func NewAvgBatch() *AvgBatch { return &AvgBatch{} }

func (b *AvgBatch) Grow(n int) {
	for len(b.n) < n {
		b.n = append(b.n, 0)
		b.sum = append(b.sum, 0)
	}
}

func (b *AvgBatch) AddInts(gids []int32, vals []int64, nulls []bool) {
	for k, g := range gids {
		if nulls != nil && nulls[k] {
			continue
		}
		b.n[g]++
		b.sum[g] += float64(vals[k])
	}
}

func (b *AvgBatch) AddFloats(gids []int32, vals []float64, nulls []bool) {
	for k, g := range gids {
		if nulls != nil && nulls[k] {
			continue
		}
		b.n[g]++
		b.sum[g] += vals[k]
	}
}

func (b *AvgBatch) Unbox(g int) Agg { return &avgAgg{n: b.n[g], sum: b.sum[g]} }

// MinMaxBatch is minmaxAgg over many groups of one argument-vector kind.
// Comparison replicates types.Compare for same-kind operands: numeric kinds
// compare widened to float64 (so two int64s distinct only past 2^53 keep the
// first-seen value, and a NaN never displaces the current extreme), strings
// compare lexically, booleans by their 0/1 content. Ties keep the current
// value — Add only replaces on a strict win.
type MinMaxBatch struct {
	min  bool
	kind types.Kind

	seen   []bool
	ints   []int64
	floats []float64
	strs   []string
}

func NewMinMaxBatch(min bool, kind types.Kind) *MinMaxBatch {
	return &MinMaxBatch{min: min, kind: kind}
}

func (b *MinMaxBatch) Grow(n int) {
	for len(b.seen) < n {
		b.seen = append(b.seen, false)
		switch b.kind {
		case types.KindInt, types.KindBool:
			b.ints = append(b.ints, 0)
		case types.KindFloat:
			b.floats = append(b.floats, 0)
		case types.KindString:
			b.strs = append(b.strs, "")
		}
	}
}

// AddInts feeds an integer or boolean argument vector (per the batch's kind).
func (b *MinMaxBatch) AddInts(gids []int32, vals []int64, nulls []bool) {
	for k, g := range gids {
		if nulls != nil && nulls[k] {
			continue
		}
		v := vals[k]
		if !b.seen[g] {
			b.seen[g] = true
			b.ints[g] = v
			continue
		}
		var better bool
		if b.kind == types.KindBool {
			// types.Compare orders same-kind booleans by their 0/1 content.
			better = (b.min && v < b.ints[g]) || (!b.min && v > b.ints[g])
		} else {
			// types.Compare widens numerics to float64; replicate exactly.
			vf, cf := float64(v), float64(b.ints[g])
			better = (b.min && vf < cf) || (!b.min && vf > cf)
		}
		if better {
			b.ints[g] = v
		}
	}
}

func (b *MinMaxBatch) AddFloats(gids []int32, vals []float64, nulls []bool) {
	for k, g := range gids {
		if nulls != nil && nulls[k] {
			continue
		}
		v := vals[k]
		if !b.seen[g] {
			b.seen[g] = true
			b.floats[g] = v
			continue
		}
		// NaN compares neither below nor above, so it never replaces —
		// and never yields once stored — exactly types.Compare's 0.
		if (b.min && v < b.floats[g]) || (!b.min && v > b.floats[g]) {
			b.floats[g] = v
		}
	}
}

func (b *MinMaxBatch) AddStrs(gids []int32, vals []string, nulls []bool) {
	for k, g := range gids {
		if nulls != nil && nulls[k] {
			continue
		}
		v := vals[k]
		if !b.seen[g] {
			b.seen[g] = true
			b.strs[g] = v
			continue
		}
		if (b.min && v < b.strs[g]) || (!b.min && v > b.strs[g]) {
			b.strs[g] = v
		}
	}
}

func (b *MinMaxBatch) Unbox(g int) Agg {
	a := &minmaxAgg{min: b.min, seen: b.seen[g]}
	if b.seen[g] {
		switch b.kind {
		case types.KindInt, types.KindBool:
			a.value = types.Value{K: b.kind, I: b.ints[g]}
		case types.KindFloat:
			a.value = types.Value{K: types.KindFloat, F: b.floats[g]}
		case types.KindString:
			a.value = types.Value{K: types.KindString, S: b.strs[g]}
		}
	}
	return a
}

// SlopeBatch is slopeAgg over many groups. The caller widens both argument
// vectors to float64 first (the same widening Value.Float() performs) and
// passes each vector's null mask; a slot with either side NULL is skipped.
type SlopeBatch struct {
	n                []int64
	sx, sy, sxy, sxx []float64
}

func NewSlopeBatch() *SlopeBatch { return &SlopeBatch{} }

func (b *SlopeBatch) Grow(n int) {
	for len(b.n) < n {
		b.n = append(b.n, 0)
		b.sx = append(b.sx, 0)
		b.sy = append(b.sy, 0)
		b.sxy = append(b.sxy, 0)
		b.sxx = append(b.sxx, 0)
	}
}

// AddPairs feeds (y, x) pairs: slot k belongs to group gids[k].
func (b *SlopeBatch) AddPairs(gids []int32, ys, xs []float64, ynulls, xnulls []bool) {
	for k, g := range gids {
		if (ynulls != nil && ynulls[k]) || (xnulls != nil && xnulls[k]) {
			continue
		}
		xf, yf := xs[k], ys[k]
		b.n[g]++
		b.sx[g] += xf
		b.sy[g] += yf
		b.sxy[g] += xf * yf
		b.sxx[g] += xf * xf
	}
}

func (b *SlopeBatch) Unbox(g int) Agg {
	return &slopeAgg{n: b.n[g], sx: b.sx[g], sy: b.sy[g], sxy: b.sxy[g], sxx: b.sxx[g]}
}
