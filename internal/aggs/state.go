package aggs

import (
	"encoding/binary"
	"fmt"
	"math"

	"sqlsheet/internal/types"
)

// Partial-state serialization for the scatter-gather coordinator: a worker
// process appends each accumulator's exact state with AppendState and the
// coordinator restores it with LoadState before Merge-folding partials in
// morsel order. The encoding is bit-exact — float fields travel as their
// IEEE-754 bit patterns and types.Value fields are copied verbatim (kind,
// integer, float bits, string bytes) — so a state that crossed the wire is
// indistinguishable from one computed in-process and merged results stay
// byte-identical to single-process execution.

// One-byte state tags, doubling as a cross-check that the coordinator
// constructed the same accumulator type the worker serialized.
const (
	stateSum   = 's'
	stateCount = 'c'
	stateAvg   = 'a'
	stateMinax = 'm'
	stateSlope = 'l'
)

// AppendState appends a's exact partial state to buf and returns the
// extended slice. It panics on an unknown concrete type (all built-ins are
// covered; a future aggregate must add its case here to be shippable).
func AppendState(buf []byte, a Agg) []byte {
	switch v := a.(type) {
	case *sumAgg:
		buf = append(buf, stateSum)
		buf = appendI64(buf, v.n)
		buf = appendI64(buf, v.isum)
		buf = appendF64(buf, v.fsum)
		buf = appendBool(buf, v.sawFloat)
	case *countAgg:
		buf = append(buf, stateCount)
		buf = appendI64(buf, v.n)
	case *avgAgg:
		buf = append(buf, stateAvg)
		buf = appendI64(buf, v.n)
		buf = appendF64(buf, v.sum)
	case *minmaxAgg:
		buf = append(buf, stateMinax)
		buf = appendBool(buf, v.seen)
		buf = appendValue(buf, v.value)
	case *slopeAgg:
		buf = append(buf, stateSlope)
		buf = appendI64(buf, v.n)
		buf = appendF64(buf, v.sx)
		buf = appendF64(buf, v.sy)
		buf = appendF64(buf, v.sxy)
		buf = appendF64(buf, v.sxx)
	default:
		panic(fmt.Sprintf("aggs: no state serialization for %T", a))
	}
	return buf
}

// LoadState parses one serialized state from data into a (which must be a
// fresh accumulator of the matching type, e.g. from New) and returns the
// unconsumed remainder. Configuration fields the constructor owns (count's
// star, minmax's direction) are left untouched.
func LoadState(a Agg, data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("aggs: empty state buffer")
	}
	tag, data := data[0], data[1:]
	var err error
	switch v := a.(type) {
	case *sumAgg:
		if tag != stateSum {
			return nil, tagErr(tag, stateSum)
		}
		if v.n, data, err = takeI64(data); err != nil {
			return nil, err
		}
		if v.isum, data, err = takeI64(data); err != nil {
			return nil, err
		}
		if v.fsum, data, err = takeF64(data); err != nil {
			return nil, err
		}
		if v.sawFloat, data, err = takeBool(data); err != nil {
			return nil, err
		}
	case *countAgg:
		if tag != stateCount {
			return nil, tagErr(tag, stateCount)
		}
		if v.n, data, err = takeI64(data); err != nil {
			return nil, err
		}
	case *avgAgg:
		if tag != stateAvg {
			return nil, tagErr(tag, stateAvg)
		}
		if v.n, data, err = takeI64(data); err != nil {
			return nil, err
		}
		if v.sum, data, err = takeF64(data); err != nil {
			return nil, err
		}
	case *minmaxAgg:
		if tag != stateMinax {
			return nil, tagErr(tag, stateMinax)
		}
		if v.seen, data, err = takeBool(data); err != nil {
			return nil, err
		}
		if v.value, data, err = takeValue(data); err != nil {
			return nil, err
		}
	case *slopeAgg:
		if tag != stateSlope {
			return nil, tagErr(tag, stateSlope)
		}
		if v.n, data, err = takeI64(data); err != nil {
			return nil, err
		}
		if v.sx, data, err = takeF64(data); err != nil {
			return nil, err
		}
		if v.sy, data, err = takeF64(data); err != nil {
			return nil, err
		}
		if v.sxy, data, err = takeF64(data); err != nil {
			return nil, err
		}
		if v.sxx, data, err = takeF64(data); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("aggs: no state serialization for %T", a)
	}
	return data, nil
}

func tagErr(got, want byte) error {
	return fmt.Errorf("aggs: state tag %q does not match accumulator (want %q)", got, want)
}

func appendI64(buf []byte, n int64) []byte {
	return binary.BigEndian.AppendUint64(buf, uint64(n))
}

// appendF64 ships the raw IEEE-754 bits: NaN payloads, signed zeros and
// infinities all round-trip exactly.
func appendF64(buf []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// appendValue copies every Value field verbatim rather than switching on the
// kind: min/max may hold any kind, and a representation-level copy can never
// lose a bit (at the cost of a few spare bytes per state).
func appendValue(buf []byte, v types.Value) []byte {
	buf = append(buf, byte(v.K))
	buf = appendI64(buf, v.I)
	buf = appendF64(buf, v.F)
	buf = binary.AppendUvarint(buf, uint64(len(v.S)))
	return append(buf, v.S...)
}

func takeI64(data []byte) (int64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("aggs: truncated state (int64)")
	}
	return int64(binary.BigEndian.Uint64(data)), data[8:], nil
}

func takeF64(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("aggs: truncated state (float64)")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(data)), data[8:], nil
}

func takeBool(data []byte) (bool, []byte, error) {
	if len(data) < 1 {
		return false, nil, fmt.Errorf("aggs: truncated state (bool)")
	}
	return data[0] != 0, data[1:], nil
}

func takeValue(data []byte) (types.Value, []byte, error) {
	var v types.Value
	if len(data) < 1 {
		return v, nil, fmt.Errorf("aggs: truncated state (value kind)")
	}
	v.K = types.Kind(data[0])
	data = data[1:]
	var err error
	if v.I, data, err = takeI64(data); err != nil {
		return v, nil, err
	}
	if v.F, data, err = takeF64(data); err != nil {
		return v, nil, err
	}
	n, w := binary.Uvarint(data)
	if w <= 0 || uint64(len(data)-w) < n {
		return v, nil, fmt.Errorf("aggs: truncated state (string)")
	}
	v.S = string(data[w : w+int(n)])
	return v, data[w+int(n):], nil
}
