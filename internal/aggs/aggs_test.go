package aggs

import (
	"math"
	"testing"
	"testing/quick"

	"sqlsheet/internal/types"
)

func feed(t *testing.T, name string, vals ...float64) types.Value {
	t.Helper()
	a, err := New(name, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		a.Add(types.NewFloat(v))
	}
	return a.Result()
}

func TestSum(t *testing.T) {
	a, _ := New("sum", false)
	if !a.Result().IsNull() {
		t.Error("empty sum must be NULL")
	}
	a.Add(types.NewInt(2))
	a.Add(types.NewInt(3))
	a.Add(types.Null)
	if r := a.Result(); r.K != types.KindInt || r.I != 5 {
		t.Errorf("int sum = %v", r)
	}
	a.Add(types.NewFloat(0.5))
	if r := a.Result(); r.K != types.KindFloat || r.F != 5.5 {
		t.Errorf("mixed sum = %v", r)
	}
	a.Remove(types.NewInt(2))
	if r := a.Result(); r.F != 3.5 {
		t.Errorf("after remove = %v", r)
	}
	a.Reset()
	if !a.Result().IsNull() {
		t.Error("reset broken")
	}
}

func TestCount(t *testing.T) {
	a, _ := New("count", false)
	a.Add(types.NewInt(1))
	a.Add(types.Null)
	a.Add(types.NewString("x"))
	if r := a.Result(); r.I != 2 {
		t.Errorf("count = %v", r)
	}
	star, _ := New("count", true)
	star.Add(types.Null)
	star.Add(types.NewInt(1))
	if r := star.Result(); r.I != 2 {
		t.Errorf("count(*) = %v", r)
	}
	star.Remove(types.Null)
	if r := star.Result(); r.I != 1 {
		t.Errorf("count(*) after remove = %v", r)
	}
}

func TestAvg(t *testing.T) {
	if r := feed(t, "avg", 1, 2, 3); r.F != 2 {
		t.Errorf("avg = %v", r)
	}
	a, _ := New("avg", false)
	if !a.Result().IsNull() {
		t.Error("empty avg must be NULL")
	}
}

func TestMinMax(t *testing.T) {
	if r := feed(t, "min", 3, 1, 2); r.F != 1 {
		t.Errorf("min = %v", r)
	}
	if r := feed(t, "max", 3, 1, 2); r.F != 3 {
		t.Errorf("max = %v", r)
	}
	a, _ := New("min", false)
	if a.Invertible() {
		t.Error("min must not be invertible")
	}
	a.Add(types.NewString("b"))
	a.Add(types.NewString("a"))
	if r := a.Result(); r.S != "a" {
		t.Errorf("string min = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("min.Remove must panic")
		}
	}()
	a.Remove(types.NewString("a"))
}

func TestSlope(t *testing.T) {
	// y = 3x + 1 has slope exactly 3.
	a, _ := New("slope", false)
	for x := 1; x <= 10; x++ {
		a.Add(types.NewFloat(3*float64(x)+1), types.NewInt(int64(x)))
	}
	if r := a.Result(); math.Abs(r.F-3) > 1e-9 {
		t.Errorf("slope = %v", r)
	}
	// Fewer than 2 points, or zero x-variance → NULL.
	b, _ := New("slope", false)
	b.Add(types.NewFloat(1), types.NewFloat(5))
	if !b.Result().IsNull() {
		t.Error("1-point slope must be NULL")
	}
	b.Add(types.NewFloat(2), types.NewFloat(5))
	if !b.Result().IsNull() {
		t.Error("zero-variance slope must be NULL")
	}
	// Remove restores the earlier state.
	a.Add(types.NewFloat(100), types.NewFloat(11))
	a.Remove(types.NewFloat(100), types.NewFloat(11))
	if r := a.Result(); math.Abs(r.F-3) > 1e-9 {
		t.Errorf("slope after add/remove = %v", r)
	}
}

func TestIsAggregateAndArity(t *testing.T) {
	for _, n := range []string{"sum", "count", "avg", "min", "max", "slope"} {
		if !IsAggregate(n) {
			t.Errorf("%s must be an aggregate", n)
		}
	}
	if IsAggregate("upper") || IsAggregate("") {
		t.Error("non-aggregates misclassified")
	}
	if NumArgs("slope") != 2 || NumArgs("sum") != 1 {
		t.Error("arity broken")
	}
	if _, err := New("median", false); err == nil {
		t.Error("unknown aggregate must error")
	}
}

func TestAddRemoveInverseProperty(t *testing.T) {
	// Property: for invertible aggregates, Add(x); Remove(x) is an identity
	// on Result(), for any prior state.
	f := func(base []int16, x int16) bool {
		for _, name := range []string{"sum", "count", "avg"} {
			a, _ := New(name, false)
			for _, b := range base {
				a.Add(types.NewInt(int64(b)))
			}
			before := a.Result()
			a.Add(types.NewInt(int64(x)))
			a.Remove(types.NewInt(int64(x)))
			after := a.Result()
			if before.IsNull() != after.IsNull() {
				return false
			}
			if !before.IsNull() && math.Abs(before.Float()-after.Float()) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
