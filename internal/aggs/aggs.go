// Package aggs implements the aggregate functions usable both in GROUP BY
// queries and over spreadsheet cell ranges: SUM, COUNT, AVG, MIN, MAX and
// SLOPE (ANSI linear-regression slope, REGR_SLOPE).
//
// Aggregates expose incremental Add and, where an algebraic inverse exists,
// Remove. The paper's Auto-Acyclic algorithm exploits inverses to maintain
// already-computed aggregates when a formula updates a contributing cell,
// avoiding rescans ("aggregates ... are updated by applying the current
// value and inverse of the old value of the measure").
package aggs

import (
	"fmt"

	"sqlsheet/internal/types"
)

// IsAggregate reports whether name is a supported aggregate function.
func IsAggregate(name string) bool {
	switch name {
	case "sum", "count", "avg", "min", "max", "slope":
		return true
	}
	return false
}

// NumArgs returns the number of measure arguments the aggregate takes.
func NumArgs(name string) int {
	if name == "slope" {
		return 2
	}
	return 1
}

// Agg accumulates values incrementally.
type Agg interface {
	// Add feeds one row's argument values (two for slope: y then x).
	Add(vals ...types.Value)
	// Remove undoes a prior Add. It must only be called when Invertible.
	Remove(vals ...types.Value)
	// Invertible reports whether Remove is supported.
	Invertible() bool
	// Result returns the current aggregate value.
	Result() types.Value
	// Reset returns the aggregate to its initial state.
	Reset()
}

// Merger is implemented by aggregates whose partial states combine: all six
// built-ins, including MIN/MAX whose merge is a fold of one partial's extreme
// into the other. The parallel group-by and the scatter-gather coordinator
// compute per-morsel partials and merge them in morsel order; because each
// partial accumulates its rows in input order and Merge folds states in
// morsel order, the merged state is bit-identical to one serial scan.
// (Merge-combinable is weaker than Invertible: MIN/MAX still have no inverse,
// the restriction the paper applies to single-scan aggregate maintenance.)
type Merger interface {
	// Merge folds other — an accumulator of the same concrete type — into
	// the receiver.
	Merge(other Agg)
}

// Mergeable reports whether name's accumulator supports partial-state
// merging (and so can participate in parallel partial aggregation).
func Mergeable(name string) bool {
	a, err := New(name, false)
	if err != nil {
		return false
	}
	_, ok := a.(Merger)
	return ok
}

// New constructs an aggregate accumulator. star marks COUNT(*).
func New(name string, star bool) (Agg, error) {
	switch name {
	case "sum":
		return &sumAgg{}, nil
	case "count":
		return &countAgg{star: star}, nil
	case "avg":
		return &avgAgg{}, nil
	case "min":
		return &minmaxAgg{min: true}, nil
	case "max":
		return &minmaxAgg{}, nil
	case "slope":
		return &slopeAgg{}, nil
	}
	return nil, fmt.Errorf("unknown aggregate %q", name)
}

// sumAgg sums numeric values, ignoring NULLs; integer-only input keeps an
// integer result. No rows (or all NULLs) yields NULL.
type sumAgg struct {
	n        int64 // non-null count
	isum     int64
	fsum     float64
	sawFloat bool
}

func (a *sumAgg) Add(vals ...types.Value) {
	v := vals[0]
	if v.IsNull() || !v.IsNumeric() {
		return
	}
	a.n++
	if v.K == types.KindFloat {
		a.sawFloat = true
	}
	a.isum += v.Int()
	a.fsum += v.Float()
}

func (a *sumAgg) Remove(vals ...types.Value) {
	v := vals[0]
	if v.IsNull() || !v.IsNumeric() {
		return
	}
	a.n--
	a.isum -= v.Int()
	a.fsum -= v.Float()
}

func (a *sumAgg) Invertible() bool { return true }

func (a *sumAgg) Merge(other Agg) {
	b := other.(*sumAgg)
	a.n += b.n
	a.isum += b.isum
	a.fsum += b.fsum
	a.sawFloat = a.sawFloat || b.sawFloat
}

func (a *sumAgg) Result() types.Value {
	if a.n == 0 {
		return types.Null
	}
	if a.sawFloat {
		return types.NewFloat(a.fsum)
	}
	return types.NewInt(a.isum)
}

func (a *sumAgg) Reset() { *a = sumAgg{} }

// countAgg counts rows (*) or non-null arguments.
type countAgg struct {
	star bool
	n    int64
}

func (a *countAgg) Add(vals ...types.Value) {
	if a.star || (len(vals) > 0 && !vals[0].IsNull()) {
		a.n++
	}
}

func (a *countAgg) Remove(vals ...types.Value) {
	if a.star || (len(vals) > 0 && !vals[0].IsNull()) {
		a.n--
	}
}

func (a *countAgg) Invertible() bool    { return true }
func (a *countAgg) Merge(other Agg)     { a.n += other.(*countAgg).n }
func (a *countAgg) Result() types.Value { return types.NewInt(a.n) }
func (a *countAgg) Reset()              { a.n = 0 }

// avgAgg is SUM/COUNT over non-null numeric values.
type avgAgg struct {
	n   int64
	sum float64
}

func (a *avgAgg) Add(vals ...types.Value) {
	v := vals[0]
	if v.IsNull() || !v.IsNumeric() {
		return
	}
	a.n++
	a.sum += v.Float()
}

func (a *avgAgg) Remove(vals ...types.Value) {
	v := vals[0]
	if v.IsNull() || !v.IsNumeric() {
		return
	}
	a.n--
	a.sum -= v.Float()
}

func (a *avgAgg) Invertible() bool { return true }

func (a *avgAgg) Merge(other Agg) {
	b := other.(*avgAgg)
	a.n += b.n
	a.sum += b.sum
}

func (a *avgAgg) Result() types.Value {
	if a.n == 0 {
		return types.Null
	}
	return types.NewFloat(a.sum / float64(a.n))
}

func (a *avgAgg) Reset() { *a = avgAgg{} }

// minmaxAgg keeps the extreme value. It has no inverse (removing the current
// extreme would require the full multiset), which is exactly why the paper
// restricts the single-scan aggregate-maintenance optimization to aggregates
// "for which an inverse is defined (for example, SUM, COUNT etc.)".
type minmaxAgg struct {
	min   bool
	seen  bool
	value types.Value
}

func (a *minmaxAgg) Add(vals ...types.Value) {
	v := vals[0]
	if v.IsNull() {
		return
	}
	if !a.seen {
		a.seen = true
		a.value = v
		return
	}
	c := types.Compare(v, a.value)
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.value = v
	}
}

func (a *minmaxAgg) Remove(vals ...types.Value) {
	panic("min/max aggregate is not invertible")
}

func (a *minmaxAgg) Invertible() bool { return false }

// Merge folds another partial's extreme in. The strict comparison mirrors
// Add: on ties (e.g. int 1 vs float 1.0, which Compare orders equal) the
// receiver's earlier value wins, exactly as a serial scan would keep the
// first-seen extreme — so morsel-ordered merges stay bit-identical.
func (a *minmaxAgg) Merge(other Agg) {
	b := other.(*minmaxAgg)
	if !b.seen {
		return
	}
	if !a.seen {
		a.seen, a.value = true, b.value
		return
	}
	c := types.Compare(b.value, a.value)
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.value = b.value
	}
}

func (a *minmaxAgg) Result() types.Value {
	if !a.seen {
		return types.Null
	}
	return a.value
}

func (a *minmaxAgg) Reset() { *a = minmaxAgg{min: a.min} }

// slopeAgg computes the ANSI REGR_SLOPE of (y, x) pairs:
//
//	slope = (n·Σxy − Σx·Σy) / (n·Σx² − (Σx)²)
//
// It is algebraically invertible, so it participates in the single-scan
// optimization alongside SUM and COUNT.
type slopeAgg struct {
	n                int64
	sx, sy, sxy, sxx float64
}

func (a *slopeAgg) Add(vals ...types.Value) {
	y, x := vals[0], vals[1]
	if y.IsNull() || x.IsNull() || !y.IsNumeric() || !x.IsNumeric() {
		return
	}
	xf, yf := x.Float(), y.Float()
	a.n++
	a.sx += xf
	a.sy += yf
	a.sxy += xf * yf
	a.sxx += xf * xf
}

func (a *slopeAgg) Remove(vals ...types.Value) {
	y, x := vals[0], vals[1]
	if y.IsNull() || x.IsNull() || !y.IsNumeric() || !x.IsNumeric() {
		return
	}
	xf, yf := x.Float(), y.Float()
	a.n--
	a.sx -= xf
	a.sy -= yf
	a.sxy -= xf * yf
	a.sxx -= xf * xf
}

func (a *slopeAgg) Invertible() bool { return true }

func (a *slopeAgg) Merge(other Agg) {
	b := other.(*slopeAgg)
	a.n += b.n
	a.sx += b.sx
	a.sy += b.sy
	a.sxy += b.sxy
	a.sxx += b.sxx
}

func (a *slopeAgg) Result() types.Value {
	den := float64(a.n)*a.sxx - a.sx*a.sx
	if a.n < 2 || den == 0 {
		return types.Null
	}
	return types.NewFloat((float64(a.n)*a.sxy - a.sx*a.sy) / den)
}

func (a *slopeAgg) Reset() { *a = slopeAgg{} }
