package aggs

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sqlsheet/internal/types"
)

// bitsEqual compares two values at the representation level: kinds, integer
// payloads, exact IEEE-754 float bits (NaN ≡ NaN, +0 ≢ -0) and string bytes.
func bitsEqual(a, b types.Value) bool {
	return a.K == b.K && a.I == b.I &&
		math.Float64bits(a.F) == math.Float64bits(b.F) && a.S == b.S
}

// aggCases enumerates every (name, star) accumulator configuration.
func aggCases() []struct {
	name string
	star bool
} {
	return []struct {
		name string
		star bool
	}{
		{"sum", false}, {"count", false}, {"count", true},
		{"avg", false}, {"min", false}, {"max", false}, {"slope", false},
	}
}

// valueStreams builds adversarial input streams: NaN/Inf columns, all-NULL
// columns, signed zeros, int/float ties landing in different morsels,
// dictionary-overflow string populations (> 256 distinct values, the
// colstore dict limit), and large random mixes.
func valueStreams() map[string][][]types.Value {
	rng := rand.New(rand.NewSource(42))
	streams := map[string][][]types.Value{}
	add := func(name string, rows ...[]types.Value) { streams[name] = rows }

	add("empty")
	add("single", []types.Value{types.NewInt(7), types.NewInt(3)})
	add("all-null", func() [][]types.Value {
		var rows [][]types.Value
		for i := 0; i < 97; i++ {
			rows = append(rows, []types.Value{types.Null, types.Null})
		}
		return rows
	}()...)
	add("nan-inf", [][]types.Value{
		{types.NewFloat(math.NaN()), types.NewFloat(1)},
		{types.NewFloat(math.Inf(1)), types.NewFloat(2)},
		{types.NewFloat(math.Inf(-1)), types.NewFloat(math.NaN())},
		{types.NewFloat(0), types.NewFloat(math.Inf(1))},
		{types.NewFloat(math.Copysign(0, -1)), types.NewFloat(3)},
		{types.Null, types.NewFloat(4)},
		{types.NewFloat(math.NaN()), types.NewFloat(math.NaN())},
	}...)
	// An int/float tie (Compare orders 5 and 5.0 equal): first-seen must
	// win after morsel-ordered merging, exactly as in a serial scan.
	add("tie-across-morsels", [][]types.Value{
		{types.NewFloat(5), types.NewInt(1)},
		{types.NewInt(5), types.NewInt(2)},
		{types.NewInt(5), types.NewInt(3)},
		{types.NewFloat(5), types.NewInt(4)},
		{types.NewInt(5), types.NewInt(5)},
	}...)
	add("dict-overflow", func() [][]types.Value {
		var rows [][]types.Value
		for i := 0; i < 600; i++ {
			s := fmt.Sprintf("key-%04d-%s", i%311, strings.Repeat("x", i%17))
			rows = append(rows, []types.Value{types.NewString(s), types.NewInt(int64(i))})
		}
		return rows
	}()...)
	add("random-mix", func() [][]types.Value {
		var rows [][]types.Value
		for i := 0; i < 1000; i++ {
			row := make([]types.Value, 2)
			for j := range row {
				switch rng.Intn(6) {
				case 0:
					row[j] = types.Null
				case 1:
					row[j] = types.NewInt(rng.Int63n(2000) - 1000)
				case 2:
					row[j] = types.NewFloat((rng.Float64() - 0.5) * 1e6)
				case 3:
					row[j] = types.NewFloat(rng.Float64() * 1e-3)
				case 4:
					row[j] = types.NewString(fmt.Sprintf("s%d", rng.Intn(500)))
				default:
					row[j] = types.NewBool(rng.Intn(2) == 0)
				}
			}
			rows = append(rows, row)
		}
		return rows
	}()...)
	return streams
}

const testMorsel = 128 // rows per morsel in the simulations below

// shardGrid simulates the scatter-gather topology over a keyed stream: rows
// carry a group key, each group's key is consistent-hashed to one of k
// shards, each shard accumulates per-(morsel, group) partials over its own
// rows in input order and round-trips them through the wire codec, and the
// coordinator merges partials morsel by morsel in the global first-seen
// group order. Returns the final per-group results in output row order.
//
// Morsel boundaries are a pure function of the input size — never of k —
// which is the engine's byte-identity invariant: MorselSize is a documented
// result-affecting knob for float aggregation, shard count is not.
func shardGrid(t *testing.T, name string, star bool, keys []int, rows [][]types.Value, k int, viaCodec bool) ([]int, []types.Value) {
	t.Helper()
	nargs := NumArgs(name)
	owner := func(g int) int {
		h := fnv.New32a()
		fmt.Fprintf(h, "g%d", g)
		return int(h.Sum32()) % k
	}
	type partialKey struct{ morsel, group int }
	partials := map[partialKey]Agg{}
	// Per-shard accumulation, rows in global input order (each shard sees
	// the subsequence it owns, which for a single group is contiguous per
	// morsel — the same order a single process would use).
	for i, row := range rows {
		pk := partialKey{i / testMorsel, keys[i]}
		_ = owner(keys[i]) // ownership only decides *who* computes; order is fixed
		acc, ok := partials[pk]
		if !ok {
			acc, _ = New(name, star)
			partials[pk] = acc
		}
		acc.Add(row[:nargs]...)
	}
	if viaCodec {
		for pk, acc := range partials {
			buf := AppendState(nil, acc)
			restored, err := New(name, star)
			if err != nil {
				t.Fatal(err)
			}
			rest, err := LoadState(restored, buf)
			if err != nil {
				t.Fatalf("LoadState: %v", err)
			}
			if len(rest) != 0 {
				t.Fatalf("LoadState left %d trailing bytes", len(rest))
			}
			if got := AppendState(nil, restored); string(got) != string(buf) {
				t.Fatalf("state re-encode mismatch:\n  %x\n  %x", buf, got)
			}
			partials[pk] = restored
		}
	}
	// Coordinator merge: morsels in order, groups in global first-seen
	// order within each morsel, Merge-folding each partial into the
	// group's running accumulator.
	var order []int
	merged := map[int]Agg{}
	nMorsels := (len(rows) + testMorsel - 1) / testMorsel
	for m := 0; m < nMorsels; m++ {
		var firstSeen []int
		seen := map[int]bool{}
		for i := m * testMorsel; i < len(rows) && i < (m+1)*testMorsel; i++ {
			if !seen[keys[i]] {
				seen[keys[i]] = true
				firstSeen = append(firstSeen, keys[i])
			}
		}
		for _, g := range firstSeen {
			p := partials[partialKey{m, g}]
			acc, ok := merged[g]
			if !ok {
				acc, _ = New(name, star)
				merged[g] = acc
				order = append(order, g)
			}
			acc.(Merger).Merge(p)
		}
	}
	results := make([]types.Value, len(order))
	for i, g := range order {
		results[i] = merged[g].Result()
	}
	return order, results
}

// TestEveryAggregateMergeCombinable is the distribution correctness property:
// for every aggregate, the morsel-fold reference result (1 shard, in-process
// states) is bit-identical — exact float bits, exact output row order — to
// computing the same per-morsel partials on 2 or 4 shards, shipping them
// through the AppendState/LoadState wire codec, and merging morsel-ordered.
func TestEveryAggregateMergeCombinable(t *testing.T) {
	for sname, rows := range valueStreams() {
		keys := make([]int, len(rows))
		for i := range keys {
			keys[i] = i % 7 // several groups so 2/4 shards both split the work
		}
		for _, c := range aggCases() {
			t.Run(fmt.Sprintf("%s/%s_star=%v", sname, c.name, c.star), func(t *testing.T) {
				if !Mergeable(c.name) {
					t.Fatalf("Mergeable(%q) = false", c.name)
				}
				wantOrder, want := shardGrid(t, c.name, c.star, keys, rows, 1, false)
				for _, shards := range []int{1, 2, 4} {
					gotOrder, got := shardGrid(t, c.name, c.star, keys, rows, shards, true)
					if len(gotOrder) != len(wantOrder) || len(got) != len(want) {
						t.Fatalf("%d shards: %d groups, want %d", shards, len(gotOrder), len(wantOrder))
					}
					for i := range want {
						if gotOrder[i] != wantOrder[i] {
							t.Fatalf("%d shards: output row %d is group %d, want %d (order not preserved)",
								shards, i, gotOrder[i], wantOrder[i])
						}
						if !bitsEqual(got[i], want[i]) {
							t.Errorf("%d shards: group %d: got %#v, want %#v", shards, gotOrder[i], got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestSerialEqualsMorselFold pins the base contract the grid test builds on:
// on streams whose float sums are exact (integral values, NULLs, strings,
// ties, NaN/Inf propagation), a plain serial Add loop matches the
// morsel-partial fold bit for bit.
func TestSerialEqualsMorselFold(t *testing.T) {
	streams := valueStreams()
	for _, sname := range []string{"empty", "single", "all-null", "nan-inf", "tie-across-morsels", "dict-overflow"} {
		rows := streams[sname]
		for _, c := range aggCases() {
			t.Run(fmt.Sprintf("%s/%s_star=%v", sname, c.name, c.star), func(t *testing.T) {
				serial, err := New(c.name, c.star)
				if err != nil {
					t.Fatal(err)
				}
				nargs := NumArgs(c.name)
				for _, row := range rows {
					serial.Add(row[:nargs]...)
				}
				merged, _ := New(c.name, c.star)
				for lo := 0; lo <= len(rows); lo += testMorsel {
					hi := lo + testMorsel
					if hi > len(rows) {
						hi = len(rows)
					}
					part, _ := New(c.name, c.star)
					for _, row := range rows[lo:hi] {
						part.Add(row[:nargs]...)
					}
					merged.(Merger).Merge(part)
					if hi == len(rows) {
						break
					}
				}
				if got, want := merged.Result(), serial.Result(); !bitsEqual(got, want) {
					t.Errorf("morsel fold: got %#v, want %#v", got, want)
				}
			})
		}
	}
}

// TestLoadStateErrors checks the codec rejects mismatched and truncated
// states instead of silently corrupting an accumulator.
func TestLoadStateErrors(t *testing.T) {
	sum, _ := New("sum", false)
	sum.Add(types.NewInt(1))
	buf := AppendState(nil, sum)

	cnt, _ := New("count", false)
	if _, err := LoadState(cnt, buf); err == nil {
		t.Error("loading a sum state into a count accumulator should fail")
	}
	fresh, _ := New("sum", false)
	if _, err := LoadState(fresh, buf[:len(buf)-1]); err == nil {
		t.Error("truncated state should fail")
	}
	if _, err := LoadState(fresh, nil); err == nil {
		t.Error("empty state should fail")
	}

	mm, _ := New("max", false)
	mm.Add(types.NewString("overflow-" + strings.Repeat("y", 300)))
	mbuf := AppendState(nil, mm)
	restored, _ := New("max", false)
	if _, err := LoadState(restored, mbuf); err != nil {
		t.Fatalf("LoadState(max string): %v", err)
	}
	if !bitsEqual(restored.Result(), mm.Result()) {
		t.Error("string extreme did not round-trip")
	}
}
