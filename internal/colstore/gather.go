package colstore

import "sqlsheet/internal/types"

// Gather builds a dense column holding rows idx[0], idx[1], ... of c. An
// index of -1 yields a NULL slot — the join's null-extended side. The
// result keeps c's representation where possible: dictionary columns share
// the source dictionary (codes are gathered, the dict itself is immutable),
// typed columns gather their vectors, boxed columns gather boxed values.
// Gather(c, idx).Value(k) == c.Value(idx[k]) bit for bit (types.Null for -1).
func Gather(c *Column, idx []int32) *Column {
	n := len(idx)
	out := &Column{Kind: c.Kind, N: n}
	if c.Boxed != nil {
		out.Boxed = make([]types.Value, n)
		for k, i := range idx {
			if i >= 0 {
				out.Boxed[k] = c.Boxed[i]
			}
		}
		return out
	}
	if c.Kind == types.KindNull {
		out.Nulls = NewBitmap(n)
		for k := range idx {
			out.Nulls.Set(k)
		}
		return out
	}
	setNull := func(k int) {
		if out.Nulls == nil {
			out.Nulls = NewBitmap(n)
		}
		out.Nulls.Set(k)
	}
	switch c.Kind {
	case types.KindInt, types.KindBool:
		out.Ints = make([]int64, n)
		for k, i := range idx {
			if i < 0 || (c.Nulls != nil && c.Nulls.Get(int(i))) {
				setNull(k)
				continue
			}
			out.Ints[k] = c.Ints[i]
		}
	case types.KindFloat:
		out.Floats = make([]float64, n)
		for k, i := range idx {
			if i < 0 || (c.Nulls != nil && c.Nulls.Get(int(i))) {
				setNull(k)
				continue
			}
			out.Floats[k] = c.Floats[i]
		}
	case types.KindString:
		if c.Dict != nil {
			out.Dict, out.dictIdx = c.Dict, c.dictIdx
			out.Codes = make([]uint32, n)
			for k, i := range idx {
				if i < 0 || (c.Nulls != nil && c.Nulls.Get(int(i))) {
					setNull(k)
					continue
				}
				out.Codes[k] = c.Codes[i]
			}
		} else {
			out.Strs = make([]string, n)
			for k, i := range idx {
				if i < 0 || (c.Nulls != nil && c.Nulls.Get(int(i))) {
					setNull(k)
					continue
				}
				out.Strs[k] = c.Strs[i]
			}
		}
	}
	return out
}

// Builder accumulates rows into a columnar Table one row at a time, copying
// the values immediately — callers may reuse or mutate the row after Append
// (the spreadsheet frame scan hands out rows that must not be retained).
type Builder struct {
	vals [][]types.Value
	n    int
}

// NewBuilder returns a builder for rows of ncols values.
func NewBuilder(ncols int) *Builder {
	return &Builder{vals: make([][]types.Value, ncols)}
}

// Append copies one row into the builder.
func (b *Builder) Append(row types.Row) {
	for ci := range b.vals {
		b.vals[ci] = append(b.vals[ci], row[ci])
	}
	b.n++
}

// Len returns the number of rows appended.
func (b *Builder) Len() int { return b.n }

// Build materializes the columnar image with the same representation
// decisions as FromRows (typed vectors, null bitmaps, dictionary encoding
// with plain-string overflow). The builder must not be reused afterwards.
func (b *Builder) Build() *Table {
	t := &Table{NRows: b.n, Cols: make([]*Column, len(b.vals))}
	for ci := range b.vals {
		t.Cols[ci] = buildColumnVals(b.vals[ci])
	}
	return t
}

// FromValues builds one column from boxed values with the same
// representation decisions as a full image build (typed vectors, null
// bitmaps, dictionary encoding with plain-string overflow, boxed storage
// for mixed kinds). The slice may be retained (mixed-kind columns keep it).
func FromValues(vals []types.Value) *Column {
	return buildColumnVals(vals)
}

// Broadcast builds an n-row column where every slot holds v — the columnar
// form of a per-rule constant (a partition-key value, a computed aggregate)
// extended over a selection.
func Broadcast(v types.Value, n int) *Column {
	if v.IsNull() {
		c := &Column{Kind: types.KindNull, N: n, Nulls: NewBitmap(n)}
		for i := 0; i < n; i++ {
			c.Nulls.Set(i)
		}
		return c
	}
	c := &Column{Kind: v.K, N: n}
	switch v.K {
	case types.KindInt, types.KindBool:
		c.Ints = make([]int64, n)
		for i := range c.Ints {
			c.Ints[i] = v.I
		}
	case types.KindFloat:
		c.Floats = make([]float64, n)
		for i := range c.Floats {
			c.Floats[i] = v.F
		}
	case types.KindString:
		c.Strs = make([]string, n)
		for i := range c.Strs {
			c.Strs[i] = v.S
		}
	}
	return c
}

// buildColumnVals is buildColumn over column-major boxed values: the same
// two passes deciding representation, then filling exact-sized vectors.
func buildColumnVals(vals []types.Value) *Column {
	n := len(vals)
	kind := types.KindNull
	hasNull := false
	mixed := false
	for _, v := range vals {
		if v.IsNull() {
			hasNull = true
			continue
		}
		if kind == types.KindNull {
			kind = v.K
		} else if v.K != kind {
			mixed = true
			break
		}
	}
	if mixed {
		return &Column{Kind: types.KindNull, N: n, Boxed: vals}
	}
	c := &Column{Kind: kind, N: n}
	if kind == types.KindNull {
		c.Nulls = NewBitmap(n)
		for i := 0; i < n; i++ {
			c.Nulls.Set(i)
		}
		return c
	}
	if hasNull {
		c.Nulls = NewBitmap(n)
	}
	switch kind {
	case types.KindInt, types.KindBool:
		c.Ints = make([]int64, n)
		for i, v := range vals {
			if v.IsNull() {
				c.Nulls.Set(i)
			} else {
				c.Ints[i] = v.I
			}
		}
	case types.KindFloat:
		c.Floats = make([]float64, n)
		for i, v := range vals {
			if v.IsNull() {
				c.Nulls.Set(i)
			} else {
				c.Floats[i] = v.F
			}
		}
	case types.KindString:
		fillStringVals(c, vals)
	}
	return c
}

// fillStringVals dictionary-encodes a string column from boxed values,
// falling back to plain storage when the dictionary overflows.
func fillStringVals(c *Column, vals []types.Value) {
	n := len(vals)
	dictIdx := make(map[string]uint32)
	dict := make([]string, 0, 16)
	codes := make([]uint32, n)
	for i, v := range vals {
		if v.IsNull() {
			c.Nulls.Set(i)
			continue
		}
		code, ok := dictIdx[v.S]
		if !ok {
			if len(dict) >= DictMaxEntries {
				c.Strs = make([]string, n)
				for j, vv := range vals {
					if vv.IsNull() {
						c.Nulls.Set(j)
					} else {
						c.Strs[j] = vv.S
					}
				}
				return
			}
			code = uint32(len(dict))
			dict = append(dict, v.S)
			dictIdx[v.S] = code
		}
		codes[i] = code
	}
	c.Dict, c.Codes, c.dictIdx = dict, codes, dictIdx
}
