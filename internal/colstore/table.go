package colstore

import "sqlsheet/internal/types"

// Table is the column-major image of a row relation. Rows is the source
// row slice the image was built from: vectorized filters emit these very
// row values (never re-materialized ones), so results are pointer-identical
// to what the row-at-a-time path produces.
type Table struct {
	NRows int
	Cols  []*Column
	Rows  []types.Row
}

// Rectangular reports whether every row has exactly ncols values; only
// rectangular row sets have a columnar image.
func Rectangular(ncols int, rows []types.Row) bool {
	for _, r := range rows {
		if len(r) != ncols {
			return false
		}
	}
	return true
}

// FromRows builds the columnar image of rows, or nil when rows are ragged.
func FromRows(ncols int, rows []types.Row) *Table {
	if !Rectangular(ncols, rows) {
		return nil
	}
	t := &Table{NRows: len(rows), Cols: make([]*Column, ncols), Rows: rows}
	for ci := range t.Cols {
		t.Cols[ci] = buildColumn(ci, rows)
	}
	return t
}

// WithExtra returns a table sharing t's columns with extra appended — the
// extended image a rule kernel runs over, where leaf ordinals past the
// schema resolve to caller-populated columns. t itself is not modified.
func (t *Table) WithExtra(extra []*Column) *Table {
	cols := make([]*Column, 0, len(t.Cols)+len(extra))
	cols = append(cols, t.Cols...)
	cols = append(cols, extra...)
	return &Table{NRows: t.NRows, Cols: cols, Rows: t.Rows}
}

// NumChunks returns the number of ChunkSize-row chunks covering the table.
func (t *Table) NumChunks() int { return (t.NRows + ChunkSize - 1) / ChunkSize }

// ChunkBounds returns the [lo, hi) row range of chunk k.
func (t *Table) ChunkBounds(k int) (lo, hi int) {
	lo = k * ChunkSize
	hi = lo + ChunkSize
	if hi > t.NRows {
		hi = t.NRows
	}
	return lo, hi
}
