package colstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"sqlsheet/internal/types"
)

// Page codec: a block of rows serialized column-major with per-column
// dictionary and varint compression. The spill store writes one page per
// evicted block; pages decode back to the exact rows encoded (kinds
// preserved, including mixed-kind columns via the boxed representation).
//
//	page   := nrows:uvarint ncols:uvarint column*
//	column := repr:byte nulls? payload
//	repr   := 0 all-null | 1 int | 2 float | 3 string-plain |
//	          4 string-dict | 5 bool | 6 boxed
//	nulls  := hasNulls:byte [bitmap: ceil(nrows/64)*8 bytes]   (repr 1..5)
//
// Typed payloads carry only non-NULL slots in row order; the null bitmap
// says which slots were skipped. Boxed columns carry every slot kind-tagged,
// the same value encoding as the legacy row codec.
const (
	pageAllNull byte = iota
	pageInt
	pageFloat
	pageStrPlain
	pageStrDict
	pageBool
	pageBoxed
)

// AppendPage appends the page encoding of rows to buf. ok=false means the
// rows are ragged (no columnar image); the caller keeps its row codec.
func AppendPage(buf []byte, ncols int, rows []types.Row) ([]byte, bool) {
	t := FromRows(ncols, rows)
	if t == nil {
		return buf, false
	}
	buf = binary.AppendUvarint(buf, uint64(t.NRows))
	buf = binary.AppendUvarint(buf, uint64(ncols))
	for _, c := range t.Cols {
		buf = appendColumn(buf, c)
	}
	return buf, true
}

func appendColumn(buf []byte, c *Column) []byte {
	if c.Boxed != nil {
		buf = append(buf, pageBoxed)
		for _, v := range c.Boxed {
			buf = appendValue(buf, v)
		}
		return buf
	}
	if c.Kind == types.KindNull {
		return append(buf, pageAllNull)
	}
	switch c.Kind {
	case types.KindInt:
		buf = append(buf, pageInt)
	case types.KindFloat:
		buf = append(buf, pageFloat)
	case types.KindString:
		if c.IsDict() {
			buf = append(buf, pageStrDict)
		} else {
			buf = append(buf, pageStrPlain)
		}
	case types.KindBool:
		buf = append(buf, pageBool)
	}
	if c.Nulls != nil {
		buf = append(buf, 1)
		for _, w := range c.Nulls {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	} else {
		buf = append(buf, 0)
	}
	switch c.Kind {
	case types.KindInt:
		for i := 0; i < c.N; i++ {
			if !c.IsNull(i) {
				buf = binary.AppendVarint(buf, c.Ints[i])
			}
		}
	case types.KindFloat:
		for i := 0; i < c.N; i++ {
			if !c.IsNull(i) {
				buf = binary.AppendUvarint(buf, math.Float64bits(c.Floats[i]))
			}
		}
	case types.KindString:
		if c.IsDict() {
			buf = binary.AppendUvarint(buf, uint64(len(c.Dict)))
			for _, s := range c.Dict {
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				buf = append(buf, s...)
			}
			for i := 0; i < c.N; i++ {
				if !c.IsNull(i) {
					buf = binary.AppendUvarint(buf, uint64(c.Codes[i]))
				}
			}
		} else {
			for i := 0; i < c.N; i++ {
				if !c.IsNull(i) {
					buf = binary.AppendUvarint(buf, uint64(len(c.Strs[i])))
					buf = append(buf, c.Strs[i]...)
				}
			}
		}
	case types.KindBool:
		for i := 0; i < c.N; i++ {
			if !c.IsNull(i) {
				buf = append(buf, byte(c.Ints[i]))
			}
		}
	}
	return buf
}

func appendValue(buf []byte, v types.Value) []byte {
	buf = append(buf, byte(v.K))
	switch v.K {
	case types.KindInt, types.KindBool:
		buf = binary.AppendVarint(buf, v.I)
	case types.KindFloat:
		buf = binary.AppendUvarint(buf, math.Float64bits(v.F))
	case types.KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	}
	return buf
}

// DecodePage decodes a page back into rows.
func DecodePage(data []byte) ([]types.Row, error) {
	d := &pageDecoder{data: data}
	nrows := int(d.uv())
	ncols := int(d.uv())
	if d.err != nil {
		return nil, d.err
	}
	rows := make([]types.Row, nrows)
	flat := make([]types.Value, nrows*ncols)
	for i := range rows {
		rows[i] = flat[i*ncols : (i+1)*ncols : (i+1)*ncols]
	}
	for ci := 0; ci < ncols; ci++ {
		if err := d.column(rows, ci, nrows); err != nil {
			return nil, err
		}
	}
	return rows, d.err
}

type pageDecoder struct {
	data []byte
	pos  int
	err  error
}

func (d *pageDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("corrupt page at offset %d", d.pos)
	}
}

func (d *pageDecoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *pageDecoder) iv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *pageDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.fail()
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *pageDecoder) str() string {
	n := int(d.uv())
	if d.err != nil {
		return ""
	}
	if d.pos+n > len(d.data) {
		d.fail()
		return ""
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s
}

// nulls reads the optional null bitmap of a typed column.
func (d *pageDecoder) nulls(nrows int) Bitmap {
	if d.byte() == 0 {
		return nil
	}
	nb := NewBitmap(nrows)
	for i := range nb {
		if d.pos+8 > len(d.data) {
			d.fail()
			return nil
		}
		nb[i] = binary.LittleEndian.Uint64(d.data[d.pos:])
		d.pos += 8
	}
	return nb
}

func (d *pageDecoder) column(rows []types.Row, ci, nrows int) error {
	repr := d.byte()
	if d.err != nil {
		return d.err
	}
	switch repr {
	case pageAllNull:
		return nil // rows start out zeroed = NULL
	case pageBoxed:
		for i := 0; i < nrows; i++ {
			rows[i][ci] = d.value()
		}
		return d.err
	}
	nb := d.nulls(nrows)
	isNull := func(i int) bool { return nb != nil && nb.Get(i) }
	switch repr {
	case pageInt:
		for i := 0; i < nrows; i++ {
			if !isNull(i) {
				rows[i][ci] = types.Value{K: types.KindInt, I: d.iv()}
			}
		}
	case pageFloat:
		for i := 0; i < nrows; i++ {
			if !isNull(i) {
				rows[i][ci] = types.NewFloat(math.Float64frombits(d.uv()))
			}
		}
	case pageStrPlain:
		for i := 0; i < nrows; i++ {
			if !isNull(i) {
				rows[i][ci] = types.NewString(d.str())
			}
		}
	case pageStrDict:
		dict := make([]string, d.uv())
		for i := range dict {
			dict[i] = d.str()
		}
		for i := 0; i < nrows; i++ {
			if !isNull(i) {
				code := d.uv()
				if d.err != nil {
					return d.err
				}
				if code >= uint64(len(dict)) {
					d.fail()
					return d.err
				}
				rows[i][ci] = types.NewString(dict[code])
			}
		}
	case pageBool:
		for i := 0; i < nrows; i++ {
			if !isNull(i) {
				rows[i][ci] = types.Value{K: types.KindBool, I: int64(d.byte())}
			}
		}
	default:
		d.fail()
	}
	return d.err
}

func (d *pageDecoder) value() types.Value {
	k := types.Kind(d.byte())
	if d.err != nil {
		return types.Null
	}
	switch k {
	case types.KindNull:
		return types.Null
	case types.KindInt, types.KindBool:
		return types.Value{K: k, I: d.iv()}
	case types.KindFloat:
		return types.NewFloat(math.Float64frombits(d.uv()))
	case types.KindString:
		return types.NewString(d.str())
	}
	d.fail()
	return types.Null
}
