// Package colstore is the columnar chunk storage layer. A Table is the
// column-major image of a row relation: one typed vector per column
// (int64/float64/string/bool), a null bitmap when the column has NULLs, and
// dictionary encoding for low-cardinality string columns. Vectors are stored
// flat and addressed by global row index; processing happens over fixed-size
// chunks (ChunkSize rows) — the morsel pipeline hands kernels contiguous
// [lo,hi) ranges, so a "chunk" is a position range into the flat vectors
// rather than a separately allocated block. Columns that mix kinds across
// rows (legal in this engine: untyped catalog columns and spreadsheet
// working rows) demote to a boxed []types.Value vector, keeping the image
// lossless: Value(i) reconstructs exactly the value the row held, bit for
// bit, so vectorized and row-at-a-time execution produce identical bytes.
package colstore

import (
	"math"
	"sync"

	"sqlsheet/internal/types"
)

// ChunkSize is the nominal rows-per-chunk granularity of vectorized
// processing. Kernels accept arbitrary ranges; the executor slices work at
// morsel boundaries which default to this size.
const ChunkSize = 1024

// DictMaxEntries caps a string column's dictionary. Building past the cap
// abandons dictionary encoding and falls back to plain string storage — a
// high-cardinality column gains nothing from a dictionary and the per-code
// predicate precomputation kernels rely on would stop paying for itself.
const DictMaxEntries = 1 << 16

// Bitmap is a dense bit vector; bit i set means "row i is NULL" when used as
// a column's null bitmap.
type Bitmap []uint64

// NewBitmap returns a bitmap with capacity for n bits, all clear.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b[uint(i)>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[uint(i)>>6] |= 1 << (uint(i) & 63) }

// Column is one column of a Table. Exactly one representation is populated:
//
//   - Kind INT/BOOL: Ints (booleans store 0/1, mirroring types.Value.I)
//   - Kind FLOAT:    Floats
//   - Kind STRING:   Dict+Codes (dictionary-encoded) or Strs (plain)
//   - Kind NULL, Boxed nil:     every row is NULL (all-null column)
//   - Kind NULL, Boxed non-nil: mixed kinds, boxed row values
//
// Nulls, when non-nil, flags NULL rows of a typed column; the vector slot of
// a NULL row holds the zero element and must not be interpreted.
type Column struct {
	Kind  types.Kind
	N     int
	Nulls Bitmap

	Ints   []int64
	Floats []float64
	Strs   []string
	Dict   []string
	Codes  []uint32
	Boxed  []types.Value

	dictIdx map[string]uint32
}

// Len returns the number of rows.
func (c *Column) Len() int { return c.N }

// IsDict reports whether the column is dictionary-encoded.
func (c *Column) IsDict() bool { return c.Dict != nil }

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool {
	if c.Boxed != nil {
		return c.Boxed[i].IsNull()
	}
	if c.Kind == types.KindNull {
		return true
	}
	return c.Nulls != nil && c.Nulls.Get(i)
}

// Value reconstructs row i as a boxed scalar, exactly the value the source
// row held. Kernel fast paths avoid this; generic fallbacks and key encoding
// for boxed columns go through it.
func (c *Column) Value(i int) types.Value {
	if c.Boxed != nil {
		return c.Boxed[i]
	}
	if c.IsNull(i) {
		return types.Null
	}
	switch c.Kind {
	case types.KindInt:
		return types.Value{K: types.KindInt, I: c.Ints[i]}
	case types.KindBool:
		return types.Value{K: types.KindBool, I: c.Ints[i]}
	case types.KindFloat:
		return types.Value{K: types.KindFloat, F: c.Floats[i]}
	case types.KindString:
		return types.Value{K: types.KindString, S: c.Str(i)}
	}
	return types.Null
}

// NumFloat returns the numeric content of row i of an INT or FLOAT column
// widened to float64 (row i must not be NULL).
func (c *Column) NumFloat(i int) float64 {
	if c.Kind == types.KindInt {
		return float64(c.Ints[i])
	}
	return c.Floats[i]
}

// Str returns the string content of row i of a STRING column (not NULL).
func (c *Column) Str(i int) string {
	if c.Dict != nil {
		return c.Dict[c.Codes[i]]
	}
	return c.Strs[i]
}

// DictCode returns the dictionary code for s, if the column is
// dictionary-encoded and s occurs in it.
func (c *Column) DictCode(s string) (uint32, bool) {
	code, ok := c.dictIdx[s]
	return code, ok
}

// intKeyable reports whether f normalizes to an int64 under the engine's
// canonical numeric normalization (types.Equal / AppendKey treat an integral
// FLOAT as the equivalent INT).
func intKeyable(f float64) bool {
	return f == math.Trunc(f) && !math.IsInf(f, 0) && f >= math.MinInt64 && f <= math.MaxInt64
}

// AppendKey appends the canonical key encoding of row i to buf, byte for
// byte what types.AppendKey(buf, c.Value(i)) produces — including the
// integral-float-to-int normalization — without boxing on the typed paths.
func (c *Column) AppendKey(buf []byte, i int) []byte {
	if c.Boxed != nil {
		return types.AppendKey(buf, c.Boxed[i])
	}
	if c.IsNull(i) {
		return append(buf, 0x00)
	}
	switch c.Kind {
	case types.KindInt:
		return appendIntKey(buf, c.Ints[i])
	case types.KindFloat:
		f := c.Floats[i]
		if intKeyable(f) {
			return appendIntKey(buf, int64(f))
		}
		u := math.Float64bits(f)
		buf = append(buf, 0x02)
		return append(buf,
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	case types.KindString:
		s := c.Str(i)
		buf = append(buf, 0x03)
		n := len(s)
		buf = append(buf, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
		return append(buf, s...)
	case types.KindBool:
		if c.Ints[i] != 0 {
			return append(buf, 0x05)
		}
		return append(buf, 0x04)
	}
	return append(buf, 0x00)
}

func appendIntKey(buf []byte, v int64) []byte {
	buf = append(buf, 0x01)
	u := uint64(v)
	return append(buf,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// buildColumn materializes column ci of rows. Two passes: the first decides
// the representation (uniform kind? NULLs? dictionary-sized cardinality?),
// the second fills exact-sized vectors.
func buildColumn(ci int, rows []types.Row) *Column {
	n := len(rows)
	kind := types.KindNull
	hasNull := false
	mixed := false
	for _, r := range rows {
		v := r[ci]
		if v.IsNull() {
			hasNull = true
			continue
		}
		if kind == types.KindNull {
			kind = v.K
		} else if v.K != kind {
			mixed = true
			break
		}
	}
	if mixed {
		boxed := make([]types.Value, n)
		for i, r := range rows {
			boxed[i] = r[ci]
		}
		return &Column{Kind: types.KindNull, N: n, Boxed: boxed}
	}
	c := &Column{Kind: kind, N: n}
	if kind == types.KindNull {
		// All-null column: no vector at all.
		c.Nulls = NewBitmap(n)
		for i := 0; i < n; i++ {
			c.Nulls.Set(i)
		}
		return c
	}
	if hasNull {
		c.Nulls = NewBitmap(n)
	}
	switch kind {
	case types.KindInt, types.KindBool:
		c.Ints = make([]int64, n)
		for i, r := range rows {
			if v := r[ci]; v.IsNull() {
				c.Nulls.Set(i)
			} else {
				c.Ints[i] = v.I
			}
		}
	case types.KindFloat:
		c.Floats = make([]float64, n)
		for i, r := range rows {
			if v := r[ci]; v.IsNull() {
				c.Nulls.Set(i)
			} else {
				c.Floats[i] = v.F
			}
		}
	case types.KindString:
		fillString(c, ci, rows)
	}
	return c
}

// fillString dictionary-encodes a string column, falling back to plain
// storage when the dictionary overflows DictMaxEntries.
func fillString(c *Column, ci int, rows []types.Row) {
	n := len(rows)
	dictIdx := make(map[string]uint32)
	dict := make([]string, 0, 16)
	codes := make([]uint32, n)
	for i, r := range rows {
		v := r[ci]
		if v.IsNull() {
			c.Nulls.Set(i)
			continue
		}
		code, ok := dictIdx[v.S]
		if !ok {
			if len(dict) >= DictMaxEntries {
				// Overflow: abandon the dictionary, store plain strings.
				// Re-walk every row: NULL bits past position i haven't
				// been set yet (re-setting earlier ones is idempotent).
				c.Strs = make([]string, n)
				for j, rr := range rows {
					if rr[ci].IsNull() {
						c.Nulls.Set(j)
					} else {
						c.Strs[j] = rr[ci].S
					}
				}
				return
			}
			code = uint32(len(dict))
			dict = append(dict, v.S)
			dictIdx[v.S] = code
		}
		codes[i] = code
	}
	c.Dict, c.Codes, c.dictIdx = dict, codes, dictIdx
}

// selPool recycles selection-vector scratch buffers across morsels and
// statements (the chunk-recycling pool; exercised under -race by the
// parallel chunk scan).
var selPool = sync.Pool{New: func() any { return new([]int32) }}

// GetSel returns a selection scratch buffer with length 0 and capacity ≥ n.
// Return it with PutSel when the morsel is done.
func GetSel(n int) *[]int32 {
	p := selPool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, 0, n)
	}
	*p = (*p)[:0]
	return p
}

// PutSel recycles a buffer obtained from GetSel.
func PutSel(p *[]int32) { selPool.Put(p) }
