package colstore

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sqlsheet/internal/types"
)

// randValue draws a value from a distribution that covers every
// representation the column builder can choose: NULLs, small and extreme
// ints, integral and fractional floats (including NaN, ±Inf, and the int64
// normalization boundary), low-cardinality strings, and booleans.
func randValue(rng *rand.Rand) types.Value {
	switch rng.Intn(12) {
	case 0:
		return types.Null
	case 1:
		return types.NewInt(rng.Int63() - rng.Int63())
	case 2:
		return types.NewInt(int64(rng.Intn(10)))
	case 3:
		return types.NewFloat(rng.NormFloat64())
	case 4:
		return types.NewFloat(float64(rng.Intn(100))) // integral float
	case 5:
		switch rng.Intn(4) {
		case 0:
			return types.NewFloat(math.NaN())
		case 1:
			return types.NewFloat(math.Inf(1))
		case 2:
			return types.NewFloat(math.Inf(-1))
		default:
			return types.NewFloat(float64(math.MaxInt64)) // normalization edge
		}
	case 6:
		return types.NewString(fmt.Sprintf("s%d", rng.Intn(8)))
	case 7:
		return types.NewString("")
	case 8:
		return types.NewBool(rng.Intn(2) == 0)
	default:
		return types.NewInt(int64(rng.Intn(1000)))
	}
}

// sameKind constrains a column to one kind so typed (non-boxed)
// representations are exercised; p controls NULL density.
func randTypedColumnRows(rng *rand.Rand, n int, kind types.Kind, pNull float64) []types.Value {
	out := make([]types.Value, n)
	for i := range out {
		if rng.Float64() < pNull {
			out[i] = types.Null
			continue
		}
		switch kind {
		case types.KindInt:
			out[i] = types.NewInt(rng.Int63() - rng.Int63())
		case types.KindFloat:
			if rng.Intn(3) == 0 {
				out[i] = types.NewFloat(float64(rng.Intn(50)))
			} else {
				out[i] = types.NewFloat(rng.NormFloat64())
			}
		case types.KindString:
			out[i] = types.NewString(fmt.Sprintf("v%d", rng.Intn(16)))
		case types.KindBool:
			out[i] = types.NewBool(rng.Intn(2) == 0)
		}
	}
	return out
}

func colFromValues(t *testing.T, vals []types.Value) *Column {
	t.Helper()
	rows := make([]types.Row, len(vals))
	for i, v := range vals {
		rows[i] = types.Row{v}
	}
	tbl := FromRows(1, rows)
	if tbl == nil {
		t.Fatal("FromRows returned nil for rectangular rows")
	}
	return tbl.Cols[0]
}

// TestValueRoundTrip: Column.Value(i) must reconstruct exactly the value the
// source row held, for every representation the builder picks.
func TestValueRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]types.Value{
		randTypedColumnRows(rng, 300, types.KindInt, 0),
		randTypedColumnRows(rng, 300, types.KindInt, 0.3),
		randTypedColumnRows(rng, 300, types.KindFloat, 0.3),
		randTypedColumnRows(rng, 300, types.KindString, 0.3),
		randTypedColumnRows(rng, 300, types.KindBool, 0.3),
		make([]types.Value, 100), // all-null
	}
	mixed := make([]types.Value, 300)
	for i := range mixed {
		mixed[i] = randValue(rng)
	}
	cases = append(cases, mixed)
	for ci, vals := range cases {
		c := colFromValues(t, vals)
		for i, want := range vals {
			got := c.Value(i)
			// NaN != NaN under ==; compare bit patterns for floats.
			if got.K != want.K || got.I != want.I || got.S != want.S ||
				math.Float64bits(got.F) != math.Float64bits(want.F) {
				t.Fatalf("case %d row %d: Value()=%#v want %#v", ci, i, got, want)
			}
			if c.IsNull(i) != want.IsNull() {
				t.Fatalf("case %d row %d: IsNull mismatch", ci, i)
			}
		}
	}
}

// TestAppendKeyMatchesTypes: Column.AppendKey must be byte-identical to
// types.AppendKey over the boxed value, including the integral-float-to-int
// normalization that join and group-by key encoding depend on.
func TestAppendKeyMatchesTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	kinds := []types.Kind{types.KindInt, types.KindFloat, types.KindString, types.KindBool}
	for _, kind := range kinds {
		for _, pNull := range []float64{0, 0.4} {
			vals := randTypedColumnRows(rng, 500, kind, pNull)
			c := colFromValues(t, vals)
			for i, v := range vals {
				want := types.AppendKey(nil, v)
				got := c.AppendKey(nil, i)
				if !bytes.Equal(got, want) {
					t.Fatalf("kind %v row %d (%v): key %x want %x", kind, i, v, got, want)
				}
			}
		}
	}
	// Mixed (boxed) and all-null columns go through the same fallback.
	mixed := make([]types.Value, 400)
	for i := range mixed {
		mixed[i] = randValue(rng)
	}
	for _, vals := range [][]types.Value{mixed, make([]types.Value, 50)} {
		c := colFromValues(t, vals)
		for i, v := range vals {
			if got, want := c.AppendKey(nil, i), types.AppendKey(nil, v); !bytes.Equal(got, want) {
				t.Fatalf("row %d (%v): key %x want %x", i, v, got, want)
			}
		}
	}
	// Dictionary overflow: past DictMaxEntries the builder switches to plain
	// string storage mid-column; key encoding must not change across the
	// representation boundary.
	over := make([]types.Value, 0, 2*(DictMaxEntries+500))
	for i := 0; i < DictMaxEntries+500; i++ {
		over = append(over, types.NewString(fmt.Sprintf("u%d", i))) // distinct
		if rng.Intn(13) == 0 {
			over = append(over, types.Null)
		}
		if rng.Intn(3) == 0 {
			over = append(over, types.NewString(fmt.Sprintf("hot%d", rng.Intn(7)))) // repeats
		}
	}
	oc := colFromValues(t, over)
	if oc.IsDict() {
		t.Fatalf("expected dict overflow at %d distinct strings", len(over))
	}
	for i, v := range over {
		if got, want := oc.AppendKey(nil, i), types.AppendKey(nil, v); !bytes.Equal(got, want) {
			t.Fatalf("overflow row %d (%v): key %x want %x", i, v, got, want)
		}
	}
}

// TestDictOverflow: a string column whose cardinality exceeds DictMaxEntries
// must abandon the dictionary and store plain strings, losslessly.
func TestDictOverflow(t *testing.T) {
	n := DictMaxEntries + 1000 // distinct non-NULL strings must exceed the cap
	vals := make([]types.Value, n)
	for i := range vals {
		if i%97 == 0 {
			vals[i] = types.Null
		} else {
			vals[i] = types.NewString(fmt.Sprintf("u%d", i))
		}
	}
	c := colFromValues(t, vals)
	if c.IsDict() {
		t.Fatalf("expected dictionary overflow to plain strings at %d entries", n)
	}
	if c.Strs == nil {
		t.Fatal("plain string vector not populated after overflow")
	}
	for i, v := range vals {
		if c.IsNull(i) != v.IsNull() {
			t.Fatalf("row %d: IsNull mismatch", i)
		}
		if !v.IsNull() && c.Str(i) != v.S {
			t.Fatalf("row %d: Str()=%q want %q", i, c.Str(i), v.S)
		}
	}
}

// TestDictEncoding: a low-cardinality column stays dictionary-encoded and
// DictCode agrees with the stored codes.
func TestDictEncoding(t *testing.T) {
	vals := []types.Value{
		types.NewString("a"), types.NewString("b"), types.Null,
		types.NewString("a"), types.NewString(""), types.NewString("b"),
	}
	c := colFromValues(t, vals)
	if !c.IsDict() {
		t.Fatal("expected dictionary encoding")
	}
	if len(c.Dict) != 3 { // "a", "b", ""
		t.Fatalf("dict size %d want 3", len(c.Dict))
	}
	for _, s := range []string{"a", "b", ""} {
		code, ok := c.DictCode(s)
		if !ok {
			t.Fatalf("DictCode(%q) missing", s)
		}
		if c.Dict[code] != s {
			t.Fatalf("DictCode(%q)=%d maps to %q", s, code, c.Dict[code])
		}
	}
	if _, ok := c.DictCode("zzz"); ok {
		t.Fatal("DictCode matched absent string")
	}
}

// TestFromRowsRagged: ragged row sets have no columnar image.
func TestFromRowsRagged(t *testing.T) {
	rows := []types.Row{{types.NewInt(1), types.NewInt(2)}, {types.NewInt(3)}}
	if FromRows(2, rows) != nil {
		t.Fatal("FromRows accepted ragged rows")
	}
	if tbl := FromRows(0, nil); tbl == nil || tbl.NRows != 0 {
		t.Fatal("FromRows rejected empty relation")
	}
}

func TestChunkBounds(t *testing.T) {
	tbl := &Table{NRows: ChunkSize*2 + 7}
	if got := tbl.NumChunks(); got != 3 {
		t.Fatalf("NumChunks=%d want 3", got)
	}
	lo, hi := tbl.ChunkBounds(2)
	if lo != 2*ChunkSize || hi != tbl.NRows {
		t.Fatalf("ChunkBounds(2)=[%d,%d)", lo, hi)
	}
	empty := &Table{}
	if empty.NumChunks() != 0 {
		t.Fatal("empty table has chunks")
	}
}

// TestPageRoundTrip: AppendPage/DecodePage must reproduce rows exactly for
// every column representation, including empty and zero-width relations.
func TestPageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mkRows := func(ncols, n int, gen func(ci, ri int) types.Value) []types.Row {
		rows := make([]types.Row, n)
		for i := range rows {
			rows[i] = make(types.Row, ncols)
			for j := range rows[i] {
				rows[i][j] = gen(j, i)
			}
		}
		return rows
	}
	cases := []struct {
		name  string
		ncols int
		rows  []types.Row
	}{
		{"empty", 3, nil},
		{"zero-width", 0, mkRows(0, 5, nil)},
		{"typed", 4, mkRows(4, 777, func(ci, ri int) types.Value {
			switch ci {
			case 0:
				return types.NewInt(rng.Int63() - rng.Int63())
			case 1:
				return types.NewFloat(rng.NormFloat64())
			case 2:
				return types.NewString(fmt.Sprintf("g%d", rng.Intn(9)))
			default:
				return types.NewBool(ri%2 == 0)
			}
		})},
		{"nullable", 3, mkRows(3, 500, func(ci, ri int) types.Value {
			if rng.Intn(3) == 0 {
				return types.Null
			}
			return types.NewInt(int64(ri))
		})},
		{"all-null", 2, mkRows(2, 64, func(ci, ri int) types.Value { return types.Null })},
		{"mixed", 2, mkRows(2, 400, func(ci, ri int) types.Value { return randValue(rng) })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf, ok := AppendPage(nil, tc.ncols, tc.rows)
			if !ok {
				t.Fatal("AppendPage rejected rectangular rows")
			}
			got, err := DecodePage(buf)
			if err != nil {
				t.Fatalf("DecodePage: %v", err)
			}
			if len(got) != len(tc.rows) {
				t.Fatalf("decoded %d rows want %d", len(got), len(tc.rows))
			}
			for i := range tc.rows {
				if len(got[i]) != len(tc.rows[i]) {
					t.Fatalf("row %d width %d want %d", i, len(got[i]), len(tc.rows[i]))
				}
				for j, want := range tc.rows[i] {
					g := got[i][j]
					if g.K != want.K || g.I != want.I || g.S != want.S ||
						math.Float64bits(g.F) != math.Float64bits(want.F) {
						t.Fatalf("row %d col %d: %#v want %#v", i, j, g, want)
					}
				}
			}
		})
	}
	// Ragged rows must be rejected, not silently truncated.
	ragged := []types.Row{{types.NewInt(1)}, {}}
	if _, ok := AppendPage(nil, 1, ragged); ok {
		t.Fatal("AppendPage accepted ragged rows")
	}
}

// TestDecodePageCorrupt: truncated pages must error, not panic.
func TestDecodePageCorrupt(t *testing.T) {
	rows := []types.Row{{types.NewInt(7), types.NewString("x")}}
	buf, _ := AppendPage(nil, 2, rows)
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodePage(buf[:cut]); err == nil {
			t.Fatalf("DecodePage accepted truncation at %d", cut)
		}
	}
}

func TestBitmap(t *testing.T) {
	b := NewBitmap(130)
	for _, i := range []int{0, 63, 64, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(65) {
		t.Fatal("neighboring bits disturbed")
	}
}

// TestGetSel: the selection pool hands back empty buffers with adequate
// capacity and recycles without aliasing live data.
func TestGetSel(t *testing.T) {
	p := GetSel(100)
	if len(*p) != 0 || cap(*p) < 100 {
		t.Fatalf("GetSel: len=%d cap=%d", len(*p), cap(*p))
	}
	*p = append(*p, 1, 2, 3)
	PutSel(p)
	q := GetSel(10)
	if len(*q) != 0 {
		t.Fatal("recycled buffer not reset")
	}
	PutSel(q)
}
