package eval

import (
	"math"
	"math/rand"
	"testing"

	"sqlsheet/internal/colstore"
	"sqlsheet/internal/parser"
	"sqlsheet/internal/types"
)

// fuzzKernelRows builds a small table over (a INT, b FLOAT, c TEXT, d INT)
// whose shape is steered by mask bits: NULL density, an all-NULL column,
// NaN/Inf floats, int64 extremes, and mixed-kind (boxed) columns. The
// resulting column representations cover every storage class the kernel's
// gather path distinguishes.
func fuzzKernelRows(rng *rand.Rand, mask uint8) []types.Row {
	n := 1 + rng.Intn(40)
	if mask&0x20 != 0 {
		n = 0 // empty relation: zero-length vectors, no chunks
	}
	rows := make([]types.Row, n)
	for i := range rows {
		a := types.NewInt(int64(rng.Intn(20) - 10))
		if mask&0x08 != 0 && i%3 == 0 {
			a = types.NewInt(math.MaxInt64 - int64(rng.Intn(2)))
		}
		if mask&0x01 != 0 && rng.Intn(4) == 0 {
			a = types.Null
		}
		b := types.NewFloat(float64(rng.Intn(41)-20) / 4)
		if mask&0x04 != 0 {
			switch rng.Intn(5) {
			case 0:
				b = types.NewFloat(math.NaN())
			case 1:
				b = types.NewFloat(math.Inf(1))
			case 2:
				b = types.NewFloat(math.Inf(-1))
			}
		}
		if mask&0x02 != 0 {
			b = types.Null // all-NULL column: bitmap-only representation
		}
		strs := []string{"dvd", "west", "", "d_d", "100% sure"}
		c := types.NewString(strs[rng.Intn(len(strs))])
		if rng.Intn(6) == 0 {
			c = types.Null
		}
		d := types.NewInt(int64(rng.Intn(5) - 2))
		if mask&0x40 != 0 && rng.Intn(3) == 0 {
			d = types.NewString("boxed") // mixed-kind column: boxed storage
		}
		rows[i] = types.Row{a, b, c, d}
	}
	return rows
}

// FuzzExprKernel is the compute-kernel equivalence property as a fuzz
// target: whenever CompileExprKernel accepts a parsed expression and the
// columnar image supports it, running the kernel over the image must match
// the compiled row closure row for row — identical value bits (kind, int,
// float bit pattern, string) and, on failure, the identical error text the
// row scan would have raised. Parse failures and kernel fallbacks are not
// findings; silent divergence is.
func FuzzExprKernel(f *testing.F) {
	seeds := []struct {
		src  string
		seed int64
		mask uint8
	}{
		{"a + b * 2.5", 1, 0x00},
		{"a / (a - a)", 2, 0x01}, // division by zero on every row
		{"c || '-' || c", 3, 0x00},
		{"b - a / 2.0", 4, 0x04}, // NaN/Inf operands
		{"a + a", 5, 0x08},       // int64 wraparound at MaxInt64
		{"b * b", 6, 0x02},       // all-NULL column
		{"a * d + 1", 7, 0x40},   // mixed-kind (boxed) column
		{"-b + a", 8, 0x05},
		{"a - 7", 9, 0x20}, // empty relation
	}
	for _, s := range seeds {
		f.Add(s.src, s.seed, s.mask)
	}
	f.Fuzz(func(t *testing.T, src string, seed int64, mask uint8) {
		if len(src) > 200 {
			return
		}
		e, err := parser.ParseExpr(src)
		if err != nil {
			return
		}
		bs := NewBoundSchema([]BoundCol{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}})
		k := CompileExprKernel(bs, e)
		if !k.Valid() {
			return // expression shape has no kernel: fallback, not a finding
		}
		rows := fuzzKernelRows(rand.New(rand.NewSource(seed)), mask)
		tbl := colstore.FromRows(4, rows)
		if tbl == nil {
			t.Fatal("FromRows rejected rectangular rows")
		}
		if _, ok := k.OutKind(tbl, nil); !ok || k.MinCols() > len(tbl.Cols) {
			return // image representation unsupported: production would fall back
		}
		ce, err := Compile(bs, e)
		if err != nil || !ce.Valid() {
			t.Fatalf("kernel compiled but closure did not for %q: %v", src, err)
		}
		// Full selection plus a pseudo-random subset: the subset exercises
		// selective gather while keeping the closure comparison aligned.
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		sels := [][]int32{nil, nil}
		for i := range rows {
			sels[0] = append(sels[0], int32(i))
			if rng.Intn(3) != 0 {
				sels[1] = append(sels[1], int32(i))
			}
		}
		for _, sel := range sels {
			vec, kerr := k.Run(tbl, nil, nil, sel)
			// Row closure over the same selection, stopping at the first
			// error exactly like the row scan does.
			var ferr error
			want := make([]types.Value, 0, len(sel))
			for _, ri := range sel {
				ctx := &Context{Binding: &Binding{BS: bs, Row: rows[ri]}, Nav: types.KeepNav}
				v, verr := ce.Eval(ctx)
				if verr != nil {
					ferr = verr
					break
				}
				want = append(want, v)
			}
			if (kerr != nil) != (ferr != nil) {
				t.Fatalf("%q: kernel err=%v closure err=%v", src, kerr, ferr)
			}
			if kerr != nil {
				if kerr.Error() != ferr.Error() {
					t.Fatalf("%q: kernel error %q, closure error %q", src, kerr, ferr)
				}
				continue
			}
			if vec.Len() != len(sel) {
				t.Fatalf("%q: kernel returned %d values for %d selected rows", src, vec.Len(), len(sel))
			}
			for i, w := range want {
				g := vec.BoxValue(i)
				if g.K != w.K || g.I != w.I || g.S != w.S ||
					math.Float64bits(g.F) != math.Float64bits(w.F) {
					t.Fatalf("%q sel row %d: kernel=%#v closure=%#v", src, i, g, w)
				}
			}
		}
	})
}
