package eval

import (
	"strings"

	"sqlsheet/internal/sqlast"
)

// likeMatcher is a LIKE pattern analyzed once so per-row matching avoids
// re-scanning the pattern string. Three shapes cover the common cases:
//
//   - likeExact: no wildcards at all — plain string equality.
//   - likeChunks: '%' wildcards but no '_' — anchored prefix/suffix checks
//     plus sequential substring search for the middle chunks, the greedy
//     strategy that is exact for '%'-only patterns.
//   - likeGeneric: patterns with '_' fall back to the two-pointer matcher.
type likeMatcher struct {
	kind    uint8
	pat     string   // original pattern (likeGeneric)
	exact   string   // likeExact
	prefix  string   // likeChunks: literal before the first '%'
	suffix  string   // likeChunks: literal after the last '%'
	middles []string // likeChunks: non-empty literals between '%'s
	minLen  int      // likeChunks: sum of all literal chunk lengths
}

const (
	likeExact uint8 = iota
	likeChunks
	likeGeneric
)

// compileLike analyzes pat into a matcher. The dialect has no ESCAPE clause,
// so '%' and '_' are always wildcards and splitting on '%' is safe.
func compileLike(pat string) *likeMatcher {
	if strings.IndexByte(pat, '_') >= 0 {
		return &likeMatcher{kind: likeGeneric, pat: pat}
	}
	if strings.IndexByte(pat, '%') < 0 {
		return &likeMatcher{kind: likeExact, exact: pat}
	}
	segs := strings.Split(pat, "%")
	m := &likeMatcher{kind: likeChunks, prefix: segs[0], suffix: segs[len(segs)-1]}
	for _, s := range segs[1 : len(segs)-1] {
		if s != "" {
			m.middles = append(m.middles, s)
		}
	}
	m.minLen = len(m.prefix) + len(m.suffix)
	for _, s := range m.middles {
		m.minLen += len(s)
	}
	return m
}

func (m *likeMatcher) match(s string) bool {
	switch m.kind {
	case likeExact:
		return s == m.exact
	case likeChunks:
		if len(s) < m.minLen {
			return false
		}
		if !strings.HasPrefix(s, m.prefix) || !strings.HasSuffix(s, m.suffix) {
			return false
		}
		body := s[len(m.prefix) : len(s)-len(m.suffix)]
		for _, c := range m.middles {
			i := strings.Index(body, c)
			if i < 0 {
				return false
			}
			body = body[i+len(c):]
		}
		return true
	default:
		return likeMatch(s, m.pat)
	}
}

// matcherFor returns the precompiled matcher for node x and the pattern
// string it produced this row. Constant patterns build the matcher once per
// node (the InList.Cache idiom); varying patterns rebuild only when the
// pattern changes, through a lock-free per-node slot that morsel workers can
// share (a concurrent rebuild wastes work but is never wrong).
func matcherFor(x *sqlast.Like, pat string) *likeMatcher {
	if lit, ok := x.Pattern.(*sqlast.Literal); ok && !lit.Val.IsNull() {
		return x.Cache(func() any { return compileLike(pat) }).(*likeMatcher)
	}
	return x.DynCache(pat, func() any { return compileLike(pat) }).(*likeMatcher)
}
