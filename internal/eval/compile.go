package eval

import (
	"fmt"

	"sqlsheet/internal/aggs"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// This file lowers expression trees into closure chains, HYPER-style: the
// tree is walked once at compile time — resolving column ordinals, folding
// constants, specializing operator dispatch, prebuilding IN-list sets and
// LIKE matchers — so the per-row cost is a chain of direct closure calls
// with no type switch, no name lookup and no pattern re-analysis.
//
// Thread-safety contract: a compiled closure captures only immutable data
// (AST nodes, folded constants, prebuilt matchers and sets). All per-row
// state comes from the *Context argument, so one CompiledExpr instance is
// shared safely by every morsel worker as long as each worker evaluates
// with its own Context — the same contract eval.Eval already has.
//
// Equivalence contract: for every Context, CompiledExpr.Eval returns exactly
// what eval.Eval returns — value, error and error text. Node kinds the
// compiler does not specialize (subqueries, unknown nodes) fall back to a
// thin closure over the interpreter, so behavior is identical by
// construction; the compiled form is then marked partial (Full() == false).

// evalFn is the compiled form of one expression node.
type evalFn func(*Context) (types.Value, error)

// CompiledExpr is a closure-compiled expression. The zero value is invalid
// (Valid() == false); callers treat that as "interpret instead".
type CompiledExpr struct {
	fn   evalFn
	full bool
}

// Valid reports whether the expression was compiled at all.
func (c CompiledExpr) Valid() bool { return c.fn != nil }

// Full reports whether every node was specialized (false when some subtree
// falls back to the interpreter, e.g. subqueries).
func (c CompiledExpr) Full() bool { return c.full }

// Eval runs the compiled expression under ctx.
func (c CompiledExpr) Eval(ctx *Context) (types.Value, error) { return c.fn(ctx) }

// EvalBool runs the compiled predicate under SQL three-valued logic;
// NULL is false.
func (c CompiledExpr) EvalBool(ctx *Context) (bool, error) {
	v, err := c.fn(ctx)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}

// Compile lowers e into a closure chain resolving column references against
// env. env may be nil (every column then resolves dynamically through the
// binding chain). A nil e compiles to the invalid zero CompiledExpr so
// callers with optional expressions need no special case.
//
// Contract: at evaluation time the innermost Binding's schema must be env —
// ordinals resolved at compile time are read straight out of Binding.Row.
// References not found in env resolve through the full binding chain at
// runtime (correlated outer columns).
func Compile(env *BoundSchema, e sqlast.Expr) (CompiledExpr, error) {
	if e == nil {
		return CompiledExpr{}, nil
	}
	c := &compiler{env: env, full: true}
	fn := c.compile(e)
	return CompiledExpr{fn: fn, full: c.full}, nil
}

// CompileMany compiles each expression of a projection or key list.
func CompileMany(env *BoundSchema, exprs []sqlast.Expr) ([]CompiledExpr, error) {
	if len(exprs) == 0 {
		return nil, nil
	}
	out := make([]CompiledExpr, len(exprs))
	for i, e := range exprs {
		ce, err := Compile(env, e)
		if err != nil {
			return nil, err
		}
		out[i] = ce
	}
	return out, nil
}

type compiler struct {
	env  *BoundSchema
	full bool
}

// errFn compiles to a closure that fails with err on every evaluation —
// the compiled analogue of the interpreter reporting the error per row.
func errFn(err error) evalFn {
	return func(*Context) (types.Value, error) { return types.Null, err }
}

// constFn compiles to a closure returning v.
func constFn(v types.Value) evalFn {
	return func(*Context) (types.Value, error) { return v, nil }
}

func (c *compiler) compile(e sqlast.Expr) evalFn {
	if v, ok := foldConst(e); ok {
		return constFn(v)
	}
	switch x := e.(type) {
	case *sqlast.Literal:
		return constFn(x.Val)
	case *sqlast.ColumnRef:
		return c.compileColumn(x)
	case *sqlast.Unary:
		return c.compileUnary(x)
	case *sqlast.Binary:
		return c.compileBinary(x)
	case *sqlast.Between:
		return c.compileBetween(x)
	case *sqlast.InList:
		return c.compileInList(x)
	case *sqlast.IsNull:
		xf := c.compile(x.X)
		not := x.Not
		return func(ctx *Context) (types.Value, error) {
			v, err := xf(ctx)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(v.IsNull() != not), nil
		}
	case *sqlast.Like:
		return c.compileLike(x)
	case *sqlast.Case:
		return c.compileCase(x)
	case *sqlast.FuncCall:
		return c.compileFunc(x)
	case *sqlast.CurrentV:
		return func(ctx *Context) (types.Value, error) {
			if ctx.CurrentV == nil {
				return types.Null, fmt.Errorf("cv(%s) outside a formula right side", x.Dim)
			}
			return ctx.CurrentV(x.Dim)
		}
	case *sqlast.CellRef:
		return func(ctx *Context) (types.Value, error) {
			if ctx.Cell == nil {
				return types.Null, fmt.Errorf("cell reference %s outside a spreadsheet clause", x)
			}
			return ctx.Cell(x)
		}
	case *sqlast.CellAgg:
		return func(ctx *Context) (types.Value, error) {
			if ctx.CellAgg == nil {
				return types.Null, fmt.Errorf("cell aggregate %s outside a spreadsheet clause", x)
			}
			return ctx.CellAgg(x)
		}
	case *sqlast.Previous:
		return func(ctx *Context) (types.Value, error) {
			if ctx.Previous == nil {
				return types.Null, fmt.Errorf("previous() is only valid in UNTIL conditions")
			}
			return ctx.Previous(x.Cell)
		}
	case *sqlast.Present:
		not := x.Not
		return func(ctx *Context) (types.Value, error) {
			if ctx.Present == nil {
				return types.Null, fmt.Errorf("IS PRESENT outside a spreadsheet clause")
			}
			ok, err := ctx.Present(x.Cell)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(ok != not), nil
		}
	case *sqlast.Star:
		return errFn(fmt.Errorf("'*' is not a value expression"))
	}
	// Subqueries and any node kind added after this compiler: interpret.
	// The fallback keeps behavior identical for everything not specialized.
	c.full = false
	return func(ctx *Context) (types.Value, error) {
		return Eval(ctx, e)
	}
}

// foldable reports whether e is a pure function of constants — no column,
// hook, or subquery reference anywhere in the tree. Aggregate calls stay
// unfolded so their per-evaluation errors match the interpreter's.
func foldable(e sqlast.Expr) bool {
	ok := true
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		switch x := n.(type) {
		case *sqlast.Literal, *sqlast.Unary, *sqlast.Binary, *sqlast.Between,
			*sqlast.InList, *sqlast.IsNull, *sqlast.Like, *sqlast.Case:
		case *sqlast.FuncCall:
			if aggs.IsAggregate(x.Name) {
				ok = false
			}
		default:
			ok = false
		}
		return ok
	})
	return ok
}

// foldConst evaluates a constant subtree at compile time. Folding is only
// safe when evaluation succeeds under BOTH Nav modes with the identical
// result: ctx.Nav changes NULL arithmetic (IGNORE NAV), and errors (division
// by zero, bad arity) must stay runtime errors, surfaced per evaluation
// exactly as the interpreter surfaces them.
func foldConst(e sqlast.Expr) (types.Value, bool) {
	if lit, ok := e.(*sqlast.Literal); ok {
		return lit.Val, true
	}
	if !foldable(e) {
		return types.Null, false
	}
	keep, err := Eval(&Context{Nav: types.KeepNav}, e)
	if err != nil {
		return types.Null, false
	}
	ign, err := Eval(&Context{Nav: types.IgnoreNav}, e)
	if err != nil || keep != ign {
		return types.Null, false
	}
	return keep, true
}

func (c *compiler) compileColumn(x *sqlast.ColumnRef) evalFn {
	if c.env != nil {
		idx, found, err := c.env.Resolve(x.Table, x.Name)
		if err != nil {
			// Ambiguous in the innermost schema: the interpreter reports it
			// on every row; so do we (after the same nil-binding check).
			ambig := err
			return func(ctx *Context) (types.Value, error) {
				if ctx.Binding == nil {
					return types.Null, fmt.Errorf("column %s referenced with no row bound", x)
				}
				return types.Null, ambig
			}
		}
		if found {
			return func(ctx *Context) (types.Value, error) {
				b := ctx.Binding
				if b == nil {
					return types.Null, fmt.Errorf("column %s referenced with no row bound", x)
				}
				return b.Row[idx], nil
			}
		}
	}
	// Not visible in the compile-time schema (or no schema): resolve through
	// the binding chain at runtime — correlated outer references.
	return func(ctx *Context) (types.Value, error) {
		if ctx.Binding == nil {
			return types.Null, fmt.Errorf("column %s referenced with no row bound", x)
		}
		return ctx.Binding.Lookup(x.Table, x.Name)
	}
}

func (c *compiler) compileUnary(x *sqlast.Unary) evalFn {
	xf := c.compile(x.X)
	switch x.Op {
	case "-":
		return func(ctx *Context) (types.Value, error) {
			v, err := xf(ctx)
			if err != nil {
				return types.Null, err
			}
			return types.Neg(v, ctx.Nav)
		}
	case "NOT":
		return func(ctx *Context) (types.Value, error) {
			v, err := xf(ctx)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() {
				return types.Null, nil
			}
			return types.NewBool(!v.Bool()), nil
		}
	}
	return errFn(fmt.Errorf("unknown unary operator %q", x.Op))
}

func (c *compiler) compileBinary(x *sqlast.Binary) evalFn {
	lf := c.compile(x.L)
	rf := c.compile(x.R)
	switch x.Op {
	case "AND":
		return func(ctx *Context) (types.Value, error) {
			l, err := lf(ctx)
			if err != nil {
				return types.Null, err
			}
			if !l.IsNull() && !l.Bool() {
				return types.NewBool(false), nil
			}
			r, err := rf(ctx)
			if err != nil {
				return types.Null, err
			}
			if !r.IsNull() && !r.Bool() {
				return types.NewBool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return types.Null, nil
			}
			return types.NewBool(true), nil
		}
	case "OR":
		return func(ctx *Context) (types.Value, error) {
			l, err := lf(ctx)
			if err != nil {
				return types.Null, err
			}
			if !l.IsNull() && l.Bool() {
				return types.NewBool(true), nil
			}
			r, err := rf(ctx)
			if err != nil {
				return types.Null, err
			}
			if !r.IsNull() && r.Bool() {
				return types.NewBool(true), nil
			}
			if l.IsNull() || r.IsNull() {
				return types.Null, nil
			}
			return types.NewBool(false), nil
		}
	case "+", "-", "*", "/", "%":
		op := x.Op[0]
		return func(ctx *Context) (types.Value, error) {
			l, err := lf(ctx)
			if err != nil {
				return types.Null, err
			}
			r, err := rf(ctx)
			if err != nil {
				return types.Null, err
			}
			return types.Arith(op, l, r, ctx.Nav)
		}
	case "||":
		return func(ctx *Context) (types.Value, error) {
			l, err := lf(ctx)
			if err != nil {
				return types.Null, err
			}
			r, err := rf(ctx)
			if err != nil {
				return types.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return types.Null, nil
			}
			return types.NewString(l.String() + r.String()), nil
		}
	case "=", "<>":
		want := x.Op == "="
		return func(ctx *Context) (types.Value, error) {
			l, err := lf(ctx)
			if err != nil {
				return types.Null, err
			}
			r, err := rf(ctx)
			if err != nil {
				return types.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return types.Null, nil
			}
			return types.NewBool(types.Equal(l, r) == want), nil
		}
	case "<", "<=", ">", ">=":
		test := orderTest(x.Op)
		return func(ctx *Context) (types.Value, error) {
			l, err := lf(ctx)
			if err != nil {
				return types.Null, err
			}
			r, err := rf(ctx)
			if err != nil {
				return types.Null, err
			}
			if l.IsNull() || r.IsNull() {
				return types.Null, nil
			}
			// Ordered comparison across incompatible kinds is false, not an
			// error — matching CompareSQL.
			if l.IsNumeric() != r.IsNumeric() {
				return types.NewBool(false), nil
			}
			return types.NewBool(test(types.Compare(l, r))), nil
		}
	}
	return errFn(fmt.Errorf("unknown operator %q", x.Op))
}

// orderTest maps an ordered comparison operator to its sign test once, so
// the per-row path has no operator-string dispatch.
func orderTest(op string) func(int) bool {
	switch op {
	case "<":
		return func(c int) bool { return c < 0 }
	case "<=":
		return func(c int) bool { return c <= 0 }
	case ">":
		return func(c int) bool { return c > 0 }
	default: // ">="
		return func(c int) bool { return c >= 0 }
	}
}

func (c *compiler) compileBetween(x *sqlast.Between) evalFn {
	xf := c.compile(x.X)
	lof := c.compile(x.Lo)
	hif := c.compile(x.Hi)
	not := x.Not
	return func(ctx *Context) (types.Value, error) {
		v, err := xf(ctx)
		if err != nil {
			return types.Null, err
		}
		lo, err := lof(ctx)
		if err != nil {
			return types.Null, err
		}
		hi, err := hif(ctx)
		if err != nil {
			return types.Null, err
		}
		res := and3(CompareSQL(">=", v, lo), CompareSQL("<=", v, hi))
		if not {
			return not3(res), nil
		}
		return res, nil
	}
}

func (c *compiler) compileInList(x *sqlast.InList) evalFn {
	xf := c.compile(x.X)
	not := x.Not

	lits := make([]types.Value, 0, len(x.List))
	allLit := true
	sawNull := false
	for _, it := range x.List {
		lit, ok := it.(*sqlast.Literal)
		if !ok {
			allLit = false
			break
		}
		if lit.Val.IsNull() {
			sawNull = true
			continue
		}
		lits = append(lits, lit.Val)
	}

	if allLit && len(x.List) >= inListSetThreshold {
		// Large literal list: hash it now, probe per row with a stack key
		// buffer (map index over string([]byte) does not allocate).
		set := make(map[string]bool, len(lits))
		for _, v := range lits {
			set[types.Key(v)] = true
		}
		return func(ctx *Context) (types.Value, error) {
			v, err := xf(ctx)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() {
				return types.Null, nil
			}
			var arr [48]byte
			k := types.AppendKey(arr[:0], v)
			res := types.Null
			if set[string(k)] {
				res = types.NewBool(true)
			} else if !sawNull {
				res = types.NewBool(false)
			}
			if not {
				return not3(res), nil
			}
			return res, nil
		}
	}
	if allLit {
		// Small literal list: linear Equal scan, no per-row key encoding.
		return func(ctx *Context) (types.Value, error) {
			v, err := xf(ctx)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() {
				return types.Null, nil
			}
			res := types.Null
			found := false
			for _, iv := range lits {
				if types.Equal(v, iv) {
					found = true
					break
				}
			}
			if found {
				res = types.NewBool(true)
			} else if !sawNull {
				res = types.NewBool(false)
			}
			if not {
				return not3(res), nil
			}
			return res, nil
		}
	}
	// Members with non-literal expressions: evaluate in order with the
	// interpreter's short-circuit-on-match semantics.
	items := make([]evalFn, len(x.List))
	for i, it := range x.List {
		items[i] = c.compile(it)
	}
	return func(ctx *Context) (types.Value, error) {
		v, err := xf(ctx)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			return types.Null, nil
		}
		res := types.Null
		nullMember := false
		found := false
		for _, f := range items {
			iv, err := f(ctx)
			if err != nil {
				return types.Null, err
			}
			if iv.IsNull() {
				nullMember = true
				continue
			}
			if types.Equal(v, iv) {
				found = true
				break
			}
		}
		if found {
			res = types.NewBool(true)
		} else if !nullMember {
			res = types.NewBool(false)
		}
		if not {
			return not3(res), nil
		}
		return res, nil
	}
}

func (c *compiler) compileLike(x *sqlast.Like) evalFn {
	xf := c.compile(x.X)
	not := x.Not
	if lit, ok := x.Pattern.(*sqlast.Literal); ok {
		if lit.Val.IsNull() {
			return func(ctx *Context) (types.Value, error) {
				if _, err := xf(ctx); err != nil {
					return types.Null, err
				}
				return types.Null, nil
			}
		}
		m := compileLike(lit.Val.String())
		return func(ctx *Context) (types.Value, error) {
			v, err := xf(ctx)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() {
				return types.Null, nil
			}
			return types.NewBool(m.match(v.String()) != not), nil
		}
	}
	pf := c.compile(x.Pattern)
	return func(ctx *Context) (types.Value, error) {
		v, err := xf(ctx)
		if err != nil {
			return types.Null, err
		}
		p, err := pf(ctx)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() || p.IsNull() {
			return types.Null, nil
		}
		m := matcherFor(x, p.String())
		return types.NewBool(m.match(v.String()) != not), nil
	}
}

func (c *compiler) compileCase(x *sqlast.Case) evalFn {
	conds := make([]evalFn, len(x.Whens))
	thens := make([]evalFn, len(x.Whens))
	for i, w := range x.Whens {
		conds[i] = c.compile(w.Cond)
		thens[i] = c.compile(w.Then)
	}
	var elsef evalFn
	if x.Else != nil {
		elsef = c.compile(x.Else)
	} else {
		elsef = constFn(types.Null)
	}
	if x.Operand != nil {
		opf := c.compile(x.Operand)
		return func(ctx *Context) (types.Value, error) {
			op, err := opf(ctx)
			if err != nil {
				return types.Null, err
			}
			for i, cf := range conds {
				wv, err := cf(ctx)
				if err != nil {
					return types.Null, err
				}
				if !op.IsNull() && !wv.IsNull() && types.Equal(op, wv) {
					return thens[i](ctx)
				}
			}
			return elsef(ctx)
		}
	}
	return func(ctx *Context) (types.Value, error) {
		for i, cf := range conds {
			wv, err := cf(ctx)
			if err != nil {
				return types.Null, err
			}
			if !wv.IsNull() && wv.Bool() {
				return thens[i](ctx)
			}
		}
		return elsef(ctx)
	}
}

func (c *compiler) compileFunc(x *sqlast.FuncCall) evalFn {
	if aggs.IsAggregate(x.Name) {
		return errFn(fmt.Errorf("aggregate %s() is not allowed in this context", x.Name))
	}
	argfs := make([]evalFn, len(x.Args))
	for i, a := range x.Args {
		argfs[i] = c.compile(a)
	}
	name := x.Name
	return func(ctx *Context) (types.Value, error) {
		var arr [4]types.Value
		var args []types.Value
		if len(argfs) <= len(arr) {
			args = arr[:len(argfs)]
		} else {
			args = make([]types.Value, len(argfs))
		}
		for i, f := range argfs {
			v, err := f(ctx)
			if err != nil {
				return types.Null, err
			}
			args[i] = v
		}
		return CallScalar(name, args)
	}
}
