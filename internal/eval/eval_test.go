package eval

import (
	"strings"
	"testing"

	"sqlsheet/internal/parser"
	"sqlsheet/internal/types"
)

// evalStr parses and evaluates an expression over an optional binding.
func evalStr(t *testing.T, expr string, b *Binding) (types.Value, error) {
	t.Helper()
	e, err := parser.ParseExpr(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return Eval(&Context{Binding: b}, e)
}

func mustEval(t *testing.T, expr string, b *Binding) types.Value {
	t.Helper()
	v, err := evalStr(t, expr, b)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v
}

func bind(cols string, vals ...any) *Binding {
	names := strings.Split(cols, ",")
	bcols := make([]BoundCol, len(names))
	for i, n := range names {
		n = strings.TrimSpace(n)
		if dot := strings.IndexByte(n, '.'); dot >= 0 {
			bcols[i] = BoundCol{Table: n[:dot], Name: n[dot+1:]}
		} else {
			bcols[i] = BoundCol{Name: n}
		}
	}
	row := make(types.Row, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			row[i] = types.NewInt(int64(x))
		case float64:
			row[i] = types.NewFloat(x)
		case string:
			row[i] = types.NewString(x)
		case bool:
			row[i] = types.NewBool(x)
		case nil:
			row[i] = types.Null
		}
	}
	return &Binding{BS: NewBoundSchema(bcols), Row: row}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	if v := mustEval(t, "1 + 2 * 3", nil); v.Int() != 7 {
		t.Errorf("got %v", v)
	}
	if v := mustEval(t, "(1 + 2) * 3", nil); v.Int() != 9 {
		t.Errorf("got %v", v)
	}
	if v := mustEval(t, "7 / 2", nil); v.F != 3.5 {
		t.Errorf("int division must be exact: %v", v)
	}
	if v := mustEval(t, "-(2+3)", nil); v.Int() != -5 {
		t.Errorf("got %v", v)
	}
	if v := mustEval(t, "10 % 3", nil); v.Int() != 1 {
		t.Errorf("got %v", v)
	}
	if _, err := evalStr(t, "1/0", nil); err == nil {
		t.Error("division by zero must error")
	}
}

func TestColumnResolution(t *testing.T) {
	b := bind("a.x, b.x, y", 1, 2, 3)
	if v := mustEval(t, "a.x + b.x", b); v.Int() != 3 {
		t.Errorf("qualified: %v", v)
	}
	if v := mustEval(t, "y", b); v.Int() != 3 {
		t.Errorf("unqualified: %v", v)
	}
	if _, err := evalStr(t, "x", b); err == nil {
		t.Error("ambiguous unqualified ref must error")
	}
	if _, err := evalStr(t, "zz", b); err == nil {
		t.Error("unknown column must error")
	}
	if _, err := evalStr(t, "c.x", b); err == nil {
		t.Error("unknown qualifier must error")
	}
}

func TestOuterBindingChain(t *testing.T) {
	outer := bind("o", 42)
	inner := bind("i", 7)
	inner.Parent = outer
	if v := mustEval(t, "i + o", inner); v.Int() != 49 {
		t.Errorf("correlated chain: %v", v)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	b := bind("n, x", nil, 1)
	cases := []struct {
		expr string
		want string // "t", "f", "null"
	}{
		{"n = 1", "null"},
		{"n <> 1", "null"},
		{"n = 1 AND x = 1", "null"},
		{"n = 1 AND x = 2", "f"},
		{"n = 1 OR x = 1", "t"},
		{"n = 1 OR x = 2", "null"},
		{"NOT (n = 1)", "null"},
		{"n IS NULL", "t"},
		{"x IS NOT NULL", "t"},
		{"x BETWEEN 0 AND 2", "t"},
		{"n BETWEEN 0 AND 2", "null"},
		{"x NOT BETWEEN 0 AND 2", "f"},
		{"x IN (1, 2)", "t"},
		{"x IN (2, 3)", "f"},
		{"x IN (2, n)", "null"},
		{"n IN (1)", "null"},
		{"x NOT IN (2, n)", "null"},
		{"x NOT IN (2, 3)", "t"},
	}
	for _, c := range cases {
		v := mustEval(t, c.expr, b)
		got := "null"
		if !v.IsNull() {
			got = map[bool]string{true: "t", false: "f"}[v.Bool()]
		}
		if got != c.want {
			t.Errorf("%s = %s, want %s", c.expr, got, c.want)
		}
	}
}

func TestComparisonsAcrossKinds(t *testing.T) {
	if v := mustEval(t, "2 = 2.0", nil); !v.Bool() {
		t.Error("2 = 2.0 must be true")
	}
	if v := mustEval(t, "'a' = 1", nil); v.Bool() {
		t.Error("'a' = 1 must be false")
	}
	if v := mustEval(t, "'a' < 1", nil); v.Bool() {
		t.Error("'a' < 1 must be false, not an error")
	}
	if v := mustEval(t, "'abc' < 'abd'", nil); !v.Bool() {
		t.Error("string compare broken")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%l%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%%c", true},
		{"mississippi", "%iss%pi", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
	b := bind("s", "widget")
	if v := mustEval(t, "s LIKE 'wid%'", b); !v.Bool() {
		t.Error("LIKE broken")
	}
	if v := mustEval(t, "s NOT LIKE 'x%'", b); !v.Bool() {
		t.Error("NOT LIKE broken")
	}
}

func TestCase(t *testing.T) {
	b := bind("x", 2)
	v := mustEval(t, "CASE WHEN x = 1 THEN 'one' WHEN x = 2 THEN 'two' ELSE 'many' END", b)
	if v.S != "two" {
		t.Errorf("searched case: %v", v)
	}
	v = mustEval(t, "CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END", b)
	if v.S != "two" {
		t.Errorf("simple case: %v", v)
	}
	v = mustEval(t, "CASE x WHEN 9 THEN 'nine' END", b)
	if !v.IsNull() {
		t.Errorf("no-match case must be NULL: %v", v)
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		expr string
		want any
	}{
		{"abs(-3)", 3},
		{"abs(-2.5)", 2.5},
		{"floor(2.7)", 2.0},
		{"ceil(2.2)", 3.0},
		{"round(2.567, 2)", 2.57},
		{"trunc(2.567, 2)", 2.56},
		{"power(2, 10)", 1024.0},
		{"mod(10, 3)", 1},
		{"sqrt(16)", 4.0},
		{"sign(-9)", -1},
		{"upper('dvd')", "DVD"},
		{"lower('DVD')", "dvd"},
		{"length('hello')", 5},
		{"substr('spreadsheet', 1, 6)", "spread"},
		{"substr('spreadsheet', 7)", "sheet"},
		{"concat('a', 'b', 'c')", "abc"},
		{"coalesce(NULL, NULL, 7)", 7},
		{"nvl(NULL, 'd')", "d"},
		{"nullif(3, 3)", nil},
		{"least(3, 1, 2)", 1},
		{"greatest(3, 1, 2)", 3},
	}
	for _, c := range cases {
		v := mustEval(t, c.expr, nil)
		switch w := c.want.(type) {
		case int:
			if v.Int() != int64(w) {
				t.Errorf("%s = %v, want %d", c.expr, v, w)
			}
		case float64:
			if v.Float() != w {
				t.Errorf("%s = %v, want %g", c.expr, v, w)
			}
		case string:
			if v.S != w {
				t.Errorf("%s = %v, want %q", c.expr, v, w)
			}
		case nil:
			if !v.IsNull() {
				t.Errorf("%s = %v, want NULL", c.expr, v)
			}
		}
	}
	if _, err := evalStr(t, "frobnicate(1)", nil); err == nil {
		t.Error("unknown function must error")
	}
	if _, err := evalStr(t, "sum(1)", nil); err == nil {
		t.Error("bare aggregate must error in scalar context")
	}
	if _, err := evalStr(t, "abs(1, 2)", nil); err == nil {
		t.Error("wrong arity must error")
	}
}

func TestConcatOperator(t *testing.T) {
	if v := mustEval(t, "'a' || 'b' || 1", nil); v.S != "ab1" {
		t.Errorf("|| = %v", v)
	}
	if v := mustEval(t, "'a' || NULL", nil); !v.IsNull() {
		t.Errorf("|| NULL = %v", v)
	}
}

func TestIgnoreNavArithmetic(t *testing.T) {
	e, err := parser.ParseExpr("n + 5")
	if err != nil {
		t.Fatal(err)
	}
	b := bind("n", nil)
	v, err := Eval(&Context{Binding: b, Nav: types.IgnoreNav}, e)
	if err != nil || v.Int() != 5 {
		t.Errorf("IGNORE NAV: %v, %v", v, err)
	}
	v, err = Eval(&Context{Binding: b, Nav: types.KeepNav}, e)
	if err != nil || !v.IsNull() {
		t.Errorf("KEEP NAV: %v, %v", v, err)
	}
}

func TestSpreadsheetHooksRequired(t *testing.T) {
	for _, s := range []string{"s[2000]", "avg(s)[t<5]", "cv(t)", "s[1] IS PRESENT"} {
		e, err := parser.ParseModelExpr(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if _, err := Eval(&Context{}, e); err == nil {
			t.Errorf("%q must error without spreadsheet hooks", s)
		}
	}
}

func TestSubqueriesRequireRunner(t *testing.T) {
	for _, s := range []string{"(SELECT 1)", "1 IN (SELECT 1)", "EXISTS (SELECT 1)"} {
		e, err := parser.ParseExpr(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if _, err := Eval(&Context{}, e); err == nil {
			t.Errorf("%q must error without a subquery runner", s)
		}
	}
}
