package eval

import (
	"fmt"
	"strconv"

	"sqlsheet/internal/colstore"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// This file compiles *compute* expressions — projection arithmetic, formula
// right sides, aggregate arguments — into vectorized kernels that evaluate a
// whole chunk per call and produce one dense typed output vector, the
// counterpart of vector.go's selection kernels.
//
// Equivalence contract: a compute kernel exists only for expression shapes
// whose compiled-closure evaluation it can reproduce bit for bit under
// KeepNav — constants, schema-resolved columns, unary minus, + - * / and
// string concatenation. On that domain the only runtime error the closure
// path can raise is types.Arith's "division by zero", whose message carries
// no row identity, so evaluating a whole vector before (or after) another
// subexpression is observably identical to row-at-a-time order: any failing
// input fails the statement with the same error either way. Shapes with
// other failure modes (non-numeric operands, CASE, AND/OR, function calls,
// cell probes, subqueries) do not compile and keep the per-row closure path.
//
// Null propagation mirrors types.Arith exactly: a NULL operand nulls the
// result slot *before* the zero-denominator check (NULL / 0 is NULL, not an
// error), integer ⊕ integer stays integer with Go wraparound, division is
// always float, mixed operands widen via float64(int) — the same machine
// conversion Value.Float() performs.
//
// Kind support is decided per image at run time (a column's representation
// is a property of the data, not the schema): Supported walks the tree
// against the actual columns and the executor commits to the vectorized
// operator only when every kernel accepts every input column, so fallback is
// whole-operator, never mid-vector.

// ExprVec is the dense output of a compute kernel: one slot per selected
// position. Exactly one representation is populated:
//
//   - KindInt/KindBool: Ints (booleans store 0/1, mirroring types.Value.I)
//   - KindFloat:        Floats
//   - KindString:       Strs
//   - KindNull:         no vector (every slot is NULL)
//
// Nulls, when non-nil, flags NULL slots of a typed vector; a NULL slot holds
// the zero element and must not be interpreted — the same invariant as
// colstore.Column.
type ExprVec struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  []bool

	n int
}

// Len returns the number of slots.
func (v *ExprVec) Len() int { return v.n }

// NullAt reports whether slot k is NULL.
func (v *ExprVec) NullAt(k int) bool {
	return v.Kind == types.KindNull || (v.Nulls != nil && v.Nulls[k])
}

// BoxValue reconstructs slot k as a boxed scalar, exactly the value the
// closure path would have produced. Callers box once per output cell when
// materializing result rows; kernel-internal loops stay on the vectors.
func (v *ExprVec) BoxValue(k int) types.Value {
	if v.NullAt(k) {
		return types.Null
	}
	switch v.Kind {
	case types.KindInt:
		return types.Value{K: types.KindInt, I: v.Ints[k]}
	case types.KindBool:
		return types.Value{K: types.KindBool, I: v.Ints[k]}
	case types.KindFloat:
		return types.Value{K: types.KindFloat, F: v.Floats[k]}
	case types.KindString:
		return types.Value{K: types.KindString, S: v.Strs[k]}
	}
	return types.Null
}

// Column converts the vector into a colstore column (string vectors use
// plain storage; a computed vector has no dictionary). The column shares the
// vector's backing arrays, so the ExprVec must not be reused afterwards.
func (v *ExprVec) Column() *colstore.Column {
	c := &colstore.Column{Kind: v.Kind, N: v.n}
	if v.Kind == types.KindNull {
		c.Nulls = colstore.NewBitmap(v.n)
		for i := 0; i < v.n; i++ {
			c.Nulls.Set(i)
		}
		return c
	}
	switch v.Kind {
	case types.KindInt, types.KindBool:
		c.Ints = v.Ints
	case types.KindFloat:
		c.Floats = v.Floats
	case types.KindString:
		c.Strs = v.Strs
	}
	if v.Nulls != nil {
		for i, isn := range v.Nulls {
			if isn {
				if c.Nulls == nil {
					c.Nulls = colstore.NewBitmap(v.n)
				}
				c.Nulls.Set(i)
			}
		}
	}
	return c
}

// numFloat widens numeric slot k to float64 (slot must not be NULL) — the
// same widening Value.Float() applies on the closure path.
func (v *ExprVec) numFloat(k int) float64 {
	if v.Kind == types.KindInt {
		return float64(v.Ints[k])
	}
	return v.Floats[k]
}

// slotStr renders slot k the way Value.String() does (slot must not be NULL).
func (v *ExprVec) slotStr(k int) string {
	switch v.Kind {
	case types.KindInt:
		return strconv.FormatInt(v.Ints[k], 10)
	case types.KindFloat:
		return strconv.FormatFloat(v.Floats[k], 'g', -1, 64)
	case types.KindString:
		return v.Strs[k]
	case types.KindBool:
		if v.Ints[k] != 0 {
			return "true"
		}
		return "false"
	}
	return ""
}

type exprOp uint8

const (
	opConst exprOp = iota
	opCol
	opNeg
	opAdd
	opSub
	opMul
	opDiv
	opConcat
)

type exprNode struct {
	op   exprOp
	ord  int         // opCol: schema ordinal
	val  types.Value // opConst: folded constant
	l, r *exprNode
}

// ExprKernel is a compiled vectorized compute expression. The zero value is
// invalid (no kernel; use the per-row closure path).
type ExprKernel struct {
	root *exprNode
	nOrd int
}

// Valid reports whether a kernel was compiled.
func (k ExprKernel) Valid() bool { return k.root != nil }

// MinCols returns 1 + the highest schema ordinal the kernel reads.
func (k ExprKernel) MinCols() int { return k.nOrd }

// ColRefs appends every column ordinal the kernel reads to dst (duplicates
// possible). Callers use it to materialize only the image columns a kernel
// will touch.
func (k ExprKernel) ColRefs(dst []int) []int { return exprColRefs(k.root, dst) }

func exprColRefs(n *exprNode, dst []int) []int {
	if n == nil {
		return dst
	}
	if n.op == opCol {
		dst = append(dst, n.ord)
	}
	dst = exprColRefs(n.l, dst)
	return exprColRefs(n.r, dst)
}

// CompileExprKernel compiles compute expression e against env into a
// vectorized kernel, or the invalid kernel when e has no vectorized form.
func CompileExprKernel(env *BoundSchema, e sqlast.Expr) ExprKernel {
	return CompileExprKernelExt(env, e, nil)
}

// CompileExprKernelExt is CompileExprKernel with an extension hook: ext maps
// expression shapes the schema cannot resolve (cell references, cv(),
// aggregates) to extra image ordinals the caller populates before Run. The
// hook is consulted after constant folding and before structural lowering,
// so an extended leaf behaves exactly like a schema column read.
func CompileExprKernelExt(env *BoundSchema, e sqlast.Expr, ext func(sqlast.Expr) (int, bool)) ExprKernel {
	if env == nil || e == nil {
		return ExprKernel{}
	}
	c := &selCompiler{env: env, ext: ext}
	root := compileExprNode(c, e)
	if root == nil {
		return ExprKernel{}
	}
	return ExprKernel{root: root, nOrd: c.nOrd}
}

func compileExprNode(c *selCompiler, e sqlast.Expr) *exprNode {
	if v, ok := foldConst(e); ok {
		return &exprNode{op: opConst, val: v}
	}
	if c.ext != nil {
		if ord, ok := c.ext(e); ok {
			if ord+1 > c.nOrd {
				c.nOrd = ord + 1
			}
			return &exprNode{op: opCol, ord: ord}
		}
	}
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		if ord, ok := c.column(x); ok {
			return &exprNode{op: opCol, ord: ord}
		}
	case *sqlast.Unary:
		if x.Op == "-" {
			if l := compileExprNode(c, x.X); l != nil {
				return &exprNode{op: opNeg, l: l}
			}
		}
	case *sqlast.Binary:
		var op exprOp
		switch x.Op {
		case "+":
			op = opAdd
		case "-":
			op = opSub
		case "*":
			op = opMul
		case "/":
			op = opDiv
		case "||":
			op = opConcat
		default:
			return nil
		}
		l := compileExprNode(c, x.L)
		if l == nil {
			return nil
		}
		r := compileExprNode(c, x.R)
		if r == nil {
			return nil
		}
		return &exprNode{op: op, l: l, r: r}
	}
	return nil
}

func numericOrNull(k types.Kind) bool {
	return k == types.KindInt || k == types.KindFloat || k == types.KindNull
}

// kindIn decides, against the actual columns of an image, whether the node
// evaluates on the vectorized path and what kind its output vector has.
// Shapes the closure path would reject with a "non-numeric operand" error —
// strings or booleans under arithmetic — are unsupported so the fallback
// raises the identical error; boxed (mixed-kind) columns are unsupported
// because their slots have no single typed vector.
func (n *exprNode) kindIn(in *VecInput) (types.Kind, bool) {
	switch n.op {
	case opConst:
		return n.val.K, true
	case opCol:
		c := in.col(n.ord)
		if c.Boxed != nil {
			return 0, false
		}
		return c.Kind, true
	case opNeg:
		k, ok := n.l.kindIn(in)
		if !ok || !numericOrNull(k) {
			return 0, false
		}
		return k, true
	case opAdd, opSub, opMul, opDiv:
		lk, ok := n.l.kindIn(in)
		if !ok || !numericOrNull(lk) {
			return 0, false
		}
		rk, ok := n.r.kindIn(in)
		if !ok || !numericOrNull(rk) {
			return 0, false
		}
		if lk == types.KindNull || rk == types.KindNull {
			return types.KindNull, true
		}
		if n.op == opDiv {
			return types.KindFloat, true
		}
		if lk == types.KindInt && rk == types.KindInt {
			return types.KindInt, true
		}
		return types.KindFloat, true
	case opConcat:
		lk, ok := n.l.kindIn(in)
		if !ok {
			return 0, false
		}
		rk, ok := n.r.kindIn(in)
		if !ok {
			return 0, false
		}
		if lk == types.KindNull || rk == types.KindNull {
			return types.KindNull, true
		}
		return types.KindString, true
	}
	return 0, false
}

// Supported reports whether the kernel evaluates on the vectorized path over
// an image with the given column mapping (run-time check: representation is
// a property of the data). The executor commits to a vectorized operator
// only when every kernel involved is supported, so fallback is whole-
// operator and error ordering is preserved.
func (k ExprKernel) Supported(tbl *colstore.Table, cmap []int) bool {
	_, ok := k.OutKind(tbl, cmap)
	return ok
}

// OutKind returns the kind of the kernel's output vector over an image with
// the given column mapping, with ok=false when the kernel is unsupported
// there. The batch aggregation path uses the kind to pick its typed
// accumulator loop before running anything.
func (k ExprKernel) OutKind(tbl *colstore.Table, cmap []int) (types.Kind, bool) {
	if k.root == nil {
		return 0, false
	}
	in := VecInput{Tbl: tbl, ColMap: cmap}
	return k.root.kindIn(&in)
}

// Run evaluates the kernel over the positions in sel, producing one dense
// output slot per position. The caller must have checked Supported against
// the same image.
func (k ExprKernel) Run(tbl *colstore.Table, cmap []int, rowIdx []int32, sel []int32) (*ExprVec, error) {
	in := VecInput{Tbl: tbl, ColMap: cmap, RowIdx: rowIdx}
	return k.root.evalVec(&in, sel)
}

func (n *exprNode) evalVec(in *VecInput, sel []int32) (*ExprVec, error) {
	switch n.op {
	case opConst:
		return constVec(n.val, len(sel)), nil
	case opCol:
		return gatherCol(in, n.ord, sel), nil
	case opNeg:
		l, err := n.l.evalVec(in, sel)
		if err != nil {
			return nil, err
		}
		return negVec(l), nil
	case opConcat:
		// Both operands evaluate unconditionally, like the closure path
		// (concat and arithmetic never short-circuit), so a division by zero
		// on either side surfaces regardless of the other side's NULLs.
		l, err := n.l.evalVec(in, sel)
		if err != nil {
			return nil, err
		}
		r, err := n.r.evalVec(in, sel)
		if err != nil {
			return nil, err
		}
		return concatVec(l, r), nil
	default:
		l, err := n.l.evalVec(in, sel)
		if err != nil {
			return nil, err
		}
		r, err := n.r.evalVec(in, sel)
		if err != nil {
			return nil, err
		}
		return arithVec(n.op, l, r)
	}
}

// constVec broadcasts a folded constant across m slots.
func constVec(v types.Value, m int) *ExprVec {
	out := &ExprVec{Kind: v.K, n: m}
	switch v.K {
	case types.KindInt, types.KindBool:
		out.Ints = make([]int64, m)
		for k := range out.Ints {
			out.Ints[k] = v.I
		}
	case types.KindFloat:
		out.Floats = make([]float64, m)
		for k := range out.Floats {
			out.Floats[k] = v.F
		}
	case types.KindString:
		out.Strs = make([]string, m)
		for k := range out.Strs {
			out.Strs[k] = v.S
		}
	}
	return out
}

// gatherCol copies the selected rows of a typed column into a dense vector.
// NULL slots keep the zero element.
func gatherCol(in *VecInput, ord int, sel []int32) *ExprVec {
	c := in.col(ord)
	ridx := in.RowIdx
	m := len(sel)
	out := &ExprVec{Kind: c.Kind, n: m}
	if c.Kind == types.KindNull {
		return out
	}
	var nulls []bool
	if c.Nulls != nil {
		nulls = make([]bool, m)
	}
	switch c.Kind {
	case types.KindInt, types.KindBool:
		out.Ints = make([]int64, m)
		for k, p := range sel {
			r := rowAt(ridx, p)
			if nulls != nil && c.Nulls.Get(r) {
				nulls[k] = true
				continue
			}
			out.Ints[k] = c.Ints[r]
		}
	case types.KindFloat:
		out.Floats = make([]float64, m)
		for k, p := range sel {
			r := rowAt(ridx, p)
			if nulls != nil && c.Nulls.Get(r) {
				nulls[k] = true
				continue
			}
			out.Floats[k] = c.Floats[r]
		}
	case types.KindString:
		out.Strs = make([]string, m)
		if c.IsDict() {
			for k, p := range sel {
				r := rowAt(ridx, p)
				if nulls != nil && c.Nulls.Get(r) {
					nulls[k] = true
					continue
				}
				out.Strs[k] = c.Dict[c.Codes[r]]
			}
		} else {
			for k, p := range sel {
				r := rowAt(ridx, p)
				if nulls != nil && c.Nulls.Get(r) {
					nulls[k] = true
					continue
				}
				out.Strs[k] = c.Strs[r]
			}
		}
	}
	out.Nulls = nulls
	return out
}

// negVec negates a numeric vector in place (freshly built by the child, so
// mutation is safe). NULL slots keep the zero element.
func negVec(l *ExprVec) *ExprVec {
	switch l.Kind {
	case types.KindInt:
		for k := range l.Ints {
			if l.Nulls != nil && l.Nulls[k] {
				continue
			}
			l.Ints[k] = -l.Ints[k]
		}
	case types.KindFloat:
		for k := range l.Floats {
			if l.Nulls != nil && l.Nulls[k] {
				continue
			}
			l.Floats[k] = -l.Floats[k]
		}
	}
	return l // KindNull passes through: -NULL is NULL
}

func mergedNulls(m int, l, r *ExprVec) []bool {
	if l.Nulls == nil && r.Nulls == nil {
		return nil
	}
	nulls := make([]bool, m)
	for k := 0; k < m; k++ {
		nulls[k] = (l.Nulls != nil && l.Nulls[k]) || (r.Nulls != nil && r.Nulls[k])
	}
	return nulls
}

// arithVec applies + - * / with types.Arith's exact semantics: NULL operands
// null the slot before the zero-denominator check, int⊕int stays int with Go
// wraparound, division is always float, mixed operands widen to float64.
func arithVec(op exprOp, l, r *ExprVec) (*ExprVec, error) {
	m := l.n
	if l.Kind == types.KindNull || r.Kind == types.KindNull {
		return &ExprVec{Kind: types.KindNull, n: m}, nil
	}
	if op == opDiv {
		out := &ExprVec{Kind: types.KindFloat, Floats: make([]float64, m), n: m}
		nulls := mergedNulls(m, l, r)
		for k := 0; k < m; k++ {
			if nulls != nil && nulls[k] {
				continue
			}
			den := r.numFloat(k)
			if den == 0 {
				return nil, fmt.Errorf("division by zero")
			}
			out.Floats[k] = l.numFloat(k) / den
		}
		out.Nulls = nulls
		return out, nil
	}
	if l.Kind == types.KindInt && r.Kind == types.KindInt {
		out := &ExprVec{Kind: types.KindInt, Ints: make([]int64, m), n: m}
		nulls := mergedNulls(m, l, r)
		la, ra := l.Ints, r.Ints
		switch op {
		case opAdd:
			for k := 0; k < m; k++ {
				if nulls != nil && nulls[k] {
					continue
				}
				out.Ints[k] = la[k] + ra[k]
			}
		case opSub:
			for k := 0; k < m; k++ {
				if nulls != nil && nulls[k] {
					continue
				}
				out.Ints[k] = la[k] - ra[k]
			}
		case opMul:
			for k := 0; k < m; k++ {
				if nulls != nil && nulls[k] {
					continue
				}
				out.Ints[k] = la[k] * ra[k]
			}
		}
		out.Nulls = nulls
		return out, nil
	}
	out := &ExprVec{Kind: types.KindFloat, Floats: make([]float64, m), n: m}
	nulls := mergedNulls(m, l, r)
	switch op {
	case opAdd:
		for k := 0; k < m; k++ {
			if nulls != nil && nulls[k] {
				continue
			}
			out.Floats[k] = l.numFloat(k) + r.numFloat(k)
		}
	case opSub:
		for k := 0; k < m; k++ {
			if nulls != nil && nulls[k] {
				continue
			}
			out.Floats[k] = l.numFloat(k) - r.numFloat(k)
		}
	case opMul:
		for k := 0; k < m; k++ {
			if nulls != nil && nulls[k] {
				continue
			}
			out.Floats[k] = l.numFloat(k) * r.numFloat(k)
		}
	}
	out.Nulls = nulls
	return out, nil
}

// concatVec implements || : NULL if either slot is NULL, else the two slots
// rendered with Value.String() semantics and joined.
func concatVec(l, r *ExprVec) *ExprVec {
	m := l.n
	if l.Kind == types.KindNull || r.Kind == types.KindNull {
		return &ExprVec{Kind: types.KindNull, n: m}
	}
	out := &ExprVec{Kind: types.KindString, Strs: make([]string, m), n: m}
	nulls := mergedNulls(m, l, r)
	for k := 0; k < m; k++ {
		if nulls != nil && nulls[k] {
			continue
		}
		out.Strs[k] = l.slotStr(k) + r.slotStr(k)
	}
	out.Nulls = nulls
	return out
}
