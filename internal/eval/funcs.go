package eval

import (
	"fmt"
	"math"

	"sqlsheet/internal/aggs"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// evalFunc dispatches scalar function calls. Aggregate names reaching the
// evaluator directly are an error: the planner rewrites aggregates into
// synthetic columns before evaluation, and cell aggregates become CellAgg
// nodes at parse time.
func evalFunc(ctx *Context, x *sqlast.FuncCall) (types.Value, error) {
	if aggs.IsAggregate(x.Name) {
		return types.Null, fmt.Errorf("aggregate %s() is not allowed in this context", x.Name)
	}
	args := make([]types.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := Eval(ctx, a)
		if err != nil {
			return types.Null, err
		}
		args[i] = v
	}
	return CallScalar(x.Name, args)
}

// CallScalar evaluates a built-in scalar function over already-computed
// arguments.
func CallScalar(name string, args []types.Value) (types.Value, error) {
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s() expects %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	num1 := func(f func(float64) float64) (types.Value, error) {
		if err := arity(1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		if !args[0].IsNumeric() {
			return types.Null, fmt.Errorf("%s() expects a numeric argument", name)
		}
		r := f(args[0].Float())
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return types.Null, fmt.Errorf("%s() result out of range", name)
		}
		return types.NewFloat(r), nil
	}

	switch name {
	case "abs":
		if err := arity(1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		if args[0].K == types.KindInt {
			if args[0].I < 0 {
				return types.NewInt(-args[0].I), nil
			}
			return args[0], nil
		}
		return num1(math.Abs)
	case "sqrt":
		return num1(math.Sqrt)
	case "exp":
		return num1(math.Exp)
	case "ln":
		return num1(math.Log)
	case "floor":
		return num1(math.Floor)
	case "ceil", "ceiling":
		return num1(math.Ceil)
	case "sign":
		if err := arity(1); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		f := args[0].Float()
		switch {
		case f > 0:
			return types.NewInt(1), nil
		case f < 0:
			return types.NewInt(-1), nil
		}
		return types.NewInt(0), nil
	case "round", "trunc":
		if len(args) != 1 && len(args) != 2 {
			return types.Null, fmt.Errorf("%s() expects 1 or 2 arguments", name)
		}
		if args[0].IsNull() {
			return types.Null, nil
		}
		digits := int64(0)
		if len(args) == 2 {
			if args[1].IsNull() {
				return types.Null, nil
			}
			digits = args[1].Int()
		}
		scale := math.Pow(10, float64(digits))
		f := args[0].Float() * scale
		if name == "round" {
			f = math.Round(f)
		} else {
			f = math.Trunc(f)
		}
		return types.NewFloat(f / scale), nil
	case "power", "pow":
		if err := arity(2); err != nil {
			return types.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null, nil
		}
		return types.NewFloat(math.Pow(args[0].Float(), args[1].Float())), nil
	case "mod":
		if err := arity(2); err != nil {
			return types.Null, err
		}
		return types.Arith('%', args[0], args[1], types.KeepNav)
	case "upper":
		return str1(name, args, func(s string) types.Value { return types.NewString(toUpper(s)) })
	case "lower":
		return str1(name, args, func(s string) types.Value { return types.NewString(toLower(s)) })
	case "length", "len":
		return str1(name, args, func(s string) types.Value { return types.NewInt(int64(len(s))) })
	case "substr", "substring":
		if len(args) != 2 && len(args) != 3 {
			return types.Null, fmt.Errorf("substr() expects 2 or 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null, nil
		}
		s := args[0].String()
		start := int(args[1].Int()) - 1 // SQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return types.NewString(""), nil
		}
		end := len(s)
		if len(args) == 3 {
			if args[2].IsNull() {
				return types.Null, nil
			}
			if n := int(args[2].Int()); start+n < end {
				end = start + n
			}
		}
		if end < start {
			end = start
		}
		return types.NewString(s[start:end]), nil
	case "concat":
		var out string
		for _, a := range args {
			if a.IsNull() {
				continue
			}
			out += a.String()
		}
		return types.NewString(out), nil
	case "coalesce", "nvl":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return types.Null, nil
	case "nullif":
		if err := arity(2); err != nil {
			return types.Null, err
		}
		if !args[0].IsNull() && !args[1].IsNull() && types.Equal(args[0], args[1]) {
			return types.Null, nil
		}
		return args[0], nil
	case "least", "greatest":
		if len(args) == 0 {
			return types.Null, fmt.Errorf("%s() expects at least 1 argument", name)
		}
		best := args[0]
		for _, a := range args[1:] {
			if a.IsNull() || best.IsNull() {
				return types.Null, nil
			}
			c := types.Compare(a, best)
			if (name == "least" && c < 0) || (name == "greatest" && c > 0) {
				best = a
			}
		}
		return best, nil
	}
	return types.Null, fmt.Errorf("unknown function %s()", name)
}

func str1(name string, args []types.Value, f func(string) types.Value) (types.Value, error) {
	if len(args) != 1 {
		return types.Null, fmt.Errorf("%s() expects 1 argument", name)
	}
	if args[0].IsNull() {
		return types.Null, nil
	}
	return f(args[0].String()), nil
}

// ASCII-only case mappers keep us free of unicode tables; SQL identifiers
// and the paper's workloads are ASCII.
func toUpper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 32
		}
	}
	return string(b)
}

func toLower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}
