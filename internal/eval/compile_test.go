package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"sqlsheet/internal/parser"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// exprGen builds random expression trees over the fixed test schema
// (a INT, b FLOAT, c TEXT, d INT). It deliberately produces expressions
// that error at runtime (division by zero, type mismatches, bad LIKE
// operands) because Compile must reproduce interpreter errors exactly.
type exprGen struct {
	rng *rand.Rand
}

func (g *exprGen) lit() sqlast.Expr {
	switch g.rng.Intn(6) {
	case 0:
		return &sqlast.Literal{Val: types.NewInt(int64(g.rng.Intn(21) - 10))}
	case 1:
		return &sqlast.Literal{Val: types.NewFloat(float64(g.rng.Intn(41)-20) / 4)}
	case 2:
		pats := []string{"dvd", "d%", "%v%", "d_d", "", "100% sure", "west"}
		return &sqlast.Literal{Val: types.NewString(pats[g.rng.Intn(len(pats))])}
	case 3:
		return &sqlast.Literal{Val: types.Null}
	default:
		return &sqlast.Literal{Val: types.NewInt(int64(g.rng.Intn(3)))}
	}
}

func (g *exprGen) column() sqlast.Expr {
	names := []string{"a", "b", "c", "d"}
	return &sqlast.ColumnRef{Name: names[g.rng.Intn(len(names))]}
}

func (g *exprGen) expr(depth int) sqlast.Expr {
	if depth <= 0 {
		if g.rng.Intn(2) == 0 {
			return g.lit()
		}
		return g.column()
	}
	d := depth - 1
	switch g.rng.Intn(12) {
	case 0:
		ops := []string{"-", "NOT"}
		return &sqlast.Unary{Op: ops[g.rng.Intn(len(ops))], X: g.expr(d)}
	case 1, 2, 3:
		ops := []string{"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "||"}
		return &sqlast.Binary{Op: ops[g.rng.Intn(len(ops))], L: g.expr(d), R: g.expr(d)}
	case 4:
		return &sqlast.Between{X: g.expr(d), Lo: g.expr(d), Hi: g.expr(d), Not: g.rng.Intn(2) == 0}
	case 5:
		n := 1 + g.rng.Intn(12) // crosses the hashed-set threshold sometimes
		list := make([]sqlast.Expr, n)
		allLit := g.rng.Intn(2) == 0
		for i := range list {
			if allLit {
				list[i] = g.lit()
			} else {
				list[i] = g.expr(0)
			}
		}
		return &sqlast.InList{X: g.expr(d), List: list, Not: g.rng.Intn(2) == 0}
	case 6:
		return &sqlast.IsNull{X: g.expr(d), Not: g.rng.Intn(2) == 0}
	case 7:
		var pat sqlast.Expr
		if g.rng.Intn(2) == 0 {
			pats := []string{"d%", "%v%", "d_d", "west", "%", "_", ""}
			pat = &sqlast.Literal{Val: types.NewString(pats[g.rng.Intn(len(pats))])}
		} else {
			pat = g.expr(0) // dynamic pattern, possibly non-string or NULL
		}
		return &sqlast.Like{X: g.expr(d), Pattern: pat, Not: g.rng.Intn(2) == 0}
	case 8:
		n := 1 + g.rng.Intn(2)
		whens := make([]sqlast.When, n)
		for i := range whens {
			whens[i] = sqlast.When{Cond: g.expr(d), Then: g.expr(d)}
		}
		var els sqlast.Expr
		if g.rng.Intn(2) == 0 {
			els = g.expr(d)
		}
		var operand sqlast.Expr
		if g.rng.Intn(2) == 0 {
			operand = g.expr(d)
		}
		return &sqlast.Case{Operand: operand, Whens: whens, Else: els}
	case 9:
		fns := []struct {
			name string
			n    int
		}{{"abs", 1}, {"upper", 1}, {"lower", 1}, {"length", 1}, {"sign", 1},
			{"floor", 1}, {"coalesce", 2}, {"nullif", 2}, {"mod", 2}, {"least", 2}}
		f := fns[g.rng.Intn(len(fns))]
		args := make([]sqlast.Expr, f.n)
		for i := range args {
			args[i] = g.expr(d)
		}
		return &sqlast.FuncCall{Name: f.name, Args: args}
	default:
		if g.rng.Intn(2) == 0 {
			return g.lit()
		}
		return g.column()
	}
}

// compileTestRows covers NULLs, zeros (division errors), negatives and
// strings with LIKE metacharacters.
func compileTestRows() []types.Row {
	mk := func(a, b, c, d types.Value) types.Row { return types.Row{a, b, c, d} }
	return []types.Row{
		mk(types.NewInt(1), types.NewFloat(2.5), types.NewString("dvd"), types.NewInt(7)),
		mk(types.NewInt(0), types.NewFloat(0), types.NewString("west"), types.NewInt(-3)),
		mk(types.NewInt(-5), types.NewFloat(-1.25), types.NewString(""), types.NewInt(0)),
		mk(types.Null, types.NewFloat(100), types.NewString("d_d"), types.Null),
		mk(types.NewInt(42), types.Null, types.Null, types.NewInt(1)),
		mk(types.NewInt(2), types.NewFloat(0.5), types.NewString("100% sure"), types.NewInt(2)),
	}
}

func sameValErr(gv types.Value, gerr error, wv types.Value, werr error) bool {
	if (gerr != nil) != (werr != nil) {
		return false
	}
	if gerr != nil {
		return gerr.Error() == werr.Error()
	}
	if gv.K != wv.K {
		return false
	}
	return types.Key(gv) == types.Key(wv)
}

// TestCompileMatchesInterpreter is the compiled-evaluation equivalence
// property: for random expression trees over random rows, Compile+run
// returns exactly what the tree-walking interpreter returns — same value,
// same kind, and on failure the same error text — under both NULL
// navigation modes.
func TestCompileMatchesInterpreter(t *testing.T) {
	bs := NewBoundSchema([]BoundCol{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}})
	rows := compileTestRows()
	for seed := int64(0); seed < 300; seed++ {
		g := &exprGen{rng: rand.New(rand.NewSource(seed))}
		e := g.expr(4)
		ce, err := Compile(bs, e)
		if err != nil {
			t.Fatalf("seed %d: Compile(%s): %v", seed, e, err)
		}
		if !ce.Valid() {
			t.Fatalf("seed %d: Compile(%s) returned invalid expression", seed, e)
		}
		if !ce.Full() {
			t.Errorf("seed %d: Compile(%s) fell back to the interpreter for a supported node kind", seed, e)
		}
		for ri, row := range rows {
			for _, nav := range []types.NavMode{types.KeepNav, types.IgnoreNav} {
				wctx := &Context{Binding: &Binding{BS: bs, Row: row}, Nav: nav}
				want, werr := Eval(wctx, e)
				gctx := &Context{Binding: &Binding{BS: bs, Row: row}, Nav: nav}
				got, gerr := ce.Eval(gctx)
				if !sameValErr(got, gerr, want, werr) {
					t.Fatalf("seed %d row %d nav %v: %s\n compiled = (%v, %v)\n interp   = (%v, %v)",
						seed, ri, nav, e, got, gerr, want, werr)
				}
			}
		}
	}
}

// TestCompileMatchesInterpreterParsed re-checks equivalence on hand-written
// expressions exercising specific code paths: constant folding, the hashed
// IN-list, precompiled LIKE shapes, ambiguous columns and unbound rows.
func TestCompileMatchesInterpreterParsed(t *testing.T) {
	bs := NewBoundSchema([]BoundCol{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}})
	exprs := []string{
		"1 + 2 * 3",
		"a + b * 2 - d",
		"a / d",
		"a % d",
		"1 / 0",
		"a = d OR b > 1.5",
		"NOT (a < d AND c = 'dvd')",
		"a BETWEEN d AND 10",
		"a IN (1, 2, 3)",
		"a IN (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)", // hashed-set path
		"c IN ('dvd', 'vcr', c)",
		"c LIKE 'd%'",
		"c LIKE '%v%'",
		"c LIKE 'd_d'",
		"c LIKE '100!% s%' ", // literal % has no escape support; just a miss
		"c NOT LIKE c",
		"c IS NULL",
		"b IS NOT NULL",
		"CASE WHEN a > 0 THEN 'pos' WHEN a = 0 THEN 'zero' ELSE 'neg' END",
		"CASE a WHEN 1 THEN b WHEN 0 THEN -b END",
		"abs(a) + length(c)",
		"coalesce(a, d, 0)",
		"upper(c) || '-' || lower(c)",
		"a + 'oops'",
		"-c",
	}
	rows := compileTestRows()
	for _, src := range exprs {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		ce, err := Compile(bs, e)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		for ri, row := range rows {
			for _, nav := range []types.NavMode{types.KeepNav, types.IgnoreNav} {
				want, werr := Eval(&Context{Binding: &Binding{BS: bs, Row: row}, Nav: nav}, e)
				got, gerr := ce.Eval(&Context{Binding: &Binding{BS: bs, Row: row}, Nav: nav})
				if !sameValErr(got, gerr, want, werr) {
					t.Errorf("%q row %d nav %v: compiled=(%v,%v) interp=(%v,%v)",
						src, ri, nav, got, gerr, want, werr)
				}
			}
		}
	}
}

// TestCompileUnboundAndAmbiguous checks that compiled column access
// reproduces the interpreter's unbound-row and ambiguous-reference errors.
func TestCompileUnboundAndAmbiguous(t *testing.T) {
	amb := NewBoundSchema([]BoundCol{{Table: "t", Name: "x"}, {Table: "u", Name: "x"}})
	e, err := parser.ParseExpr("x + 1")
	if err != nil {
		t.Fatal(err)
	}
	ce, err := Compile(amb, e)
	if err != nil {
		t.Fatal(err)
	}
	row := types.Row{types.NewInt(1), types.NewInt(2)}
	want, werr := Eval(&Context{Binding: &Binding{BS: amb, Row: row}}, e)
	got, gerr := ce.Eval(&Context{Binding: &Binding{BS: amb, Row: row}})
	if !sameValErr(got, gerr, want, werr) {
		t.Errorf("ambiguous: compiled=(%v,%v) interp=(%v,%v)", got, gerr, want, werr)
	}

	one := NewBoundSchema([]BoundCol{{Name: "a"}})
	e2, err := parser.ParseExpr("a * 2")
	if err != nil {
		t.Fatal(err)
	}
	ce2, err := Compile(one, e2)
	if err != nil {
		t.Fatal(err)
	}
	want, werr = Eval(&Context{}, e2)
	got, gerr = ce2.Eval(&Context{})
	if !sameValErr(got, gerr, want, werr) {
		t.Errorf("unbound row: compiled=(%v,%v) interp=(%v,%v)", got, gerr, want, werr)
	}
}

// TestCompileNilAndFallback pins the CompiledExpr zero-value contract.
func TestCompileNilAndFallback(t *testing.T) {
	var zero CompiledExpr
	if zero.Valid() {
		t.Error("zero CompiledExpr must be invalid")
	}
	ce, err := Compile(NewBoundSchema(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Valid() {
		t.Error("Compile(nil) must return the invalid zero value")
	}
}

var _ = fmt.Sprintf // keep fmt for debugging helpers above
