// Package eval is the tree-walking expression evaluator. It is shared by the
// relational executor and the spreadsheet engine: spreadsheet-only constructs
// (cell references, cv(), previous(), IS PRESENT) and subqueries are resolved
// through hooks on the Context, so the evaluator itself stays independent of
// both layers.
package eval

import (
	"errors"
	"fmt"

	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// ErrUnknownColumn is the sentinel wrapped by every unresolved-column
// failure (here and in the planner's resolution check). The executor's
// dynamic correlated-subquery detection tests for it with errors.Is, so
// wrapped errors cannot be misclassified the way substring matching could.
var ErrUnknownColumn = errors.New("unknown column")

// Context carries everything an expression needs at evaluation time.
type Context struct {
	// Binding resolves column references; may be nil for constant folding.
	Binding *Binding
	// Nav selects NULL arithmetic semantics (the IGNORE NAV option).
	Nav types.NavMode

	// Spreadsheet hooks; nil outside formula evaluation.
	Cell     func(*sqlast.CellRef) (types.Value, error)
	CellAgg  func(*sqlast.CellAgg) (types.Value, error)
	CurrentV func(dim string) (types.Value, error)
	Previous func(*sqlast.CellRef) (types.Value, error)
	Present  func(*sqlast.CellRef) (bool, error)

	// Subquery executes nested queries; nil makes subqueries an error.
	Subquery SubqueryRunner
}

// Clone returns a copy of c with its own Binding, so a parallel worker can
// bind rows independently of other workers. The hooks and subquery runner
// are shared, not copied — implementations handed to concurrent workers
// must be safe for concurrent use (the relational executor's runner is
// mutex-guarded; the spreadsheet hooks are per-frame and never shared).
// The outer (parent) binding chain is shared too: workers only ever read
// it, never rebind it.
func (c *Context) Clone() *Context {
	nc := *c
	if c.Binding != nil {
		b := *c.Binding
		b.Row = nil
		nc.Binding = &b
	}
	return &nc
}

// SubqueryRunner executes subqueries with access to the outer binding for
// correlation.
type SubqueryRunner interface {
	// Scalar returns the single value of a one-column, at-most-one-row query.
	Scalar(sub *sqlast.SelectStmt, outer *Binding) (types.Value, error)
	// Column returns the first column of every result row.
	Column(sub *sqlast.SelectStmt, outer *Binding) ([]types.Value, error)
	// Exists reports whether the query returns at least one row.
	Exists(sub *sqlast.SelectStmt, outer *Binding) (bool, error)
	// In evaluates "v IN (subquery)" under three-valued logic. Implementors
	// choose the access path (hash set vs. rescans) — the choice the
	// paper's Fig. 2 shows the optimizer getting wrong for ref-subquery
	// pushing.
	In(sub *sqlast.SelectStmt, outer *Binding, v types.Value) (types.Value, error)
}

// BoundCol names one column visible to expressions, with its table alias.
type BoundCol struct {
	Table string
	Name  string
}

// BoundSchema indexes visible columns for resolution.
type BoundSchema struct {
	Cols   []BoundCol
	byName map[string][]int
	byQual map[string]int
}

// NewBoundSchema builds the resolution index.
func NewBoundSchema(cols []BoundCol) *BoundSchema {
	bs := &BoundSchema{
		Cols:   cols,
		byName: make(map[string][]int),
		byQual: make(map[string]int),
	}
	for i, c := range cols {
		bs.byName[c.Name] = append(bs.byName[c.Name], i)
		if c.Table != "" {
			q := c.Table + "." + c.Name
			if _, dup := bs.byQual[q]; !dup {
				bs.byQual[q] = i
			}
		}
	}
	return bs
}

// FromSchema adapts a plain schema (no table qualifiers).
func FromSchema(s *types.Schema) *BoundSchema {
	cols := make([]BoundCol, s.Len())
	for i, c := range s.Cols {
		cols[i] = BoundCol{Name: c.Name}
	}
	return NewBoundSchema(cols)
}

// Qualify returns a copy of bs with every column's table alias replaced.
func (bs *BoundSchema) Qualify(alias string) *BoundSchema {
	cols := make([]BoundCol, len(bs.Cols))
	for i, c := range bs.Cols {
		cols[i] = BoundCol{Table: alias, Name: c.Name}
	}
	return NewBoundSchema(cols)
}

// Resolve maps a (table, name) reference to a column ordinal.
// found=false means the name is unknown here (the caller may then try an
// outer binding); err is non-nil for genuinely ambiguous references.
func (bs *BoundSchema) Resolve(table, name string) (idx int, found bool, err error) {
	if table != "" {
		i, ok := bs.byQual[table+"."+name]
		if !ok {
			return -1, false, nil
		}
		return i, true, nil
	}
	ids := bs.byName[name]
	switch len(ids) {
	case 0:
		return -1, false, nil
	case 1:
		return ids[0], true, nil
	}
	// Identically-qualified duplicates (e.g. natural self-join of the same
	// column name) are ambiguous.
	return -1, false, fmt.Errorf("ambiguous column reference %q", name)
}

// Binding is a row bound to a schema, with an optional outer binding for
// correlated subqueries.
type Binding struct {
	BS     *BoundSchema
	Row    types.Row
	Parent *Binding
}

// Lookup resolves a column reference through the binding chain.
func (b *Binding) Lookup(table, name string) (types.Value, error) {
	for cur := b; cur != nil; cur = cur.Parent {
		idx, ok, err := cur.BS.Resolve(table, name)
		if err != nil {
			return types.Null, err
		}
		if ok {
			return cur.Row[idx], nil
		}
	}
	if table != "" {
		return types.Null, fmt.Errorf("%w %q.%q", ErrUnknownColumn, table, name)
	}
	return types.Null, fmt.Errorf("%w %q", ErrUnknownColumn, name)
}

// Eval computes the value of e under ctx.
func Eval(ctx *Context, e sqlast.Expr) (types.Value, error) {
	switch x := e.(type) {
	case *sqlast.Literal:
		return x.Val, nil
	case *sqlast.ColumnRef:
		if ctx.Binding == nil {
			return types.Null, fmt.Errorf("column %s referenced with no row bound", x)
		}
		return ctx.Binding.Lookup(x.Table, x.Name)
	case *sqlast.Unary:
		return evalUnary(ctx, x)
	case *sqlast.Binary:
		return evalBinary(ctx, x)
	case *sqlast.Between:
		return evalBetween(ctx, x)
	case *sqlast.InList:
		return evalInList(ctx, x)
	case *sqlast.InSubquery:
		return evalInSubquery(ctx, x)
	case *sqlast.Exists:
		if ctx.Subquery == nil {
			return types.Null, fmt.Errorf("subqueries not available in this context")
		}
		ok, err := ctx.Subquery.Exists(x.Sub, ctx.Binding)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(ok != x.Not), nil
	case *sqlast.ScalarSubquery:
		if ctx.Subquery == nil {
			return types.Null, fmt.Errorf("subqueries not available in this context")
		}
		return ctx.Subquery.Scalar(x.Sub, ctx.Binding)
	case *sqlast.IsNull:
		v, err := Eval(ctx, x.X)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(v.IsNull() != x.Not), nil
	case *sqlast.Like:
		return evalLike(ctx, x)
	case *sqlast.Case:
		return evalCase(ctx, x)
	case *sqlast.FuncCall:
		return evalFunc(ctx, x)
	case *sqlast.CurrentV:
		if ctx.CurrentV == nil {
			return types.Null, fmt.Errorf("cv(%s) outside a formula right side", x.Dim)
		}
		return ctx.CurrentV(x.Dim)
	case *sqlast.CellRef:
		if ctx.Cell == nil {
			return types.Null, fmt.Errorf("cell reference %s outside a spreadsheet clause", x)
		}
		return ctx.Cell(x)
	case *sqlast.CellAgg:
		if ctx.CellAgg == nil {
			return types.Null, fmt.Errorf("cell aggregate %s outside a spreadsheet clause", x)
		}
		return ctx.CellAgg(x)
	case *sqlast.Previous:
		if ctx.Previous == nil {
			return types.Null, fmt.Errorf("previous() is only valid in UNTIL conditions")
		}
		return ctx.Previous(x.Cell)
	case *sqlast.Present:
		if ctx.Present == nil {
			return types.Null, fmt.Errorf("IS PRESENT outside a spreadsheet clause")
		}
		ok, err := ctx.Present(x.Cell)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(ok != x.Not), nil
	case *sqlast.Star:
		return types.Null, fmt.Errorf("'*' is not a value expression")
	}
	return types.Null, fmt.Errorf("cannot evaluate %T", e)
}

// EvalBool evaluates a predicate under SQL three-valued logic; NULL is false.
func EvalBool(ctx *Context, e sqlast.Expr) (bool, error) {
	v, err := Eval(ctx, e)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}

func evalUnary(ctx *Context, x *sqlast.Unary) (types.Value, error) {
	v, err := Eval(ctx, x.X)
	if err != nil {
		return types.Null, err
	}
	switch x.Op {
	case "-":
		return types.Neg(v, ctx.Nav)
	case "NOT":
		if v.IsNull() {
			return types.Null, nil
		}
		return types.NewBool(!v.Bool()), nil
	}
	return types.Null, fmt.Errorf("unknown unary operator %q", x.Op)
}

func evalBinary(ctx *Context, x *sqlast.Binary) (types.Value, error) {
	switch x.Op {
	case "AND":
		l, err := Eval(ctx, x.L)
		if err != nil {
			return types.Null, err
		}
		if !l.IsNull() && !l.Bool() {
			return types.NewBool(false), nil
		}
		r, err := Eval(ctx, x.R)
		if err != nil {
			return types.Null, err
		}
		if !r.IsNull() && !r.Bool() {
			return types.NewBool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return types.Null, nil
		}
		return types.NewBool(true), nil
	case "OR":
		l, err := Eval(ctx, x.L)
		if err != nil {
			return types.Null, err
		}
		if !l.IsNull() && l.Bool() {
			return types.NewBool(true), nil
		}
		r, err := Eval(ctx, x.R)
		if err != nil {
			return types.Null, err
		}
		if !r.IsNull() && r.Bool() {
			return types.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return types.Null, nil
		}
		return types.NewBool(false), nil
	}
	l, err := Eval(ctx, x.L)
	if err != nil {
		return types.Null, err
	}
	r, err := Eval(ctx, x.R)
	if err != nil {
		return types.Null, err
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		return types.Arith(x.Op[0], l, r, ctx.Nav)
	case "||":
		if l.IsNull() || r.IsNull() {
			return types.Null, nil
		}
		return types.NewString(l.String() + r.String()), nil
	case "=", "<>", "<", "<=", ">", ">=":
		return CompareSQL(x.Op, l, r), nil
	}
	return types.Null, fmt.Errorf("unknown operator %q", x.Op)
}

// CompareSQL applies a comparison operator under three-valued logic.
func CompareSQL(op string, l, r types.Value) types.Value {
	if l.IsNull() || r.IsNull() {
		return types.Null
	}
	if op == "=" || op == "<>" {
		eq := types.Equal(l, r)
		return types.NewBool(eq == (op == "="))
	}
	// Ordered comparison across incompatible kinds is false rather than an
	// error (dimension predicates routinely mix domains during pushdown).
	if l.IsNumeric() != r.IsNumeric() {
		return types.NewBool(false)
	}
	c := types.Compare(l, r)
	switch op {
	case "<":
		return types.NewBool(c < 0)
	case "<=":
		return types.NewBool(c <= 0)
	case ">":
		return types.NewBool(c > 0)
	case ">=":
		return types.NewBool(c >= 0)
	}
	return types.Null
}

func evalBetween(ctx *Context, x *sqlast.Between) (types.Value, error) {
	v, err := Eval(ctx, x.X)
	if err != nil {
		return types.Null, err
	}
	lo, err := Eval(ctx, x.Lo)
	if err != nil {
		return types.Null, err
	}
	hi, err := Eval(ctx, x.Hi)
	if err != nil {
		return types.Null, err
	}
	ge := CompareSQL(">=", v, lo)
	le := CompareSQL("<=", v, hi)
	res := and3(ge, le)
	if x.Not {
		return not3(res), nil
	}
	return res, nil
}

func and3(a, b types.Value) types.Value {
	if (!a.IsNull() && !a.Bool()) || (!b.IsNull() && !b.Bool()) {
		return types.NewBool(false)
	}
	if a.IsNull() || b.IsNull() {
		return types.Null
	}
	return types.NewBool(true)
}

func not3(v types.Value) types.Value {
	if v.IsNull() {
		return types.Null
	}
	return types.NewBool(!v.Bool())
}

// inListSet is the hashed membership cache for large literal IN-lists.
type inListSet struct {
	set     map[string]bool
	sawNull bool
}

// inListSetThreshold is the list size past which an all-literal IN-list is
// hashed instead of scanned (pushed predicates from the spreadsheet
// optimizer routinely carry dozens of values).
const inListSetThreshold = 9

func evalInList(ctx *Context, x *sqlast.InList) (types.Value, error) {
	v, err := Eval(ctx, x.X)
	if err != nil {
		return types.Null, err
	}
	if len(x.List) >= inListSetThreshold {
		cached := x.Cache(func() any {
			s := &inListSet{set: make(map[string]bool, len(x.List))}
			for _, it := range x.List {
				lit, ok := it.(*sqlast.Literal)
				if !ok {
					return (*inListSet)(nil) // non-literal member: no cache
				}
				if lit.Val.IsNull() {
					s.sawNull = true
					continue
				}
				s.set[types.Key(lit.Val)] = true
			}
			return s
		})
		if s, _ := cached.(*inListSet); s != nil {
			var res types.Value
			switch {
			case v.IsNull():
				res = types.Null
			case s.set[types.Key(v)]:
				res = types.NewBool(true)
			case s.sawNull:
				res = types.Null
			default:
				res = types.NewBool(false)
			}
			if x.Not {
				return not3(res), nil
			}
			return res, nil
		}
	}
	res, err := inValues(ctx, v, func(yield func(types.Value) error) error {
		for _, it := range x.List {
			iv, err := Eval(ctx, it)
			if err != nil {
				return err
			}
			if err := yield(iv); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return types.Null, err
	}
	if x.Not {
		return not3(res), nil
	}
	return res, nil
}

func evalInSubquery(ctx *Context, x *sqlast.InSubquery) (types.Value, error) {
	if ctx.Subquery == nil {
		return types.Null, fmt.Errorf("subqueries not available in this context")
	}
	v, err := Eval(ctx, x.X)
	if err != nil {
		return types.Null, err
	}
	res, err := ctx.Subquery.In(x.Sub, ctx.Binding, v)
	if err != nil {
		return types.Null, err
	}
	if x.Not {
		return not3(res), nil
	}
	return res, nil
}

// InMembership implements the standard three-valued IN semantics over a
// materialized value list; runner implementations use it for the
// nested-loop (rescan) strategy.
func InMembership(v types.Value, vals []types.Value) types.Value {
	if v.IsNull() {
		return types.Null
	}
	sawNull := false
	for _, iv := range vals {
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if types.Equal(v, iv) {
			return types.NewBool(true)
		}
	}
	if sawNull {
		return types.Null
	}
	return types.NewBool(false)
}

// errFoundMatch short-circuits the membership scan.
var errFoundMatch = fmt.Errorf("match")

// inValues implements SQL IN semantics: TRUE on a match, NULL if no match
// but some member (or the probe) is NULL, else FALSE.
func inValues(_ *Context, v types.Value, each func(func(types.Value) error) error) (types.Value, error) {
	if v.IsNull() {
		return types.Null, nil
	}
	sawNull := false
	err := each(func(iv types.Value) error {
		if iv.IsNull() {
			sawNull = true
			return nil
		}
		if types.Equal(v, iv) {
			return errFoundMatch
		}
		return nil
	})
	if err == errFoundMatch {
		return types.NewBool(true), nil
	}
	if err != nil {
		return types.Null, err
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(false), nil
}

func evalLike(ctx *Context, x *sqlast.Like) (types.Value, error) {
	v, err := Eval(ctx, x.X)
	if err != nil {
		return types.Null, err
	}
	p, err := Eval(ctx, x.Pattern)
	if err != nil {
		return types.Null, err
	}
	if v.IsNull() || p.IsNull() {
		return types.Null, nil
	}
	m := matcherFor(x, p.String())
	return types.NewBool(m.match(v.String()) != x.Not), nil
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pat string) bool {
	// Iterative two-pointer match with backtracking on '%'.
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

func evalCase(ctx *Context, x *sqlast.Case) (types.Value, error) {
	if x.Operand != nil {
		op, err := Eval(ctx, x.Operand)
		if err != nil {
			return types.Null, err
		}
		for _, w := range x.Whens {
			wv, err := Eval(ctx, w.Cond)
			if err != nil {
				return types.Null, err
			}
			if !op.IsNull() && !wv.IsNull() && types.Equal(op, wv) {
				return Eval(ctx, w.Then)
			}
		}
	} else {
		for _, w := range x.Whens {
			ok, err := EvalBool(ctx, w.Cond)
			if err != nil {
				return types.Null, err
			}
			if ok {
				return Eval(ctx, w.Then)
			}
		}
	}
	if x.Else != nil {
		return Eval(ctx, x.Else)
	}
	return types.Null, nil
}
