package eval

import (
	"testing"

	"sqlsheet/internal/types"
)

func call(t *testing.T, name string, args ...types.Value) (types.Value, error) {
	t.Helper()
	return CallScalar(name, args)
}

func TestScalarFunctionNullPropagation(t *testing.T) {
	for _, name := range []string{"abs", "sqrt", "exp", "ln", "floor", "ceil", "sign", "upper", "lower", "length"} {
		v, err := call(t, name, types.Null)
		if err != nil || !v.IsNull() {
			t.Errorf("%s(NULL) = %v, %v", name, v, err)
		}
	}
	for _, name := range []string{"power", "mod"} {
		v, err := call(t, name, types.Null, types.NewInt(2))
		if err != nil || !v.IsNull() {
			t.Errorf("%s(NULL, 2) = %v, %v", name, v, err)
		}
	}
	if v, err := call(t, "round", types.Null); err != nil || !v.IsNull() {
		t.Errorf("round(NULL) = %v, %v", v, err)
	}
	if v, err := call(t, "substr", types.Null, types.NewInt(1)); err != nil || !v.IsNull() {
		t.Errorf("substr(NULL,1) = %v, %v", v, err)
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	cases := []struct {
		name string
		args []types.Value
	}{
		{"sqrt", []types.Value{types.NewFloat(-1)}},                                 // NaN result
		{"ln", []types.Value{types.NewFloat(0)}},                                    // -Inf result
		{"sqrt", []types.Value{types.NewString("x")}},                               // non-numeric
		{"round", []types.Value{types.NewInt(1), types.NewInt(1), types.NewInt(1)}}, // arity
		{"least", nil}, // arity
		{"nullif", []types.Value{types.NewInt(1)}},               // arity
		{"mod", []types.Value{types.NewInt(1), types.NewInt(0)}}, // div by zero
		{"nosuchfunc", []types.Value{types.NewInt(1)}},
	}
	for _, c := range cases {
		if _, err := CallScalar(c.name, c.args); err == nil {
			t.Errorf("%s(%v) must error", c.name, c.args)
		}
	}
}

func TestSubstrEdges(t *testing.T) {
	check := func(args []types.Value, want string) {
		t.Helper()
		v, err := CallScalar("substr", args)
		if err != nil || v.S != want {
			t.Errorf("substr(%v) = %q, %v; want %q", args, v.S, err, want)
		}
	}
	s := types.NewString("hello")
	check([]types.Value{s, types.NewInt(0)}, "hello") // clamp start
	check([]types.Value{s, types.NewInt(99)}, "")     // past end
	check([]types.Value{s, types.NewInt(2), types.NewInt(99)}, "ello")
	check([]types.Value{s, types.NewInt(2), types.NewInt(0)}, "")
}

func TestLeastGreatestNulls(t *testing.T) {
	v, err := CallScalar("least", []types.Value{types.NewInt(1), types.Null})
	if err != nil || !v.IsNull() {
		t.Errorf("least with NULL = %v, %v", v, err)
	}
	v, err = CallScalar("greatest", []types.Value{types.NewString("a"), types.NewString("b")})
	if err != nil || v.S != "b" {
		t.Errorf("greatest strings = %v, %v", v, err)
	}
}

func TestInMembership(t *testing.T) {
	one, two := types.NewInt(1), types.NewInt(2)
	if v := InMembership(one, []types.Value{one, two}); !v.Bool() {
		t.Error("match")
	}
	if v := InMembership(one, []types.Value{two}); v.Bool() || v.IsNull() {
		t.Error("no match")
	}
	if v := InMembership(one, []types.Value{two, types.Null}); !v.IsNull() {
		t.Error("null member")
	}
	if v := InMembership(types.Null, []types.Value{one}); !v.IsNull() {
		t.Error("null probe")
	}
}

func TestCompareSQLBranches(t *testing.T) {
	if v := CompareSQL("<", types.Null, types.NewInt(1)); !v.IsNull() {
		t.Error("null compare")
	}
	if v := CompareSQL(">", types.NewInt(2), types.NewInt(1)); !v.Bool() {
		t.Error(">")
	}
	if v := CompareSQL(">=", types.NewInt(2), types.NewInt(2)); !v.Bool() {
		t.Error(">=")
	}
	if v := CompareSQL("<=", types.NewInt(2), types.NewInt(3)); !v.Bool() {
		t.Error("<=")
	}
	if v := CompareSQL("<>", types.NewString("a"), types.NewString("b")); !v.Bool() {
		t.Error("<>")
	}
	// Ordered comparison across kinds is false, not an error.
	if v := CompareSQL("<", types.NewString("a"), types.NewInt(1)); v.Bool() || v.IsNull() {
		t.Error("cross-kind ordered compare must be false")
	}
}

func TestResolveAmbiguity(t *testing.T) {
	bs := NewBoundSchema([]BoundCol{{Table: "a", Name: "x"}, {Table: "b", Name: "x"}})
	if _, _, err := bs.Resolve("", "x"); err == nil {
		t.Error("ambiguous resolve must error")
	}
	idx, ok, err := bs.Resolve("b", "x")
	if err != nil || !ok || idx != 1 {
		t.Errorf("qualified resolve: %d %v %v", idx, ok, err)
	}
	if _, ok, _ := bs.Resolve("c", "x"); ok {
		t.Error("unknown qualifier must not resolve")
	}
	// Qualify rewrites table names.
	q := bs.Qualify("v")
	if _, ok, _ := q.Resolve("v", "x"); !ok {
		// Both columns collapse to v.x; first wins for the qualified map.
		t.Error("qualify broken")
	}
}
