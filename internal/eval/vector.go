package eval

import (
	"math"
	"sync/atomic"

	"sqlsheet/internal/colstore"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// This file compiles predicates into vectorized selection kernels: batch
// operators that evaluate a whole chunk of a columnar image per call,
// consuming typed vectors directly and propagating selection vectors
// between operators instead of binding rows one at a time.
//
// Selection-vector contract: a kernel receives `sel`, an ascending list of
// candidate positions, and appends to `out` (len 0, cap ≥ len(sel)) the
// ascending subset of positions where the predicate is TRUE under SQL
// three-valued logic — exactly the rows the row-at-a-time filter keeps.
// NULL and FALSE are both "not selected"; the distinction never escapes a
// kernel because filters only act on TRUE.
//
// NOT is pushed down at compile time. Kleene three-valued logic validates
// De Morgan (NOT(a AND b) ≡ NOT a OR NOT b), so conjunction always lowers
// to sequential kernel application and disjunction to an ordered merge of
// two selections; leaves carry a `neg` flag instead of a rewritten
// operator, which keeps the ordered-comparison-across-kinds-is-FALSE rule
// (CompareSQL) intact under negation.
//
// Equivalence contract: a kernel exists only for expression shapes whose
// compiled closure form cannot error — comparisons, BETWEEN, IN-list, LIKE
// and IS NULL over columns resolved in the compile-time schema, with
// constant-foldable other operands. For those shapes the kernel selects
// exactly the rows CompiledExpr.EvalBool accepts, bit for bit; everything
// else compiles to the invalid kernel and the executor keeps the per-row
// closure path.

// VecInput binds a kernel invocation to a columnar image. ColMap maps
// schema ordinals to image columns (nil = identity); RowIdx maps positions
// to image rows (nil = identity) so a kernel can run over an intermediate
// result that carries base-table provenance.
type VecInput struct {
	Tbl    *colstore.Table
	ColMap []int
	RowIdx []int32
}

func (in *VecInput) col(ord int) *colstore.Column {
	if in.ColMap != nil {
		ord = in.ColMap[ord]
	}
	return in.Tbl.Cols[ord]
}

// selFn is one compiled kernel stage: sel in, selected subset out.
type selFn func(in *VecInput, sel, out []int32) []int32

// SelKernel is a compiled vectorized predicate. The zero value is invalid
// (no kernel; use the per-row closure path).
type SelKernel struct {
	fn   selFn
	nOrd int
}

// Valid reports whether a kernel was compiled.
func (k SelKernel) Valid() bool { return k.fn != nil }

// MinCols returns 1 + the highest schema ordinal the kernel reads; an image
// (or ColMap) must cover at least that many columns.
func (k SelKernel) MinCols() int { return k.nOrd }

// Run applies the kernel over tbl. sel holds ascending candidate positions;
// passing positions are appended to out (which must have cap ≥ len(sel)).
func (k SelKernel) Run(tbl *colstore.Table, cmap []int, rowIdx []int32, sel, out []int32) []int32 {
	in := VecInput{Tbl: tbl, ColMap: cmap, RowIdx: rowIdx}
	return k.fn(&in, sel, out)
}

// CompileSelKernel compiles predicate e against env into a vectorized
// selection kernel, or the invalid kernel when e has no vectorized form.
func CompileSelKernel(env *BoundSchema, e sqlast.Expr) SelKernel {
	if env == nil || e == nil {
		return SelKernel{}
	}
	c := &selCompiler{env: env}
	fn := c.compileSel(e, false)
	if fn == nil {
		return SelKernel{}
	}
	return SelKernel{fn: fn, nOrd: c.nOrd}
}

type selCompiler struct {
	env  *BoundSchema
	nOrd int
	// ext, when set, maps expression shapes the schema cannot resolve
	// (cell references, cv(), aggregates) to extra image ordinals the
	// caller promises to populate — the spreadsheet rule compiler's hook.
	ext func(sqlast.Expr) (int, bool)
}

// column resolves a kernel-eligible column reference: found in the
// compile-time schema, unambiguous. Correlated or ambiguous references
// disqualify the kernel (the closure path handles them).
func (c *selCompiler) column(e sqlast.Expr) (int, bool) {
	x, ok := e.(*sqlast.ColumnRef)
	if !ok {
		return 0, false
	}
	idx, found, err := c.env.Resolve(x.Table, x.Name)
	if err != nil || !found {
		return 0, false
	}
	if idx+1 > c.nOrd {
		c.nOrd = idx + 1
	}
	return idx, true
}

// compileSel lowers e (negated when neg) to a kernel stage, or nil.
func (c *selCompiler) compileSel(e sqlast.Expr, neg bool) selFn {
	if v, ok := foldConst(e); ok {
		return constSel(v, neg)
	}
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		if ord, ok := c.column(x); ok {
			return boolColSel(ord, neg)
		}
	case *sqlast.Unary:
		if x.Op == "NOT" {
			return c.compileSel(x.X, !neg)
		}
	case *sqlast.Binary:
		return c.compileBinarySel(x, neg)
	case *sqlast.Between:
		ord, ok := c.column(x.X)
		if !ok {
			return nil
		}
		lo, okLo := foldConst(x.Lo)
		hi, okHi := foldConst(x.Hi)
		if !okLo || !okHi {
			return nil
		}
		return betweenSel(ord, lo, hi, x.Not != neg)
	case *sqlast.InList:
		if ord, ok := c.column(x.X); ok {
			return inListSel(ord, x, neg)
		}
	case *sqlast.IsNull:
		if ord, ok := c.column(x.X); ok {
			return isNullSel(ord, x.Not != neg)
		}
	case *sqlast.Like:
		ord, ok := c.column(x.X)
		if !ok {
			return nil
		}
		lit, okP := x.Pattern.(*sqlast.Literal)
		if !okP {
			return nil
		}
		return likeSel(ord, lit.Val, x.Not != neg)
	}
	return nil
}

func (c *selCompiler) compileBinarySel(x *sqlast.Binary, neg bool) selFn {
	switch x.Op {
	case "AND", "OR":
		lf := c.compileSel(x.L, neg)
		if lf == nil {
			return nil
		}
		rf := c.compileSel(x.R, neg)
		if rf == nil {
			return nil
		}
		// De Morgan under negation: NOT(a AND b) = NOT a OR NOT b.
		if (x.Op == "AND") != neg {
			return andSel(lf, rf)
		}
		return orSel(lf, rf)
	case "=", "<>", "<", "<=", ">", ">=":
		if lOrd, ok := c.column(x.L); ok {
			if rOrd, ok := c.column(x.R); ok {
				return cmpColCol(lOrd, rOrd, x.Op, neg)
			}
			if cv, ok := foldConst(x.R); ok {
				return cmpColConst(lOrd, x.Op, cv, neg)
			}
			return nil
		}
		if rOrd, ok := c.column(x.R); ok {
			if cv, ok := foldConst(x.L); ok {
				// const OP col  ≡  col mirror(OP) const: Equal is symmetric
				// and Compare is antisymmetric, NaN and kind-order included.
				return cmpColConst(rOrd, mirrorOp(x.Op), cv, neg)
			}
		}
	}
	return nil
}

func mirrorOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

// andSel chains two stages: the second sees only rows the first selected.
// AND is TRUE iff both sides are TRUE, so set intersection is exact.
func andSel(a, b selFn) selFn {
	return func(in *VecInput, sel, out []int32) []int32 {
		tmp := colstore.GetSel(len(sel))
		mid := a(in, sel, *tmp)
		out = b(in, mid, out)
		*tmp = mid
		colstore.PutSel(tmp)
		return out
	}
}

// orSel evaluates both branches over the same input and merge-unions their
// ascending selections. OR is TRUE iff either side is TRUE.
func orSel(a, b selFn) selFn {
	return func(in *VecInput, sel, out []int32) []int32 {
		t1 := colstore.GetSel(len(sel))
		t2 := colstore.GetSel(len(sel))
		ra := a(in, sel, *t1)
		rb := b(in, sel, *t2)
		i, j := 0, 0
		for i < len(ra) && j < len(rb) {
			switch {
			case ra[i] < rb[j]:
				out = append(out, ra[i])
				i++
			case ra[i] > rb[j]:
				out = append(out, rb[j])
				j++
			default:
				out = append(out, ra[i])
				i++
				j++
			}
		}
		out = append(out, ra[i:]...)
		out = append(out, rb[j:]...)
		*t1, *t2 = ra, rb
		colstore.PutSel(t1)
		colstore.PutSel(t2)
		return out
	}
}

// constSel handles predicates folded to a constant: TRUE passes every
// candidate row, anything else (FALSE, NULL, non-boolean) passes none —
// and under negation NOT maps non-NULL non-TRUE to TRUE.
func constSel(v types.Value, neg bool) selFn {
	pass := v.Bool()
	if neg {
		pass = !v.IsNull() && !v.Bool()
	}
	if !pass {
		return noneSel()
	}
	return func(in *VecInput, sel, out []int32) []int32 {
		return append(out, sel...)
	}
}

func noneSel() selFn {
	return func(in *VecInput, sel, out []int32) []int32 { return out }
}

// rowAt maps a position through the optional provenance row index.
func rowAt(ridx []int32, p int32) int {
	if ridx != nil {
		return int(ridx[p])
	}
	return int(p)
}

// genericSel is the boxed-column fallback: per-row boxed values through
// pred, NULL rows skipped (a NULL operand never yields TRUE in any kernel
// leaf). Still a batch kernel — no Context, no binding — just not typed.
func genericSel(in *VecInput, c *colstore.Column, sel, out []int32, pred func(types.Value) bool) []int32 {
	ridx := in.RowIdx
	for _, p := range sel {
		r := rowAt(ridx, p)
		v := c.Value(r) // interp-ok: boxed/mixed-kind column fallback
		if v.IsNull() {
			continue
		}
		if pred(v) {
			out = append(out, p)
		}
	}
	return out
}

// appendNonNull passes every non-NULL row: the shape of "comparison whose
// outcome is row-independent but still NULL-gated".
func appendNonNull(in *VecInput, c *colstore.Column, sel, out []int32) []int32 {
	ridx := in.RowIdx
	for _, p := range sel {
		if !c.IsNull(rowAt(ridx, p)) {
			out = append(out, p)
		}
	}
	return out
}

// normConst mirrors the value layer's canonical numeric normalization
// (types.Equal / AppendKey): an integral FLOAT is the equivalent INT.
func normConst(v types.Value) types.Value {
	if v.K == types.KindFloat {
		if f := v.F; f == math.Trunc(f) && !math.IsInf(f, 0) && f >= math.MinInt64 && f <= math.MaxInt64 {
			return types.Value{K: types.KindInt, I: int64(f)}
		}
	}
	return v
}

// intRange reports whether float f normalizes to int64 (integral, finite,
// in range) under normConst.
func intRange(f float64) bool {
	return f == math.Trunc(f) && !math.IsInf(f, 0) && f >= math.MinInt64 && f <= math.MaxInt64
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// dictTab caches a per-dictionary-code predicate outcome for one column
// instance. Kernels sharing a plan run concurrently on morsel workers; the
// atomic pointer makes racing rebuilds idempotent, never wrong.
type dictTab struct {
	col  *colstore.Column
	pass []bool
}

func dictPassTab(cache *atomic.Pointer[dictTab], c *colstore.Column, f func(string) bool) []bool {
	if t := cache.Load(); t != nil && t.col == c {
		return t.pass
	}
	pass := make([]bool, len(c.Dict))
	for i, s := range c.Dict {
		pass[i] = f(s)
	}
	cache.Store(&dictTab{col: c, pass: pass})
	return pass
}

// cmpColConst compiles `col OP const`. Comparison tables fold the operator
// and the negation at compile time; representation dispatch happens once
// per invocation (a cached plan may see a rebuilt image whose columns
// changed representation after DML).
func cmpColConst(ord int, op string, cv types.Value, neg bool) selFn {
	if cv.IsNull() {
		return noneSel() // CompareSQL yields NULL for every row; NOT(NULL) too
	}
	eqOp := op == "=" || op == "<>"
	want := op == "="
	var etab [2]bool
	etab[0] = (false == want) != neg
	etab[1] = (true == want) != neg
	var tab [3]bool // index Compare(v, cv)+1
	if !eqOp {
		test := orderTest(op)
		for i, cmp := range [3]int{-1, 0, 1} {
			tab[i] = test(cmp) != neg
		}
	}
	passMismatch := neg // ordered numeric/non-numeric mismatch is FALSE
	cvN := normConst(cv)
	cvIsInt := cvN.K == types.KindInt
	cI := cvN.I
	cIf := float64(cI)
	cF := cv.Float()
	var cache atomic.Pointer[dictTab]

	// cmpKindConst reports the row-independent outcome, if any, for a typed
	// column of kind k (Equal and ordered Compare depend only on the kinds
	// once they are incompatible).
	cmpKindConst := func(k types.Kind) (pass, constant bool) {
		kNum := k == types.KindInt || k == types.KindFloat
		cvNum := cv.IsNumeric()
		if eqOp {
			if kNum && cvNum {
				return false, false
			}
			if k == cvN.K {
				return false, false
			}
			return etab[0], true
		}
		if kNum != cvNum {
			return passMismatch, true
		}
		if kNum || k == cv.K {
			return false, false
		}
		cmp := 1
		if k < cv.K {
			cmp = -1
		}
		return tab[cmp+1], true
	}

	return func(in *VecInput, sel, out []int32) []int32 {
		c := in.col(ord)
		if c.Boxed != nil {
			return genericSel(in, c, sel, out, func(v types.Value) bool {
				return CompareSQL(op, v, cv).Bool() != neg
			})
		}
		if c.Kind == types.KindNull {
			return out // all-null column: never TRUE
		}
		if pass, constant := cmpKindConst(c.Kind); constant {
			if pass {
				return appendNonNull(in, c, sel, out)
			}
			return out
		}
		ridx := in.RowIdx
		switch c.Kind {
		case types.KindInt:
			is := c.Ints
			switch {
			case eqOp && cvIsInt:
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					if etab[b2i(is[r] == cI)] {
						out = append(out, p)
					}
				}
			case eqOp:
				// cv stayed FLOAT (non-integral or out of int64 range):
				// Equal reduces to widening float comparison.
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					if etab[b2i(float64(is[r]) == cF)] {
						out = append(out, p)
					}
				}
			default:
				// Ordered numeric comparison is float-widening (types.Compare).
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					af := float64(is[r])
					idx := 1
					if af < cF {
						idx = 0
					} else if af > cF {
						idx = 2
					}
					if tab[idx] {
						out = append(out, p)
					}
				}
			}
		case types.KindFloat:
			fs := c.Floats
			switch {
			case eqOp && cvIsInt:
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					v := fs[r]
					var veq bool
					if intRange(v) {
						veq = int64(v) == cI
					} else {
						veq = v == cIf
					}
					if etab[b2i(veq)] {
						out = append(out, p)
					}
				}
			case eqOp:
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					if etab[b2i(fs[r] == cF)] {
						out = append(out, p)
					}
				}
			default:
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					af := fs[r]
					idx := 1
					if af < cF {
						idx = 0
					} else if af > cF {
						idx = 2
					}
					if tab[idx] {
						out = append(out, p)
					}
				}
			}
		case types.KindString:
			cs := cv.S
			switch {
			case c.IsDict() && eqOp:
				code, ok := c.DictCode(cs)
				if !ok {
					if etab[0] {
						return appendNonNull(in, c, sel, out)
					}
					return out
				}
				codes := c.Codes
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					if etab[b2i(codes[r] == code)] {
						out = append(out, p)
					}
				}
			case c.IsDict():
				pass := dictPassTab(&cache, c, func(s string) bool {
					cmp := 1
					if s < cs {
						cmp = -1
					} else if s == cs {
						cmp = 0
					}
					return tab[cmp+1]
				})
				codes := c.Codes
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					if pass[codes[r]] {
						out = append(out, p)
					}
				}
			case eqOp:
				ss := c.Strs
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					if etab[b2i(ss[r] == cs)] {
						out = append(out, p)
					}
				}
			default:
				ss := c.Strs
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					s := ss[r]
					idx := 1
					if s < cs {
						idx = 0
					} else if s > cs {
						idx = 2
					}
					if tab[idx] {
						out = append(out, p)
					}
				}
			}
		case types.KindBool:
			is := c.Ints
			if eqOp {
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					if etab[b2i(is[r] == cv.I)] {
						out = append(out, p)
					}
				}
			} else {
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					idx := 1
					if is[r] < cv.I {
						idx = 0
					} else if is[r] > cv.I {
						idx = 2
					}
					if tab[idx] {
						out = append(out, p)
					}
				}
			}
		}
		return out
	}
}

// cmpColCol compiles `colA OP colB`.
func cmpColCol(la, ra int, op string, neg bool) selFn {
	eqOp := op == "=" || op == "<>"
	want := op == "="
	var etab [2]bool
	etab[0] = (false == want) != neg
	etab[1] = (true == want) != neg
	var tab [3]bool
	if !eqOp {
		test := orderTest(op)
		for i, cmp := range [3]int{-1, 0, 1} {
			tab[i] = test(cmp) != neg
		}
	}
	return func(in *VecInput, sel, out []int32) []int32 {
		a, b := in.col(la), in.col(ra)
		ridx := in.RowIdx
		aNum := a.Boxed == nil && (a.Kind == types.KindInt || a.Kind == types.KindFloat)
		bNum := b.Boxed == nil && (b.Kind == types.KindInt || b.Kind == types.KindFloat)
		switch {
		case a.Boxed == nil && b.Boxed == nil && a.Kind == types.KindInt && b.Kind == types.KindInt:
			ai, bi := a.Ints, b.Ints
			for _, p := range sel {
				r := rowAt(ridx, p)
				if a.IsNull(r) || b.IsNull(r) {
					continue
				}
				if eqOp {
					if etab[b2i(ai[r] == bi[r])] {
						out = append(out, p)
					}
					continue
				}
				af, bf := float64(ai[r]), float64(bi[r])
				idx := 1
				if af < bf {
					idx = 0
				} else if af > bf {
					idx = 2
				}
				if tab[idx] {
					out = append(out, p)
				}
			}
		case aNum && bNum:
			// Mixed or float numerics: Equal on two numerics reduces to exact
			// float64 equality (integral floats normalize to the same int;
			// cross-kind pairs widen; NaN never equals), ordered comparison
			// widens — both are plain float64 compares.
			for _, p := range sel {
				r := rowAt(ridx, p)
				if a.IsNull(r) || b.IsNull(r) {
					continue
				}
				af, bf := a.NumFloat(r), b.NumFloat(r)
				if eqOp {
					if etab[b2i(numEq(a, b, r))] {
						out = append(out, p)
					}
					continue
				}
				idx := 1
				if af < bf {
					idx = 0
				} else if af > bf {
					idx = 2
				}
				if tab[idx] {
					out = append(out, p)
				}
			}
		case a.Boxed == nil && b.Boxed == nil && a.Kind == types.KindString && b.Kind == types.KindString:
			for _, p := range sel {
				r := rowAt(ridx, p)
				if a.IsNull(r) || b.IsNull(r) {
					continue
				}
				as, bs := a.Str(r), b.Str(r)
				if eqOp {
					if etab[b2i(as == bs)] {
						out = append(out, p)
					}
					continue
				}
				idx := 1
				if as < bs {
					idx = 0
				} else if as > bs {
					idx = 2
				}
				if tab[idx] {
					out = append(out, p)
				}
			}
		default:
			for _, p := range sel {
				r := rowAt(ridx, p)
				av := a.Value(r) // interp-ok: mixed-representation column pair fallback
				bv := b.Value(r) // interp-ok: mixed-representation column pair fallback
				if av.IsNull() || bv.IsNull() {
					continue
				}
				if CompareSQL(op, av, bv).Bool() != neg {
					out = append(out, p)
				}
			}
		}
		return out
	}
}

// numEq replicates types.Equal for two non-NULL numeric column slots:
// equal iff both normalize to the same int64, or widen to equal float64s.
func numEq(a, b *colstore.Column, r int) bool {
	if a.Kind == types.KindInt && b.Kind == types.KindInt {
		return a.Ints[r] == b.Ints[r]
	}
	if a.Kind == types.KindInt {
		f := b.Floats[r]
		if intRange(f) {
			return int64(f) == a.Ints[r]
		}
		return f == float64(a.Ints[r])
	}
	if b.Kind == types.KindInt {
		f := a.Floats[r]
		if intRange(f) {
			return int64(f) == b.Ints[r]
		}
		return f == float64(b.Ints[r])
	}
	// float vs float: normalization maps equal integral values to equal
	// ints and distinct ones to distinct ints, so == is exact either way.
	return a.Floats[r] == b.Floats[r]
}

// betweenSel compiles `col [NOT] BETWEEN lo AND hi` with constant bounds.
func betweenSel(ord int, lo, hi types.Value, notf bool) selFn {
	var cache atomic.Pointer[dictTab]
	generic := func(v types.Value) bool {
		res := and3(CompareSQL(">=", v, lo), CompareSQL("<=", v, hi))
		if notf {
			res = not3(res)
		}
		return res.Bool()
	}
	numFast := lo.IsNumeric() && hi.IsNumeric()
	strFast := lo.K == types.KindString && hi.K == types.KindString
	lof, hif := lo.Float(), hi.Float()
	return func(in *VecInput, sel, out []int32) []int32 {
		c := in.col(ord)
		if c.Boxed != nil {
			return genericSel(in, c, sel, out, generic)
		}
		if c.Kind == types.KindNull {
			return out
		}
		ridx := in.RowIdx
		switch {
		case numFast && c.Kind == types.KindInt:
			is := c.Ints
			for _, p := range sel {
				r := rowAt(ridx, p)
				if c.IsNull(r) {
					continue
				}
				af := float64(is[r])
				if (!(af < lof) && !(af > hif)) != notf {
					out = append(out, p)
				}
			}
		case numFast && c.Kind == types.KindFloat:
			fs := c.Floats
			for _, p := range sel {
				r := rowAt(ridx, p)
				if c.IsNull(r) {
					continue
				}
				af := fs[r]
				if (!(af < lof) && !(af > hif)) != notf {
					out = append(out, p)
				}
			}
		case strFast && c.Kind == types.KindString && c.IsDict():
			pass := dictPassTab(&cache, c, func(s string) bool {
				return (s >= lo.S && s <= hi.S) != notf
			})
			codes := c.Codes
			for _, p := range sel {
				r := rowAt(ridx, p)
				if c.IsNull(r) {
					continue
				}
				if pass[codes[r]] {
					out = append(out, p)
				}
			}
		case strFast && c.Kind == types.KindString:
			ss := c.Strs
			for _, p := range sel {
				r := rowAt(ridx, p)
				if c.IsNull(r) {
					continue
				}
				if (ss[r] >= lo.S && ss[r] <= hi.S) != notf {
					out = append(out, p)
				}
			}
		default:
			// NULL or kind-mismatched bounds: row-wise three-valued logic.
			return genericSel(in, c, sel, out, generic)
		}
		return out
	}
}

// inListSel compiles `col [NOT] IN (literals...)`. Membership sets are
// built once per plan; the float view of the int set covers the rounding
// edge where a huge float equals a distinct int64 after widening.
func inListSel(ord int, x *sqlast.InList, neg bool) selFn {
	lits := make([]types.Value, 0, len(x.List))
	sawNull := false
	for _, it := range x.List {
		lit, ok := it.(*sqlast.Literal)
		if !ok {
			return nil
		}
		if lit.Val.IsNull() {
			sawNull = true
		}
		lits = append(lits, lit.Val)
	}
	notf := x.Not != neg
	if notf && sawNull {
		// NOT IN with a NULL member is never TRUE: not3(TRUE)=FALSE,
		// not3(NULL)=NULL.
		return noneSel()
	}
	intSet := map[int64]struct{}{}
	fltSet := map[float64]struct{}{}
	fltView := map[float64]struct{}{}
	strSet := map[string]struct{}{}
	var boolSet [2]bool
	for _, v := range lits {
		switch n := normConst(v); n.K {
		case types.KindInt:
			intSet[n.I] = struct{}{}
			fltView[float64(n.I)] = struct{}{}
		case types.KindFloat:
			fltSet[n.F] = struct{}{}
			fltView[n.F] = struct{}{}
		case types.KindString:
			strSet[n.S] = struct{}{}
		case types.KindBool:
			boolSet[n.I&1] = true
		}
	}
	generic := func(v types.Value) bool {
		res := InMembership(v, lits)
		if notf {
			res = not3(res)
		}
		return res.Bool()
	}
	var cache atomic.Pointer[dictTab]
	return func(in *VecInput, sel, out []int32) []int32 {
		c := in.col(ord)
		if c.Boxed != nil {
			return genericSel(in, c, sel, out, generic)
		}
		if c.Kind == types.KindNull {
			return out
		}
		ridx := in.RowIdx
		switch c.Kind {
		case types.KindInt:
			is := c.Ints
			for _, p := range sel {
				r := rowAt(ridx, p)
				if c.IsNull(r) {
					continue
				}
				v := is[r]
				_, found := intSet[v]
				if !found {
					_, found = fltSet[float64(v)]
				}
				if found != notf {
					out = append(out, p)
				}
			}
		case types.KindFloat:
			fs := c.Floats
			for _, p := range sel {
				r := rowAt(ridx, p)
				if c.IsNull(r) {
					continue
				}
				v := fs[r]
				var found bool
				if intRange(v) {
					_, found = intSet[int64(v)]
				} else {
					_, found = fltView[v]
				}
				if found != notf {
					out = append(out, p)
				}
			}
		case types.KindString:
			if c.IsDict() {
				pass := dictPassTab(&cache, c, func(s string) bool {
					_, found := strSet[s]
					return found != notf
				})
				codes := c.Codes
				for _, p := range sel {
					r := rowAt(ridx, p)
					if c.IsNull(r) {
						continue
					}
					if pass[codes[r]] {
						out = append(out, p)
					}
				}
				return out
			}
			ss := c.Strs
			for _, p := range sel {
				r := rowAt(ridx, p)
				if c.IsNull(r) {
					continue
				}
				_, found := strSet[ss[r]]
				if found != notf {
					out = append(out, p)
				}
			}
		case types.KindBool:
			is := c.Ints
			for _, p := range sel {
				r := rowAt(ridx, p)
				if c.IsNull(r) {
					continue
				}
				if boolSet[is[r]&1] != notf {
					out = append(out, p)
				}
			}
		}
		return out
	}
}

// likeSel compiles `col [NOT] LIKE 'pattern'` with a precompiled matcher.
func likeSel(ord int, pat types.Value, notf bool) selFn {
	if pat.IsNull() {
		return noneSel() // result is NULL for every row, negated or not
	}
	m := compileLike(pat.String())
	var cache atomic.Pointer[dictTab]
	generic := func(v types.Value) bool {
		return m.match(v.String()) != notf
	}
	return func(in *VecInput, sel, out []int32) []int32 {
		c := in.col(ord)
		if c.Boxed != nil || (c.Kind != types.KindString && c.Kind != types.KindNull) {
			// LIKE stringifies non-string operands; rare, keep it generic.
			return genericSel(in, c, sel, out, generic)
		}
		if c.Kind == types.KindNull {
			return out
		}
		ridx := in.RowIdx
		if c.IsDict() {
			pass := dictPassTab(&cache, c, func(s string) bool {
				return m.match(s) != notf
			})
			codes := c.Codes
			for _, p := range sel {
				r := rowAt(ridx, p)
				if c.IsNull(r) {
					continue
				}
				if pass[codes[r]] {
					out = append(out, p)
				}
			}
			return out
		}
		ss := c.Strs
		for _, p := range sel {
			r := rowAt(ridx, p)
			if c.IsNull(r) {
				continue
			}
			if m.match(ss[r]) != notf {
				out = append(out, p)
			}
		}
		return out
	}
}

// isNullSel compiles `col IS [NOT] NULL`; the result is two-valued, so
// negation is a plain flag flip.
func isNullSel(ord int, notf bool) selFn {
	return func(in *VecInput, sel, out []int32) []int32 {
		c := in.col(ord)
		ridx := in.RowIdx
		for _, p := range sel {
			if c.IsNull(rowAt(ridx, p)) != notf {
				out = append(out, p)
			}
		}
		return out
	}
}

// PlainOrdinal reports the schema ordinal e reads when e is a plain,
// unambiguously resolvable column reference. The executor uses it to turn
// projections into gathers and join/group/partition keys into direct
// column encodes.
func PlainOrdinal(env *BoundSchema, e sqlast.Expr) (int, bool) {
	x, ok := e.(*sqlast.ColumnRef)
	if !ok || env == nil {
		return 0, false
	}
	idx, found, err := env.Resolve(x.Table, x.Name)
	if err != nil || !found {
		return 0, false
	}
	return idx, true
}

// boolColSel compiles a bare column reference used as a predicate: TRUE
// only for a BOOL true value; NOT of a non-NULL non-TRUE value is TRUE.
func boolColSel(ord int, neg bool) selFn {
	return func(in *VecInput, sel, out []int32) []int32 {
		c := in.col(ord)
		if c.Boxed != nil {
			pred := func(v types.Value) bool { return v.Bool() != neg }
			return genericSel(in, c, sel, out, pred)
		}
		if c.Kind == types.KindNull {
			return out
		}
		ridx := in.RowIdx
		if c.Kind != types.KindBool {
			// Non-boolean value: Bool() is false, so the predicate is never
			// TRUE — and NOT of it is TRUE wherever the value is non-NULL.
			if neg {
				return appendNonNull(in, c, sel, out)
			}
			return out
		}
		is := c.Ints
		for _, p := range sel {
			r := rowAt(ridx, p)
			if c.IsNull(r) {
				continue
			}
			if (is[r] != 0) != neg {
				out = append(out, p)
			}
		}
		return out
	}
}
